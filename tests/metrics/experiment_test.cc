#include "metrics/experiment.h"

#include <gtest/gtest.h>

namespace aqp {
namespace metrics {
namespace {

ExperimentOptions SmallExperiment() {
  ExperimentOptions options;
  options.testcase.atlas.size = 200;
  options.testcase.accidents.size = 400;
  options.testcase.variant_rate = 0.15;
  options.testcase.seed = 4242;
  options.adaptive.delta_adapt = 40;
  options.adaptive.window = 40;
  return options;
}

TEST(ExperimentTest, RunsAllThreePolicies) {
  auto result = RunExperiment(SmallExperiment());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->label, "uniform/child");
  // Ordering invariants.
  EXPECT_LE(result->weighted.r, result->weighted.r_abs);
  EXPECT_LE(result->weighted.r_abs, result->weighted.R);
  EXPECT_LE(result->weighted.c, result->weighted.C);
  // Baselines spend all steps in their pinned state.
  EXPECT_EQ(result->all_exact.steps_per_state[0],
            result->all_exact.total_steps);
  EXPECT_EQ(result->all_approx.steps_per_state[3],
            result->all_approx.total_steps);
}

TEST(ExperimentTest, CompletenessOrdering) {
  auto result = RunExperiment(SmallExperiment());
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->exact_completeness, result->adaptive_completeness);
  EXPECT_LE(result->adaptive_completeness, result->approx_completeness);
  // All-approximate recovers essentially every child.
  EXPECT_GT(result->approx_completeness, 0.99);
  // All-exact misses the variants.
  EXPECT_LT(result->exact_completeness, 0.9);
}

TEST(ExperimentTest, AdaptiveGainIsMeaningful) {
  auto result = RunExperiment(SmallExperiment());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->weighted.RelativeGain(), 0.3);
  EXPECT_GT(result->weighted.Efficiency(), 1.0);
  EXPECT_GT(result->trace.transition_count(), 0u);
}

TEST(ExperimentTest, CleanCaseStaysCheapAndComplete) {
  ExperimentOptions options = SmallExperiment();
  options.testcase.variant_rate = 0.0;
  auto result = RunExperiment(options);
  ASSERT_TRUE(result.ok());
  // θ_out = 0.05 is a 5% false-positive budget per assessment, so a
  // clean run may still briefly visit approximate states before ϕ0
  // reverts it; the run must remain dominated by lex/rex and far
  // cheaper than the all-approximate baseline.
  EXPECT_GT(result->adaptive.StepShare(adaptive::ProcessorState::kLexRex),
            0.8);
  EXPECT_LT(result->weighted.c_abs, 0.2 * result->weighted.C);
  EXPECT_DOUBLE_EQ(result->exact_completeness, 1.0);
  EXPECT_DOUBLE_EQ(result->adaptive_completeness, 1.0);
}

TEST(ExperimentTest, MakeJoinOptionsWiresChildLeftParentRight) {
  auto tc = datagen::GenerateTestCase(SmallExperiment().testcase);
  ASSERT_TRUE(tc.ok());
  const auto jo = MakeJoinOptions(*tc, SmallExperiment());
  EXPECT_EQ(jo.join.spec.left_column, datagen::kAccidentsLocationColumn);
  EXPECT_EQ(jo.join.spec.right_column, datagen::kAtlasLocationColumn);
  EXPECT_EQ(jo.adaptive.parent_side, exec::Side::kRight);
  EXPECT_EQ(jo.adaptive.parent_table_size, tc->parent.size());
}

}  // namespace
}  // namespace metrics
}  // namespace aqp
