#include "metrics/gain_cost.h"

#include <gtest/gtest.h>

namespace aqp {
namespace metrics {
namespace {

GainCost Typical() {
  GainCost gc;
  gc.r = 9000;    // all-exact result
  gc.R = 10000;   // all-approximate result
  gc.r_abs = 9800;
  gc.c = 18000;   // all-exact cost (steps)
  gc.C = 1263600; // all-approximate cost (steps * 70.2)
  gc.c_abs = 400000;
  return gc;
}

TEST(GainCostTest, RelativeGainIsGapFraction) {
  const GainCost gc = Typical();
  EXPECT_NEAR(gc.RelativeGain(), 0.8, 1e-12);
}

TEST(GainCostTest, FullRecoveryIsOne) {
  GainCost gc = Typical();
  gc.r_abs = gc.R;
  EXPECT_DOUBLE_EQ(gc.RelativeGain(), 1.0);
}

TEST(GainCostTest, NoRecoveryIsZero) {
  GainCost gc = Typical();
  gc.r_abs = gc.r;
  EXPECT_DOUBLE_EQ(gc.RelativeGain(), 0.0);
}

TEST(GainCostTest, EmptyGapDefinesGainOne) {
  GainCost gc = Typical();
  gc.R = gc.r;
  gc.r_abs = gc.r;
  EXPECT_DOUBLE_EQ(gc.RelativeGain(), 1.0);
}

TEST(GainCostTest, RelativeCostUsesPaperFormula) {
  const GainCost gc = Typical();
  // §4.3: c_rel = c_abs / (C - c), not (c_abs - c)/(C - c).
  EXPECT_NEAR(gc.RelativeCost(), 400000.0 / (1263600.0 - 18000.0), 1e-12);
}

TEST(GainCostTest, GapNormalizedCostVariant) {
  const GainCost gc = Typical();
  EXPECT_NEAR(gc.RelativeCostGap(),
              (400000.0 - 18000.0) / (1263600.0 - 18000.0), 1e-12);
  EXPECT_LT(gc.RelativeCostGap(), gc.RelativeCost());
}

TEST(GainCostTest, EfficiencyIsGainOverCost) {
  const GainCost gc = Typical();
  EXPECT_NEAR(gc.Efficiency(), gc.RelativeGain() / gc.RelativeCost(), 1e-12);
  EXPECT_GT(gc.Efficiency(), 1.0);  // the paper's desirable regime
}

TEST(GainCostTest, DegenerateCostGap) {
  GainCost gc = Typical();
  gc.C = gc.c;
  EXPECT_DOUBLE_EQ(gc.RelativeCost(), 1.0);
  EXPECT_DOUBLE_EQ(gc.RelativeCostGap(), 0.0);
}

TEST(GainCostTest, ToStringIncludesMetrics) {
  const std::string s = Typical().ToString();
  EXPECT_NE(s.find("gain="), std::string::npos);
  EXPECT_NE(s.find("cost="), std::string::npos);
  EXPECT_NE(s.find("e="), std::string::npos);
}

}  // namespace
}  // namespace metrics
}  // namespace aqp
