#include "metrics/run_stats.h"

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "exec/scan.h"

namespace aqp {
namespace metrics {
namespace {

using adaptive::ProcessorState;
using adaptive::StateWeights;

TEST(RunStatsTest, WeightedCostMatchesHandComputation) {
  RunStats stats;
  stats.steps_per_state = {100, 0, 0, 10};
  stats.transitions_into = {0, 0, 0, 1};
  const double cost = stats.WeightedCost(StateWeights::Paper());
  EXPECT_DOUBLE_EQ(cost, 100.0 * 1.0 + 10.0 * 70.2 + 173.42);
}

TEST(RunStatsTest, StepShare) {
  RunStats stats;
  stats.total_steps = 200;
  stats.steps_per_state = {50, 0, 0, 150};
  EXPECT_DOUBLE_EQ(stats.StepShare(ProcessorState::kLexRex), 0.25);
  EXPECT_DOUBLE_EQ(stats.StepShare(ProcessorState::kLapRap), 0.75);
  RunStats empty;
  EXPECT_DOUBLE_EQ(empty.StepShare(ProcessorState::kLexRex), 0.0);
}

TEST(RunStatsTest, SummarizeRunCapturesCore) {
  datagen::TestCaseOptions options;
  options.atlas.size = 150;
  options.accidents.size = 300;
  options.variant_rate = 0.1;
  auto tc = datagen::GenerateTestCase(options);
  ASSERT_TRUE(tc.ok());

  adaptive::AdaptiveJoinOptions jo;
  jo.join.spec.left_column = datagen::kAccidentsLocationColumn;
  jo.join.spec.right_column = datagen::kAtlasLocationColumn;
  jo.adaptive.parent_side = exec::Side::kRight;
  jo.adaptive.parent_table_size = tc->parent.size();
  jo.adaptive.delta_adapt = 40;
  jo.adaptive.window = 40;
  exec::RelationScan child(&tc->child);
  exec::RelationScan parent(&tc->parent);
  adaptive::AdaptiveJoin join(&child, &parent, jo);
  auto count = exec::CountAll(&join);
  ASSERT_TRUE(count.ok());

  const RunStats stats = SummarizeRun(join, "test-run", 1.5);
  EXPECT_EQ(stats.label, "test-run");
  EXPECT_EQ(stats.result_pairs, *count);
  EXPECT_EQ(stats.total_steps, tc->child.size() + tc->parent.size());
  EXPECT_DOUBLE_EQ(stats.wall_seconds, 1.5);
  EXPECT_GT(stats.memory_bytes, 0u);
  EXPECT_EQ(stats.exact_pairs + stats.approx_pairs, stats.result_pairs);
  uint64_t sum = 0;
  for (uint64_t s : stats.steps_per_state) sum += s;
  EXPECT_EQ(sum, stats.total_steps);
}

}  // namespace
}  // namespace metrics
}  // namespace aqp
