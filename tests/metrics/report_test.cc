#include "metrics/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.h"

namespace aqp {
namespace metrics {
namespace {

ExperimentResult FakeResult(const std::string& label) {
  ExperimentResult r;
  r.label = label;
  r.adaptive.total_steps = 1000;
  r.adaptive.steps_per_state = {300, 100, 100, 500};
  r.adaptive.transitions_into = {2, 1, 1, 2};
  r.adaptive.total_transitions = 6;
  r.weighted.r = 900;
  r.weighted.R = 1000;
  r.weighted.r_abs = 980;
  r.weighted.c = 1000;
  r.weighted.C = 70200;
  r.weighted.c_abs = 20000;
  r.adaptive_completeness = 0.98;
  r.exact_completeness = 0.9;
  r.approx_completeness = 1.0;
  return r;
}

TEST(ReportTest, Fig6TableContainsMetrics) {
  std::ostringstream os;
  PrintFig6GainCost({FakeResult("uniform/child"), FakeResult("few_high/both")},
                    os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Fig. 6"), std::string::npos);
  EXPECT_NE(out.find("uniform/child"), std::string::npos);
  EXPECT_NE(out.find("few_high/both"), std::string::npos);
  EXPECT_NE(out.find("g_rel"), std::string::npos);
  EXPECT_NE(out.find("0.800"), std::string::npos);  // gain of the fake
}

TEST(ReportTest, Fig7SharesSumToHundred) {
  std::ostringstream os;
  PrintFig7TimeBreakdown({FakeResult("uniform/child")}, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("30.0"), std::string::npos);  // EE share
  EXPECT_NE(out.find("50.0"), std::string::npos);  // AA share
  EXPECT_NE(out.find("| 6"), std::string::npos);   // transitions column
}

TEST(ReportTest, Fig8UsesWeights) {
  std::ostringstream os;
  PrintFig8CostBreakdown({FakeResult("uniform/child")},
                         adaptive::StateWeights::Paper(), os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Fig. 8"), std::string::npos);
  EXPECT_NE(out.find("transition %"), std::string::npos);
}

TEST(ReportTest, CsvRoundTrips) {
  std::ostringstream os;
  WriteResultsCsv({FakeResult("uniform/child")}, os);
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ParseCsv(os.str(), &rows).ok());
  ASSERT_EQ(rows.size(), 2u);           // header + one row
  EXPECT_EQ(rows[0][0], "test_case");
  EXPECT_EQ(rows[1][0], "uniform/child");
  EXPECT_EQ(rows[0].size(), rows[1].size());
}

}  // namespace
}  // namespace metrics
}  // namespace aqp
