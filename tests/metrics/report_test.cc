#include "metrics/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.h"

namespace aqp {
namespace metrics {
namespace {

ExperimentResult FakeResult(const std::string& label) {
  ExperimentResult r;
  r.label = label;
  r.adaptive.total_steps = 1000;
  r.adaptive.steps_per_state = {300, 100, 100, 500};
  r.adaptive.transitions_into = {2, 1, 1, 2};
  r.adaptive.total_transitions = 6;
  r.weighted.r = 900;
  r.weighted.R = 1000;
  r.weighted.r_abs = 980;
  r.weighted.c = 1000;
  r.weighted.C = 70200;
  r.weighted.c_abs = 20000;
  r.adaptive_completeness = 0.98;
  r.exact_completeness = 0.9;
  r.approx_completeness = 1.0;
  return r;
}

TEST(ReportTest, Fig6TableContainsMetrics) {
  std::ostringstream os;
  PrintFig6GainCost({FakeResult("uniform/child"), FakeResult("few_high/both")},
                    os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Fig. 6"), std::string::npos);
  EXPECT_NE(out.find("uniform/child"), std::string::npos);
  EXPECT_NE(out.find("few_high/both"), std::string::npos);
  EXPECT_NE(out.find("g_rel"), std::string::npos);
  EXPECT_NE(out.find("0.800"), std::string::npos);  // gain of the fake
}

TEST(ReportTest, Fig7SharesSumToHundred) {
  std::ostringstream os;
  PrintFig7TimeBreakdown({FakeResult("uniform/child")}, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("30.0"), std::string::npos);  // EE share
  EXPECT_NE(out.find("50.0"), std::string::npos);  // AA share
  EXPECT_NE(out.find("| 6"), std::string::npos);   // transitions column
}

TEST(ReportTest, Fig8UsesWeights) {
  std::ostringstream os;
  PrintFig8CostBreakdown({FakeResult("uniform/child")},
                         adaptive::StateWeights::Paper(), os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Fig. 8"), std::string::npos);
  EXPECT_NE(out.find("transition %"), std::string::npos);
}

TEST(ReportTest, CsvRoundTrips) {
  std::ostringstream os;
  WriteResultsCsv({FakeResult("uniform/child")}, os);
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ParseCsv(os.str(), &rows).ok());
  ASSERT_EQ(rows.size(), 2u);           // header + one row
  EXPECT_EQ(rows[0][0], "test_case");
  EXPECT_EQ(rows[1][0], "uniform/child");
  EXPECT_EQ(rows[0].size(), rows[1].size());
}

TEST(ReportTest, CsvDoublesKeepFullFidelity) {
  // Wall times and completeness ratios are re-parsed by downstream
  // analysis scripts; the CSV must round-trip them bit-exactly (the
  // old precision-6 formatting silently truncated).
  ExperimentResult r = FakeResult("uniform/child");
  r.adaptive.wall_seconds = 0.006038211773204557;
  r.all_exact.wall_seconds = 2.7551234567891234e-3;
  r.all_approx.wall_seconds = 1.2345678901234567;
  r.adaptive_completeness = 1.0 / 3.0;
  std::ostringstream os;
  WriteResultsCsv({r}, os);
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ParseCsv(os.str(), &rows).ok());
  ASSERT_EQ(rows.size(), 2u);
  auto column = [&](const std::string& name) {
    for (size_t i = 0; i < rows[0].size(); ++i) {
      if (rows[0][i] == name) return rows[1][i];
    }
    ADD_FAILURE() << "column " << name << " missing";
    return std::string();
  };
  EXPECT_EQ(std::stod(column("wall_adaptive_s")), r.adaptive.wall_seconds);
  EXPECT_EQ(std::stod(column("wall_exact_s")), r.all_exact.wall_seconds);
  EXPECT_EQ(std::stod(column("wall_approx_s")), r.all_approx.wall_seconds);
  EXPECT_EQ(std::stod(column("completeness_adaptive")),
            r.adaptive_completeness);
}

}  // namespace
}  // namespace metrics
}  // namespace aqp
