// The hierarchical memory-accounting tree: local/subtree figures,
// delta propagation up the ancestor chain, peak high-water tracking,
// automatic release on destruction (the budget-leak invariant), and
// concurrent refreshes from sibling subtrees into one shared root.

#include "common/memory_budget.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

namespace aqp {
namespace mem {
namespace {

TEST(MemoryBudgetTest, FreshNodeIsZero) {
  BudgetNode root("global");
  EXPECT_EQ(root.local_used(), 0u);
  EXPECT_EQ(root.used(), 0u);
  EXPECT_EQ(root.peak(), 0u);
  EXPECT_EQ(root.parent(), nullptr);
  EXPECT_EQ(root.name(), "global");
}

TEST(MemoryBudgetTest, RefreshReplacesLocalUsage) {
  BudgetNode node("n");
  node.Refresh(100);
  EXPECT_EQ(node.local_used(), 100u);
  EXPECT_EQ(node.used(), 100u);
  node.Refresh(40);  // wholesale replacement, not accumulation
  EXPECT_EQ(node.local_used(), 40u);
  EXPECT_EQ(node.used(), 40u);
  EXPECT_EQ(node.peak(), 100u);  // peak sticks
}

TEST(MemoryBudgetTest, DeltasPropagateUpTheAncestorChain) {
  BudgetNode root("global");
  BudgetNode query("query1", &root);
  BudgetNode shard0("shard0", &query);
  BudgetNode shard1("shard1", &query);

  shard0.Refresh(100);
  shard1.Refresh(50);
  query.Refresh(7);  // coordinator's own state
  EXPECT_EQ(shard0.used(), 100u);
  EXPECT_EQ(query.local_used(), 7u);
  EXPECT_EQ(query.used(), 157u);
  EXPECT_EQ(root.used(), 157u);

  shard0.Refresh(20);  // shrink propagates as a negative delta
  EXPECT_EQ(query.used(), 77u);
  EXPECT_EQ(root.used(), 77u);
}

TEST(MemoryBudgetTest, PeakTracksSubtreeHighWaterPerLevel) {
  BudgetNode root("global");
  BudgetNode q1("query1", &root);
  BudgetNode q2("query2", &root);

  q1.Refresh(100);
  q2.Refresh(60);
  EXPECT_EQ(root.peak(), 160u);
  q1.Refresh(0);
  q2.Refresh(90);
  // Root peak is the high-water of the *aggregate*, not the sum of
  // per-child peaks (which would be 190).
  EXPECT_EQ(root.peak(), 160u);
  EXPECT_EQ(q1.peak(), 100u);
  EXPECT_EQ(q2.peak(), 90u);
}

TEST(MemoryBudgetTest, DestructionReleasesUsageFromAncestors) {
  BudgetNode root("global");
  {
    BudgetNode query("query1", &root);
    BudgetNode shard("shard0", &query);
    shard.Refresh(500);
    query.Refresh(30);
    EXPECT_EQ(root.used(), 530u);
  }  // children destroyed before parent, parent before root
  EXPECT_EQ(root.used(), 0u);      // no leak at quiescence
  EXPECT_EQ(root.peak(), 530u);    // history survives
}

TEST(MemoryBudgetTest, LimitsAndOverSoftOverHard) {
  BudgetLimits limits;
  EXPECT_FALSE(limits.any());
  limits.soft_bytes = 100;
  limits.hard_bytes = 200;
  EXPECT_TRUE(limits.any());

  BudgetNode node("q", nullptr, limits);
  EXPECT_FALSE(node.over_soft());
  node.Refresh(100);
  EXPECT_TRUE(node.over_soft());
  EXPECT_FALSE(node.over_hard());
  node.Refresh(200);
  EXPECT_TRUE(node.over_hard());
  EXPECT_EQ(node.limits().hard_bytes, 200u);

  BudgetNode unbounded("u");
  unbounded.Refresh(1u << 30);
  EXPECT_FALSE(unbounded.over_soft());
  EXPECT_FALSE(unbounded.over_hard());
}

TEST(MemoryBudgetTest, ConcurrentSiblingRefreshesStayConsistent) {
  // Every running query refreshes its own subtree; all deltas land in
  // the shared root. After the threads join, the root must equal the
  // sum of the final per-subtree figures exactly (atomic deltas can
  // interleave but never lose updates).
  constexpr size_t kQueries = 4;
  constexpr size_t kShardsPerQuery = 3;
  constexpr uint64_t kRounds = 2000;

  BudgetNode root("global");
  std::vector<std::unique_ptr<BudgetNode>> queries;
  std::vector<std::unique_ptr<BudgetNode>> shards;
  for (size_t q = 0; q < kQueries; ++q) {
    queries.push_back(
        std::make_unique<BudgetNode>("query" + std::to_string(q), &root));
    for (size_t s = 0; s < kShardsPerQuery; ++s) {
      shards.push_back(std::make_unique<BudgetNode>(
          "shard" + std::to_string(s), queries.back().get()));
    }
  }

  std::vector<std::thread> workers;
  for (size_t q = 0; q < kQueries; ++q) {
    workers.emplace_back([q, &shards] {
      for (uint64_t round = 1; round <= kRounds; ++round) {
        for (size_t s = 0; s < kShardsPerQuery; ++s) {
          shards[q * kShardsPerQuery + s]->Refresh(round * (q + 1) + s);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  uint64_t expected = 0;
  for (size_t q = 0; q < kQueries; ++q) {
    uint64_t subtree = 0;
    for (size_t s = 0; s < kShardsPerQuery; ++s) {
      subtree += kRounds * (q + 1) + s;
    }
    EXPECT_EQ(queries[q]->used(), subtree);
    expected += subtree;
  }
  EXPECT_EQ(root.used(), expected);
  EXPECT_GE(root.peak(), expected);

  shards.clear();
  queries.clear();
  EXPECT_EQ(root.used(), 0u);
}

}  // namespace
}  // namespace mem
}  // namespace aqp
