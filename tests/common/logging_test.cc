#include "common/logging.h"

#include <gtest/gtest.h>

namespace aqp {
namespace {

TEST(LoggingTest, GlobalIsSingleton) {
  EXPECT_EQ(&Logger::Global(), &Logger::Global());
}

TEST(LoggingTest, LevelFiltering) {
  Logger& logger = Logger::Global();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kWarning);
  EXPECT_FALSE(logger.Enabled(LogLevel::kDebug));
  EXPECT_FALSE(logger.Enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.Enabled(LogLevel::kWarning));
  EXPECT_TRUE(logger.Enabled(LogLevel::kError));
  logger.set_level(LogLevel::kDebug);
  EXPECT_TRUE(logger.Enabled(LogLevel::kDebug));
  logger.set_level(saved);
}

TEST(LoggingTest, StreamMacroDoesNotCrash) {
  Logger& logger = Logger::Global();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kError);  // silence the output
  AQP_LOG(kWarning) << "value=" << 42 << " name=" << std::string("x");
  logger.set_level(saved);
}

}  // namespace
}  // namespace aqp
