#include "common/lock_order.h"

#include <mutex>
#include <thread>

#include <gtest/gtest.h>

#include "common/sync.h"

namespace aqp {
namespace sync {
namespace {

// The detector's default follows the build mode: compiled in under
// Debug, compiled out (zero cost, no id field) under NDEBUG. This
// guard pins the default so a CMake change cannot silently ship the
// detector into Release builds — or drop it from Debug ones.
TEST(LockOrderConfigTest, DefaultFollowsBuildMode) {
#ifdef NDEBUG
  EXPECT_FALSE(lock_order::kEnabled);
#else
  EXPECT_TRUE(lock_order::kEnabled);
#endif
}

#if AQP_LOCK_ORDER

TEST(LockOrderTest, ConsistentOrderAcrossThreadsIsSilent) {
  const size_t edges_before = lock_order::EdgeCountForTest();
  {
    Mutex a("lock_order_test.consistent.a");
    Mutex b("lock_order_test.consistent.b");
    auto work = [&] {
      for (int i = 0; i < 100; ++i) {
        MutexLock lock_a(&a);
        MutexLock lock_b(&b);
      }
    };
    std::thread t1(work);
    std::thread t2(work);
    t1.join();
    t2.join();
    // One a->b edge, recorded once and then proven-safe thereafter.
    EXPECT_EQ(lock_order::EdgeCountForTest(), edges_before + 1);
  }
  // Destruction unregisters both locks and drops their edges.
  EXPECT_EQ(lock_order::EdgeCountForTest(), edges_before);
  EXPECT_EQ(lock_order::HeldCountForTest(), 0u);
}

TEST(LockOrderTest, NestedScopesTrackHeldStack) {
  Mutex a("lock_order_test.nested.a");
  Mutex b("lock_order_test.nested.b");
  EXPECT_EQ(lock_order::HeldCountForTest(), 0u);
  {
    MutexLock lock_a(&a);
    EXPECT_EQ(lock_order::HeldCountForTest(), 1u);
    {
      MutexLock lock_b(&b);
      EXPECT_EQ(lock_order::HeldCountForTest(), 2u);
    }
    EXPECT_EQ(lock_order::HeldCountForTest(), 1u);
  }
  EXPECT_EQ(lock_order::HeldCountForTest(), 0u);
}

TEST(LockOrderTest, OutOfOrderReleaseIsSilent) {
  Mutex a("lock_order_test.ooo.a");
  Mutex b("lock_order_test.ooo.b");
  a.Lock();
  b.Lock();
  a.Unlock();  // released before b: legal, just unusual
  EXPECT_EQ(lock_order::HeldCountForTest(), 1u);
  b.Unlock();
  EXPECT_EQ(lock_order::HeldCountForTest(), 0u);
}

TEST(LockOrderTest, TryLockAgainstRecordedOrderIsSilent) {
  Mutex a("lock_order_test.try.a");
  Mutex b("lock_order_test.try.b");
  {
    MutexLock lock_a(&a);
    MutexLock lock_b(&b);  // records a -> b
  }
  // Taking them in the opposite order via TryLock is the sanctioned
  // escape: it can fail but never block, so it cannot deadlock.
  MutexLock lock_b(&b);
  ASSERT_TRUE(a.TryLock());
  a.Unlock();
}

TEST(LockOrderDeathTest, TwoThreadInversionAborts) {
  // Threads are spawned inside the death statement, so the "threadsafe"
  // style (re-exec the binary, then fork) keeps the child sane.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a("lock_order_test.inversion.a");
        Mutex b("lock_order_test.inversion.b");
        // Thread 1 establishes a -> b and fully exits before thread 2
        // starts, so no schedule actually deadlocks — the detector must
        // still flag the *potential* from the accumulated graph.
        std::thread t([&] {
          MutexLock lock_a(&a);
          MutexLock lock_b(&b);
        });
        t.join();
        MutexLock lock_b(&b);
        MutexLock lock_a(&a);  // b -> a closes the cycle: abort
      },
      "lock order inversion");
}

TEST(LockOrderDeathTest, RecursiveAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a("lock_order_test.recursive.a");
        a.Lock();
        a.Lock();  // std::mutex self-deadlock: abort with a report
      },
      "recursive acquisition");
}

#else  // !AQP_LOCK_ORDER

// Compiled-out guard: with the detector off, sync::Mutex must carry no
// bookkeeping at all — same size as the raw primitive it wraps — and
// the hook functions must not even be declared (this TU would fail to
// compile if a stray call site survived the #if).
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "Release sync::Mutex must not carry a lock-order id");

TEST(LockOrderTest, DetectorCompiledOut) {
  EXPECT_FALSE(lock_order::kEnabled);
}

#endif  // AQP_LOCK_ORDER

}  // namespace
}  // namespace sync
}  // namespace aqp
