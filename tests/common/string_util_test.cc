#include "common/string_util.h"

#include <gtest/gtest.h>

namespace aqp {
namespace {

TEST(StringUtilTest, ToUpperAscii) {
  EXPECT_EQ(ToUpperAscii("Santa Cristina"), "SANTA CRISTINA");
  EXPECT_EQ(ToUpperAscii("abc123!"), "ABC123!");
  EXPECT_EQ(ToUpperAscii(""), "");
}

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("TAA BZ"), "taa bz");
}

TEST(StringUtilTest, TrimAscii) {
  EXPECT_EQ(TrimAscii("  x  "), "x");
  EXPECT_EQ(TrimAscii("\t\na b\r\n"), "a b");
  EXPECT_EQ(TrimAscii("   "), "");
  EXPECT_EQ(TrimAscii(""), "");
}

TEST(StringUtilTest, CollapseWhitespace) {
  EXPECT_EQ(CollapseWhitespace("  a   b \t c  "), "a b c");
  EXPECT_EQ(CollapseWhitespace("abc"), "abc");
  EXPECT_EQ(CollapseWhitespace(" \t "), "");
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  const std::vector<std::string> pieces = {"TAA", "BZ", "SANTA"};
  EXPECT_EQ(Join(pieces, " "), "TAA BZ SANTA");
  EXPECT_EQ(Split(Join(pieces, ","), ','), pieces);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("--flag=3", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(EndsWith("test.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

TEST(StringUtilTest, FormatCount) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(8082), "8,082");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
}

}  // namespace
}  // namespace aqp
