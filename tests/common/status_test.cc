#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace aqp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_EQ(Status::NotFound("missing").message(), "missing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  Status s = Status::InvalidArgument("bad q");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad q");
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "internal: boom");
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::NotFound("column 'x'").WithContext("opening join");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "opening join: column 'x'");
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  Status s = Status::OK().WithContext("ctx");
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.message(), "");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "invalid_argument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "io_error");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "cancelled");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "unavailable");
}

TEST(StatusTest, UnavailableIsItsOwnCode) {
  Status s = Status::Unavailable("source flapping");
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_FALSE(s.IsIOError());
  EXPECT_EQ(s.ToString(), "unavailable: source flapping");
}

TEST(StatusTest, WithContextStacksBreadcrumbs) {
  // The service/engine error path stacks query=/epoch=/site= context;
  // each layer prepends, so the outermost breadcrumb reads first.
  Status s = Status::IOError("injected fault")
                 .WithContext("site=csv.read")
                 .WithContext("epoch=3")
                 .WithContext("query=7");
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "query=7: epoch=3: site=csv.read: injected fault");
}

}  // namespace
}  // namespace aqp
