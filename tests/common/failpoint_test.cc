#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/result.h"

namespace aqp {
namespace {

// A function with a failpoint site, as production code has them.
Status GuardedStep() {
  AQP_FAILPOINT(fail::site::kScanNext);
  return Status::OK();
}

Result<int> GuardedResultStep() {
  AQP_FAILPOINT(fail::site::kScanNext);
  return 42;
}

void GuardedVoidStep() { AQP_FAILPOINT_THROW(fail::site::kStoreAdd); }

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fail::kCompiledIn) {
      GTEST_SKIP() << "failpoints compiled out (AQP_ENABLE_FAILPOINTS off)";
    }
    fail::DisarmAll();
  }
  void TearDown() override { fail::DisarmAll(); }
};

TEST_F(FailpointTest, UnarmedSiteIsANoop) {
  EXPECT_FALSE(fail::AnyArmed());
  EXPECT_TRUE(GuardedStep().ok());
  EXPECT_NO_THROW(GuardedVoidStep());
}

TEST_F(FailpointTest, OnceFiresExactlyOnce) {
  fail::Arm(fail::site::kScanNext,
            fail::Policy::Once(Status::IOError("injected fault")));
  EXPECT_TRUE(fail::AnyArmed());
  Status first = GuardedStep();
  EXPECT_TRUE(first.IsIOError());
  EXPECT_TRUE(GuardedStep().ok());
  EXPECT_TRUE(GuardedStep().ok());
  EXPECT_EQ(fail::Hits(fail::site::kScanNext), 3u);
  EXPECT_EQ(fail::Fires(fail::site::kScanNext), 1u);
}

TEST_F(FailpointTest, FiredStatusCarriesSiteBreadcrumb) {
  fail::Arm(fail::site::kScanNext,
            fail::Policy::Once(Status::IOError("injected fault")));
  Status s = GuardedStep();
  EXPECT_EQ(s.message(), "site=scan.next: injected fault");
}

TEST_F(FailpointTest, NthHitFiresOnExactlyTheNthEvaluation) {
  fail::Arm(fail::site::kScanNext,
            fail::Policy::OnNthHit(3, Status::Unavailable("blip")));
  EXPECT_TRUE(GuardedStep().ok());
  EXPECT_TRUE(GuardedStep().ok());
  EXPECT_TRUE(GuardedStep().IsUnavailable());
  EXPECT_TRUE(GuardedStep().ok());
  EXPECT_EQ(fail::Fires(fail::site::kScanNext), 1u);
}

TEST_F(FailpointTest, WorksInResultReturningFunctions) {
  fail::Arm(fail::site::kScanNext,
            fail::Policy::Once(Status::IOError("injected fault")));
  Result<int> r = GuardedResultStep();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
  Result<int> again = GuardedResultStep();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 42);
}

TEST_F(FailpointTest, ThrowingPolicyThrowsInjectedFault) {
  fail::Arm(fail::site::kScanNext,
            fail::Policy::Once(Status::Internal("boom"), /*do_throw=*/true));
  try {
    (void)GuardedStep();
    FAIL() << "expected InjectedFault";
  } catch (const fail::InjectedFault& e) {
    EXPECT_TRUE(e.status().IsInternal());
  }
}

TEST_F(FailpointTest, VoidSiteAlwaysThrowsWhenFired) {
  // Even a returning policy must throw at a void-context site.
  fail::Arm(fail::site::kStoreAdd,
            fail::Policy::Once(Status::IOError("no space")));
  EXPECT_THROW(GuardedVoidStep(), fail::InjectedFault);
  EXPECT_NO_THROW(GuardedVoidStep());
}

TEST_F(FailpointTest, ProbabilityIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    fail::Arm(fail::site::kScanNext,
              fail::Policy::WithProbability(0.3, seed,
                                            Status::IOError("injected")));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!GuardedStep().ok());
    fail::Disarm(fail::site::kScanNext);
    return fired;
  };
  const std::vector<bool> a = run(7);
  const std::vector<bool> b = run(7);
  const std::vector<bool> c = run(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // astronomically unlikely to collide over 64 draws
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
  EXPECT_LT(std::count(a.begin(), a.end(), true), 64);
}

TEST_F(FailpointTest, ProbabilityZeroNeverFiresOneAlwaysFires) {
  fail::Arm(fail::site::kScanNext,
            fail::Policy::WithProbability(0.0, 1, Status::IOError("x")));
  for (int i = 0; i < 32; ++i) EXPECT_TRUE(GuardedStep().ok());
  fail::Arm(fail::site::kScanNext,
            fail::Policy::WithProbability(1.0, 1, Status::IOError("x")));
  for (int i = 0; i < 32; ++i) EXPECT_FALSE(GuardedStep().ok());
}

TEST_F(FailpointTest, RearmResetsCounters) {
  fail::Arm(fail::site::kScanNext,
            fail::Policy::Once(Status::IOError("x")));
  (void)GuardedStep();
  EXPECT_EQ(fail::Hits(fail::site::kScanNext), 1u);
  fail::Arm(fail::site::kScanNext,
            fail::Policy::Once(Status::IOError("x")));
  EXPECT_EQ(fail::Hits(fail::site::kScanNext), 0u);
  EXPECT_EQ(fail::Fires(fail::site::kScanNext), 0u);
  EXPECT_FALSE(GuardedStep().ok());  // fresh Once fires again
}

TEST_F(FailpointTest, DisarmKeepsCountersForInspection) {
  fail::Arm(fail::site::kScanNext,
            fail::Policy::Once(Status::IOError("x")));
  (void)GuardedStep();
  EXPECT_TRUE(fail::Disarm(fail::site::kScanNext));
  EXPECT_FALSE(fail::Disarm(fail::site::kScanNext));
  EXPECT_EQ(fail::Hits(fail::site::kScanNext), 1u);
  EXPECT_EQ(fail::Fires(fail::site::kScanNext), 1u);
  EXPECT_FALSE(fail::AnyArmed());
  EXPECT_TRUE(GuardedStep().ok());
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnExit) {
  {
    fail::ScopedFailpoint guard(fail::site::kScanNext,
                                fail::Policy::Once(Status::IOError("x")));
    EXPECT_TRUE(fail::AnyArmed());
  }
  EXPECT_FALSE(fail::AnyArmed());
}

TEST_F(FailpointTest, KnownSitesEnumeratesEveryCanonicalSite) {
  const std::vector<std::string> sites = fail::KnownSites();
  EXPECT_EQ(sites.size(), 17u);
  for (const char* expected :
       {fail::site::kCsvOpen, fail::site::kCsvRead, fail::site::kScanNext,
        fail::site::kExchangeRoute, fail::site::kExchangeStage,
        fail::site::kIngestPrefetch, fail::site::kExchangeMerge,
        fail::site::kShardPhaseA, fail::site::kShardPhaseB,
        fail::site::kPoolTask, fail::site::kStoreAdd,
        fail::site::kArenaAlloc, fail::site::kParallelOpen,
        fail::site::kServiceAdmit, fail::site::kServiceFinalize,
        fail::site::kBudgetCharge, fail::site::kWatchdogStall}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), std::string(expected)),
              sites.end())
        << expected << " missing from KnownSites()";
  }
}

TEST_F(FailpointTest, ArmingOneSiteDoesNotAffectOthers) {
  fail::Arm(fail::site::kCsvOpen, fail::Policy::Once(Status::IOError("x")));
  EXPECT_TRUE(GuardedStep().ok());
  EXPECT_NO_THROW(GuardedVoidStep());
  EXPECT_EQ(fail::Fires(fail::site::kCsvOpen), 0u);
}

}  // namespace
}  // namespace aqp
