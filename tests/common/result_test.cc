#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"

namespace aqp {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok(7);
  Result<int> err(Status::Internal("x"));
  EXPECT_EQ(ok.ValueOr(0), 7);
  EXPECT_EQ(err.ValueOr(0), 0);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowAccessor) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  int half;
  AQP_ASSIGN_OR_RETURN(half, Half(x));
  int quarter;
  AQP_ASSIGN_OR_RETURN(quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagatesValue) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> r = Quarter(6);  // 6/2 = 3, odd -> error in second step
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status CheckAll(const std::vector<int>& xs) {
  for (int x : xs) {
    AQP_RETURN_IF_ERROR(FailIfNegative(x));
  }
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorShortCircuits) {
  EXPECT_TRUE(CheckAll({1, 2, 3}).ok());
  EXPECT_TRUE(CheckAll({1, -2, 3}).IsOutOfRange());
}

}  // namespace
}  // namespace aqp
