#include "common/table_printer.h"

#include <gtest/gtest.h>

namespace aqp {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  const std::string out = t.ToString();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22 |"), std::string::npos);
}

TEST(TablePrinterTest, HeaderWiderThanData) {
  TablePrinter t({"wide_header"});
  t.AddRow({"x"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| wide_header |"), std::string::npos);
  EXPECT_NE(out.find("| x           |"), std::string::npos);
}

TEST(TablePrinterTest, EmptyTableStillPrintsHeader) {
  TablePrinter t({"a", "b"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| a | b |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 0u);
}

TEST(TablePrinterTest, CountsRows) {
  TablePrinter t({"a"});
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace aqp
