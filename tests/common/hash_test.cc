#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace aqp {
namespace {

TEST(HashTest, Fnv1a64KnownVectors) {
  // Reference values for FNV-1a 64-bit.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, Fnv1a64Deterministic) {
  EXPECT_EQ(Fnv1a64("TAA BZ SANTA"), Fnv1a64("TAA BZ SANTA"));
  EXPECT_NE(Fnv1a64("TAA BZ SANTA"), Fnv1a64("TAA BZ SANTB"));
}

TEST(HashTest, Mix64SpreadsSequentialKeys) {
  std::set<uint64_t> high_bytes;
  for (uint64_t i = 0; i < 256; ++i) {
    high_bytes.insert(Mix64(i) >> 56);
  }
  // Sequential inputs should hit many distinct high bytes.
  EXPECT_GT(high_bytes.size(), 150u);
}

TEST(HashTest, HashCombineOrderSensitive) {
  const uint64_t a = Fnv1a64("a");
  const uint64_t b = Fnv1a64("b");
  EXPECT_NE(HashCombine(HashCombine(0, a), b),
            HashCombine(HashCombine(0, b), a));
}

}  // namespace
}  // namespace aqp
