#include "common/flags.h"

#include <gtest/gtest.h>

namespace aqp {
namespace {

FlagParser MakeParser() {
  FlagParser flags;
  flags.AddInt64("count", 10, "an int");
  flags.AddDouble("rate", 0.5, "a double");
  flags.AddString("label", "default", "a string");
  flags.AddBool("verbose", false, "a bool");
  return flags;
}

TEST(FlagsTest, DefaultsWithoutArgs) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  EXPECT_EQ(flags.GetInt64("count"), 10);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.5);
  EXPECT_EQ(flags.GetString("label"), "default");
  EXPECT_FALSE(flags.GetBool("verbose"));
}

TEST(FlagsTest, EqualsSyntax) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "--count=42", "--rate=0.25",
                        "--label=run1", "--verbose=true"};
  ASSERT_TRUE(flags.Parse(5, argv).ok());
  EXPECT_EQ(flags.GetInt64("count"), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.25);
  EXPECT_EQ(flags.GetString("label"), "run1");
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagsTest, SpaceSyntax) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "--count", "7", "--label", "x"};
  ASSERT_TRUE(flags.Parse(5, argv).ok());
  EXPECT_EQ(flags.GetInt64("count"), 7);
  EXPECT_EQ(flags.GetString("label"), "x");
}

TEST(FlagsTest, BareBoolean) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagsTest, NegativeNumbers) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "--count=-3", "--rate=-1.5"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_EQ(flags.GetInt64("count"), -3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), -1.5);
}

TEST(FlagsTest, UnknownFlagRejected) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_TRUE(flags.Parse(2, argv).IsInvalidArgument());
}

TEST(FlagsTest, MalformedIntRejected) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "--count=abc"};
  EXPECT_TRUE(flags.Parse(2, argv).IsInvalidArgument());
}

TEST(FlagsTest, MalformedBoolRejected) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "--verbose=maybe"};
  EXPECT_TRUE(flags.Parse(2, argv).IsInvalidArgument());
}

TEST(FlagsTest, MissingValueRejected) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "--count"};
  EXPECT_TRUE(flags.Parse(2, argv).IsInvalidArgument());
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "input.csv", "--count=1", "output.csv"};
  ASSERT_TRUE(flags.Parse(4, argv).ok());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.csv", "output.csv"}));
}

TEST(FlagsTest, HelpListsFlags) {
  FlagParser flags = MakeParser();
  const std::string help = flags.Help();
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("--verbose"), std::string::npos);
  EXPECT_NE(help.find("an int"), std::string::npos);
}

}  // namespace
}  // namespace aqp
