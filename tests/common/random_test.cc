#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace aqp {
namespace {

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Uniform(0, 1 << 30) != b.Uniform(0, 1 << 30)) ++differences;
  }
  EXPECT_GT(differences, 40);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformSinglePoint) {
  Rng rng(7);
  EXPECT_EQ(rng.Uniform(3, 3), 3);
}

TEST(RngTest, IndexCoversRange) {
  Rng rng(11);
  std::set<size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Index(10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(19);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, RandomStringUsesAlphabet) {
  Rng rng(23);
  const std::string s = rng.RandomString(200, "AB");
  EXPECT_EQ(s.size(), 200u);
  for (char c : s) EXPECT_TRUE(c == 'A' || c == 'B');
  EXPECT_NE(s.find('A'), std::string::npos);
  EXPECT_NE(s.find('B'), std::string::npos);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng fork = a.Fork();
  // The fork should not replay the parent's stream.
  Rng b(31);
  b.Fork();
  int same = 0;
  for (int i = 0; i < 20; ++i) {
    if (fork.Uniform(0, 1 << 30) == a.Uniform(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, ChoicePicksMembers) {
  Rng rng(37);
  std::vector<std::string> items = {"x", "y", "z"};
  for (int i = 0; i < 50; ++i) {
    const std::string& pick = rng.Choice(items);
    EXPECT_TRUE(pick == "x" || pick == "y" || pick == "z");
  }
}

}  // namespace
}  // namespace aqp
