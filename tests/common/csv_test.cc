#include "common/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace aqp {
namespace {

TEST(CsvTest, WritesSimpleRows) {
  std::ostringstream os;
  CsvWriter csv(&os);
  csv.WriteRow({"a", "b", "c"});
  csv.WriteRow({"1", "2", "3"});
  EXPECT_EQ(os.str(), "a,b,c\n1,2,3\n");
}

TEST(CsvTest, QuotesFieldsWithSpecials) {
  std::ostringstream os;
  CsvWriter csv(&os);
  csv.WriteRow({"a,b", "he said \"hi\"", "line\nbreak"});
  EXPECT_EQ(os.str(), "\"a,b\",\"he said \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvTest, FieldFormatters) {
  EXPECT_EQ(CsvWriter::Field(int64_t{-5}), "-5");
  EXPECT_EQ(CsvWriter::Field(uint64_t{7}), "7");
  EXPECT_EQ(CsvWriter::Field(0.25), "0.25");
}

TEST(CsvTest, ParseSimple) {
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ParseCsv("a,b\n1,2\n", &rows).ok());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, ParseHandlesQuotesAndEscapes) {
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ParseCsv("\"a,b\",\"x \"\"y\"\"\"\n", &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a,b", "x \"y\""}));
}

TEST(CsvTest, ParseHandlesCrLfAndMissingFinalNewline) {
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ParseCsv("a,b\r\nc,d", &rows).ok());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, ParseEmptyFields) {
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ParseCsv("a,,c\n", &rows).ok());
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "", "c"}));
}

TEST(CsvTest, ParseRejectsUnterminatedQuote) {
  std::vector<std::vector<std::string>> rows;
  EXPECT_TRUE(ParseCsv("\"abc\n", &rows).IsInvalidArgument());
}

TEST(CsvTest, RoundTrip) {
  std::ostringstream os;
  CsvWriter csv(&os);
  const std::vector<std::string> row = {"plain", "with,comma", "with\"quote",
                                        ""};
  csv.WriteRow(row);
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ParseCsv(os.str(), &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], row);
}

}  // namespace
}  // namespace aqp
