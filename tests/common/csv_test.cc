#include "common/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace aqp {
namespace {

TEST(CsvTest, WritesSimpleRows) {
  std::ostringstream os;
  CsvWriter csv(&os);
  csv.WriteRow({"a", "b", "c"});
  csv.WriteRow({"1", "2", "3"});
  EXPECT_EQ(os.str(), "a,b,c\n1,2,3\n");
}

TEST(CsvTest, QuotesFieldsWithSpecials) {
  std::ostringstream os;
  CsvWriter csv(&os);
  csv.WriteRow({"a,b", "he said \"hi\"", "line\nbreak"});
  EXPECT_EQ(os.str(), "\"a,b\",\"he said \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvTest, FieldFormatters) {
  EXPECT_EQ(CsvWriter::Field(int64_t{-5}), "-5");
  EXPECT_EQ(CsvWriter::Field(uint64_t{7}), "7");
  EXPECT_EQ(CsvWriter::Field(0.25), "0.25");
}

TEST(CsvTest, ParseSimple) {
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ParseCsv("a,b\n1,2\n", &rows).ok());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, ParseHandlesQuotesAndEscapes) {
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ParseCsv("\"a,b\",\"x \"\"y\"\"\"\n", &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a,b", "x \"y\""}));
}

TEST(CsvTest, ParseHandlesCrLfAndMissingFinalNewline) {
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ParseCsv("a,b\r\nc,d", &rows).ok());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, ParsePreservesBareCarriageReturnInFields) {
  // A lone \r that is not part of a CRLF line ending is field data;
  // the parser used to drop every CR outside quotes.
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ParseCsv("a\rb,c\nd,e\rf", &rows).ok());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a\rb", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"d", "e\rf"}));
}

TEST(CsvTest, ParseStillSwallowsCrLfLineEndings) {
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ParseCsv("a,b\r\nc,d\r\n", &rows).ok());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, ParseTrailingBareCarriageReturnKept) {
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ParseCsv("a\r", &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a\r"}));
}

TEST(CsvTest, DoubleFieldsRoundTripExactly) {
  // Report CSVs carry p-values and nanosecond-derived times; the old
  // precision-6 formatting truncated them irrecoverably.
  const double values[] = {0.05, 1.0 / 3.0, 6.038e-3, 123456.789012345,
                           2.2250738585072014e-308, 0.1 + 0.2};
  for (double v : values) {
    const std::string field = CsvWriter::Field(v);
    EXPECT_EQ(std::stod(field), v) << field;
  }
  // Shortest form: representable-in-few-digits values stay compact.
  EXPECT_EQ(CsvWriter::Field(0.25), "0.25");
  EXPECT_EQ(CsvWriter::Field(2.0), "2");
}

TEST(CsvTest, BareCarriageReturnFieldRoundTripsThroughWriter) {
  std::ostringstream os;
  CsvWriter csv(&os);
  const std::vector<std::string> row = {"x\ry", "plain"};
  csv.WriteRow(row);
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ParseCsv(os.str(), &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], row);
}

TEST(CsvTest, ParseEmptyFields) {
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ParseCsv("a,,c\n", &rows).ok());
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "", "c"}));
}

TEST(CsvTest, ParseRejectsUnterminatedQuote) {
  std::vector<std::vector<std::string>> rows;
  EXPECT_TRUE(ParseCsv("\"abc\n", &rows).IsInvalidArgument());
}

TEST(CsvTest, RoundTrip) {
  std::ostringstream os;
  CsvWriter csv(&os);
  const std::vector<std::string> row = {"plain", "with,comma", "with\"quote",
                                        ""};
  csv.WriteRow(row);
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ParseCsv(os.str(), &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], row);
}

}  // namespace
}  // namespace aqp
