// Service-level stress: a burst of concurrent linkage queries mixing
// every control policy with mid-stream deadline expiry and cancels,
// all on one shared pool — run under ThreadSanitizer in CI. Every
// query that completes must be byte-identical to its solo run (or a
// strict prefix of it when its hard deadline fired).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "datagen/generator.h"
#include "exec/parallel/parallel_join.h"
#include "exec/scan.h"
#include "service/linkage_service.h"

namespace aqp {
namespace service {
namespace {

using exec::parallel::ParallelAdaptiveJoin;
using exec::parallel::ParallelJoinOptions;

const datagen::TestCase& StressCase() {
  static const datagen::TestCase* tc = [] {
    datagen::TestCaseOptions options;
    options.pattern = datagen::PerturbationPattern::kUniform;
    options.perturb_parent = true;
    options.variant_rate = 0.15;
    options.atlas.size = 300;
    options.accidents.size = 600;
    options.seed = 42;
    auto generated = datagen::GenerateTestCase(options);
    EXPECT_TRUE(generated.ok());
    return new datagen::TestCase(std::move(*generated));
  }();
  return *tc;
}

ParallelJoinOptions MakeOptions(const datagen::TestCase& tc, size_t flavor) {
  ParallelJoinOptions options;
  options.base.join.spec.left_column = datagen::kAccidentsLocationColumn;
  options.base.join.spec.right_column = datagen::kAtlasLocationColumn;
  options.base.join.spec.sim_threshold = 0.85;
  options.base.adaptive.parent_side = exec::Side::kRight;
  options.base.adaptive.parent_table_size = tc.parent.size();
  options.base.adaptive.delta_adapt = 50;
  options.base.adaptive.window = 50;
  options.num_shards = 1 + flavor % 3;
  switch (flavor % 4) {
    case 0:  // full adaptive
      break;
    case 1:
      options.base.adaptive.policy = adaptive::AdaptivePolicy::kPinned;
      options.base.adaptive.initial_state =
          adaptive::ProcessorState::kLexRex;
      break;
    case 2:
      options.base.adaptive.policy = adaptive::AdaptivePolicy::kPinned;
      options.base.adaptive.initial_state =
          adaptive::ProcessorState::kLapRap;
      break;
    case 3:
      options.base.adaptive.policy = adaptive::AdaptivePolicy::kScripted;
      options.base.adaptive.script = {
          {100, adaptive::ProcessorState::kLapRex},
          {250, adaptive::ProcessorState::kLapRap},
          {600, adaptive::ProcessorState::kLexRex},
      };
      break;
  }
  return options;
}

TEST(ServiceStressTest, BurstOfMixedQueriesWithDeadlinesAndCancels) {
  const datagen::TestCase& tc = StressCase();
  constexpr size_t kQueries = 10;

  // Solo references per flavor (deadline-free).
  std::map<size_t, storage::Relation> references;
  for (size_t flavor = 0; flavor < 4; ++flavor) {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    ParallelAdaptiveJoin join(&child, &parent, MakeOptions(tc, flavor));
    auto result = exec::CollectAll(&join);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    references.emplace(flavor, std::move(*result));
  }

  ServiceOptions so;
  so.worker_threads = 2;
  so.admission.max_concurrent_queries = 3;
  so.admission.max_total_shards = 6;
  LinkageService service(so);

  std::vector<std::unique_ptr<exec::RelationScan>> scans;
  std::vector<QueryId> ids;
  std::vector<bool> has_hard_deadline(kQueries, false);
  std::vector<bool> cancelled(kQueries, false);
  for (size_t i = 0; i < kQueries; ++i) {
    scans.push_back(std::make_unique<exec::RelationScan>(&tc.child));
    scans.push_back(std::make_unique<exec::RelationScan>(&tc.parent));
    QueryOptions qo;
    qo.join = MakeOptions(tc, i);
    if (i % 3 == 1) {
      qo.deadline.hard_deadline_steps = 150;
      has_hard_deadline[i] = true;
    }
    if (i % 4 == 2) {
      qo.deadline.soft_deadline_steps = 200;
    }
    auto id = service.Submit(scans[scans.size() - 2].get(),
                             scans[scans.size() - 1].get(), qo);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  // Cancel a couple mid-burst: one early in the queue, one late.
  ASSERT_TRUE(service.Cancel(ids[4]).ok());
  cancelled[4] = true;
  ASSERT_TRUE(service.Cancel(ids[9]).ok());
  cancelled[9] = true;

  for (size_t i = 0; i < ids.size(); ++i) {
    auto stats = service.Wait(ids[i]);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    SCOPED_TRACE(testing::Message() << "query " << i << " state "
                                    << QueryStateName(stats->state));
    if (cancelled[i]) {
      // Cancel raced the query's natural completion; both outcomes
      // are legal, but nothing else is.
      ASSERT_TRUE(stats->state == QueryState::kCancelled ||
                  stats->state == QueryState::kDone);
      if (stats->state == QueryState::kCancelled) continue;
    }
    ASSERT_EQ(stats->state, QueryState::kDone) << stats->status.ToString();
    auto result = service.TakeResult(ids[i]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const storage::Relation& reference = references.at(i % 4);
    if (has_hard_deadline[i] && stats->finalized_early) {
      // Partial result: a strict prefix of the solo run.
      ASSERT_LE(result->size(), reference.size());
      for (size_t r = 0; r < result->size(); ++r) {
        ASSERT_EQ(result->row(r), reference.row(r)) << "row " << r;
      }
      EXPECT_GE(stats->completeness.ratio, 0.0);
      EXPECT_LE(stats->completeness.ratio, 1.0);
    } else if (i % 4 == 2 && stats->forced_exact) {
      // Soft deadline degraded matching; the output is a subsequence
      // of legal matches but not comparable row-for-row. Sanity only.
      EXPECT_LE(result->size(), references.at(2).size());
    } else {
      ASSERT_EQ(result->size(), reference.size());
      for (size_t r = 0; r < result->size(); ++r) {
        ASSERT_EQ(result->row(r), reference.row(r)) << "row " << r;
      }
    }
  }

  EXPECT_LE(service.peak_running_queries(), 3u);
  EXPECT_LE(service.peak_shards_in_use(), 6u);
}

TEST(ServiceStressTest, RepeatedBurstsReuseThePool) {
  // Several waves through one service instance: registry, admission
  // accounting, and pool survive reuse.
  const datagen::TestCase& tc = StressCase();
  ServiceOptions so;
  so.worker_threads = 2;
  so.admission.max_concurrent_queries = 2;
  so.admission.max_total_shards = 4;
  LinkageService service(so);

  for (int wave = 0; wave < 3; ++wave) {
    std::vector<std::unique_ptr<exec::RelationScan>> scans;
    std::vector<QueryId> ids;
    for (size_t i = 0; i < 4; ++i) {
      scans.push_back(std::make_unique<exec::RelationScan>(&tc.child));
      scans.push_back(std::make_unique<exec::RelationScan>(&tc.parent));
      QueryOptions qo;
      qo.join = MakeOptions(tc, i);
      auto id = service.Submit(scans[scans.size() - 2].get(),
                               scans[scans.size() - 1].get(), qo);
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    for (QueryId id : ids) {
      auto stats = service.Wait(id);
      ASSERT_TRUE(stats.ok());
      EXPECT_EQ(stats->state, QueryState::kDone)
          << stats->status.ToString();
    }
  }
  EXPECT_EQ(service.running_queries(), 0u);
  EXPECT_EQ(service.queued_queries(), 0u);
}

}  // namespace
}  // namespace service
}  // namespace aqp
