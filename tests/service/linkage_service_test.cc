// Multi-query serving: N concurrent linkage queries on one shared
// worker pool must (a) respect the admission caps, (b) each produce
// output byte-identical to a solo ParallelAdaptiveJoin run of the same
// options, (c) honor per-query deadline budgets — soft deadlines force
// exact-only matching, hard deadlines finalize early with a partial
// result and completeness statistics — and (d) tear down cleanly on
// Cancel(), mid-stream included. The whole suite runs under TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "datagen/generator.h"
#include "exec/parallel/parallel_join.h"
#include "exec/scan.h"
#include "exec/stream.h"
#include "service/linkage_service.h"

namespace aqp {
namespace service {
namespace {

using exec::parallel::ParallelAdaptiveJoin;
using exec::parallel::ParallelJoinOptions;

const datagen::TestCase& PaperCase() {
  static const datagen::TestCase* tc = [] {
    datagen::TestCaseOptions options;
    options.pattern = datagen::PerturbationPattern::kFewHighIntensityRegions;
    options.perturb_parent = false;
    options.variant_rate = 0.10;
    options.atlas.size = 400;
    options.accidents.size = 800;
    options.seed = 20090326;
    auto generated = datagen::GenerateTestCase(options);
    EXPECT_TRUE(generated.ok());
    return new datagen::TestCase(std::move(*generated));
  }();
  return *tc;
}

ParallelJoinOptions BaseJoinOptions(const datagen::TestCase& tc) {
  ParallelJoinOptions options;
  options.base.join.spec.left_column = datagen::kAccidentsLocationColumn;
  options.base.join.spec.right_column = datagen::kAtlasLocationColumn;
  options.base.join.spec.sim_threshold = 0.85;
  options.base.adaptive.parent_side = exec::Side::kRight;
  options.base.adaptive.parent_table_size = tc.parent.size();
  options.base.adaptive.delta_adapt = 50;
  options.base.adaptive.window = 50;
  options.num_shards = 2;
  return options;
}

/// The reference: the same query run solo, no service, no deadlines.
storage::Relation SoloRun(const datagen::TestCase& tc,
                          ParallelJoinOptions options) {
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  ParallelAdaptiveJoin join(&child, &parent, options);
  auto result = exec::CollectAll(&join);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

void ExpectSameRows(const storage::Relation& actual,
                    const storage::Relation& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual.row(i), expected.row(i)) << "row " << i;
  }
}

/// The four policy flavors the stress tests mix.
std::vector<ParallelJoinOptions> PolicyMix(const datagen::TestCase& tc) {
  std::vector<ParallelJoinOptions> mix;
  // Full adaptive.
  mix.push_back(BaseJoinOptions(tc));
  // Pinned all-exact.
  mix.push_back(BaseJoinOptions(tc));
  mix.back().base.adaptive.policy = adaptive::AdaptivePolicy::kPinned;
  mix.back().base.adaptive.initial_state = adaptive::ProcessorState::kLexRex;
  // Pinned all-approximate (the expensive one).
  mix.push_back(BaseJoinOptions(tc));
  mix.back().base.adaptive.policy = adaptive::AdaptivePolicy::kPinned;
  mix.back().base.adaptive.initial_state = adaptive::ProcessorState::kLapRap;
  // Scripted.
  mix.push_back(BaseJoinOptions(tc));
  mix.back().base.adaptive.policy = adaptive::AdaptivePolicy::kScripted;
  mix.back().base.adaptive.script = {
      {120, adaptive::ProcessorState::kLapRex},
      {300, adaptive::ProcessorState::kLapRap},
      {700, adaptive::ProcessorState::kLexRex},
  };
  return mix;
}

// ---------------------------------------------------------------------
// The acceptance-criteria test: >= 4 concurrent queries, one shared
// pool, admission capping active concurrency at 2, every query's
// output byte-identical to its solo run.
TEST(LinkageServiceTest, FourConcurrentQueriesMatchTheirSoloRuns) {
  const datagen::TestCase& tc = PaperCase();
  const std::vector<ParallelJoinOptions> mix = PolicyMix(tc);
  std::vector<storage::Relation> references;
  references.reserve(mix.size());
  for (const ParallelJoinOptions& options : mix) {
    references.push_back(SoloRun(tc, options));
    ASSERT_GT(references.back().size(), 0u);
  }

  ServiceOptions so;
  so.worker_threads = 2;
  so.admission.max_concurrent_queries = 2;
  so.admission.max_total_shards = 4;
  LinkageService service(so);

  // One scan pair per query: children are only touched by their own
  // query's runner thread.
  std::vector<std::unique_ptr<exec::RelationScan>> scans;
  std::vector<QueryId> ids;
  for (const ParallelJoinOptions& options : mix) {
    scans.push_back(std::make_unique<exec::RelationScan>(&tc.child));
    scans.push_back(std::make_unique<exec::RelationScan>(&tc.parent));
    QueryOptions qo;
    qo.join = options;
    auto id = service.Submit(scans[scans.size() - 2].get(),
                             scans[scans.size() - 1].get(), qo);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }

  for (size_t i = 0; i < ids.size(); ++i) {
    auto stats = service.Wait(ids[i]);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    SCOPED_TRACE(testing::Message() << "query " << i);
    EXPECT_EQ(stats->state, QueryState::kDone)
        << stats->status.ToString();
    EXPECT_FALSE(stats->finalized_early);
    EXPECT_EQ(stats->shards, 2u);
    auto result = service.TakeResult(ids[i]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameRows(*result, references[i]);
  }

  // Admission capped active concurrency at 2 — and with 4 queries
  // queued behind 2 slots, both slots were actually in use at once.
  EXPECT_LE(service.peak_running_queries(), 2u);
  EXPECT_EQ(service.peak_running_queries(), 2u);
  EXPECT_LE(service.peak_shards_in_use(), 4u);
}

TEST(LinkageServiceTest, HardStepDeadlineFinalizesEarlyWithCompleteness) {
  const datagen::TestCase& tc = PaperCase();
  ParallelJoinOptions options = BaseJoinOptions(tc);
  const storage::Relation full = SoloRun(tc, options);
  ASSERT_GT(full.size(), 0u);

  ServiceOptions so;
  so.worker_threads = 1;
  so.admission.max_concurrent_queries = 1;
  so.admission.max_total_shards = 2;
  LinkageService service(so);

  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  QueryOptions qo;
  qo.join = options;
  qo.deadline.hard_deadline_steps = 120;
  auto id = service.Submit(&child, &parent, qo);
  ASSERT_TRUE(id.ok());
  auto stats = service.Wait(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->state, QueryState::kDone) << stats->status.ToString();
  EXPECT_TRUE(stats->finalized_early);
  // Deterministic: control points fall every δ_adapt = 50 steps, so
  // the first boundary past 120 is 150 — and input (800 + 400 rows)
  // was nowhere near exhausted.
  EXPECT_EQ(stats->steps, 150u);
  EXPECT_LT(stats->steps, tc.child.size() + tc.parent.size());
  // The partial result is a strict prefix of the full run's output.
  auto partial = service.TakeResult(*id);
  ASSERT_TRUE(partial.ok());
  ASSERT_LT(partial->size(), full.size());
  for (size_t i = 0; i < partial->size(); ++i) {
    ASSERT_EQ(partial->row(i), full.row(i)) << "row " << i;
  }
  // Completeness statistics of the partial result were reported.
  EXPECT_GT(stats->completeness.expected_matches, 0.0);
  EXPECT_GE(stats->completeness.ratio, 0.0);
  EXPECT_LE(stats->completeness.ratio, 1.0);
}

TEST(LinkageServiceTest, ImmediateWallClockHardDeadlineYieldsEmptyResult) {
  const datagen::TestCase& tc = PaperCase();
  ServiceOptions so;
  so.worker_threads = 1;
  so.admission.max_concurrent_queries = 1;
  LinkageService service(so);

  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  QueryOptions qo;
  qo.join = BaseJoinOptions(tc);
  qo.deadline.hard_deadline = std::chrono::nanoseconds(1);
  auto id = service.Submit(&child, &parent, qo);
  ASSERT_TRUE(id.ok());
  auto stats = service.Wait(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->state, QueryState::kDone);
  EXPECT_TRUE(stats->finalized_early);
  EXPECT_EQ(stats->steps, 0u);
  auto result = service.TakeResult(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 0u);
}

TEST(LinkageServiceTest, SoftDeadlineForcesExactOnlyButRunsToCompletion) {
  const datagen::TestCase& tc = PaperCase();
  // An all-approximate pinned query: without the deadline it would
  // probe approximately to the end.
  ParallelJoinOptions options = BaseJoinOptions(tc);
  options.base.adaptive.policy = adaptive::AdaptivePolicy::kPinned;
  options.base.adaptive.initial_state = adaptive::ProcessorState::kLapRap;
  options.unbounded_epoch_steps = 64;

  ServiceOptions so;
  so.worker_threads = 1;
  so.admission.max_concurrent_queries = 1;
  LinkageService service(so);

  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  QueryOptions qo;
  qo.join = options;
  qo.deadline.soft_deadline_steps = 100;
  auto id = service.Submit(&child, &parent, qo);
  ASSERT_TRUE(id.ok());
  auto stats = service.Wait(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->state, QueryState::kDone) << stats->status.ToString();
  // The whole input was consumed (no early finalize)...
  EXPECT_FALSE(stats->finalized_early);
  EXPECT_EQ(stats->steps, tc.child.size() + tc.parent.size());
  // ...but matching was forced into the cheapest exact state.
  EXPECT_TRUE(stats->forced_exact);
  EXPECT_EQ(stats->final_state, adaptive::ProcessorState::kLexRex);
  // Fewer pairs than the never-deadlined approximate run.
  const storage::Relation full = SoloRun(tc, options);
  auto result = service.TakeResult(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->size(), full.size());
}

TEST(LinkageServiceTest, CancelWhileQueuedIsImmediate) {
  const datagen::TestCase& tc = PaperCase();
  ServiceOptions so;
  so.worker_threads = 1;
  so.admission.max_concurrent_queries = 1;
  LinkageService service(so);

  // Occupy the lone slot with a real query...
  exec::RelationScan child_a(&tc.child);
  exec::RelationScan parent_a(&tc.parent);
  QueryOptions qa;
  qa.join = BaseJoinOptions(tc);
  auto a = service.Submit(&child_a, &parent_a, qa);
  ASSERT_TRUE(a.ok());
  // ...and cancel a queued one behind it: it must terminate without
  // ever running (its children are never opened).
  exec::RelationScan child_b(&tc.child);
  exec::RelationScan parent_b(&tc.parent);
  auto b = service.Submit(&child_b, &parent_b, qa);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(service.Cancel(*b).ok());
  auto stats_b = service.Wait(*b);
  ASSERT_TRUE(stats_b.ok());
  EXPECT_EQ(stats_b->state, QueryState::kCancelled);
  EXPECT_EQ(stats_b->steps, 0u);
  EXPECT_TRUE(service.TakeResult(*b).status().IsCancelled());

  auto stats_a = service.Wait(*a);
  ASSERT_TRUE(stats_a.ok());
  EXPECT_EQ(stats_a->state, QueryState::kDone);
}

TEST(LinkageServiceTest, CancelMidStreamTearsDownBetweenEpochs) {
  // A deliberately slow source keeps the query mid-stream for seconds;
  // Cancel() must stop it at an epoch boundary, long before the
  // stream's natural end.
  const storage::Schema schema({{"s", storage::ValueType::kString}});
  std::atomic<int> produced{0};
  exec::GeneratorSource slow_child(schema, [&produced]() {
    if (produced.load() >= 200000) return std::optional<storage::Tuple>();
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    const int i = ++produced;
    return std::optional<storage::Tuple>(
        storage::Tuple{storage::Value("KEY " + std::to_string(i % 97))});
  });
  exec::GeneratorSource slow_parent(schema, [&produced]() {
    if (produced.load() >= 200000) return std::optional<storage::Tuple>();
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    const int i = ++produced;
    return std::optional<storage::Tuple>(
        storage::Tuple{storage::Value("KEY " + std::to_string(i % 97))});
  });

  ServiceOptions so;
  so.worker_threads = 1;
  so.admission.max_concurrent_queries = 1;
  LinkageService service(so);
  QueryOptions qo;
  qo.join.base.join.spec.left_column = 0;
  qo.join.base.join.spec.right_column = 0;
  qo.join.base.join.batch_size = 16;
  qo.join.base.adaptive.delta_adapt = 32;
  qo.join.base.adaptive.window = 32;
  qo.join.num_shards = 2;
  auto id = service.Submit(&slow_child, &slow_parent, qo);
  ASSERT_TRUE(id.ok());

  // Wait until it actually runs, then cancel mid-stream.
  while (*service.state(*id) == QueryState::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(service.Cancel(*id).ok());
  auto stats = service.Wait(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->state, QueryState::kCancelled);
  EXPECT_TRUE(stats->status.IsCancelled());
  // Torn down long before the 200k-row stream could finish.
  EXPECT_LT(produced.load(), 100000);
  EXPECT_TRUE(service.TakeResult(*id).status().IsCancelled());
}

TEST(LinkageServiceTest, ShardBudgetClampsWideQueries) {
  const datagen::TestCase& tc = PaperCase();
  ServiceOptions so;
  so.worker_threads = 1;
  so.admission.max_concurrent_queries = 2;
  so.admission.max_total_shards = 3;
  LinkageService service(so);

  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  QueryOptions qo;
  qo.join = BaseJoinOptions(tc);
  qo.join.num_shards = 16;  // far over budget
  auto id = service.Submit(&child, &parent, qo);
  ASSERT_TRUE(id.ok());
  auto stats = service.Wait(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->state, QueryState::kDone);
  EXPECT_EQ(stats->shards, 3u);
  EXPECT_LE(service.peak_shards_in_use(), 3u);
  // Clamping does not change results.
  auto result = service.TakeResult(*id);
  ASSERT_TRUE(result.ok());
  ExpectSameRows(*result, SoloRun(tc, BaseJoinOptions(tc)));
}

TEST(LinkageServiceTest, UnknownIdsAndDoubleTakeAreErrors) {
  LinkageService service(ServiceOptions{});
  EXPECT_TRUE(service.Wait(42).status().IsNotFound());
  EXPECT_TRUE(service.Cancel(42).IsNotFound());
  EXPECT_TRUE(service.TakeResult(42).status().IsNotFound());
  EXPECT_TRUE(service.state(42).status().IsNotFound());

  const datagen::TestCase& tc = PaperCase();
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  QueryOptions qo;
  qo.join = BaseJoinOptions(tc);
  auto id = service.Submit(&child, &parent, qo);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.TakeResult(*id).ok());
  EXPECT_TRUE(service.TakeResult(*id).status().IsFailedPrecondition());
  EXPECT_TRUE(service.Submit(nullptr, &parent, qo).status()
                  .IsInvalidArgument());
}

/// Source yielding `good` keyed rows and then a mid-stream IOError.
class FailingSource : public exec::Operator {
 public:
  explicit FailingSource(int good)
      : schema_({{"s", storage::ValueType::kString}}), good_(good) {}
  Status Open() override {
    produced_ = 0;
    return Status::OK();
  }
  Result<std::optional<storage::Tuple>> Next() override {
    if (produced_ >= good_) return Status::IOError("stream dropped");
    const int i = produced_++;
    return std::optional<storage::Tuple>(
        storage::Tuple{storage::Value("KEY " + std::to_string(i % 7))});
  }
  Status Close() override { return Status::OK(); }
  const storage::Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "FailingSource"; }

 private:
  storage::Schema schema_;
  int good_;
  int produced_ = 0;
};

/// RelationScan wrapper whose first whole-batch refill reports a
/// transient kUnavailable before recovering.
class FlappingScan : public exec::Operator {
 public:
  explicit FlappingScan(const storage::Relation* rows) : scan_(rows) {}
  Status Open() override {
    calls_ = 0;
    return scan_.Open();
  }
  Result<std::optional<storage::Tuple>> Next() override {
    return scan_.Next();
  }
  Status NextColumnBatch(storage::ColumnBatch* out) override {
    if (++calls_ == 1) return Status::Unavailable("source flapping");
    return scan_.NextColumnBatch(out);
  }
  Status Close() override { return scan_.Close(); }
  const storage::Schema& output_schema() const override {
    return scan_.output_schema();
  }
  std::string name() const override { return "FlappingScan"; }

 private:
  exec::RelationScan scan_;
  int calls_ = 0;
};

TEST(LinkageServiceTest, FailingQueryIsIsolatedFromItsNeighbor) {
  const datagen::TestCase& tc = PaperCase();
  const ParallelJoinOptions good_options = BaseJoinOptions(tc);
  const storage::Relation reference = SoloRun(tc, good_options);
  ASSERT_GT(reference.size(), 0u);

  ServiceOptions so;
  so.worker_threads = 2;
  so.admission.max_concurrent_queries = 2;
  so.admission.max_total_shards = 4;
  LinkageService service(so);

  // A healthy query and a mid-stream-failing one, running concurrently
  // on the shared pool.
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  QueryOptions good_qo;
  good_qo.join = good_options;
  auto good = service.Submit(&child, &parent, good_qo);
  ASSERT_TRUE(good.ok());

  FailingSource bad_left(120);
  FailingSource bad_right(400);
  QueryOptions bad_qo;
  bad_qo.join.base.join.spec.left_column = 0;
  bad_qo.join.base.join.spec.right_column = 0;
  bad_qo.join.base.adaptive.delta_adapt = 32;
  bad_qo.join.base.adaptive.window = 32;
  bad_qo.join.num_shards = 2;
  auto bad = service.Submit(&bad_left, &bad_right, bad_qo);
  ASSERT_TRUE(bad.ok());

  // The faulty query fails, with breadcrumbs naming it.
  auto bad_stats = service.Wait(*bad);
  ASSERT_TRUE(bad_stats.ok());
  EXPECT_EQ(bad_stats->state, QueryState::kFailed);
  EXPECT_TRUE(bad_stats->status.IsIOError()) << bad_stats->status;
  EXPECT_NE(bad_stats->status.message().find(
                "query=" + std::to_string(*bad)),
            std::string::npos)
      << bad_stats->status;
  EXPECT_NE(bad_stats->status.message().find("epoch="), std::string::npos)
      << bad_stats->status;
  EXPECT_FALSE(service.TakeResult(*bad).ok());

  // The neighbor is untouched: done, byte-identical to its solo run.
  auto good_stats = service.Wait(*good);
  ASSERT_TRUE(good_stats.ok());
  EXPECT_EQ(good_stats->state, QueryState::kDone)
      << good_stats->status.ToString();
  auto result = service.TakeResult(*good);
  ASSERT_TRUE(result.ok());
  ExpectSameRows(*result, reference);

  // And the failure released its budget.
  EXPECT_EQ(service.shards_in_use(), 0u);
  EXPECT_EQ(service.admitted_total(), service.released_total());
}

TEST(LinkageServiceTest, FinalizePartialDegradesAFaultToDone) {
  ServiceOptions so;
  so.worker_threads = 1;
  so.admission.max_concurrent_queries = 1;
  LinkageService service(so);

  FailingSource left(120);
  FailingSource right(400);
  QueryOptions qo;
  qo.join.base.join.spec.left_column = 0;
  qo.join.base.join.spec.right_column = 0;
  qo.join.base.adaptive.delta_adapt = 32;
  qo.join.base.adaptive.window = 32;
  qo.join.num_shards = 2;
  qo.join.on_fault = exec::parallel::FaultPolicy::kFinalizePartial;
  auto id = service.Submit(&left, &right, qo);
  ASSERT_TRUE(id.ok());
  auto stats = service.Wait(*id);
  ASSERT_TRUE(stats.ok());

  // Degraded, not failed: the same terminal shape as a hard deadline.
  EXPECT_EQ(stats->state, QueryState::kDone) << stats->status.ToString();
  EXPECT_TRUE(stats->status.ok());
  EXPECT_TRUE(stats->finalized_early);
  ASSERT_TRUE(stats->fault.has_value());
  EXPECT_TRUE(stats->fault->status.IsIOError()) << stats->fault->status;
  EXPECT_EQ(stats->fault->step, stats->steps);
  EXPECT_GE(stats->completeness.ratio, 0.0);
  EXPECT_LE(stats->completeness.ratio, 1.0);
  // The partial result is deliverable.
  auto result = service.TakeResult(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(service.shards_in_use(), 0u);
  EXPECT_EQ(service.admitted_total(), service.released_total());
}

TEST(LinkageServiceTest, TransientSourceRetriesSurfaceInQueryStats) {
  const datagen::TestCase& tc = PaperCase();
  const ParallelJoinOptions options = BaseJoinOptions(tc);
  const storage::Relation reference = SoloRun(tc, options);

  ServiceOptions so;
  so.worker_threads = 1;
  so.admission.max_concurrent_queries = 1;
  LinkageService service(so);

  FlappingScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  QueryOptions qo;
  qo.join = options;
  qo.join.source_retry.max_retries = 2;
  auto id = service.Submit(&child, &parent, qo);
  ASSERT_TRUE(id.ok());
  auto stats = service.Wait(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->state, QueryState::kDone) << stats->status.ToString();
  EXPECT_EQ(stats->source_retries, 1u);
  EXPECT_FALSE(stats->fault.has_value());
  // The absorbed retry did not change the result.
  auto result = service.TakeResult(*id);
  ASSERT_TRUE(result.ok());
  ExpectSameRows(*result, reference);
}

TEST(LinkageServiceTest, DestructorCancelsOutstandingQueries) {
  const datagen::TestCase& tc = PaperCase();
  exec::RelationScan child_a(&tc.child);
  exec::RelationScan parent_a(&tc.parent);
  exec::RelationScan child_b(&tc.child);
  exec::RelationScan parent_b(&tc.parent);
  {
    ServiceOptions so;
    so.worker_threads = 1;
    so.admission.max_concurrent_queries = 1;
    LinkageService service(so);
    QueryOptions qo;
    qo.join = BaseJoinOptions(tc);
    ASSERT_TRUE(service.Submit(&child_a, &parent_a, qo).ok());
    ASSERT_TRUE(service.Submit(&child_b, &parent_b, qo).ok());
    // Destroyed with one query likely running and one queued: the
    // destructor must not hang or leak threads.
  }
  SUCCEED();
}

}  // namespace
}  // namespace service
}  // namespace aqp
