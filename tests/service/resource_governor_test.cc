// Memory governance at the service boundary: the per-query Charge()
// policy (reactive soft clamp, predictive hard finalize), effective
// budget resolution, the budget tree hanging under the governor's
// global root, and the three enforcement layers end to end — soft
// budget clamps a query to exact-only, hard budget finalizes it early
// with a strict-prefix partial and a ResourceReport, and the global
// high-water sheds new submissions with kResourceExhausted while a
// held query keeps the aggregate above the line.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "datagen/generator.h"
#include "exec/parallel/parallel_join.h"
#include "exec/scan.h"
#include "exec/stream.h"
#include "service/linkage_service.h"
#include "service/resource_governor.h"

namespace aqp {
namespace service {
namespace {

using exec::parallel::ParallelAdaptiveJoin;
using exec::parallel::ParallelJoinOptions;

// ---------------------------------------------------------------------
// Charge(): the per-control-point policy, pure function of the figures.

TEST(ResourceGovernorTest, ChargeProceedsUnderBothBounds) {
  MemoryBudgetOptions limits;
  limits.soft_bytes = 1000;
  limits.hard_bytes = 2000;
  EXPECT_EQ(ResourceGovernor::Charge(500, 100, limits),
            ResourceDecision::kProceed);
}

TEST(ResourceGovernorTest, ChargeSoftBoundIsReactive) {
  MemoryBudgetOptions limits;
  limits.soft_bytes = 1000;
  // At the line counts as over it — the clamp is reactive.
  EXPECT_EQ(ResourceGovernor::Charge(1000, 0, limits),
            ResourceDecision::kClampExact);
  EXPECT_EQ(ResourceGovernor::Charge(999, 0, limits),
            ResourceDecision::kProceed);
}

TEST(ResourceGovernorTest, ChargeHardBoundIsPredictive) {
  MemoryBudgetOptions limits;
  limits.hard_bytes = 2000;
  // Still under the budget, but one more epoch of the observed growth
  // would cross it: finalize now so the peak never overshoots.
  EXPECT_EQ(ResourceGovernor::Charge(1500, 600, limits),
            ResourceDecision::kFinalizePartial);
  EXPECT_EQ(ResourceGovernor::Charge(1500, 400, limits),
            ResourceDecision::kProceed);
}

TEST(ResourceGovernorTest, ChargeHardWinsOverSoft) {
  MemoryBudgetOptions limits;
  limits.soft_bytes = 1000;
  limits.hard_bytes = 1200;
  // Over both: the hard bound's finalize takes precedence over the
  // soft bound's clamp.
  EXPECT_EQ(ResourceGovernor::Charge(1300, 100, limits),
            ResourceDecision::kFinalizePartial);
}

TEST(ResourceGovernorTest, ChargeZeroDisablesEachBound) {
  MemoryBudgetOptions none;
  EXPECT_EQ(ResourceGovernor::Charge(1u << 30, 1u << 20, none),
            ResourceDecision::kProceed);
  MemoryBudgetOptions soft_only;
  soft_only.soft_bytes = 100;
  EXPECT_EQ(ResourceGovernor::Charge(1u << 30, 1u << 20, soft_only),
            ResourceDecision::kClampExact);
}

TEST(ResourceGovernorTest, ResourceDecisionNames) {
  EXPECT_STREQ(ResourceDecisionName(ResourceDecision::kProceed), "proceed");
  EXPECT_STREQ(ResourceDecisionName(ResourceDecision::kClampExact),
               "clamp_exact");
  EXPECT_STREQ(ResourceDecisionName(ResourceDecision::kFinalizePartial),
               "finalize_partial");
}

TEST(ResourceGovernorTest, EffectiveBudgetFallsBackPerField) {
  ResourceGovernorOptions options;
  options.default_query_budget.soft_bytes = 111;
  options.default_query_budget.hard_bytes = 222;
  ResourceGovernor governor(options);

  MemoryBudgetOptions unset;
  EXPECT_EQ(governor.EffectiveBudget(unset).soft_bytes, 111u);
  EXPECT_EQ(governor.EffectiveBudget(unset).hard_bytes, 222u);

  MemoryBudgetOptions partial;
  partial.hard_bytes = 999;  // own hard, default soft
  EXPECT_EQ(governor.EffectiveBudget(partial).soft_bytes, 111u);
  EXPECT_EQ(governor.EffectiveBudget(partial).hard_bytes, 999u);
}

TEST(ResourceGovernorTest, QueryNodesAggregateUnderTheGlobalRoot) {
  ResourceGovernor governor(ResourceGovernorOptions{});
  EXPECT_EQ(governor.used(), 0u);
  {
    auto q1 = governor.MakeQueryNode(1);
    auto q2 = governor.MakeQueryNode(2);
    q1->Refresh(1000);
    q2->Refresh(500);
    EXPECT_EQ(governor.used(), 1500u);
    EXPECT_GE(governor.peak(), 1500u);
    q1.reset();
    EXPECT_EQ(governor.used(), 500u);
  }
  // All query nodes gone: nothing left charged globally.
  EXPECT_EQ(governor.used(), 0u);
  EXPECT_GE(governor.peak(), 1500u);
}

// ---------------------------------------------------------------------
// Service integration.

const datagen::TestCase& PaperCase() {
  static const datagen::TestCase* tc = [] {
    datagen::TestCaseOptions options;
    options.pattern = datagen::PerturbationPattern::kFewHighIntensityRegions;
    options.perturb_parent = false;
    options.variant_rate = 0.10;
    options.atlas.size = 400;
    options.accidents.size = 800;
    options.seed = 20090326;
    auto generated = datagen::GenerateTestCase(options);
    EXPECT_TRUE(generated.ok());
    return new datagen::TestCase(std::move(*generated));
  }();
  return *tc;
}

ParallelJoinOptions BaseJoinOptions(const datagen::TestCase& tc) {
  ParallelJoinOptions options;
  options.base.join.spec.left_column = datagen::kAccidentsLocationColumn;
  options.base.join.spec.right_column = datagen::kAtlasLocationColumn;
  options.base.join.spec.sim_threshold = 0.85;
  options.base.adaptive.parent_side = exec::Side::kRight;
  options.base.adaptive.parent_table_size = tc.parent.size();
  options.base.adaptive.delta_adapt = 50;
  options.base.adaptive.window = 50;
  options.num_shards = 2;
  return options;
}

storage::Relation SoloRun(const datagen::TestCase& tc,
                          ParallelJoinOptions options) {
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  ParallelAdaptiveJoin join(&child, &parent, options);
  auto result = exec::CollectAll(&join);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

ServiceOptions SmallService() {
  ServiceOptions so;
  so.worker_threads = 2;
  so.admission.max_concurrent_queries = 2;
  so.admission.max_total_shards = 4;
  return so;
}

TEST(ResourceGovernorServiceTest, UngovernedQueryReportsMemoryNoResource) {
  const datagen::TestCase& tc = PaperCase();
  LinkageService service(SmallService());
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  QueryOptions qo;
  qo.join = BaseJoinOptions(tc);
  auto id = service.Submit(&child, &parent, qo);
  ASSERT_TRUE(id.ok());
  auto stats = service.Wait(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->state, QueryState::kDone) << stats->status.ToString();
  // Satellite fix: even without any budget the service reports the
  // engine's real footprint (previously zero for parallel runs).
  EXPECT_GT(stats->memory_bytes, 0u);
  EXPECT_GE(stats->peak_memory_bytes, stats->memory_bytes);
  EXPECT_FALSE(stats->memory_clamped);
  EXPECT_FALSE(stats->resource.has_value());
  EXPECT_EQ(stats->attempts, 1u);
  EXPECT_EQ(stats->retries, 0u);
  // No budget, no high-water: the query never hung under the tree.
  EXPECT_EQ(service.governor()->used(), 0u);
  EXPECT_EQ(service.governor()->peak(), 0u);
}

TEST(ResourceGovernorServiceTest, SoftBudgetClampsToExactOnly) {
  const datagen::TestCase& tc = PaperCase();
  LinkageService service(SmallService());
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  QueryOptions qo;
  qo.join = BaseJoinOptions(tc);
  qo.memory.soft_bytes = 1;  // over from the first control point on
  auto id = service.Submit(&child, &parent, qo);
  ASSERT_TRUE(id.ok());
  auto stats = service.Wait(*id);
  ASSERT_TRUE(stats.ok());
  // The clamp degrades match quality, never terminates the query: it
  // runs its whole input in the cheapest exact state.
  EXPECT_EQ(stats->state, QueryState::kDone) << stats->status.ToString();
  EXPECT_TRUE(stats->memory_clamped);
  EXPECT_TRUE(stats->forced_exact);
  EXPECT_FALSE(stats->finalized_early);
  EXPECT_FALSE(stats->resource.has_value());
  EXPECT_EQ(stats->final_state, adaptive::ProcessorState::kLexRex);
  auto result = service.TakeResult(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->size(), 0u);
  EXPECT_EQ(service.governor()->used(), 0u);
}

TEST(ResourceGovernorServiceTest, HardBudgetFinalizesEarlyWithStrictPrefix) {
  const datagen::TestCase& tc = PaperCase();
  const storage::Relation reference = SoloRun(tc, BaseJoinOptions(tc));
  ASSERT_GT(reference.size(), 0u);

  ServiceOptions so = SmallService();
  // Service-wide default budget; the query sets none of its own.
  so.governor.default_query_budget.hard_bytes = 4096;
  LinkageService service(so);
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  QueryOptions qo;
  qo.join = BaseJoinOptions(tc);
  auto id = service.Submit(&child, &parent, qo);
  ASSERT_TRUE(id.ok());
  auto stats = service.Wait(*id);
  ASSERT_TRUE(stats.ok());
  // Early finalization is the hard deadline's path: done, partial.
  EXPECT_EQ(stats->state, QueryState::kDone) << stats->status.ToString();
  EXPECT_TRUE(stats->finalized_early);
  ASSERT_TRUE(stats->resource.has_value());
  EXPECT_EQ(stats->resource->site, resource_site::kQueryHardBudget);
  EXPECT_EQ(stats->resource->budget_bytes, 4096u);
  EXPECT_TRUE(stats->resource->status.IsResourceExhausted());
  EXPECT_NE(stats->resource->status.ToString().find("query.hard_budget"),
            std::string::npos);
  EXPECT_LE(stats->completeness.ratio, 1.0);

  // The partial is a strict prefix of the untruncated run's rows.
  auto result = service.TakeResult(*id);
  ASSERT_TRUE(result.ok());
  ASSERT_LT(result->size(), reference.size());
  for (size_t i = 0; i < result->size(); ++i) {
    ASSERT_EQ(result->row(i), reference.row(i)) << "row " << i;
  }
  EXPECT_EQ(service.governor()->used(), 0u);
  EXPECT_EQ(service.admitted_total(), service.released_total());
}

TEST(ResourceGovernorServiceTest, GlobalHighWaterShedsSubmissions) {
  if (!fail::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  const datagen::TestCase& tc = PaperCase();
  fail::DisarmAll();
  // Watchdog enabled (large stall tolerance — it must never fire) so
  // the stall probe can hold query 1 at a charged control point while
  // the high-water is tested against query 2's submission.
  ServiceOptions so = SmallService();
  so.governor.stall_timeout = std::chrono::seconds(30);
  so.admission.global_memory_high_water_bytes = 1;
  LinkageService service(so);

  fail::Arm(fail::site::kWatchdogStall,
            fail::Policy::Once(Status::Unavailable("hold this control point")));
  exec::RelationScan child1(&tc.child);
  exec::RelationScan parent1(&tc.parent);
  QueryOptions qo;
  qo.join = BaseJoinOptions(tc);
  auto held = service.Submit(&child1, &parent1, qo);
  ASSERT_TRUE(held.ok()) << held.status().ToString();

  // Wait until query 1 holds at its first control point with its tree
  // charged — from then on the global aggregate sits above the line.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.governor()->used() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(service.governor()->used(), 0u) << "query never charged the tree";

  exec::RelationScan child2(&tc.child);
  exec::RelationScan parent2(&tc.parent);
  auto shed = service.Submit(&child2, &parent2, qo);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted())
      << shed.status().ToString();
  EXPECT_NE(shed.status().ToString().find("global.high_water"),
            std::string::npos);
  EXPECT_EQ(service.memory_shed_total(), 1u);

  // Release the held query; its cancel flag breaks the hold loop.
  ASSERT_TRUE(service.Cancel(*held).ok());
  auto stats = service.Wait(*held);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->state, QueryState::kCancelled);
  EXPECT_EQ(service.watchdog_finalized_total(), 0u);
  EXPECT_EQ(service.governor()->used(), 0u);
  EXPECT_EQ(service.admitted_total(), service.released_total());
  EXPECT_EQ(service.shards_in_use(), 0u);
  fail::DisarmAll();
}

}  // namespace
}  // namespace service
}  // namespace aqp
