// Chaos harness: a 10-query mixed burst (every policy flavor, 1-3
// shards each) runs against a seeded fault matrix — every failpoint
// site armed, across the Once / OnNthHit / WithProbability policies and
// three seeds per policy. Whatever fires, the service must stay sane:
//
//   * no deadlock — every Wait() returns (the CI timeout is the
//     enforcement backstop);
//   * no budget leak — after each burst the admission counters are
//     balanced and no shards remain in use;
//   * fault isolation — a query untouched by any fault is byte-
//     identical to its solo run;
//   * graceful degradation — a faulted query is terminal in `failed`,
//     or in `done` with a strict-prefix partial result plus a
//     FaultReport when it opted into kFinalizePartial.
//
// Runs under both ASan (leak check on) and TSan in CI.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/memory_budget.h"
#include "datagen/generator.h"
#include "exec/parallel/parallel_join.h"
#include "exec/prefetch.h"
#include "exec/scan.h"
#include "service/linkage_service.h"

namespace aqp {
namespace service {
namespace {

using exec::parallel::FaultPolicy;
using exec::parallel::ParallelAdaptiveJoin;
using exec::parallel::ParallelJoinOptions;

const datagen::TestCase& ChaosCase() {
  static const datagen::TestCase* tc = [] {
    datagen::TestCaseOptions options;
    options.pattern = datagen::PerturbationPattern::kUniform;
    options.perturb_parent = true;
    options.variant_rate = 0.15;
    options.atlas.size = 300;
    options.accidents.size = 600;
    options.seed = 42;
    auto generated = datagen::GenerateTestCase(options);
    EXPECT_TRUE(generated.ok());
    return new datagen::TestCase(std::move(*generated));
  }();
  return *tc;
}

ParallelJoinOptions MakeOptions(const datagen::TestCase& tc, size_t flavor) {
  ParallelJoinOptions options;
  options.base.join.spec.left_column = datagen::kAccidentsLocationColumn;
  options.base.join.spec.right_column = datagen::kAtlasLocationColumn;
  options.base.join.spec.sim_threshold = 0.85;
  options.base.adaptive.parent_side = exec::Side::kRight;
  options.base.adaptive.parent_table_size = tc.parent.size();
  options.base.adaptive.delta_adapt = 50;
  options.base.adaptive.window = 50;
  options.num_shards = 1 + flavor % 3;
  // Even flavors force the pipelined ingest path on regardless of the
  // AQP_PIPELINE_INGEST environment override, so the exchange.stage
  // site is exercised in every CI flavor; odd flavors keep the
  // process default (serial in the pipeline-off ctest flavor).
  if (flavor % 2 == 0) options.pipeline_ingest = true;
  switch (flavor % 4) {
    case 0:  // full adaptive
      break;
    case 1:
      options.base.adaptive.policy = adaptive::AdaptivePolicy::kPinned;
      options.base.adaptive.initial_state =
          adaptive::ProcessorState::kLexRex;
      break;
    case 2:
      options.base.adaptive.policy = adaptive::AdaptivePolicy::kPinned;
      options.base.adaptive.initial_state =
          adaptive::ProcessorState::kLapRap;
      break;
    case 3:
      options.base.adaptive.policy = adaptive::AdaptivePolicy::kScripted;
      options.base.adaptive.script = {
          {100, adaptive::ProcessorState::kLapRex},
          {250, adaptive::ProcessorState::kLapRap},
          {600, adaptive::ProcessorState::kLexRex},
      };
      break;
  }
  return options;
}

/// The status a site injects. Scan/CSV sites inject kUnavailable so the
/// bounded source retry also gets exercised by the matrix; everything
/// else injects a plain (recoverable) IO error.
Status InjectedStatus(const std::string& site) {
  if (site == fail::site::kScanNext || site == fail::site::kCsvRead ||
      site == fail::site::kCsvOpen) {
    return Status::Unavailable("injected fault");
  }
  return Status::IOError("injected fault");
}

/// Arms every known site under one policy kind, parameters derived
/// deterministically from (seed, site index).
void ArmMatrix(int policy_kind, uint64_t seed) {
  const std::vector<std::string> sites = fail::KnownSites();
  for (size_t i = 0; i < sites.size(); ++i) {
    const Status injected = InjectedStatus(sites[i]);
    switch (policy_kind) {
      case 0:
        fail::Arm(sites[i], fail::Policy::Once(injected));
        break;
      case 1:
        fail::Arm(sites[i], fail::Policy::OnNthHit(
                                3 + (i + seed) % 8, injected));
        break;
      default:
        fail::Arm(sites[i], fail::Policy::WithProbability(
                                0.01, seed * 131 + i, injected));
        break;
    }
  }
}

TEST(ChaosStressTest, SeededFaultMatrixKeepsTheServiceSane) {
  if (!fail::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out (AQP_ENABLE_FAILPOINTS off)";
  }
  fail::DisarmAll();
  const datagen::TestCase& tc = ChaosCase();
  constexpr size_t kQueries = 10;

  // Solo references per flavor — computed BEFORE any site is armed
  // (the failpoint registry is process-global).
  std::map<size_t, storage::Relation> references;
  for (size_t flavor = 0; flavor < 4; ++flavor) {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    ParallelAdaptiveJoin join(&child, &parent, MakeOptions(tc, flavor));
    auto result = exec::CollectAll(&join);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    references.emplace(flavor, std::move(*result));
  }

  size_t bursts = 0, faulted = 0, degraded = 0, clean = 0, rejected = 0;
  for (int policy_kind = 0; policy_kind < 3; ++policy_kind) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE(testing::Message() << "policy " << policy_kind
                                      << " seed " << seed);
      ++bursts;
      ServiceOptions so;
      so.worker_threads = 2;
      so.admission.max_concurrent_queries = 3;
      so.admission.max_total_shards = 6;
      LinkageService service(so);

      ArmMatrix(policy_kind, seed);
      std::vector<std::unique_ptr<exec::Operator>> scans;
      std::vector<QueryId> ids(kQueries, 0);
      std::vector<bool> submitted(kQueries, false);
      for (size_t i = 0; i < kQueries; ++i) {
        scans.push_back(std::make_unique<exec::RelationScan>(&tc.child));
        scans.push_back(std::make_unique<exec::RelationScan>(&tc.parent));
        // A quarter of the burst reads through PrefetchSource wrappers,
        // putting the ingest.prefetch site (and the producer-thread
        // fault containment behind it) into the blast radius.
        if (i % 4 == 2) {
          auto child_wrap = std::make_unique<exec::PrefetchSource>(
              scans[scans.size() - 2].get());
          auto parent_wrap = std::make_unique<exec::PrefetchSource>(
              scans[scans.size() - 1].get());
          scans.push_back(std::move(child_wrap));
          scans.push_back(std::move(parent_wrap));
        }
        QueryOptions qo;
        qo.join = MakeOptions(tc, i);
        // Half the burst opts into graceful degradation; a third gets
        // transient-source retries.
        if (i % 2 == 1) qo.join.on_fault = FaultPolicy::kFinalizePartial;
        if (i % 3 == 0) qo.join.source_retry.max_retries = 2;
        auto id = service.Submit(scans[scans.size() - 2].get(),
                                 scans[scans.size() - 1].get(), qo);
        if (!id.ok()) {
          // The service.admit site fired: rejection before admission is
          // a legal terminal outcome — and must not cost any budget.
          EXPECT_NE(id.status().message().find("site=service.admit"),
                    std::string::npos)
              << id.status();
          ++rejected;
          continue;
        }
        ids[i] = *id;
        submitted[i] = true;
      }

      for (size_t i = 0; i < kQueries; ++i) {
        if (!submitted[i]) continue;
        SCOPED_TRACE(testing::Message() << "query " << i);
        auto stats = service.Wait(ids[i]);
        ASSERT_TRUE(stats.ok()) << stats.status().ToString();
        ASSERT_TRUE(IsTerminalState(stats->state));
        if (stats->state == QueryState::kFailed) {
          // Faulted hard: the terminal status is the injected (or
          // derived) error, breadcrumbed with the query id.
          ++faulted;
          EXPECT_FALSE(stats->status.ok());
          EXPECT_NE(stats->status.message().find(
                        "query=" + std::to_string(ids[i])),
                    std::string::npos)
              << stats->status;
          EXPECT_FALSE(service.TakeResult(ids[i]).ok());
          continue;
        }
        ASSERT_EQ(stats->state, QueryState::kDone)
            << stats->status.ToString();
        auto result = service.TakeResult(ids[i]);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        const storage::Relation& reference = references.at(i % 4);
        if (stats->finalized_early) {
          // Degraded: done with a prefix partial result + FaultReport.
          ++degraded;
          ASSERT_TRUE(stats->fault.has_value());
          EXPECT_FALSE(stats->fault->status.ok());
          // Injected faults always carry a site breadcrumb, and the
          // reported step count is the published one: every counted
          // step belongs to a committed epoch of the delivered prefix.
          EXPECT_FALSE(stats->fault->site.empty());
          EXPECT_EQ(stats->fault->step, stats->steps);
          EXPECT_GE(stats->completeness.ratio, 0.0);
          EXPECT_LE(stats->completeness.ratio, 1.0);
          ASSERT_LE(result->size(), reference.size());
          for (size_t r = 0; r < result->size(); ++r) {
            ASSERT_EQ(result->row(r), reference.row(r)) << "row " << r;
          }
        } else {
          // Untouched (or transparently retried): byte-identical to
          // the solo run.
          ++clean;
          EXPECT_FALSE(stats->fault.has_value());
          ASSERT_EQ(result->size(), reference.size());
          for (size_t r = 0; r < result->size(); ++r) {
            ASSERT_EQ(result->row(r), reference.row(r)) << "row " << r;
          }
        }
      }

      fail::DisarmAll();
      // Budget-leak invariant: whatever mix of outcomes the burst had,
      // the service is quiescent and every admit was released.
      EXPECT_EQ(service.running_queries(), 0u);
      EXPECT_EQ(service.queued_queries(), 0u);
      EXPECT_EQ(service.shards_in_use(), 0u);
      EXPECT_EQ(service.admitted_total(), service.released_total());
    }
  }

  // The matrix actually bit: across 9 bursts x 10 queries, faults
  // fired and at least one query of every terminal shape showed up.
  EXPECT_EQ(bursts, 9u);
  EXPECT_GT(faulted + degraded + rejected, 0u);
  EXPECT_GT(clean, 0u);
}

TEST(ChaosStressTest, MemoryPressureBurstTerminatesEveryQueryWithoutLeaks) {
  // The memory-pressure flavor: a 10-query burst against a global
  // high-water deliberately below the burst's aggregate peak, with a
  // third of the queries under a per-query hard budget of half their
  // own natural footprint. Needs no failpoints — pressure is the
  // chaos. Invariants:
  //   * every query terminal (done, possibly partial; or shed at
  //     submission with kResourceExhausted);
  //   * a hard-budgeted query finalizes early, and when the per-query
  //     budget is what tripped, its recorded peak stayed at or under
  //     the budget (the predictive bound);
  //   * partials are strict prefixes of the ungoverned reference;
  //   * no budget-counter leak: admission balanced, the governor's
  //     global aggregate back to zero.
  const datagen::TestCase& tc = ChaosCase();
  constexpr size_t kQueries = 10;

  // Calibrate each flavor solo under an unlimited budget tree: its
  // natural peak, and its footprint at the *first* control point —
  // the un-governable floor (the symmetric stores' upfront
  // reservations land before any budget decision can run). A
  // meaningful hard budget sits between the two; below the floor the
  // recorded peak is the floor, not the budget.
  std::map<size_t, storage::Relation> references;
  uint64_t flavor_floor[4] = {0, 0, 0, 0};
  uint64_t flavor_peak[4] = {0, 0, 0, 0};
  uint64_t flavor_budget[4] = {0, 0, 0, 0};
  uint64_t max_peak = 0;
  for (size_t flavor = 0; flavor < 4; ++flavor) {
    mem::BudgetNode root("calibrate");
    {
      mem::BudgetNode query("query", &root);
      exec::RelationScan child(&tc.child);
      exec::RelationScan parent(&tc.parent);
      ParallelJoinOptions options = MakeOptions(tc, flavor);
      options.memory_budget = &query;
      uint64_t first_cp = 0;
      options.governor = [&](const exec::parallel::EpochView& view) {
        if (first_cp == 0) first_cp = view.memory_bytes;
        return exec::parallel::EpochDirective::kProceed;
      };
      ParallelAdaptiveJoin join(&child, &parent, options);
      auto result = exec::CollectAll(&join);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      references.emplace(flavor, std::move(*result));
      flavor_floor[flavor] = first_cp;
      flavor_peak[flavor] = std::max(root.peak(), join.memory_bytes());
    }
    ASSERT_GT(flavor_floor[flavor], 0u);
    ASSERT_GT(flavor_peak[flavor], flavor_floor[flavor]);
    // Midway between floor and peak: unfinishable, yet above the floor
    // so the predictive bound can keep the recorded peak under it.
    flavor_budget[flavor] =
        flavor_floor[flavor] +
        (flavor_peak[flavor] - flavor_floor[flavor]) / 2;
    max_peak = std::max(max_peak, flavor_peak[flavor]);
  }

  // Global line at 1.5x one query's peak: three concurrent queries
  // overshoot it, so admission holds, sheds, or pressure-reclaims.
  ServiceOptions so;
  so.worker_threads = 2;
  so.admission.max_concurrent_queries = 3;
  so.admission.max_total_shards = 6;
  so.admission.global_memory_high_water_bytes = max_peak + max_peak / 2;
  so.governor.finalize_youngest_on_pressure = true;
  so.governor.poll_interval = std::chrono::milliseconds(2);
  LinkageService service(so);

  std::vector<std::unique_ptr<exec::RelationScan>> scans;
  std::vector<QueryId> ids(kQueries, 0);
  std::vector<bool> submitted(kQueries, false);
  size_t shed = 0;
  for (size_t i = 0; i < kQueries; ++i) {
    scans.push_back(std::make_unique<exec::RelationScan>(&tc.child));
    scans.push_back(std::make_unique<exec::RelationScan>(&tc.parent));
    QueryOptions qo;
    qo.join = MakeOptions(tc, i);
    // A third of the burst gets a hard budget it cannot finish under.
    const bool hard_budgeted = i % 3 == 2;
    if (hard_budgeted) qo.memory.hard_bytes = flavor_budget[i % 4];
    auto id = service.Submit(scans[scans.size() - 2].get(),
                             scans[scans.size() - 1].get(), qo);
    if (!id.ok()) {
      EXPECT_TRUE(id.status().IsResourceExhausted()) << id.status();
      EXPECT_NE(id.status().ToString().find("global.high_water"),
                std::string::npos);
      ++shed;
      continue;
    }
    ids[i] = *id;
    submitted[i] = true;
  }

  size_t full = 0, partial = 0, hard_submitted = 0;
  for (size_t i = 0; i < kQueries; ++i) {
    if (!submitted[i]) continue;
    SCOPED_TRACE(testing::Message() << "query " << i);
    auto stats = service.Wait(ids[i]);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ASSERT_TRUE(IsTerminalState(stats->state));
    // No faults are armed: pressure degrades, it never fails a query.
    ASSERT_EQ(stats->state, QueryState::kDone) << stats->status.ToString();
    auto result = service.TakeResult(ids[i]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const storage::Relation& reference = references.at(i % 4);
    ASSERT_LE(result->size(), reference.size());
    for (size_t r = 0; r < result->size(); ++r) {
      ASSERT_EQ(result->row(r), reference.row(r)) << "row " << r;
    }
    if (i % 3 == 2) {
      // Half its own peak is not survivable: governance intervened,
      // well before the run could finish.
      ++hard_submitted;
      EXPECT_TRUE(stats->finalized_early);
      EXPECT_LT(result->size(), reference.size());
      ASSERT_TRUE(stats->resource.has_value());
      if (stats->resource->site == resource_site::kQueryHardBudget) {
        EXPECT_EQ(stats->resource->budget_bytes, flavor_budget[i % 4]);
        // The predictive hard bound: the recorded peak never
        // overshot the budget it was protecting.
        EXPECT_LE(stats->resource->peak_bytes,
                  stats->resource->budget_bytes);
      } else {
        // Pressure reclaim beat the per-query budget to it.
        EXPECT_EQ(stats->resource->site, resource_site::kGlobalHighWater);
      }
    }
    if (stats->finalized_early) {
      ++partial;
    } else {
      // A reclaim flag that landed after the query's last control
      // point leaves a report but no truncation; the result is still
      // the full one.
      ++full;
      EXPECT_EQ(result->size(), reference.size());
    }
  }

  // The burst actually ran under pressure: every hard-budgeted query
  // that got in was cut to a partial, and nothing was lost — each of
  // the ten submissions is accounted full, partial, or shed.
  EXPECT_GE(partial, hard_submitted);
  EXPECT_EQ(full + partial + shed, kQueries);
  EXPECT_EQ(service.memory_shed_total(), shed);
  // Budget-counter leak check: quiescent service, balanced admission,
  // nothing left charged under the global root.
  EXPECT_EQ(service.running_queries(), 0u);
  EXPECT_EQ(service.queued_queries(), 0u);
  EXPECT_EQ(service.shards_in_use(), 0u);
  EXPECT_EQ(service.admitted_total(), service.released_total());
  EXPECT_EQ(service.governor()->used(), 0u);
  EXPECT_GT(service.governor()->peak(), 0u);
}

TEST(ChaosStressTest, BackToBackBurstsOnOneServiceStayClean) {
  // Same service instance across waves with different sites armed:
  // sticky per-query errors must not bleed into later waves.
  if (!fail::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out (AQP_ENABLE_FAILPOINTS off)";
  }
  fail::DisarmAll();
  const datagen::TestCase& tc = ChaosCase();
  ServiceOptions so;
  so.worker_threads = 2;
  so.admission.max_concurrent_queries = 2;
  so.admission.max_total_shards = 4;
  LinkageService service(so);

  const std::vector<std::string> wave_sites = {
      fail::site::kShardPhaseA, fail::site::kExchangeRoute,
      fail::site::kExchangeStage, fail::site::kServiceFinalize};
  for (size_t wave = 0; wave < wave_sites.size(); ++wave) {
    SCOPED_TRACE(testing::Message() << "wave " << wave);
    fail::Arm(wave_sites[wave],
              fail::Policy::OnNthHit(4, Status::IOError("injected fault"),
                                     /*do_throw=*/wave == 0));
    std::vector<std::unique_ptr<exec::RelationScan>> scans;
    std::vector<QueryId> ids;
    for (size_t i = 0; i < 4; ++i) {
      scans.push_back(std::make_unique<exec::RelationScan>(&tc.child));
      scans.push_back(std::make_unique<exec::RelationScan>(&tc.parent));
      QueryOptions qo;
      qo.join = MakeOptions(tc, i);
      if (i % 2 == 1) qo.join.on_fault = FaultPolicy::kFinalizePartial;
      auto id = service.Submit(scans[scans.size() - 2].get(),
                               scans[scans.size() - 1].get(), qo);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      ids.push_back(*id);
    }
    for (QueryId id : ids) {
      auto stats = service.Wait(id);
      ASSERT_TRUE(stats.ok());
      ASSERT_TRUE(IsTerminalState(stats->state));
    }
    fail::DisarmAll();
    EXPECT_EQ(service.shards_in_use(), 0u);
    EXPECT_EQ(service.admitted_total(), service.released_total());
  }

  // After the chaos, an unarmed wave completes clean.
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  QueryOptions qo;
  qo.join = MakeOptions(tc, 0);
  auto id = service.Submit(&child, &parent, qo);
  ASSERT_TRUE(id.ok());
  auto stats = service.Wait(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->state, QueryState::kDone) << stats->status.ToString();
  EXPECT_FALSE(stats->fault.has_value());
}

}  // namespace
}  // namespace service
}  // namespace aqp
