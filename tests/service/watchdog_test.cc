// The stuck-query watchdog and whole-query retry. A deterministically
// stalled query (the `watchdog.stall` failpoint holds its control
// point with a stale heartbeat) must be detected and force-finalized
// with the strict-prefix partial it has merged, while a healthy slow
// query under a generous tolerance must never trip it. Recoverably
// failed attempts (kUnavailable/kIOError) retry with exponential
// backoff and land byte-identical to an undisturbed run; exhausted
// retries and non-recoverable failures stay failed on the first try.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "datagen/generator.h"
#include "exec/parallel/parallel_join.h"
#include "exec/scan.h"
#include "exec/stream.h"
#include "service/linkage_service.h"

namespace aqp {
namespace service {
namespace {

using exec::parallel::ParallelAdaptiveJoin;
using exec::parallel::ParallelJoinOptions;

const datagen::TestCase& PaperCase() {
  static const datagen::TestCase* tc = [] {
    datagen::TestCaseOptions options;
    options.pattern = datagen::PerturbationPattern::kFewHighIntensityRegions;
    options.perturb_parent = false;
    options.variant_rate = 0.10;
    options.atlas.size = 400;
    options.accidents.size = 800;
    options.seed = 20090326;
    auto generated = datagen::GenerateTestCase(options);
    EXPECT_TRUE(generated.ok());
    return new datagen::TestCase(std::move(*generated));
  }();
  return *tc;
}

ParallelJoinOptions BaseJoinOptions(const datagen::TestCase& tc) {
  ParallelJoinOptions options;
  options.base.join.spec.left_column = datagen::kAccidentsLocationColumn;
  options.base.join.spec.right_column = datagen::kAtlasLocationColumn;
  options.base.join.spec.sim_threshold = 0.85;
  options.base.adaptive.parent_side = exec::Side::kRight;
  options.base.adaptive.parent_table_size = tc.parent.size();
  options.base.adaptive.delta_adapt = 50;
  options.base.adaptive.window = 50;
  options.num_shards = 2;
  return options;
}

storage::Relation SoloRun(const datagen::TestCase& tc,
                          ParallelJoinOptions options) {
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  ParallelAdaptiveJoin join(&child, &parent, options);
  auto result = exec::CollectAll(&join);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

ServiceOptions SmallService() {
  ServiceOptions so;
  so.worker_threads = 2;
  so.admission.max_concurrent_queries = 2;
  so.admission.max_total_shards = 4;
  return so;
}

/// Scoped disarm-on-exit, so a failing assertion cannot leak an armed
/// site into the next test.
struct FailpointGuard {
  FailpointGuard() { fail::DisarmAll(); }
  ~FailpointGuard() { fail::DisarmAll(); }
};

TEST(WatchdogTest, ForceFinalizesADeterministicallyStalledQuery) {
  if (!fail::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  FailpointGuard guard;
  const datagen::TestCase& tc = PaperCase();
  const storage::Relation reference = SoloRun(tc, BaseJoinOptions(tc));

  ServiceOptions so = SmallService();
  so.governor.stall_timeout = std::chrono::milliseconds(50);
  so.governor.poll_interval = std::chrono::milliseconds(2);
  LinkageService service(so);

  // The stall probe holds the first governed control point with the
  // heartbeat going stale; the watchdog must notice within the
  // tolerance and force-finalize.
  fail::Arm(fail::site::kWatchdogStall,
            fail::Policy::Once(Status::Unavailable("stall here")));
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  QueryOptions qo;
  qo.join = BaseJoinOptions(tc);
  auto id = service.Submit(&child, &parent, qo);
  ASSERT_TRUE(id.ok());
  auto stats = service.Wait(*id);
  ASSERT_TRUE(stats.ok());

  // Force-finalization is graceful degradation, not failure: the query
  // is done, with the strict-prefix partial it had merged.
  EXPECT_EQ(stats->state, QueryState::kDone) << stats->status.ToString();
  EXPECT_TRUE(stats->finalized_early);
  ASSERT_TRUE(stats->resource.has_value());
  EXPECT_EQ(stats->resource->site, resource_site::kWatchdogStall);
  EXPECT_EQ(stats->resource->budget_bytes, 0u);
  EXPECT_TRUE(stats->resource->status.IsUnavailable());
  EXPECT_NE(stats->resource->status.ToString().find("watchdog.stall"),
            std::string::npos);
  EXPECT_EQ(service.watchdog_finalized_total(), 1u);

  auto result = service.TakeResult(*id);
  ASSERT_TRUE(result.ok());
  ASSERT_LT(result->size(), reference.size());
  for (size_t i = 0; i < result->size(); ++i) {
    ASSERT_EQ(result->row(i), reference.row(i)) << "row " << i;
  }
  EXPECT_EQ(service.admitted_total(), service.released_total());
  EXPECT_EQ(service.shards_in_use(), 0u);
  EXPECT_EQ(service.governor()->used(), 0u);
}

TEST(WatchdogTest, NeverFiresOnAHealthySlowQuery) {
  const datagen::TestCase& tc = PaperCase();
  ServiceOptions so = SmallService();
  // Tight poll, generous tolerance: every control point and drain
  // iteration re-stamps the heartbeat, so a query that is merely slow
  // (thousands of times slower than the poll) never goes stale.
  so.governor.stall_timeout = std::chrono::seconds(30);
  so.governor.poll_interval = std::chrono::milliseconds(1);
  LinkageService service(so);

  const storage::Relation reference = SoloRun(tc, BaseJoinOptions(tc));
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  QueryOptions qo;
  qo.join = BaseJoinOptions(tc);
  qo.drain_batch = 16;  // many drain iterations, each re-stamping
  auto id = service.Submit(&child, &parent, qo);
  ASSERT_TRUE(id.ok());
  auto stats = service.Wait(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->state, QueryState::kDone) << stats->status.ToString();
  EXPECT_FALSE(stats->finalized_early);
  EXPECT_FALSE(stats->resource.has_value());
  EXPECT_EQ(service.watchdog_finalized_total(), 0u);

  auto result = service.TakeResult(*id);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(result->row(i), reference.row(i)) << "row " << i;
  }
}

// ---------------------------------------------------------------------
// Whole-query retry.

TEST(WatchdogRetryTest, RetriesARecoverablyFailedAttempt) {
  if (!fail::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  FailpointGuard guard;
  const datagen::TestCase& tc = PaperCase();
  const storage::Relation reference = SoloRun(tc, BaseJoinOptions(tc));
  LinkageService service(SmallService());

  // First attempt dies on a transient source failure; the second runs
  // against the recovered (disarmed) source and must be byte-identical
  // to an undisturbed run — re-execution is idempotent.
  fail::Arm(fail::site::kScanNext,
            fail::Policy::Once(Status::Unavailable("transient scan fault")));
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  QueryOptions qo;
  qo.join = BaseJoinOptions(tc);
  qo.retry.max_retries = 2;
  qo.retry.backoff_base = std::chrono::milliseconds(1);
  auto id = service.Submit(&child, &parent, qo);
  ASSERT_TRUE(id.ok());
  auto stats = service.Wait(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->state, QueryState::kDone) << stats->status.ToString();
  EXPECT_EQ(stats->attempts, 2u);
  EXPECT_EQ(stats->retries, 1u);
  EXPECT_FALSE(stats->finalized_early);

  auto result = service.TakeResult(*id);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(result->row(i), reference.row(i)) << "row " << i;
  }
  EXPECT_EQ(service.admitted_total(), service.released_total());
  EXPECT_EQ(service.shards_in_use(), 0u);
}

TEST(WatchdogRetryTest, BackoffLongerThanStallToleranceIsNotAStall) {
  if (!fail::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  FailpointGuard guard;
  const datagen::TestCase& tc = PaperCase();
  const storage::Relation reference = SoloRun(tc, BaseJoinOptions(tc));

  // Watchdog armed with a tolerance well below the retry backoff: the
  // heartbeat is parked at the failed attempt's last control point for
  // the whole sleep, so without the backing-off exemption the monitor
  // would force-finalize a healthy retrying query — and the sticky
  // flag would then cut the recovered second attempt to a near-empty
  // partial labeled watchdog.stall.
  ServiceOptions so = SmallService();
  so.governor.stall_timeout = std::chrono::milliseconds(100);
  so.governor.poll_interval = std::chrono::milliseconds(2);
  LinkageService service(so);

  fail::Arm(fail::site::kScanNext,
            fail::Policy::Once(Status::Unavailable("transient scan fault")));
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  QueryOptions qo;
  qo.join = BaseJoinOptions(tc);
  qo.retry.max_retries = 2;
  qo.retry.backoff_base = std::chrono::milliseconds(400);
  auto id = service.Submit(&child, &parent, qo);
  ASSERT_TRUE(id.ok());
  auto stats = service.Wait(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->state, QueryState::kDone) << stats->status.ToString();
  EXPECT_EQ(stats->attempts, 2u);
  EXPECT_FALSE(stats->finalized_early);
  EXPECT_FALSE(stats->resource.has_value());
  EXPECT_EQ(service.watchdog_finalized_total(), 0u);

  auto result = service.TakeResult(*id);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(result->row(i), reference.row(i)) << "row " << i;
  }
  EXPECT_EQ(service.admitted_total(), service.released_total());
  EXPECT_EQ(service.shards_in_use(), 0u);
}

TEST(WatchdogRetryTest, ExhaustsRetriesAndStaysFailed) {
  if (!fail::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  FailpointGuard guard;
  const datagen::TestCase& tc = PaperCase();
  LinkageService service(SmallService());

  // Every attempt fails: 1 initial + 2 retries, then terminal failed.
  fail::Arm(fail::site::kScanNext,
            fail::Policy::WithProbability(
                1.0, 7, Status::Unavailable("source stays down")));
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  QueryOptions qo;
  qo.join = BaseJoinOptions(tc);
  qo.retry.max_retries = 2;
  auto id = service.Submit(&child, &parent, qo);
  ASSERT_TRUE(id.ok());
  auto stats = service.Wait(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->state, QueryState::kFailed);
  EXPECT_TRUE(stats->status.IsUnavailable()) << stats->status.ToString();
  EXPECT_EQ(stats->attempts, 3u);
  EXPECT_EQ(stats->retries, 2u);
  EXPECT_EQ(service.admitted_total(), service.released_total());
  EXPECT_EQ(service.shards_in_use(), 0u);
  EXPECT_EQ(service.governor()->used(), 0u);
}

TEST(WatchdogRetryTest, DoesNotRetryNonRecoverableFailures) {
  if (!fail::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  FailpointGuard guard;
  const datagen::TestCase& tc = PaperCase();
  LinkageService service(SmallService());

  // An invariant violation is a bug, not weather — retrying would just
  // re-run the bug. One attempt, terminal failed.
  fail::Arm(fail::site::kScanNext,
            fail::Policy::Once(Status::Internal("invariant violated")));
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  QueryOptions qo;
  qo.join = BaseJoinOptions(tc);
  qo.retry.max_retries = 5;
  auto id = service.Submit(&child, &parent, qo);
  ASSERT_TRUE(id.ok());
  auto stats = service.Wait(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->state, QueryState::kFailed);
  EXPECT_EQ(stats->attempts, 1u);
  EXPECT_EQ(stats->retries, 0u);
  EXPECT_EQ(service.admitted_total(), service.released_total());
}

TEST(WatchdogRetryTest, CancelInterruptsRetryBackoff) {
  if (!fail::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  FailpointGuard guard;
  const datagen::TestCase& tc = PaperCase();
  LinkageService service(SmallService());

  // Attempts always fail; the backoff between them is far longer than
  // the test. Cancel() must cut the sleep short, not wait it out.
  fail::Arm(fail::site::kScanNext,
            fail::Policy::WithProbability(
                1.0, 11, Status::Unavailable("source stays down")));
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  QueryOptions qo;
  qo.join = BaseJoinOptions(tc);
  qo.retry.max_retries = 10;
  qo.retry.backoff_base = std::chrono::seconds(30);
  const auto begun = std::chrono::steady_clock::now();
  auto id = service.Submit(&child, &parent, qo);
  ASSERT_TRUE(id.ok());
  // Give the first attempt a moment to fail and enter backoff, then
  // cancel. (If the cancel happens to land mid-attempt instead, the
  // governor path also honors it — either way terminal is prompt.)
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(service.Cancel(*id).ok());
  auto stats = service.Wait(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->state, QueryState::kCancelled);
  EXPECT_LT(std::chrono::steady_clock::now() - begun,
            std::chrono::seconds(20));
  EXPECT_EQ(service.admitted_total(), service.released_total());
  EXPECT_EQ(service.shards_in_use(), 0u);
}

}  // namespace
}  // namespace service
}  // namespace aqp
