#include <gtest/gtest.h>

#include <string>

#include "common/failpoint.h"
#include "service/admission.h"
#include "service/linkage_service.h"
#include "service/query.h"

namespace aqp {
namespace service {
namespace {

/// Source that fails at a chosen point in its life: at Open, or with
/// `fault` after `good_rows` produced rows (an OK fault means a normal
/// end-of-stream — a well-behaved source).
class BrittleSource : public exec::Operator {
 public:
  BrittleSource(bool fail_open, int good_rows, Status fault)
      : schema_({{"s", storage::ValueType::kString}}),
        fail_open_(fail_open),
        good_rows_(good_rows),
        fault_(std::move(fault)) {}
  Status Open() override {
    if (fail_open_) return Status::IOError("open refused");
    produced_ = 0;
    return Status::OK();
  }
  Result<std::optional<storage::Tuple>> Next() override {
    if (produced_ >= good_rows_) {
      if (fault_.ok()) return std::optional<storage::Tuple>();
      return fault_;
    }
    const int i = produced_++;
    return std::optional<storage::Tuple>(
        storage::Tuple{storage::Value("KEY " + std::to_string(i % 7))});
  }
  Status Close() override { return Status::OK(); }
  const storage::Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "BrittleSource"; }

 private:
  storage::Schema schema_;
  bool fail_open_;
  int good_rows_;
  Status fault_;
  int produced_ = 0;
};

QueryOptions TinyQuery() {
  QueryOptions qo;
  qo.join.base.join.spec.left_column = 0;
  qo.join.base.join.spec.right_column = 0;
  qo.join.base.join.batch_size = 16;
  qo.join.base.adaptive.delta_adapt = 32;
  qo.join.base.adaptive.window = 32;
  qo.join.num_shards = 2;
  return qo;
}

ServiceOptions TinyService() {
  ServiceOptions so;
  so.worker_threads = 1;
  so.admission.max_concurrent_queries = 1;
  so.admission.max_total_shards = 2;
  return so;
}

void ExpectBudgetQuiescent(const LinkageService& service, size_t admitted) {
  EXPECT_EQ(service.running_queries(), 0u);
  EXPECT_EQ(service.shards_in_use(), 0u);
  EXPECT_EQ(service.admitted_total(), admitted);
  EXPECT_EQ(service.released_total(), admitted);
}

// ---------------------------------------------------------------------
// Failure-path budget tests: every terminal path — open failure,
// mid-stream failure, queued cancel, injected finalization failure —
// must release slots and shards exactly once.

TEST(AdmissionFailurePathTest, OpenFailureReleasesTheBudget) {
  LinkageService service(TinyService());
  BrittleSource left(/*fail_open=*/true, 0, Status::OK());
  BrittleSource right(false, 64, Status::OK());
  auto id = service.Submit(&left, &right, TinyQuery());
  ASSERT_TRUE(id.ok());
  auto stats = service.Wait(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->state, QueryState::kFailed);
  EXPECT_TRUE(stats->status.IsIOError()) << stats->status;
  ExpectBudgetQuiescent(service, 1);

  // The freed slot is genuinely reusable.
  BrittleSource left2(false, 64, Status::OK());
  BrittleSource right2(false, 64, Status::OK());
  auto id2 = service.Submit(&left2, &right2, TinyQuery());
  ASSERT_TRUE(id2.ok());
  auto stats2 = service.Wait(*id2);
  ASSERT_TRUE(stats2.ok());
  EXPECT_EQ(stats2->state, QueryState::kDone) << stats2->status.ToString();
  ExpectBudgetQuiescent(service, 2);
}

TEST(AdmissionFailurePathTest, MidStreamFailureReleasesTheBudget) {
  LinkageService service(TinyService());
  BrittleSource left(false, 40, Status::IOError("mid-stream fault"));
  BrittleSource right(false, 200, Status::OK());
  auto id = service.Submit(&left, &right, TinyQuery());
  ASSERT_TRUE(id.ok());
  auto stats = service.Wait(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->state, QueryState::kFailed);
  EXPECT_TRUE(stats->status.IsIOError()) << stats->status;
  ExpectBudgetQuiescent(service, 1);
}

TEST(AdmissionFailurePathTest, QueuedCancelNeverTouchesTheBudget) {
  LinkageService service(TinyService());
  // Occupy the lone slot...
  BrittleSource left_a(false, 400, Status::OK());
  BrittleSource right_a(false, 400, Status::OK());
  auto a = service.Submit(&left_a, &right_a, TinyQuery());
  ASSERT_TRUE(a.ok());
  // ...and cancel a query stuck behind it in the queue: it terminates
  // without ever being admitted, so it must not release anything.
  BrittleSource left_b(false, 8, Status::OK());
  BrittleSource right_b(false, 8, Status::OK());
  auto b = service.Submit(&left_b, &right_b, TinyQuery());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(service.Cancel(*b).ok());
  auto stats_b = service.Wait(*b);
  ASSERT_TRUE(stats_b.ok());
  EXPECT_EQ(stats_b->state, QueryState::kCancelled);
  auto stats_a = service.Wait(*a);
  ASSERT_TRUE(stats_a.ok());
  EXPECT_EQ(stats_a->state, QueryState::kDone);
  ExpectBudgetQuiescent(service, 1);  // only query A was ever admitted
}

TEST(AdmissionFailurePathTest, RepeatedWaitAndTakeDoNotDoubleRelease) {
  LinkageService service(TinyService());
  BrittleSource left(false, 64, Status::OK());
  BrittleSource right(false, 64, Status::OK());
  auto id = service.Submit(&left, &right, TinyQuery());
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Wait(*id).ok());
  ASSERT_TRUE(service.Wait(*id).ok());  // waiting again is harmless
  ASSERT_TRUE(service.TakeResult(*id).ok());
  EXPECT_TRUE(service.TakeResult(*id).status().IsFailedPrecondition());
  ExpectBudgetQuiescent(service, 1);
}

TEST(AdmissionFailurePathTest, AdmitFailpointRejectsBeforeAccounting) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  fail::DisarmAll();
  LinkageService service(TinyService());
  BrittleSource left(false, 8, Status::OK());
  BrittleSource right(false, 8, Status::OK());
  {
    fail::ScopedFailpoint guard(
        fail::site::kServiceAdmit,
        fail::Policy::Once(Status::ResourceExhausted("injected fault")));
    auto id = service.Submit(&left, &right, TinyQuery());
    ASSERT_FALSE(id.ok());
    EXPECT_TRUE(id.status().IsResourceExhausted());
    EXPECT_NE(id.status().message().find("site=service.admit"),
              std::string::npos)
        << id.status();
  }
  // The rejected submission never entered the budget.
  ExpectBudgetQuiescent(service, 0);
  auto id = service.Submit(&left, &right, TinyQuery());
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Wait(*id).ok());
  ExpectBudgetQuiescent(service, 1);
}

TEST(AdmissionFailurePathTest, FinalizeFailpointStillReleasesTheBudget) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  fail::DisarmAll();
  LinkageService service(TinyService());
  BrittleSource left(false, 64, Status::OK());
  BrittleSource right(false, 64, Status::OK());
  QueryId id = 0;
  {
    fail::ScopedFailpoint guard(
        fail::site::kServiceFinalize,
        fail::Policy::Once(Status::IOError("injected fault")));
    auto submitted = service.Submit(&left, &right, TinyQuery());
    ASSERT_TRUE(submitted.ok());
    id = *submitted;
    auto stats = service.Wait(id);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->state, QueryState::kFailed);
    EXPECT_NE(stats->status.message().find("site=service.finalize"),
              std::string::npos)
        << stats->status;
    // The breadcrumb names the failing query.
    EXPECT_NE(stats->status.message().find("query=" + std::to_string(id)),
              std::string::npos)
        << stats->status;
  }
  ExpectBudgetQuiescent(service, 1);
}

TEST(AdmissionControllerTest, CapsConcurrentQueries) {
  AdmissionOptions options;
  options.max_concurrent_queries = 2;
  options.max_total_shards = 0;  // no shard budget
  AdmissionController admission(options);

  EXPECT_TRUE(admission.CanAdmit(8));
  admission.Admit(8);
  EXPECT_TRUE(admission.CanAdmit(8));
  admission.Admit(8);
  EXPECT_FALSE(admission.CanAdmit(1));  // slots exhausted
  admission.Release(8);
  EXPECT_TRUE(admission.CanAdmit(4));
  EXPECT_EQ(admission.running_queries(), 1u);
  EXPECT_EQ(admission.peak_running_queries(), 2u);
  EXPECT_EQ(admission.peak_shards_in_use(), 16u);
}

TEST(AdmissionControllerTest, CapsTotalShards) {
  AdmissionOptions options;
  options.max_concurrent_queries = 8;
  options.max_total_shards = 6;
  AdmissionController admission(options);

  EXPECT_TRUE(admission.CanAdmit(4));
  admission.Admit(4);
  EXPECT_FALSE(admission.CanAdmit(3));  // 4 + 3 > 6
  EXPECT_TRUE(admission.CanAdmit(2));
  admission.Admit(2);
  EXPECT_FALSE(admission.CanAdmit(1));
  admission.Release(4);
  EXPECT_TRUE(admission.CanAdmit(4));
  EXPECT_EQ(admission.shards_in_use(), 2u);
}

TEST(AdmissionControllerTest, ClampShardsHonorsBudgetAndFloor) {
  AdmissionOptions options;
  options.max_total_shards = 6;
  AdmissionController admission(options);
  EXPECT_EQ(admission.ClampShards(16), 6u);
  EXPECT_EQ(admission.ClampShards(3), 3u);
  EXPECT_EQ(admission.ClampShards(0), 1u);

  AdmissionOptions unlimited;
  unlimited.max_total_shards = 0;
  AdmissionController no_budget(unlimited);
  EXPECT_EQ(no_budget.ClampShards(16), 16u);
  EXPECT_EQ(no_budget.ClampShards(0), 1u);
}

TEST(AdmissionControllerTest, ZeroConcurrencyIsClampedToOne) {
  AdmissionOptions options;
  options.max_concurrent_queries = 0;
  AdmissionController admission(options);
  EXPECT_TRUE(admission.CanAdmit(1));
  admission.Admit(1);
  EXPECT_FALSE(admission.CanAdmit(1));
}

TEST(QueryStateTest, NamesAndTerminality) {
  EXPECT_STREQ(QueryStateName(QueryState::kQueued), "queued");
  EXPECT_STREQ(QueryStateName(QueryState::kRunning), "running");
  EXPECT_STREQ(QueryStateName(QueryState::kDraining), "draining");
  EXPECT_STREQ(QueryStateName(QueryState::kDone), "done");
  EXPECT_STREQ(QueryStateName(QueryState::kFailed), "failed");
  EXPECT_STREQ(QueryStateName(QueryState::kCancelled), "cancelled");

  EXPECT_FALSE(IsTerminalState(QueryState::kQueued));
  EXPECT_FALSE(IsTerminalState(QueryState::kRunning));
  EXPECT_FALSE(IsTerminalState(QueryState::kDraining));
  EXPECT_TRUE(IsTerminalState(QueryState::kDone));
  EXPECT_TRUE(IsTerminalState(QueryState::kFailed));
  EXPECT_TRUE(IsTerminalState(QueryState::kCancelled));
}

TEST(DeadlineOptionsTest, AnyDetectsEveryBudgetKind) {
  DeadlineOptions none;
  EXPECT_FALSE(none.any());
  DeadlineOptions soft_steps;
  soft_steps.soft_deadline_steps = 10;
  EXPECT_TRUE(soft_steps.any());
  DeadlineOptions hard_wall;
  hard_wall.hard_deadline = std::chrono::milliseconds(5);
  EXPECT_TRUE(hard_wall.any());
}

}  // namespace
}  // namespace service
}  // namespace aqp
