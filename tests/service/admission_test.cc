#include <gtest/gtest.h>

#include "service/admission.h"
#include "service/query.h"

namespace aqp {
namespace service {
namespace {

TEST(AdmissionControllerTest, CapsConcurrentQueries) {
  AdmissionOptions options;
  options.max_concurrent_queries = 2;
  options.max_total_shards = 0;  // no shard budget
  AdmissionController admission(options);

  EXPECT_TRUE(admission.CanAdmit(8));
  admission.Admit(8);
  EXPECT_TRUE(admission.CanAdmit(8));
  admission.Admit(8);
  EXPECT_FALSE(admission.CanAdmit(1));  // slots exhausted
  admission.Release(8);
  EXPECT_TRUE(admission.CanAdmit(4));
  EXPECT_EQ(admission.running_queries(), 1u);
  EXPECT_EQ(admission.peak_running_queries(), 2u);
  EXPECT_EQ(admission.peak_shards_in_use(), 16u);
}

TEST(AdmissionControllerTest, CapsTotalShards) {
  AdmissionOptions options;
  options.max_concurrent_queries = 8;
  options.max_total_shards = 6;
  AdmissionController admission(options);

  EXPECT_TRUE(admission.CanAdmit(4));
  admission.Admit(4);
  EXPECT_FALSE(admission.CanAdmit(3));  // 4 + 3 > 6
  EXPECT_TRUE(admission.CanAdmit(2));
  admission.Admit(2);
  EXPECT_FALSE(admission.CanAdmit(1));
  admission.Release(4);
  EXPECT_TRUE(admission.CanAdmit(4));
  EXPECT_EQ(admission.shards_in_use(), 2u);
}

TEST(AdmissionControllerTest, ClampShardsHonorsBudgetAndFloor) {
  AdmissionOptions options;
  options.max_total_shards = 6;
  AdmissionController admission(options);
  EXPECT_EQ(admission.ClampShards(16), 6u);
  EXPECT_EQ(admission.ClampShards(3), 3u);
  EXPECT_EQ(admission.ClampShards(0), 1u);

  AdmissionOptions unlimited;
  unlimited.max_total_shards = 0;
  AdmissionController no_budget(unlimited);
  EXPECT_EQ(no_budget.ClampShards(16), 16u);
  EXPECT_EQ(no_budget.ClampShards(0), 1u);
}

TEST(AdmissionControllerTest, ZeroConcurrencyIsClampedToOne) {
  AdmissionOptions options;
  options.max_concurrent_queries = 0;
  AdmissionController admission(options);
  EXPECT_TRUE(admission.CanAdmit(1));
  admission.Admit(1);
  EXPECT_FALSE(admission.CanAdmit(1));
}

TEST(QueryStateTest, NamesAndTerminality) {
  EXPECT_STREQ(QueryStateName(QueryState::kQueued), "queued");
  EXPECT_STREQ(QueryStateName(QueryState::kRunning), "running");
  EXPECT_STREQ(QueryStateName(QueryState::kDraining), "draining");
  EXPECT_STREQ(QueryStateName(QueryState::kDone), "done");
  EXPECT_STREQ(QueryStateName(QueryState::kFailed), "failed");
  EXPECT_STREQ(QueryStateName(QueryState::kCancelled), "cancelled");

  EXPECT_FALSE(IsTerminalState(QueryState::kQueued));
  EXPECT_FALSE(IsTerminalState(QueryState::kRunning));
  EXPECT_FALSE(IsTerminalState(QueryState::kDraining));
  EXPECT_TRUE(IsTerminalState(QueryState::kDone));
  EXPECT_TRUE(IsTerminalState(QueryState::kFailed));
  EXPECT_TRUE(IsTerminalState(QueryState::kCancelled));
}

TEST(DeadlineOptionsTest, AnyDetectsEveryBudgetKind) {
  DeadlineOptions none;
  EXPECT_FALSE(none.any());
  DeadlineOptions soft_steps;
  soft_steps.soft_deadline_steps = 10;
  EXPECT_TRUE(soft_steps.any());
  DeadlineOptions hard_wall;
  hard_wall.hard_deadline = std::chrono::milliseconds(5);
  EXPECT_TRUE(hard_wall.any());
}

}  // namespace
}  // namespace service
}  // namespace aqp
