#include "adaptive/state.h"

#include <gtest/gtest.h>

namespace aqp {
namespace adaptive {
namespace {

using join::ProbeMode;

TEST(StateTest, ModeDecomposition) {
  EXPECT_EQ(LeftMode(ProcessorState::kLexRex), ProbeMode::kExact);
  EXPECT_EQ(RightMode(ProcessorState::kLexRex), ProbeMode::kExact);
  EXPECT_EQ(LeftMode(ProcessorState::kLapRex), ProbeMode::kApproximate);
  EXPECT_EQ(RightMode(ProcessorState::kLapRex), ProbeMode::kExact);
  EXPECT_EQ(LeftMode(ProcessorState::kLexRap), ProbeMode::kExact);
  EXPECT_EQ(RightMode(ProcessorState::kLexRap), ProbeMode::kApproximate);
  EXPECT_EQ(LeftMode(ProcessorState::kLapRap), ProbeMode::kApproximate);
  EXPECT_EQ(RightMode(ProcessorState::kLapRap), ProbeMode::kApproximate);
}

TEST(StateTest, MakeStateRoundTrips) {
  for (ProcessorState s : kAllProcessorStates) {
    EXPECT_EQ(MakeProcessorState(LeftMode(s), RightMode(s)), s);
  }
}

TEST(StateTest, ModeOfSelectsSide) {
  EXPECT_EQ(ModeOf(ProcessorState::kLapRex, exec::Side::kLeft),
            ProbeMode::kApproximate);
  EXPECT_EQ(ModeOf(ProcessorState::kLapRex, exec::Side::kRight),
            ProbeMode::kExact);
}

TEST(StateTest, NamesMatchPaper) {
  EXPECT_STREQ(ProcessorStateName(ProcessorState::kLexRex), "lex/rex");
  EXPECT_STREQ(ProcessorStateName(ProcessorState::kLapRex), "lap/rex");
  EXPECT_STREQ(ProcessorStateName(ProcessorState::kLexRap), "lex/rap");
  EXPECT_STREQ(ProcessorStateName(ProcessorState::kLapRap), "lap/rap");
}

TEST(StateTest, CodesMatchPaperFootnote6) {
  // "AA denotes the lap/rap state, EE is lex/rex, AE is lap/rex, and
  // EA is lex/rap."
  EXPECT_STREQ(ProcessorStateCode(ProcessorState::kLapRap), "AA");
  EXPECT_STREQ(ProcessorStateCode(ProcessorState::kLexRex), "EE");
  EXPECT_STREQ(ProcessorStateCode(ProcessorState::kLapRex), "AE");
  EXPECT_STREQ(ProcessorStateCode(ProcessorState::kLexRap), "EA");
}

TEST(StateTest, IndexingIsDense) {
  for (size_t i = 0; i < kNumProcessorStates; ++i) {
    EXPECT_EQ(StateIndex(kAllProcessorStates[i]), i);
  }
}

}  // namespace
}  // namespace adaptive
}  // namespace aqp
