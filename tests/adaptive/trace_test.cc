#include "adaptive/trace.h"

#include <gtest/gtest.h>

namespace aqp {
namespace adaptive {
namespace {

AssessmentRecord Record(uint64_t step, ProcessorState before,
                        ProcessorState after, int phi) {
  AssessmentRecord r;
  r.assessment.step = step;
  r.assessment.p_value = 0.01;
  r.assessment.model_assessed = true;
  r.state_before = before;
  r.state_after = after;
  r.phi = phi;
  return r;
}

TEST(TraceTest, CountsTransitions) {
  AdaptationTrace trace;
  trace.Record(Record(100, ProcessorState::kLexRex, ProcessorState::kLexRex,
                      -1));
  trace.Record(Record(200, ProcessorState::kLexRex, ProcessorState::kLapRap,
                      1));
  trace.Record(Record(300, ProcessorState::kLapRap, ProcessorState::kLapRap,
                      -1));
  trace.Record(Record(400, ProcessorState::kLapRap, ProcessorState::kLexRex,
                      0));
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.transition_count(), 2u);
  EXPECT_EQ(trace.first_transition_step(), std::optional<uint64_t>(200));
}

TEST(TraceTest, EmptyTrace) {
  AdaptationTrace trace;
  EXPECT_EQ(trace.transition_count(), 0u);
  EXPECT_FALSE(trace.first_transition_step().has_value());
  EXPECT_TRUE(trace.EntriesInto(ProcessorState::kLapRap).empty());
}

TEST(TraceTest, EntriesIntoState) {
  AdaptationTrace trace;
  trace.Record(Record(10, ProcessorState::kLexRex, ProcessorState::kLapRap,
                      1));
  trace.Record(Record(20, ProcessorState::kLapRap, ProcessorState::kLexRex,
                      0));
  trace.Record(Record(30, ProcessorState::kLexRex, ProcessorState::kLapRap,
                      1));
  EXPECT_EQ(trace.EntriesInto(ProcessorState::kLapRap),
            (std::vector<uint64_t>{10, 30}));
  EXPECT_EQ(trace.EntriesInto(ProcessorState::kLexRex),
            (std::vector<uint64_t>{20}));
}

TEST(TraceTest, ToStringRendersTimeline) {
  AdaptationTrace trace;
  trace.Record(Record(100, ProcessorState::kLexRex, ProcessorState::kLapRap,
                      1));
  const std::string s = trace.ToString();
  EXPECT_NE(s.find("100"), std::string::npos);
  EXPECT_NE(s.find("EE->AA"), std::string::npos);
  EXPECT_NE(s.find("phi1"), std::string::npos);
}

TEST(TraceTest, ToStringLimitShowsTail) {
  AdaptationTrace trace;
  for (uint64_t i = 1; i <= 10; ++i) {
    trace.Record(Record(i * 100, ProcessorState::kLexRex,
                        ProcessorState::kLexRex, -1));
  }
  const std::string s = trace.ToString(2);
  EXPECT_EQ(s.find("| 100 "), std::string::npos);
  EXPECT_NE(s.find("1000"), std::string::npos);
}

}  // namespace
}  // namespace adaptive
}  // namespace aqp
