#include <gtest/gtest.h>

#include "adaptive/mar.h"

namespace aqp {
namespace adaptive {
namespace {

AdaptiveOptions Options() {
  AdaptiveOptions o;
  o.theta_curpert = 2;
  o.theta_pastpert = 5;
  return o;
}

Assessment Make(bool sigma, bool mu_l, bool mu_r, bool pi_l, bool pi_r,
                bool informative = true) {
  Assessment a;
  a.model_assessed = true;
  a.sigma = sigma;
  a.mu[0] = mu_l;
  a.mu[1] = mu_r;
  a.pi[0] = pi_l;
  a.pi[1] = pi_r;
  a.mu_informative[0] = informative;
  a.mu_informative[1] = informative;
  return a;
}

TEST(ResponderTest, Phi0RevertsToExact) {
  Responder r(Options());
  const Assessment a = Make(false, true, true, true, true);
  for (ProcessorState from : {ProcessorState::kLapRex, ProcessorState::kLexRap,
                              ProcessorState::kLapRap}) {
    const Decision d = r.Decide(from, a);
    EXPECT_EQ(d.next, ProcessorState::kLexRex);
    EXPECT_EQ(d.phi, 0);
  }
}

TEST(ResponderTest, Phi0SelfLoopInLexRex) {
  Responder r(Options());
  const Decision d =
      r.Decide(ProcessorState::kLexRex, Make(false, true, true, true, true));
  EXPECT_EQ(d.next, ProcessorState::kLexRex);
}

TEST(ResponderTest, NoSigmaButBusyWindowHoldsState) {
  Responder r(Options());
  const Decision d =
      r.Decide(ProcessorState::kLapRap, Make(false, false, true, true, true));
  EXPECT_EQ(d.next, ProcessorState::kLapRap);
  EXPECT_EQ(d.phi, -1);
}

TEST(ResponderTest, Phi1BothPerturbed) {
  Responder r(Options());
  const Decision d =
      r.Decide(ProcessorState::kLexRex, Make(true, false, false, true, true));
  EXPECT_EQ(d.next, ProcessorState::kLapRap);
  EXPECT_EQ(d.phi, 1);
}

TEST(ResponderTest, Phi1DefaultCaseWithoutEvidence) {
  // From lex/rex no approximate operator ran: µ is vacuous, σ alone
  // must still trigger the all-approximate default (§3.3).
  Responder r(Options());
  const Decision d = r.Decide(
      ProcessorState::kLexRex,
      Make(true, true, true, true, true, /*informative=*/false));
  EXPECT_EQ(d.next, ProcessorState::kLapRap);
  EXPECT_EQ(d.phi, 1);
}

TEST(ResponderTest, Phi2LeftPerturbedOnly) {
  Responder r(Options());
  const Decision d =
      r.Decide(ProcessorState::kLapRap, Make(true, false, true, true, true));
  EXPECT_EQ(d.next, ProcessorState::kLapRex);
  EXPECT_EQ(d.phi, 2);
}

TEST(ResponderTest, Phi2BlockedByChronicLeftPerturbation) {
  Responder r(Options());
  const Decision d = r.Decide(ProcessorState::kLapRap,
                              Make(true, false, true, /*pi_l=*/false, true));
  EXPECT_EQ(d.next, ProcessorState::kLapRap);  // stay
  EXPECT_EQ(d.phi, -1);
}

TEST(ResponderTest, Phi3RightPerturbedOnly) {
  Responder r(Options());
  const Decision d =
      r.Decide(ProcessorState::kLapRap, Make(true, true, false, true, true));
  EXPECT_EQ(d.next, ProcessorState::kLexRap);
  EXPECT_EQ(d.phi, 3);
}

TEST(ResponderTest, Phi3BlockedByChronicRightPerturbation) {
  Responder r(Options());
  const Decision d = r.Decide(ProcessorState::kLapRap,
                              Make(true, true, false, true, /*pi_r=*/false));
  EXPECT_EQ(d.next, ProcessorState::kLapRap);
  EXPECT_EQ(d.phi, -1);
}

TEST(ResponderTest, SigmaQuietInformativeWindowsHold) {
  // σ with both windows quiet: variants exist but the current region
  // is calm — the paper defines no transition here.
  Responder r(Options());
  const Decision d =
      r.Decide(ProcessorState::kLapRap, Make(true, true, true, true, true));
  EXPECT_EQ(d.next, ProcessorState::kLapRap);
  EXPECT_EQ(d.phi, -1);
}

TEST(ResponderTest, PolicyNames) {
  EXPECT_STREQ(AdaptivePolicyName(AdaptivePolicy::kAdaptive), "adaptive");
  EXPECT_STREQ(AdaptivePolicyName(AdaptivePolicy::kPinned), "pinned");
  EXPECT_STREQ(AdaptivePolicyName(AdaptivePolicy::kScripted), "scripted");
}

}  // namespace
}  // namespace adaptive
}  // namespace aqp
