// Tests for the futility-revert extension (§3.5's future-work note):
// when the shortfall is NOT caused by variants — e.g. child rows that
// simply have no parent at all — approximate matching cannot recover
// anything; the extension detects the stalemate, writes the deficit
// off, and returns to cheap exact matching. The paper's baseline
// algorithm stays approximate forever in this situation.

#include <gtest/gtest.h>

#include "adaptive/adaptive_join.h"
#include "common/random.h"
#include "datagen/atlas.h"
#include "datagen/variant.h"
#include "exec/scan.h"

namespace aqp {
namespace adaptive {
namespace {

/// A scenario the paper's σ misreads: an early batch of "child" rows
/// references locations that exist in no atlas (entirely different
/// strings, not one-character variants), so neither exact nor
/// approximate matching can ever link them. The rest of the stream is
/// clean.
struct OrphanScenario {
  storage::Relation parent;
  storage::Relation child;
};

OrphanScenario MakeOrphanScenario(size_t parent_size, size_t child_size,
                                  double orphan_rate) {
  OrphanScenario s;
  datagen::AtlasOptions atlas_options;
  atlas_options.size = parent_size;
  auto atlas = datagen::GenerateAtlas(atlas_options);
  EXPECT_TRUE(atlas.ok());
  s.parent = std::move(atlas).ValueOrDie();

  s.child = storage::Relation(storage::Schema(
      {{"id", storage::ValueType::kInt64},
       {"location", storage::ValueType::kString}}));
  Rng rng(99);
  for (size_t i = 0; i < child_size; ++i) {
    std::string location;
    // Orphans confined to the first 40% of the stream (one bad batch).
    if (i < child_size * 2 / 5 && rng.Bernoulli(orphan_rate)) {
      // A string wildly unlike any atlas entry.
      location = "ORPHAN " + rng.RandomString(30, "0123456789");
    } else {
      location = s.parent.row(rng.Index(s.parent.size()))
                     .at(datagen::kAtlasLocationColumn)
                     .AsString();
    }
    EXPECT_TRUE(s.child
                    .Append(storage::Tuple{
                        storage::Value(static_cast<int64_t>(i)),
                        storage::Value(std::move(location))})
                    .ok());
  }
  return s;
}

AdaptiveJoinOptions Options(const OrphanScenario& s, bool futility) {
  AdaptiveJoinOptions o;
  o.join.spec.left_column = 1;
  o.join.spec.right_column = datagen::kAtlasLocationColumn;
  o.adaptive.parent_side = exec::Side::kRight;
  o.adaptive.parent_table_size = s.parent.size();
  o.adaptive.delta_adapt = 50;
  o.adaptive.window = 50;
  o.adaptive.enable_futility_revert = futility;
  o.adaptive.futility_patience = 3;
  return o;
}

TEST(FutilityRevertTest, BaselineStaysApproximateForever) {
  const OrphanScenario s = MakeOrphanScenario(400, 1200, 0.3);
  exec::RelationScan child(&s.child);
  exec::RelationScan parent(&s.parent);
  AdaptiveJoin join(&child, &parent, Options(s, /*futility=*/false));
  ASSERT_TRUE(exec::CountAll(&join).ok());
  // The paper's machine switches to lap/rap on the shortfall and can
  // never leave: σ stays significant, the windows stay quiet.
  EXPECT_EQ(join.state(), ProcessorState::kLapRap);
  // A large share of steps wasted in approximate states.
  EXPECT_GT(join.cost().steps(ProcessorState::kLapRap),
            join.cost().total_steps() / 2);
}

TEST(FutilityRevertTest, ExtensionRevertsAndStaysExact) {
  const OrphanScenario s = MakeOrphanScenario(400, 1200, 0.3);
  exec::RelationScan child(&s.child);
  exec::RelationScan parent(&s.parent);
  AdaptiveJoin join(&child, &parent, Options(s, /*futility=*/true));
  ASSERT_TRUE(exec::CountAll(&join).ok());
  EXPECT_EQ(join.state(), ProcessorState::kLexRex);
  // The trace shows at least one futility revert...
  bool saw_futility = false;
  for (const AssessmentRecord& r : join.trace().records()) {
    if (r.phi == Decision::kFutilityRevert) {
      saw_futility = true;
      EXPECT_EQ(r.state_after, ProcessorState::kLexRex);
    }
  }
  EXPECT_TRUE(saw_futility);
  // ...and most of the run is spent in cheap exact matching.
  EXPECT_GT(join.cost().steps(ProcessorState::kLexRex),
            join.cost().total_steps() / 2);
}

TEST(FutilityRevertTest, SameResultCheaperExecution) {
  const OrphanScenario s = MakeOrphanScenario(400, 1200, 0.3);
  size_t results[2];
  double costs[2];
  for (int variant = 0; variant < 2; ++variant) {
    exec::RelationScan child(&s.child);
    exec::RelationScan parent(&s.parent);
    AdaptiveJoin join(&child, &parent, Options(s, variant == 1));
    auto count = exec::CountAll(&join);
    ASSERT_TRUE(count.ok());
    results[variant] = *count;
    costs[variant] = join.cost().TotalCost();
  }
  // Approximate matching finds nothing extra here, so both variants
  // produce the same result...
  EXPECT_EQ(results[0], results[1]);
  // ...but the futility variant is much cheaper.
  EXPECT_LT(costs[1], costs[0] * 0.7);
}

TEST(FutilityRevertTest, StillReactsToGenuineVariantsLater) {
  // Futility must not blind the controller: orphans early, genuine
  // variants later. After conceding the orphan deficit, a later burst
  // of recoverable variants must still trigger a switch and recover.
  datagen::AtlasOptions atlas_options;
  atlas_options.size = 400;
  auto atlas = datagen::GenerateAtlas(atlas_options);
  ASSERT_TRUE(atlas.ok());
  storage::Relation child(storage::Schema(
      {{"id", storage::ValueType::kInt64},
       {"location", storage::ValueType::kString}}));
  Rng rng(7);
  datagen::VariantOptions variant_options;
  const size_t n = 1600;
  size_t variants_injected = 0;
  for (size_t i = 0; i < n; ++i) {
    std::string location = atlas->row(rng.Index(atlas->size()))
                               .at(datagen::kAtlasLocationColumn)
                               .AsString();
    if (i < n / 4 && rng.Bernoulli(0.3)) {
      location = "ORPHAN " + rng.RandomString(30, "0123456789");
    } else if (i >= n / 2 && i < 3 * n / 4 && rng.Bernoulli(0.4)) {
      location = datagen::MakeVariant(location, variant_options, &rng);
      ++variants_injected;
    }
    ASSERT_TRUE(child
                    .Append(storage::Tuple{
                        storage::Value(static_cast<int64_t>(i)),
                        storage::Value(std::move(location))})
                    .ok());
  }
  ASSERT_GT(variants_injected, 50u);

  OrphanScenario s;
  s.parent = std::move(*atlas);
  s.child = std::move(child);
  exec::RelationScan child_scan(&s.child);
  exec::RelationScan parent_scan(&s.parent);
  AdaptiveJoin join(&child_scan, &parent_scan, Options(s, true));
  ASSERT_TRUE(exec::CountAll(&join).ok());

  // The run both conceded (futility) and later re-engaged (approx
  // pairs were found in the variant burst).
  bool saw_futility = false;
  for (const AssessmentRecord& r : join.trace().records()) {
    saw_futility |= r.phi == Decision::kFutilityRevert;
  }
  EXPECT_TRUE(saw_futility);
  EXPECT_GT(join.core().approximate_pairs(), variants_injected / 4);
}

}  // namespace
}  // namespace adaptive
}  // namespace aqp
