#include "adaptive/adaptive_join.h"

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "exec/scan.h"
#include "join/shjoin.h"
#include "join/sshjoin.h"

namespace aqp {
namespace adaptive {
namespace {

using datagen::PerturbationPattern;
using datagen::TestCase;
using datagen::TestCaseOptions;

TestCase SmallCase(double variant_rate, PerturbationPattern pattern =
                                            PerturbationPattern::kUniform) {
  TestCaseOptions options;
  options.pattern = pattern;
  options.variant_rate = variant_rate;
  options.atlas.size = 300;
  options.accidents.size = 600;
  options.seed = 20090324;
  auto tc = datagen::GenerateTestCase(options);
  EXPECT_TRUE(tc.ok()) << tc.status().ToString();
  return std::move(tc).ValueOrDie();
}

AdaptiveJoinOptions JoinOptions(const TestCase& tc) {
  AdaptiveJoinOptions o;
  o.join.spec.left_column = datagen::kAccidentsLocationColumn;
  o.join.spec.right_column = datagen::kAtlasLocationColumn;
  o.join.spec.sim_threshold = 0.85;
  o.adaptive.parent_side = exec::Side::kRight;
  o.adaptive.parent_table_size = tc.parent.size();
  o.adaptive.delta_adapt = 50;
  o.adaptive.window = 50;
  return o;
}

size_t RunAndCount(AdaptiveJoin* join) {
  auto count = exec::CountAll(join);
  EXPECT_TRUE(count.ok()) << count.status().ToString();
  return count.ok() ? *count : 0;
}

TEST(AdaptiveJoinTest, PinnedExactEqualsSHJoin) {
  const TestCase tc = SmallCase(0.2);
  AdaptiveJoinOptions o = JoinOptions(tc);
  o.adaptive.policy = AdaptivePolicy::kPinned;
  o.adaptive.initial_state = ProcessorState::kLexRex;
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  AdaptiveJoin pinned(&child, &parent, o);
  const size_t pinned_count = RunAndCount(&pinned);

  exec::RelationScan child2(&tc.child);
  exec::RelationScan parent2(&tc.parent);
  join::SymmetricJoinOptions so;
  so.spec = o.join.spec;
  join::SHJoin shjoin(&child2, &parent2, so);
  auto sh_count = exec::CountAll(&shjoin);
  ASSERT_TRUE(sh_count.ok());
  EXPECT_EQ(pinned_count, *sh_count);
  // Pinned runs never transition.
  EXPECT_EQ(pinned.cost().total_transitions(), 0u);
  EXPECT_EQ(pinned.cost().steps(ProcessorState::kLexRex),
            pinned.cost().total_steps());
}

TEST(AdaptiveJoinTest, PinnedApproxEqualsSSHJoin) {
  const TestCase tc = SmallCase(0.2);
  AdaptiveJoinOptions o = JoinOptions(tc);
  o.adaptive.policy = AdaptivePolicy::kPinned;
  o.adaptive.initial_state = ProcessorState::kLapRap;
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  AdaptiveJoin pinned(&child, &parent, o);
  const size_t pinned_count = RunAndCount(&pinned);

  exec::RelationScan child2(&tc.child);
  exec::RelationScan parent2(&tc.parent);
  join::SymmetricJoinOptions so;
  so.spec = o.join.spec;
  join::SSHJoin sshjoin(&child2, &parent2, so);
  auto ssh_count = exec::CountAll(&sshjoin);
  ASSERT_TRUE(ssh_count.ok());
  EXPECT_EQ(pinned_count, *ssh_count);
}

TEST(AdaptiveJoinTest, CleanDataStaysExact) {
  const TestCase tc = SmallCase(0.0);
  AdaptiveJoinOptions o = JoinOptions(tc);
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  AdaptiveJoin join(&child, &parent, o);
  const size_t count = RunAndCount(&join);
  EXPECT_EQ(count, tc.child.size());  // every child matches
  EXPECT_EQ(join.state(), ProcessorState::kLexRex);
  EXPECT_EQ(join.cost().total_transitions(), 0u);
  EXPECT_EQ(join.trace().transition_count(), 0u);
  // Assessments did happen.
  EXPECT_GT(join.trace().size(), 0u);
}

TEST(AdaptiveJoinTest, DetectsVariantsAndRecoversMatches) {
  const TestCase tc = SmallCase(0.2);
  AdaptiveJoinOptions o = JoinOptions(tc);

  // Baseline: all-exact finds only the clean pairs.
  AdaptiveJoinOptions exact_o = o;
  exact_o.adaptive.policy = AdaptivePolicy::kPinned;
  exec::RelationScan child_e(&tc.child);
  exec::RelationScan parent_e(&tc.parent);
  AdaptiveJoin exact_join(&child_e, &parent_e, exact_o);
  const size_t exact_count = RunAndCount(&exact_join);

  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  AdaptiveJoin join(&child, &parent, o);
  const size_t adaptive_count = RunAndCount(&join);

  // It must have reacted...
  EXPECT_GT(join.trace().transition_count(), 0u);
  ASSERT_TRUE(join.trace().first_transition_step().has_value());
  // ...and recovered strictly more matches than the exact baseline.
  EXPECT_GT(adaptive_count, exact_count);
  // Switch catch-up work was recorded.
  EXPECT_GT(join.core().catchup_tuples(), 0u);
}

TEST(AdaptiveJoinTest, ThetaOutZeroNeverTriggers) {
  const TestCase tc = SmallCase(0.2);
  AdaptiveJoinOptions o = JoinOptions(tc);
  o.adaptive.theta_out = 0.0;  // p-value can never be <= 0 on real data
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  AdaptiveJoin join(&child, &parent, o);
  RunAndCount(&join);
  EXPECT_EQ(join.state(), ProcessorState::kLexRex);
  EXPECT_EQ(join.cost().total_transitions(), 0u);
}

TEST(AdaptiveJoinTest, ScriptedPolicyFollowsScript) {
  const TestCase tc = SmallCase(0.2);
  AdaptiveJoinOptions o = JoinOptions(tc);
  o.adaptive.policy = AdaptivePolicy::kScripted;
  o.adaptive.script = {{100, ProcessorState::kLapRap},
                       {300, ProcessorState::kLexRex}};
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  AdaptiveJoin join(&child, &parent, o);
  RunAndCount(&join);
  EXPECT_EQ(join.cost().transitions(ProcessorState::kLapRap), 1u);
  EXPECT_EQ(join.cost().transitions(ProcessorState::kLexRex), 1u);
  EXPECT_EQ(join.state(), ProcessorState::kLexRex);
  // Steps in AA cover roughly the scripted interval.
  EXPECT_GT(join.cost().steps(ProcessorState::kLapRap), 150u);
  EXPECT_LT(join.cost().steps(ProcessorState::kLapRap), 260u);
}

TEST(AdaptiveJoinTest, StepAccountingConsistent) {
  const TestCase tc = SmallCase(0.1);
  AdaptiveJoinOptions o = JoinOptions(tc);
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  AdaptiveJoin join(&child, &parent, o);
  RunAndCount(&join);
  uint64_t per_state_sum = 0;
  for (ProcessorState s : kAllProcessorStates) {
    per_state_sum += join.cost().steps(s);
  }
  EXPECT_EQ(per_state_sum, join.cost().total_steps());
  EXPECT_EQ(join.cost().total_steps(), tc.child.size() + tc.parent.size());
  EXPECT_EQ(join.steps(), join.cost().total_steps());
}

TEST(AdaptiveJoinTest, RejectsInvalidAdaptiveOptionsAtOpen) {
  const TestCase tc = SmallCase(0.0);
  AdaptiveJoinOptions o = JoinOptions(tc);
  o.adaptive.delta_adapt = 0;
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  AdaptiveJoin join(&child, &parent, o);
  EXPECT_TRUE(join.Open().IsInvalidArgument());
}

TEST(AdaptiveJoinTest, TraceRecordsAssessments) {
  const TestCase tc = SmallCase(0.2);
  AdaptiveJoinOptions o = JoinOptions(tc);
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  AdaptiveJoin join(&child, &parent, o);
  RunAndCount(&join);
  ASSERT_GT(join.trace().size(), 0u);
  // Assessment steps are spaced at least delta_adapt apart.
  uint64_t prev = 0;
  for (const AssessmentRecord& r : join.trace().records()) {
    if (prev != 0) {
      EXPECT_GE(r.assessment.step - prev, o.adaptive.delta_adapt);
    }
    prev = r.assessment.step;
  }
}

TEST(AdaptiveJoinTest, DisablingTraceKeepsItEmpty) {
  const TestCase tc = SmallCase(0.2);
  AdaptiveJoinOptions o = JoinOptions(tc);
  o.record_trace = false;
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  AdaptiveJoin join(&child, &parent, o);
  RunAndCount(&join);
  EXPECT_EQ(join.trace().size(), 0u);
}

}  // namespace
}  // namespace adaptive
}  // namespace aqp
