#include <gtest/gtest.h>

#include "adaptive/mar.h"

namespace aqp {
namespace adaptive {
namespace {

using exec::Side;
using join::HybridJoinCore;
using join::JoinMatch;
using join::JoinSpec;
using join::MatchKind;
using join::ProbeMode;
using storage::Tuple;
using storage::Value;

AdaptiveOptions SmallWindow() {
  AdaptiveOptions o;
  o.window = 4;
  o.parent_side = Side::kRight;
  o.parent_table_size = 100;
  return o;
}

JoinMatch Approx(Side probe_side, storage::TupleId probe,
                 storage::TupleId stored) {
  JoinMatch m;
  m.probe_side = probe_side;
  m.probe_id = probe;
  m.stored_id = stored;
  m.similarity = 0.9;
  m.kind = MatchKind::kApproximate;
  return m;
}

TEST(MonitorTest, CountsSteps) {
  AdaptiveOptions o = SmallWindow();
  Monitor monitor(o);
  HybridJoinCore core((JoinSpec()));
  monitor.OnStep(Side::kLeft, {}, core, ProcessorState::kLexRex);
  monitor.OnStep(Side::kRight, {}, core, ProcessorState::kLexRex);
  EXPECT_EQ(monitor.steps(), 2u);
}

TEST(MonitorTest, BlamesReaderWhenStoredTupleWasExactlyMatched) {
  AdaptiveOptions o = SmallWindow();
  Monitor monitor(o);
  HybridJoinCore core((JoinSpec()));
  // Stored left tuple 0 has matched exactly before.
  core.ProcessTuple(Side::kLeft, Tuple{Value("K")});
  core.ProcessTuple(Side::kRight, Tuple{Value("K")});  // sets exact flags
  // A right-read tuple approx-matches stored left tuple 0: blame right.
  monitor.OnStep(Side::kRight, {Approx(Side::kRight, 5, 0)}, core,
                 ProcessorState::kLapRap);
  EXPECT_EQ(monitor.WindowApproxMatches(Side::kRight), 1u);
  EXPECT_EQ(monitor.WindowApproxMatches(Side::kLeft), 0u);
}

TEST(MonitorTest, BlamesStoredSideWhenProbeWasExactlyMatched) {
  AdaptiveOptions o = SmallWindow();
  Monitor monitor(o);
  HybridJoinCore core((JoinSpec()));
  core.ProcessTuple(Side::kLeft, Tuple{Value("VARIANTx")});  // never matched
  core.ProcessTuple(Side::kRight, Tuple{Value("CLEAN")});
  core.ProcessTuple(Side::kLeft, Tuple{Value("CLEAN")});  // right 0 flagged
  // Right tuple 0 (exactly matched) approx-matches stored left 0.
  monitor.OnStep(Side::kRight, {Approx(Side::kRight, 0, 0)}, core,
                 ProcessorState::kLapRap);
  EXPECT_EQ(monitor.WindowApproxMatches(Side::kLeft), 1u);
  EXPECT_EQ(monitor.WindowApproxMatches(Side::kRight), 0u);
}

TEST(MonitorTest, BlamesBothWithoutEvidence) {
  AdaptiveOptions o = SmallWindow();
  Monitor monitor(o);
  HybridJoinCore core((JoinSpec()));
  core.ProcessTuple(Side::kLeft, Tuple{Value("Ax")});
  core.ProcessTuple(Side::kRight, Tuple{Value("Ay")});
  monitor.OnStep(Side::kRight, {Approx(Side::kRight, 0, 0)}, core,
                 ProcessorState::kLapRap);
  EXPECT_EQ(monitor.WindowApproxMatches(Side::kLeft), 1u);
  EXPECT_EQ(monitor.WindowApproxMatches(Side::kRight), 1u);
}

TEST(MonitorTest, WindowRetiresOldSteps) {
  AdaptiveOptions o = SmallWindow();  // W = 4
  Monitor monitor(o);
  HybridJoinCore core((JoinSpec()));
  core.ProcessTuple(Side::kLeft, Tuple{Value("Ax")});
  core.ProcessTuple(Side::kRight, Tuple{Value("Ay")});
  monitor.OnStep(Side::kRight, {Approx(Side::kRight, 0, 0)}, core,
                 ProcessorState::kLapRap);
  EXPECT_EQ(monitor.WindowApproxMatches(Side::kRight), 1u);
  for (int i = 0; i < 4; ++i) {
    monitor.OnStep(Side::kLeft, {}, core, ProcessorState::kLapRap);
  }
  EXPECT_EQ(monitor.WindowApproxMatches(Side::kRight), 0u);
}

TEST(MonitorTest, ExactMatchesNotCounted) {
  AdaptiveOptions o = SmallWindow();
  Monitor monitor(o);
  HybridJoinCore core((JoinSpec()));
  core.ProcessTuple(Side::kLeft, Tuple{Value("K")});
  JoinMatch exact;
  exact.probe_side = Side::kRight;
  exact.kind = MatchKind::kExact;
  monitor.OnStep(Side::kRight, {exact}, core, ProcessorState::kLexRex);
  EXPECT_EQ(monitor.WindowApproxMatches(Side::kLeft), 0u);
  EXPECT_EQ(monitor.WindowApproxMatches(Side::kRight), 0u);
}

TEST(MonitorTest, ApproxActiveTracksState) {
  AdaptiveOptions o = SmallWindow();
  Monitor monitor(o);
  HybridJoinCore core((JoinSpec()));
  monitor.OnStep(Side::kLeft, {}, core, ProcessorState::kLexRex);
  EXPECT_EQ(monitor.WindowApproxActiveSteps(), 0u);
  monitor.OnStep(Side::kLeft, {}, core, ProcessorState::kLapRex);
  monitor.OnStep(Side::kLeft, {}, core, ProcessorState::kLapRap);
  EXPECT_EQ(monitor.WindowApproxActiveSteps(), 2u);
}

TEST(MonitorTest, ProgressReportsStoreSizesAndMatches) {
  AdaptiveOptions o = SmallWindow();  // parent = right
  Monitor monitor(o);
  HybridJoinCore core((JoinSpec()));
  core.ProcessTuple(Side::kLeft, Tuple{Value("K")});   // child
  core.ProcessTuple(Side::kRight, Tuple{Value("K")});  // parent; pair found
  core.ProcessTuple(Side::kLeft, Tuple{Value("UNMATCHED")});
  const stats::JoinProgress progress = monitor.Progress(core, false);
  EXPECT_EQ(progress.parents_scanned, 1u);
  EXPECT_EQ(progress.children_scanned, 2u);
  EXPECT_EQ(progress.children_matched, 1u);
  EXPECT_FALSE(progress.parent_exhausted);
}

TEST(MonitorTest, PairsStatisticOption) {
  AdaptiveOptions o = SmallWindow();
  o.use_pairs_statistic = true;
  Monitor monitor(o);
  HybridJoinCore core((JoinSpec()));
  core.ProcessTuple(Side::kLeft, Tuple{Value("K")});
  core.ProcessTuple(Side::kRight, Tuple{Value("K")});
  core.ProcessTuple(Side::kRight, Tuple{Value("K")});  // 2 pairs total
  const stats::JoinProgress progress = monitor.Progress(core, false);
  EXPECT_EQ(progress.children_matched, 2u);
}

}  // namespace
}  // namespace adaptive
}  // namespace aqp
