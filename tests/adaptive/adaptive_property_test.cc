// Cross-pattern invariants of the adaptive operator: the adaptive
// result is always bracketed by the all-exact and all-approximate
// baselines, and the accounting is self-consistent.

#include <gtest/gtest.h>

#include "adaptive/adaptive_join.h"
#include "datagen/generator.h"
#include "exec/scan.h"

namespace aqp {
namespace adaptive {
namespace {

using datagen::PerturbationPattern;
using datagen::TestCase;
using datagen::TestCaseOptions;

class AdaptivePropertyTest
    : public ::testing::TestWithParam<
          std::tuple<PerturbationPattern, bool, uint64_t>> {};

struct RunOutcome {
  size_t distinct_children = 0;
  uint64_t transitions = 0;
  uint64_t total_steps = 0;
};

RunOutcome ExecuteRun(const TestCase& tc, AdaptivePolicy policy,
               ProcessorState pinned) {
  AdaptiveJoinOptions o;
  o.join.spec.left_column = datagen::kAccidentsLocationColumn;
  o.join.spec.right_column = datagen::kAtlasLocationColumn;
  o.join.spec.sim_threshold = 0.85;
  o.adaptive.parent_side = exec::Side::kRight;
  o.adaptive.parent_table_size = tc.parent.size();
  o.adaptive.delta_adapt = 40;
  o.adaptive.window = 40;
  o.adaptive.policy = policy;
  o.adaptive.initial_state = pinned;
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  AdaptiveJoin join(&child, &parent, o);
  auto count = exec::CountAll(&join);
  EXPECT_TRUE(count.ok()) << count.status().ToString();
  RunOutcome outcome;
  outcome.distinct_children =
      join.core().distinct_matched(exec::Side::kLeft);
  outcome.transitions = join.cost().total_transitions();
  outcome.total_steps = join.cost().total_steps();
  return outcome;
}

TEST_P(AdaptivePropertyTest, AdaptiveBracketedByBaselines) {
  const auto [pattern, both, seed] = GetParam();
  TestCaseOptions options;
  options.pattern = pattern;
  options.perturb_parent = both;
  options.variant_rate = 0.15;
  options.atlas.size = 250;
  options.accidents.size = 500;
  options.seed = seed;
  auto tc = datagen::GenerateTestCase(options);
  ASSERT_TRUE(tc.ok()) << tc.status().ToString();

  const RunOutcome exact =
      ExecuteRun(*tc, AdaptivePolicy::kPinned, ProcessorState::kLexRex);
  const RunOutcome approx =
      ExecuteRun(*tc, AdaptivePolicy::kPinned, ProcessorState::kLapRap);
  const RunOutcome adaptive =
      ExecuteRun(*tc, AdaptivePolicy::kAdaptive, ProcessorState::kLexRex);

  // The exact run finds exactly the clean pairs.
  EXPECT_EQ(exact.distinct_children, tc->CleanPairCount());
  // The approximate run dominates everything.
  EXPECT_GE(approx.distinct_children, adaptive.distinct_children);
  // The adaptive run never does worse than all-exact.
  EXPECT_GE(adaptive.distinct_children, exact.distinct_children);
  // All runs process every input tuple exactly once.
  const uint64_t expected_steps = tc->child.size() + tc->parent.size();
  EXPECT_EQ(exact.total_steps, expected_steps);
  EXPECT_EQ(approx.total_steps, expected_steps);
  EXPECT_EQ(adaptive.total_steps, expected_steps);
  // Pinned runs never transition.
  EXPECT_EQ(exact.transitions, 0u);
  EXPECT_EQ(approx.transitions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PatternsAndSeeds, AdaptivePropertyTest,
    ::testing::Combine(
        ::testing::Values(PerturbationPattern::kUniform,
                          PerturbationPattern::kLowIntensityRegions,
                          PerturbationPattern::kFewHighIntensityRegions,
                          PerturbationPattern::kManyHighIntensityRegions),
        ::testing::Bool(), ::testing::Values(3u, 99u)));

}  // namespace
}  // namespace adaptive
}  // namespace aqp
