#include "adaptive/cost_model.h"

#include <gtest/gtest.h>

namespace aqp {
namespace adaptive {
namespace {

TEST(StateWeightsTest, PaperValues) {
  const StateWeights w = StateWeights::Paper();
  EXPECT_DOUBLE_EQ(w.step[StateIndex(ProcessorState::kLexRex)], 1.0);
  EXPECT_DOUBLE_EQ(w.step[StateIndex(ProcessorState::kLapRex)], 22.14);
  EXPECT_DOUBLE_EQ(w.step[StateIndex(ProcessorState::kLexRap)], 51.8);
  EXPECT_DOUBLE_EQ(w.step[StateIndex(ProcessorState::kLapRap)], 70.2);
  EXPECT_DOUBLE_EQ(w.transition[StateIndex(ProcessorState::kLexRex)], 122.48);
  EXPECT_DOUBLE_EQ(w.transition[StateIndex(ProcessorState::kLapRex)], 37.96);
  EXPECT_DOUBLE_EQ(w.transition[StateIndex(ProcessorState::kLexRap)], 84.99);
  EXPECT_DOUBLE_EQ(w.transition[StateIndex(ProcessorState::kLapRap)], 173.42);
}

TEST(StateWeightsTest, UniformIsRawStepCounting) {
  const StateWeights w = StateWeights::Uniform();
  for (size_t i = 0; i < kNumProcessorStates; ++i) {
    EXPECT_DOUBLE_EQ(w.step[i], 1.0);
    EXPECT_DOUBLE_EQ(w.transition[i], 0.0);
  }
}

TEST(StateWeightsTest, ToStringMentionsVectors) {
  const std::string s = StateWeights::Paper().ToString();
  EXPECT_NE(s.find("22.14"), std::string::npos);
  EXPECT_NE(s.find("173.42"), std::string::npos);
}

TEST(CostAccountantTest, CountsStepsAndTransitions) {
  CostAccountant acc(StateWeights::Paper());
  acc.AddStep(ProcessorState::kLexRex);
  acc.AddStep(ProcessorState::kLexRex);
  acc.AddStep(ProcessorState::kLapRap);
  acc.AddTransition(ProcessorState::kLapRap);
  EXPECT_EQ(acc.steps(ProcessorState::kLexRex), 2u);
  EXPECT_EQ(acc.steps(ProcessorState::kLapRap), 1u);
  EXPECT_EQ(acc.transitions(ProcessorState::kLapRap), 1u);
  EXPECT_EQ(acc.total_steps(), 3u);
  EXPECT_EQ(acc.total_transitions(), 1u);
}

TEST(CostAccountantTest, PaperWeightedCosts) {
  CostAccountant acc(StateWeights::Paper());
  for (int i = 0; i < 10; ++i) acc.AddStep(ProcessorState::kLexRex);
  for (int i = 0; i < 2; ++i) acc.AddStep(ProcessorState::kLapRap);
  acc.AddTransition(ProcessorState::kLapRap);
  EXPECT_DOUBLE_EQ(acc.StateCost(), 10.0 * 1.0 + 2.0 * 70.2);
  EXPECT_DOUBLE_EQ(acc.TransitionCost(), 173.42);
  EXPECT_DOUBLE_EQ(acc.TotalCost(), acc.StateCost() + acc.TransitionCost());
}

TEST(CostAccountantTest, RepriceWithDifferentWeights) {
  CostAccountant acc(StateWeights::Paper());
  acc.AddStep(ProcessorState::kLapRap);
  acc.AddTransition(ProcessorState::kLexRex);
  EXPECT_DOUBLE_EQ(acc.TotalCostWith(StateWeights::Uniform()), 1.0);
  EXPECT_DOUBLE_EQ(acc.TotalCostWith(StateWeights::Paper()),
                   70.2 + 122.48);
}

TEST(CostAccountantTest, PaperSanityOneApproxStepCosts70Exact) {
  // "one step in state lap/rap costs about 70 times as much as one
  // step in state lex/rex" — the weight vector must encode that.
  const StateWeights w = StateWeights::Paper();
  EXPECT_NEAR(w.step[StateIndex(ProcessorState::kLapRap)] /
                  w.step[StateIndex(ProcessorState::kLexRex)],
              70.0, 1.0);
  // "transitioning into state lap/rap has a cost ... equivalent to
  // executing about 173 steps in the baseline state".
  EXPECT_NEAR(w.transition[StateIndex(ProcessorState::kLapRap)], 173.0, 1.0);
}

}  // namespace
}  // namespace adaptive
}  // namespace aqp
