#include <gtest/gtest.h>

#include "adaptive/mar.h"

namespace aqp {
namespace adaptive {
namespace {

using exec::Side;
using join::HybridJoinCore;
using join::JoinMatch;
using join::JoinSpec;
using join::MatchKind;
using storage::Tuple;
using storage::Value;

AdaptiveOptions Options() {
  AdaptiveOptions o;
  o.window = 10;
  o.theta_out = 0.05;
  o.theta_curpert = 2;
  o.theta_pastpert = 3;
  o.parent_side = Side::kRight;
  o.parent_table_size = 50;
  return o;
}

JoinMatch Approx(Side probe_side) {
  JoinMatch m;
  m.probe_side = probe_side;
  m.probe_id = 0;
  m.stored_id = 0;
  m.similarity = 0.9;
  m.kind = MatchKind::kApproximate;
  return m;
}

/// Feeds `matched` matching child/parent pairs and `unmatched` orphan
/// children through a core, returning it for assessment.
void FeedPairs(HybridJoinCore* core, int matched, int unmatched) {
  for (int i = 0; i < matched; ++i) {
    const std::string key = "KEY" + std::to_string(i);
    core->ProcessTuple(Side::kRight, Tuple{Value(key)});
    core->ProcessTuple(Side::kLeft, Tuple{Value(key)});
  }
  for (int i = 0; i < unmatched; ++i) {
    core->ProcessTuple(Side::kLeft,
                       Tuple{Value("ORPHANZZ" + std::to_string(i))});
  }
}

TEST(AssessorTest, HealthyRunNoSigma) {
  AdaptiveOptions o = Options();
  Assessor assessor(o);
  Monitor monitor(o);
  HybridJoinCore core((JoinSpec()));
  FeedPairs(&core, 30, 0);
  for (uint64_t i = 0; i < 60; ++i) {
    monitor.OnStep(Side::kLeft, {}, core, ProcessorState::kLexRex);
  }
  const Assessment a = assessor.Assess(monitor, core, false);
  EXPECT_TRUE(a.model_assessed);
  EXPECT_FALSE(a.sigma);
  EXPECT_GT(a.p_value, 0.05);
}

TEST(AssessorTest, ShortfallRaisesSigma) {
  AdaptiveOptions o = Options();
  Assessor assessor(o);
  Monitor monitor(o);
  HybridJoinCore core((JoinSpec()));
  // 40 of 50 parents scanned, 40 children scanned, only 10 matched —
  // expected ~32.
  FeedPairs(&core, 10, 30);
  for (int i = 0; i < 30; ++i) {
    core.ProcessTuple(Side::kRight,
                      Tuple{Value("PARENTPAD" + std::to_string(i))});
  }
  const Assessment a = assessor.Assess(monitor, core, false);
  EXPECT_TRUE(a.model_assessed);
  EXPECT_TRUE(a.sigma);
  EXPECT_LT(a.p_value, 1e-6);
  EXPECT_EQ(a.observed_matches, 10u);
  EXPECT_GT(a.expected_matches, 25.0);
}

TEST(AssessorTest, MuUninformativeWithoutApproxActivity) {
  AdaptiveOptions o = Options();
  Assessor assessor(o);
  Monitor monitor(o);
  HybridJoinCore core((JoinSpec()));
  FeedPairs(&core, 5, 0);
  for (int i = 0; i < 20; ++i) {
    monitor.OnStep(Side::kLeft, {}, core, ProcessorState::kLexRex);
  }
  const Assessment a = assessor.Assess(monitor, core, false);
  EXPECT_FALSE(a.mu_informative[0]);
  EXPECT_FALSE(a.mu_informative[1]);
  EXPECT_TRUE(a.mu[0]);
  EXPECT_TRUE(a.mu[1]);
}

TEST(AssessorTest, MuFalseWhenWindowBusy) {
  AdaptiveOptions o = Options();  // theta_curpert = 2
  Assessor assessor(o);
  Monitor monitor(o);
  HybridJoinCore core((JoinSpec()));
  core.ProcessTuple(Side::kLeft, Tuple{Value("Ax")});
  core.ProcessTuple(Side::kRight, Tuple{Value("Ay")});
  // 3 approximate matches blamed on both sides (> theta_curpert).
  for (int i = 0; i < 3; ++i) {
    monitor.OnStep(Side::kRight, {Approx(Side::kRight)}, core,
                   ProcessorState::kLapRap);
  }
  const Assessment a = assessor.Assess(monitor, core, false);
  EXPECT_TRUE(a.mu_informative[0]);
  EXPECT_FALSE(a.mu[0]);
  EXPECT_FALSE(a.mu[1]);
  EXPECT_EQ(a.window_approx[0], 3u);
}

TEST(AssessorTest, MuCountBoundaryIsInclusive) {
  AdaptiveOptions o = Options();  // theta_curpert = 2
  Assessor assessor(o);
  Monitor monitor(o);
  HybridJoinCore core((JoinSpec()));
  core.ProcessTuple(Side::kLeft, Tuple{Value("Ax")});
  core.ProcessTuple(Side::kRight, Tuple{Value("Ay")});
  for (int i = 0; i < 2; ++i) {
    monitor.OnStep(Side::kRight, {Approx(Side::kRight)}, core,
                   ProcessorState::kLapRap);
  }
  const Assessment a = assessor.Assess(monitor, core, false);
  EXPECT_TRUE(a.mu[0]);  // exactly theta_curpert is still unperturbed
}

TEST(AssessorTest, RatioInterpretation) {
  AdaptiveOptions o = Options();
  o.curpert_is_ratio = true;
  o.theta_curpert_ratio = 0.25;  // W=10: up to 2.5 events OK
  Assessor assessor(o);
  Monitor monitor(o);
  HybridJoinCore core((JoinSpec()));
  core.ProcessTuple(Side::kLeft, Tuple{Value("Ax")});
  core.ProcessTuple(Side::kRight, Tuple{Value("Ay")});
  for (int i = 0; i < 3; ++i) {
    monitor.OnStep(Side::kRight, {Approx(Side::kRight)}, core,
                   ProcessorState::kLapRap);
  }
  const Assessment a = assessor.Assess(monitor, core, false);
  EXPECT_FALSE(a.mu[0]);  // 3/10 > 0.25
}

TEST(AssessorTest, PastPerturbationAccumulatesAcrossAssessments) {
  AdaptiveOptions o = Options();  // theta_pastpert = 3
  Assessor assessor(o);
  Monitor monitor(o);
  HybridJoinCore core((JoinSpec()));
  core.ProcessTuple(Side::kLeft, Tuple{Value("Ax")});
  core.ProcessTuple(Side::kRight, Tuple{Value("Ay")});
  // Five assessments, each with a perturbed left window.
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 3; ++i) {
      monitor.OnStep(Side::kRight, {Approx(Side::kRight)}, core,
                     ProcessorState::kLapRap);
    }
    const Assessment a = assessor.Assess(monitor, core, false);
    EXPECT_EQ(a.past_perturbed[0], static_cast<uint64_t>(round + 1));
    if (round + 1 <= 3) {
      EXPECT_TRUE(a.pi[0]);
    } else {
      EXPECT_FALSE(a.pi[0]);  // historically perturbed too often
    }
  }
}

TEST(AssessorTest, CustomModelInjection) {
  AdaptiveOptions o = Options();
  o.model = std::make_shared<stats::FixedRateModel>(1.0, 0);
  Assessor assessor(o);
  Monitor monitor(o);
  HybridJoinCore core((JoinSpec()));
  FeedPairs(&core, 2, 20);  // 2/22 matched against a rate-1.0 model
  const Assessment a = assessor.Assess(monitor, core, false);
  EXPECT_TRUE(a.model_assessed);
  EXPECT_TRUE(a.sigma);
  EXPECT_EQ(assessor.model().name(), "fixed_rate");
}

TEST(AdaptiveOptionsTest, Validation) {
  AdaptiveOptions o = Options();
  EXPECT_TRUE(o.Validate().ok());
  o.delta_adapt = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = Options();
  o.window = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = Options();
  o.theta_out = 1.2;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = Options();
  o.policy = AdaptivePolicy::kScripted;
  o.script = {{100, ProcessorState::kLapRap}, {50, ProcessorState::kLexRex}};
  EXPECT_TRUE(o.Validate().IsInvalidArgument());  // unsorted
  std::swap(o.script[0], o.script[1]);
  EXPECT_TRUE(o.Validate().ok());
}

}  // namespace
}  // namespace adaptive
}  // namespace aqp
