// Semantics of the hybrid states (§3.3/§3.4) at the operator level,
// forced deterministically through the scripted policy: in lap/rex,
// tuples read from the left are matched approximately while tuples
// read from the right are matched exactly — and vice versa in lex/rap.

#include <gtest/gtest.h>

#include "adaptive/adaptive_join.h"
#include "exec/scan.h"

namespace aqp {
namespace adaptive {
namespace {

using storage::Relation;
using storage::Schema;
using storage::Tuple;
using storage::Value;
using storage::ValueType;

Relation Strings(const std::vector<std::string>& values) {
  Relation r(Schema({{"s", ValueType::kString}}));
  for (const auto& v : values) {
    EXPECT_TRUE(r.Append(Tuple{Value(v)}).ok());
  }
  return r;
}

AdaptiveJoinOptions Scripted(std::vector<ScriptedTransition> script) {
  AdaptiveJoinOptions o;
  o.join.spec.sim_threshold = 0.8;
  o.adaptive.policy = AdaptivePolicy::kScripted;
  o.adaptive.script = std::move(script);
  return o;
}

// With strict alternation, left rows are read at steps 1, 3, 5, ... and
// right rows at steps 2, 4, 6, ...

TEST(HybridStatesTest, LapRexMatchesLeftVariantsOnly) {
  // Script lap/rex from the start. The right side stores a clean
  // value; a left-read variant (read later) must match approximately.
  const Relation left = Strings({"PADDING ROW ONE X", "SANTA CRISTINA VALGARDENA DI SOPRA TERME"});
  const Relation right = Strings({"SANTA CRISTINx VALGARDENA DI SOPRA TERME", "PADDING ROW TWO Y"});
  exec::RelationScan ls(&left);
  exec::RelationScan rs(&right);
  AdaptiveJoin join(&ls, &rs, Scripted({{0, ProcessorState::kLapRex}}));
  auto count = exec::CountAll(&join);
  ASSERT_TRUE(count.ok());
  // left[1] ("...CRISTINA...") read at step 3 probes right's q-gram
  // index, which then holds right[0] ("...CRISTINx...") — approx match.
  EXPECT_EQ(*count, 1u);
  EXPECT_EQ(join.core().approximate_pairs(), 1u);
  EXPECT_EQ(join.state(), ProcessorState::kLapRex);
}

TEST(HybridStatesTest, LapRexMissesRightVariants) {
  // Mirror case: the variant arrives on the *right*, which probes
  // exactly in lap/rex — the pair must be missed.
  const Relation left = Strings({"SANTA CRISTINA VALGARDENA DI SOPRA TERME", "PADDING ROW ONE X"});
  const Relation right = Strings({"PADDING ROW TWO Y", "SANTA CRISTINx VALGARDENA DI SOPRA TERME"});
  exec::RelationScan ls(&left);
  exec::RelationScan rs(&right);
  AdaptiveJoin join(&ls, &rs, Scripted({{0, ProcessorState::kLapRex}}));
  auto count = exec::CountAll(&join);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST(HybridStatesTest, LexRapIsTheMirrorImage) {
  // Same layouts, lex/rap: now right-read variants match, left-read
  // variants miss.
  {
    const Relation left = Strings({"SANTA CRISTINA VALGARDENA DI SOPRA TERME", "PADDING ROW ONE X"});
    const Relation right = Strings({"PADDING ROW TWO Y", "SANTA CRISTINx VALGARDENA DI SOPRA TERME"});
    exec::RelationScan ls(&left);
    exec::RelationScan rs(&right);
    AdaptiveJoin join(&ls, &rs, Scripted({{0, ProcessorState::kLexRap}}));
    auto count = exec::CountAll(&join);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, 1u) << "right-read variant must match in lex/rap";
  }
  {
    const Relation left = Strings({"PADDING ROW ONE X", "SANTA CRISTINA VALGARDENA DI SOPRA TERME"});
    const Relation right = Strings({"SANTA CRISTINx VALGARDENA DI SOPRA TERME", "PADDING ROW TWO Y"});
    exec::RelationScan ls(&left);
    exec::RelationScan rs(&right);
    AdaptiveJoin join(&ls, &rs, Scripted({{0, ProcessorState::kLexRap}}));
    auto count = exec::CountAll(&join);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, 0u) << "left-read variant must miss in lex/rap";
  }
}

TEST(HybridStatesTest, ExactPairsFoundInEveryState) {
  // Equal keys must match in all four states regardless of read order.
  for (ProcessorState state : kAllProcessorStates) {
    const Relation left = Strings({"IDENTICAL KEY VALUE ONE", "OTHER A"});
    const Relation right = Strings({"OTHER B", "IDENTICAL KEY VALUE ONE"});
    exec::RelationScan ls(&left);
    exec::RelationScan rs(&right);
    AdaptiveJoin join(&ls, &rs, Scripted({{0, state}}));
    auto count = exec::CountAll(&join);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, 1u) << ProcessorStateName(state);
    EXPECT_EQ(join.core().exact_pairs(), 1u) << ProcessorStateName(state);
  }
}

TEST(HybridStatesTest, MidRunScriptSwitchesChangeBehaviour) {
  // Variants before the switch are missed, after the switch they are
  // caught: the state change has a visible effect at the right moment.
  // Parents differ from each other in a 6-character block (cross-pair
  // similarity stays far below the threshold); each child is its
  // parent with a single-character edit (similarity ~0.91).
  std::vector<std::string> left_rows, right_rows;
  for (int i = 0; i < 10; ++i) {
    const std::string block(6, static_cast<char>('A' + i));
    right_rows.push_back("CLEAN PARENT ROW " + block +
                         " WITH LONG TAIL END");
    left_rows.push_back("CLEAN PARENT ROW " + block +
                        " WITH LONG TAIL ENd");
  }
  const Relation left = Strings(left_rows);
  const Relation right = Strings(right_rows);
  exec::RelationScan ls(&left);
  exec::RelationScan rs(&right);
  // Switch to all-approximate at step 10 (after 5 left + 5 right reads).
  AdaptiveJoin join(&ls, &rs, Scripted({{10, ProcessorState::kLapRap}}));
  auto count = exec::CountAll(&join);
  ASSERT_TRUE(count.ok());
  // Left rows 0..4 probed exactly (missed); 5..9 probed approximately
  // against the caught-up right index (found). Right rows arriving
  // after the switch probe the left q-gram index and recover the early
  // variants whose parents hadn't arrived yet... with strict
  // alternation parent i arrives right after child i, so exactly the
  // post-switch pairs match:
  EXPECT_EQ(*count, 5u);
  EXPECT_EQ(join.core().catchup_tuples(), 10u);  // both sides caught up
}

}  // namespace
}  // namespace adaptive
}  // namespace aqp
