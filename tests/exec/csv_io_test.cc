#include "exec/csv_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "exec/scan.h"
#include "storage/relation.h"
#include "storage/relation_io.h"

namespace aqp {
namespace exec {
namespace {

using storage::Field;
using storage::Relation;
using storage::Schema;
using storage::Tuple;
using storage::Value;
using storage::ValueType;

Schema TestSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"loc", ValueType::kString},
                 {"lat", ValueType::kDouble}});
}

TEST(CsvSourceTest, ParsesTypedColumnsDirectly) {
  CsvSource source(TestSchema(),
                   "id,loc,lat\n"
                   "1,alpha,0.5\n"
                   "2,\"beta, quoted\",-1.25\n"
                   "3,gamma,\n");
  ASSERT_TRUE(source.Open().ok());
  storage::ColumnBatch batch(&source.output_schema(), 8);
  ASSERT_TRUE(source.NextColumnBatch(&batch).ok());
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.Int64At(0, 0), 1);
  EXPECT_EQ(batch.StringAt(1, 1), "beta, quoted");
  EXPECT_DOUBLE_EQ(batch.DoubleAt(2, 1), -1.25);
  EXPECT_TRUE(batch.IsNull(2, 2));  // empty non-string cell is NULL
  // End-of-stream: an empty batch.
  ASSERT_TRUE(source.NextColumnBatch(&batch).ok());
  EXPECT_TRUE(batch.empty());
  ASSERT_TRUE(source.Close().ok());
}

TEST(CsvSourceTest, AgreesWithReadRelationCsv) {
  const std::string text =
      "id,loc,lat\n"
      "10,\"has \"\"quotes\"\"\",3.25\n"
      "11,plain,0\n"
      "12,crlf line,-7.5\r\n"
      "13,last,2\n";
  std::istringstream in(text);
  auto relation = storage::ReadRelationCsv(TestSchema(), &in);
  ASSERT_TRUE(relation.ok()) << relation.status().ToString();

  CsvSource source(TestSchema(), text);
  auto collected = CollectAll(&source);
  ASSERT_TRUE(collected.ok()) << collected.status().ToString();
  ASSERT_EQ(collected->size(), relation->size());
  for (size_t i = 0; i < relation->size(); ++i) {
    EXPECT_EQ(collected->row(i), relation->row(i)) << "row " << i;
  }
}

TEST(CsvSourceTest, NextAdapterMatchesColumnarRows) {
  const std::string text = "id,loc,lat\n1,a,0.5\n2,b,1.5\n";
  CsvSource columnar(TestSchema(), text);
  auto rows = CollectAll(&columnar);
  ASSERT_TRUE(rows.ok());

  CsvSource tuple_wise(TestSchema(), text);
  ASSERT_TRUE(tuple_wise.Open().ok());
  for (size_t i = 0; i < rows->size(); ++i) {
    auto next = tuple_wise.Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next->has_value());
    EXPECT_EQ(**next, rows->row(i)) << "row " << i;
  }
  auto end = tuple_wise.Next();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end->has_value());
  ASSERT_TRUE(tuple_wise.Close().ok());
}

TEST(CsvSourceTest, SkipsBlankLinesLikeParseCsv) {
  // ParseCsv (and therefore ReadRelationCsv) silently skips blank
  // lines; the columnar reader must load such feeds identically.
  const std::string text = "id,loc,lat\n1,a,0.5\n\n2,b,1.5\r\n\n\n3,c,2.5\n\n";
  std::istringstream in(text);
  auto relation = storage::ReadRelationCsv(TestSchema(), &in);
  ASSERT_TRUE(relation.ok()) << relation.status().ToString();
  ASSERT_EQ(relation->size(), 3u);

  CsvSource source(TestSchema(), text);
  auto collected = CollectAll(&source);
  ASSERT_TRUE(collected.ok()) << collected.status().ToString();
  ASSERT_EQ(collected->size(), relation->size());
  for (size_t i = 0; i < relation->size(); ++i) {
    EXPECT_EQ(collected->row(i), relation->row(i)) << "row " << i;
  }
}

TEST(CsvSourceTest, QuotedNewlinesAreContentAndKeepLineNumbersRight) {
  // A quoted field may span physical lines; the embedded newline is
  // content, and diagnostics after it must still report the right
  // physical line.
  CsvSource source(TestSchema(),
                   "id,loc,lat\n"
                   "1,\"two\nlines\",0.5\n"
                   "bad,x,1\n");
  ASSERT_TRUE(source.Open().ok());
  storage::ColumnBatch batch(&source.output_schema(), 8);
  const Status s = source.NextColumnBatch(&batch);
  ASSERT_FALSE(s.ok());
  // The malformed record starts on physical line 4 (the quoted field
  // consumed lines 2-3).
  EXPECT_NE(s.message().find("line 4"), std::string::npos) << s.ToString();

  CsvSource good(TestSchema(), "id,loc,lat\n1,\"two\nlines\",0.5\n");
  auto rows = CollectAll(&good);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows->row(0).at(1).AsString(), "two\nlines");
}

TEST(CsvSourceTest, RejectsHeaderMismatch) {
  CsvSource source(TestSchema(), "id,wrong,lat\n1,a,0.5\n");
  EXPECT_FALSE(source.Open().ok());
}

TEST(CsvSourceTest, RejectsBadCellsWithLineNumbers) {
  CsvSource source(TestSchema(), "id,loc,lat\n1,a,0.5\nnope,b,1\n");
  ASSERT_TRUE(source.Open().ok());
  storage::ColumnBatch batch(&source.output_schema(), 8);
  const Status s = source.NextColumnBatch(&batch);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line 3"), std::string::npos) << s.ToString();
  EXPECT_TRUE(batch.empty());  // partial batch discarded
}

TEST(CsvSourceTest, RejectsArityMismatch) {
  CsvSource source(TestSchema(), "id,loc,lat\n1,a\n");
  ASSERT_TRUE(source.Open().ok());
  storage::ColumnBatch batch(&source.output_schema(), 8);
  EXPECT_FALSE(source.NextColumnBatch(&batch).ok());
}

TEST(CsvSourceQuarantineTest, SkipsCountsAndLogsBadRows) {
  CsvSourceOptions options;
  options.max_bad_rows = 4;
  CsvSource source(TestSchema(),
                   "id,loc,lat\n"
                   "1,a,0.5\n"
                   "nope,b,1\n"          // unparsable int (line 3)
                   "2,c,2.5\n"
                   "3,d\n"               // too few cells (line 5)
                   "4,e,1.5,extra\n"     // too many cells (line 6)
                   "5,f,3.5\n",
                   options);
  ASSERT_TRUE(source.Open().ok());
  storage::ColumnBatch batch(&source.output_schema(), 16);
  ASSERT_TRUE(source.NextColumnBatch(&batch).ok());
  // Good rows survive, in order, with nothing from the bad records.
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.Int64At(0, 0), 1);
  EXPECT_EQ(batch.Int64At(0, 1), 2);
  EXPECT_EQ(batch.Int64At(0, 2), 5);
  EXPECT_EQ(batch.StringAt(1, 2), "f");
  // The quarantine log names each skipped record and why.
  EXPECT_EQ(source.bad_rows(), 3u);
  ASSERT_EQ(source.quarantine_log().size(), 3u);
  EXPECT_EQ(source.quarantine_log()[0].line, 3u);
  EXPECT_NE(source.quarantine_log()[0].reason.find("not an integer"),
            std::string::npos);
  EXPECT_EQ(source.quarantine_log()[1].line, 5u);
  EXPECT_EQ(source.quarantine_log()[2].line, 6u);
  ASSERT_TRUE(source.Close().ok());
}

TEST(CsvSourceQuarantineTest, CapExceededIsResourceExhausted) {
  CsvSourceOptions options;
  options.max_bad_rows = 1;
  CsvSource source(TestSchema(),
                   "id,loc,lat\n"
                   "bad1,a,1\n"
                   "bad2,b,2\n"
                   "1,c,3\n",
                   options);
  ASSERT_TRUE(source.Open().ok());
  storage::ColumnBatch batch(&source.output_schema(), 16);
  const Status s = source.NextColumnBatch(&batch);
  ASSERT_TRUE(s.IsResourceExhausted()) << s.ToString();
  EXPECT_TRUE(batch.empty());  // failed batch discarded, as ever
  EXPECT_EQ(source.bad_rows(), 1u);  // the cap itself, not the breaker
}

TEST(CsvSourceQuarantineTest, DefaultRemainsStrict) {
  CsvSource source(TestSchema(), "id,loc,lat\n1,a,0.5\nnope,b,1\n");
  ASSERT_TRUE(source.Open().ok());
  storage::ColumnBatch batch(&source.output_schema(), 8);
  EXPECT_FALSE(source.NextColumnBatch(&batch).ok());
}

TEST(CsvSourceQuarantineTest, UnterminatedQuoteStaysHardError) {
  // With the closing quote missing the record boundary is unknowable;
  // quarantine must not mask it.
  CsvSourceOptions options;
  options.max_bad_rows = 10;
  CsvSource source(TestSchema(),
                   "id,loc,lat\n"
                   "1,\"never closed,0.5\n"
                   "2,b,1.5\n",
                   options);
  ASSERT_TRUE(source.Open().ok());
  storage::ColumnBatch batch(&source.output_schema(), 8);
  const Status s = source.NextColumnBatch(&batch);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unterminated"), std::string::npos)
      << s.ToString();
  EXPECT_EQ(source.bad_rows(), 0u);
}

TEST(CsvSourceQuarantineTest, QuarantinedQuotedFieldResyncsPastItsNewlines) {
  // The bad record's quoted field spans physical lines; resync must
  // honor the quotes and land on the next record, not inside the field.
  CsvSourceOptions options;
  options.max_bad_rows = 2;
  CsvSource source(TestSchema(),
                   "id,loc,lat\n"
                   "nope,\"multi\nline\",1\n"
                   "7,ok,2.5\n",
                   options);
  ASSERT_TRUE(source.Open().ok());
  storage::ColumnBatch batch(&source.output_schema(), 8);
  ASSERT_TRUE(source.NextColumnBatch(&batch).ok());
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.Int64At(0, 0), 7);
  EXPECT_EQ(source.bad_rows(), 1u);
  EXPECT_EQ(source.quarantine_log()[0].line, 2u);
}

TEST(CsvSourceQuarantineTest, NextAdapterQuarantinesToo) {
  CsvSourceOptions options;
  options.max_bad_rows = 2;
  CsvSource source(TestSchema(), "id,loc,lat\nbad,a,1\n5,b,2.5\n", options);
  ASSERT_TRUE(source.Open().ok());
  auto next = source.Next();
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  ASSERT_TRUE(next->has_value());
  EXPECT_EQ((**next).at(0).AsInt64(), 5);
  auto end = source.Next();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end->has_value());
  EXPECT_EQ(source.bad_rows(), 1u);
  ASSERT_TRUE(source.Close().ok());
}

TEST(CsvSourceQuarantineTest, ReopenResetsTheQuarantineLog) {
  CsvSourceOptions options;
  options.max_bad_rows = 2;
  CsvSource source(TestSchema(), "id,loc,lat\nbad,a,1\n5,b,2.5\n", options);
  for (int pass = 0; pass < 2; ++pass) {
    ASSERT_TRUE(source.Open().ok());
    storage::ColumnBatch batch(&source.output_schema(), 8);
    ASSERT_TRUE(source.NextColumnBatch(&batch).ok());
    EXPECT_EQ(batch.size(), 1u);
    EXPECT_EQ(source.bad_rows(), 1u) << "pass " << pass;
    ASSERT_TRUE(source.Close().ok());
  }
}

TEST(WriteOperatorCsvTest, MatchesWriteRelationCsv) {
  Relation relation(TestSchema());
  ASSERT_TRUE(relation.Append(Tuple{Value(1), Value("alpha"), Value(0.5)}).ok());
  ASSERT_TRUE(
      relation.Append(Tuple{Value(2), Value("with, comma"), Value()}).ok());
  ASSERT_TRUE(
      relation.Append(Tuple{Value(3), Value("q\"uote"), Value(1e-9)}).ok());

  std::ostringstream expected;
  storage::WriteRelationCsv(relation, &expected);

  RelationScan scan(&relation);
  std::ostringstream actual;
  auto written = WriteOperatorCsv(&scan, &actual);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(*written, relation.size());
  // The operator sink writes shortest-round-trip doubles like
  // CsvWriter::Field; WriteRelationCsv uses precision-17 ostream
  // formatting, so compare by re-parsing instead of bytes.
  CsvSource reparse(TestSchema(), actual.str());
  auto round_trip = CollectAll(&reparse);
  ASSERT_TRUE(round_trip.ok()) << round_trip.status().ToString();
  ASSERT_EQ(round_trip->size(), relation.size());
  for (size_t i = 0; i < relation.size(); ++i) {
    EXPECT_EQ(round_trip->row(i), relation.row(i)) << "row " << i;
  }
}

}  // namespace
}  // namespace exec
}  // namespace aqp
