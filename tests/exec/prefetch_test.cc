#include "exec/prefetch.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/failpoint.h"
#include "exec/scan.h"
#include "storage/relation.h"

namespace aqp {
namespace exec {
namespace {

using storage::ColumnBatch;
using storage::Relation;
using storage::Schema;
using storage::Tuple;
using storage::Value;
using storage::ValueType;

Relation ManyRows(size_t n) {
  Relation r(Schema({{"id", ValueType::kInt64},
                     {"s", ValueType::kString}}));
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(r.Append(Tuple{Value(static_cast<int64_t>(i)),
                               Value("row-" + std::to_string(i))})
                    .ok());
  }
  return r;
}

std::vector<int64_t> DrainIds(Operator* op, size_t consumer_batch) {
  std::vector<int64_t> ids;
  ColumnBatch batch(&op->output_schema(), consumer_batch);
  while (true) {
    EXPECT_TRUE(op->NextColumnBatch(&batch).ok());
    if (batch.empty()) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      ids.push_back(batch.MaterializeRow(i).at(0).AsInt64());
    }
  }
  return ids;
}

TEST(PrefetchSourceTest, StreamMatchesUnwrappedChildAcrossGeometries) {
  const Relation r = ManyRows(503);
  std::vector<int64_t> expected;
  for (size_t i = 0; i < r.size(); ++i) {
    expected.push_back(static_cast<int64_t>(i));
  }
  for (size_t depth : {size_t{1}, size_t{2}, size_t{5}}) {
    for (size_t producer_batch : {size_t{1}, size_t{7}, size_t{64}}) {
      for (size_t consumer_batch : {size_t{1}, size_t{13}, size_t{256}}) {
        SCOPED_TRACE(testing::Message()
                     << "depth=" << depth << " producer=" << producer_batch
                     << " consumer=" << consumer_batch);
        RelationScan scan(&r);
        PrefetchOptions options;
        options.depth = depth;
        options.batch_size = producer_batch;
        PrefetchSource prefetch(&scan, options);
        ASSERT_TRUE(prefetch.Open().ok());
        EXPECT_EQ(DrainIds(&prefetch, consumer_batch), expected);
        ASSERT_TRUE(prefetch.Close().ok());
        EXPECT_GT(prefetch.stats().refills, 0u);
      }
    }
  }
}

TEST(PrefetchSourceTest, RowProtocolMatchesChild) {
  const Relation r = ManyRows(37);
  RelationScan scan(&r);
  PrefetchSource prefetch(&scan);
  ASSERT_TRUE(prefetch.Open().ok());
  for (size_t i = 0; i < r.size(); ++i) {
    auto next = prefetch.Next();
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    ASSERT_TRUE(next->has_value());
    EXPECT_EQ((**next).at(0).AsInt64(), static_cast<int64_t>(i));
  }
  auto eos = prefetch.Next();
  ASSERT_TRUE(eos.ok());
  EXPECT_FALSE(eos->has_value());
  ASSERT_TRUE(prefetch.Close().ok());
}

TEST(PrefetchSourceTest, EndOfStreamIsSticky) {
  const Relation r = ManyRows(5);
  RelationScan scan(&r);
  PrefetchSource prefetch(&scan);
  ASSERT_TRUE(prefetch.Open().ok());
  (void)DrainIds(&prefetch, 8);
  ColumnBatch batch(&prefetch.output_schema(), 8);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(prefetch.NextColumnBatch(&batch).ok());
    EXPECT_TRUE(batch.empty());
  }
  ASSERT_TRUE(prefetch.Close().ok());
}

TEST(PrefetchSourceTest, CloseMidStreamJoinsProducerAndClosesChild) {
  const Relation r = ManyRows(1000);
  RelationScan scan(&r);
  PrefetchOptions options;
  options.depth = 4;
  options.batch_size = 16;
  PrefetchSource prefetch(&scan, options);
  ASSERT_TRUE(prefetch.Open().ok());
  ColumnBatch batch(&prefetch.output_schema(), 16);
  ASSERT_TRUE(prefetch.NextColumnBatch(&batch).ok());
  EXPECT_FALSE(batch.empty());
  ASSERT_TRUE(prefetch.Close().ok());
  // The child was closed too: its lifecycle rejects a second Close.
  EXPECT_TRUE(scan.Close().IsFailedPrecondition());
}

TEST(PrefetchSourceTest, ReopenRestartsFromTheTop) {
  const Relation r = ManyRows(50);
  RelationScan scan(&r);
  PrefetchSource prefetch(&scan);
  ASSERT_TRUE(prefetch.Open().ok());
  ColumnBatch batch(&prefetch.output_schema(), 8);
  ASSERT_TRUE(prefetch.NextColumnBatch(&batch).ok());
  ASSERT_TRUE(prefetch.Close().ok());
  ASSERT_TRUE(prefetch.Open().ok());
  ASSERT_TRUE(prefetch.NextColumnBatch(&batch).ok());
  ASSERT_FALSE(batch.empty());
  EXPECT_EQ(batch.MaterializeRow(0).at(0).AsInt64(), 0);
  ASSERT_TRUE(prefetch.Close().ok());
}

TEST(PrefetchSourceTest, DestructorWithoutCloseDoesNotHang) {
  const Relation r = ManyRows(200);
  RelationScan scan(&r);
  {
    PrefetchSource prefetch(&scan);
    ASSERT_TRUE(prefetch.Open().ok());
    // Dropped with the producer possibly parked full — the destructor
    // must stop and join it.
  }
  ASSERT_TRUE(scan.Close().ok());
}

class PrefetchFailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fail::kCompiledIn) {
      GTEST_SKIP() << "failpoints compiled out (AQP_ENABLE_FAILPOINTS off)";
    }
    fail::DisarmAll();
  }
  void TearDown() override { fail::DisarmAll(); }
};

TEST_F(PrefetchFailpointTest, InjectedFaultSurfacesWithoutLosingRows) {
  // The fault fires on the producer's 3rd refill; rows already
  // buffered are delivered first, the error surfaces on a call that
  // delivers none, and — the non-sticky contract — the next call
  // restarts the producer and the stream completes with no row lost
  // or duplicated.
  const Relation r = ManyRows(100);
  RelationScan scan(&r);
  PrefetchOptions options;
  options.depth = 1;  // deterministic: fault lands on chunk 3
  options.batch_size = 10;
  PrefetchSource prefetch(&scan, options);
  fail::ScopedFailpoint guard(
      fail::site::kIngestPrefetch,
      fail::Policy::OnNthHit(3, Status::Unavailable("transient blip")));
  ASSERT_TRUE(prefetch.Open().ok());
  std::vector<int64_t> ids;
  ColumnBatch batch(&prefetch.output_schema(), 10);
  bool saw_error = false;
  while (true) {
    Status status = prefetch.NextColumnBatch(&batch);
    if (!status.ok()) {
      EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
      EXPECT_NE(status.ToString().find("site=ingest.prefetch"),
                std::string::npos);
      saw_error = true;
      continue;  // retry, as the exchange's source-retry loop would
    }
    if (batch.empty()) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      ids.push_back(batch.MaterializeRow(i).at(0).AsInt64());
    }
  }
  EXPECT_TRUE(saw_error);
  ASSERT_EQ(ids.size(), r.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], static_cast<int64_t>(i));
  }
  ASSERT_TRUE(prefetch.Close().ok());
}

TEST_F(PrefetchFailpointTest, ErrorChunkNeverPreemptsBufferedRows) {
  // With depth > 1 the producer may have good chunks queued ahead of
  // the faulting one; they must all be served before the error.
  const Relation r = ManyRows(60);
  RelationScan scan(&r);
  PrefetchOptions options;
  options.depth = 3;
  options.batch_size = 10;
  PrefetchSource prefetch(&scan, options);
  fail::ScopedFailpoint guard(
      fail::site::kIngestPrefetch,
      fail::Policy::OnNthHit(4, Status::IOError("bad sector")));
  ASSERT_TRUE(prefetch.Open().ok());
  std::vector<int64_t> ids;
  ColumnBatch batch(&prefetch.output_schema(), 10);
  Status error = Status::OK();
  while (true) {
    Status status = prefetch.NextColumnBatch(&batch);
    if (!status.ok()) {
      error = status;
      break;
    }
    ASSERT_FALSE(batch.empty()) << "EOS before the injected fault";
    for (size_t i = 0; i < batch.size(); ++i) {
      ids.push_back(batch.MaterializeRow(i).at(0).AsInt64());
    }
  }
  EXPECT_TRUE(error.IsIOError());
  // Chunks 1–3 (rows 0..29) preceded the faulting 4th refill.
  ASSERT_EQ(ids.size(), 30u);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], static_cast<int64_t>(i));
  }
  ASSERT_TRUE(prefetch.Close().ok());
}

}  // namespace
}  // namespace exec
}  // namespace aqp
