#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <vector>

#include "common/hash.h"
#include "datagen/generator.h"
#include "exec/parallel/exchange.h"
#include "exec/parallel/parallel_join.h"
#include "exec/parallel/shard.h"
#include "exec/parallel/thread_pool.h"
#include "exec/scan.h"
#include "join/shjoin.h"
#include "join/sshjoin.h"

namespace aqp {
namespace exec {
namespace parallel {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, i] { ++hits[i]; });
  }
  pool.Run(std::move(tasks));
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPoolTest, RunIsABarrierAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 10; ++batch) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 7; ++i) {
      tasks.push_back([&counter] { ++counter; });
    }
    pool.Run(std::move(tasks));
    // Every task of the batch completed before Run() returned.
    EXPECT_EQ(counter.load(), (batch + 1) * 7);
  }
}

TEST(ThreadPoolTest, EmptyBatchReturnsImmediately) {
  ThreadPool pool(2);
  pool.Run({});
  SUCCEED();
}

datagen::TestCase SmallCase() {
  datagen::TestCaseOptions options;
  options.atlas.size = 120;
  options.accidents.size = 240;
  options.variant_rate = 0.10;
  options.seed = 7;
  auto tc = datagen::GenerateTestCase(options);
  EXPECT_TRUE(tc.ok());
  return std::move(*tc);
}

join::JoinSpec Spec() {
  join::JoinSpec spec;
  spec.left_column = datagen::kAccidentsLocationColumn;
  spec.right_column = datagen::kAtlasLocationColumn;
  spec.sim_threshold = 0.85;
  return spec;
}

TEST(RadixExchangeTest, ReplaysTheSingleThreadedSchedule) {
  const datagen::TestCase tc = SmallCase();
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  ASSERT_TRUE(child.Open().ok());
  ASSERT_TRUE(parent.Open().ok());

  std::vector<std::unique_ptr<JoinShard>> shards;
  std::vector<JoinShard*> ptrs;
  for (uint32_t i = 0; i < 3; ++i) {
    shards.push_back(std::make_unique<JoinShard>(
        i, Spec(), join::ApproxProbeOptions{},
        adaptive::ProcessorState::kLexRex));
    ptrs.push_back(shards.back().get());
  }
  RadixExchange exchange(&child, &parent, Spec(),
                         exec::InterleavePolicy::kAlternate, 0, 0, 64, 3);
  exchange.Reset();

  std::vector<RouteEntry> route;
  auto routed = exchange.RouteEpoch(50, ptrs, &route);
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(*routed, 50u);
  ASSERT_EQ(route.size(), 50u);
  // Strict alternation starting from the left, both inputs alive.
  for (size_t i = 0; i < route.size(); ++i) {
    EXPECT_EQ(route[i].side,
              i % 2 == 0 ? exec::Side::kLeft : exec::Side::kRight);
  }
  // Per-side ordinals count up contiguously.
  EXPECT_EQ(route[0].ordinal, 0u);
  EXPECT_EQ(route[1].ordinal, 0u);
  EXPECT_EQ(route[2].ordinal, 1u);
  EXPECT_EQ(exchange.steps(), 50u);
  EXPECT_EQ(exchange.side_count(exec::Side::kLeft), 25u);
  EXPECT_EQ(exchange.side_count(exec::Side::kRight), 25u);

  // Route everything; the totals must cover both inputs exactly.
  while (true) {
    auto more = exchange.RouteEpoch(1000, ptrs, &route);
    ASSERT_TRUE(more.ok());
    if (*more == 0) break;
  }
  EXPECT_EQ(exchange.side_count(exec::Side::kLeft), tc.child.size());
  EXPECT_EQ(exchange.side_count(exec::Side::kRight), tc.parent.size());
  EXPECT_TRUE(exchange.input_exhausted(exec::Side::kLeft));
  EXPECT_TRUE(exchange.input_exhausted(exec::Side::kRight));

  // Routing is a pure function of the join key: same key, same shard;
  // and the per-shard seq/ordinal maps stay consistent with the route.
  size_t total_routed = 0;
  for (const JoinShard* shard : ptrs) {
    total_routed += shard->routed_count(exec::Side::kLeft);
    total_routed += shard->routed_count(exec::Side::kRight);
  }
  EXPECT_EQ(total_routed, tc.child.size() + tc.parent.size());
  ASSERT_TRUE(child.Close().ok());
  ASSERT_TRUE(parent.Close().ok());
}

TEST(RadixExchangeTest, EqualKeysAlwaysLandOnTheSameShard) {
  // The radix invariant behind intra-shard exact matching.
  const datagen::TestCase tc = SmallCase();
  const size_t num_shards = 5;
  std::map<std::string, uint32_t> assigned;
  for (size_t i = 0; i < tc.parent.size(); ++i) {
    const std::string& key =
        tc.parent.row(i)[datagen::kAtlasLocationColumn].AsString();
    const uint32_t shard =
        static_cast<uint32_t>(Mix64(Fnv1a64(key)) % num_shards);
    auto [it, inserted] = assigned.emplace(key, shard);
    if (!inserted) {
      EXPECT_EQ(it->second, shard) << key;
    }
  }
}

TEST(ParallelJoinTest, PinnedExactCountsMatchSHJoin) {
  const datagen::TestCase tc = SmallCase();
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  join::SymmetricJoinOptions jo;
  jo.spec = Spec();
  join::SHJoin reference(&child, &parent, jo);
  auto expected = exec::CountAll(&reference);
  ASSERT_TRUE(expected.ok());

  exec::RelationScan child2(&tc.child);
  exec::RelationScan parent2(&tc.parent);
  ParallelJoinOptions options;
  options.base.join.spec = Spec();
  options.base.adaptive.policy = adaptive::AdaptivePolicy::kPinned;
  options.base.adaptive.initial_state = adaptive::ProcessorState::kLexRex;
  options.num_shards = 3;
  ParallelAdaptiveJoin join(&child2, &parent2, options);
  auto count = exec::CountAll(&join);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, *expected);
  EXPECT_EQ(join.pairs_emitted(), *expected);
  EXPECT_EQ(join.approximate_pairs(), 0u);
}

TEST(ParallelJoinTest, PinnedApproximateCountsMatchSSHJoin) {
  const datagen::TestCase tc = SmallCase();
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  join::SymmetricJoinOptions jo;
  jo.spec = Spec();
  join::SSHJoin reference(&child, &parent, jo);
  auto expected = exec::CountAll(&reference);
  ASSERT_TRUE(expected.ok());

  exec::RelationScan child2(&tc.child);
  exec::RelationScan parent2(&tc.parent);
  ParallelJoinOptions options;
  options.base.join.spec = Spec();
  options.base.adaptive.policy = adaptive::AdaptivePolicy::kPinned;
  options.base.adaptive.initial_state = adaptive::ProcessorState::kLapRap;
  options.num_shards = 4;
  ParallelAdaptiveJoin join(&child2, &parent2, options);
  auto count = exec::CountAll(&join);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, *expected);
  // An approximate run over perturbed data finds cross-shard variants.
  EXPECT_GT(join.approximate_pairs(), 0u);
}

TEST(ParallelJoinTest, EmptyInputsProduceNoRowsAndNoTrace) {
  storage::Schema schema = SmallCase().child.schema();
  storage::Relation empty_left(schema);
  storage::Relation empty_right(SmallCase().parent.schema());
  exec::RelationScan left(&empty_left);
  exec::RelationScan right(&empty_right);
  ParallelJoinOptions options;
  options.base.join.spec = Spec();
  options.num_shards = 2;
  ParallelAdaptiveJoin join(&left, &right, options);
  auto count = exec::CountAll(&join);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 0u);
  EXPECT_EQ(join.steps(), 0u);
  EXPECT_EQ(join.trace().size(), 0u);
}

TEST(ParallelJoinTest, DistinctMatchedSeesCrossShardMatches) {
  // The coordinator's global matched-any statistic must include pairs
  // the shard-local cores cannot see (cross-shard approximate
  // matches); it feeds the binomial completeness model.
  const datagen::TestCase tc = SmallCase();
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  ParallelJoinOptions options;
  options.base.join.spec = Spec();
  options.base.adaptive.policy = adaptive::AdaptivePolicy::kPinned;
  options.base.adaptive.initial_state = adaptive::ProcessorState::kLapRap;
  options.num_shards = 4;
  ParallelAdaptiveJoin join(&child, &parent, options);
  auto count = exec::CountAll(&join);
  ASSERT_TRUE(count.ok());

  uint64_t intra_shard_distinct = 0;
  for (size_t i = 0; i < join.num_shards(); ++i) {
    intra_shard_distinct +=
        join.shard(i).core().store(exec::Side::kLeft).matched_any_count();
  }
  EXPECT_GE(join.distinct_matched(exec::Side::kLeft), intra_shard_distinct);
  EXPECT_GT(join.distinct_matched(exec::Side::kLeft), 0u);
}

TEST(ParallelJoinTest, MatchRefsAddressTheRightShardStores) {
  const datagen::TestCase tc = SmallCase();
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  ParallelJoinOptions options;
  options.base.join.spec = Spec();
  options.num_shards = 3;
  ParallelAdaptiveJoin join(&child, &parent, options);
  ASSERT_TRUE(join.Open().ok());
  std::vector<ParallelMatchRef> refs;
  size_t seen = 0;
  while (true) {
    ASSERT_TRUE(join.NextMatchRefs(64, &refs).ok());
    if (refs.empty()) break;
    for (const ParallelMatchRef& ref : refs) {
      ASSERT_LT(ref.left_shard, join.num_shards());
      ASSERT_LT(ref.right_shard, join.num_shards());
      const auto& left_store =
          join.shard(ref.left_shard).core().store(exec::Side::kLeft);
      const auto& right_store =
          join.shard(ref.right_shard).core().store(exec::Side::kRight);
      ASSERT_LT(ref.left_id, left_store.size());
      ASSERT_LT(ref.right_id, right_store.size());
      if (ref.kind == join::MatchKind::kExact) {
        // Exact pairs are intra-shard by radix construction, and their
        // keys agree byte for byte.
        EXPECT_EQ(ref.left_shard, ref.right_shard);
        EXPECT_EQ(left_store.JoinKey(ref.left_id),
                  right_store.JoinKey(ref.right_id));
      }
      ++seen;
    }
  }
  ASSERT_TRUE(join.Close().ok());
  EXPECT_GT(seen, 0u);
}

TEST(TupleStoreTest, PrecomputedHashAddMatchesSelfComputed) {
  const datagen::TestCase tc = SmallCase();
  storage::TupleStore a(datagen::kAtlasLocationColumn);
  storage::TupleStore b(datagen::kAtlasLocationColumn);
  for (size_t i = 0; i < 10; ++i) {
    storage::Tuple row = tc.parent.row(i);
    const uint64_t hash =
        Fnv1a64(row[datagen::kAtlasLocationColumn].AsString());
    a.Add(tc.parent.row(i));
    b.Add(std::move(row), hash);
    EXPECT_EQ(a.KeyHash(static_cast<storage::TupleId>(i)),
              b.KeyHash(static_cast<storage::TupleId>(i)));
    EXPECT_EQ(a.JoinKey(static_cast<storage::TupleId>(i)),
              b.JoinKey(static_cast<storage::TupleId>(i)));
  }
}

}  // namespace
}  // namespace parallel
}  // namespace exec
}  // namespace aqp
