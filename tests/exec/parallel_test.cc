#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/hash.h"
#include "datagen/generator.h"
#include "exec/parallel/exchange.h"
#include "exec/parallel/parallel_join.h"
#include "exec/parallel/shard.h"
#include "exec/parallel/thread_pool.h"
#include "exec/scan.h"
#include "join/shjoin.h"
#include "join/sshjoin.h"

namespace aqp {
namespace exec {
namespace parallel {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, i] { ++hits[i]; });
  }
  pool.Run(std::move(tasks));
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPoolTest, RunIsABarrierAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 10; ++batch) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 7; ++i) {
      tasks.push_back([&counter] { ++counter; });
    }
    pool.Run(std::move(tasks));
    // Every task of the batch completed before Run() returned.
    EXPECT_EQ(counter.load(), (batch + 1) * 7);
  }
}

TEST(ThreadPoolTest, EmptyBatchReturnsImmediately) {
  ThreadPool pool(2);
  pool.Run({});
  SUCCEED();
}

TEST(ThreadPoolTest, SubmitReturnsHandleAndWaitIsABarrier) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([&done] { ++done; });
  }
  TaskGroupHandle handle = pool.Submit(std::move(tasks));
  ASSERT_TRUE(handle.valid());
  handle.Wait();
  EXPECT_EQ(done.load(), 16);
  // Waiting again is harmless.
  handle.Wait();
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPoolTest, EmptyGroupHandleIsAlreadyComplete) {
  ThreadPool pool(1);
  TaskGroupHandle empty;
  EXPECT_FALSE(empty.valid());
  empty.Wait();  // no-op
  TaskGroupHandle submitted = pool.Submit({});
  EXPECT_TRUE(submitted.valid());
  submitted.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, ConcurrentGroupsAllCompleteIndependently) {
  // Two groups in flight at once: each Wait() is a barrier for its own
  // group only, and every task of both groups runs exactly once.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits_a(32), hits_b(32);
  std::vector<std::function<void()>> a, b;
  for (size_t i = 0; i < hits_a.size(); ++i) {
    a.push_back([&hits_a, i] { ++hits_a[i]; });
    b.push_back([&hits_b, i] { ++hits_b[i]; });
  }
  TaskGroupHandle ha = pool.Submit(std::move(a));
  TaskGroupHandle hb = pool.Submit(std::move(b));
  hb.Wait();
  for (const auto& hit : hits_b) EXPECT_EQ(hit.load(), 1);
  ha.Wait();
  for (const auto& hit : hits_a) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, ManyThreadsShareOnePoolSafely) {
  // The multi-query serving pattern: several client threads each
  // submit group after group to one shared pool and wait on each —
  // run under TSan in CI.
  ThreadPool pool(3);
  constexpr int kClients = 4;
  constexpr int kRounds = 25;
  std::atomic<int> total{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&pool, &total] {
      for (int r = 0; r < kRounds; ++r) {
        // Atomic: tasks of one group may run concurrently on several
        // workers; only the final read is ordered by the barrier.
        std::atomic<int> local{0};
        std::vector<std::function<void()>> tasks;
        for (int t = 0; t < 5; ++t) {
          tasks.push_back([&local, &total] {
            ++total;
            ++local;
          });
        }
        pool.Run(std::move(tasks));
        // Run() returned, so every task of *this* group completed.
        ASSERT_EQ(local.load(), 5);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(total.load(), kClients * kRounds * 5);
}

TEST(ThreadPoolTest, FairDispatchInterleavesAWideGroupWithANarrowOne) {
  // A wide group submitted first must not fully drain before a narrow
  // group submitted after it gets dispatched: round-robin gives the
  // narrow group's single task one of the next dispatch slots, so it
  // cannot finish last behind 200 wide tasks on a lone worker.
  ThreadPool pool(1);
  std::atomic<bool> narrow_submitted{false};
  std::atomic<int> wide_done{0};
  std::atomic<int> wide_done_when_narrow_ran{-1};
  std::vector<std::function<void()>> wide;
  // The first wide task holds the lone worker until the narrow group
  // is in the ring, so the wide group cannot drain before the race is
  // actually set up.
  wide.push_back([&narrow_submitted, &wide_done] {
    while (!narrow_submitted.load()) std::this_thread::yield();
    ++wide_done;
  });
  for (int i = 1; i < 200; ++i) {
    wide.push_back([&wide_done] { ++wide_done; });
  }
  TaskGroupHandle hw = pool.Submit(std::move(wide));
  TaskGroupHandle hn = pool.Submit({[&wide_done, &wide_done_when_narrow_ran] {
    wide_done_when_narrow_ran = wide_done.load();
  }});
  narrow_submitted = true;
  // Deliberately no Wait() yet: the waiter would claim its own group's
  // task itself and the *worker's* dispatch order would go untested.
  // Only the lone worker can run the narrow task here.
  while (wide_done_when_narrow_ran.load() < 0) std::this_thread::yield();
  hn.Wait();
  hw.Wait();
  EXPECT_EQ(wide_done.load(), 200);
  // Round-robin gave the narrow group the dispatch slot right after
  // the gated wide task — oldest-group-first draining would have run
  // all 200 wide tasks before it.
  EXPECT_GE(wide_done_when_narrow_ran.load(), 1);
  EXPECT_LE(wide_done_when_narrow_ran.load(), 2);
}

datagen::TestCase SmallCase() {
  datagen::TestCaseOptions options;
  options.atlas.size = 120;
  options.accidents.size = 240;
  options.variant_rate = 0.10;
  options.seed = 7;
  auto tc = datagen::GenerateTestCase(options);
  EXPECT_TRUE(tc.ok());
  return std::move(*tc);
}

join::JoinSpec Spec() {
  join::JoinSpec spec;
  spec.left_column = datagen::kAccidentsLocationColumn;
  spec.right_column = datagen::kAtlasLocationColumn;
  spec.sim_threshold = 0.85;
  return spec;
}

TEST(RadixExchangeTest, ReplaysTheSingleThreadedSchedule) {
  const datagen::TestCase tc = SmallCase();
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  ASSERT_TRUE(child.Open().ok());
  ASSERT_TRUE(parent.Open().ok());

  std::vector<std::unique_ptr<JoinShard>> shards;
  std::vector<JoinShard*> ptrs;
  for (uint32_t i = 0; i < 3; ++i) {
    shards.push_back(std::make_unique<JoinShard>(
        i, Spec(), join::ApproxProbeOptions{},
        adaptive::ProcessorState::kLexRex));
    // Production flow: the coordinator binds side schemas before any
    // routing; without it the shard batches scatter into a bare layout
    // (caught by assert in Debug builds).
    shards.back()->BindSchemas(&child.output_schema(),
                               &parent.output_schema());
    ptrs.push_back(shards.back().get());
  }
  RadixExchange exchange(&child, &parent, Spec(),
                         exec::InterleavePolicy::kAlternate, 0, 0, 64, 3);
  exchange.Reset();

  std::vector<RouteEntry> route;
  auto routed = exchange.RouteEpoch(50, ptrs, &route);
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(*routed, 50u);
  ASSERT_EQ(route.size(), 50u);
  // Strict alternation starting from the left, both inputs alive.
  for (size_t i = 0; i < route.size(); ++i) {
    EXPECT_EQ(route[i].side,
              i % 2 == 0 ? exec::Side::kLeft : exec::Side::kRight);
  }
  // Per-side ordinals count up contiguously.
  EXPECT_EQ(route[0].ordinal, 0u);
  EXPECT_EQ(route[1].ordinal, 0u);
  EXPECT_EQ(route[2].ordinal, 1u);
  EXPECT_EQ(exchange.steps(), 50u);
  EXPECT_EQ(exchange.side_count(exec::Side::kLeft), 25u);
  EXPECT_EQ(exchange.side_count(exec::Side::kRight), 25u);

  // Route everything; the totals must cover both inputs exactly.
  while (true) {
    auto more = exchange.RouteEpoch(1000, ptrs, &route);
    ASSERT_TRUE(more.ok());
    if (*more == 0) break;
  }
  EXPECT_EQ(exchange.side_count(exec::Side::kLeft), tc.child.size());
  EXPECT_EQ(exchange.side_count(exec::Side::kRight), tc.parent.size());
  EXPECT_TRUE(exchange.input_exhausted(exec::Side::kLeft));
  EXPECT_TRUE(exchange.input_exhausted(exec::Side::kRight));

  // Routing is a pure function of the join key: same key, same shard;
  // and the per-shard seq/ordinal maps stay consistent with the route.
  size_t total_routed = 0;
  for (const JoinShard* shard : ptrs) {
    total_routed += shard->routed_count(exec::Side::kLeft);
    total_routed += shard->routed_count(exec::Side::kRight);
  }
  EXPECT_EQ(total_routed, tc.child.size() + tc.parent.size());
  ASSERT_TRUE(child.Close().ok());
  ASSERT_TRUE(parent.Close().ok());
}

TEST(RadixExchangeTest, EqualKeysAlwaysLandOnTheSameShard) {
  // The radix invariant behind intra-shard exact matching.
  const datagen::TestCase tc = SmallCase();
  const size_t num_shards = 5;
  std::map<std::string, uint32_t> assigned;
  for (size_t i = 0; i < tc.parent.size(); ++i) {
    const std::string& key =
        tc.parent.row(i)[datagen::kAtlasLocationColumn].AsString();
    const uint32_t shard =
        static_cast<uint32_t>(Mix64(Fnv1a64(key)) % num_shards);
    auto [it, inserted] = assigned.emplace(key, shard);
    if (!inserted) {
      EXPECT_EQ(it->second, shard) << key;
    }
  }
}

TEST(ParallelJoinTest, PinnedExactCountsMatchSHJoin) {
  const datagen::TestCase tc = SmallCase();
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  join::SymmetricJoinOptions jo;
  jo.spec = Spec();
  join::SHJoin reference(&child, &parent, jo);
  auto expected = exec::CountAll(&reference);
  ASSERT_TRUE(expected.ok());

  exec::RelationScan child2(&tc.child);
  exec::RelationScan parent2(&tc.parent);
  ParallelJoinOptions options;
  options.base.join.spec = Spec();
  options.base.adaptive.policy = adaptive::AdaptivePolicy::kPinned;
  options.base.adaptive.initial_state = adaptive::ProcessorState::kLexRex;
  options.num_shards = 3;
  ParallelAdaptiveJoin join(&child2, &parent2, options);
  auto count = exec::CountAll(&join);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, *expected);
  EXPECT_EQ(join.pairs_emitted(), *expected);
  EXPECT_EQ(join.approximate_pairs(), 0u);
}

TEST(ParallelJoinTest, PinnedApproximateCountsMatchSSHJoin) {
  const datagen::TestCase tc = SmallCase();
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  join::SymmetricJoinOptions jo;
  jo.spec = Spec();
  join::SSHJoin reference(&child, &parent, jo);
  auto expected = exec::CountAll(&reference);
  ASSERT_TRUE(expected.ok());

  exec::RelationScan child2(&tc.child);
  exec::RelationScan parent2(&tc.parent);
  ParallelJoinOptions options;
  options.base.join.spec = Spec();
  options.base.adaptive.policy = adaptive::AdaptivePolicy::kPinned;
  options.base.adaptive.initial_state = adaptive::ProcessorState::kLapRap;
  options.num_shards = 4;
  ParallelAdaptiveJoin join(&child2, &parent2, options);
  auto count = exec::CountAll(&join);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, *expected);
  // An approximate run over perturbed data finds cross-shard variants.
  EXPECT_GT(join.approximate_pairs(), 0u);
}

TEST(ParallelJoinTest, EmptyInputsProduceNoRowsAndNoTrace) {
  storage::Schema schema = SmallCase().child.schema();
  storage::Relation empty_left(schema);
  storage::Relation empty_right(SmallCase().parent.schema());
  exec::RelationScan left(&empty_left);
  exec::RelationScan right(&empty_right);
  ParallelJoinOptions options;
  options.base.join.spec = Spec();
  options.num_shards = 2;
  ParallelAdaptiveJoin join(&left, &right, options);
  auto count = exec::CountAll(&join);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 0u);
  EXPECT_EQ(join.steps(), 0u);
  EXPECT_EQ(join.trace().size(), 0u);
}

TEST(ParallelJoinTest, DistinctMatchedSeesCrossShardMatches) {
  // The coordinator's global matched-any statistic must include pairs
  // the shard-local cores cannot see (cross-shard approximate
  // matches); it feeds the binomial completeness model.
  const datagen::TestCase tc = SmallCase();
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  ParallelJoinOptions options;
  options.base.join.spec = Spec();
  options.base.adaptive.policy = adaptive::AdaptivePolicy::kPinned;
  options.base.adaptive.initial_state = adaptive::ProcessorState::kLapRap;
  options.num_shards = 4;
  ParallelAdaptiveJoin join(&child, &parent, options);
  auto count = exec::CountAll(&join);
  ASSERT_TRUE(count.ok());

  uint64_t intra_shard_distinct = 0;
  for (size_t i = 0; i < join.num_shards(); ++i) {
    intra_shard_distinct +=
        join.shard(i).core().store(exec::Side::kLeft).matched_any_count();
  }
  EXPECT_GE(join.distinct_matched(exec::Side::kLeft), intra_shard_distinct);
  EXPECT_GT(join.distinct_matched(exec::Side::kLeft), 0u);
}

TEST(ParallelJoinTest, MatchRefsAddressTheRightShardStores) {
  const datagen::TestCase tc = SmallCase();
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  ParallelJoinOptions options;
  options.base.join.spec = Spec();
  options.num_shards = 3;
  ParallelAdaptiveJoin join(&child, &parent, options);
  ASSERT_TRUE(join.Open().ok());
  std::vector<ParallelMatchRef> refs;
  size_t seen = 0;
  while (true) {
    ASSERT_TRUE(join.NextMatchRefs(64, &refs).ok());
    if (refs.empty()) break;
    for (const ParallelMatchRef& ref : refs) {
      ASSERT_LT(ref.left_shard, join.num_shards());
      ASSERT_LT(ref.right_shard, join.num_shards());
      const auto& left_store =
          join.shard(ref.left_shard).core().store(exec::Side::kLeft);
      const auto& right_store =
          join.shard(ref.right_shard).core().store(exec::Side::kRight);
      ASSERT_LT(ref.left_id, left_store.size());
      ASSERT_LT(ref.right_id, right_store.size());
      if (ref.kind == join::MatchKind::kExact) {
        // Exact pairs are intra-shard by radix construction, and their
        // keys agree byte for byte.
        EXPECT_EQ(ref.left_shard, ref.right_shard);
        EXPECT_EQ(left_store.JoinKey(ref.left_id),
                  right_store.JoinKey(ref.right_id));
      }
      ++seen;
    }
  }
  ASSERT_TRUE(join.Close().ok());
  EXPECT_GT(seen, 0u);
}

/// Child operator yielding `good` single-string rows, then an IO
/// error; counts Open/Close calls.
class FlakyChild : public exec::Operator {
 public:
  explicit FlakyChild(int good)
      : schema_({{"s", storage::ValueType::kString}}), good_(good) {}
  Status Open() override {
    ++opens_;
    produced_ = 0;
    return Status::OK();
  }
  Result<std::optional<storage::Tuple>> Next() override {
    if (produced_ >= good_) return Status::IOError("stream dropped");
    ++produced_;
    return std::optional<storage::Tuple>(storage::Tuple{
        storage::Value("KEY " + std::to_string(produced_ % 7))});
  }
  Status Close() override {
    ++closes_;
    return Status::OK();
  }
  const storage::Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "FlakyChild"; }
  int opens() const { return opens_; }
  int closes() const { return closes_; }

 private:
  storage::Schema schema_;
  int good_;
  int produced_ = 0;
  int opens_ = 0;
  int closes_ = 0;
};

/// Child whose Open() always fails.
class UnopenableChild : public exec::Operator {
 public:
  UnopenableChild() : schema_({{"s", storage::ValueType::kString}}) {}
  Status Open() override { return Status::IOError("cannot connect"); }
  Result<std::optional<storage::Tuple>> Next() override {
    return Status::Internal("Next after failed Open");
  }
  Status Close() override { return Status::OK(); }
  const storage::Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "UnopenableChild"; }

 private:
  storage::Schema schema_;
};

join::JoinSpec OneColSpec() {
  join::JoinSpec spec;
  spec.left_column = 0;
  spec.right_column = 0;
  return spec;
}

TEST(ParallelJoinLifecycleTest, FailedRightOpenClosesTheLeftChild) {
  // Regression: an Open() that fails after the left child opened must
  // not leave it open — open_ stays false, so the caller cannot reach
  // it through Close() and the child would leak its open state.
  FlakyChild left(4);
  UnopenableChild right;
  ParallelJoinOptions options;
  options.base.join.spec = OneColSpec();
  options.num_shards = 2;
  ParallelAdaptiveJoin join(&left, &right, options);
  EXPECT_TRUE(join.Open().IsIOError());
  EXPECT_EQ(left.opens(), 1);
  EXPECT_EQ(left.closes(), 1);
  // The failed open left the operator unopened, as before.
  EXPECT_TRUE(join.Close().IsFailedPrecondition());
}

TEST(ParallelJoinLifecycleTest, MidStreamRouteErrorIsStickyAndDiscardsPending) {
  // A child error inside RouteEpoch abandons the epoch: rows already
  // scattered into the shards' pending batches must be discarded (not
  // double-ingested by a retried pump), and the operator must
  // hard-fail every subsequent call with the original error.
  FlakyChild left(10);
  FlakyChild right(500);  // plenty; only the left side errors
  ParallelJoinOptions options;
  options.base.join.spec = OneColSpec();
  options.base.adaptive.policy = adaptive::AdaptivePolicy::kPinned;
  options.num_shards = 3;
  // Force the failure mid-epoch: more steps per epoch than the left
  // child has rows, with refills small enough that several complete
  // batches are routed before the failing one.
  options.unbounded_epoch_steps = 64;
  options.base.join.batch_size = 4;
  ParallelAdaptiveJoin join(&left, &right, options);
  ASSERT_TRUE(join.Open().ok());

  std::vector<ParallelMatchRef> refs;
  Status first = join.NextMatchRefs(1024, &refs);
  ASSERT_TRUE(first.IsIOError()) << first;

  // Pending routed state of the aborted epoch was discarded: every row
  // still accounted for in a shard belongs to a *completed* epoch, and
  // no epoch completed before the failure.
  size_t routed = 0;
  for (size_t i = 0; i < join.num_shards(); ++i) {
    routed += join.shard(i).routed_count(exec::Side::kLeft);
    routed += join.shard(i).routed_count(exec::Side::kRight);
  }
  EXPECT_EQ(routed, 0u);
  EXPECT_EQ(join.steps(), 0u);  // counters rolled back with the epoch

  // Sticky: retries surface the same error instead of re-routing from
  // a corrupted scheduler position.
  Status retry = join.NextMatchRefs(1024, &refs);
  EXPECT_TRUE(retry.IsIOError()) << retry;
  EXPECT_EQ(retry.message(), first.message());
  auto next = join.Next();
  EXPECT_TRUE(next.status().IsIOError());
  ASSERT_TRUE(join.Close().ok());
  EXPECT_EQ(left.closes(), 1);
  EXPECT_EQ(right.closes(), 1);
}

TEST(ParallelJoinLifecycleTest, ErrorAfterCompletedEpochsKeepsThem) {
  // Same failure, but with small epochs so earlier epochs complete:
  // their rows stay ingested and their output stays deliverable; only
  // the aborted epoch's pending rows are discarded.
  FlakyChild left(10);
  FlakyChild right(500);
  ParallelJoinOptions options;
  options.base.join.spec = OneColSpec();
  options.base.adaptive.policy = adaptive::AdaptivePolicy::kPinned;
  options.num_shards = 2;
  // Epochs of 6 steps with refills of 4 left rows: the left child's
  // failing third refill lands mid-epoch, after two epochs completed.
  options.unbounded_epoch_steps = 6;
  options.base.join.batch_size = 4;
  ParallelAdaptiveJoin join(&left, &right, options);
  ASSERT_TRUE(join.Open().ok());

  std::vector<ParallelMatchRef> refs;
  size_t delivered = 0;
  Status status = Status::OK();
  while (true) {
    status = join.NextMatchRefs(3, &refs);
    if (!status.ok() || refs.empty()) break;
    delivered += refs.size();
  }
  ASSERT_TRUE(status.IsIOError()) << status;
  EXPECT_GT(join.steps(), 0u);

  size_t routed = 0;
  for (size_t i = 0; i < join.num_shards(); ++i) {
    routed += join.shard(i).routed_count(exec::Side::kLeft);
    routed += join.shard(i).routed_count(exec::Side::kRight);
  }
  // Every routed row belongs to a completed epoch (multiple of the
  // epoch length until the error step).
  EXPECT_EQ(routed, join.steps());
  ASSERT_TRUE(join.Close().ok());
}

TEST(ThreadPoolContainmentTest, ThrowingTaskBecomesGroupErrorOthersStillRun) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([&ran, i] {
      ++ran;
      if (i == 3) throw std::runtime_error("task blew up");
    });
  }
  TaskGroupHandle handle = pool.Submit(std::move(tasks));
  Status s = handle.Wait();
  ASSERT_TRUE(s.IsInternal()) << s;
  EXPECT_NE(s.message().find("task blew up"), std::string::npos) << s;
  EXPECT_EQ(handle.error_task(), 3u);
  // Even the failed group runs every task to completion before Wait
  // returns (accounting stays simple for phase callers).
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolContainmentTest, NonStdExceptionIsContainedToo) {
  ThreadPool pool(2);
  Status s = pool.Run({[] { throw 42; }});
  ASSERT_TRUE(s.IsInternal()) << s;
  EXPECT_NE(s.message().find("non-std::exception"), std::string::npos) << s;
}

TEST(ThreadPoolContainmentTest, InjectedFaultKeepsItsStatus) {
  ThreadPool pool(2);
  Status s = pool.Run(
      {[] { throw fail::InjectedFault(Status::IOError("disk gone")); }});
  ASSERT_TRUE(s.IsIOError()) << s;
  EXPECT_EQ(s.message(), "disk gone");
}

TEST(ThreadPoolContainmentTest, PoolStaysUsableAfterAFailedGroup) {
  ThreadPool pool(2);
  ASSERT_FALSE(pool.Run({[] { throw std::runtime_error("x"); }}).ok());
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 16; ++i) tasks.push_back([&ran] { ++ran; });
  EXPECT_TRUE(pool.Run(std::move(tasks)).ok());
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolContainmentTest, ErrorTaskIndexMatchesTheReportedError) {
  ThreadPool pool(3);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back(
        [i] { throw std::runtime_error("boom " + std::to_string(i)); });
  }
  TaskGroupHandle handle = pool.Submit(std::move(tasks));
  Status s = handle.Wait();
  ASSERT_FALSE(s.ok());
  const size_t failed = handle.error_task();
  ASSERT_LT(failed, 6u);
  // First error wins, and the index names the task that raised it.
  EXPECT_NE(s.message().find("boom " + std::to_string(failed)),
            std::string::npos)
      << s;
}

TEST(ThreadPoolContainmentTest, PoolTaskFailpointInjectsIntoTaskBodies) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  fail::DisarmAll();
  ThreadPool pool(2);
  fail::ScopedFailpoint guard(
      fail::site::kPoolTask,
      fail::Policy::Once(Status::IOError("injected fault")));
  std::vector<std::function<void()>> tasks;
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) tasks.push_back([&ran] { ++ran; });
  Status s = pool.Run(std::move(tasks));
  ASSERT_TRUE(s.IsIOError()) << s;
  EXPECT_NE(s.message().find("site=pool.task"), std::string::npos) << s;
  // The fired task was cut off before its body; the other three ran.
  EXPECT_EQ(ran.load(), 3);
}

/// Child that fails whole refills with kUnavailable on scheduled
/// 1-based NextColumnBatch calls, succeeding on the others — a
/// transiently flapping source. A failed call delivers no rows, so the
/// exchange's bounded retry can re-attempt without duplicating input.
class TransientChild : public exec::Operator {
 public:
  TransientChild(const storage::Relation* rows, std::set<int> blips)
      : scan_(rows), blips_(std::move(blips)) {}
  Status Open() override {
    calls_ = 0;
    return scan_.Open();
  }
  Result<std::optional<storage::Tuple>> Next() override {
    return scan_.Next();
  }
  Status NextColumnBatch(storage::ColumnBatch* out) override {
    ++calls_;
    if (blips_.count(calls_) > 0) {
      return Status::Unavailable("source flapping (call " +
                                 std::to_string(calls_) + ")");
    }
    return scan_.NextColumnBatch(out);
  }
  Status Close() override { return scan_.Close(); }
  const storage::Schema& output_schema() const override {
    return scan_.output_schema();
  }
  std::string name() const override { return "TransientChild"; }

 private:
  exec::RelationScan scan_;
  std::set<int> blips_;
  int calls_ = 0;
};

/// Child that delegates to a RelationScan for `good_calls` refills and
/// then hard-errors — a source cut off partway through a known feed,
/// so a degraded run's schedule is a strict prefix of the clean run's.
class TruncatingChild : public exec::Operator {
 public:
  TruncatingChild(const storage::Relation* rows, int good_calls)
      : scan_(rows), good_calls_(good_calls) {}
  Status Open() override {
    calls_ = 0;
    return scan_.Open();
  }
  Result<std::optional<storage::Tuple>> Next() override {
    return scan_.Next();
  }
  Status NextColumnBatch(storage::ColumnBatch* out) override {
    if (++calls_ > good_calls_) return Status::IOError("feed cut off");
    return scan_.NextColumnBatch(out);
  }
  Status Close() override { return scan_.Close(); }
  const storage::Schema& output_schema() const override {
    return scan_.output_schema();
  }
  std::string name() const override { return "TruncatingChild"; }

 private:
  exec::RelationScan scan_;
  int good_calls_;
  int calls_ = 0;
};

ParallelJoinOptions SmallCaseOptions(size_t shards) {
  ParallelJoinOptions options;
  options.base.join.spec = Spec();
  options.base.adaptive.policy = adaptive::AdaptivePolicy::kPinned;
  options.base.adaptive.initial_state = adaptive::ProcessorState::kLapRap;
  options.num_shards = shards;
  options.unbounded_epoch_steps = 16;
  options.base.join.batch_size = 8;
  return options;
}

std::vector<ParallelMatchRef> CollectRefs(ParallelAdaptiveJoin* join) {
  std::vector<ParallelMatchRef> all;
  std::vector<ParallelMatchRef> refs;
  while (true) {
    Status s = join->NextMatchRefs(64, &refs);
    EXPECT_TRUE(s.ok()) << s;
    if (!s.ok() || refs.empty()) break;
    all.insert(all.end(), refs.begin(), refs.end());
  }
  return all;
}

bool SameRef(const ParallelMatchRef& a, const ParallelMatchRef& b) {
  return a.left_shard == b.left_shard && a.right_shard == b.right_shard &&
         a.left_id == b.left_id && a.right_id == b.right_id &&
         a.kind == b.kind && a.similarity == b.similarity;
}

TEST(SourceRetryTest, TransientUnavailableIsRetriedAway) {
  const datagen::TestCase tc = SmallCase();
  // Reference: a clean run of the same schedule.
  exec::RelationScan ref_left(&tc.child);
  exec::RelationScan ref_right(&tc.parent);
  ParallelAdaptiveJoin reference(&ref_left, &ref_right, SmallCaseOptions(3));
  auto expected = exec::CountAll(&reference);
  ASSERT_TRUE(expected.ok());

  TransientChild left(&tc.child, {1, 3});
  exec::RelationScan right(&tc.parent);
  ParallelJoinOptions options = SmallCaseOptions(3);
  options.source_retry.max_retries = 2;
  ParallelAdaptiveJoin join(&left, &right, options);
  auto count = exec::CountAll(&join);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, *expected);
  EXPECT_EQ(join.source_retries(), 2u);
}

TEST(SourceRetryTest, NoRetryConfiguredSurfacesUnavailable) {
  const datagen::TestCase tc = SmallCase();
  TransientChild left(&tc.child, {1});
  exec::RelationScan right(&tc.parent);
  ParallelAdaptiveJoin join(&left, &right, SmallCaseOptions(2));
  ASSERT_TRUE(join.Open().ok());
  std::vector<ParallelMatchRef> refs;
  Status s = join.NextMatchRefs(64, &refs);
  EXPECT_TRUE(s.IsUnavailable()) << s;
  ASSERT_TRUE(join.Close().ok());
}

TEST(SourceRetryTest, ExhaustedRetriesReportTheAttemptCount) {
  const datagen::TestCase tc = SmallCase();
  TransientChild left(&tc.child, {1, 2, 3, 4});
  exec::RelationScan right(&tc.parent);
  ParallelJoinOptions options = SmallCaseOptions(2);
  options.source_retry.max_retries = 2;
  ParallelAdaptiveJoin join(&left, &right, options);
  ASSERT_TRUE(join.Open().ok());
  std::vector<ParallelMatchRef> refs;
  Status s = join.NextMatchRefs(64, &refs);
  ASSERT_TRUE(s.IsUnavailable()) << s;
  EXPECT_NE(s.message().find("after 2 retry(ies)"), std::string::npos) << s;
  EXPECT_EQ(join.source_retries(), 2u);
  ASSERT_TRUE(join.Close().ok());
}

TEST(FaultDegradationTest, FinalizePartialDeliversAStrictPrefix) {
  const datagen::TestCase tc = SmallCase();
  // Reference: the clean run's full match-ref sequence.
  exec::RelationScan ref_left(&tc.child);
  exec::RelationScan ref_right(&tc.parent);
  ParallelAdaptiveJoin reference(&ref_left, &ref_right, SmallCaseOptions(3));
  ASSERT_TRUE(reference.Open().ok());
  const std::vector<ParallelMatchRef> full = CollectRefs(&reference);
  ASSERT_TRUE(reference.Close().ok());
  ASSERT_GT(full.size(), 0u);

  // Same schedule, left feed cut off after 4 refills, degradation on.
  TruncatingChild left(&tc.child, 4);
  exec::RelationScan right(&tc.parent);
  ParallelJoinOptions options = SmallCaseOptions(3);
  options.on_fault = FaultPolicy::kFinalizePartial;
  ParallelAdaptiveJoin join(&left, &right, options);
  ASSERT_TRUE(join.Open().ok());
  const std::vector<ParallelMatchRef> partial = CollectRefs(&join);

  // The stream ended as a *successful* degraded run.
  EXPECT_TRUE(join.stream_done());
  EXPECT_TRUE(join.finalized_early());
  ASSERT_TRUE(join.fault().has_value());
  EXPECT_TRUE(join.fault()->status.IsIOError());
  EXPECT_EQ(join.fault()->epoch, join.epochs_completed());
  EXPECT_EQ(join.fault()->step, join.steps());
  EXPECT_GT(join.epochs_completed(), 0u);  // earlier epochs survived

  // Strict prefix of the clean run: completed epochs only, in order.
  ASSERT_LT(partial.size(), full.size());
  for (size_t i = 0; i < partial.size(); ++i) {
    EXPECT_TRUE(SameRef(partial[i], full[i])) << "ref " << i;
  }
  // Completeness over the partial result is well-defined and <= 1.
  const CompletenessStats completeness = join.Completeness();
  EXPECT_GE(completeness.ratio, 0.0);
  EXPECT_LE(completeness.ratio, 1.0);
  ASSERT_TRUE(join.Close().ok());
}

TEST(FaultDegradationTest, DefaultPolicyStillFailsHard) {
  const datagen::TestCase tc = SmallCase();
  TruncatingChild left(&tc.child, 4);
  exec::RelationScan right(&tc.parent);
  ParallelAdaptiveJoin join(&left, &right, SmallCaseOptions(3));
  ASSERT_TRUE(join.Open().ok());
  std::vector<ParallelMatchRef> refs;
  Status s = Status::OK();
  while (s.ok()) {
    s = join.NextMatchRefs(64, &refs);
    if (s.ok() && refs.empty()) break;
  }
  EXPECT_TRUE(s.IsIOError()) << s;
  EXPECT_FALSE(join.fault().has_value());
  EXPECT_NE(s.message().find("epoch="), std::string::npos) << s;
  ASSERT_TRUE(join.Close().ok());
}

TEST(FaultDegradationTest, CancelIsNeverDegraded) {
  // kCancel must stay a hard stop even under kFinalizePartial: a
  // cancelled query's buffered output is discarded, not delivered as
  // a "partial result".
  const datagen::TestCase tc = SmallCase();
  exec::RelationScan left(&tc.child);
  exec::RelationScan right(&tc.parent);
  ParallelJoinOptions options = SmallCaseOptions(2);
  options.on_fault = FaultPolicy::kFinalizePartial;
  int calls = 0;
  options.governor = [&calls](const EpochView&) {
    return ++calls >= 2 ? EpochDirective::kCancel : EpochDirective::kProceed;
  };
  ParallelAdaptiveJoin join(&left, &right, options);
  ASSERT_TRUE(join.Open().ok());
  std::vector<ParallelMatchRef> refs;
  Status s = Status::OK();
  while (s.ok()) {
    s = join.NextMatchRefs(64, &refs);
    if (s.ok() && refs.empty()) break;
  }
  EXPECT_TRUE(s.IsCancelled()) << s;
  EXPECT_FALSE(join.fault().has_value());
  ASSERT_TRUE(join.Close().ok());
}

TEST(FaultDegradationTest, PhaseFaultIsShardAttributedAndDegradable) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  fail::DisarmAll();
  const datagen::TestCase tc = SmallCase();
  exec::RelationScan left(&tc.child);
  exec::RelationScan right(&tc.parent);
  ParallelJoinOptions options = SmallCaseOptions(3);
  options.on_fault = FaultPolicy::kFinalizePartial;
  ParallelAdaptiveJoin join(&left, &right, options);
  fail::ScopedFailpoint guard(
      fail::site::kShardPhaseA,
      fail::Policy::OnNthHit(4, Status::IOError("injected fault"),
                             /*do_throw=*/true));
  ASSERT_TRUE(join.Open().ok());
  const std::vector<ParallelMatchRef> partial = CollectRefs(&join);
  EXPECT_TRUE(join.finalized_early());
  ASSERT_TRUE(join.fault().has_value());
  EXPECT_EQ(join.fault()->site, "shard.phase_a");
  EXPECT_GE(join.fault()->shard, 0);
  EXPECT_LT(join.fault()->shard, 3);
  EXPECT_EQ(join.epochs_completed(), 1u);  // hit 4 = second epoch, shard 0
  ASSERT_TRUE(join.Close().ok());
}

TEST(FaultDegradationTest, MergeEntryFaultDegradesMergeInvariantsDoNot) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  fail::DisarmAll();
  const datagen::TestCase tc = SmallCase();
  exec::RelationScan left(&tc.child);
  exec::RelationScan right(&tc.parent);
  ParallelJoinOptions options = SmallCaseOptions(2);
  options.on_fault = FaultPolicy::kFinalizePartial;
  ParallelAdaptiveJoin join(&left, &right, options);
  fail::ScopedFailpoint guard(
      fail::site::kExchangeMerge,
      fail::Policy::OnNthHit(2, Status::IOError("injected fault")));
  ASSERT_TRUE(join.Open().ok());
  (void)CollectRefs(&join);
  EXPECT_TRUE(join.finalized_early());
  ASSERT_TRUE(join.fault().has_value());
  EXPECT_EQ(join.fault()->site, "exchange.merge");
  EXPECT_EQ(join.fault()->epoch, 1u);
  ASSERT_TRUE(join.Close().ok());
}

TEST(FaultDegradationTest, StoreIngestFaultIsContainedAndSticky) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  fail::DisarmAll();
  const datagen::TestCase tc = SmallCase();
  exec::RelationScan left(&tc.child);
  exec::RelationScan right(&tc.parent);
  // Default kFail policy: the injected ingest fault (thrown from
  // TupleStore::AddRow deep inside a worker task) must surface as a
  // sticky Status, not a std::terminate.
  ParallelAdaptiveJoin join(&left, &right, SmallCaseOptions(3));
  fail::ScopedFailpoint guard(
      fail::site::kStoreAdd,
      fail::Policy::OnNthHit(20, Status::IOError("injected fault")));
  ASSERT_TRUE(join.Open().ok());
  std::vector<ParallelMatchRef> refs;
  Status s = Status::OK();
  while (s.ok()) {
    s = join.NextMatchRefs(64, &refs);
    if (s.ok() && refs.empty()) break;
  }
  ASSERT_TRUE(s.IsIOError()) << s;
  EXPECT_NE(s.message().find("site=store.add"), std::string::npos) << s;
  Status retry = join.NextMatchRefs(64, &refs);
  EXPECT_EQ(retry.code(), s.code());  // sticky
  ASSERT_TRUE(join.Close().ok());
}

TEST(FaultDegradationTest, OpenFailpointLeavesBothChildrenClosed) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  fail::DisarmAll();
  // OpenGuard audit: a failure injected after both children opened
  // must close both before Open returns.
  FlakyChild left(64);
  FlakyChild right(64);
  ParallelJoinOptions options;
  options.base.join.spec = OneColSpec();
  options.num_shards = 2;
  ParallelAdaptiveJoin join(&left, &right, options);
  fail::ScopedFailpoint guard(
      fail::site::kParallelOpen,
      fail::Policy::Once(Status::IOError("injected fault")));
  Status s = join.Open();
  ASSERT_TRUE(s.IsIOError()) << s;
  EXPECT_EQ(left.opens(), 1);
  EXPECT_EQ(left.closes(), 1);
  EXPECT_EQ(right.opens(), 1);
  EXPECT_EQ(right.closes(), 1);
  // And the operator is reusable once the fault clears.
  fail::DisarmAll();
  ASSERT_TRUE(join.Open().ok());
  ASSERT_TRUE(join.Close().ok());
}

TEST(TupleStoreTest, PrecomputedHashAddMatchesSelfComputed) {
  const datagen::TestCase tc = SmallCase();
  storage::TupleStore a(datagen::kAtlasLocationColumn);
  storage::TupleStore b(datagen::kAtlasLocationColumn);
  for (size_t i = 0; i < 10; ++i) {
    storage::Tuple row = tc.parent.row(i);
    const uint64_t hash =
        Fnv1a64(row[datagen::kAtlasLocationColumn].AsString());
    a.Add(tc.parent.row(i));
    b.Add(std::move(row), hash);
    EXPECT_EQ(a.KeyHash(static_cast<storage::TupleId>(i)),
              b.KeyHash(static_cast<storage::TupleId>(i)));
    EXPECT_EQ(a.JoinKey(static_cast<storage::TupleId>(i)),
              b.JoinKey(static_cast<storage::TupleId>(i)));
  }
}

}  // namespace
}  // namespace parallel
}  // namespace exec
}  // namespace aqp
