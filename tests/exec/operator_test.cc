#include "exec/operator.h"

#include <gtest/gtest.h>

#include "exec/scan.h"

namespace aqp {
namespace exec {
namespace {

using storage::Relation;
using storage::Schema;
using storage::Tuple;
using storage::Value;
using storage::ValueType;

Relation SmallRelation() {
  Relation r(Schema({{"x", ValueType::kInt64}}));
  EXPECT_TRUE(r.Append(Tuple{Value(1)}).ok());
  EXPECT_TRUE(r.Append(Tuple{Value(2)}).ok());
  EXPECT_TRUE(r.Append(Tuple{Value(3)}).ok());
  return r;
}

TEST(OperatorTest, SideHelpers) {
  EXPECT_EQ(OtherSide(Side::kLeft), Side::kRight);
  EXPECT_EQ(OtherSide(Side::kRight), Side::kLeft);
  EXPECT_STREQ(SideName(Side::kLeft), "left");
  EXPECT_STREQ(SideName(Side::kRight), "right");
}

TEST(OperatorTest, CollectAllMaterializes) {
  const Relation r = SmallRelation();
  RelationScan scan(&r);
  auto collected = CollectAll(&scan);
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(collected->size(), 3u);
  EXPECT_EQ(collected->row(2).at(0).AsInt64(), 3);
  EXPECT_EQ(collected->schema(), r.schema());
}

TEST(OperatorTest, CountAll) {
  const Relation r = SmallRelation();
  RelationScan scan(&r);
  auto count = CountAll(&scan);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u);
}

/// Operator that fails on the nth Next() call — exercises error
/// propagation through the drain helpers.
class FailingOperator : public Operator {
 public:
  explicit FailingOperator(int fail_at) : fail_at_(fail_at) {}
  Status Open() override {
    open_ = true;
    return Status::OK();
  }
  Result<std::optional<storage::Tuple>> Next() override {
    if (++calls_ >= fail_at_) return Status::Internal("synthetic failure");
    return std::optional<Tuple>(Tuple{Value(calls_)});
  }
  Status Close() override {
    closed_ = true;
    return Status::OK();
  }
  const Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "FailingOperator"; }
  bool closed() const { return closed_; }

 private:
  Schema schema_{{{"x", ValueType::kInt64}}};
  int fail_at_;
  int calls_ = 0;
  bool open_ = false;
  bool closed_ = false;
};

TEST(OperatorTest, CollectAllPropagatesErrorAndCloses) {
  FailingOperator op(3);
  auto collected = CollectAll(&op);
  EXPECT_FALSE(collected.ok());
  EXPECT_TRUE(collected.status().IsInternal());
  EXPECT_TRUE(op.closed());
}

TEST(OperatorTest, CountAllPropagatesError) {
  FailingOperator op(1);
  EXPECT_TRUE(CountAll(&op).status().IsInternal());
}

}  // namespace
}  // namespace exec
}  // namespace aqp
