// Engine-side memory accounting: the ApproximateMemoryUsage() figures
// of the holders the budget tree charges (exchange input batches,
// shard committed/staged tiers, prefetch chunk deque), the parallel
// join's aggregation of them into memory_bytes()/peak_memory_bytes()
// (the fix for parallel-runs-report-no-memory), the budget-tree wiring
// at epoch control points, and byte-identical results with accounting
// on vs off.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/memory_budget.h"
#include "datagen/generator.h"
#include "exec/parallel/exchange.h"
#include "exec/parallel/parallel_join.h"
#include "exec/parallel/shard.h"
#include "exec/prefetch.h"
#include "exec/scan.h"
#include "exec/stream.h"
#include "metrics/run_stats.h"

namespace aqp {
namespace exec {
namespace parallel {
namespace {

datagen::TestCase SmallCase() {
  datagen::TestCaseOptions options;
  options.atlas.size = 120;
  options.accidents.size = 240;
  options.variant_rate = 0.10;
  options.seed = 7;
  auto tc = datagen::GenerateTestCase(options);
  EXPECT_TRUE(tc.ok());
  return std::move(*tc);
}

join::JoinSpec Spec() {
  join::JoinSpec spec;
  spec.left_column = datagen::kAccidentsLocationColumn;
  spec.right_column = datagen::kAtlasLocationColumn;
  spec.sim_threshold = 0.85;
  return spec;
}

ParallelJoinOptions Options(const datagen::TestCase& tc) {
  ParallelJoinOptions options;
  options.base.join.spec = Spec();
  options.base.adaptive.parent_side = exec::Side::kRight;
  options.base.adaptive.parent_table_size = tc.parent.size();
  options.base.adaptive.delta_adapt = 50;
  options.base.adaptive.window = 50;
  options.num_shards = 2;
  return options;
}

TEST(MemoryAccountingTest, ExchangeAndShardsReportRoutedBytes) {
  const datagen::TestCase tc = SmallCase();
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  ASSERT_TRUE(child.Open().ok());
  ASSERT_TRUE(parent.Open().ok());

  std::vector<std::unique_ptr<JoinShard>> shards;
  std::vector<JoinShard*> ptrs;
  for (uint32_t i = 0; i < 2; ++i) {
    shards.push_back(std::make_unique<JoinShard>(
        i, Spec(), join::ApproxProbeOptions{},
        adaptive::ProcessorState::kLexRex));
    shards.back()->BindSchemas(&child.output_schema(),
                               &parent.output_schema());
    ptrs.push_back(shards.back().get());
  }
  RadixExchange exchange(&child, &parent, Spec(),
                         exec::InterleavePolicy::kAlternate, 0, 0, 64, 2);
  exchange.Reset();

  std::vector<RouteEntry> route;
  auto routed = exchange.RouteEpoch(100, ptrs, &route);
  ASSERT_TRUE(routed.ok());
  ASSERT_EQ(*routed, 100u);
  // The exchange holds the refill batches it just read...
  EXPECT_GT(exchange.ApproximateMemoryUsage(), 0u);
  // ...and every shard holds the rows routed to it.
  uint64_t committed = 0;
  for (JoinShard* shard : ptrs) {
    committed += shard->CommittedMemoryUsage();
    EXPECT_EQ(shard->ApproximateMemoryUsage(),
              shard->CommittedMemoryUsage() + shard->StagedMemoryUsage());
  }
  EXPECT_GT(committed, 100u);  // 100 routed rows, well over a byte each

  ASSERT_TRUE(child.Close().ok());
  ASSERT_TRUE(parent.Close().ok());
}

TEST(MemoryAccountingTest, PrefetchSourceReportsChunkDeque) {
  const datagen::TestCase tc = SmallCase();
  exec::RelationScan scan(&tc.child);
  exec::PrefetchSource prefetch(&scan);
  ASSERT_TRUE(prefetch.Open().ok());
  // Give the producer a beat to fill the deque, then consume one row so
  // the consumer-side serving batch exists too.
  auto row = prefetch.Next();
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(row->has_value());
  EXPECT_GT(prefetch.ApproximateMemoryUsage(), 0u);
  ASSERT_TRUE(prefetch.Close().ok());
}

TEST(MemoryAccountingTest, ParallelJoinAggregatesShardMemory) {
  // The satellite bugfix: a parallel run must report its real
  // aggregated footprint, not the zero the single-core RunStats path
  // produced. No budget configured — the end-of-run snapshot alone.
  const datagen::TestCase tc = SmallCase();
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  ParallelAdaptiveJoin join(&child, &parent, Options(tc));
  auto result = exec::CollectAll(&join);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Every ingested row is held by some shard store, so the aggregate
  // clears a conservative per-row floor easily.
  const uint64_t total_rows = tc.child.size() + tc.parent.size();
  EXPECT_GT(join.memory_bytes(), total_rows * 8);
  EXPECT_GE(join.peak_memory_bytes(), join.memory_bytes());
  // The quiescent recount agrees with the same floor (the shard stores
  // stay alive until destruction).
  EXPECT_GT(join.ApproximateMemoryUsage(), total_rows * 8);

  metrics::RunStats stats;
  metrics::AddMemoryStats(join, &stats);
  EXPECT_EQ(stats.memory_bytes, join.memory_bytes());
  EXPECT_EQ(stats.peak_memory_bytes, join.peak_memory_bytes());
}

TEST(MemoryAccountingTest, BudgetTreeChargedAtControlPointsAndReleased) {
  const datagen::TestCase tc = SmallCase();
  mem::BudgetNode root("global");
  uint64_t max_view_bytes = 0;
  size_t control_points = 0;
  {
    auto query = std::make_unique<mem::BudgetNode>("query1", &root);
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    ParallelJoinOptions options = Options(tc);
    options.memory_budget = query.get();
    options.governor = [&](const EpochView& view) {
      // The engine refreshes the tree right before this hook: the view
      // figure and the tree's aggregate are the same snapshot.
      ++control_points;
      max_view_bytes = std::max(max_view_bytes, view.memory_bytes);
      EXPECT_EQ(view.memory_bytes, query->used());
      return EpochDirective::kProceed;
    };
    ParallelAdaptiveJoin join(&child, &parent, options);
    auto result = exec::CollectAll(&join);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(control_points, 0u);
    EXPECT_GT(max_view_bytes, 0u);
  }
  // Join and query node destroyed → nothing left charged to the root.
  EXPECT_EQ(root.used(), 0u);
  EXPECT_GE(root.peak(), max_view_bytes);
}

TEST(MemoryAccountingTest, AccountingOnIsByteIdenticalToAccountingOff) {
  // Budgets disabled vs budget tree attached (no limits): same rows in
  // the same order, same steps, same adaptation trace.
  const datagen::TestCase tc = SmallCase();

  exec::RelationScan child_off(&tc.child);
  exec::RelationScan parent_off(&tc.parent);
  ParallelAdaptiveJoin off(&child_off, &parent_off, Options(tc));
  auto rows_off = exec::CollectAll(&off);
  ASSERT_TRUE(rows_off.ok());

  mem::BudgetNode root("global");
  mem::BudgetNode query("query1", &root);
  exec::RelationScan child_on(&tc.child);
  exec::RelationScan parent_on(&tc.parent);
  ParallelJoinOptions governed = Options(tc);
  governed.memory_budget = &query;
  ParallelAdaptiveJoin on(&child_on, &parent_on, governed);
  auto rows_on = exec::CollectAll(&on);
  ASSERT_TRUE(rows_on.ok());

  ASSERT_EQ(rows_on->size(), rows_off->size());
  for (size_t i = 0; i < rows_off->size(); ++i) {
    ASSERT_EQ(rows_on->row(i), rows_off->row(i)) << "row " << i;
  }
  EXPECT_EQ(on.steps(), off.steps());
  EXPECT_EQ(on.pairs_emitted(), off.pairs_emitted());
  EXPECT_EQ(on.state(), off.state());
}

TEST(MemoryAccountingTest, PipelinedIngestAccountsStagedTiers) {
  // With the ingest task staging ahead, the coordinator's charge folds
  // in the published ingest-side figure instead of touching buffers the
  // task owns (the TSan-safe committed/staged split). Accounting must
  // stay wired and the result identical to the serial-ingest run.
  const datagen::TestCase tc = SmallCase();

  exec::RelationScan child_serial(&tc.child);
  exec::RelationScan parent_serial(&tc.parent);
  ParallelAdaptiveJoin serial(&child_serial, &parent_serial, Options(tc));
  auto rows_serial = exec::CollectAll(&serial);
  ASSERT_TRUE(rows_serial.ok());

  mem::BudgetNode root("global");
  uint64_t max_view_bytes = 0;
  {
    mem::BudgetNode query("query1", &root);
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    ParallelJoinOptions options = Options(tc);
    options.pipeline_ingest = true;
    options.memory_budget = &query;
    options.governor = [&](const EpochView& view) {
      max_view_bytes = std::max(max_view_bytes, view.memory_bytes);
      return EpochDirective::kProceed;
    };
    ParallelAdaptiveJoin join(&child, &parent, options);
    auto rows = exec::CollectAll(&join);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    ASSERT_EQ(rows->size(), rows_serial->size());
    for (size_t i = 0; i < rows->size(); ++i) {
      ASSERT_EQ(rows->row(i), rows_serial->row(i)) << "row " << i;
    }
    EXPECT_GT(max_view_bytes, 0u);
  }
  EXPECT_EQ(root.used(), 0u);
}

}  // namespace
}  // namespace parallel
}  // namespace exec
}  // namespace aqp
