#include "exec/interleave.h"

#include <gtest/gtest.h>

namespace aqp {
namespace exec {
namespace {

TEST(InterleaveTest, AlternateStrictlyAlternates) {
  InterleaveScheduler sched(InterleavePolicy::kAlternate, 0, 0);
  std::vector<Side> order;
  for (int i = 0; i < 6; ++i) {
    auto side = sched.NextSide(false, false);
    ASSERT_TRUE(side.has_value());
    sched.OnRead(*side);
    order.push_back(*side);
  }
  EXPECT_EQ(order, (std::vector<Side>{Side::kLeft, Side::kRight, Side::kLeft,
                                      Side::kRight, Side::kLeft,
                                      Side::kRight}));
}

TEST(InterleaveTest, DrainsSurvivorAfterExhaustion) {
  InterleaveScheduler sched(InterleavePolicy::kAlternate, 0, 0);
  auto side = sched.NextSide(true, false);
  ASSERT_TRUE(side.has_value());
  EXPECT_EQ(*side, Side::kRight);
  side = sched.NextSide(false, true);
  ASSERT_TRUE(side.has_value());
  EXPECT_EQ(*side, Side::kLeft);
  EXPECT_FALSE(sched.NextSide(true, true).has_value());
}

TEST(InterleaveTest, ProportionalTracksHints) {
  // Left is 3x larger: left should be read ~3x as often.
  InterleaveScheduler sched(InterleavePolicy::kProportional, 300, 100);
  int left = 0, right = 0;
  for (int i = 0; i < 400; ++i) {
    auto side = sched.NextSide(false, false);
    ASSERT_TRUE(side.has_value());
    sched.OnRead(*side);
    (*side == Side::kLeft ? left : right)++;
  }
  EXPECT_EQ(left, 300);
  EXPECT_EQ(right, 100);
}

TEST(InterleaveTest, ProportionalWithoutHintsFallsBackToAlternate) {
  InterleaveScheduler sched(InterleavePolicy::kProportional, 0, 0);
  auto a = sched.NextSide(false, false);
  ASSERT_TRUE(a.has_value());
  sched.OnRead(*a);
  auto b = sched.NextSide(false, false);
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(*a, *b);
}

TEST(InterleaveTest, LeftFirstExhaustsLeft) {
  InterleaveScheduler sched(InterleavePolicy::kLeftFirst, 0, 0);
  for (int i = 0; i < 5; ++i) {
    auto side = sched.NextSide(false, false);
    ASSERT_TRUE(side.has_value());
    EXPECT_EQ(*side, Side::kLeft);
    sched.OnRead(*side);
  }
  auto side = sched.NextSide(true, false);
  ASSERT_TRUE(side.has_value());
  EXPECT_EQ(*side, Side::kRight);
}

TEST(InterleaveTest, RightFirstExhaustsRight) {
  InterleaveScheduler sched(InterleavePolicy::kRightFirst, 0, 0);
  auto side = sched.NextSide(false, false);
  ASSERT_TRUE(side.has_value());
  EXPECT_EQ(*side, Side::kRight);
}

TEST(InterleaveTest, ReadCountsTracked) {
  InterleaveScheduler sched(InterleavePolicy::kAlternate, 0, 0);
  sched.OnRead(Side::kLeft);
  sched.OnRead(Side::kLeft);
  sched.OnRead(Side::kRight);
  EXPECT_EQ(sched.reads(Side::kLeft), 2u);
  EXPECT_EQ(sched.reads(Side::kRight), 1u);
}

TEST(InterleaveTest, PolicyNames) {
  EXPECT_STREQ(InterleavePolicyName(InterleavePolicy::kAlternate),
               "alternate");
  EXPECT_STREQ(InterleavePolicyName(InterleavePolicy::kProportional),
               "proportional");
}

}  // namespace
}  // namespace exec
}  // namespace aqp
