#include "exec/stream.h"

#include <gtest/gtest.h>

namespace aqp {
namespace exec {
namespace {

using storage::Schema;
using storage::Tuple;
using storage::Value;
using storage::ValueType;

Schema OneCol() { return Schema({{"s", ValueType::kString}}); }

TEST(PushSourceTest, PushThenPull) {
  PushSource src(OneCol());
  ASSERT_TRUE(src.Open().ok());
  ASSERT_TRUE(src.Push(Tuple{Value("a")}).ok());
  ASSERT_TRUE(src.Push(Tuple{Value("b")}).ok());
  auto a = src.Next();
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((**a).at(0).AsString(), "a");
  EXPECT_FALSE(src.blocked());
  EXPECT_EQ(src.queued(), 1u);
}

TEST(PushSourceTest, BlockedVersusFinished) {
  PushSource src(OneCol());
  ASSERT_TRUE(src.Open().ok());
  auto next = src.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
  EXPECT_TRUE(src.blocked());  // live stream, just empty
  ASSERT_TRUE(src.Finish().ok());
  next = src.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
  EXPECT_FALSE(src.blocked());  // now a real end-of-stream
}

TEST(PushSourceTest, DrainAfterFinish) {
  PushSource src(OneCol());
  ASSERT_TRUE(src.Open().ok());
  ASSERT_TRUE(src.Push(Tuple{Value("x")}).ok());
  ASSERT_TRUE(src.Finish().ok());
  auto a = src.Next();
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->has_value());
  auto end = src.Next();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end->has_value());
}

TEST(PushSourceTest, PushAfterFinishRejected) {
  PushSource src(OneCol());
  ASSERT_TRUE(src.Finish().ok());
  EXPECT_TRUE(src.Push(Tuple{Value("x")}).IsFailedPrecondition());
  EXPECT_TRUE(src.Finish().IsFailedPrecondition());
}

TEST(GeneratorSourceTest, ProducesUntilNullopt) {
  int counter = 0;
  GeneratorSource src(OneCol(), [&]() -> std::optional<Tuple> {
    if (counter >= 3) return std::nullopt;
    return Tuple{Value("t" + std::to_string(counter++))};
  });
  ASSERT_TRUE(src.Open().ok());
  int produced = 0;
  while (true) {
    auto next = src.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    ++produced;
  }
  EXPECT_EQ(produced, 3);
  // Stays at EOS even if the generator could produce again.
  counter = 0;
  auto next = src.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
}

TEST(GeneratorSourceTest, LifecycleErrors) {
  GeneratorSource src(OneCol(), []() { return std::nullopt; });
  EXPECT_TRUE(src.Next().status().IsFailedPrecondition());
  ASSERT_TRUE(src.Open().ok());
  EXPECT_TRUE(src.Open().IsFailedPrecondition());
}

}  // namespace
}  // namespace exec
}  // namespace aqp
