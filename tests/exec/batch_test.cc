// The vectorized operator protocol: NextBatch contracts on sources, the
// default Next()-adapter, the batched drains, and batch-boundary
// quiescence of the symmetric join.

#include <gtest/gtest.h>

#include "exec/scan.h"
#include "exec/sink.h"
#include "exec/stream.h"
#include "join/shjoin.h"

namespace aqp {
namespace exec {
namespace {

using storage::Relation;
using storage::Schema;
using storage::Tuple;
using storage::TupleBatch;
using storage::Value;
using storage::ValueType;

Schema OneInt() { return Schema({{"x", ValueType::kInt64}}); }
Schema OneString() { return Schema({{"s", ValueType::kString}}); }

Relation Ints(int n) {
  Relation r(OneInt());
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(r.Append(Tuple{Value(i)}).ok());
  }
  return r;
}

Relation Strings(const std::vector<std::string>& values) {
  Relation r(OneString());
  for (const auto& v : values) {
    EXPECT_TRUE(r.Append(Tuple{Value(v)}).ok());
  }
  return r;
}

TEST(NextBatchTest, RelationScanFillsWholeBatches) {
  const Relation r = Ints(10);
  RelationScan scan(&r);
  ASSERT_TRUE(scan.Open().ok());
  TupleBatch batch(&r.schema(), 4);
  std::vector<int64_t> seen;
  while (true) {
    ASSERT_TRUE(scan.NextBatch(&batch).ok());
    if (batch.empty()) break;
    EXPECT_LE(batch.size(), 4u);
    for (const Tuple& t : batch) seen.push_back(t.at(0).AsInt64());
  }
  ASSERT_EQ(seen.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(seen[i], i);
  // Batch sizes: 4, 4, 2 — the last one partial.
  ASSERT_TRUE(scan.Close().ok());
}

TEST(NextBatchTest, MatchesNextOrderExactly) {
  const Relation r = Ints(7);
  RelationScan a(&r);
  RelationScan b(&r);
  ASSERT_TRUE(a.Open().ok());
  ASSERT_TRUE(b.Open().ok());
  TupleBatch batch(&r.schema(), 3);
  std::vector<Tuple> from_batches;
  while (true) {
    ASSERT_TRUE(a.NextBatch(&batch).ok());
    if (batch.empty()) break;
    for (Tuple& t : batch) from_batches.push_back(std::move(t));
  }
  for (const Tuple& expected : from_batches) {
    auto next = b.Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next->has_value());
    EXPECT_EQ(**next, expected);
  }
  EXPECT_FALSE(b.Next()->has_value());
}

TEST(NextBatchTest, NotOpenFails) {
  const Relation r = Ints(3);
  RelationScan scan(&r);
  TupleBatch batch(&r.schema(), 4);
  EXPECT_TRUE(scan.NextBatch(&batch).IsFailedPrecondition());
}

/// Operator relying on the base-class Next() adapter.
class CountdownOperator : public Operator {
 public:
  explicit CountdownOperator(int n) : remaining_(n) {}
  Status Open() override { return Status::OK(); }
  Result<std::optional<Tuple>> Next() override {
    if (remaining_ <= 0) return std::optional<Tuple>();
    return std::optional<Tuple>(Tuple{Value(remaining_--)});
  }
  Status Close() override { return Status::OK(); }
  const Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "CountdownOperator"; }

 private:
  Schema schema_ = Schema({{"x", ValueType::kInt64}});
  int remaining_;
};

TEST(NextBatchTest, DefaultAdapterLoopsNext) {
  CountdownOperator op(5);
  ASSERT_TRUE(op.Open().ok());
  TupleBatch batch(&op.output_schema(), 2);
  ASSERT_TRUE(op.NextBatch(&batch).ok());
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].at(0).AsInt64(), 5);
  EXPECT_EQ(batch[1].at(0).AsInt64(), 4);
  ASSERT_TRUE(op.NextBatch(&batch).ok());
  EXPECT_EQ(batch.size(), 2u);
  ASSERT_TRUE(op.NextBatch(&batch).ok());
  EXPECT_EQ(batch.size(), 1u);
  ASSERT_TRUE(op.NextBatch(&batch).ok());
  EXPECT_TRUE(batch.empty());
}

/// Operator that fails on the nth Next() call.
class FailingOperator : public Operator {
 public:
  explicit FailingOperator(int fail_at) : fail_at_(fail_at) {}
  Status Open() override { return Status::OK(); }
  Result<std::optional<Tuple>> Next() override {
    if (++calls_ >= fail_at_) return Status::Internal("synthetic failure");
    return std::optional<Tuple>(Tuple{Value(calls_)});
  }
  Status Close() override { return Status::OK(); }
  const Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "FailingOperator"; }

 private:
  Schema schema_ = Schema({{"x", ValueType::kInt64}});
  int fail_at_;
  int calls_ = 0;
};

TEST(NextBatchTest, DefaultAdapterPropagatesMidBatchError) {
  FailingOperator op(3);
  ASSERT_TRUE(op.Open().ok());
  TupleBatch batch(&op.output_schema(), 8);
  Status s = op.NextBatch(&batch);
  EXPECT_TRUE(s.IsInternal());
  // The partial batch is discarded, exactly like a failing Next().
  EXPECT_TRUE(batch.empty());
}

TEST(NextBatchTest, PushSourceDrainsQueueAndReportsBlocked) {
  PushSource src(OneString());
  ASSERT_TRUE(src.Open().ok());
  ASSERT_TRUE(src.Push(Tuple{Value("a")}).ok());
  ASSERT_TRUE(src.Push(Tuple{Value("b")}).ok());
  TupleBatch batch(&src.output_schema(), 8);
  ASSERT_TRUE(src.NextBatch(&batch).ok());
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_FALSE(src.blocked());
  // Live stream, no tuples yet: empty batch + blocked.
  ASSERT_TRUE(src.NextBatch(&batch).ok());
  EXPECT_TRUE(batch.empty());
  EXPECT_TRUE(src.blocked());
  ASSERT_TRUE(src.Finish().ok());
  ASSERT_TRUE(src.NextBatch(&batch).ok());
  EXPECT_TRUE(batch.empty());
  EXPECT_FALSE(src.blocked());
}

TEST(NextBatchTest, GeneratorSourceHonorsCapacity) {
  int produced = 0;
  GeneratorSource src(OneInt(), [&]() -> std::optional<Tuple> {
    if (produced >= 5) return std::nullopt;
    return Tuple{Value(produced++)};
  });
  ASSERT_TRUE(src.Open().ok());
  TupleBatch batch(&src.output_schema(), 3);
  ASSERT_TRUE(src.NextBatch(&batch).ok());
  EXPECT_EQ(batch.size(), 3u);
  ASSERT_TRUE(src.NextBatch(&batch).ok());
  EXPECT_EQ(batch.size(), 2u);
  ASSERT_TRUE(src.NextBatch(&batch).ok());
  EXPECT_TRUE(batch.empty());
}

TEST(BatchedDrainTest, CollectAllIdenticalAcrossBatchSizes) {
  const Relation r = Ints(100);
  ExecOptions tiny;
  tiny.batch_size = 1;
  ExecOptions big;
  big.batch_size = 64;
  RelationScan s1(&r);
  RelationScan s2(&r);
  auto c1 = CollectAll(&s1, tiny);
  auto c2 = CollectAll(&s2, big);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  ASSERT_EQ(c1->size(), c2->size());
  for (size_t i = 0; i < c1->size(); ++i) {
    EXPECT_EQ(c1->row(i), c2->row(i));
  }
}

TEST(BatchedDrainTest, DrainLimitAndEarlyStopUnaffectedByBatching) {
  const Relation r = Ints(50);
  RelationScan scan(&r);
  DrainOptions options;
  options.limit = 7;
  options.batch_size = 16;
  size_t visited = 0;
  auto count = Drain(&scan, [&](const Tuple&) {
    ++visited;
    return true;
  }, options);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 7u);
  EXPECT_EQ(visited, 7u);

  RelationScan scan2(&r);
  size_t visited2 = 0;
  auto count2 = Drain(&scan2, [&](const Tuple& t) {
    ++visited2;
    return t.at(0).AsInt64() < 4;  // stop after visiting 4
  });
  ASSERT_TRUE(count2.ok());
  EXPECT_EQ(*count2, 5u);
  EXPECT_EQ(visited2, 5u);
}

/// Join subclass recording when the engine declares quiescent points
/// and how it clamps step batches.
class ProbingJoin : public join::SymmetricJoin {
 public:
  ProbingJoin(Operator* left, Operator* right,
              join::SymmetricJoinOptions options, uint64_t control_every)
      : SymmetricJoin(left, right, std::move(options),
                      join::ProbeMode::kExact, join::ProbeMode::kExact,
                      "ProbingJoin"),
        control_every_(control_every) {}

  size_t quiescent_calls = 0;
  size_t non_quiescent_calls = 0;
  std::vector<size_t> batch_step_counts;

 protected:
  Status OnQuiescentPoint() override {
    ++quiescent_calls;
    // Batch boundaries are quiescent by construction: no produced-but-
    // undelivered output may be pending when adaptation could fire...
    if (!quiescent()) ++non_quiescent_calls;
    return Status::OK();
  }
  uint64_t StepsUntilControlPoint() const override {
    if (control_every_ == 0) return kNoControlPoint;
    const uint64_t next = ((steps() / control_every_) + 1) * control_every_;
    return next - steps();
  }
  void OnBatchCompleted(const join::StepBatchStats& batch) override {
    batch_step_counts.push_back(batch.steps.size());
  }

 private:
  uint64_t control_every_;
};

TEST(BatchQuiescenceTest, BoundariesAreQuiescentAndClampedToControlPoints) {
  const Relation left = Strings({"A", "B", "C", "D", "E", "F", "G", "H"});
  const Relation right = Strings({"A", "B", "C", "D", "E", "F", "G", "H"});
  RelationScan ls(&left);
  RelationScan rs(&right);
  join::SymmetricJoinOptions options;
  options.batch_size = 64;  // larger than the clamp: the clamp must win
  ProbingJoin join(&ls, &rs, options, /*control_every=*/3);
  auto collected = CollectAll(&join);
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(collected->size(), 8u);  // equi-join pairs
  EXPECT_EQ(join.steps(), 16u);
  // Every quiescent-point callback found the operator quiescent.
  EXPECT_GT(join.quiescent_calls, 0u);
  EXPECT_EQ(join.non_quiescent_calls, 0u);
  // No step batch ran past the declared control boundary.
  size_t total_steps = 0;
  for (size_t n : join.batch_step_counts) {
    EXPECT_LE(n, 3u);
    total_steps += n;
  }
  EXPECT_EQ(total_steps, 16u);
  EXPECT_TRUE(join.quiescent());
}

TEST(BatchQuiescenceTest, TupleAndBatchDrivesProduceIdenticalResults) {
  const Relation left =
      Strings({"AAA", "BBB", "CCC", "AAA", "DDD", "EEE", "BBB"});
  const Relation right = Strings({"BBB", "AAA", "FFF", "AAA"});
  // Tuple-at-a-time via Next().
  RelationScan l1(&left);
  RelationScan r1(&right);
  join::SHJoin j1(&l1, &r1, join::SymmetricJoinOptions{});
  ASSERT_TRUE(j1.Open().ok());
  std::vector<Tuple> tuple_wise;
  while (true) {
    auto next = j1.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    tuple_wise.push_back(std::move(**next));
  }
  ASSERT_TRUE(j1.Close().ok());
  // Batched via NextBatch with a small capacity to force spills.
  RelationScan l2(&left);
  RelationScan r2(&right);
  join::SHJoin j2(&l2, &r2, join::SymmetricJoinOptions{});
  ASSERT_TRUE(j2.Open().ok());
  std::vector<Tuple> batch_wise;
  TupleBatch batch(nullptr, 2);
  while (true) {
    ASSERT_TRUE(j2.NextBatch(&batch).ok());
    if (batch.empty()) break;
    for (Tuple& t : batch) batch_wise.push_back(std::move(t));
  }
  ASSERT_TRUE(j2.Close().ok());
  ASSERT_EQ(tuple_wise.size(), batch_wise.size());
  for (size_t i = 0; i < tuple_wise.size(); ++i) {
    EXPECT_EQ(tuple_wise[i], batch_wise[i]) << "row " << i;
  }
}

}  // namespace
}  // namespace exec
}  // namespace aqp
