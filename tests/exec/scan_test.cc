#include "exec/scan.h"

#include <gtest/gtest.h>

namespace aqp {
namespace exec {
namespace {

using storage::Relation;
using storage::Schema;
using storage::Tuple;
using storage::Value;
using storage::ValueType;

Relation ThreeRows() {
  Relation r(Schema({{"s", ValueType::kString}}));
  EXPECT_TRUE(r.Append(Tuple{Value("a")}).ok());
  EXPECT_TRUE(r.Append(Tuple{Value("b")}).ok());
  EXPECT_TRUE(r.Append(Tuple{Value("c")}).ok());
  return r;
}

TEST(RelationScanTest, ProducesAllRowsInOrder) {
  const Relation r = ThreeRows();
  RelationScan scan(&r);
  ASSERT_TRUE(scan.Open().ok());
  std::vector<std::string> seen;
  while (true) {
    auto next = scan.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    seen.push_back((**next).at(0).AsString());
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(scan.Close().ok());
}

TEST(RelationScanTest, NextAfterExhaustionStaysAtEos) {
  const Relation r = ThreeRows();
  RelationScan scan(&r);
  ASSERT_TRUE(scan.Open().ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(scan.Next().ok());
  for (int i = 0; i < 3; ++i) {
    auto next = scan.Next();
    ASSERT_TRUE(next.ok());
    EXPECT_FALSE(next->has_value());
  }
}

TEST(RelationScanTest, LifecycleErrors) {
  const Relation r = ThreeRows();
  RelationScan scan(&r);
  EXPECT_TRUE(scan.Next().status().IsFailedPrecondition());
  EXPECT_TRUE(scan.Close().IsFailedPrecondition());
  ASSERT_TRUE(scan.Open().ok());
  EXPECT_TRUE(scan.Open().IsFailedPrecondition());
  ASSERT_TRUE(scan.Close().ok());
  EXPECT_TRUE(scan.Close().IsFailedPrecondition());
}

TEST(RelationScanTest, ReopenRestarts) {
  const Relation r = ThreeRows();
  RelationScan scan(&r);
  ASSERT_TRUE(scan.Open().ok());
  ASSERT_TRUE(scan.Next().ok());
  ASSERT_TRUE(scan.Close().ok());
  ASSERT_TRUE(scan.Open().ok());
  auto next = scan.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ((**next).at(0).AsString(), "a");
  ASSERT_TRUE(scan.Close().ok());
}

TEST(RelationScanTest, AlwaysQuiescent) {
  const Relation r = ThreeRows();
  RelationScan scan(&r);
  EXPECT_TRUE(scan.quiescent());
}

TEST(VectorScanTest, OwnsItsTuples) {
  Schema schema({{"s", ValueType::kString}});
  VectorScan scan(schema, {Tuple{Value("x")}, Tuple{Value("y")}});
  ASSERT_TRUE(scan.Open().ok());
  auto a = scan.Next();
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((**a).at(0).AsString(), "x");
  auto b = scan.Next();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((**b).at(0).AsString(), "y");
  auto end = scan.Next();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end->has_value());
  ASSERT_TRUE(scan.Close().ok());
}

TEST(VectorScanTest, EmptyVector) {
  VectorScan scan(Schema({{"s", ValueType::kString}}), {});
  ASSERT_TRUE(scan.Open().ok());
  auto next = scan.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
}

}  // namespace
}  // namespace exec
}  // namespace aqp
