#include "exec/sink.h"

#include <gtest/gtest.h>

#include "exec/scan.h"

namespace aqp {
namespace exec {
namespace {

using storage::Relation;
using storage::Schema;
using storage::Tuple;
using storage::Value;
using storage::ValueType;

Relation Numbers(int n) {
  Relation r(Schema({{"x", ValueType::kInt64}}));
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(r.Append(Tuple{Value(i)}).ok());
  }
  return r;
}

TEST(DrainTest, VisitsEveryTuple) {
  const Relation r = Numbers(5);
  RelationScan scan(&r);
  int64_t sum = 0;
  auto count = Drain(&scan, [&](const Tuple& t) {
    sum += t.at(0).AsInt64();
    return true;
  });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 5u);
  EXPECT_EQ(sum, 0 + 1 + 2 + 3 + 4);
}

TEST(DrainTest, VisitorCanStopEarly) {
  const Relation r = Numbers(100);
  RelationScan scan(&r);
  auto count = Drain(&scan, [&](const Tuple& t) {
    return t.at(0).AsInt64() < 2;  // stop after seeing 2
  });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u);  // 0, 1, 2 delivered
}

TEST(DrainTest, LimitCapsDelivery) {
  const Relation r = Numbers(100);
  RelationScan scan(&r);
  DrainOptions options;
  options.limit = 10;
  auto count = Drain(&scan, [](const Tuple&) { return true; }, options);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 10u);
}

TEST(DrainTest, EmptyInput) {
  const Relation r = Numbers(0);
  RelationScan scan(&r);
  auto count = Drain(&scan, [](const Tuple&) { return true; });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

}  // namespace
}  // namespace exec
}  // namespace aqp
