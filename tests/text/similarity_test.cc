#include "text/similarity.h"

#include <gtest/gtest.h>

#include <cmath>

namespace aqp {
namespace text {
namespace {

QGramOptions Q3() {
  QGramOptions o;
  o.q = 3;
  return o;
}

TEST(JaccardTest, IdenticalStringsScoreOne) {
  const GramSet a = GramSet::Of("SANTA CRISTINA", Q3());
  EXPECT_DOUBLE_EQ(Jaccard(a, a), 1.0);
}

TEST(JaccardTest, BothEmptyScoreOne) {
  GramSet a, b;
  EXPECT_DOUBLE_EQ(Jaccard(a, b), 1.0);
}

TEST(JaccardTest, OneEmptyScoresZero) {
  QGramOptions o = Q3();
  o.pad = false;
  const GramSet a = GramSet::Of("ABCDEF", o);
  GramSet empty;
  EXPECT_DOUBLE_EQ(Jaccard(a, empty), 0.0);
}

TEST(JaccardTest, HandComputedExample) {
  QGramOptions o = Q3();
  o.pad = false;
  // q(ABCD) = {ABC, BCD}; q(ABCE) = {ABC, BCE}. J = 1/3.
  const GramSet a = GramSet::Of("ABCD", o);
  const GramSet b = GramSet::Of("ABCE", o);
  EXPECT_NEAR(Jaccard(a, b), 1.0 / 3.0, 1e-12);
}

TEST(JaccardTest, FromOverlapAgreesWithSets) {
  const GramSet a = GramSet::Of("SANTA CRISTINA VALGARDENA", Q3());
  const GramSet b = GramSet::Of("SANTA CRISTINx VALGARDENA", Q3());
  const size_t overlap = a.OverlapWith(b);
  EXPECT_DOUBLE_EQ(Jaccard(a, b),
                   JaccardFromOverlap(a.size(), b.size(), overlap));
}

TEST(DiceTest, HandComputedExample) {
  QGramOptions o = Q3();
  o.pad = false;
  const GramSet a = GramSet::Of("ABCD", o);  // 2 grams
  const GramSet b = GramSet::Of("ABCE", o);  // 2 grams, overlap 1
  EXPECT_NEAR(Dice(a, b), 2.0 * 1.0 / 4.0, 1e-12);
}

TEST(CosineTest, HandComputedExample) {
  QGramOptions o = Q3();
  o.pad = false;
  const GramSet a = GramSet::Of("ABCD", o);
  const GramSet b = GramSet::Of("ABCE", o);
  EXPECT_NEAR(Cosine(a, b), 1.0 / std::sqrt(4.0), 1e-12);
}

TEST(OverlapCoefficientTest, SubsetScoresOne) {
  QGramOptions o = Q3();
  o.pad = false;
  const GramSet a = GramSet::Of("ABCDE", o);  // ABC BCD CDE
  const GramSet b = GramSet::Of("ABCD", o);   // ABC BCD (subset)
  EXPECT_DOUBLE_EQ(OverlapCoefficient(a, b), 1.0);
}

TEST(SetSimilarityTest, DispatchesAllMeasures) {
  const GramSet a = GramSet::Of("SANTA", Q3());
  const GramSet b = GramSet::Of("SANTO", Q3());
  EXPECT_DOUBLE_EQ(SetSimilarity(SimilarityMeasure::kJaccard, a, b),
                   Jaccard(a, b));
  EXPECT_DOUBLE_EQ(SetSimilarity(SimilarityMeasure::kDice, a, b), Dice(a, b));
  EXPECT_DOUBLE_EQ(SetSimilarity(SimilarityMeasure::kCosine, a, b),
                   Cosine(a, b));
  EXPECT_DOUBLE_EQ(SetSimilarity(SimilarityMeasure::kOverlap, a, b),
                   OverlapCoefficient(a, b));
}

TEST(SetSimilarityFromOverlapTest, AgreesWithDirectComputation) {
  const GramSet a = GramSet::Of("SANTA CRISTINA", Q3());
  const GramSet b = GramSet::Of("SANTO CRISTONE", Q3());
  const size_t o = a.OverlapWith(b);
  for (auto m : {SimilarityMeasure::kJaccard, SimilarityMeasure::kDice,
                 SimilarityMeasure::kCosine, SimilarityMeasure::kOverlap}) {
    EXPECT_DOUBLE_EQ(SetSimilarityFromOverlap(m, a.size(), b.size(), o),
                     SetSimilarity(m, a, b))
        << SimilarityMeasureName(m);
  }
}

TEST(MinOverlapTest, JaccardBoundIsSoundAndUseful) {
  // For any candidate c with J(p, c) >= t, overlap >= ceil(t * |p|).
  const size_t g = 30;
  const double t = 0.85;
  const size_t k = MinOverlapForThreshold(SimilarityMeasure::kJaccard, g, t);
  EXPECT_EQ(k, 26u);  // ceil(0.85 * 30) = 26
  EXPECT_GE(k, 1u);
  EXPECT_LE(k, g);
}

TEST(MinOverlapTest, AlwaysAtLeastOne) {
  for (auto m : {SimilarityMeasure::kJaccard, SimilarityMeasure::kDice,
                 SimilarityMeasure::kCosine, SimilarityMeasure::kOverlap}) {
    EXPECT_GE(MinOverlapForThreshold(m, 10, 0.0), 1u);
    EXPECT_GE(MinOverlapForThreshold(m, 0, 0.9), 1u);
  }
}

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(Levenshtein("", ""), 0u);
  EXPECT_EQ(Levenshtein("abc", "abc"), 0u);
  EXPECT_EQ(Levenshtein("abc", ""), 3u);
  EXPECT_EQ(Levenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(Levenshtein("flaw", "lawn"), 2u);
  EXPECT_EQ(Levenshtein("SANTA CRISTINA", "SANTA CRISTINx"), 1u);
}

TEST(LevenshteinTest, Symmetric) {
  EXPECT_EQ(Levenshtein("abcdef", "azced"), Levenshtein("azced", "abcdef"));
}

TEST(BoundedLevenshteinTest, AgreesWithinBound) {
  EXPECT_EQ(BoundedLevenshtein("kitten", "sitting", 5), 3u);
  EXPECT_EQ(BoundedLevenshtein("abc", "abc", 0), 0u);
  EXPECT_EQ(BoundedLevenshtein("SANTA", "SANTo", 1), 1u);
}

TEST(BoundedLevenshteinTest, SaturatesBeyondBound) {
  EXPECT_EQ(BoundedLevenshtein("kitten", "sitting", 2), 3u);  // bound+1
  EXPECT_EQ(BoundedLevenshtein("aaaa", "bbbb", 1), 2u);
  EXPECT_EQ(BoundedLevenshtein("short", "muchlongerstring", 3), 4u);
}

TEST(EditSimilarityTest, Range) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(EditSimilarity("abcd", "abcx"), 0.75, 1e-12);
}

}  // namespace
}  // namespace text
}  // namespace aqp
