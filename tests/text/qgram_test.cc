#include "text/qgram.h"

#include <gtest/gtest.h>

#include <vector>

#include <set>

namespace aqp {
namespace text {
namespace {

QGramOptions Q3() {
  QGramOptions o;
  o.q = 3;
  return o;
}

TEST(QGramOptionsTest, ValidatesQRange) {
  QGramOptions o;
  for (int q = 1; q <= 8; ++q) {
    o.q = q;
    EXPECT_TRUE(o.Validate().ok()) << q;
  }
  o.q = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o.q = 9;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
}

TEST(QGramOptionsTest, RejectsIdenticalPads) {
  QGramOptions o;
  o.pad_left = '#';
  o.pad_right = '#';
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
}

TEST(QGramTest, PaddedSequenceLengthMatchesPaperFormula) {
  // The paper counts |jA| + q - 1 grams for a padded attribute.
  const QGramOptions o = Q3();
  const std::vector<std::string> inputs = {
      "A", "AB", "ABCDE", "TAA BZ SANTA CRISTINA VALGARDENA"};
  for (const std::string& s : inputs) {
    const auto seq = ExtractGramSequence(s, o);
    EXPECT_EQ(seq.size(), s.size() + o.q - 1) << s;
    EXPECT_EQ(GramSequenceLength(s.size(), o), seq.size());
  }
}

TEST(QGramTest, UnpaddedSequenceLength) {
  QGramOptions o = Q3();
  o.pad = false;
  EXPECT_EQ(ExtractGramSequence("ABCDE", o).size(), 3u);
  EXPECT_EQ(ExtractGramSequence("AB", o).size(), 0u);
  EXPECT_EQ(ExtractGramSequence("", o).size(), 0u);
  EXPECT_EQ(GramSequenceLength(5, o), 3u);
  EXPECT_EQ(GramSequenceLength(2, o), 0u);
}

TEST(QGramTest, PaddedGramsOfShortString) {
  const QGramOptions o = Q3();
  const auto seq = ExtractGramSequence("AB", o);
  // \1\1A, \1AB, AB\2, B\2\2
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_EQ(GramKeyToString(seq[0], 3), "\x01\x01"
                                        "A");
  EXPECT_EQ(GramKeyToString(seq[1], 3), "\x01"
                                        "AB");
  EXPECT_EQ(GramKeyToString(seq[2], 3), "AB\x02");
  EXPECT_EQ(GramKeyToString(seq[3], 3), "B\x02\x02");
}

TEST(QGramTest, KeysRoundTripThroughStrings) {
  const QGramOptions o = Q3();
  const std::string s = "SANTA";
  for (GramKey key : ExtractGramSequence(s, o)) {
    const std::string gram = GramKeyToString(key, o.q);
    EXPECT_EQ(gram.size(), 3u);
  }
}

TEST(QGramTest, Q1IsCharacterSet) {
  QGramOptions o;
  o.q = 1;
  o.pad = true;  // q=1 needs no padding chars (q-1 == 0)
  const GramSet set = GramSet::Of("ABCA", o);
  EXPECT_EQ(set.size(), 3u);  // A, B, C
}

TEST(GramSetTest, DeduplicatesRepeatedGrams) {
  const QGramOptions o = Q3();
  // "AAAA" padded: \1\1A \1AA AAA AAA(dup) AA\2 A\2\2 -> "AAA" repeats.
  const auto seq = ExtractGramSequence("AAAA", o);
  const GramSet set = GramSet::Of("AAAA", o);
  EXPECT_LT(set.size(), seq.size());
  std::set<GramKey> unique(seq.begin(), seq.end());
  EXPECT_EQ(set.size(), unique.size());
}

TEST(GramSetTest, ContainsFindsMembers) {
  const QGramOptions o = Q3();
  const GramSet set = GramSet::Of("SANTA", o);
  const auto seq = ExtractGramSequence("SANTA", o);
  for (GramKey key : seq) {
    EXPECT_TRUE(set.Contains(key));
  }
  const GramSet other = GramSet::Of("XYZQW", o);
  for (GramKey key : other.grams()) {
    EXPECT_FALSE(set.Contains(key));
  }
}

TEST(GramSetTest, OverlapOfIdenticalStringsIsFullSize) {
  const QGramOptions o = Q3();
  const GramSet a = GramSet::Of("SANTA CRISTINA", o);
  EXPECT_EQ(a.OverlapWith(a), a.size());
}

TEST(GramSetTest, OverlapOfDisjointStringsIsZero) {
  QGramOptions o = Q3();
  o.pad = false;  // padding would create shared boundary grams
  const GramSet a = GramSet::Of("AAAA", o);
  const GramSet b = GramSet::Of("BBBB", o);
  EXPECT_EQ(a.OverlapWith(b), 0u);
}

TEST(GramSetTest, OverlapIsSymmetric) {
  const QGramOptions o = Q3();
  const GramSet a = GramSet::Of("SANTA CRISTINA", o);
  const GramSet b = GramSet::Of("SANTA CRISTINx", o);
  EXPECT_EQ(a.OverlapWith(b), b.OverlapWith(a));
  EXPECT_GT(a.OverlapWith(b), 0u);
  EXPECT_LT(a.OverlapWith(b), a.size());
}

TEST(GramSetTest, EmptyStringPaddedStillHasGrams) {
  // Padded empty string: q-1 left pads + q-1 right pads = q-1 windows.
  const QGramOptions o = Q3();
  const GramSet set = GramSet::Of("", o);
  EXPECT_EQ(set.size(), 2u);
}

TEST(GramSetTest, SingleCharacterEditChangesAtMostQGrams) {
  const QGramOptions o = Q3();
  const std::string s = "TAA BZ SANTA CRISTINA VALGARDENA";
  std::string edited = s;
  edited[20] = 'x';
  const GramSet a = GramSet::Of(s, o);
  const GramSet b = GramSet::Of(edited, o);
  const size_t overlap = a.OverlapWith(b);
  // A substitution affects at most q windows on each side.
  EXPECT_GE(overlap + 3, a.size());
  EXPECT_GE(overlap + 3, b.size());
}

}  // namespace
}  // namespace text
}  // namespace aqp
