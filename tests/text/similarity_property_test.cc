#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "text/qgram.h"
#include "text/similarity.h"

namespace aqp {
namespace text {
namespace {

/// Property sweep over random string pairs: similarity coefficients
/// must stay in [0, 1], be symmetric, score identity as 1, and the
/// candidate-count bound k = MinOverlapForThreshold must never exclude
/// a true match.
class SimilarityPropertyTest : public ::testing::TestWithParam<uint64_t> {};

std::string RandomWordString(Rng* rng) {
  const size_t words = 1 + rng->Index(5);
  std::string s;
  for (size_t w = 0; w < words; ++w) {
    if (w > 0) s += ' ';
    s += rng->RandomString(1 + rng->Index(10), "ABCDEFGH");
  }
  return s;
}

TEST_P(SimilarityPropertyTest, CoefficientInvariants) {
  Rng rng(GetParam());
  QGramOptions o;
  o.q = 3;
  for (int i = 0; i < 200; ++i) {
    const std::string s1 = RandomWordString(&rng);
    const std::string s2 = RandomWordString(&rng);
    const GramSet a = GramSet::Of(s1, o);
    const GramSet b = GramSet::Of(s2, o);
    for (auto m : {SimilarityMeasure::kJaccard, SimilarityMeasure::kDice,
                   SimilarityMeasure::kCosine, SimilarityMeasure::kOverlap}) {
      const double ab = SetSimilarity(m, a, b);
      const double ba = SetSimilarity(m, b, a);
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
      EXPECT_DOUBLE_EQ(ab, ba);
      EXPECT_DOUBLE_EQ(SetSimilarity(m, a, a), 1.0);
    }
    // Jaccard <= Cosine <= Dice ... actually standard ordering is
    // Jaccard <= Dice; verify that relation.
    EXPECT_LE(SetSimilarity(SimilarityMeasure::kJaccard, a, b),
              SetSimilarity(SimilarityMeasure::kDice, a, b) + 1e-12);
  }
}

TEST_P(SimilarityPropertyTest, MinOverlapBoundIsSound) {
  Rng rng(GetParam() ^ 0x9e3779b9);
  QGramOptions o;
  o.q = 3;
  const double thresholds[] = {0.5, 0.7, 0.85, 0.95};
  for (int i = 0; i < 200; ++i) {
    const std::string s1 = RandomWordString(&rng);
    const std::string s2 = RandomWordString(&rng);
    const GramSet a = GramSet::Of(s1, o);
    const GramSet b = GramSet::Of(s2, o);
    if (a.empty() || b.empty()) continue;
    const size_t overlap = a.OverlapWith(b);
    for (double t : thresholds) {
      for (auto m :
           {SimilarityMeasure::kJaccard, SimilarityMeasure::kDice,
            SimilarityMeasure::kCosine, SimilarityMeasure::kOverlap}) {
        const double sim = SetSimilarity(m, a, b);
        if (sim >= t) {
          // The bound uses |q(s1)| as the probe: a true match must
          // reach it.
          EXPECT_GE(overlap, MinOverlapForThreshold(m, a.size(), t))
              << SimilarityMeasureName(m) << " t=" << t << " s1=" << s1
              << " s2=" << s2;
        }
      }
    }
  }
}

TEST_P(SimilarityPropertyTest, LevenshteinTriangleInequality) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int i = 0; i < 100; ++i) {
    const std::string a = RandomWordString(&rng);
    const std::string b = RandomWordString(&rng);
    const std::string c = RandomWordString(&rng);
    EXPECT_LE(Levenshtein(a, c), Levenshtein(a, b) + Levenshtein(b, c));
  }
}

TEST_P(SimilarityPropertyTest, BoundedLevenshteinAgreesWithExact) {
  Rng rng(GetParam() ^ 0x555555);
  for (int i = 0; i < 100; ++i) {
    const std::string a = RandomWordString(&rng);
    const std::string b = RandomWordString(&rng);
    const size_t exact = Levenshtein(a, b);
    for (size_t bound : {size_t{0}, size_t{1}, size_t{3}, size_t{10}}) {
      const size_t bounded = BoundedLevenshtein(a, b, bound);
      if (exact <= bound) {
        EXPECT_EQ(bounded, exact) << a << " / " << b;
      } else {
        EXPECT_EQ(bounded, bound + 1) << a << " / " << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1234));

}  // namespace
}  // namespace text
}  // namespace aqp
