#include "text/normalize.h"

#include <gtest/gtest.h>

namespace aqp {
namespace text {
namespace {

TEST(NormalizeTest, PaperPresetUppercasesAndCollapses) {
  const NormalizeOptions o = NormalizeOptions::Paper();
  EXPECT_EQ(Normalize("  taa  bz   Santa Cristina ", o),
            "TAA BZ SANTA CRISTINA");
}

TEST(NormalizeTest, AllOff) {
  NormalizeOptions o;
  o.upper_case = false;
  o.collapse_whitespace = false;
  o.strip_punctuation = false;
  EXPECT_EQ(Normalize("  mIxEd  CaSe ", o), "  mIxEd  CaSe ");
}

TEST(NormalizeTest, PunctuationBecomesWordBoundary) {
  NormalizeOptions o;
  o.strip_punctuation = true;
  EXPECT_EQ(Normalize("SANTA-CRISTINA", o), "SANTA CRISTINA");
  EXPECT_EQ(Normalize("ST. JOHN'S", o), "ST JOHN S");
}

TEST(NormalizeTest, PunctuationKeptByDefault) {
  const NormalizeOptions o = NormalizeOptions::Paper();
  EXPECT_EQ(Normalize("SANTA-CRISTINA", o), "SANTA-CRISTINA");
}

TEST(NormalizeTest, EmptyString) {
  EXPECT_EQ(Normalize("", NormalizeOptions::Paper()), "");
  EXPECT_EQ(Normalize("   ", NormalizeOptions::Paper()), "");
}

TEST(NormalizeTest, Idempotent) {
  const NormalizeOptions o = NormalizeOptions::Paper();
  const std::string once = Normalize(" a  B\tc ", o);
  EXPECT_EQ(Normalize(once, o), once);
}

}  // namespace
}  // namespace text
}  // namespace aqp
