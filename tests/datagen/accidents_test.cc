#include "datagen/accidents.h"

#include <gtest/gtest.h>

#include <map>

#include "datagen/atlas.h"

namespace aqp {
namespace datagen {
namespace {

storage::Relation SmallAtlas() {
  AtlasOptions options;
  options.size = 200;
  auto atlas = GenerateAtlas(options);
  EXPECT_TRUE(atlas.ok());
  return std::move(atlas).ValueOrDie();
}

TEST(AccidentsTest, GeneratesRowsWithTruth) {
  const storage::Relation atlas = SmallAtlas();
  AccidentsOptions options;
  options.size = 500;
  auto data = GenerateAccidents(atlas, kAtlasLocationColumn, options);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->table.size(), 500u);
  ASSERT_EQ(data->true_parent_row.size(), 500u);
  for (size_t i = 0; i < data->table.size(); ++i) {
    const size_t parent = data->true_parent_row[i];
    ASSERT_LT(parent, atlas.size());
    EXPECT_EQ(
        data->table.row(i).at(kAccidentsLocationColumn).AsString(),
        atlas.row(parent).at(kAtlasLocationColumn).AsString());
  }
}

TEST(AccidentsTest, SchemaShape) {
  const storage::Relation atlas = SmallAtlas();
  AccidentsOptions options;
  options.size = 5;
  auto data = GenerateAccidents(atlas, kAtlasLocationColumn, options);
  ASSERT_TRUE(data.ok());
  const storage::Schema& schema = data->table.schema();
  ASSERT_EQ(schema.num_fields(), 4u);
  EXPECT_EQ(schema.field(0).name, "accident_id");
  EXPECT_EQ(schema.field(1).name, "location");
  EXPECT_EQ(schema.field(2).name, "severity");
  EXPECT_EQ(schema.field(3).name, "day");
}

TEST(AccidentsTest, SeveritiesInRange) {
  const storage::Relation atlas = SmallAtlas();
  AccidentsOptions options;
  options.size = 300;
  auto data = GenerateAccidents(atlas, kAtlasLocationColumn, options);
  ASSERT_TRUE(data.ok());
  for (size_t i = 0; i < data->table.size(); ++i) {
    const int64_t severity = data->table.row(i).at(2).AsInt64();
    EXPECT_GE(severity, 1);
    EXPECT_LE(severity, 5);
  }
}

TEST(AccidentsTest, UniformDrawCoversAtlas) {
  const storage::Relation atlas = SmallAtlas();
  AccidentsOptions options;
  options.size = 5000;
  auto data = GenerateAccidents(atlas, kAtlasLocationColumn, options);
  ASSERT_TRUE(data.ok());
  std::map<size_t, size_t> hits;
  for (size_t parent : data->true_parent_row) ++hits[parent];
  // With 5000 draws over 200 parents, expect wide coverage.
  EXPECT_GT(hits.size(), 190u);
}

TEST(AccidentsTest, ZipfSkewsTowardLowRanks) {
  const storage::Relation atlas = SmallAtlas();
  AccidentsOptions options;
  options.size = 5000;
  options.zipf_locations = true;
  options.zipf_exponent = 1.2;
  auto data = GenerateAccidents(atlas, kAtlasLocationColumn, options);
  ASSERT_TRUE(data.ok());
  size_t top_decile = 0;
  for (size_t parent : data->true_parent_row) {
    if (parent < atlas.size() / 10) ++top_decile;
  }
  // The first 10% of ranks should receive far more than 10% of draws.
  EXPECT_GT(top_decile, data->true_parent_row.size() / 4);
}

TEST(AccidentsTest, DeterministicUnderSeed) {
  const storage::Relation atlas = SmallAtlas();
  AccidentsOptions options;
  options.size = 100;
  auto a = GenerateAccidents(atlas, kAtlasLocationColumn, options);
  auto b = GenerateAccidents(atlas, kAtlasLocationColumn, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->true_parent_row, b->true_parent_row);
}

TEST(AccidentsTest, RejectsDegenerateInputs) {
  const storage::Relation atlas = SmallAtlas();
  AccidentsOptions options;
  options.size = 0;
  EXPECT_TRUE(GenerateAccidents(atlas, kAtlasLocationColumn, options)
                  .status()
                  .IsInvalidArgument());
  storage::Relation empty_atlas(atlas.schema());
  options.size = 10;
  EXPECT_TRUE(GenerateAccidents(empty_atlas, kAtlasLocationColumn, options)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace datagen
}  // namespace aqp
