#include "datagen/pattern.h"

#include <gtest/gtest.h>

#include <set>

namespace aqp {
namespace datagen {
namespace {

TEST(PatternTest, UniformIsOneFullRegion) {
  auto spec = MakePattern(PerturbationPattern::kUniform, 1000, 0.1);
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->regions.size(), 1u);
  EXPECT_EQ(spec->regions[0].begin, 0u);
  EXPECT_EQ(spec->regions[0].end, 1000u);
  EXPECT_DOUBLE_EQ(spec->regions[0].intensity, 0.1);
  EXPECT_NEAR(spec->ExpectedOverallRate(), 0.1, 1e-9);
}

TEST(PatternTest, RegionCountsMatchFig5) {
  auto low = MakePattern(PerturbationPattern::kLowIntensityRegions, 8000, 0.1);
  auto few = MakePattern(PerturbationPattern::kFewHighIntensityRegions, 8000,
                         0.1);
  auto many = MakePattern(PerturbationPattern::kManyHighIntensityRegions,
                          8000, 0.1);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(few.ok());
  ASSERT_TRUE(many.ok());
  EXPECT_EQ(low->regions.size(), 8u);
  EXPECT_EQ(few->regions.size(), 3u);
  EXPECT_EQ(many->regions.size(), 10u);
  // (d) has more, shorter regions than (c) at the same intensity.
  EXPECT_LT(many->regions[0].length(), few->regions[0].length());
  EXPECT_NEAR(many->regions[0].intensity, few->regions[0].intensity, 1e-9);
  // High-intensity regions are denser than low-intensity ones.
  EXPECT_GT(few->regions[0].intensity, low->regions[0].intensity);
}

TEST(PatternTest, OverallRatePreservedAcrossPatterns) {
  for (PerturbationPattern p : kAllPatterns) {
    auto spec = MakePattern(p, 10000, 0.1);
    ASSERT_TRUE(spec.ok()) << PerturbationPatternName(p);
    EXPECT_NEAR(spec->ExpectedOverallRate(), 0.1, 0.01)
        << PerturbationPatternName(p);
  }
}

TEST(PatternTest, RegionsSortedAndDisjoint) {
  for (PerturbationPattern p : kAllPatterns) {
    auto spec = MakePattern(p, 5000, 0.1);
    ASSERT_TRUE(spec.ok());
    for (size_t i = 1; i < spec->regions.size(); ++i) {
      EXPECT_LE(spec->regions[i - 1].end, spec->regions[i].begin);
    }
    for (const Region& r : spec->regions) {
      EXPECT_LT(r.begin, r.end);
      EXPECT_LE(r.end, 5000u);
    }
  }
}

TEST(PatternTest, IntensityAtLookup) {
  auto spec =
      MakePattern(PerturbationPattern::kFewHighIntensityRegions, 3000, 0.1);
  ASSERT_TRUE(spec.ok());
  const Region& first = spec->regions[0];
  EXPECT_DOUBLE_EQ(spec->IntensityAt(first.begin), first.intensity);
  EXPECT_DOUBLE_EQ(spec->IntensityAt(first.end), 0.0);
  if (first.begin > 0) {
    EXPECT_DOUBLE_EQ(spec->IntensityAt(first.begin - 1), 0.0);
  }
}

TEST(PatternTest, RejectsDegenerateInputs) {
  EXPECT_TRUE(MakePattern(PerturbationPattern::kUniform, 0, 0.1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(MakePattern(PerturbationPattern::kUniform, 100, 1.5)
                  .status()
                  .IsInvalidArgument());
  // A rate that would push region intensity over 1.
  EXPECT_TRUE(MakePattern(PerturbationPattern::kFewHighIntensityRegions, 100,
                          0.5)
                  .status()
                  .IsInvalidArgument());
}

TEST(PatternTest, SampleHitsExactTarget) {
  Rng rng(5);
  for (PerturbationPattern p : kAllPatterns) {
    auto spec = MakePattern(p, 4000, 0.1);
    ASSERT_TRUE(spec.ok());
    const auto positions = SampleVariantPositions(*spec, 0.1, &rng);
    EXPECT_EQ(positions.size(), 400u) << PerturbationPatternName(p);
  }
}

TEST(PatternTest, SamplesAreUniqueSortedAndInsideRegions) {
  Rng rng(6);
  auto spec =
      MakePattern(PerturbationPattern::kManyHighIntensityRegions, 4000, 0.1);
  ASSERT_TRUE(spec.ok());
  const auto positions = SampleVariantPositions(*spec, 0.1, &rng);
  std::set<size_t> unique(positions.begin(), positions.end());
  EXPECT_EQ(unique.size(), positions.size());
  EXPECT_TRUE(std::is_sorted(positions.begin(), positions.end()));
  for (size_t pos : positions) {
    EXPECT_GT(spec->IntensityAt(pos), 0.0) << pos;
  }
}

TEST(PatternTest, ZeroRateSamplesNothing) {
  Rng rng(7);
  auto spec = MakePattern(PerturbationPattern::kUniform, 1000, 0.0);
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(SampleVariantPositions(*spec, 0.0, &rng).empty());
}

TEST(PatternTest, DensityStripVisualizesRegions) {
  auto uniform = MakePattern(PerturbationPattern::kUniform, 1000, 0.1);
  auto few =
      MakePattern(PerturbationPattern::kFewHighIntensityRegions, 1000, 0.1);
  ASSERT_TRUE(uniform.ok());
  ASSERT_TRUE(few.ok());
  const std::string u = uniform->DensityStrip(32);
  const std::string f = few->DensityStrip(32);
  EXPECT_EQ(u.size(), 32u);
  // Uniform: all low-intensity marks; few-high: both clean and dense
  // buckets appear.
  EXPECT_EQ(u.find('#'), std::string::npos);
  EXPECT_NE(f.find('#'), std::string::npos);
  EXPECT_NE(f.find('.'), std::string::npos);
}

TEST(PatternTest, PatternNames) {
  EXPECT_STREQ(PerturbationPatternName(PerturbationPattern::kUniform),
               "uniform");
  EXPECT_STREQ(
      PerturbationPatternName(PerturbationPattern::kManyHighIntensityRegions),
      "many_high");
}

}  // namespace
}  // namespace datagen
}  // namespace aqp
