// Tests for the constant-memory million-row corpus generator. The
// generator's contract is the same invariant GenerateTestCase enforces
// with forbidden sets — variants collide with no canonical string —
// but established constructively, so it must hold *exhaustively* on a
// small corpus, plus determinism and the similarity bound the linkage
// relies on.

#include "datagen/scale.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "text/qgram.h"
#include "text/similarity.h"

namespace aqp {
namespace datagen {
namespace {

ScaledCorpusOptions SmallOptions() {
  ScaledCorpusOptions options;
  options.parent_rows = 500;
  options.child_rows = 1000;
  return options;
}

TEST(ScaledCorpusTest, ParentLocationsPairwiseDistinct) {
  const ScaledCorpus corpus(SmallOptions());
  std::set<std::string> seen;
  for (size_t row = 0; row < 500; ++row) {
    EXPECT_TRUE(seen.insert(corpus.ParentLocation(row)).second)
        << "duplicate parent location at row " << row;
  }
}

TEST(ScaledCorpusTest, DeterministicAcrossInstances) {
  const ScaledCorpus a(SmallOptions());
  const ScaledCorpus b(SmallOptions());
  for (size_t row = 0; row < 200; ++row) {
    EXPECT_EQ(a.ParentLocation(row), b.ParentLocation(row));
    EXPECT_EQ(a.ChildLocation(row), b.ChildLocation(row));
    EXPECT_EQ(a.ChildParent(row), b.ChildParent(row));
  }
  ScaledCorpusOptions reseeded = SmallOptions();
  reseeded.seed += 1;
  const ScaledCorpus c(reseeded);
  size_t differing = 0;
  for (size_t row = 0; row < 200; ++row) {
    if (a.ParentLocation(row) != c.ParentLocation(row)) ++differing;
  }
  EXPECT_GT(differing, 0u) << "seed must actually change the corpus";
}

TEST(ScaledCorpusTest, VariantsNeverCollideWithAnyParent) {
  // Exhaustive at small scale: a variant carries a lower-case letter,
  // parents are upper-case/space only — but verify against the full
  // parent set rather than trusting the argument.
  const ScaledCorpus corpus(SmallOptions());
  std::set<std::string> parents;
  for (size_t row = 0; row < 500; ++row) {
    parents.insert(corpus.ParentLocation(row));
  }
  size_t variants = 0;
  for (size_t row = 0; row < 1000; ++row) {
    const std::string child = corpus.ChildLocation(row);
    if (corpus.ChildIsVariant(row)) {
      ++variants;
      EXPECT_EQ(parents.count(child), 0u)
          << "variant \"" << child << "\" equals a canonical location";
    } else {
      EXPECT_EQ(child, corpus.ParentLocation(corpus.ChildParent(row)));
    }
  }
  EXPECT_GT(variants, 0u);
}

TEST(ScaledCorpusTest, VariantRateApproximatelyHonored) {
  ScaledCorpusOptions options = SmallOptions();
  options.child_rows = 20000;
  options.variant_rate = 0.10;
  const ScaledCorpus corpus(options);
  size_t variants = 0;
  for (size_t row = 0; row < options.child_rows; ++row) {
    if (corpus.ChildIsVariant(row)) ++variants;
  }
  const double rate =
      static_cast<double>(variants) / static_cast<double>(options.child_rows);
  EXPECT_NEAR(rate, 0.10, 0.01);
}

TEST(ScaledCorpusTest, VariantsStayAboveLinkageThreshold) {
  // One substitution on a >= 36-character string under padded q = 3:
  // the child must still link to its parent at Jaccard 0.85.
  const ScaledCorpus corpus(SmallOptions());
  const text::QGramOptions q3;
  for (size_t row = 0; row < 1000; ++row) {
    if (!corpus.ChildIsVariant(row)) continue;
    const std::string parent =
        corpus.ParentLocation(corpus.ChildParent(row));
    ASSERT_GE(parent.size(), corpus.options().min_name_length);
    const double sim = text::Jaccard(text::GramSet::Of(parent, q3),
                                     text::GramSet::Of(corpus.ChildLocation(row), q3));
    EXPECT_GE(sim, 0.85) << "row " << row;
    EXPECT_LT(sim, 1.0) << "row " << row;
  }
}

TEST(ScaledCorpusTest, TuplesFollowSchemas) {
  const ScaledCorpus corpus(SmallOptions());
  EXPECT_EQ(corpus.parent_schema().num_fields(), 2u);
  EXPECT_EQ(corpus.child_schema().num_fields(), 2u);
  const storage::Tuple parent = corpus.ParentTuple(7);
  ASSERT_TRUE(parent.ValidateAgainst(corpus.parent_schema()).ok());
  EXPECT_EQ(parent[0].AsString(), corpus.ParentLocation(7));
  EXPECT_EQ(parent[1].AsInt64(), 7);
  const storage::Tuple child = corpus.ChildTuple(11);
  ASSERT_TRUE(child.ValidateAgainst(corpus.child_schema()).ok());
  EXPECT_EQ(child[0].AsString(), corpus.ChildLocation(11));
  EXPECT_EQ(child[1].AsInt64(), 11);
}

}  // namespace
}  // namespace datagen
}  // namespace aqp
