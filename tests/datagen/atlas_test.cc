#include "datagen/atlas.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace aqp {
namespace datagen {
namespace {

TEST(AtlasTest, GeneratesRequestedSizeWithUniqueLocations) {
  AtlasOptions options;
  options.size = 2000;
  auto atlas = GenerateAtlas(options);
  ASSERT_TRUE(atlas.ok());
  EXPECT_EQ(atlas->size(), 2000u);
  std::unordered_set<std::string> seen;
  for (size_t i = 0; i < atlas->size(); ++i) {
    EXPECT_TRUE(
        seen.insert(atlas->row(i).at(kAtlasLocationColumn).AsString()).second);
  }
}

TEST(AtlasTest, SchemaShape) {
  AtlasOptions options;
  options.size = 10;
  auto atlas = GenerateAtlas(options);
  ASSERT_TRUE(atlas.ok());
  const storage::Schema& schema = atlas->schema();
  ASSERT_EQ(schema.num_fields(), 4u);
  EXPECT_EQ(schema.field(0).name, "location");
  EXPECT_EQ(schema.field(0).type, storage::ValueType::kString);
  EXPECT_EQ(schema.field(1).name, "municipality_id");
  EXPECT_EQ(schema.field(2).name, "lat");
  EXPECT_EQ(schema.field(3).name, "lon");
}

TEST(AtlasTest, IdsAreSequential) {
  AtlasOptions options;
  options.size = 50;
  auto atlas = GenerateAtlas(options);
  ASSERT_TRUE(atlas.ok());
  for (size_t i = 0; i < atlas->size(); ++i) {
    EXPECT_EQ(atlas->row(i).at(1).AsInt64(), static_cast<int64_t>(i));
  }
}

TEST(AtlasTest, CoordinatesWithinItalyBox) {
  AtlasOptions options;
  options.size = 100;
  auto atlas = GenerateAtlas(options);
  ASSERT_TRUE(atlas.ok());
  for (size_t i = 0; i < atlas->size(); ++i) {
    const double lat = atlas->row(i).at(2).AsDouble();
    const double lon = atlas->row(i).at(3).AsDouble();
    EXPECT_GE(lat, 36.0);
    EXPECT_LE(lat, 47.0);
    EXPECT_GE(lon, 6.6);
    EXPECT_LE(lon, 18.6);
  }
}

TEST(AtlasTest, DeterministicUnderSeed) {
  AtlasOptions options;
  options.size = 100;
  auto a = GenerateAtlas(options);
  auto b = GenerateAtlas(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->row(i), b->row(i));
  }
}

TEST(AtlasTest, DifferentSeedsDiffer) {
  AtlasOptions a_opt;
  a_opt.size = 50;
  a_opt.seed = 1;
  AtlasOptions b_opt = a_opt;
  b_opt.seed = 2;
  auto a = GenerateAtlas(a_opt);
  auto b = GenerateAtlas(b_opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  int differing = 0;
  for (size_t i = 0; i < a->size(); ++i) {
    if (a->row(i).at(0).AsString() != b->row(i).at(0).AsString()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 45);
}

TEST(AtlasTest, RejectsZeroSize) {
  AtlasOptions options;
  options.size = 0;
  EXPECT_TRUE(GenerateAtlas(options).status().IsInvalidArgument());
}

TEST(AtlasTest, PaperScaleGenerationSucceeds) {
  AtlasOptions options;  // 8082 by default
  auto atlas = GenerateAtlas(options);
  ASSERT_TRUE(atlas.ok());
  EXPECT_EQ(atlas->size(), 8082u);
}

}  // namespace
}  // namespace datagen
}  // namespace aqp
