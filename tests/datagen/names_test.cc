#include "datagen/names.h"

#include <gtest/gtest.h>

#include <set>

#include "common/string_util.h"

namespace aqp {
namespace datagen {
namespace {

TEST(NamesTest, RespectsMinimumLength) {
  Rng rng(1);
  LocationNameGenerator gen(36);
  for (int i = 0; i < 500; ++i) {
    const std::string name = gen.Generate(&rng);
    EXPECT_GE(name.size(), 36u) << name;
  }
}

TEST(NamesTest, StructureIsRegionProvinceName) {
  Rng rng(2);
  LocationNameGenerator gen(36);
  for (int i = 0; i < 100; ++i) {
    const std::string name = gen.Generate(&rng);
    const auto words = Split(name, ' ');
    ASSERT_GE(words.size(), 3u) << name;
    EXPECT_EQ(words[0].size(), 3u) << name;  // region code
    EXPECT_EQ(words[1].size(), 2u) << name;  // province code
  }
}

TEST(NamesTest, UppercaseAsciiAndSpacesOnly) {
  Rng rng(3);
  LocationNameGenerator gen(36);
  for (int i = 0; i < 200; ++i) {
    for (char c : gen.Generate(&rng)) {
      EXPECT_TRUE((c >= 'A' && c <= 'Z') || c == ' ') << static_cast<int>(c);
    }
  }
}

TEST(NamesTest, DeterministicUnderSeed) {
  Rng a(7);
  Rng b(7);
  LocationNameGenerator gen(36);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(gen.Generate(&a), gen.Generate(&b));
  }
}

TEST(NamesTest, HighDiversity) {
  Rng rng(11);
  LocationNameGenerator gen(36);
  std::set<std::string> names;
  for (int i = 0; i < 2000; ++i) names.insert(gen.Generate(&rng));
  // Collisions must be rare — the atlas needs 8082 unique values.
  EXPECT_GT(names.size(), 1950u);
}

TEST(NamesTest, NoDoubleSpaces) {
  Rng rng(13);
  LocationNameGenerator gen(36);
  for (int i = 0; i < 200; ++i) {
    const std::string name = gen.Generate(&rng);
    EXPECT_EQ(name.find("  "), std::string::npos) << name;
    EXPECT_FALSE(name.front() == ' ');
    EXPECT_FALSE(name.back() == ' ');
  }
}

}  // namespace
}  // namespace datagen
}  // namespace aqp
