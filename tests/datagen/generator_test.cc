#include "datagen/generator.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "text/similarity.h"

namespace aqp {
namespace datagen {
namespace {

TestCaseOptions SmallOptions() {
  TestCaseOptions options;
  options.atlas.size = 300;
  options.accidents.size = 600;
  options.variant_rate = 0.10;
  options.seed = 99;
  return options;
}

TEST(GeneratorTest, ChildVariantRateIsExact) {
  for (PerturbationPattern pattern : kAllPatterns) {
    TestCaseOptions options = SmallOptions();
    options.pattern = pattern;
    auto tc = GenerateTestCase(options);
    ASSERT_TRUE(tc.ok()) << tc.status().ToString();
    EXPECT_EQ(tc->ChildVariantCount(), 60u) << options.Label();
    EXPECT_EQ(tc->ParentVariantCount(), 0u);
  }
}

TEST(GeneratorTest, BothTablesPerturbedWhenRequested) {
  TestCaseOptions options = SmallOptions();
  options.perturb_parent = true;
  auto tc = GenerateTestCase(options);
  ASSERT_TRUE(tc.ok());
  EXPECT_EQ(tc->ChildVariantCount(), 60u);
  EXPECT_EQ(tc->ParentVariantCount(), 30u);
}

TEST(GeneratorTest, VariantsNeverMatchAnyParentExactly) {
  TestCaseOptions options = SmallOptions();
  options.perturb_parent = true;
  auto tc = GenerateTestCase(options);
  ASSERT_TRUE(tc.ok());
  std::unordered_set<std::string> parent_locations;
  for (size_t r = 0; r < tc->parent.size(); ++r) {
    parent_locations.insert(
        tc->parent.row(r).at(kAtlasLocationColumn).AsString());
  }
  for (size_t i = 0; i < tc->child.size(); ++i) {
    if (!tc->child_is_variant[i]) continue;
    const std::string& loc =
        tc->child.row(i).at(kAccidentsLocationColumn).AsString();
    EXPECT_EQ(parent_locations.count(loc), 0u) << loc;
  }
}

TEST(GeneratorTest, VariantsHaveEditDistanceOneFromTruth) {
  TestCaseOptions options = SmallOptions();
  auto tc = GenerateTestCase(options);
  ASSERT_TRUE(tc.ok());
  for (size_t i = 0; i < tc->child.size(); ++i) {
    const std::string& loc =
        tc->child.row(i).at(kAccidentsLocationColumn).AsString();
    // Truth string: the (unperturbed, child-only case) parent value.
    const std::string& truth = tc->parent.row(tc->child_true_parent[i])
                                   .at(kAtlasLocationColumn)
                                   .AsString();
    if (tc->child_is_variant[i]) {
      EXPECT_EQ(text::Levenshtein(loc, truth), 1u);
    } else {
      EXPECT_EQ(loc, truth);
    }
  }
}

TEST(GeneratorTest, VariantsPassPaperSimilarityThreshold) {
  // θ_sim = 0.85 must accept every injected variant (the paper tunes
  // θ_sim so the all-approximate run reaches the expected size).
  TestCaseOptions options = SmallOptions();
  auto tc = GenerateTestCase(options);
  ASSERT_TRUE(tc.ok());
  text::QGramOptions q3;
  for (size_t i = 0; i < tc->child.size(); ++i) {
    if (!tc->child_is_variant[i]) continue;
    const std::string& loc =
        tc->child.row(i).at(kAccidentsLocationColumn).AsString();
    const std::string& truth = tc->parent.row(tc->child_true_parent[i])
                                   .at(kAtlasLocationColumn)
                                   .AsString();
    const double sim = text::Jaccard(text::GramSet::Of(loc, q3),
                                     text::GramSet::Of(truth, q3));
    EXPECT_GE(sim, 0.85) << loc << " vs " << truth;
  }
}

TEST(GeneratorTest, CleanPairCountConsistent) {
  TestCaseOptions options = SmallOptions();
  options.perturb_parent = true;
  auto tc = GenerateTestCase(options);
  ASSERT_TRUE(tc.ok());
  size_t clean = 0;
  for (size_t i = 0; i < tc->child.size(); ++i) {
    if (!tc->child_is_variant[i] &&
        !tc->parent_is_variant[tc->child_true_parent[i]]) {
      ++clean;
    }
  }
  EXPECT_EQ(tc->CleanPairCount(), clean);
  EXPECT_LT(tc->CleanPairCount(), tc->child.size());
}

TEST(GeneratorTest, VariantPositionsFollowPattern) {
  TestCaseOptions options = SmallOptions();
  options.pattern = PerturbationPattern::kFewHighIntensityRegions;
  auto tc = GenerateTestCase(options);
  ASSERT_TRUE(tc.ok());
  for (size_t i = 0; i < tc->child.size(); ++i) {
    if (tc->child_is_variant[i]) {
      EXPECT_GT(tc->child_pattern.IntensityAt(i), 0.0)
          << "variant outside any perturbation region at row " << i;
    }
  }
}

TEST(GeneratorTest, DeterministicUnderSeed) {
  TestCaseOptions options = SmallOptions();
  auto a = GenerateTestCase(options);
  auto b = GenerateTestCase(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->child_is_variant, b->child_is_variant);
  for (size_t i = 0; i < a->child.size(); ++i) {
    EXPECT_EQ(a->child.row(i), b->child.row(i));
  }
}

TEST(GeneratorTest, PaperTestMatrixHasEightCases) {
  const auto cases = PaperTestMatrix(SmallOptions());
  ASSERT_EQ(cases.size(), 8u);
  std::unordered_set<std::string> labels;
  for (const TestCaseOptions& c : cases) labels.insert(c.Label());
  EXPECT_EQ(labels.size(), 8u);
  EXPECT_EQ(labels.count("uniform/child"), 1u);
  EXPECT_EQ(labels.count("many_high/both"), 1u);
}

TEST(GeneratorTest, LabelFormat) {
  TestCaseOptions options = SmallOptions();
  options.pattern = PerturbationPattern::kLowIntensityRegions;
  options.perturb_parent = true;
  EXPECT_EQ(options.Label(), "low_intensity/both");
}

}  // namespace
}  // namespace datagen
}  // namespace aqp
