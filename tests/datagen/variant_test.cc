#include "datagen/variant.h"

#include <gtest/gtest.h>

#include "text/similarity.h"

namespace aqp {
namespace datagen {
namespace {

TEST(VariantTest, SubstitutionHasEditDistanceOne) {
  Rng rng(1);
  VariantOptions options;  // default: substitution only
  const std::string original = "TAA BZ SANTA CRISTINA VALGARDENA";
  for (int i = 0; i < 200; ++i) {
    const std::string variant = MakeVariant(original, options, &rng);
    EXPECT_NE(variant, original);
    EXPECT_EQ(text::Levenshtein(original, variant), 1u);
    EXPECT_EQ(variant.size(), original.size());
  }
}

TEST(VariantTest, DeleteShrinksByOne) {
  Rng rng(2);
  VariantOptions options;
  options.kinds = {EditKind::kDelete};
  const std::string original = "SANTA CRISTINA";
  for (int i = 0; i < 50; ++i) {
    const std::string variant = MakeVariant(original, options, &rng);
    EXPECT_EQ(variant.size(), original.size() - 1);
    EXPECT_EQ(text::Levenshtein(original, variant), 1u);
  }
}

TEST(VariantTest, InsertGrowsByOne) {
  Rng rng(3);
  VariantOptions options;
  options.kinds = {EditKind::kInsert};
  const std::string original = "SANTA";
  for (int i = 0; i < 50; ++i) {
    const std::string variant = MakeVariant(original, options, &rng);
    EXPECT_EQ(variant.size(), original.size() + 1);
    EXPECT_EQ(text::Levenshtein(original, variant), 1u);
  }
}

TEST(VariantTest, TransposeSwapsAdjacent) {
  Rng rng(4);
  VariantOptions options;
  options.kinds = {EditKind::kTranspose};
  const std::string original = "SANTA CRISTINA";
  for (int i = 0; i < 50; ++i) {
    const std::string variant = MakeVariant(original, options, &rng);
    EXPECT_NE(variant, original);
    EXPECT_EQ(variant.size(), original.size());
    EXPECT_LE(text::Levenshtein(original, variant), 2u);
  }
}

TEST(VariantTest, SubstitutionsAvoidSpaces) {
  Rng rng(5);
  VariantOptions options;
  const std::string original = "AB CD EF GH IJ KL";
  for (int i = 0; i < 100; ++i) {
    const std::string variant = MakeVariant(original, options, &rng);
    // Word count unchanged: spaces were not touched.
    EXPECT_EQ(std::count(variant.begin(), variant.end(), ' '),
              std::count(original.begin(), original.end(), ' '));
  }
}

TEST(VariantTest, EmptyStringStillProducesVariant) {
  Rng rng(6);
  VariantOptions options;
  const std::string variant = MakeVariant("", options, &rng);
  EXPECT_FALSE(variant.empty());
}

TEST(VariantTest, NonCollidingAvoidsForbiddenSet) {
  Rng rng(7);
  VariantOptions options;
  const std::string original = "ABCD";
  // Forbid a large chunk of the neighbourhood; the generator must find
  // one of the remaining variants.
  std::unordered_set<std::string> forbidden;
  for (char c = 'a'; c <= 'w'; ++c) {
    for (size_t pos = 0; pos < original.size(); ++pos) {
      std::string v = original;
      v[pos] = c;
      forbidden.insert(v);
    }
  }
  for (int i = 0; i < 50; ++i) {
    auto variant = MakeNonCollidingVariant(original, forbidden, options, &rng);
    ASSERT_TRUE(variant.ok());
    EXPECT_EQ(forbidden.count(*variant), 0u);
    EXPECT_NE(*variant, original);
  }
}

TEST(VariantTest, NonCollidingFailsWhenNeighbourhoodExhausted) {
  Rng rng(8);
  VariantOptions options;
  options.alphabet = "ab";  // tiny neighbourhood
  options.max_attempts = 16;
  const std::string original = "X";
  std::unordered_set<std::string> forbidden = {"a", "b"};
  auto variant = MakeNonCollidingVariant(original, forbidden, options, &rng);
  EXPECT_FALSE(variant.ok());
}

TEST(VariantTest, LowercaseEditNeverEqualsUppercaseOriginal) {
  // The paper's example corrupts CRISTINA to CRISTINx: a lower-case
  // character in an upper-case string can never collide.
  Rng rng(9);
  VariantOptions options;
  const std::string original = "UPPERCASE ONLY STRING";
  for (int i = 0; i < 100; ++i) {
    const std::string variant = MakeVariant(original, options, &rng);
    bool has_lower = false;
    for (char c : variant) has_lower |= (c >= 'a' && c <= 'z');
    EXPECT_TRUE(has_lower);
  }
}

}  // namespace
}  // namespace datagen
}  // namespace aqp
