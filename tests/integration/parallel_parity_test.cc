// The partition-parallel join must be indistinguishable from the
// single-threaded AdaptiveJoin in everything but wall time: identical
// output row *sequences* (not just multisets — the deterministic shard
// merge order reproduces the single-threaded probes' ascending-
// stored-id order) and byte-identical adaptation traces, for every
// shard count, batch size, drive mode, and control policy.

#include <gtest/gtest.h>

#include <vector>

#include "adaptive/adaptive_join.h"
#include "datagen/generator.h"
#include "exec/parallel/parallel_join.h"
#include "exec/scan.h"

namespace aqp {
namespace {

using adaptive::AdaptiveJoin;
using adaptive::AdaptiveJoinOptions;
using exec::parallel::ParallelAdaptiveJoin;
using exec::parallel::ParallelJoinOptions;
using exec::parallel::ParallelMatchRef;

constexpr size_t kShardCounts[] = {1, 2, 4, 8};

datagen::TestCase PaperCase() {
  datagen::TestCaseOptions options;
  options.pattern = datagen::PerturbationPattern::kFewHighIntensityRegions;
  options.perturb_parent = false;
  options.variant_rate = 0.10;
  options.atlas.size = 400;
  options.accidents.size = 800;
  options.seed = 20090326;
  auto tc = datagen::GenerateTestCase(options);
  EXPECT_TRUE(tc.ok());
  return std::move(*tc);
}

AdaptiveJoinOptions BaseOptions(const datagen::TestCase& tc) {
  AdaptiveJoinOptions options;
  options.join.spec.left_column = datagen::kAccidentsLocationColumn;
  options.join.spec.right_column = datagen::kAtlasLocationColumn;
  options.join.spec.sim_threshold = 0.85;
  options.adaptive.parent_side = exec::Side::kRight;
  options.adaptive.parent_table_size = tc.parent.size();
  options.adaptive.delta_adapt = 50;
  options.adaptive.window = 50;
  return options;
}

struct ReferenceRun {
  storage::Relation result;
  adaptive::AdaptationTrace trace;
  uint64_t steps = 0;
  uint64_t pairs = 0;
  uint64_t transitions = 0;
};

ReferenceRun RunSingleThreaded(const datagen::TestCase& tc,
                               AdaptiveJoinOptions options) {
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  AdaptiveJoin join(&child, &parent, options);
  auto result = exec::CollectAll(&join);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  ReferenceRun run;
  run.result = std::move(*result);
  run.trace = join.trace();
  run.steps = join.steps();
  run.pairs = join.core().pairs_emitted();
  run.transitions = join.cost().total_transitions();
  return run;
}

void ExpectSameTrace(const adaptive::AdaptationTrace& actual,
                     const adaptive::AdaptationTrace& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual.records()[i], expected.records()[i])
        << "assessment " << i;
  }
}

void ExpectSameRows(const storage::Relation& actual,
                    const storage::Relation& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual.row(i), expected.row(i)) << "row " << i;
  }
}

TEST(ParallelParityTest, EveryShardCountMatchesSingleThreadedAdaptive) {
  const datagen::TestCase tc = PaperCase();
  const ReferenceRun reference = RunSingleThreaded(tc, BaseOptions(tc));
  ASSERT_GT(reference.result.size(), 0u);
  ASSERT_GT(reference.trace.size(), 0u);
  // The scenario must actually adapt, or the parity claim is vacuous.
  ASSERT_GT(reference.transitions, 0u);

  for (size_t shards : kShardCounts) {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    ParallelJoinOptions options;
    options.base = BaseOptions(tc);
    options.num_shards = shards;
    ParallelAdaptiveJoin join(&child, &parent, options);
    auto result = exec::CollectAll(&join);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    SCOPED_TRACE(testing::Message() << "shards=" << shards);
    EXPECT_EQ(join.steps(), reference.steps);
    EXPECT_EQ(join.pairs_emitted(), reference.pairs);
    EXPECT_EQ(join.monitor().steps(), reference.steps);
    ExpectSameRows(*result, reference.result);
    ExpectSameTrace(join.trace(), reference.trace);
  }
}

TEST(ParallelParityTest, DriveModesAgreeAtFourShards) {
  const datagen::TestCase tc = PaperCase();
  const ReferenceRun reference = RunSingleThreaded(tc, BaseOptions(tc));

  // Row protocol via tuple-at-a-time Next().
  {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    ParallelJoinOptions options;
    options.base = BaseOptions(tc);
    options.num_shards = 4;
    ParallelAdaptiveJoin join(&child, &parent, options);
    ASSERT_TRUE(join.Open().ok());
    storage::Relation collected(join.output_schema());
    while (true) {
      auto next = join.Next();
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!next->has_value()) break;
      collected.AppendUnchecked(std::move(**next));
    }
    ASSERT_TRUE(join.Close().ok());
    ExpectSameRows(collected, reference.result);
    ExpectSameTrace(join.trace(), reference.trace);
  }

  // Match-ref protocol, materialized at the sink.
  {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    ParallelJoinOptions options;
    options.base = BaseOptions(tc);
    options.num_shards = 4;
    ParallelAdaptiveJoin join(&child, &parent, options);
    ASSERT_TRUE(join.Open().ok());
    storage::Relation collected(join.output_schema());
    std::vector<ParallelMatchRef> refs;
    while (true) {
      ASSERT_TRUE(join.NextMatchRefs(97, &refs).ok());
      if (refs.empty()) break;
      for (const ParallelMatchRef& ref : refs) {
        collected.AppendUnchecked(join.MaterializeRow(ref));
      }
    }
    ASSERT_TRUE(join.Close().ok());
    ExpectSameRows(collected, reference.result);
    ExpectSameTrace(join.trace(), reference.trace);
  }

  // Counting drain: no row is ever materialized.
  {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    ParallelJoinOptions options;
    options.base = BaseOptions(tc);
    options.num_shards = 4;
    ParallelAdaptiveJoin join(&child, &parent, options);
    auto count = exec::CountAll(&join);
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    EXPECT_EQ(*count, reference.result.size());
    ExpectSameTrace(join.trace(), reference.trace);
  }
}

TEST(ParallelParityTest, ColumnarProtocolMatchesRowAdapterEveryShardCount) {
  // The native columnar drive (NextColumnBatch, cells written straight
  // from the shard stores' columns) must agree with the row adapter —
  // and therefore with the single-threaded reference — for every shard
  // count: byte-identical row sequences and adaptation traces.
  const datagen::TestCase tc = PaperCase();
  const ReferenceRun reference = RunSingleThreaded(tc, BaseOptions(tc));
  ASSERT_GT(reference.result.size(), 0u);
  for (size_t shards : kShardCounts) {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    ParallelJoinOptions options;
    options.base = BaseOptions(tc);
    options.num_shards = shards;
    ParallelAdaptiveJoin join(&child, &parent, options);
    ASSERT_TRUE(join.Open().ok());
    storage::Relation collected(join.output_schema());
    storage::ColumnBatch batch(&join.output_schema(), 97);
    while (true) {
      ASSERT_TRUE(join.NextColumnBatch(&batch).ok());
      if (batch.empty()) break;
      ASSERT_TRUE(batch.Validate().ok());
      collected.AppendColumnBatchUnchecked(batch);
    }
    ASSERT_TRUE(join.Close().ok());
    SCOPED_TRACE(testing::Message() << "shards=" << shards);
    ExpectSameRows(collected, reference.result);
    ExpectSameTrace(join.trace(), reference.trace);
  }
}

TEST(ParallelParityTest, ChildBatchSizesDoNotChangeResults) {
  const datagen::TestCase tc = PaperCase();
  const ReferenceRun reference = RunSingleThreaded(tc, BaseOptions(tc));
  for (size_t batch : {size_t{1}, size_t{7}, size_t{256}}) {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    ParallelJoinOptions options;
    options.base = BaseOptions(tc);
    options.base.join.batch_size = batch;
    options.num_shards = 4;
    ParallelAdaptiveJoin join(&child, &parent, options);
    exec::ExecOptions drain;
    drain.batch_size = 33;
    auto result = exec::CollectAll(&join, drain);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    SCOPED_TRACE(testing::Message() << "child batch=" << batch);
    ExpectSameRows(*result, reference.result);
    ExpectSameTrace(join.trace(), reference.trace);
  }
}

TEST(ParallelParityTest, PinnedStatesMatchSingleThreadedBaselines) {
  // Pinned lex/rex is the parallel SHJoin, pinned lap/rap the parallel
  // SSHJoin; both must reproduce the single-threaded runs row for row.
  const datagen::TestCase tc = PaperCase();
  for (adaptive::ProcessorState state :
       {adaptive::ProcessorState::kLexRex, adaptive::ProcessorState::kLapRap,
        adaptive::ProcessorState::kLapRex}) {
    AdaptiveJoinOptions base = BaseOptions(tc);
    base.adaptive.policy = adaptive::AdaptivePolicy::kPinned;
    base.adaptive.initial_state = state;
    const ReferenceRun reference = RunSingleThreaded(tc, base);
    ASSERT_GT(reference.result.size(), 0u);
    for (size_t shards : kShardCounts) {
      exec::RelationScan child(&tc.child);
      exec::RelationScan parent(&tc.parent);
      ParallelJoinOptions options;
      options.base = base;
      options.num_shards = shards;
      // Exercise the unbounded-epoch path with an odd length too.
      options.unbounded_epoch_steps = shards % 2 == 0 ? 173 : 4096;
      ParallelAdaptiveJoin join(&child, &parent, options);
      auto result = exec::CollectAll(&join);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      SCOPED_TRACE(testing::Message()
                   << "state=" << adaptive::ProcessorStateName(state)
                   << " shards=" << shards);
      ExpectSameRows(*result, reference.result);
      EXPECT_EQ(join.trace().size(), 0u);
    }
  }
}

TEST(ParallelParityTest, ScriptedTransitionsFireAtSameStepsAcrossShards) {
  const datagen::TestCase tc = PaperCase();
  AdaptiveJoinOptions base = BaseOptions(tc);
  base.adaptive.policy = adaptive::AdaptivePolicy::kScripted;
  base.adaptive.script = {
      {120, adaptive::ProcessorState::kLapRex},
      {300, adaptive::ProcessorState::kLapRap},
      {700, adaptive::ProcessorState::kLexRex},
  };
  const ReferenceRun reference = RunSingleThreaded(tc, base);
  ASSERT_EQ(reference.trace.size(), 3u);
  for (size_t shards : kShardCounts) {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    ParallelJoinOptions options;
    options.base = base;
    options.num_shards = shards;
    ParallelAdaptiveJoin join(&child, &parent, options);
    auto result = exec::CollectAll(&join);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    SCOPED_TRACE(testing::Message() << "shards=" << shards);
    ExpectSameRows(*result, reference.result);
    ExpectSameTrace(join.trace(), reference.trace);
  }
}

TEST(ParallelParityTest, BothInputsPerturbedStillAgree) {
  // Perturbing both inputs drives the ϕ1 path (lap/rap) and maximizes
  // cross-shard approximate traffic — the hardest merge case.
  datagen::TestCaseOptions tco;
  tco.pattern = datagen::PerturbationPattern::kUniform;
  tco.perturb_parent = true;
  tco.variant_rate = 0.15;
  tco.atlas.size = 300;
  tco.accidents.size = 600;
  tco.seed = 42;
  auto tc = datagen::GenerateTestCase(tco);
  ASSERT_TRUE(tc.ok());
  const ReferenceRun reference = RunSingleThreaded(*tc, BaseOptions(*tc));
  ASSERT_GT(reference.result.size(), 0u);
  for (size_t shards : kShardCounts) {
    exec::RelationScan child(&tc->child);
    exec::RelationScan parent(&tc->parent);
    ParallelJoinOptions options;
    options.base = BaseOptions(*tc);
    options.num_shards = shards;
    ParallelAdaptiveJoin join(&child, &parent, options);
    auto result = exec::CollectAll(&join);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    SCOPED_TRACE(testing::Message() << "shards=" << shards);
    ExpectSameRows(*result, reference.result);
    ExpectSameTrace(join.trace(), reference.trace);
  }
}

}  // namespace
}  // namespace aqp
