// The filter stack (length / prefix / positional, §2.2's SSJoin
// lineage) must be invisible in everything but cost: for every filter
// combination the adaptive join must produce byte-identical output
// rows in identical order AND a byte-identical MAR adaptation trace,
// across batch sizes and shard counts. The exactness arguments live in
// join/filter.h; this suite is the end-to-end proof on the paper
// scenario — which must actually adapt, or the parity claim is
// vacuous.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adaptive/adaptive_join.h"
#include "datagen/generator.h"
#include "exec/parallel/parallel_join.h"
#include "exec/scan.h"
#include "text/gram_order.h"

namespace aqp {
namespace {

using adaptive::AdaptiveJoin;
using adaptive::AdaptiveJoinOptions;
using exec::parallel::ParallelAdaptiveJoin;
using exec::parallel::ParallelJoinOptions;

datagen::TestCase PaperCase() {
  datagen::TestCaseOptions options;
  options.pattern = datagen::PerturbationPattern::kFewHighIntensityRegions;
  options.perturb_parent = false;
  options.variant_rate = 0.10;
  options.atlas.size = 400;
  options.accidents.size = 800;
  options.seed = 20090326;
  auto tc = datagen::GenerateTestCase(options);
  EXPECT_TRUE(tc.ok());
  return std::move(*tc);
}

AdaptiveJoinOptions BaseOptions(const datagen::TestCase& tc,
                                size_t batch_size = 64) {
  AdaptiveJoinOptions options;
  options.join.spec.left_column = datagen::kAccidentsLocationColumn;
  options.join.spec.right_column = datagen::kAtlasLocationColumn;
  options.join.spec.sim_threshold = 0.85;
  options.join.batch_size = batch_size;
  options.adaptive.parent_side = exec::Side::kRight;
  options.adaptive.parent_table_size = tc.parent.size();
  options.adaptive.delta_adapt = 50;
  options.adaptive.window = 50;
  return options;
}

std::vector<join::ApproxFilterOptions> AllFilterCombinations() {
  std::vector<join::ApproxFilterOptions> combos;
  for (int mask = 0; mask < 8; ++mask) {
    join::ApproxFilterOptions f;
    f.length = (mask & 1) != 0;
    f.prefix = (mask & 2) != 0;
    f.positional = (mask & 4) != 0;
    combos.push_back(f);
  }
  return combos;
}

struct ReferenceRun {
  storage::Relation result;
  adaptive::AdaptationTrace trace;
  uint64_t steps = 0;
  uint64_t pairs = 0;
  uint64_t transitions = 0;
};

ReferenceRun RunAdaptive(const datagen::TestCase& tc,
                         AdaptiveJoinOptions options) {
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  AdaptiveJoin join(&child, &parent, options);
  auto result = exec::CollectAll(&join);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  ReferenceRun run;
  run.result = std::move(*result);
  run.trace = join.trace();
  run.steps = join.steps();
  run.pairs = join.core().pairs_emitted();
  run.transitions = join.cost().total_transitions();
  return run;
}

void ExpectSameRows(const storage::Relation& actual,
                    const storage::Relation& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual.row(i), expected.row(i)) << "row " << i;
  }
}

void ExpectSameTrace(const adaptive::AdaptationTrace& actual,
                     const adaptive::AdaptationTrace& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual.records()[i], expected.records()[i])
        << "assessment " << i;
  }
}

TEST(FilterParityTest, EveryFilterCombinationMatchesUnfilteredBaseline) {
  const datagen::TestCase tc = PaperCase();
  const ReferenceRun reference = RunAdaptive(tc, BaseOptions(tc));
  ASSERT_GT(reference.result.size(), 0u);
  ASSERT_GT(reference.trace.size(), 0u);
  ASSERT_GT(reference.transitions, 0u);

  for (const join::ApproxFilterOptions& filter : AllFilterCombinations()) {
    SCOPED_TRACE(testing::Message() << "filter=" << filter.Label());
    AdaptiveJoinOptions options = BaseOptions(tc);
    options.join.spec.filter = filter;
    const ReferenceRun filtered = RunAdaptive(tc, options);
    EXPECT_EQ(filtered.steps, reference.steps);
    EXPECT_EQ(filtered.pairs, reference.pairs);
    EXPECT_EQ(filtered.transitions, reference.transitions);
    ExpectSameRows(filtered.result, reference.result);
    ExpectSameTrace(filtered.trace, reference.trace);
  }
}

TEST(FilterParityTest, FullStackMatchesAcrossBatchSizes) {
  const datagen::TestCase tc = PaperCase();
  const ReferenceRun reference = RunAdaptive(tc, BaseOptions(tc, 1));
  ASSERT_GT(reference.transitions, 0u);
  join::ApproxFilterOptions full;
  full.length = full.prefix = full.positional = true;
  // 7 staggers against δ_adapt = 50; 256 spans several control windows.
  for (size_t batch_size : {size_t{1}, size_t{7}, size_t{256}}) {
    SCOPED_TRACE(testing::Message() << "batch_size=" << batch_size);
    AdaptiveJoinOptions options = BaseOptions(tc, batch_size);
    options.join.spec.filter = full;
    const ReferenceRun filtered = RunAdaptive(tc, options);
    EXPECT_EQ(filtered.steps, reference.steps);
    ExpectSameRows(filtered.result, reference.result);
    ExpectSameTrace(filtered.trace, reference.trace);
  }
}

TEST(FilterParityTest, FullStackMatchesAcrossShardCounts) {
  const datagen::TestCase tc = PaperCase();
  const ReferenceRun reference = RunAdaptive(tc, BaseOptions(tc));
  ASSERT_GT(reference.transitions, 0u);
  join::ApproxFilterOptions full;
  full.length = full.prefix = full.positional = true;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE(testing::Message() << "shards=" << shards);
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    ParallelJoinOptions options;
    options.base = BaseOptions(tc);
    options.base.join.spec.filter = full;
    options.num_shards = shards;
    ParallelAdaptiveJoin join(&child, &parent, options);
    auto result = exec::CollectAll(&join);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(join.steps(), reference.steps);
    EXPECT_EQ(join.pairs_emitted(), reference.pairs);
    ExpectSameRows(*result, reference.result);
    ExpectSameTrace(join.trace(), reference.trace);
  }
}

TEST(FilterParityTest, SampledGramOrderPreservesParity) {
  // A corpus-sampled frequency order changes which grams form each
  // prefix — cost, not results: parity must hold exactly as with the
  // default key order.
  const datagen::TestCase tc = PaperCase();
  const ReferenceRun reference = RunAdaptive(tc, BaseOptions(tc));
  ASSERT_GT(reference.transitions, 0u);

  AdaptiveJoinOptions options = BaseOptions(tc);
  auto order = std::make_shared<text::GramOrder>();
  for (size_t i = 0; i < tc.parent.size(); ++i) {
    order->AddSample(
        tc.parent.row(i)[datagen::kAtlasLocationColumn].AsString(),
        options.join.spec.qgram);
  }
  for (size_t i = 0; i < tc.child.size(); ++i) {
    order->AddSample(
        tc.child.row(i)[datagen::kAccidentsLocationColumn].AsString(),
        options.join.spec.qgram);
  }
  ASSERT_GT(order->distinct(), 0u);
  options.join.spec.filter.length = true;
  options.join.spec.filter.prefix = true;
  options.join.spec.filter.positional = true;
  options.join.spec.filter.gram_order = order;
  const ReferenceRun filtered = RunAdaptive(tc, options);
  EXPECT_EQ(filtered.steps, reference.steps);
  EXPECT_EQ(filtered.pairs, reference.pairs);
  ExpectSameRows(filtered.result, reference.result);
  ExpectSameTrace(filtered.trace, reference.trace);
}

}  // namespace
}  // namespace aqp
