// Batched and tuple-at-a-time execution must be indistinguishable in
// everything but speed: identical join output (same rows, same order)
// and an identical MAR adaptation trace on the paper scenario, for any
// batch size. The engine guarantees this by rounding step-batch edges
// to the control loop's δ_adapt boundaries.

#include <gtest/gtest.h>

#include "adaptive/adaptive_join.h"
#include "datagen/generator.h"
#include "exec/scan.h"
#include "join/match_batch.h"
#include "metrics/experiment.h"

namespace aqp {
namespace {

using adaptive::AdaptiveJoin;
using adaptive::AdaptiveJoinOptions;

struct ParityRun {
  storage::Relation result;
  adaptive::AdaptationTrace trace;
  uint64_t steps = 0;
  uint64_t total_transitions = 0;
  uint64_t monitor_steps = 0;
  uint64_t pairs_emitted = 0;
};

datagen::TestCase PaperCase() {
  datagen::TestCaseOptions options;
  options.pattern = datagen::PerturbationPattern::kFewHighIntensityRegions;
  options.perturb_parent = false;
  options.variant_rate = 0.10;
  options.atlas.size = 400;
  options.accidents.size = 800;
  options.seed = 20090326;
  auto tc = datagen::GenerateTestCase(options);
  EXPECT_TRUE(tc.ok());
  return std::move(*tc);
}

ParityRun RunParity(const datagen::TestCase& tc, size_t join_batch_size,
              size_t drain_batch_size) {
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  AdaptiveJoinOptions options;
  options.join.spec.left_column = datagen::kAccidentsLocationColumn;
  options.join.spec.right_column = datagen::kAtlasLocationColumn;
  options.join.spec.sim_threshold = 0.85;
  options.join.batch_size = join_batch_size;
  options.adaptive.parent_side = exec::Side::kRight;
  options.adaptive.parent_table_size = tc.parent.size();
  options.adaptive.delta_adapt = 50;
  options.adaptive.window = 50;
  AdaptiveJoin join(&child, &parent, options);
  exec::ExecOptions drain;
  drain.batch_size = drain_batch_size;
  auto result = exec::CollectAll(&join, drain);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  ParityRun run;
  run.result = std::move(*result);
  run.trace = join.trace();
  run.steps = join.steps();
  run.total_transitions = join.cost().total_transitions();
  run.monitor_steps = join.monitor().steps();
  run.pairs_emitted = join.core().pairs_emitted();
  return run;
}

void ExpectIdentical(const ParityRun& a, const ParityRun& b) {
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.monitor_steps, b.monitor_steps);
  EXPECT_EQ(a.pairs_emitted, b.pairs_emitted);
  EXPECT_EQ(a.total_transitions, b.total_transitions);

  // Identical match sets — in fact identical sequences, byte for byte.
  ASSERT_EQ(a.result.size(), b.result.size());
  for (size_t i = 0; i < a.result.size(); ++i) {
    ASSERT_EQ(a.result.row(i), b.result.row(i)) << "row " << i;
  }

  // Identical MAR timelines: every assessment, predicate, and
  // transition at the same step with the same evidence.
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace.records()[i], b.trace.records()[i])
        << "assessment " << i;
  }
}

TEST(BatchParityTest, BatchSize1024MatchesTupleAtATime) {
  const datagen::TestCase tc = PaperCase();
  const ParityRun tuple_wise = RunParity(tc, 1, 1);
  const ParityRun batched = RunParity(tc, 1024, 1024);
  ASSERT_GT(tuple_wise.result.size(), 0u);
  ASSERT_GT(tuple_wise.trace.size(), 0u);
  // The scenario must actually adapt, or the parity claim is vacuous.
  ASSERT_GT(tuple_wise.total_transitions, 0u);
  ExpectIdentical(tuple_wise, batched);
}

TEST(BatchParityTest, OddBatchSizesAgreeToo) {
  const datagen::TestCase tc = PaperCase();
  // 7 never divides δ_adapt = 50, so batch edges must be rounded to
  // the control boundary mid-batch; 64 staggers against it differently.
  const ParityRun a = RunParity(tc, 7, 33);
  const ParityRun b = RunParity(tc, 64, 256);
  ExpectIdentical(a, b);
}

TEST(BatchParityTest, ScriptedPolicyFiresAtSameStepsUnderBatching) {
  const datagen::TestCase tc = PaperCase();
  auto run_scripted = [&](size_t batch_size) {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    AdaptiveJoinOptions options;
    options.join.spec.left_column = datagen::kAccidentsLocationColumn;
    options.join.spec.right_column = datagen::kAtlasLocationColumn;
    options.join.batch_size = batch_size;
    options.adaptive.policy = adaptive::AdaptivePolicy::kScripted;
    options.adaptive.script = {
        {120, adaptive::ProcessorState::kLapRex},
        {300, adaptive::ProcessorState::kLapRap},
        {700, adaptive::ProcessorState::kLexRex},
    };
    options.adaptive.parent_side = exec::Side::kRight;
    options.adaptive.parent_table_size = tc.parent.size();
    AdaptiveJoin join(&child, &parent, options);
    auto result = exec::CollectAll(&join);
    EXPECT_TRUE(result.ok());
    return join.trace();
  };
  const adaptive::AdaptationTrace one = run_scripted(1);
  const adaptive::AdaptationTrace big = run_scripted(512);
  ASSERT_EQ(one.size(), 3u);
  ASSERT_EQ(big.size(), one.size());
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one.records()[i], big.records()[i]) << "transition " << i;
  }
  EXPECT_EQ(one.records()[0].assessment.step, 120u);
  EXPECT_EQ(one.records()[1].assessment.step, 300u);
  EXPECT_EQ(one.records()[2].assessment.step, 700u);
}

AdaptiveJoinOptions ParityOptions(const datagen::TestCase& tc,
                                  size_t join_batch_size) {
  AdaptiveJoinOptions options;
  options.join.spec.left_column = datagen::kAccidentsLocationColumn;
  options.join.spec.right_column = datagen::kAtlasLocationColumn;
  options.join.spec.sim_threshold = 0.85;
  options.join.batch_size = join_batch_size;
  options.adaptive.parent_side = exec::Side::kRight;
  options.adaptive.parent_table_size = tc.parent.size();
  options.adaptive.delta_adapt = 50;
  options.adaptive.window = 50;
  return options;
}

TEST(BatchParityTest, LateMaterializedPathsMatchRowProtocol) {
  // The three drive modes of the late-materialized engine — row
  // batches (NextBatch adapter), native match batches materialized at
  // the sink, and the unmaterialized counting drain — must be
  // indistinguishable: byte-identical rows where rows exist, identical
  // row counts, and identical adaptation traces.
  const datagen::TestCase tc = PaperCase();
  const ParityRun rows = RunParity(tc, 64, 256);
  ASSERT_GT(rows.result.size(), 0u);
  ASSERT_GT(rows.total_transitions, 0u);

  // Native protocol: pull MatchRef batches, concatenate at the sink.
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  AdaptiveJoin match_join(&child, &parent, ParityOptions(tc, 64));
  ASSERT_TRUE(match_join.Open().ok());
  storage::Relation collected(match_join.output_schema());
  join::MatchBatch refs(256);
  while (true) {
    ASSERT_TRUE(match_join.NextMatchBatch(&refs).ok());
    if (refs.empty()) break;
    storage::TupleBatch batch(&match_join.output_schema(), refs.size());
    match_join.MaterializeInto(refs, &batch);
    collected.AppendBatchUnchecked(&batch);
  }
  ASSERT_TRUE(match_join.Close().ok());
  ASSERT_EQ(collected.size(), rows.result.size());
  for (size_t i = 0; i < collected.size(); ++i) {
    ASSERT_EQ(collected.row(i), rows.result.row(i)) << "row " << i;
  }
  ASSERT_EQ(match_join.trace().size(), rows.trace.size());
  for (size_t i = 0; i < rows.trace.size(); ++i) {
    EXPECT_EQ(match_join.trace().records()[i], rows.trace.records()[i])
        << "assessment " << i;
  }

  // Counting drain: CountAll takes the UnmaterializedCounter fast
  // path — no row is ever built, everything else is identical.
  exec::RelationScan child2(&tc.child);
  exec::RelationScan parent2(&tc.parent);
  AdaptiveJoin count_join(&child2, &parent2, ParityOptions(tc, 64));
  exec::ExecOptions drain;
  drain.batch_size = 256;
  auto count = exec::CountAll(&count_join, drain);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, rows.result.size());
  ASSERT_EQ(count_join.trace().size(), rows.trace.size());
  for (size_t i = 0; i < rows.trace.size(); ++i) {
    EXPECT_EQ(count_join.trace().records()[i], rows.trace.records()[i])
        << "assessment " << i;
  }
}

TEST(BatchParityTest, ColumnarProtocolMatchesRowAdapterAcrossBatchSizes) {
  // The native columnar protocol (NextColumnBatch, output columns
  // written straight from the stores) and the row-protocol adapter
  // (NextBatch) must be indistinguishable: byte-identical rows in
  // identical order and identical adaptation traces, for every batch
  // size — including sizes that stagger against δ_adapt.
  const datagen::TestCase tc = PaperCase();
  bool adapted = false;
  for (size_t batch_size : {size_t{1}, size_t{7}, size_t{64}, size_t{256}}) {
    SCOPED_TRACE(testing::Message() << "batch_size=" << batch_size);

    // Row-protocol adapter drive.
    exec::RelationScan row_child(&tc.child);
    exec::RelationScan row_parent(&tc.parent);
    AdaptiveJoin row_join(&row_child, &row_parent,
                          ParityOptions(tc, batch_size));
    ASSERT_TRUE(row_join.Open().ok());
    storage::Relation row_rows(row_join.output_schema());
    storage::TupleBatch row_batch(&row_join.output_schema(), batch_size);
    while (true) {
      ASSERT_TRUE(row_join.NextBatch(&row_batch).ok());
      if (row_batch.empty()) break;
      row_rows.AppendBatchUnchecked(&row_batch);
    }
    ASSERT_TRUE(row_join.Close().ok());

    // Native columnar drive.
    exec::RelationScan col_child(&tc.child);
    exec::RelationScan col_parent(&tc.parent);
    AdaptiveJoin col_join(&col_child, &col_parent,
                          ParityOptions(tc, batch_size));
    ASSERT_TRUE(col_join.Open().ok());
    storage::Relation col_rows(col_join.output_schema());
    storage::ColumnBatch col_batch(&col_join.output_schema(), batch_size);
    while (true) {
      ASSERT_TRUE(col_join.NextColumnBatch(&col_batch).ok());
      if (col_batch.empty()) break;
      ASSERT_TRUE(col_batch.Validate().ok());
      col_rows.AppendColumnBatchUnchecked(col_batch);
    }
    ASSERT_TRUE(col_join.Close().ok());

    ASSERT_GT(row_rows.size(), 0u);
    ASSERT_EQ(col_rows.size(), row_rows.size());
    for (size_t i = 0; i < row_rows.size(); ++i) {
      ASSERT_EQ(col_rows.row(i), row_rows.row(i)) << "row " << i;
    }
    ASSERT_EQ(col_join.trace().size(), row_join.trace().size());
    for (size_t i = 0; i < row_join.trace().size(); ++i) {
      EXPECT_EQ(col_join.trace().records()[i], row_join.trace().records()[i])
          << "assessment " << i;
    }
    adapted = adapted || row_join.cost().total_transitions() > 0;
  }
  // The scenario must actually adapt, or the parity claim is vacuous.
  EXPECT_TRUE(adapted);
}

TEST(BatchParityTest, FullExperimentHarnessUnchangedByBatchedDrains) {
  // The §4 harness (which drives everything through CountAll) must
  // report the same step counts whether its joins batch or not; this
  // guards the paper-replication figures against batching regressions.
  metrics::ExperimentOptions options;
  options.testcase.pattern = datagen::PerturbationPattern::kUniform;
  options.testcase.atlas.size = 300;
  options.testcase.accidents.size = 600;
  options.testcase.seed = 20090326;
  options.adaptive.delta_adapt = 50;
  options.adaptive.window = 50;
  auto result = metrics::RunExperiment(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->adaptive.total_steps, 900u);
}

}  // namespace
}  // namespace aqp
