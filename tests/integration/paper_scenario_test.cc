// Scaled-down replication of the paper's §4 experiment, asserting the
// qualitative results the evaluation reports.

#include <gtest/gtest.h>

#include "metrics/experiment.h"
#include "metrics/report.h"

namespace aqp {
namespace {

using datagen::PerturbationPattern;
using metrics::ExperimentOptions;
using metrics::ExperimentResult;

ExperimentOptions Scaled(PerturbationPattern pattern, bool both) {
  ExperimentOptions options;
  options.testcase.pattern = pattern;
  options.testcase.perturb_parent = both;
  options.testcase.variant_rate = 0.10;  // the paper's fixed 10%
  options.testcase.atlas.size = 500;     // scaled-down 8082
  options.testcase.accidents.size = 1000;
  options.testcase.seed = 20090326;
  options.sim_threshold = 0.85;
  options.adaptive.delta_adapt = 50;
  options.adaptive.window = 50;
  options.adaptive.theta_out = 0.05;
  options.adaptive.theta_curpert = 2;
  options.adaptive.theta_pastpert = 5;
  return options;
}

class PaperScenarioTest
    : public ::testing::TestWithParam<std::tuple<PerturbationPattern, bool>> {
};

TEST_P(PaperScenarioTest, QualitativeResultsHold) {
  const auto [pattern, both] = GetParam();
  auto result = metrics::RunExperiment(Scaled(pattern, both));
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // §4.4: appreciable gain at a cost below all-approximate.
  EXPECT_GT(result->weighted.RelativeGain(), 0.25) << result->label;
  EXPECT_LT(result->weighted.c_abs, result->weighted.C) << result->label;
  // Efficiency above 1: each unit of relative cost buys more than a
  // unit of relative gain.
  EXPECT_GT(result->weighted.Efficiency(), 1.0) << result->label;
  // The adaptive run reacted at least once.
  EXPECT_GT(result->adaptive.total_transitions, 0u) << result->label;
  // A non-trivial share of steps still runs in cheap lex/rex
  // (the paper reports ~30%).
  EXPECT_GT(result->adaptive.StepShare(adaptive::ProcessorState::kLexRex),
            0.1)
      << result->label;
}

INSTANTIATE_TEST_SUITE_P(
    AllEightTestCases, PaperScenarioTest,
    ::testing::Combine(
        ::testing::Values(PerturbationPattern::kUniform,
                          PerturbationPattern::kLowIntensityRegions,
                          PerturbationPattern::kFewHighIntensityRegions,
                          PerturbationPattern::kManyHighIntensityRegions),
        ::testing::Bool()));

TEST(PaperScenarioReportTest, FigureRenderersWorkOnRealResults) {
  std::vector<ExperimentResult> results;
  for (PerturbationPattern pattern :
       {PerturbationPattern::kUniform,
        PerturbationPattern::kFewHighIntensityRegions}) {
    auto r = metrics::RunExperiment(Scaled(pattern, false));
    ASSERT_TRUE(r.ok());
    results.push_back(std::move(*r));
  }
  std::ostringstream os;
  metrics::PrintFig6GainCost(results, os);
  metrics::PrintFig7TimeBreakdown(results, os);
  metrics::PrintFig8CostBreakdown(results, adaptive::StateWeights::Paper(),
                                  os);
  metrics::WriteResultsCsv(results, os);
  EXPECT_GT(os.str().size(), 500u);
}

}  // namespace
}  // namespace aqp
