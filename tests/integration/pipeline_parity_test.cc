// Pipelined ingest moves *when* routing work happens — overlapped with
// the previous epoch's phases instead of serialized before its own —
// and must change nothing else. These tests pin the contract: with
// ParallelJoinOptions::pipeline_ingest on, the output row sequence and
// the adaptation trace are byte-identical to both the serial-ingest
// parallel engine and the single-threaded AdaptiveJoin, for every
// shard count, child batch size, control policy, and drive mode — and
// the deadline governor, cancellation, and recoverable ingest faults
// observe the exact same control points and leave the exact same
// partial results.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adaptive/adaptive_join.h"
#include "common/failpoint.h"
#include "datagen/generator.h"
#include "exec/parallel/parallel_join.h"
#include "exec/prefetch.h"
#include "exec/scan.h"

namespace aqp {
namespace {

using adaptive::AdaptiveJoin;
using adaptive::AdaptiveJoinOptions;
using exec::parallel::EpochDirective;
using exec::parallel::EpochView;
using exec::parallel::FaultPolicy;
using exec::parallel::ParallelAdaptiveJoin;
using exec::parallel::ParallelJoinOptions;
using exec::parallel::ParallelMatchRef;

constexpr size_t kShardCounts[] = {1, 2, 4, 8};
constexpr size_t kBatchSizes[] = {1, 7, 64, 256};

datagen::TestCase PaperCase() {
  datagen::TestCaseOptions options;
  options.pattern = datagen::PerturbationPattern::kFewHighIntensityRegions;
  options.perturb_parent = false;
  options.variant_rate = 0.10;
  options.atlas.size = 400;
  options.accidents.size = 800;
  options.seed = 20090326;
  auto tc = datagen::GenerateTestCase(options);
  EXPECT_TRUE(tc.ok());
  return std::move(*tc);
}

AdaptiveJoinOptions BaseOptions(const datagen::TestCase& tc) {
  AdaptiveJoinOptions options;
  options.join.spec.left_column = datagen::kAccidentsLocationColumn;
  options.join.spec.right_column = datagen::kAtlasLocationColumn;
  options.join.spec.sim_threshold = 0.85;
  options.adaptive.parent_side = exec::Side::kRight;
  options.adaptive.parent_table_size = tc.parent.size();
  options.adaptive.delta_adapt = 50;
  options.adaptive.window = 50;
  return options;
}

struct ReferenceRun {
  storage::Relation result;
  adaptive::AdaptationTrace trace;
  uint64_t steps = 0;
};

ReferenceRun RunSingleThreaded(const datagen::TestCase& tc,
                               AdaptiveJoinOptions options) {
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  AdaptiveJoin join(&child, &parent, options);
  auto result = exec::CollectAll(&join);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  ReferenceRun run;
  run.result = std::move(*result);
  run.trace = join.trace();
  run.steps = join.steps();
  return run;
}

void ExpectSameTrace(const adaptive::AdaptationTrace& actual,
                     const adaptive::AdaptationTrace& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual.records()[i], expected.records()[i])
        << "assessment " << i;
  }
}

void ExpectSameRows(const storage::Relation& actual,
                    const storage::Relation& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual.row(i), expected.row(i)) << "row " << i;
  }
}

/// `actual` is a strict prefix of `expected` (shorter, and identical
/// row for row as far as it goes).
void ExpectStrictPrefixRows(const storage::Relation& actual,
                            const storage::Relation& expected) {
  ASSERT_LT(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    ASSERT_EQ(actual.row(i), expected.row(i)) << "row " << i;
  }
}

/// Runs the parallel join over the test case and collects rows.
struct ParallelRun {
  storage::Relation result;
  adaptive::AdaptationTrace trace;
  uint64_t steps = 0;
  uint64_t staged = 0;
  uint64_t serial = 0;
  Status status;
};

ParallelRun RunParallel(const datagen::TestCase& tc,
                        ParallelJoinOptions options) {
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  ParallelAdaptiveJoin join(&child, &parent, options);
  ParallelRun run;
  auto result = exec::CollectAll(&join);
  if (result.ok()) {
    run.result = std::move(*result);
  } else {
    run.status = result.status();
  }
  run.trace = join.trace();
  run.steps = join.steps();
  run.staged = join.ingest_stats().epochs_staged;
  run.serial = join.ingest_stats().epochs_routed_serially;
  return run;
}

TEST(PipelineParityTest, EveryShardAndBatchSizeMatchesSerialAndReference) {
  const datagen::TestCase tc = PaperCase();
  const ReferenceRun reference = RunSingleThreaded(tc, BaseOptions(tc));
  ASSERT_GT(reference.result.size(), 0u);
  ASSERT_GT(reference.trace.size(), 0u);
  for (size_t shards : kShardCounts) {
    for (size_t batch : kBatchSizes) {
      SCOPED_TRACE(testing::Message()
                   << "shards=" << shards << " batch=" << batch);
      ParallelJoinOptions options;
      options.base = BaseOptions(tc);
      options.base.join.batch_size = batch;
      options.num_shards = shards;

      options.pipeline_ingest = true;
      const ParallelRun pipelined = RunParallel(tc, options);
      ASSERT_TRUE(pipelined.status.ok()) << pipelined.status.ToString();
      // The pipeline must actually engage (first epoch is always
      // serial; everything after it stages ahead).
      EXPECT_GT(pipelined.staged, 0u);
      EXPECT_EQ(pipelined.serial, 1u);

      options.pipeline_ingest = false;
      const ParallelRun serial = RunParallel(tc, options);
      ASSERT_TRUE(serial.status.ok()) << serial.status.ToString();
      EXPECT_EQ(serial.staged, 0u);

      EXPECT_EQ(pipelined.steps, reference.steps);
      EXPECT_EQ(serial.steps, reference.steps);
      ExpectSameRows(pipelined.result, reference.result);
      ExpectSameRows(serial.result, reference.result);
      ExpectSameTrace(pipelined.trace, reference.trace);
      ExpectSameTrace(serial.trace, reference.trace);
    }
  }
}

TEST(PipelineParityTest, PinnedAndScriptedPoliciesAgreeWhenPipelined) {
  const datagen::TestCase tc = PaperCase();

  // Pinned: the epoch budget is unbounded_epoch_steps; exercise an odd
  // length so staged budgets and control-point budgets must agree on
  // every epoch, not just power-of-two ones.
  for (adaptive::ProcessorState state :
       {adaptive::ProcessorState::kLexRex,
        adaptive::ProcessorState::kLapRap}) {
    AdaptiveJoinOptions base = BaseOptions(tc);
    base.adaptive.policy = adaptive::AdaptivePolicy::kPinned;
    base.adaptive.initial_state = state;
    const ReferenceRun reference = RunSingleThreaded(tc, base);
    for (size_t shards : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE(testing::Message()
                   << "state=" << adaptive::ProcessorStateName(state)
                   << " shards=" << shards);
      ParallelJoinOptions options;
      options.base = base;
      options.num_shards = shards;
      options.unbounded_epoch_steps = 173;
      options.pipeline_ingest = true;
      const ParallelRun run = RunParallel(tc, options);
      ASSERT_TRUE(run.status.ok()) << run.status.ToString();
      EXPECT_GT(run.staged, 0u);
      ExpectSameRows(run.result, reference.result);
      EXPECT_EQ(run.trace.size(), 0u);
    }
  }

  // Scripted: staged budgets must stop exactly at every scripted
  // transition step, including the unbounded tail after the last one.
  AdaptiveJoinOptions base = BaseOptions(tc);
  base.adaptive.policy = adaptive::AdaptivePolicy::kScripted;
  base.adaptive.script = {
      {120, adaptive::ProcessorState::kLapRex},
      {300, adaptive::ProcessorState::kLapRap},
      {700, adaptive::ProcessorState::kLexRex},
  };
  const ReferenceRun reference = RunSingleThreaded(tc, base);
  ASSERT_EQ(reference.trace.size(), 3u);
  for (size_t shards : kShardCounts) {
    SCOPED_TRACE(testing::Message() << "shards=" << shards);
    ParallelJoinOptions options;
    options.base = base;
    options.num_shards = shards;
    options.pipeline_ingest = true;
    const ParallelRun run = RunParallel(tc, options);
    ASSERT_TRUE(run.status.ok()) << run.status.ToString();
    EXPECT_GT(run.staged, 0u);
    ExpectSameRows(run.result, reference.result);
    ExpectSameTrace(run.trace, reference.trace);
  }
}

TEST(PipelineParityTest, AllDriveModesAgreeWhenPipelined) {
  const datagen::TestCase tc = PaperCase();
  const ReferenceRun reference = RunSingleThreaded(tc, BaseOptions(tc));

  ParallelJoinOptions options;
  options.base = BaseOptions(tc);
  options.num_shards = 4;
  options.pipeline_ingest = true;

  // Row protocol via tuple-at-a-time Next().
  {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    ParallelAdaptiveJoin join(&child, &parent, options);
    ASSERT_TRUE(join.Open().ok());
    storage::Relation collected(join.output_schema());
    while (true) {
      auto next = join.Next();
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!next->has_value()) break;
      collected.AppendUnchecked(std::move(**next));
    }
    EXPECT_GT(join.ingest_stats().epochs_staged, 0u);
    ASSERT_TRUE(join.Close().ok());
    ExpectSameRows(collected, reference.result);
    ExpectSameTrace(join.trace(), reference.trace);
  }

  // Match-ref protocol, materialized at the sink.
  {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    ParallelAdaptiveJoin join(&child, &parent, options);
    ASSERT_TRUE(join.Open().ok());
    storage::Relation collected(join.output_schema());
    std::vector<ParallelMatchRef> refs;
    while (true) {
      ASSERT_TRUE(join.NextMatchRefs(97, &refs).ok());
      if (refs.empty()) break;
      for (const ParallelMatchRef& ref : refs) {
        collected.AppendUnchecked(join.MaterializeRow(ref));
      }
    }
    ASSERT_TRUE(join.Close().ok());
    ExpectSameRows(collected, reference.result);
    ExpectSameTrace(join.trace(), reference.trace);
  }

  // Counting drain: no row is ever materialized.
  {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    ParallelAdaptiveJoin join(&child, &parent, options);
    auto count = exec::CountAll(&join);
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    EXPECT_EQ(*count, reference.result.size());
    ExpectSameTrace(join.trace(), reference.trace);
  }
}

TEST(PipelineParityTest, HardDeadlineMidStageLeavesIdenticalPrefix) {
  // A kFinalize directive lands at a swap point where the next epoch
  // is already staged; the staged (uncommitted) epoch must be drained
  // and discarded, leaving exactly the rows the serial engine leaves.
  const datagen::TestCase tc = PaperCase();
  const ReferenceRun full = RunSingleThreaded(tc, BaseOptions(tc));
  ASSERT_GT(full.steps, 500u);

  auto governor = [](const EpochView& view) {
    return view.steps >= 400 ? EpochDirective::kFinalize
                             : EpochDirective::kProceed;
  };
  storage::Relation pipelined_rows;
  uint64_t pipelined_steps = 0;
  for (bool pipelined : {true, false}) {
    SCOPED_TRACE(testing::Message() << "pipeline_ingest=" << pipelined);
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    ParallelJoinOptions options;
    options.base = BaseOptions(tc);
    options.num_shards = 4;
    options.governor = governor;
    options.pipeline_ingest = pipelined;
    ParallelAdaptiveJoin join(&child, &parent, options);
    auto result = exec::CollectAll(&join);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(join.finalized_early());
    EXPECT_GE(join.steps(), 400u);
    EXPECT_LT(join.steps(), full.steps);
    ExpectStrictPrefixRows(*result, full.result);
    if (pipelined) {
      pipelined_rows = std::move(*result);
      pipelined_steps = join.steps();
    } else {
      // Both modes cut at the same control point with the same rows.
      EXPECT_EQ(join.steps(), pipelined_steps);
      ExpectSameRows(*result, pipelined_rows);
    }
  }
}

TEST(PipelineParityTest, CancellationMidStageDiscardsStagedEpochCleanly) {
  const datagen::TestCase tc = PaperCase();
  uint64_t pipelined_steps = 0;
  for (bool pipelined : {true, false}) {
    SCOPED_TRACE(testing::Message() << "pipeline_ingest=" << pipelined);
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    ParallelJoinOptions options;
    options.base = BaseOptions(tc);
    options.num_shards = 4;
    options.pipeline_ingest = pipelined;
    options.governor = [](const EpochView& view) {
      return view.steps >= 300 ? EpochDirective::kCancel
                               : EpochDirective::kProceed;
    };
    ParallelAdaptiveJoin join(&child, &parent, options);
    ASSERT_TRUE(join.Open().ok());
    storage::ColumnBatch batch(&join.output_schema(), 64);
    Status status;
    while (status.ok()) {
      status = join.NextColumnBatch(&batch);
      if (status.ok()) ASSERT_FALSE(batch.empty()) << "EOS before cancel";
    }
    EXPECT_TRUE(status.IsCancelled()) << status.ToString();
    // Cancellation fires at a published control point, so both modes
    // observe it at the same global step.
    if (pipelined) {
      pipelined_steps = join.steps();
    } else {
      EXPECT_EQ(join.steps(), pipelined_steps);
    }
    // The error is sticky, and Close still succeeds with the in-flight
    // staged epoch abandoned.
    EXPECT_TRUE(join.NextColumnBatch(&batch).IsCancelled());
    EXPECT_TRUE(join.Close().ok());
  }
}

class PipelineFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fail::kCompiledIn) {
      GTEST_SKIP() << "failpoints compiled out (AQP_ENABLE_FAILPOINTS off)";
    }
    fail::DisarmAll();
  }
  void TearDown() override { fail::DisarmAll(); }
};

TEST_F(PipelineFaultTest, StageFaultDegradesToStrictPrefixWithReport) {
  // An ingest fault on the staging task (site exchange.stage, only
  // evaluated on the pipelined path) must discard the staged epoch
  // without corrupting the active one: under kFinalizePartial the run
  // degrades to a strict prefix of the clean result plus a FaultReport
  // naming the site, with the active epoch's output intact.
  const datagen::TestCase tc = PaperCase();
  const ReferenceRun clean = RunSingleThreaded(tc, BaseOptions(tc));
  ASSERT_GT(clean.result.size(), 0u);

  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  ParallelJoinOptions options;
  options.base = BaseOptions(tc);
  options.num_shards = 4;
  options.pipeline_ingest = true;
  options.on_fault = FaultPolicy::kFinalizePartial;
  ParallelAdaptiveJoin join(&child, &parent, options);
  fail::ScopedFailpoint guard(
      fail::site::kExchangeStage,
      fail::Policy::OnNthHit(3, Status::IOError("disk hiccup")));
  auto result = exec::CollectAll(&join);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(join.finalized_early());
  ExpectStrictPrefixRows(*result, clean.result);
  ASSERT_TRUE(join.fault().has_value());
  EXPECT_EQ(join.fault()->site, std::string(fail::site::kExchangeStage));
  EXPECT_EQ(join.fault()->shard, -1);
  EXPECT_GT(join.fault()->epoch, 0u);
  // The reported step count is the published one — every counted step
  // belongs to a committed, merged epoch whose output was delivered.
  EXPECT_EQ(join.fault()->step, join.steps());
}

TEST_F(PipelineFaultTest, StageFaultIsStickyUnderFailPolicy) {
  const datagen::TestCase tc = PaperCase();
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  ParallelJoinOptions options;
  options.base = BaseOptions(tc);
  options.num_shards = 2;
  options.pipeline_ingest = true;
  options.on_fault = FaultPolicy::kFail;
  ParallelAdaptiveJoin join(&child, &parent, options);
  fail::ScopedFailpoint guard(
      fail::site::kExchangeStage,
      fail::Policy::OnNthHit(2, Status::IOError("disk hiccup")));
  auto result = exec::CollectAll(&join);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
  EXPECT_NE(result.status().ToString().find("site=exchange.stage"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("epoch="), std::string::npos);
}

TEST_F(PipelineFaultTest, PrefetchFaultSurfacesThroughWrappedSource) {
  // The single-threaded path's overlap (PrefetchSource) has its own
  // site; a transient fault there must surface like a child error and
  // be retryable by the exchange's source-retry loop.
  const datagen::TestCase tc = PaperCase();
  const ReferenceRun reference = RunSingleThreaded(tc, BaseOptions(tc));

  exec::RelationScan child_scan(&tc.child);
  exec::RelationScan parent_scan(&tc.parent);
  exec::PrefetchSource child(&child_scan);
  exec::PrefetchSource parent(&parent_scan);
  ParallelJoinOptions options;
  options.base = BaseOptions(tc);
  options.num_shards = 2;
  options.pipeline_ingest = true;
  options.source_retry.max_retries = 2;
  ParallelAdaptiveJoin join(&child, &parent, options);
  fail::ScopedFailpoint guard(
      fail::site::kIngestPrefetch,
      fail::Policy::OnNthHit(2, Status::Unavailable("transient blip")));
  auto result = exec::CollectAll(&join);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameRows(*result, reference.result);
  ExpectSameTrace(join.trace(), reference.trace);
  EXPECT_GE(join.source_retries(), 1u);
}

}  // namespace
}  // namespace aqp
