// End-to-end: generator -> scans -> adaptive join -> collected result,
// checked against ground truth, including the streaming input path.

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "adaptive/adaptive_join.h"
#include "datagen/generator.h"
#include "exec/scan.h"
#include "exec/stream.h"

namespace aqp {
namespace {

using adaptive::AdaptiveJoin;
using adaptive::AdaptiveJoinOptions;
using datagen::TestCase;
using datagen::TestCaseOptions;

TestCase MakeCase() {
  TestCaseOptions options;
  options.pattern = datagen::PerturbationPattern::kFewHighIntensityRegions;
  options.atlas.size = 400;
  options.accidents.size = 800;
  options.variant_rate = 0.15;
  options.seed = 777;
  auto tc = datagen::GenerateTestCase(options);
  EXPECT_TRUE(tc.ok());
  return std::move(tc).ValueOrDie();
}

AdaptiveJoinOptions Options(const TestCase& tc) {
  AdaptiveJoinOptions o;
  o.join.spec.left_column = datagen::kAccidentsLocationColumn;
  o.join.spec.right_column = datagen::kAtlasLocationColumn;
  o.join.spec.sim_threshold = 0.85;
  o.join.emit_similarity = true;
  o.adaptive.parent_side = exec::Side::kRight;
  o.adaptive.parent_table_size = tc.parent.size();
  o.adaptive.delta_adapt = 50;
  o.adaptive.window = 50;
  return o;
}

TEST(EndToEndTest, RecoveredPairsAreTrueMatches) {
  const TestCase tc = MakeCase();
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  AdaptiveJoin join(&child, &parent, Options(tc));
  auto result = exec::CollectAll(&join);
  ASSERT_TRUE(result.ok());

  // Map locations back to parent rows for truth checking.
  std::unordered_map<std::string, size_t> parent_by_location;
  for (size_t r = 0; r < tc.parent.size(); ++r) {
    parent_by_location[tc.parent.row(r)
                           .at(datagen::kAtlasLocationColumn)
                           .AsString()] = r;
  }
  // Output schema: child fields (4) + parent fields (4) + sim.
  size_t true_positive = 0, false_positive = 0;
  for (const storage::Tuple& row : result->rows()) {
    const int64_t accident_id = row.at(0).AsInt64();
    const std::string& parent_loc = row.at(4).AsString();
    ASSERT_EQ(parent_by_location.count(parent_loc), 1u);
    const size_t matched_parent = parent_by_location[parent_loc];
    if (tc.child_true_parent[static_cast<size_t>(accident_id)] ==
        matched_parent) {
      ++true_positive;
    } else {
      ++false_positive;
    }
    const double sim = row.at(8).AsDouble();
    EXPECT_GE(sim, 0.85);
    EXPECT_LE(sim, 1.0);
  }
  // Most matches must be true matches; at 0.85 on 36+ character
  // strings, false positives should be rare.
  EXPECT_GT(true_positive, 0u);
  EXPECT_LT(false_positive, true_positive / 20 + 5);
}

TEST(EndToEndTest, GeneratorSourceStreamingPath) {
  const TestCase tc = MakeCase();
  size_t child_pos = 0;
  exec::GeneratorSource child(
      tc.child.schema(), [&]() -> std::optional<storage::Tuple> {
        if (child_pos >= tc.child.size()) return std::nullopt;
        return tc.child.row(child_pos++);
      });
  size_t parent_pos = 0;
  exec::GeneratorSource parent(
      tc.parent.schema(), [&]() -> std::optional<storage::Tuple> {
        if (parent_pos >= tc.parent.size()) return std::nullopt;
        return tc.parent.row(parent_pos++);
      });
  AdaptiveJoin join(&child, &parent, Options(tc));
  auto streamed = exec::CountAll(&join);
  ASSERT_TRUE(streamed.ok());

  exec::RelationScan child2(&tc.child);
  exec::RelationScan parent2(&tc.parent);
  AdaptiveJoin join2(&child2, &parent2, Options(tc));
  auto scanned = exec::CountAll(&join2);
  ASSERT_TRUE(scanned.ok());
  // Identical feed order => identical behaviour, streaming or not.
  EXPECT_EQ(*streamed, *scanned);
}

TEST(EndToEndTest, EarlyTerminationDeliversPartialResult) {
  // The mashup scenario: the consumer stops pulling after a budget.
  const TestCase tc = MakeCase();
  exec::RelationScan child(&tc.child);
  exec::RelationScan parent(&tc.parent);
  AdaptiveJoin join(&child, &parent, Options(tc));
  ASSERT_TRUE(join.Open().ok());
  size_t budget = 100;
  size_t received = 0;
  while (received < budget) {
    auto next = join.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    ++received;
  }
  EXPECT_EQ(received, budget);
  ASSERT_TRUE(join.Close().ok());
  // The join had not consumed the whole input.
  EXPECT_LT(join.steps(), tc.child.size() + tc.parent.size());
}

}  // namespace
}  // namespace aqp
