#include "storage/relation_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace aqp {
namespace storage {
namespace {

Schema MixedSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"location", ValueType::kString},
                 {"score", ValueType::kDouble}});
}

Relation MixedRelation() {
  Relation r(MixedSchema());
  EXPECT_TRUE(
      r.Append(Tuple{Value(1), Value("TAA BZ SANTA"), Value(0.5)}).ok());
  EXPECT_TRUE(
      r.Append(Tuple{Value(2), Value("with,comma"), Value(-1.25)}).ok());
  EXPECT_TRUE(r.Append(Tuple{Value(), Value("x\"quote"), Value()}).ok());
  return r;
}

TEST(RelationIoTest, RoundTripsMixedTypes) {
  const Relation original = MixedRelation();
  std::stringstream buffer;
  WriteRelationCsv(original, &buffer);
  auto loaded = ReadRelationCsv(MixedSchema(), &buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded->row(i), original.row(i)) << "row " << i;
  }
}

TEST(RelationIoTest, HeaderRowWritten) {
  std::stringstream buffer;
  WriteRelationCsv(MixedRelation(), &buffer);
  std::string first_line;
  std::getline(buffer, first_line);
  EXPECT_EQ(first_line, "id,location,score");
}

TEST(RelationIoTest, EmptyRelationStillHasHeader) {
  Relation empty(MixedSchema());
  std::stringstream buffer;
  WriteRelationCsv(empty, &buffer);
  auto loaded = ReadRelationCsv(MixedSchema(), &buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
}

TEST(RelationIoTest, RejectsEmptyInput) {
  std::stringstream buffer;
  EXPECT_TRUE(
      ReadRelationCsv(MixedSchema(), &buffer).status().IsInvalidArgument());
}

TEST(RelationIoTest, RejectsWrongHeader) {
  std::stringstream buffer("id,place,score\n1,x,0.5\n");
  auto loaded = ReadRelationCsv(MixedSchema(), &buffer);
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
  EXPECT_NE(loaded.status().message().find("place"), std::string::npos);
}

TEST(RelationIoTest, RejectsArityMismatch) {
  std::stringstream buffer("id,location,score\n1,x\n");
  EXPECT_TRUE(
      ReadRelationCsv(MixedSchema(), &buffer).status().IsInvalidArgument());
}

TEST(RelationIoTest, RejectsBadIntegerWithLineNumber) {
  std::stringstream buffer("id,location,score\nnope,x,0.5\n");
  auto loaded = ReadRelationCsv(MixedSchema(), &buffer);
  ASSERT_TRUE(loaded.status().IsInvalidArgument());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
}

TEST(RelationIoTest, EmptyCellsBecomeNull) {
  std::stringstream buffer("id,location,score\n,empty int and score,\n");
  auto loaded = ReadRelationCsv(MixedSchema(), &buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->row(0).at(0).is_null());
  EXPECT_TRUE(loaded->row(0).at(2).is_null());
  EXPECT_EQ(loaded->row(0).at(1).AsString(), "empty int and score");
}

TEST(RelationIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/relation_io_test.csv";
  const Relation original = MixedRelation();
  ASSERT_TRUE(WriteRelationCsvFile(original, path).ok());
  auto loaded = ReadRelationCsvFile(MixedSchema(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), original.size());
  std::remove(path.c_str());
}

TEST(RelationIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadRelationCsvFile(MixedSchema(), "/nonexistent/nope.csv")
                  .status()
                  .IsIOError());
}

TEST(RelationIoTest, DoubleRoundTripPrecision) {
  Relation r(Schema({{"x", ValueType::kDouble}}));
  ASSERT_TRUE(r.Append(Tuple{Value(0.1)}).ok());
  ASSERT_TRUE(r.Append(Tuple{Value(1.0 / 3.0)}).ok());
  std::stringstream buffer;
  WriteRelationCsv(r, &buffer);
  auto loaded = ReadRelationCsv(r.schema(), &buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->row(0).at(0).AsDouble(), 0.1);
  EXPECT_DOUBLE_EQ(loaded->row(1).at(0).AsDouble(), 1.0 / 3.0);
}

}  // namespace
}  // namespace storage
}  // namespace aqp
