#include "storage/tuple_batch.h"

#include <gtest/gtest.h>

#include <type_traits>

namespace aqp {
namespace storage {
namespace {

// The batch protocol relies on cheap, non-throwing relocation all the
// way down; a regression here silently turns vector growth into deep
// copies.
static_assert(std::is_nothrow_move_constructible<Value>::value,
              "Value moves must be noexcept");
static_assert(std::is_nothrow_move_assignable<Value>::value,
              "Value move-assign must be noexcept");
static_assert(std::is_nothrow_move_constructible<Tuple>::value,
              "Tuple moves must be noexcept");
static_assert(std::is_nothrow_move_assignable<Tuple>::value,
              "Tuple move-assign must be noexcept");
static_assert(std::is_nothrow_move_constructible<TupleBatch>::value,
              "TupleBatch moves must be noexcept");

Schema TwoCols() {
  return Schema({{"name", ValueType::kString}, {"n", ValueType::kInt64}});
}

TEST(TupleBatchTest, StartsEmptyWithRequestedCapacity) {
  const Schema schema = TwoCols();
  TupleBatch batch(&schema, 8);
  EXPECT_EQ(batch.schema(), &schema);
  EXPECT_EQ(batch.capacity(), 8u);
  EXPECT_EQ(batch.size(), 0u);
  EXPECT_TRUE(batch.empty());
  EXPECT_FALSE(batch.full());
}

TEST(TupleBatchTest, AppendUntilFull) {
  const Schema schema = TwoCols();
  TupleBatch batch(&schema, 2);
  batch.Append(Tuple{Value("a"), Value(1)});
  EXPECT_FALSE(batch.full());
  batch.Append(Tuple{Value("b"), Value(2)});
  EXPECT_TRUE(batch.full());
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].at(0).AsString(), "a");
  EXPECT_EQ(batch[1].at(1).AsInt64(), 2);
}

TEST(TupleBatchTest, ResetKeepsCapacityWhenZero) {
  const Schema schema = TwoCols();
  TupleBatch batch(&schema, 16);
  batch.Append(Tuple{Value("a"), Value(1)});
  batch.Reset(&schema);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.capacity(), 16u);
  batch.Reset(&schema, 4);
  EXPECT_EQ(batch.capacity(), 4u);
}

TEST(TupleBatchTest, DefaultCapacityApplies) {
  const Schema schema = TwoCols();
  TupleBatch batch(&schema);
  EXPECT_EQ(batch.capacity(), TupleBatch::kDefaultCapacity);
}

TEST(TupleBatchTest, TakeRowsLeavesReusableBatch) {
  const Schema schema = TwoCols();
  TupleBatch batch(&schema, 4);
  batch.Append(Tuple{Value("a"), Value(1)});
  batch.Append(Tuple{Value("b"), Value(2)});
  std::vector<Tuple> rows = batch.TakeRows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1].at(0).AsString(), "b");
  EXPECT_TRUE(batch.empty());
  batch.Append(Tuple{Value("c"), Value(3)});
  EXPECT_EQ(batch.size(), 1u);
}

TEST(TupleBatchTest, MoveTransfersRows) {
  const Schema schema = TwoCols();
  TupleBatch batch(&schema, 4);
  batch.Append(Tuple{Value("a"), Value(1)});
  TupleBatch moved = std::move(batch);
  EXPECT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved.schema(), &schema);
}

TEST(TupleBatchTest, ValidateRowsChecksSchema) {
  const Schema schema = TwoCols();
  TupleBatch batch(&schema, 4);
  batch.Append(Tuple{Value("a"), Value(1)});
  EXPECT_TRUE(batch.ValidateRows().ok());
  batch.Append(Tuple{Value(7), Value("oops")});
  EXPECT_TRUE(batch.ValidateRows().IsInvalidArgument());
  TupleBatch schemaless;
  EXPECT_TRUE(schemaless.ValidateRows().IsFailedPrecondition());
}

TEST(TupleBatchTest, RangeForIteratesRows) {
  const Schema schema = TwoCols();
  TupleBatch batch(&schema, 4);
  batch.Append(Tuple{Value("a"), Value(1)});
  batch.Append(Tuple{Value("b"), Value(2)});
  int64_t sum = 0;
  for (const Tuple& t : batch) sum += t.at(1).AsInt64();
  EXPECT_EQ(sum, 3);
}

}  // namespace
}  // namespace storage
}  // namespace aqp
