#include "storage/tuple.h"

#include <gtest/gtest.h>

namespace aqp {
namespace storage {
namespace {

Schema TwoCol() {
  return Schema({{"id", ValueType::kInt64}, {"name", ValueType::kString}});
}

TEST(TupleTest, InitializerList) {
  Tuple t{Value(1), Value("x")};
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.at(0).AsInt64(), 1);
  EXPECT_EQ(t.at(1).AsString(), "x");
}

TEST(TupleTest, ValidateAcceptsConforming) {
  Tuple t{Value(1), Value("x")};
  EXPECT_TRUE(t.ValidateAgainst(TwoCol()).ok());
}

TEST(TupleTest, ValidateAcceptsNulls) {
  Tuple t{Value(), Value()};
  EXPECT_TRUE(t.ValidateAgainst(TwoCol()).ok());
}

TEST(TupleTest, ValidateRejectsArityMismatch) {
  Tuple t{Value(1)};
  EXPECT_TRUE(t.ValidateAgainst(TwoCol()).IsInvalidArgument());
}

TEST(TupleTest, ValidateRejectsTypeMismatch) {
  Tuple t{Value("oops"), Value("x")};
  EXPECT_TRUE(t.ValidateAgainst(TwoCol()).IsInvalidArgument());
}

TEST(TupleTest, Concat) {
  Tuple l{Value(1), Value("a")};
  Tuple r{Value(2.0)};
  Tuple joined = Tuple::Concat(l, r);
  ASSERT_EQ(joined.size(), 3u);
  EXPECT_EQ(joined.at(0).AsInt64(), 1);
  EXPECT_EQ(joined.at(1).AsString(), "a");
  EXPECT_DOUBLE_EQ(joined.at(2).AsDouble(), 2.0);
}

TEST(TupleTest, ConcatWithEmpty) {
  Tuple l{Value(1)};
  Tuple empty;
  EXPECT_EQ(Tuple::Concat(l, empty), l);
  EXPECT_EQ(Tuple::Concat(empty, l), l);
}

TEST(TupleTest, AppendGrows) {
  Tuple t;
  t.Append(Value("x"));
  t.Append(Value(3));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.at(1).AsInt64(), 3);
}

TEST(TupleTest, EqualityAndToString) {
  Tuple a{Value(1), Value("x")};
  Tuple b{Value(1), Value("x")};
  Tuple c{Value(1), Value("y")};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.ToString(), "(1, x)");
  EXPECT_EQ(Tuple().ToString(), "()");
}

// Regression: tuple rendering inherits Value's shortest-round-trip
// double formatting (previously ostream precision 6, which truncated
// and disagreed with CsvWriter::Field).
TEST(TupleTest, ToStringRendersDoublesShortestRoundTrip) {
  Tuple t{Value(0.1234567890123), Value(2.5)};
  EXPECT_EQ(t.ToString(), "(0.1234567890123, 2.5)");
}

}  // namespace
}  // namespace storage
}  // namespace aqp
