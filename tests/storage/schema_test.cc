#include "storage/schema.h"

#include <gtest/gtest.h>

namespace aqp {
namespace storage {
namespace {

Schema Accidents() {
  return Schema({{"accident_id", ValueType::kInt64},
                 {"location", ValueType::kString},
                 {"severity", ValueType::kInt64}});
}

TEST(SchemaTest, FieldAccess) {
  const Schema s = Accidents();
  EXPECT_EQ(s.num_fields(), 3u);
  EXPECT_EQ(s.field(1).name, "location");
  EXPECT_EQ(s.field(1).type, ValueType::kString);
}

TEST(SchemaTest, IndexOf) {
  const Schema s = Accidents();
  EXPECT_EQ(s.IndexOf("location"), std::optional<size_t>(1));
  EXPECT_EQ(s.IndexOf("bogus"), std::nullopt);
}

TEST(SchemaTest, RequireIndexOf) {
  const Schema s = Accidents();
  auto ok = s.RequireIndexOf("severity");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2u);
  EXPECT_TRUE(s.RequireIndexOf("bogus").status().IsNotFound());
}

TEST(SchemaTest, ConcatRenamesDuplicates) {
  const Schema left = Accidents();
  const Schema right({{"location", ValueType::kString},
                      {"lat", ValueType::kDouble}});
  const Schema joined = left.ConcatWith(right, "_r");
  EXPECT_EQ(joined.num_fields(), 5u);
  EXPECT_EQ(joined.field(3).name, "location_r");
  EXPECT_EQ(joined.field(4).name, "lat");
}

TEST(SchemaTest, WithFieldAppends) {
  const Schema s = Accidents().WithField({"sim", ValueType::kDouble});
  EXPECT_EQ(s.num_fields(), 4u);
  EXPECT_EQ(s.field(3).name, "sim");
}

TEST(SchemaTest, EqualityAndToString) {
  EXPECT_EQ(Accidents(), Accidents());
  EXPECT_NE(Accidents(), Schema());
  EXPECT_EQ(Schema().ToString(), "[]");
  EXPECT_NE(Accidents().ToString().find("location:string"),
            std::string::npos);
}

}  // namespace
}  // namespace storage
}  // namespace aqp
