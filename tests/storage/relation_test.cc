#include "storage/relation.h"

#include <gtest/gtest.h>

namespace aqp {
namespace storage {
namespace {

Relation People() {
  Relation r(Schema({{"id", ValueType::kInt64},
                     {"city", ValueType::kString}}));
  EXPECT_TRUE(r.Append(Tuple{Value(1), Value("ROMA")}).ok());
  EXPECT_TRUE(r.Append(Tuple{Value(2), Value("MILANO")}).ok());
  EXPECT_TRUE(r.Append(Tuple{Value(3), Value("ROMA")}).ok());
  return r;
}

TEST(RelationTest, AppendValidates) {
  Relation r(Schema({{"id", ValueType::kInt64}}));
  EXPECT_TRUE(r.Append(Tuple{Value(1)}).ok());
  EXPECT_TRUE(r.Append(Tuple{Value("bad")}).IsInvalidArgument());
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, RowAccess) {
  const Relation r = People();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.row(1).at(1).AsString(), "MILANO");
}

TEST(RelationTest, MutableRow) {
  Relation r = People();
  r.mutable_row(0)->at(1) = Value("TORINO");
  EXPECT_EQ(r.row(0).at(1).AsString(), "TORINO");
}

TEST(RelationTest, DistinctStringsFirstSeenOrder) {
  const Relation r = People();
  EXPECT_EQ(r.DistinctStrings(1),
            (std::vector<std::string>{"ROMA", "MILANO"}));
}

TEST(RelationTest, ToStringTruncates) {
  const Relation r = People();
  const std::string s = r.ToString(2);
  EXPECT_NE(s.find("ROMA"), std::string::npos);
  EXPECT_NE(s.find("(1 more rows)"), std::string::npos);
}

TEST(RelationTest, EmptyRelation) {
  Relation r(Schema({{"x", ValueType::kString}}));
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.DistinctStrings(0).empty());
}

}  // namespace
}  // namespace storage
}  // namespace aqp
