#include "storage/tuple_store.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"

namespace aqp {
namespace storage {
namespace {

TEST(TupleStoreTest, AddAssignsDenseIds) {
  TupleStore store(/*join_column=*/0);
  EXPECT_EQ(store.Add(Tuple{Value("a")}), 0u);
  EXPECT_EQ(store.Add(Tuple{Value("b")}), 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.GetTuple(1).at(0).AsString(), "b");
}

TEST(TupleStoreTest, JoinKeyUsesConfiguredColumn) {
  TupleStore store(/*join_column=*/1);
  const TupleId id = store.Add(Tuple{Value(7), Value("LOC")});
  EXPECT_EQ(store.JoinKey(id), "LOC");
  EXPECT_EQ(store.join_column(), 1u);
}

TEST(TupleStoreTest, MatchedExactlyFlags) {
  TupleStore store(0);
  const TupleId a = store.Add(Tuple{Value("a")});
  const TupleId b = store.Add(Tuple{Value("b")});
  EXPECT_FALSE(store.MatchedExactly(a));
  store.SetMatchedExactly(a);
  EXPECT_TRUE(store.MatchedExactly(a));
  EXPECT_FALSE(store.MatchedExactly(b));
  EXPECT_EQ(store.CountMatchedExactly(), 1u);
  store.SetMatchedExactly(a);  // idempotent
  EXPECT_EQ(store.CountMatchedExactly(), 1u);
}

TEST(TupleStoreTest, MatchedAnyFirstTimeDetection) {
  TupleStore store(0);
  const TupleId a = store.Add(Tuple{Value("a")});
  EXPECT_FALSE(store.MatchedAny(a));
  EXPECT_TRUE(store.SetMatchedAny(a));   // first set
  EXPECT_FALSE(store.SetMatchedAny(a));  // already set
  store.IncrementMatchedAnyCount();
  EXPECT_EQ(store.matched_any_count(), 1u);
}

TEST(TupleStoreTest, MemoryUsageGrows) {
  TupleStore store(0);
  const size_t empty = store.ApproximateMemoryUsage();
  for (int i = 0; i < 100; ++i) {
    store.Add(Tuple{Value("some location string of decent length")});
  }
  EXPECT_GT(store.ApproximateMemoryUsage(), empty + 100 * 30);
}

TEST(TupleStoreTest, KeyHashIsCachedFnv1a) {
  TupleStore store(/*join_column=*/1);
  const TupleId id = store.Add(Tuple{Value(7), Value("SANTA CRISTINA")});
  EXPECT_EQ(store.KeyHash(id), Fnv1a64("SANTA CRISTINA"));
  EXPECT_EQ(store.KeyLength(id), 14u);
}

// Regression: JoinKey() views and cached hashes must survive store
// growth — the intern arena may allocate new chunks but never
// relocates interned bytes.
TEST(TupleStoreTest, JoinKeyViewsAndHashesSurviveGrowth) {
  TupleStore store(0);
  std::vector<std::string> expected;
  std::vector<std::string_view> early_views;
  // Enough distinct keys to span several 64 KiB arena chunks and many
  // reallocations of every per-tuple vector.
  for (int i = 0; i < 5000; ++i) {
    expected.push_back("location string number " + std::to_string(i));
    const TupleId id = store.Add(Tuple{Value(expected.back())});
    early_views.push_back(store.JoinKey(id));
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    const auto id = static_cast<TupleId>(i);
    // The view captured right after Add still reads the same bytes...
    EXPECT_EQ(early_views[i], expected[i]) << "key " << i;
    // ...and is the same arena memory JoinKey returns now.
    EXPECT_EQ(early_views[i].data(), store.JoinKey(id).data());
    EXPECT_EQ(store.JoinKey(id), expected[i]);
    EXPECT_EQ(store.KeyHash(id), Fnv1a64(expected[i]));
  }
}

// §2.3 space accounting of the arena-backed layout: the footprint must
// cover the interned key copies (arena chunks) and the per-tuple
// {offset, len, hash} records on top of the payload tuples.
TEST(TupleStoreTest, MemoryUsageAccountsArenaAndKeyRecords) {
  TupleStore store(0);
  const size_t empty = store.ApproximateMemoryUsage();
  const std::string key(100, 'x');
  constexpr size_t kTuples = 1500;  // 150 KB of keys: > two arena chunks
  for (size_t i = 0; i < kTuples; ++i) {
    store.Add(Tuple{Value(key)});
  }
  const size_t usage = store.ApproximateMemoryUsage();
  // Key bytes are stored exactly once (the arena copy — the columnar
  // payload no longer duplicates the join column) plus a 24-byte key
  // record; anything below that undercounts §2.3 space.
  EXPECT_GT(usage, empty + kTuples * (key.size() + 24));
}

TEST(TupleStoreTest, GramCacheMemoizedAndAccounted) {
  text::QGramOptions q3;
  TupleStore store(0, q3);
  ASSERT_TRUE(store.gram_cache_enabled());
  const TupleId id = store.Add(Tuple{Value("SANTA CRISTINA")});
  const size_t before = store.ApproximateMemoryUsage();
  const text::GramSet& grams = store.Grams(id);
  EXPECT_EQ(grams, text::GramSet::Of("SANTA CRISTINA", q3));
  // Extracted exactly once: repeated calls return the same object.
  EXPECT_EQ(&store.Grams(id), &grams);
  // The cached set's bytes are part of the store's §2.3 footprint.
  EXPECT_GT(store.ApproximateMemoryUsage(), before);
}

TEST(TupleStoreTest, PlainStoreHasNoGramCache) {
  TupleStore store(0);
  EXPECT_FALSE(store.gram_cache_enabled());
}

// The native columnar ingest path must agree with the row adapter in
// every artifact: ids, keys, hashes, and materialized payloads.
TEST(TupleStoreTest, AddRowMatchesTupleAdapter) {
  Schema schema({{"id", ValueType::kInt64},
                 {"loc", ValueType::kString},
                 {"lat", ValueType::kDouble}});
  ColumnBatch batch(&schema, 4);
  batch.AppendTupleRow(Tuple{Value(7), Value("SANTA CRISTINA"), Value(1.5)});
  batch.AppendTupleRow(Tuple{Value(8), Value("PROLOQUIO"), Value()});
  batch.ComputeKeyHashes(1);

  TupleStore columnar(/*join_column=*/1);
  TupleStore rowwise(/*join_column=*/1);
  for (size_t r = 0; r < batch.size(); ++r) {
    const TupleId a = columnar.AddRow(batch, r, batch.key_hash(r));
    const TupleId b = rowwise.Add(batch.MaterializeRow(r));
    ASSERT_EQ(a, b);
    EXPECT_EQ(columnar.JoinKey(a), rowwise.JoinKey(b));
    EXPECT_EQ(columnar.KeyHash(a), rowwise.KeyHash(b));
    EXPECT_EQ(columnar.GetTuple(a), rowwise.GetTuple(b));
  }
  EXPECT_EQ(columnar.GetTuple(0).at(0).AsInt64(), 7);
  EXPECT_EQ(columnar.GetTuple(1).at(1).AsString(), "PROLOQUIO");
  EXPECT_TRUE(columnar.GetTuple(1).at(2).is_null());
}

// AppendCellsTo writes the stored payload slice into an output batch
// (the late-materialization sink path) byte-identically to GetTuple.
TEST(TupleStoreTest, AppendCellsToMatchesGetTuple) {
  TupleStore store(/*join_column=*/0);
  store.Add(Tuple{Value("key-a"), Value(1), Value(0.5)});
  store.Add(Tuple{Value("key-b"), Value(), Value(2.25)});

  Schema out_schema({{"loc", ValueType::kString},
                     {"n", ValueType::kInt64},
                     {"x", ValueType::kDouble}});
  ColumnBatch out(&out_schema, 4);
  for (TupleId id = 0; id < store.size(); ++id) {
    store.AppendCellsTo(id, &out, 0);
    out.CommitRow();
  }
  ASSERT_EQ(out.size(), 2u);
  for (TupleId id = 0; id < store.size(); ++id) {
    EXPECT_EQ(out.MaterializeRow(id), store.GetTuple(id)) << "row " << id;
  }
}

// A column whose first rows are NULL latches its type on the first
// typed cell and backfills placeholders — later reads of the early
// rows stay NULL.
TEST(TupleStoreTest, LeadingNullsLatchColumnTypeLate) {
  TupleStore store(/*join_column=*/0);
  store.Add(Tuple{Value("a"), Value()});
  store.Add(Tuple{Value("b"), Value()});
  store.Add(Tuple{Value("c"), Value(42)});
  EXPECT_TRUE(store.GetTuple(0).at(1).is_null());
  EXPECT_TRUE(store.GetTuple(1).at(1).is_null());
  EXPECT_EQ(store.GetTuple(2).at(1).AsInt64(), 42);
}

}  // namespace
}  // namespace storage
}  // namespace aqp
