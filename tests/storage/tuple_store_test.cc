#include "storage/tuple_store.h"

#include <gtest/gtest.h>

namespace aqp {
namespace storage {
namespace {

TEST(TupleStoreTest, AddAssignsDenseIds) {
  TupleStore store(/*join_column=*/0);
  EXPECT_EQ(store.Add(Tuple{Value("a")}), 0u);
  EXPECT_EQ(store.Add(Tuple{Value("b")}), 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.Get(1).at(0).AsString(), "b");
}

TEST(TupleStoreTest, JoinKeyUsesConfiguredColumn) {
  TupleStore store(/*join_column=*/1);
  const TupleId id = store.Add(Tuple{Value(7), Value("LOC")});
  EXPECT_EQ(store.JoinKey(id), "LOC");
  EXPECT_EQ(store.join_column(), 1u);
}

TEST(TupleStoreTest, MatchedExactlyFlags) {
  TupleStore store(0);
  const TupleId a = store.Add(Tuple{Value("a")});
  const TupleId b = store.Add(Tuple{Value("b")});
  EXPECT_FALSE(store.MatchedExactly(a));
  store.SetMatchedExactly(a);
  EXPECT_TRUE(store.MatchedExactly(a));
  EXPECT_FALSE(store.MatchedExactly(b));
  EXPECT_EQ(store.CountMatchedExactly(), 1u);
  store.SetMatchedExactly(a);  // idempotent
  EXPECT_EQ(store.CountMatchedExactly(), 1u);
}

TEST(TupleStoreTest, MatchedAnyFirstTimeDetection) {
  TupleStore store(0);
  const TupleId a = store.Add(Tuple{Value("a")});
  EXPECT_FALSE(store.MatchedAny(a));
  EXPECT_TRUE(store.SetMatchedAny(a));   // first set
  EXPECT_FALSE(store.SetMatchedAny(a));  // already set
  store.IncrementMatchedAnyCount();
  EXPECT_EQ(store.matched_any_count(), 1u);
}

TEST(TupleStoreTest, MemoryUsageGrows) {
  TupleStore store(0);
  const size_t empty = store.ApproximateMemoryUsage();
  for (int i = 0; i < 100; ++i) {
    store.Add(Tuple{Value("some location string of decent length")});
  }
  EXPECT_GT(store.ApproximateMemoryUsage(), empty + 100 * 30);
}

}  // namespace
}  // namespace storage
}  // namespace aqp
