#include "storage/value.h"

#include <gtest/gtest.h>

namespace aqp {
namespace storage {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, Int64RoundTrip) {
  Value v(int64_t{42});
  EXPECT_EQ(v.type(), ValueType::kInt64);
  EXPECT_EQ(v.AsInt64(), 42);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, IntLiteralPromotesToInt64) {
  Value v(7);
  EXPECT_EQ(v.type(), ValueType::kInt64);
  EXPECT_EQ(v.AsInt64(), 7);
}

TEST(ValueTest, DoubleRoundTrip) {
  Value v(2.5);
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 2.5);
}

TEST(ValueTest, StringRoundTrip) {
  Value v("TAA BZ");
  EXPECT_EQ(v.type(), ValueType::kString);
  EXPECT_EQ(v.AsString(), "TAA BZ");
  EXPECT_EQ(v.AsStringView(), "TAA BZ");
  EXPECT_EQ(v.ToString(), "TAA BZ");
}

TEST(ValueTest, EqualityWithinType) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_NE(Value(1), Value(2));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_EQ(Value(), Value());
}

TEST(ValueTest, EqualityAcrossTypes) {
  EXPECT_NE(Value(1), Value(1.0));
  EXPECT_NE(Value(), Value(0));
}

TEST(ValueTest, OrderingNullFirstThenByType) {
  EXPECT_LT(Value(), Value(0));
  EXPECT_LT(Value(int64_t{5}), Value(1.0));  // int64 index < double index
  EXPECT_LT(Value(1.0), Value("a"));
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(ValueTypeName(ValueType::kNull), "null");
  EXPECT_STREQ(ValueTypeName(ValueType::kInt64), "int64");
  EXPECT_STREQ(ValueTypeName(ValueType::kDouble), "double");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "string");
}

}  // namespace
}  // namespace storage
}  // namespace aqp
