#include "storage/value.h"

#include <gtest/gtest.h>

#include <string>

#include "common/csv.h"

namespace aqp {
namespace storage {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, Int64RoundTrip) {
  Value v(int64_t{42});
  EXPECT_EQ(v.type(), ValueType::kInt64);
  EXPECT_EQ(v.AsInt64(), 42);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, IntLiteralPromotesToInt64) {
  Value v(7);
  EXPECT_EQ(v.type(), ValueType::kInt64);
  EXPECT_EQ(v.AsInt64(), 7);
}

TEST(ValueTest, DoubleRoundTrip) {
  Value v(2.5);
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 2.5);
}

// Regression: ToString must render doubles as the shortest form that
// parses back to the same bits, matching CsvWriter::Field(double) —
// the two paths previously disagreed (ostream precision 6 here).
TEST(ValueTest, DoubleToStringIsShortestRoundTrip) {
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
  EXPECT_EQ(Value(0.1).ToString(), "0.1");
  // Precision-6 ostream formatting would have emitted "0.123457".
  EXPECT_EQ(Value(0.1234567890123).ToString(), "0.1234567890123");
  EXPECT_EQ(Value(1e300).ToString(), "1e+300");
  for (double d : {0.1, 1.0 / 3.0, 6.02214076e23, -0.0, 12345.678901}) {
    const std::string rendered = Value(d).ToString();
    EXPECT_EQ(std::stod(rendered), d) << rendered;
  }
}

TEST(ValueTest, DoubleToStringMatchesCsvField) {
  for (double d : {2.755, 1e-9, 3.141592653589793, -42.5}) {
    EXPECT_EQ(Value(d).ToString(), CsvWriter::Field(d));
  }
}

TEST(ValueTest, StringRoundTrip) {
  Value v("TAA BZ");
  EXPECT_EQ(v.type(), ValueType::kString);
  EXPECT_EQ(v.AsString(), "TAA BZ");
  EXPECT_EQ(v.AsStringView(), "TAA BZ");
  EXPECT_EQ(v.ToString(), "TAA BZ");
}

TEST(ValueTest, EqualityWithinType) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_NE(Value(1), Value(2));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_EQ(Value(), Value());
}

TEST(ValueTest, EqualityAcrossTypes) {
  EXPECT_NE(Value(1), Value(1.0));
  EXPECT_NE(Value(), Value(0));
}

TEST(ValueTest, OrderingNullFirstThenByType) {
  EXPECT_LT(Value(), Value(0));
  EXPECT_LT(Value(int64_t{5}), Value(1.0));  // int64 index < double index
  EXPECT_LT(Value(1.0), Value("a"));
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(ValueTypeName(ValueType::kNull), "null");
  EXPECT_STREQ(ValueTypeName(ValueType::kInt64), "int64");
  EXPECT_STREQ(ValueTypeName(ValueType::kDouble), "double");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "string");
}

}  // namespace
}  // namespace storage
}  // namespace aqp
