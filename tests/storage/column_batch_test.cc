#include "storage/column_batch.h"

#include <gtest/gtest.h>

#include <string>

#include "common/hash.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace aqp {
namespace storage {
namespace {

Schema TestSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"loc", ValueType::kString},
                 {"lat", ValueType::kDouble}});
}

TEST(ColumnBatchTest, CellWiseAppendAndTypedAccess) {
  Schema schema = TestSchema();
  ColumnBatch batch(&schema, 8);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.num_columns(), 3u);

  batch.AppendInt64(0, 7);
  batch.AppendString(1, "SANTA CRISTINA");
  batch.AppendDouble(2, 1.5);
  batch.CommitRow();
  batch.AppendInt64(0, 8);
  batch.AppendString(1, "PROLOQUIO");
  batch.AppendNull(2);
  batch.CommitRow();

  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.Int64At(0, 0), 7);
  EXPECT_EQ(batch.StringAt(1, 0), "SANTA CRISTINA");
  EXPECT_DOUBLE_EQ(batch.DoubleAt(2, 0), 1.5);
  EXPECT_FALSE(batch.IsNull(2, 0));
  EXPECT_TRUE(batch.IsNull(2, 1));
  EXPECT_EQ(batch.StringAt(1, 1), "PROLOQUIO");
  EXPECT_TRUE(batch.Validate().ok());
}

TEST(ColumnBatchTest, TupleRowRoundTrip) {
  Schema schema = TestSchema();
  ColumnBatch batch(&schema, 4);
  const Tuple a{Value(1), Value("alpha"), Value(0.25)};
  const Tuple b{Value(2), Value(""), Value()};
  const Tuple c{Value(), Value("gamma"), Value(-3.5)};
  batch.AppendTupleRow(a);
  batch.AppendTupleRow(b);
  batch.AppendTupleRow(c);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.MaterializeRow(0), a);
  EXPECT_EQ(batch.MaterializeRow(1), b);
  EXPECT_EQ(batch.MaterializeRow(2), c);
}

TEST(ColumnBatchTest, StringArenaIsShared) {
  Schema schema({{"a", ValueType::kString}, {"b", ValueType::kString}});
  ColumnBatch batch(&schema, 4);
  batch.AppendString(0, "one");
  batch.AppendString(1, "two");
  batch.CommitRow();
  // Both columns' bytes live in one arena, in append order.
  EXPECT_EQ(batch.StringAt(0, 0).data() + 3, batch.StringAt(1, 0).data());
}

TEST(ColumnBatchTest, KeyHashLaneMatchesFnv1a) {
  Schema schema = TestSchema();
  ColumnBatch batch(&schema, 4);
  batch.AppendTupleRow(Tuple{Value(1), Value("alpha"), Value(0.0)});
  batch.AppendTupleRow(Tuple{Value(2), Value("beta"), Value(0.0)});
  EXPECT_FALSE(batch.has_key_hashes());
  batch.ComputeKeyHashes(1);
  ASSERT_TRUE(batch.has_key_hashes());
  EXPECT_EQ(batch.key_hash(0), Fnv1a64("alpha"));
  EXPECT_EQ(batch.key_hash(1), Fnv1a64("beta"));
  EXPECT_TRUE(batch.Validate().ok());
}

TEST(ColumnBatchTest, AppendRowFromScattersSliceAndHash) {
  Schema schema = TestSchema();
  ColumnBatch src(&schema, 4);
  src.AppendTupleRow(Tuple{Value(1), Value("alpha"), Value(0.5)});
  src.AppendTupleRow(Tuple{Value(2), Value("beta"), Value()});
  src.ComputeKeyHashes(1);

  ColumnBatch dst(&schema, 4);
  dst.AppendRowFrom(src, 1);
  dst.AppendRowFrom(src, 0);
  ASSERT_EQ(dst.size(), 2u);
  EXPECT_EQ(dst.MaterializeRow(0), src.MaterializeRow(1));
  EXPECT_EQ(dst.MaterializeRow(1), src.MaterializeRow(0));
  ASSERT_TRUE(dst.has_key_hashes());
  EXPECT_EQ(dst.key_hash(0), Fnv1a64("beta"));
  EXPECT_EQ(dst.key_hash(1), Fnv1a64("alpha"));
}

TEST(ColumnBatchTest, ResetSameSchemaKeepsLayoutAndClearsRows) {
  Schema schema = TestSchema();
  ColumnBatch batch(&schema, 4);
  batch.AppendTupleRow(Tuple{Value(1), Value("alpha"), Value(0.5)});
  batch.ComputeKeyHashes(1);
  batch.Reset(&schema);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.num_columns(), 3u);
  EXPECT_EQ(batch.capacity(), 4u);
  // Lane cleared with the rows.
  batch.AppendTupleRow(Tuple{Value(2), Value("beta"), Value(1.5)});
  EXPECT_FALSE(batch.has_key_hashes());
  EXPECT_EQ(batch.StringAt(1, 0), "beta");
}

TEST(ColumnBatchTest, ResetDifferentSchemaRebuildsColumns) {
  Schema first = TestSchema();
  Schema second({{"x", ValueType::kString}});
  ColumnBatch batch(&first, 4);
  batch.AppendTupleRow(Tuple{Value(1), Value("alpha"), Value(0.5)});
  batch.Reset(&second, 2);
  EXPECT_EQ(batch.num_columns(), 1u);
  EXPECT_EQ(batch.capacity(), 2u);
  batch.AppendString(0, "solo");
  batch.CommitRow();
  EXPECT_EQ(batch.StringAt(0, 0), "solo");
}

TEST(ColumnBatchTest, SoftCapacityGrowsPastFull) {
  Schema schema({{"x", ValueType::kInt64}});
  ColumnBatch batch(&schema, 2);
  for (int i = 0; i < 5; ++i) {
    batch.AppendInt64(0, i);
    batch.CommitRow();
  }
  EXPECT_EQ(batch.size(), 5u);
  EXPECT_TRUE(batch.full());
  EXPECT_EQ(batch.Int64At(0, 4), 4);
}

TEST(ColumnBatchTest, ValidateCatchesMisalignedColumns) {
  Schema schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}});
  ColumnBatch batch(&schema, 2);
  EXPECT_TRUE(batch.Validate().ok());
  ColumnBatch no_schema;
  EXPECT_FALSE(no_schema.Validate().ok());
}

TEST(ColumnBatchTest, ApproximateMemoryUsageTracksAppends) {
  Schema schema = TestSchema();
  ColumnBatch batch(&schema, 8);
  const uint64_t empty = batch.ApproximateMemoryUsage();
  for (int i = 0; i < 100; ++i) {
    batch.AppendTupleRow(
        Tuple{Value(i), Value("a string of some length " + std::to_string(i)),
              Value(0.5 * i)});
  }
  const uint64_t filled = batch.ApproximateMemoryUsage();
  // 100 rows × (~25B string arena + 8B i64 + 8B f64 + null lanes).
  EXPECT_GT(filled, empty + 100 * 30);
  batch.ComputeKeyHashes(1);
  // The hash lane is 8 bytes per row on top.
  EXPECT_GE(batch.ApproximateMemoryUsage(), filled + 100 * 8);
}

TEST(ColumnBatchTest, ApproximateMemoryUsageIsCapacityBasedAcrossReset) {
  // Capacity accounting (matching TupleStore/QGramIndex): a Reset keeps
  // the retained allocations, and the figure must say so rather than
  // dropping to near zero while the arena still holds its buffers.
  Schema schema = TestSchema();
  ColumnBatch batch(&schema, 8);
  for (int i = 0; i < 64; ++i) {
    batch.AppendTupleRow(Tuple{Value(i), Value("payload payload payload"),
                               Value(1.0)});
  }
  const uint64_t filled = batch.ApproximateMemoryUsage();
  batch.Reset(&schema);
  EXPECT_TRUE(batch.empty());
  EXPECT_GE(batch.ApproximateMemoryUsage(), filled / 2);
}

TEST(ColumnBatchTest, ToStringShowsRowsAndTruncates) {
  Schema schema({{"x", ValueType::kInt64}});
  ColumnBatch batch(&schema, 8);
  for (int i = 0; i < 7; ++i) {
    batch.AppendInt64(0, i);
    batch.CommitRow();
  }
  const std::string s = batch.ToString(2);
  EXPECT_NE(s.find("ColumnBatch(7/8)"), std::string::npos);
  EXPECT_NE(s.find("... 5 more"), std::string::npos);
}

}  // namespace
}  // namespace storage
}  // namespace aqp
