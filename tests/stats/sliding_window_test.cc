#include "stats/sliding_window.h"

#include <gtest/gtest.h>

#include <deque>

#include "common/random.h"

namespace aqp {
namespace stats {
namespace {

TEST(SlidingWindowTest, SumWithinWindow) {
  SlidingWindowCounter w(3);
  w.Advance(1);
  EXPECT_EQ(w.Sum(), 1u);
  w.Advance(2);
  EXPECT_EQ(w.Sum(), 3u);
  w.Advance(3);
  EXPECT_EQ(w.Sum(), 6u);
}

TEST(SlidingWindowTest, OldStepsRetire) {
  SlidingWindowCounter w(3);
  w.Advance(10);
  w.Advance(0);
  w.Advance(0);
  EXPECT_EQ(w.Sum(), 10u);
  w.Advance(0);  // the 10 falls out
  EXPECT_EQ(w.Sum(), 0u);
}

TEST(SlidingWindowTest, AddToCurrentAccumulates) {
  SlidingWindowCounter w(2);
  w.Advance(1);
  w.AddToCurrent(4);
  EXPECT_EQ(w.Sum(), 5u);
  w.Advance(0);
  EXPECT_EQ(w.Sum(), 5u);  // (1+4) still inside a window of 2
  w.Advance(0);
  EXPECT_EQ(w.Sum(), 0u);
}

TEST(SlidingWindowTest, DensityDividesByWindow) {
  SlidingWindowCounter w(100);
  for (int i = 0; i < 10; ++i) w.Advance(1);
  EXPECT_DOUBLE_EQ(w.Density(), 0.1);
}

TEST(SlidingWindowTest, WindowOfOne) {
  SlidingWindowCounter w(1);
  w.Advance(5);
  EXPECT_EQ(w.Sum(), 5u);
  w.Advance(2);
  EXPECT_EQ(w.Sum(), 2u);
}

TEST(SlidingWindowTest, ZeroWindowClampedToOne) {
  SlidingWindowCounter w(0);
  EXPECT_EQ(w.window(), 1u);
}

TEST(SlidingWindowTest, ResetClears) {
  SlidingWindowCounter w(4);
  w.Advance(3);
  w.Advance(4);
  w.Reset();
  EXPECT_EQ(w.Sum(), 0u);
  EXPECT_EQ(w.steps(), 0u);
  w.Advance(1);
  EXPECT_EQ(w.Sum(), 1u);
}

TEST(SlidingWindowTest, MatchesBruteForceRecount) {
  // Property check against a deque-based reference implementation.
  Rng rng(99);
  for (size_t window : {1u, 5u, 17u, 100u}) {
    SlidingWindowCounter w(window);
    std::deque<uint32_t> reference;
    for (int step = 0; step < 500; ++step) {
      const uint32_t events = static_cast<uint32_t>(rng.Uniform(0, 3));
      w.Advance(events);
      reference.push_back(events);
      if (reference.size() > window) reference.pop_front();
      uint64_t expected = 0;
      for (uint32_t e : reference) expected += e;
      ASSERT_EQ(w.Sum(), expected) << "window=" << window << " step=" << step;
    }
  }
}

}  // namespace
}  // namespace stats
}  // namespace aqp
