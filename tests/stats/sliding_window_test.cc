#include "stats/sliding_window.h"

#include <gtest/gtest.h>

#include <deque>

#include "common/random.h"

namespace aqp {
namespace stats {
namespace {

TEST(SlidingWindowTest, SumWithinWindow) {
  SlidingWindowCounter w(3);
  w.Advance(1);
  EXPECT_EQ(w.Sum(), 1u);
  w.Advance(2);
  EXPECT_EQ(w.Sum(), 3u);
  w.Advance(3);
  EXPECT_EQ(w.Sum(), 6u);
}

TEST(SlidingWindowTest, OldStepsRetire) {
  SlidingWindowCounter w(3);
  w.Advance(10);
  w.Advance(0);
  w.Advance(0);
  EXPECT_EQ(w.Sum(), 10u);
  w.Advance(0);  // the 10 falls out
  EXPECT_EQ(w.Sum(), 0u);
}

TEST(SlidingWindowTest, AddToCurrentAccumulates) {
  SlidingWindowCounter w(2);
  w.Advance(1);
  w.AddToCurrent(4);
  EXPECT_EQ(w.Sum(), 5u);
  w.Advance(0);
  EXPECT_EQ(w.Sum(), 5u);  // (1+4) still inside a window of 2
  w.Advance(0);
  EXPECT_EQ(w.Sum(), 0u);
}

TEST(SlidingWindowTest, PreAdvanceEventsSurviveExactlyWSteps) {
  // Events recorded before the first Advance() belong to the first
  // step: they must stay in the window through W advances and retire
  // at the (W+1)-th, exactly like events passed to the first Advance()
  // itself. They used to be retired one slot early.
  for (size_t window : {1u, 2u, 3u, 5u, 8u}) {
    SlidingWindowCounter w(window);
    w.AddToCurrent(7);
    w.Advance(0);  // step 1 absorbs the pre-advance events
    for (size_t step = 2; step <= window; ++step) {
      w.Advance(0);
      ASSERT_EQ(w.Sum(), 7u) << "window=" << window << " step=" << step;
    }
    w.Advance(0);  // step W+1: the first step leaves the window
    ASSERT_EQ(w.Sum(), 0u) << "window=" << window;
  }
}

TEST(SlidingWindowTest, PreAdvanceEventsMatchFirstAdvanceEvents) {
  // The two ways of attributing events to the first step are
  // equivalent: AddToCurrent-then-Advance(0) == Advance(events).
  SlidingWindowCounter a(4);
  SlidingWindowCounter b(4);
  a.AddToCurrent(3);
  a.Advance(2);  // first step holds 3 + 2
  b.Advance(5);
  for (int step = 0; step < 10; ++step) {
    ASSERT_EQ(a.Sum(), b.Sum()) << "step " << step;
    a.Advance(1);
    b.Advance(1);
  }
}

TEST(SlidingWindowTest, DensityDividesByWindow) {
  SlidingWindowCounter w(100);
  for (int i = 0; i < 10; ++i) w.Advance(1);
  EXPECT_DOUBLE_EQ(w.Density(), 0.1);
}

TEST(SlidingWindowTest, WindowOfOne) {
  SlidingWindowCounter w(1);
  w.Advance(5);
  EXPECT_EQ(w.Sum(), 5u);
  w.Advance(2);
  EXPECT_EQ(w.Sum(), 2u);
}

TEST(SlidingWindowTest, ZeroWindowClampedToOne) {
  SlidingWindowCounter w(0);
  EXPECT_EQ(w.window(), 1u);
}

TEST(SlidingWindowTest, ResetClears) {
  SlidingWindowCounter w(4);
  w.Advance(3);
  w.Advance(4);
  w.Reset();
  EXPECT_EQ(w.Sum(), 0u);
  EXPECT_EQ(w.steps(), 0u);
  w.Advance(1);
  EXPECT_EQ(w.Sum(), 1u);
}

TEST(SlidingWindowTest, MatchesBruteForceRecount) {
  // Property check against a deque-based reference implementation.
  Rng rng(99);
  for (size_t window : {1u, 5u, 17u, 100u}) {
    SlidingWindowCounter w(window);
    std::deque<uint32_t> reference;
    for (int step = 0; step < 500; ++step) {
      const uint32_t events = static_cast<uint32_t>(rng.Uniform(0, 3));
      w.Advance(events);
      reference.push_back(events);
      if (reference.size() > window) reference.pop_front();
      uint64_t expected = 0;
      for (uint32_t e : reference) expected += e;
      ASSERT_EQ(w.Sum(), expected) << "window=" << window << " step=" << step;
    }
  }
}

}  // namespace
}  // namespace stats
}  // namespace aqp
