#include "stats/special_functions.h"

#include <gtest/gtest.h>

#include <cmath>

namespace aqp {
namespace stats {
namespace {

TEST(LogBetaTest, KnownValues) {
  // B(1,1) = 1, B(2,3) = 1/12, B(0.5,0.5) = pi.
  EXPECT_NEAR(LogBeta(1, 1), 0.0, 1e-12);
  EXPECT_NEAR(LogBeta(2, 3), std::log(1.0 / 12.0), 1e-12);
  EXPECT_NEAR(LogBeta(0.5, 0.5), std::log(M_PI), 1e-12);
}

TEST(LogBetaTest, Symmetric) {
  EXPECT_NEAR(LogBeta(3.5, 7.25), LogBeta(7.25, 3.5), 1e-12);
}

TEST(LogBinomialCoefficientTest, SmallValues) {
  EXPECT_NEAR(LogBinomialCoefficient(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(LogBinomialCoefficient(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(LogBinomialCoefficient(10, 10), 0.0, 1e-12);
  EXPECT_NEAR(LogBinomialCoefficient(52, 5), std::log(2598960.0), 1e-9);
}

TEST(IncompleteBetaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, -0.5), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 1.5), 1.0);
}

TEST(IncompleteBetaTest, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1, 1, x), x, 1e-12);
  }
}

TEST(IncompleteBetaTest, PowerSpecialCase) {
  // I_x(a, 1) = x^a.
  EXPECT_NEAR(RegularizedIncompleteBeta(3, 1, 0.5), 0.125, 1e-12);
  // I_x(1, b) = 1 - (1-x)^b.
  EXPECT_NEAR(RegularizedIncompleteBeta(1, 3, 0.5), 1.0 - 0.125, 1e-12);
}

TEST(IncompleteBetaTest, SymmetryIdentity) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  for (double x : {0.05, 0.3, 0.62, 0.98}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(4.5, 2.25, x),
                1.0 - RegularizedIncompleteBeta(2.25, 4.5, 1.0 - x), 1e-10);
  }
}

TEST(IncompleteBetaTest, MonotoneInX) {
  double prev = 0.0;
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    const double v = RegularizedIncompleteBeta(6, 9, x);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

TEST(IncompleteBetaTest, LargeParametersStable) {
  // Median region of a big symmetric beta should be ~0.5.
  const double v = RegularizedIncompleteBeta(5e5, 5e5, 0.5);
  EXPECT_NEAR(v, 0.5, 1e-3);
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 1.0);
}

}  // namespace
}  // namespace stats
}  // namespace aqp
