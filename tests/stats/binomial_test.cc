#include "stats/binomial.h"

#include <gtest/gtest.h>

#include <cmath>

namespace aqp {
namespace stats {
namespace {

/// Direct-summation CDF for cross-checking (only viable for small n).
double NaiveCdf(uint64_t n, double p, int64_t k) {
  if (k < 0) return 0.0;
  Binomial b(n, p);
  double sum = 0.0;
  for (uint64_t i = 0; i <= std::min<uint64_t>(static_cast<uint64_t>(k), n);
       ++i) {
    sum += b.Pmf(i);
  }
  return std::min(sum, 1.0);
}

TEST(BinomialTest, MeanAndVariance) {
  Binomial b(100, 0.3);
  EXPECT_DOUBLE_EQ(b.Mean(), 30.0);
  EXPECT_DOUBLE_EQ(b.Variance(), 21.0);
}

TEST(BinomialTest, PmfSumsToOne) {
  Binomial b(50, 0.37);
  double sum = 0.0;
  for (uint64_t k = 0; k <= 50; ++k) sum += b.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST(BinomialTest, PmfKnownValues) {
  // P(X=2), X~bin(4, 0.5) = 6/16.
  EXPECT_NEAR(Binomial(4, 0.5).Pmf(2), 0.375, 1e-12);
  // P(X=0), X~bin(10, 0.1) = 0.9^10.
  EXPECT_NEAR(Binomial(10, 0.1).Pmf(0), std::pow(0.9, 10), 1e-12);
}

TEST(BinomialTest, PmfImpossibleOutcomes) {
  EXPECT_DOUBLE_EQ(Binomial(5, 0.5).Pmf(6), 0.0);
  EXPECT_DOUBLE_EQ(Binomial(5, 0.0).Pmf(1), 0.0);
  EXPECT_DOUBLE_EQ(Binomial(5, 0.0).Pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(Binomial(5, 1.0).Pmf(5), 1.0);
  EXPECT_DOUBLE_EQ(Binomial(5, 1.0).Pmf(4), 0.0);
}

TEST(BinomialTest, CdfMatchesDirectSummation) {
  for (uint64_t n : {1u, 7u, 25u, 100u, 400u}) {
    for (double p : {0.01, 0.2, 0.5, 0.85, 0.99}) {
      Binomial b(n, p);
      for (int64_t k = -1; k <= static_cast<int64_t>(n);
           k += std::max<int64_t>(1, static_cast<int64_t>(n) / 7)) {
        EXPECT_NEAR(b.Cdf(k), NaiveCdf(n, p, k), 1e-9)
            << "n=" << n << " p=" << p << " k=" << k;
      }
    }
  }
}

TEST(BinomialTest, CdfBoundaries) {
  Binomial b(10, 0.4);
  EXPECT_DOUBLE_EQ(b.Cdf(-1), 0.0);
  EXPECT_DOUBLE_EQ(b.Cdf(10), 1.0);
  EXPECT_DOUBLE_EQ(b.Cdf(1000), 1.0);
}

TEST(BinomialTest, CdfDegenerateP) {
  EXPECT_DOUBLE_EQ(Binomial(10, 0.0).Cdf(0), 1.0);
  EXPECT_DOUBLE_EQ(Binomial(10, 1.0).Cdf(9), 0.0);
  EXPECT_DOUBLE_EQ(Binomial(10, 1.0).Cdf(10), 1.0);
}

TEST(BinomialTest, CdfMonotoneInK) {
  Binomial b(200, 0.35);
  double prev = -1.0;
  for (int64_t k = 0; k <= 200; k += 5) {
    const double v = b.Cdf(k);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

TEST(BinomialTest, ComplementIdentity) {
  // P(X <= k; n, p) = P(Y >= n-k; n, 1-p) = 1 - P(Y <= n-k-1; n, 1-p).
  Binomial b(120, 0.3);
  Binomial mirror(120, 0.7);
  for (int64_t k = 0; k <= 120; k += 13) {
    EXPECT_NEAR(b.Cdf(k), 1.0 - mirror.Cdf(120 - k - 1), 1e-9) << k;
  }
}

TEST(BinomialTest, LargeNStable) {
  // ~N(np, npq): CDF at the mean ~0.5, three sigmas out ~0.999.
  const uint64_t n = 1000000;
  const double p = 0.1;
  Binomial b(n, p);
  const double mean = b.Mean();
  const double sd = std::sqrt(b.Variance());
  EXPECT_NEAR(b.Cdf(static_cast<int64_t>(mean)), 0.5, 0.01);
  EXPECT_GT(b.Cdf(static_cast<int64_t>(mean + 3 * sd)), 0.995);
  EXPECT_LT(b.Cdf(static_cast<int64_t>(mean - 3 * sd)), 0.005);
}

TEST(BinomialTest, QuantileInvertsCdf) {
  Binomial b(500, 0.25);
  for (double q : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    const uint64_t k = b.Quantile(q);
    EXPECT_GE(b.Cdf(static_cast<int64_t>(k)), q);
    if (k > 0) {
      EXPECT_LT(b.Cdf(static_cast<int64_t>(k) - 1), q);
    }
  }
}

TEST(BinomialTest, LowerTailPValueDetectsShortfall) {
  // Expect ~500 matches; observing 400 should be a glaring outlier.
  const double p_ok = BinomialLowerTailPValue(495, 1000, 0.5);
  const double p_bad = BinomialLowerTailPValue(400, 1000, 0.5);
  EXPECT_GT(p_ok, 0.05);
  EXPECT_LT(p_bad, 1e-6);
}

TEST(BinomialTest, LowerTailPValueAtFullCount) {
  EXPECT_DOUBLE_EQ(BinomialLowerTailPValue(1000, 1000, 0.5), 1.0);
}

}  // namespace
}  // namespace stats
}  // namespace aqp
