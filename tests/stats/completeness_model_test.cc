#include "stats/completeness_model.h"

#include <gtest/gtest.h>

namespace aqp {
namespace stats {
namespace {

JoinProgress MakeProgress(uint64_t parents, uint64_t children,
                          uint64_t matched, bool exhausted = false) {
  JoinProgress p;
  p.parents_scanned = parents;
  p.children_scanned = children;
  p.children_matched = matched;
  p.parent_exhausted = exhausted;
  return p;
}

TEST(ParentChildModelTest, ExpectedMatchesScalesWithProgress) {
  ParentChildBinomialModel model(1000);
  // Half the parents scanned: each child has p=0.5 of having matched.
  EXPECT_DOUBLE_EQ(model.ExpectedMatches(MakeProgress(500, 200, 0)), 100.0);
  // All parents scanned: every clean child should have matched.
  EXPECT_DOUBLE_EQ(model.ExpectedMatches(MakeProgress(1000, 200, 0)), 200.0);
}

TEST(ParentChildModelTest, ParentFractionClamped) {
  ParentChildBinomialModel model(100);
  // More parents scanned than |R| claims (duplicates): p clamps to 1.
  EXPECT_DOUBLE_EQ(model.ExpectedMatches(MakeProgress(150, 80, 0)), 80.0);
}

TEST(ParentChildModelTest, HealthyRunIsNotSignificant) {
  ParentChildBinomialModel model(1000);
  const auto p = model.ShortfallPValue(MakeProgress(500, 400, 200));
  ASSERT_TRUE(p.has_value());
  EXPECT_GT(*p, 0.05);
}

TEST(ParentChildModelTest, ShortfallIsSignificant) {
  ParentChildBinomialModel model(1000);
  // Expected 200, observed 140: a massive lower-tail outlier.
  const auto p = model.ShortfallPValue(MakeProgress(500, 400, 140));
  ASSERT_TRUE(p.has_value());
  EXPECT_LT(*p, 1e-6);
}

TEST(ParentChildModelTest, CannotAssessWithoutParentSize) {
  ParentChildBinomialModel model(0);
  EXPECT_FALSE(model.ShortfallPValue(MakeProgress(500, 400, 140)).has_value());
}

TEST(ParentChildModelTest, LearnsSizeAtParentExhaustion) {
  ParentChildBinomialModel model(0);
  const auto p =
      model.ShortfallPValue(MakeProgress(800, 400, 140, /*exhausted=*/true));
  ASSERT_TRUE(p.has_value());
  // Parent fully scanned: p(match) = 1, so 140/400 is catastrophic.
  EXPECT_LT(*p, 1e-9);
}

TEST(ParentChildModelTest, NoChildrenNoAssessment) {
  ParentChildBinomialModel model(100);
  EXPECT_FALSE(model.ShortfallPValue(MakeProgress(50, 0, 0)).has_value());
}

TEST(FixedRateModelTest, ExpectedMatches) {
  FixedRateModel model(0.8, 0);
  EXPECT_DOUBLE_EQ(model.ExpectedMatches(MakeProgress(0, 100, 0)), 80.0);
  FixedRateModel scaled(0.8, 200);
  EXPECT_DOUBLE_EQ(scaled.ExpectedMatches(MakeProgress(100, 100, 0)), 40.0);
}

TEST(FixedRateModelTest, DetectsShortfall) {
  FixedRateModel model(0.9, 0);
  const auto healthy = model.ShortfallPValue(MakeProgress(0, 1000, 895));
  const auto broken = model.ShortfallPValue(MakeProgress(0, 1000, 700));
  ASSERT_TRUE(healthy.has_value());
  ASSERT_TRUE(broken.has_value());
  EXPECT_GT(*healthy, 0.05);
  EXPECT_LT(*broken, 1e-9);
}

TEST(ModelNamesAreStable, Names) {
  EXPECT_EQ(ParentChildBinomialModel(10).name(), "parent_child_binomial");
  EXPECT_EQ(FixedRateModel(0.5, 0).name(), "fixed_rate");
}

}  // namespace
}  // namespace stats
}  // namespace aqp
