#include "stats/online_stats.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace aqp {
namespace stats {
namespace {

TEST(OnlineStatsTest, EmptyAccumulator) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 0.0);
  EXPECT_DOUBLE_EQ(s.Max(), 0.0);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats s;
  s.Add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.Mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 4.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
}

TEST(OnlineStatsTest, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  // Sample variance of this classic dataset: 32/7.
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
}

TEST(OnlineStatsTest, MergeEqualsSequential) {
  Rng rng(5);
  OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 100.0;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.Min(), all.Min());
  EXPECT_DOUBLE_EQ(a.Max(), all.Max());
}

TEST(OnlineStatsTest, MergeWithEmpty) {
  OnlineStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
  OnlineStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.Mean(), 2.0);
}

}  // namespace
}  // namespace stats
}  // namespace aqp
