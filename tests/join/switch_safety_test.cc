// State-transfer safety (§2.1): switching operators at quiescent points
// must never lose index contents — after any switch sequence, a caught-
// up index is identical to one built fresh over the same store.

#include <gtest/gtest.h>

#include "common/random.h"
#include "join/hybrid_core.h"

namespace aqp {
namespace join {
namespace {

using exec::Side;
using storage::Tuple;
using storage::TupleId;
using storage::Value;

JoinSpec Spec() {
  JoinSpec spec;
  spec.sim_threshold = 0.8;
  return spec;
}

std::string RandomLocation(Rng* rng) {
  return "LOC " + rng->RandomString(8, "ABCDEFGH") + " " +
         rng->RandomString(10, "LMNOPQRS");
}

class SwitchSafetyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SwitchSafetyTest, CaughtUpIndexEqualsFreshIndex) {
  Rng rng(GetParam());
  HybridJoinCore core(Spec());
  // Feed tuples with random interleaving and random mode switches.
  for (int step = 0; step < 300; ++step) {
    const Side side = rng.Bernoulli(0.5) ? Side::kLeft : Side::kRight;
    core.ProcessTuple(side, Tuple{Value(RandomLocation(&rng))});
    if (rng.Bernoulli(0.05)) {
      core.SetProbeMode(side, rng.Bernoulli(0.5) ? ProbeMode::kExact
                                                 : ProbeMode::kApproximate);
    }
  }
  // Force everything live, then compare against fresh builds.
  core.SetProbeMode(Side::kLeft, ProbeMode::kApproximate);
  core.SetProbeMode(Side::kRight, ProbeMode::kApproximate);
  core.SetProbeMode(Side::kLeft, ProbeMode::kExact);
  core.SetProbeMode(Side::kRight, ProbeMode::kExact);

  for (Side side : {Side::kLeft, Side::kRight}) {
    const storage::TupleStore& store = core.store(side);
    ASSERT_EQ(core.exact_index(side).watermark(), store.size());
    ASSERT_EQ(core.qgram_index(side).watermark(), store.size());

    ExactIndex fresh_exact;
    fresh_exact.CatchUpWith(store);
    QGramIndex fresh_qgrams(Spec().qgram);
    fresh_qgrams.CatchUpWith(store);

    EXPECT_EQ(core.exact_index(side).distinct_keys(),
              fresh_exact.distinct_keys());
    EXPECT_EQ(core.qgram_index(side).distinct_grams(),
              fresh_qgrams.distinct_grams());
    for (size_t i = 0; i < store.size(); ++i) {
      const auto id = static_cast<TupleId>(i);
      // Exact buckets identical.
      const auto a = core.exact_index(side).Lookup(store.JoinKey(id));
      const auto b = fresh_exact.Lookup(store.JoinKey(id));
      ASSERT_FALSE(a.empty());
      EXPECT_EQ(a, b);
      // Gram sets identical.
      EXPECT_EQ(core.qgram_index(side).GramSetOf(id),
                fresh_qgrams.GramSetOf(id));
    }
  }
}

TEST_P(SwitchSafetyTest, ExactMatchesNeverLostBySwitching) {
  // Pairs that match exactly are found regardless of the mode at probe
  // time (equality implies similarity 1 >= any threshold <= 1): the
  // hybrid result must contain every all-exact pair.
  Rng rng(GetParam() ^ 0xdead);
  // A pool with plenty of duplicates so exact pairs are common.
  std::vector<std::string> pool;
  for (int i = 0; i < 12; ++i) pool.push_back(RandomLocation(&rng));

  HybridJoinCore hybrid(Spec());
  HybridJoinCore exact_only(Spec());
  std::vector<std::pair<Side, std::string>> feed;
  for (int step = 0; step < 200; ++step) {
    feed.emplace_back(rng.Bernoulli(0.5) ? Side::kLeft : Side::kRight,
                      pool[rng.Index(pool.size())]);
  }
  size_t hybrid_exact_pairs = 0;
  for (const auto& [side, value] : feed) {
    if (rng.Bernoulli(0.1)) {
      hybrid.SetProbeMode(side, rng.Bernoulli(0.5)
                                    ? ProbeMode::kExact
                                    : ProbeMode::kApproximate);
    }
    for (const JoinMatch& m : hybrid.ProcessTuple(side, Tuple{Value(value)})) {
      if (m.kind == MatchKind::kExact) ++hybrid_exact_pairs;
    }
    exact_only.ProcessTuple(side, Tuple{Value(value)});
  }
  EXPECT_GE(hybrid_exact_pairs, exact_only.pairs_emitted());
  EXPECT_GE(hybrid.pairs_emitted(), exact_only.pairs_emitted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwitchSafetyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace join
}  // namespace aqp
