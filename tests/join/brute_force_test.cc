#include "join/brute_force.h"

#include <gtest/gtest.h>

namespace aqp {
namespace join {
namespace {

using storage::Relation;
using storage::Schema;
using storage::Tuple;
using storage::Value;
using storage::ValueType;

Relation Strings(const std::vector<std::string>& values) {
  Relation r(Schema({{"s", ValueType::kString}}));
  for (const auto& v : values) {
    EXPECT_TRUE(r.Append(Tuple{Value(v)}).ok());
  }
  return r;
}

JoinSpec Spec(double threshold) {
  JoinSpec spec;
  spec.sim_threshold = threshold;
  return spec;
}

TEST(BruteForceExactTest, FindsAllEqualPairs) {
  const Relation left = Strings({"A", "B", "A"});
  const Relation right = Strings({"A", "C"});
  const auto pairs = BruteForceExactJoin(left, right, Spec(0.8));
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (BrutePair{0, 0, 1.0}));
  EXPECT_EQ(pairs[1], (BrutePair{2, 0, 1.0}));
}

TEST(BruteForceExactTest, EmptyInputs) {
  const Relation left = Strings({});
  const Relation right = Strings({"A"});
  EXPECT_TRUE(BruteForceExactJoin(left, right, Spec(0.8)).empty());
  EXPECT_TRUE(BruteForceExactJoin(right, left, Spec(0.8)).empty());
}

TEST(BruteForceSimilarityTest, SupersetOfExact) {
  const Relation left =
      Strings({"SANTA CRISTINA VALGARDENA", "MONTE BIANCO TERME"});
  const Relation right =
      Strings({"SANTA CRISTINA VALGARDENA", "SANTA CRISTINx VALGARDENA"});
  const auto exact = BruteForceExactJoin(left, right, Spec(0.8));
  const auto similar = BruteForceSimilarityJoin(left, right, Spec(0.8));
  EXPECT_EQ(exact.size(), 1u);
  EXPECT_GE(similar.size(), 2u);  // equal pair + the variant pair
  for (const BrutePair& p : exact) {
    EXPECT_NE(std::find(similar.begin(), similar.end(), p), similar.end());
  }
}

TEST(BruteForceSimilarityTest, ThresholdOneKeepsIdenticalGramSetsOnly) {
  const Relation left = Strings({"ABCDEF"});
  const Relation right = Strings({"ABCDEF", "ABCDEG"});
  const auto pairs = BruteForceSimilarityJoin(left, right, Spec(1.0));
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].right_row, 0u);
}

TEST(BruteForceSimilarityTest, ThresholdZeroMatchesEverythingNonDisjoint) {
  const Relation left = Strings({"AAA"});
  const Relation right = Strings({"BBB"});
  // Even at threshold 0 the pairs are produced (sim >= 0 trivially).
  const auto pairs = BruteForceSimilarityJoin(left, right, Spec(0.0));
  EXPECT_EQ(pairs.size(), 1u);
}

TEST(BruteForceSimilarityTest, GramlessStringsMatchByEquality) {
  JoinSpec spec = Spec(0.5);
  spec.qgram.pad = false;  // "AB" has no grams at q=3
  const Relation left = Strings({"AB"});
  const Relation right = Strings({"AB", "XY"});
  const auto pairs = BruteForceSimilarityJoin(left, right, spec);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].right_row, 0u);
  EXPECT_DOUBLE_EQ(pairs[0].similarity, 1.0);
}

}  // namespace
}  // namespace join
}  // namespace aqp
