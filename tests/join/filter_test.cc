// Unit tests for the approximate-match filter predicates. The filters
// must be *exactly* as permissive as the verifier: each bound is
// probed at its boundary value (the issue's |g_s - g_p| = g - k edge)
// and cross-checked against the similarity function the verifier
// evaluates.

#include "join/filter.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "text/gram_order.h"
#include "text/similarity.h"

namespace aqp {
namespace join {
namespace {

using text::SimilarityMeasure;

constexpr SimilarityMeasure kAllMeasures[] = {
    SimilarityMeasure::kJaccard, SimilarityMeasure::kDice,
    SimilarityMeasure::kCosine, SimilarityMeasure::kOverlap};

TEST(LengthFilterTest, BandEdgesAtExactBoundary) {
  // Jaccard, g = 40, θ = 0.85: k = ceil(0.85·40) = 34. The lower band
  // edge sits at |g_s - g_p| = g - k exactly: g_s = k passes (best
  // case 34/40 = 0.85), g_s = k - 1 fails.
  const size_t g = 40;
  const double theta = 0.85;
  const size_t k =
      text::MinOverlapForThreshold(SimilarityMeasure::kJaccard, g, theta);
  ASSERT_EQ(k, 34u);
  EXPECT_TRUE(LengthCompatible(SimilarityMeasure::kJaccard, g, k, theta));
  EXPECT_FALSE(
      LengthCompatible(SimilarityMeasure::kJaccard, g, k - 1, theta));
  const GramCountBand band =
      LengthBandFor(SimilarityMeasure::kJaccard, g, theta);
  EXPECT_EQ(band.lo, k);
  EXPECT_EQ(g - band.lo, g - k);  // the |g_s - g_p| = g - k edge
  // Upper edge: 40/47 ≈ 0.851 passes, 40/48 ≈ 0.833 fails. Note 47 >
  // g + (g - k): the verifier-derived band is *wider* than the naive
  // symmetric |g_s - g_p| <= g - k band — binding to the similarity
  // function is what keeps the filter exact instead of lossy.
  EXPECT_EQ(band.hi, 47u);
  EXPECT_TRUE(band.Contains(47));
  EXPECT_FALSE(band.Contains(48));
}

TEST(LengthFilterTest, BandAgreesWithVerifierForAllMeasures) {
  for (SimilarityMeasure measure : kAllMeasures) {
    for (size_t g : {1u, 2u, 5u, 17u, 40u, 120u}) {
      for (double theta : {0.5, 0.85, 0.95, 1.0}) {
        const GramCountBand band = LengthBandFor(measure, g, theta);
        // Every size up to well past the band must agree with the
        // verifier's best-case decision.
        const size_t scan_to =
            band.hi == std::numeric_limits<size_t>::max()
                ? 4 * g + 8
                : band.hi + 8;
        for (size_t s = 1; s <= scan_to; ++s) {
          const bool feasible = LengthCompatible(measure, g, s, theta);
          EXPECT_EQ(band.Contains(s), feasible)
              << "measure=" << text::SimilarityMeasureName(measure)
              << " g=" << g << " theta=" << theta << " s=" << s;
        }
      }
    }
  }
}

TEST(LengthFilterTest, OverlapCoefficientBandIsUnboundedAbove) {
  const GramCountBand band =
      LengthBandFor(SimilarityMeasure::kOverlap, 10, 0.85);
  EXPECT_EQ(band.lo, 1u);
  EXPECT_EQ(band.hi, std::numeric_limits<size_t>::max());
}

TEST(LengthFilterTest, EmptyProbeBandContainsNothing) {
  const GramCountBand band =
      LengthBandFor(SimilarityMeasure::kJaccard, 0, 0.85);
  EXPECT_FALSE(band.Contains(0));
  EXPECT_FALSE(band.Contains(1));
}

TEST(PrefixLengthTest, MatchesInsertPhaseRule) {
  for (SimilarityMeasure measure : kAllMeasures) {
    for (size_t g : {1u, 2u, 10u, 40u}) {
      for (double theta : {0.5, 0.85, 1.0}) {
        const size_t k = text::MinOverlapForThreshold(measure, g, theta);
        ASSERT_LE(k, g);
        EXPECT_EQ(PrefixLengthFor(measure, g, theta), g - k + 1);
      }
    }
  }
  EXPECT_EQ(PrefixLengthFor(SimilarityMeasure::kJaccard, 0, 0.85), 0u);
}

TEST(MinPairOverlapTest, SmallestPassingOverlap) {
  for (SimilarityMeasure measure : kAllMeasures) {
    for (size_t a : {3u, 10u, 40u}) {
      for (size_t b : {3u, 12u, 40u}) {
        for (double theta : {0.5, 0.85, 1.0}) {
          const auto required = MinPairOverlap(measure, a, b, theta);
          const size_t max_overlap = std::min(a, b);
          if (!required.has_value()) {
            EXPECT_LT(text::SetSimilarityFromOverlap(measure, a, b,
                                                     max_overlap),
                      theta);
            continue;
          }
          EXPECT_GE(text::SetSimilarityFromOverlap(measure, a, b, *required),
                    theta);
          if (*required > 0) {
            EXPECT_LT(text::SetSimilarityFromOverlap(measure, a, b,
                                                     *required - 1),
                      theta);
          }
        }
      }
    }
  }
}

TEST(MinPairOverlapTest, InfeasiblePairIsNullopt) {
  // Jaccard of a 10-set and a 40-set is at most 10/40 = 0.25.
  EXPECT_FALSE(
      MinPairOverlap(SimilarityMeasure::kJaccard, 10, 40, 0.85).has_value());
}

TEST(PositionalFilterTest, BoundaryExact) {
  // probe size 10 at position 2 leaves 7 more probe grams; stored size
  // 12 at position 6 leaves 5 more: overlap <= 1 + min(7, 5) = 6.
  EXPECT_TRUE(PositionalCompatible(10, 2, 12, 6, 6));
  EXPECT_FALSE(PositionalCompatible(10, 2, 12, 6, 7));
  // Last gram on both sides: only the discovered gram can be shared.
  EXPECT_TRUE(PositionalCompatible(10, 9, 12, 11, 1));
  EXPECT_FALSE(PositionalCompatible(10, 9, 12, 11, 2));
}

TEST(FilterOptionsTest, LabelsAndAny) {
  ApproxFilterOptions filter;
  EXPECT_FALSE(filter.any());
  EXPECT_EQ(filter.Label(), "none");
  filter.length = true;
  EXPECT_TRUE(filter.any());
  EXPECT_EQ(filter.Label(), "length");
  filter.prefix = true;
  filter.positional = true;
  EXPECT_EQ(filter.Label(), "length+prefix+positional");
  EXPECT_TRUE(filter.Validate().ok());
}

TEST(GramOrderTest, DefaultIsKeyOrder) {
  const text::GramOrder order;
  EXPECT_TRUE(order.Less(1, 2));
  EXPECT_FALSE(order.Less(2, 1));
  EXPECT_EQ(order.distinct(), 0u);
}

TEST(GramOrderTest, SampledFrequenciesRankRareFirst) {
  text::GramOrder order;
  order.AddFrequency(7, 100);
  order.AddFrequency(3, 1);
  // Key 7 is numerically larger but frequent; key 3 rare. Rarest
  // first: 3 < 7. An unseen key (frequency 0) precedes both.
  EXPECT_TRUE(order.Less(3, 7));
  EXPECT_TRUE(order.Less(99, 3));
  // Ties broken by key, keeping the order total.
  order.AddFrequency(5, 1);
  EXPECT_TRUE(order.Less(3, 5));
}

TEST(GramOrderTest, AddSampleCountsDistinctGramsPerString) {
  text::QGramOptions q3;
  text::GramOrder order;
  order.AddSample("AAAA", q3);  // "AAA" appears twice but is one gram
  const auto grams = text::GramSet::Of("AAAA", q3);
  for (text::GramKey key : grams.grams()) {
    EXPECT_EQ(order.FrequencyOf(key), 1u);
  }
  order.AddSample("AAAA", q3);
  for (text::GramKey key : grams.grams()) {
    EXPECT_EQ(order.FrequencyOf(key), 2u);
  }
}

}  // namespace
}  // namespace aqp
}  // namespace join
