#include "join/sshjoin.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "exec/scan.h"
#include "join/brute_force.h"

namespace aqp {
namespace join {
namespace {

using storage::Relation;
using storage::Schema;
using storage::Tuple;
using storage::Value;
using storage::ValueType;

Relation Strings(const std::vector<std::string>& values) {
  Relation r(Schema({{"s", ValueType::kString}}));
  for (const auto& v : values) {
    EXPECT_TRUE(r.Append(Tuple{Value(v)}).ok());
  }
  return r;
}

/// Runs SSHJoin and returns the matched (left_value, right_value)
/// multiset for comparison with the brute-force oracle.
std::multiset<std::pair<std::string, std::string>> RunSSHJoin(
    const Relation& left, const Relation& right, double threshold) {
  exec::RelationScan ls(&left);
  exec::RelationScan rs(&right);
  SymmetricJoinOptions options;
  options.spec.sim_threshold = threshold;
  SSHJoin join(&ls, &rs, options);
  auto result = exec::CollectAll(&join);
  EXPECT_TRUE(result.ok());
  std::multiset<std::pair<std::string, std::string>> pairs;
  for (const Tuple& row : result->rows()) {
    pairs.emplace(row.at(0).AsString(), row.at(1).AsString());
  }
  return pairs;
}

std::multiset<std::pair<std::string, std::string>> OraclePairs(
    const Relation& left, const Relation& right, double threshold) {
  JoinSpec spec;
  spec.sim_threshold = threshold;
  std::multiset<std::pair<std::string, std::string>> pairs;
  for (const BrutePair& p : BruteForceSimilarityJoin(left, right, spec)) {
    pairs.emplace(left.row(p.left_row).at(0).AsString(),
                  right.row(p.right_row).at(0).AsString());
  }
  return pairs;
}

TEST(SSHJoinTest, FindsVariantPairs) {
  const Relation left = Strings({"TAA BZ SANTA CRISTINA VALGARDENA"});
  const Relation right = Strings({"TAA BZ SANTA CRISTINx VALGARDENA"});
  const auto pairs = RunSSHJoin(left, right, 0.8);
  EXPECT_EQ(pairs.size(), 1u);
}

TEST(SSHJoinTest, MatchesBruteForceOracleMixedPool) {
  const Relation left = Strings({
      "TAA BZ SANTA CRISTINA VALGARDENA",
      "LOM MI VILLA BORGHESE SUL NAVIGLIO",
      "VEN VE CASTEL NUOVO DEL MONTE",
      "PIE TO MONTE VERDE SUPERIORE",
  });
  const Relation right = Strings({
      "TAA BZ SANTA CRISTINx VALGARDENA",   // variant of left[0]
      "LOM MI VILLA BORGHESE SUL NAVIGLIO", // equal to left[1]
      "SIC PA ROCCA MARITTIMA DEL SUD",     // unrelated
      "VEN VE CASTEL NUOVo DEL MONTE",      // variant of left[2]
  });
  for (double threshold : {0.6, 0.75, 0.85, 0.95}) {
    EXPECT_EQ(RunSSHJoin(left, right, threshold),
              OraclePairs(left, right, threshold))
        << "threshold " << threshold;
  }
}

TEST(SSHJoinTest, ExactDuplicatesCrossProduct) {
  const Relation left = Strings({"SAME LOCATION STRING", "SAME LOCATION STRING"});
  const Relation right = Strings({"SAME LOCATION STRING"});
  const auto pairs = RunSSHJoin(left, right, 0.9);
  EXPECT_EQ(pairs.size(), 2u);
}

TEST(SSHJoinTest, CoreCountsKinds) {
  const Relation left = Strings({"SANTA CRISTINA VALGARDENA TERME"});
  const Relation right = Strings({"SANTA CRISTINA VALGARDENA TERME",
                                  "SANTA CRISTINx VALGARDENA TERME"});
  exec::RelationScan ls(&left);
  exec::RelationScan rs(&right);
  SymmetricJoinOptions options;
  options.spec.sim_threshold = 0.8;
  SSHJoin join(&ls, &rs, options);
  ASSERT_TRUE(exec::CountAll(&join).ok());
  EXPECT_EQ(join.core().exact_pairs(), 1u);
  EXPECT_EQ(join.core().approximate_pairs(), 1u);
  EXPECT_GT(join.core().approx_probe_stats().grams, 0u);
}

TEST(SSHJoinTest, TinyThresholdMatchesOracle) {
  // With a tiny threshold, k=1: any shared gram is a candidate; the
  // verifier then applies the exact coefficient.
  const Relation left = Strings({"AAA BBB", "CCC DDD"});
  const Relation right = Strings({"BBB AAA", "EEE FFF"});
  EXPECT_EQ(RunSSHJoin(left, right, 0.05), OraclePairs(left, right, 0.05));
}

TEST(SSHJoinTest, ThresholdZeroRejectedAtOpen) {
  // A gram-index join cannot express "similarity >= 0" (a cross join):
  // the spec rejects it.
  const Relation left = Strings({"A"});
  const Relation right = Strings({"A"});
  exec::RelationScan ls(&left);
  exec::RelationScan rs(&right);
  SymmetricJoinOptions options;
  options.spec.sim_threshold = 0.0;
  SSHJoin join(&ls, &rs, options);
  EXPECT_TRUE(join.Open().IsInvalidArgument());
}

TEST(SSHJoinTest, NoPairsBelowThresholdEmitted) {
  const Relation left = Strings({"COMPLETELY DISTINCT ALPHA"});
  const Relation right = Strings({"TOTALLY OTHER OMEGA ZZZ"});
  const auto pairs = RunSSHJoin(left, right, 0.9);
  EXPECT_TRUE(pairs.empty());
}

TEST(SSHJoinTest, SimilarityColumnCarriesCoefficient) {
  const Relation left = Strings({"SANTA CRISTINA VALGARDENA IN COLLE"});
  const Relation right = Strings({"SANTA CRISTINx VALGARDENA IN COLLE"});
  exec::RelationScan ls(&left);
  exec::RelationScan rs(&right);
  SymmetricJoinOptions options;
  options.spec.sim_threshold = 0.8;
  options.emit_similarity = true;
  SSHJoin join(&ls, &rs, options);
  auto result = exec::CollectAll(&join);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  const double sim = result->row(0).at(2).AsDouble();
  EXPECT_GE(sim, 0.8);
  EXPECT_LT(sim, 1.0);
  // Must equal the directly computed Jaccard.
  const double expected = text::Jaccard(
      text::GramSet::Of(left.row(0).at(0).AsString(), options.spec.qgram),
      text::GramSet::Of(right.row(0).at(0).AsString(), options.spec.qgram));
  EXPECT_DOUBLE_EQ(sim, expected);
}

TEST(SSHJoinTest, DiceMeasureSupported) {
  const Relation left = Strings({"SANTA CRISTINA VALGARDENA"});
  const Relation right = Strings({"SANTA CRISTINx VALGARDENA"});
  exec::RelationScan ls(&left);
  exec::RelationScan rs(&right);
  SymmetricJoinOptions options;
  options.spec.measure = text::SimilarityMeasure::kDice;
  options.spec.sim_threshold = 0.88;  // Dice is more forgiving than Jaccard
  SSHJoin join(&ls, &rs, options);
  auto count = exec::CountAll(&join);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
}

}  // namespace
}  // namespace join
}  // namespace aqp
