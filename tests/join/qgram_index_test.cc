#include "join/qgram_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "join/filter.h"
#include "storage/tuple_store.h"

namespace aqp {
namespace join {
namespace {

using storage::Tuple;
using storage::TupleStore;
using storage::Value;

text::QGramOptions Q3() {
  text::QGramOptions o;
  o.q = 3;
  return o;
}

TEST(QGramIndexTest, PostingsContainInsertingTuples) {
  TupleStore store(0);
  store.Add(Tuple{Value("SANTA")});
  store.Add(Tuple{Value("SANTO")});
  QGramIndex index(Q3());
  EXPECT_EQ(index.CatchUpWith(store), 2u);

  // Shared gram "SAN" should list both tuples.
  const auto grams = text::ExtractGramSequence("SANTA", Q3());
  const auto* postings = index.Postings(grams[2]);  // "SAN"
  ASSERT_NE(postings, nullptr);
  EXPECT_EQ(postings->size(), 2u);
  EXPECT_EQ(index.Frequency(grams[2]), 2u);
}

TEST(QGramIndexTest, PostingsAreDeduplicatedPerTuple) {
  TupleStore store(0);
  store.Add(Tuple{Value("AAAAAA")});  // "AAA" occurs many times
  QGramIndex index(Q3());
  index.CatchUpWith(store);
  const auto set = text::GramSet::Of("AAAAAA", Q3());
  for (text::GramKey key : set.grams()) {
    const auto* postings = index.Postings(key);
    ASSERT_NE(postings, nullptr);
    EXPECT_EQ(postings->size(), 1u) << "gram duplicated in posting list";
  }
}

TEST(QGramIndexTest, GramSetSizesStored) {
  TupleStore store(0);
  store.Add(Tuple{Value("SANTA")});
  QGramIndex index(Q3());
  index.CatchUpWith(store);
  const auto set = text::GramSet::Of("SANTA", Q3());
  EXPECT_EQ(index.GramSetSize(0), set.size());
  EXPECT_EQ(index.GramSetOf(0), set);
}

TEST(QGramIndexTest, UnknownGramHasZeroFrequency) {
  QGramIndex index(Q3());
  EXPECT_EQ(index.Frequency(0xFFFFFFFFull), 0u);
  EXPECT_EQ(index.Postings(0xFFFFFFFFull), nullptr);
}

TEST(QGramIndexTest, IncrementalCatchUpMatchesFreshBuild) {
  TupleStore store(0);
  const std::vector<std::string> values = {"SANTA CRISTINA", "MONTE BIANCO",
                                           "VILLA ROSSA", "SANTA LUCIA",
                                           "BORGO SAN LORENZO"};
  QGramIndex incremental(Q3());
  for (const std::string& v : values) {
    store.Add(Tuple{Value(v)});
    incremental.CatchUpWith(store);  // catch up one at a time
  }
  QGramIndex fresh(Q3());
  fresh.CatchUpWith(store);  // all at once

  EXPECT_EQ(incremental.watermark(), fresh.watermark());
  EXPECT_EQ(incremental.distinct_grams(), fresh.distinct_grams());
  for (size_t i = 0; i < values.size(); ++i) {
    const auto id = static_cast<storage::TupleId>(i);
    EXPECT_EQ(incremental.GramSetOf(id), fresh.GramSetOf(id));
    for (text::GramKey key : fresh.GramSetOf(id).grams()) {
      ASSERT_NE(incremental.Postings(key), nullptr);
      EXPECT_EQ(*incremental.Postings(key), *fresh.Postings(key));
    }
  }
}

TEST(QGramIndexTest, EmptyGramTuplesTracked) {
  text::QGramOptions unpadded = Q3();
  unpadded.pad = false;
  TupleStore store(0);
  store.Add(Tuple{Value("AB")});  // shorter than q: no grams
  store.Add(Tuple{Value("ABCDEF")});
  QGramIndex index(unpadded);
  index.CatchUpWith(store);
  ASSERT_EQ(index.empty_gram_tuples().size(), 1u);
  EXPECT_EQ(index.empty_gram_tuples()[0], 0u);
}

TEST(QGramIndexTest, AveragePostingLength) {
  TupleStore store(0);
  store.Add(Tuple{Value("ABC")});
  QGramIndex index(Q3());
  index.CatchUpWith(store);
  // One tuple: every posting list has length 1.
  EXPECT_DOUBLE_EQ(index.AveragePostingLength(), 1.0);
}

TEST(QGramIndexTest, SpaceGrowsWithGramCount) {
  // §2.3: q-gram index space is ~(|jA|+q-1) pointers per tuple versus
  // one for the exact table.
  TupleStore store(0);
  for (int i = 0; i < 20; ++i) {
    store.Add(Tuple{Value("LOCATION STRING NUMBER " + std::to_string(i))});
  }
  QGramIndex index(Q3());
  index.CatchUpWith(store);
  EXPECT_GT(index.ApproximateMemoryUsage(),
            20u * 20u * sizeof(storage::TupleId));
}

TEST(QGramIndexTest, StoreBackedGramSetsServedFromStoreCache) {
  // A store with a matching gram cache serves the per-tuple sets; the
  // index keeps no copy, and both sides see the identical object.
  TupleStore store(0, Q3());
  store.Add(Tuple{Value("SANTA CRISTINA")});
  store.Add(Tuple{Value("MONTE BIANCO")});
  QGramIndex index(Q3());
  index.CatchUpWith(store);
  for (storage::TupleId id = 0; id < 2; ++id) {
    EXPECT_EQ(&index.GramSetOf(id), &store.Grams(id)) << "tuple " << id;
    EXPECT_EQ(index.GramSetSize(id), store.Grams(id).size());
  }
}

TEST(QGramIndexTest, StoreBackedMemoryNotDoubleCounted) {
  // §2.3 space accounting with the arena-backed layout: gram sets
  // cached in the store are charged to the store, not the index, so
  // the same workload yields a smaller index + a larger store, never
  // both holding a copy.
  const auto fill = [](TupleStore* store) {
    for (int i = 0; i < 20; ++i) {
      store->Add(
          Tuple{Value("LOCATION STRING NUMBER " + std::to_string(i))});
    }
  };
  TupleStore cached_store(0, Q3());
  fill(&cached_store);
  QGramIndex cached_index(Q3());
  cached_index.CatchUpWith(cached_store);

  TupleStore plain_store(0);
  fill(&plain_store);
  QGramIndex local_index(Q3());
  local_index.CatchUpWith(plain_store);

  // Identical index structure either way...
  EXPECT_EQ(cached_index.distinct_grams(), local_index.distinct_grams());
  EXPECT_EQ(cached_index.watermark(), local_index.watermark());
  // ...but the gram-set bytes move from the index to the store.
  EXPECT_LT(cached_index.ApproximateMemoryUsage(),
            local_index.ApproximateMemoryUsage());
  EXPECT_GT(cached_store.ApproximateMemoryUsage(),
            plain_store.ApproximateMemoryUsage());
  // Postings alone still dominate the exact table's one-pointer-per-
  // tuple budget (§2.3's space trade-off stays visible).
  EXPECT_GT(cached_index.ApproximateMemoryUsage(),
            20u * 20u * sizeof(storage::TupleId));
}

ApproxFilterOptions AllFilters() {
  ApproxFilterOptions f;
  f.length = f.prefix = f.positional = true;
  return f;
}

TEST(QGramIndexPayloadTest, PostingsCarryCountAndPosition) {
  TupleStore store(0);
  const std::string value = "SANTA CRISTINA VALGARDENA";
  store.Add(Tuple{Value(value)});
  QGramIndex index(Q3(), AllFilters(), text::SimilarityMeasure::kJaccard,
                   0.85);
  index.CatchUpWith(store);

  // Reconstruct the expected order: default gram order = ascending key.
  const auto set = text::GramSet::Of(value, Q3());
  std::vector<text::GramKey> ordered(set.grams().begin(), set.grams().end());
  std::sort(ordered.begin(), ordered.end());
  const size_t g = ordered.size();
  const size_t prefix =
      PrefixLengthFor(text::SimilarityMeasure::kJaccard, g, 0.85);
  ASSERT_LT(prefix, g);

  for (size_t j = 0; j < g; ++j) {
    const auto* postings = index.PayloadPostings(ordered[j]);
    if (j < prefix) {
      ASSERT_NE(postings, nullptr) << "prefix gram " << j << " not posted";
      ASSERT_EQ(postings->size(), 1u);
      EXPECT_EQ((*postings)[0].id, 0u);
      EXPECT_EQ((*postings)[0].gram_count, g);
      EXPECT_EQ((*postings)[0].position, j);
      EXPECT_EQ(index.Frequency(ordered[j]), 1u);
    } else {
      // Non-prefix grams of the only tuple must not be posted at all.
      EXPECT_EQ(postings, nullptr) << "non-prefix gram " << j << " posted";
    }
  }
}

TEST(QGramIndexPayloadTest, WithoutPrefixAllGramsPosted) {
  TupleStore store(0);
  const std::string value = "MONTE BIANCO SUPERIORE";
  store.Add(Tuple{Value(value)});
  ApproxFilterOptions length_only;
  length_only.length = true;
  QGramIndex index(Q3(), length_only, text::SimilarityMeasure::kJaccard,
                   0.85);
  index.CatchUpWith(store);
  EXPECT_TRUE(index.payload_mode());
  const auto set = text::GramSet::Of(value, Q3());
  for (text::GramKey key : set.grams()) {
    const auto* postings = index.PayloadPostings(key);
    ASSERT_NE(postings, nullptr);
    ASSERT_EQ(postings->size(), 1u);
    EXPECT_EQ((*postings)[0].gram_count, set.size());
  }
  EXPECT_EQ(index.distinct_grams(), set.size());
}

TEST(QGramIndexPayloadTest, IncrementalCatchUpMatchesFreshBuild) {
  const std::vector<std::string> values = {"SANTA CRISTINA", "MONTE BIANCO",
                                           "VILLA ROSSA", "SANTA LUCIA",
                                           "BORGO SAN LORENZO"};
  TupleStore store(0);
  QGramIndex incremental(Q3(), AllFilters(),
                         text::SimilarityMeasure::kJaccard, 0.85);
  for (const std::string& v : values) {
    store.Add(Tuple{Value(v)});
    incremental.CatchUpWith(store);
  }
  QGramIndex fresh(Q3(), AllFilters(), text::SimilarityMeasure::kJaccard,
                   0.85);
  fresh.CatchUpWith(store);

  EXPECT_EQ(incremental.watermark(), fresh.watermark());
  EXPECT_EQ(incremental.distinct_grams(), fresh.distinct_grams());
  for (size_t i = 0; i < values.size(); ++i) {
    for (text::GramKey key :
         text::GramSet::Of(values[i], Q3()).grams()) {
      const auto* a = incremental.PayloadPostings(key);
      const auto* b = fresh.PayloadPostings(key);
      ASSERT_EQ(a == nullptr, b == nullptr);
      if (a == nullptr) continue;
      ASSERT_EQ(a->size(), b->size());
      for (size_t j = 0; j < a->size(); ++j) {
        EXPECT_EQ((*a)[j].id, (*b)[j].id);
        EXPECT_EQ((*a)[j].gram_count, (*b)[j].gram_count);
        EXPECT_EQ((*a)[j].position, (*b)[j].position);
      }
    }
  }
}

TEST(QGramIndexPayloadTest, UnknownGramHasNoPayloadPostings) {
  QGramIndex index(Q3(), AllFilters(), text::SimilarityMeasure::kJaccard,
                   0.85);
  EXPECT_EQ(index.PayloadPostings(0xFFFFFFFFull), nullptr);
  EXPECT_EQ(index.Frequency(0xFFFFFFFFull), 0u);
}

TEST(QGramIndexPayloadTest, PrefixIndexingShrinksMemory) {
  const auto fill = [](TupleStore* store) {
    for (int i = 0; i < 50; ++i) {
      store->Add(
          Tuple{Value("LOCATION STRING NUMBER " + std::to_string(i))});
    }
  };
  ApproxFilterOptions length_only;
  length_only.length = true;
  TupleStore full_store(0);
  fill(&full_store);
  QGramIndex full(Q3(), length_only, text::SimilarityMeasure::kJaccard,
                  0.85);
  full.CatchUpWith(full_store);

  TupleStore prefix_store(0);
  fill(&prefix_store);
  QGramIndex prefixed(Q3(), AllFilters(),
                      text::SimilarityMeasure::kJaccard, 0.85);
  prefixed.CatchUpWith(prefix_store);

  // Both payload layouts account their postings; prefix posting drops
  // ~θ of the entries, which must show up in the memory estimate.
  EXPECT_GT(full.ApproximateMemoryUsage(), 0u);
  EXPECT_LT(prefixed.ApproximateMemoryUsage(),
            full.ApproximateMemoryUsage());
}

TEST(QGramIndexTest, ReservePreallocatesBuckets) {
  TupleStore store(0);
  QGramIndex index(Q3());
  index.Reserve(5000);
  const size_t reserved_footprint = index.ApproximateMemoryUsage();
  store.Add(Tuple{Value("SANTA CRISTINA VALGARDENA")});
  index.CatchUpWith(store);
  // The bucket array was charged up front; indexing one tuple must not
  // have rehashed below it, and lookups behave normally.
  EXPECT_GE(index.ApproximateMemoryUsage(), reserved_footprint);
  const auto set = text::GramSet::Of("SANTA CRISTINA VALGARDENA", Q3());
  for (text::GramKey key : set.grams()) {
    EXPECT_EQ(index.Frequency(key), 1u);
  }
}

}  // namespace
}  // namespace join
}  // namespace aqp
