#include "join/qgram_index.h"

#include <gtest/gtest.h>

#include "storage/tuple_store.h"

namespace aqp {
namespace join {
namespace {

using storage::Tuple;
using storage::TupleStore;
using storage::Value;

text::QGramOptions Q3() {
  text::QGramOptions o;
  o.q = 3;
  return o;
}

TEST(QGramIndexTest, PostingsContainInsertingTuples) {
  TupleStore store(0);
  store.Add(Tuple{Value("SANTA")});
  store.Add(Tuple{Value("SANTO")});
  QGramIndex index(Q3());
  EXPECT_EQ(index.CatchUpWith(store), 2u);

  // Shared gram "SAN" should list both tuples.
  const auto grams = text::ExtractGramSequence("SANTA", Q3());
  const auto* postings = index.Postings(grams[2]);  // "SAN"
  ASSERT_NE(postings, nullptr);
  EXPECT_EQ(postings->size(), 2u);
  EXPECT_EQ(index.Frequency(grams[2]), 2u);
}

TEST(QGramIndexTest, PostingsAreDeduplicatedPerTuple) {
  TupleStore store(0);
  store.Add(Tuple{Value("AAAAAA")});  // "AAA" occurs many times
  QGramIndex index(Q3());
  index.CatchUpWith(store);
  const auto set = text::GramSet::Of("AAAAAA", Q3());
  for (text::GramKey key : set.grams()) {
    const auto* postings = index.Postings(key);
    ASSERT_NE(postings, nullptr);
    EXPECT_EQ(postings->size(), 1u) << "gram duplicated in posting list";
  }
}

TEST(QGramIndexTest, GramSetSizesStored) {
  TupleStore store(0);
  store.Add(Tuple{Value("SANTA")});
  QGramIndex index(Q3());
  index.CatchUpWith(store);
  const auto set = text::GramSet::Of("SANTA", Q3());
  EXPECT_EQ(index.GramSetSize(0), set.size());
  EXPECT_EQ(index.GramSetOf(0), set);
}

TEST(QGramIndexTest, UnknownGramHasZeroFrequency) {
  QGramIndex index(Q3());
  EXPECT_EQ(index.Frequency(0xFFFFFFFFull), 0u);
  EXPECT_EQ(index.Postings(0xFFFFFFFFull), nullptr);
}

TEST(QGramIndexTest, IncrementalCatchUpMatchesFreshBuild) {
  TupleStore store(0);
  const std::vector<std::string> values = {"SANTA CRISTINA", "MONTE BIANCO",
                                           "VILLA ROSSA", "SANTA LUCIA",
                                           "BORGO SAN LORENZO"};
  QGramIndex incremental(Q3());
  for (const std::string& v : values) {
    store.Add(Tuple{Value(v)});
    incremental.CatchUpWith(store);  // catch up one at a time
  }
  QGramIndex fresh(Q3());
  fresh.CatchUpWith(store);  // all at once

  EXPECT_EQ(incremental.watermark(), fresh.watermark());
  EXPECT_EQ(incremental.distinct_grams(), fresh.distinct_grams());
  for (size_t i = 0; i < values.size(); ++i) {
    const auto id = static_cast<storage::TupleId>(i);
    EXPECT_EQ(incremental.GramSetOf(id), fresh.GramSetOf(id));
    for (text::GramKey key : fresh.GramSetOf(id).grams()) {
      ASSERT_NE(incremental.Postings(key), nullptr);
      EXPECT_EQ(*incremental.Postings(key), *fresh.Postings(key));
    }
  }
}

TEST(QGramIndexTest, EmptyGramTuplesTracked) {
  text::QGramOptions unpadded = Q3();
  unpadded.pad = false;
  TupleStore store(0);
  store.Add(Tuple{Value("AB")});  // shorter than q: no grams
  store.Add(Tuple{Value("ABCDEF")});
  QGramIndex index(unpadded);
  index.CatchUpWith(store);
  ASSERT_EQ(index.empty_gram_tuples().size(), 1u);
  EXPECT_EQ(index.empty_gram_tuples()[0], 0u);
}

TEST(QGramIndexTest, AveragePostingLength) {
  TupleStore store(0);
  store.Add(Tuple{Value("ABC")});
  QGramIndex index(Q3());
  index.CatchUpWith(store);
  // One tuple: every posting list has length 1.
  EXPECT_DOUBLE_EQ(index.AveragePostingLength(), 1.0);
}

TEST(QGramIndexTest, SpaceGrowsWithGramCount) {
  // §2.3: q-gram index space is ~(|jA|+q-1) pointers per tuple versus
  // one for the exact table.
  TupleStore store(0);
  for (int i = 0; i < 20; ++i) {
    store.Add(Tuple{Value("LOCATION STRING NUMBER " + std::to_string(i))});
  }
  QGramIndex index(Q3());
  index.CatchUpWith(store);
  EXPECT_GT(index.ApproximateMemoryUsage(),
            20u * 20u * sizeof(storage::TupleId));
}

TEST(QGramIndexTest, StoreBackedGramSetsServedFromStoreCache) {
  // A store with a matching gram cache serves the per-tuple sets; the
  // index keeps no copy, and both sides see the identical object.
  TupleStore store(0, Q3());
  store.Add(Tuple{Value("SANTA CRISTINA")});
  store.Add(Tuple{Value("MONTE BIANCO")});
  QGramIndex index(Q3());
  index.CatchUpWith(store);
  for (storage::TupleId id = 0; id < 2; ++id) {
    EXPECT_EQ(&index.GramSetOf(id), &store.Grams(id)) << "tuple " << id;
    EXPECT_EQ(index.GramSetSize(id), store.Grams(id).size());
  }
}

TEST(QGramIndexTest, StoreBackedMemoryNotDoubleCounted) {
  // §2.3 space accounting with the arena-backed layout: gram sets
  // cached in the store are charged to the store, not the index, so
  // the same workload yields a smaller index + a larger store, never
  // both holding a copy.
  const auto fill = [](TupleStore* store) {
    for (int i = 0; i < 20; ++i) {
      store->Add(
          Tuple{Value("LOCATION STRING NUMBER " + std::to_string(i))});
    }
  };
  TupleStore cached_store(0, Q3());
  fill(&cached_store);
  QGramIndex cached_index(Q3());
  cached_index.CatchUpWith(cached_store);

  TupleStore plain_store(0);
  fill(&plain_store);
  QGramIndex local_index(Q3());
  local_index.CatchUpWith(plain_store);

  // Identical index structure either way...
  EXPECT_EQ(cached_index.distinct_grams(), local_index.distinct_grams());
  EXPECT_EQ(cached_index.watermark(), local_index.watermark());
  // ...but the gram-set bytes move from the index to the store.
  EXPECT_LT(cached_index.ApproximateMemoryUsage(),
            local_index.ApproximateMemoryUsage());
  EXPECT_GT(cached_store.ApproximateMemoryUsage(),
            plain_store.ApproximateMemoryUsage());
  // Postings alone still dominate the exact table's one-pointer-per-
  // tuple budget (§2.3's space trade-off stays visible).
  EXPECT_GT(cached_index.ApproximateMemoryUsage(),
            20u * 20u * sizeof(storage::TupleId));
}

}  // namespace
}  // namespace join
}  // namespace aqp
