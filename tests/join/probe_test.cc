#include "join/probe.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace aqp {
namespace join {
namespace {

using storage::Tuple;
using storage::TupleId;
using storage::TupleStore;
using storage::Value;

JoinSpec Spec(double threshold = 0.8) {
  JoinSpec spec;
  spec.left_column = 0;
  spec.right_column = 0;
  spec.sim_threshold = threshold;
  return spec;
}

struct Fixture {
  TupleStore store{0};
  ExactIndex exact;
  QGramIndex qgrams{text::QGramOptions{}};

  void Add(const std::string& s) {
    store.Add(Tuple{Value(s)});
    exact.CatchUpWith(store);
    qgrams.CatchUpWith(store);
  }
};

TEST(ProbeExactTest, FindsEqualStrings) {
  Fixture f;
  f.Add("SANTA CRISTINA VALGARDENA IN COLLE");
  f.Add("MONTE BIANCO SUPERIORE DEL FRIULI");
  f.Add("SANTA CRISTINA VALGARDENA IN COLLE");
  const auto matches = ProbeExact(
      f.exact, "SANTA CRISTINA VALGARDENA IN COLLE", exec::Side::kLeft, 99);
  ASSERT_EQ(matches.size(), 2u);
  for (const JoinMatch& m : matches) {
    EXPECT_EQ(m.kind, MatchKind::kExact);
    EXPECT_DOUBLE_EQ(m.similarity, 1.0);
    EXPECT_EQ(m.probe_id, 99u);
    EXPECT_EQ(m.probe_side, exec::Side::kLeft);
  }
}

TEST(ProbeExactTest, MissYieldsEmpty) {
  Fixture f;
  f.Add("SOMETHING");
  EXPECT_TRUE(ProbeExact(f.exact, "ELSE", exec::Side::kRight, 0).empty());
}

TEST(ProbeApproximateTest, FindsVariantAboveThreshold) {
  Fixture f;
  const std::string original = "TAA BZ SANTA CRISTINA VALGARDENA TERME";
  f.Add(original);
  std::string variant = original;
  variant[12] = 'x';
  ApproxProbeStats stats;
  const auto matches =
      ProbeApproximate(f.qgrams, f.store, variant, Spec(0.8),
                       exec::Side::kLeft, 7, ApproxProbeOptions{}, &stats);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].stored_id, 0u);
  EXPECT_EQ(matches[0].kind, MatchKind::kApproximate);
  EXPECT_GE(matches[0].similarity, 0.8);
  EXPECT_LT(matches[0].similarity, 1.0);
  EXPECT_GT(stats.grams, 0u);
  EXPECT_GE(stats.candidates, 1u);
  EXPECT_EQ(stats.matches, 1u);
}

TEST(ProbeApproximateTest, EqualStringFlaggedExact) {
  Fixture f;
  const std::string s = "MONTE ROSA SUPERIORE DEGLI ULIVI";
  f.Add(s);
  const auto matches =
      ProbeApproximate(f.qgrams, f.store, s, Spec(0.8), exec::Side::kRight,
                       3, ApproxProbeOptions{}, nullptr);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].kind, MatchKind::kExact);
  EXPECT_DOUBLE_EQ(matches[0].similarity, 1.0);
}

TEST(ProbeApproximateTest, DissimilarStringRejected) {
  Fixture f;
  f.Add("TAA BZ SANTA CRISTINA VALGARDENA");
  const auto matches = ProbeApproximate(
      f.qgrams, f.store, "PUG BA COMPLETELY DIFFERENT PLACE", Spec(0.8),
      exec::Side::kLeft, 0, ApproxProbeOptions{}, nullptr);
  EXPECT_TRUE(matches.empty());
}

TEST(ProbeApproximateTest, ThresholdIsInclusiveBoundary) {
  Fixture f;
  f.Add("ABCD");
  // q(ABCD) vs q(ABCE), padded q=3: sets of 6 grams each, overlap 4
  // (\1\1A, \1AB, ABC + one of the distinct tails...). Compute the true
  // Jaccard and assert behaviour exactly at it.
  const text::GramSet a =
      text::GramSet::Of("ABCD", text::QGramOptions{});
  const text::GramSet b =
      text::GramSet::Of("ABCE", text::QGramOptions{});
  const double sim = text::Jaccard(a, b);
  auto at = ProbeApproximate(f.qgrams, f.store, "ABCE", Spec(sim),
                             exec::Side::kLeft, 0, ApproxProbeOptions{},
                             nullptr);
  EXPECT_EQ(at.size(), 1u);
  auto above = ProbeApproximate(f.qgrams, f.store, "ABCE", Spec(sim + 1e-9),
                                exec::Side::kLeft, 0, ApproxProbeOptions{},
                                nullptr);
  EXPECT_TRUE(above.empty());
}

TEST(ProbeApproximateTest, OptimizationOnAndOffAgree) {
  Fixture f;
  const std::vector<std::string> pool = {
      "TAA BZ SANTA CRISTINA VALGARDENA", "TAA BZ SANTA CRISTINx VALGARDENA",
      "LOM MI VILLA BORGHESE SUL NAVIGLIO", "VEN VE CASTEL NUOVO DEL MONTE",
      "TAA BZ SANTA CRISTINA VALGARDENo", "PIE TO MONTE VERDE SUPERIORE"};
  for (const auto& s : pool) f.Add(s);
  for (double threshold : {0.5, 0.7, 0.85, 0.95}) {
    for (const auto& probe : pool) {
      ApproxProbeOptions with;
      ApproxProbeOptions without;
      without.insert_phase_optimization = false;
      without.rare_grams_first = false;
      auto a = ProbeApproximate(f.qgrams, f.store, probe, Spec(threshold),
                                exec::Side::kLeft, 0, with, nullptr);
      auto b = ProbeApproximate(f.qgrams, f.store, probe, Spec(threshold),
                                exec::Side::kLeft, 0, without, nullptr);
      ASSERT_EQ(a.size(), b.size()) << probe << " @ " << threshold;
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].stored_id, b[i].stored_id);
        EXPECT_DOUBLE_EQ(a[i].similarity, b[i].similarity);
      }
    }
  }
}

TEST(ProbeApproximateTest, EmptyProbeMatchesOnlyEmptyStored) {
  text::QGramOptions unpadded;
  unpadded.pad = false;
  JoinSpec spec = Spec(0.8);
  spec.qgram = unpadded;
  TupleStore store(0);
  QGramIndex index(unpadded);
  store.Add(Tuple{Value("AB")});  // gram-less
  store.Add(Tuple{Value("ABCDEF")});
  index.CatchUpWith(store);
  auto matches = ProbeApproximate(index, store, "AB", spec, exec::Side::kLeft,
                                  9, ApproxProbeOptions{}, nullptr);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].stored_id, 0u);
  EXPECT_EQ(matches[0].kind, MatchKind::kExact);
  auto misses = ProbeApproximate(index, store, "XY", spec, exec::Side::kLeft,
                                 9, ApproxProbeOptions{}, nullptr);
  EXPECT_TRUE(misses.empty());
}

TEST(ProbeApproximateTest, ResultsSortedByStoredId) {
  Fixture f;
  f.Add("SANTA CRISTINA VALGARDENA AAA");
  f.Add("SANTA CRISTINA VALGARDENA BBB");
  f.Add("SANTA CRISTINA VALGARDENA CCC");
  auto matches = ProbeApproximate(
      f.qgrams, f.store, "SANTA CRISTINA VALGARDENA ABC", Spec(0.6),
      exec::Side::kLeft, 0, ApproxProbeOptions{}, nullptr);
  ASSERT_GE(matches.size(), 2u);
  EXPECT_TRUE(std::is_sorted(matches.begin(), matches.end(),
                             [](const JoinMatch& a, const JoinMatch& b) {
                               return a.stored_id < b.stored_id;
                             }));
}

TEST(ProbeStatsTest, MergeAccumulates) {
  ApproxProbeStats a;
  a.grams = 5;
  a.matches = 1;
  ApproxProbeStats b;
  b.grams = 7;
  b.candidates = 3;
  a.MergeFrom(b);
  EXPECT_EQ(a.grams, 12u);
  EXPECT_EQ(a.candidates, 3u);
  EXPECT_EQ(a.matches, 1u);
}

}  // namespace
}  // namespace join
}  // namespace aqp
