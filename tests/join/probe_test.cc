#include "join/probe.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "text/gram_order.h"

namespace aqp {
namespace join {
namespace {

using storage::Tuple;
using storage::TupleId;
using storage::TupleStore;
using storage::Value;

JoinSpec Spec(double threshold = 0.8) {
  JoinSpec spec;
  spec.left_column = 0;
  spec.right_column = 0;
  spec.sim_threshold = threshold;
  return spec;
}

struct Fixture {
  TupleStore store{0};
  ExactIndex exact;
  QGramIndex qgrams{text::QGramOptions{}};

  void Add(const std::string& s) {
    store.Add(Tuple{Value(s)});
    exact.CatchUpWith(store);
    qgrams.CatchUpWith(store);
  }
};

TEST(ProbeExactTest, FindsEqualStrings) {
  Fixture f;
  f.Add("SANTA CRISTINA VALGARDENA IN COLLE");
  f.Add("MONTE BIANCO SUPERIORE DEL FRIULI");
  f.Add("SANTA CRISTINA VALGARDENA IN COLLE");
  const auto matches = ProbeExact(
      f.exact, "SANTA CRISTINA VALGARDENA IN COLLE", exec::Side::kLeft, 99);
  ASSERT_EQ(matches.size(), 2u);
  for (const JoinMatch& m : matches) {
    EXPECT_EQ(m.kind, MatchKind::kExact);
    EXPECT_DOUBLE_EQ(m.similarity, 1.0);
    EXPECT_EQ(m.probe_id, 99u);
    EXPECT_EQ(m.probe_side, exec::Side::kLeft);
  }
}

TEST(ProbeExactTest, MissYieldsEmpty) {
  Fixture f;
  f.Add("SOMETHING");
  EXPECT_TRUE(ProbeExact(f.exact, "ELSE", exec::Side::kRight, 0).empty());
}

TEST(ProbeApproximateTest, FindsVariantAboveThreshold) {
  Fixture f;
  const std::string original = "TAA BZ SANTA CRISTINA VALGARDENA TERME";
  f.Add(original);
  std::string variant = original;
  variant[12] = 'x';
  ApproxProbeStats stats;
  const auto matches =
      ProbeApproximate(f.qgrams, f.store, variant, Spec(0.8),
                       exec::Side::kLeft, 7, ApproxProbeOptions{}, &stats);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].stored_id, 0u);
  EXPECT_EQ(matches[0].kind, MatchKind::kApproximate);
  EXPECT_GE(matches[0].similarity, 0.8);
  EXPECT_LT(matches[0].similarity, 1.0);
  EXPECT_GT(stats.grams, 0u);
  EXPECT_GE(stats.candidates, 1u);
  EXPECT_EQ(stats.matches, 1u);
}

TEST(ProbeApproximateTest, EqualStringFlaggedExact) {
  Fixture f;
  const std::string s = "MONTE ROSA SUPERIORE DEGLI ULIVI";
  f.Add(s);
  const auto matches =
      ProbeApproximate(f.qgrams, f.store, s, Spec(0.8), exec::Side::kRight,
                       3, ApproxProbeOptions{}, nullptr);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].kind, MatchKind::kExact);
  EXPECT_DOUBLE_EQ(matches[0].similarity, 1.0);
}

TEST(ProbeApproximateTest, DissimilarStringRejected) {
  Fixture f;
  f.Add("TAA BZ SANTA CRISTINA VALGARDENA");
  const auto matches = ProbeApproximate(
      f.qgrams, f.store, "PUG BA COMPLETELY DIFFERENT PLACE", Spec(0.8),
      exec::Side::kLeft, 0, ApproxProbeOptions{}, nullptr);
  EXPECT_TRUE(matches.empty());
}

TEST(ProbeApproximateTest, ThresholdIsInclusiveBoundary) {
  Fixture f;
  f.Add("ABCD");
  // q(ABCD) vs q(ABCE), padded q=3: sets of 6 grams each, overlap 4
  // (\1\1A, \1AB, ABC + one of the distinct tails...). Compute the true
  // Jaccard and assert behaviour exactly at it.
  const text::GramSet a =
      text::GramSet::Of("ABCD", text::QGramOptions{});
  const text::GramSet b =
      text::GramSet::Of("ABCE", text::QGramOptions{});
  const double sim = text::Jaccard(a, b);
  auto at = ProbeApproximate(f.qgrams, f.store, "ABCE", Spec(sim),
                             exec::Side::kLeft, 0, ApproxProbeOptions{},
                             nullptr);
  EXPECT_EQ(at.size(), 1u);
  auto above = ProbeApproximate(f.qgrams, f.store, "ABCE", Spec(sim + 1e-9),
                                exec::Side::kLeft, 0, ApproxProbeOptions{},
                                nullptr);
  EXPECT_TRUE(above.empty());
}

TEST(ProbeApproximateTest, OptimizationOnAndOffAgree) {
  Fixture f;
  const std::vector<std::string> pool = {
      "TAA BZ SANTA CRISTINA VALGARDENA", "TAA BZ SANTA CRISTINx VALGARDENA",
      "LOM MI VILLA BORGHESE SUL NAVIGLIO", "VEN VE CASTEL NUOVO DEL MONTE",
      "TAA BZ SANTA CRISTINA VALGARDENo", "PIE TO MONTE VERDE SUPERIORE"};
  for (const auto& s : pool) f.Add(s);
  for (double threshold : {0.5, 0.7, 0.85, 0.95}) {
    for (const auto& probe : pool) {
      ApproxProbeOptions with;
      ApproxProbeOptions without;
      without.insert_phase_optimization = false;
      without.rare_grams_first = false;
      auto a = ProbeApproximate(f.qgrams, f.store, probe, Spec(threshold),
                                exec::Side::kLeft, 0, with, nullptr);
      auto b = ProbeApproximate(f.qgrams, f.store, probe, Spec(threshold),
                                exec::Side::kLeft, 0, without, nullptr);
      ASSERT_EQ(a.size(), b.size()) << probe << " @ " << threshold;
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].stored_id, b[i].stored_id);
        EXPECT_DOUBLE_EQ(a[i].similarity, b[i].similarity);
      }
    }
  }
}

TEST(ProbeApproximateTest, EmptyProbeMatchesOnlyEmptyStored) {
  text::QGramOptions unpadded;
  unpadded.pad = false;
  JoinSpec spec = Spec(0.8);
  spec.qgram = unpadded;
  TupleStore store(0);
  QGramIndex index(unpadded);
  store.Add(Tuple{Value("AB")});  // gram-less
  store.Add(Tuple{Value("ABCDEF")});
  index.CatchUpWith(store);
  auto matches = ProbeApproximate(index, store, "AB", spec, exec::Side::kLeft,
                                  9, ApproxProbeOptions{}, nullptr);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].stored_id, 0u);
  EXPECT_EQ(matches[0].kind, MatchKind::kExact);
  auto misses = ProbeApproximate(index, store, "XY", spec, exec::Side::kLeft,
                                 9, ApproxProbeOptions{}, nullptr);
  EXPECT_TRUE(misses.empty());
}

TEST(ProbeApproximateTest, ResultsSortedByStoredId) {
  Fixture f;
  f.Add("SANTA CRISTINA VALGARDENA AAA");
  f.Add("SANTA CRISTINA VALGARDENA BBB");
  f.Add("SANTA CRISTINA VALGARDENA CCC");
  auto matches = ProbeApproximate(
      f.qgrams, f.store, "SANTA CRISTINA VALGARDENA ABC", Spec(0.6),
      exec::Side::kLeft, 0, ApproxProbeOptions{}, nullptr);
  ASSERT_GE(matches.size(), 2u);
  EXPECT_TRUE(std::is_sorted(matches.begin(), matches.end(),
                             [](const JoinMatch& a, const JoinMatch& b) {
                               return a.stored_id < b.stored_id;
                             }));
}

/// All eight filter combinations, in bench/label order.
std::vector<ApproxFilterOptions> AllFilterCombinations() {
  std::vector<ApproxFilterOptions> combos;
  for (int mask = 0; mask < 8; ++mask) {
    ApproxFilterOptions f;
    f.length = (mask & 1) != 0;
    f.prefix = (mask & 2) != 0;
    f.positional = (mask & 4) != 0;
    combos.push_back(f);
  }
  return combos;
}

/// A store + index built with the given filter configuration, loaded
/// with the same pool the plain fixture uses.
struct FilteredFixture {
  TupleStore store{0};
  QGramIndex qgrams;

  FilteredFixture(const ApproxFilterOptions& filter, double threshold)
      : qgrams(filter.any()
                   ? QGramIndex(text::QGramOptions{}, filter,
                                text::SimilarityMeasure::kJaccard, threshold)
                   : QGramIndex(text::QGramOptions{})) {}

  void Add(const std::string& s) {
    store.Add(Tuple{Value(s)});
    qgrams.CatchUpWith(store);
  }
};

std::vector<std::string> FilterTestPool() {
  return {"TAA BZ SANTA CRISTINA VALGARDENA",
          "TAA BZ SANTA CRISTINx VALGARDENA",
          "LOM MI VILLA BORGHESE SUL NAVIGLIO",
          "VEN VE CASTEL NUOVO DEL MONTE",
          "TAA BZ SANTA CRISTINA VALGARDENo",
          "PIE TO MONTE VERDE SUPERIORE",
          "SANTA CRISTINA",  // far shorter: exercises the length band
          "TAA BZ SANTA CRISTINA VALGARDENA EXTENDED WITH A LONG TAIL",
          "ABCD", "ABCE",    // threshold-boundary pair
          ""};
}

TEST(ProbeFilteredTest, AllCombinationsMatchUnfilteredKernel) {
  const auto pool = FilterTestPool();
  for (double threshold : {0.5, 0.7, 0.85, 0.95}) {
    Fixture plain;
    for (const auto& s : pool) plain.Add(s);
    for (const ApproxFilterOptions& filter : AllFilterCombinations()) {
      FilteredFixture filtered(filter, threshold);
      for (const auto& s : pool) filtered.Add(s);
      JoinSpec spec = Spec(threshold);
      spec.filter = filter;
      for (const auto& probe : pool) {
        const auto expected =
            ProbeApproximate(plain.qgrams, plain.store, probe,
                             Spec(threshold), exec::Side::kLeft, 0,
                             ApproxProbeOptions{}, nullptr);
        ApproxProbeStats stats;
        const auto actual =
            ProbeApproximate(filtered.qgrams, filtered.store, probe, spec,
                             exec::Side::kLeft, 0, ApproxProbeOptions{},
                             &stats);
        ASSERT_EQ(actual.size(), expected.size())
            << "filter=" << filter.Label() << " probe=\"" << probe
            << "\" @ " << threshold;
        for (size_t i = 0; i < actual.size(); ++i) {
          EXPECT_EQ(actual[i].stored_id, expected[i].stored_id);
          // Bitwise-equal similarity, not just approximately equal —
          // byte-identical output is the exactness contract.
          EXPECT_EQ(actual[i].similarity, expected[i].similarity)
              << "filter=" << filter.Label() << " probe=\"" << probe << "\"";
          EXPECT_EQ(actual[i].kind, expected[i].kind);
        }
        EXPECT_EQ(stats.matches, expected.size());
      }
    }
  }
}

TEST(ProbeFilteredTest, SampledGramOrderPreservesResults) {
  const auto pool = FilterTestPool();
  Fixture plain;
  for (const auto& s : pool) plain.Add(s);
  auto order = std::make_shared<text::GramOrder>();
  for (const auto& s : pool) order->AddSample(s, text::QGramOptions{});
  ApproxFilterOptions filter;
  filter.length = filter.prefix = filter.positional = true;
  filter.gram_order = order;
  FilteredFixture filtered(filter, 0.8);
  for (const auto& s : pool) filtered.Add(s);
  JoinSpec spec = Spec(0.8);
  spec.filter = filter;
  for (const auto& probe : pool) {
    const auto expected =
        ProbeApproximate(plain.qgrams, plain.store, probe, Spec(0.8),
                         exec::Side::kLeft, 0, ApproxProbeOptions{}, nullptr);
    const auto actual =
        ProbeApproximate(filtered.qgrams, filtered.store, probe, spec,
                         exec::Side::kLeft, 0, ApproxProbeOptions{}, nullptr);
    ASSERT_EQ(actual.size(), expected.size()) << probe;
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].stored_id, expected[i].stored_id);
      EXPECT_EQ(actual[i].similarity, expected[i].similarity);
      EXPECT_EQ(actual[i].kind, expected[i].kind);
    }
  }
}

TEST(ProbeFilteredTest, FiltersActuallyPrune) {
  // A corpus with one near-duplicate and several length-incompatible /
  // position-incompatible neighbours: the filters must report pruning
  // work, and the candidate count must drop versus unfiltered.
  const std::string base = "TAA BZ SANTA CRISTINA VALGARDENA TERME";
  Fixture plain;
  FilteredFixture filtered(
      [] {
        ApproxFilterOptions f;
        f.length = f.prefix = f.positional = true;
        return f;
      }(),
      0.85);
  std::vector<std::string> pool = {base, base + " DI SOPRA DEL COLLE",
                                   "SANTA", "CRISTINA VAL",
                                   base.substr(0, 14)};
  for (const auto& s : pool) {
    plain.Add(s);
    filtered.Add(s);
  }
  std::string probe = base;
  probe[10] = 'x';
  ApproxProbeStats unfiltered_stats;
  const auto expected =
      ProbeApproximate(plain.qgrams, plain.store, probe, Spec(0.85),
                       exec::Side::kLeft, 0, ApproxProbeOptions{},
                       &unfiltered_stats);
  JoinSpec spec = Spec(0.85);
  spec.filter.length = spec.filter.prefix = spec.filter.positional = true;
  ApproxProbeStats stats;
  const auto actual =
      ProbeApproximate(filtered.qgrams, filtered.store, probe, spec,
                       exec::Side::kLeft, 0, ApproxProbeOptions{}, &stats);
  ASSERT_EQ(actual.size(), expected.size());
  EXPECT_EQ(actual.size(), 1u);
  EXPECT_GT(stats.length_skipped, 0u);
  EXPECT_LT(stats.candidates, unfiltered_stats.candidates);
}

TEST(ProbeScratchTest, CounterMapShrinksAfterWideProbe) {
  // One pathologically wide probe inflates the counter map; a long run
  // of narrow probes must let the shrink policy release the bucket
  // table instead of pinning peak memory forever.
  Fixture f;
  for (int i = 0; i < 1200; ++i) {
    f.Add("SANTA CRISTINA VALGARDENA SHARED STEM " + std::to_string(i));
  }
  ApproxProbeScratch scratch;
  std::vector<JoinMatch> out;
  const JoinSpec spec = Spec(0.99);
  const std::string wide = "SANTA CRISTINA VALGARDENA SHARED STEM";
  // Without the insert-phase optimization every probe gram inserts, so
  // all 1200 stem-sharing tuples land in T(t) and the counter map
  // grows to its high-water bucket count.
  ApproxProbeOptions inflate;
  inflate.insert_phase_optimization = false;
  ProbeApproximateInto(f.qgrams, f.store, wide,
                       text::GramSet::Of(wide, spec.qgram), spec,
                       exec::Side::kLeft, 0, inflate, &scratch,
                       nullptr, &out);
  const size_t high_water = scratch.counters.bucket_count();
  ASSERT_GT(high_water,
            ApproxProbeScratch::kShrinkFactor *
                ApproxProbeScratch::kMinCounterBuckets);
  // Narrow probes share no grams with the corpus: zero candidates each.
  // Two full check intervals guarantee one interval whose peak is
  // untouched by the wide probe.
  const std::string narrow = "zzz qqq jjj xxx www kkk";
  const auto narrow_grams = text::GramSet::Of(narrow, spec.qgram);
  for (size_t i = 0; i < 2 * ApproxProbeScratch::kShrinkCheckInterval; ++i) {
    out.clear();
    ProbeApproximateInto(f.qgrams, f.store, narrow, narrow_grams, spec,
                         exec::Side::kLeft, 0, ApproxProbeOptions{}, &scratch,
                         nullptr, &out);
    EXPECT_TRUE(out.empty());
  }
  EXPECT_LT(scratch.counters.bucket_count(), high_water);
}

TEST(ProbeStatsTest, MergeAccumulates) {
  ApproxProbeStats a;
  a.grams = 5;
  a.matches = 1;
  ApproxProbeStats b;
  b.grams = 7;
  b.candidates = 3;
  a.MergeFrom(b);
  EXPECT_EQ(a.grams, 12u);
  EXPECT_EQ(a.candidates, 3u);
  EXPECT_EQ(a.matches, 1u);
}

}  // namespace
}  // namespace join
}  // namespace aqp
