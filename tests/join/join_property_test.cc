// Property tests pinning the operators to their brute-force oracles
// across random inputs, thresholds, and interleavings.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "exec/scan.h"
#include "join/brute_force.h"
#include "join/hybrid_core.h"
#include "join/shjoin.h"
#include "join/sshjoin.h"

namespace aqp {
namespace join {
namespace {

using storage::Relation;
using storage::Schema;
using storage::Tuple;
using storage::Value;
using storage::ValueType;

struct Params {
  uint64_t seed;
  double threshold;
};

class JoinOracleTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

/// Builds a relation whose values are clustered around a few base
/// strings with random single-character corruptions — similar pairs are
/// common, which stresses the candidate generation.
Relation ClusteredRelation(Rng* rng, size_t rows) {
  std::vector<std::string> bases;
  for (int i = 0; i < 5; ++i) {
    bases.push_back("BASE " + rng->RandomString(12, "ABCDEFGHIJ") + " " +
                    rng->RandomString(8, "KLMNOPQR"));
  }
  Relation r(Schema({{"s", ValueType::kString}}));
  for (size_t i = 0; i < rows; ++i) {
    std::string value = bases[rng->Index(bases.size())];
    // 0-2 random substitutions.
    const int edits = static_cast<int>(rng->Index(3));
    for (int e = 0; e < edits; ++e) {
      value[rng->Index(value.size())] =
          static_cast<char>('a' + rng->Index(26));
    }
    EXPECT_TRUE(r.Append(Tuple{Value(std::move(value))}).ok());
  }
  return r;
}

std::multiset<std::pair<size_t, size_t>> OracleSimilar(const Relation& l,
                                                       const Relation& r,
                                                       const JoinSpec& spec) {
  std::multiset<std::pair<size_t, size_t>> out;
  for (const BrutePair& p : BruteForceSimilarityJoin(l, r, spec)) {
    out.emplace(p.left_row, p.right_row);
  }
  return out;
}

TEST_P(JoinOracleTest, SSHJoinEqualsBruteForceSimilarityJoin) {
  const auto [seed, threshold] = GetParam();
  Rng rng(seed);
  const Relation left = ClusteredRelation(&rng, 40);
  const Relation right = ClusteredRelation(&rng, 35);
  JoinSpec spec;
  spec.sim_threshold = threshold;

  exec::RelationScan ls(&left);
  exec::RelationScan rs(&right);
  SymmetricJoinOptions options;
  options.spec = spec;
  options.emit_similarity = true;
  SSHJoin join(&ls, &rs, options);
  auto result = exec::CollectAll(&join);
  ASSERT_TRUE(result.ok());

  // Recover row indexes by value lookup (values may repeat, so compare
  // as multisets of value pairs instead).
  std::multiset<std::pair<std::string, std::string>> got;
  for (const Tuple& row : result->rows()) {
    got.emplace(row.at(0).AsString(), row.at(1).AsString());
  }
  std::multiset<std::pair<std::string, std::string>> expected;
  for (const auto& [li, ri] : OracleSimilar(left, right, spec)) {
    expected.emplace(left.row(li).at(0).AsString(),
                     right.row(ri).at(0).AsString());
  }
  EXPECT_EQ(got, expected);
}

TEST_P(JoinOracleTest, SHJoinEqualsBruteForceExactJoin) {
  const auto [seed, threshold] = GetParam();
  (void)threshold;  // exact join ignores the threshold
  Rng rng(seed ^ 0xabc);
  const Relation left = ClusteredRelation(&rng, 60);
  const Relation right = ClusteredRelation(&rng, 50);
  JoinSpec spec;

  exec::RelationScan ls(&left);
  exec::RelationScan rs(&right);
  SymmetricJoinOptions options;
  options.spec = spec;
  SHJoin join(&ls, &rs, options);
  auto count = exec::CountAll(&join);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, BruteForceExactJoin(left, right, spec).size());
}

TEST_P(JoinOracleTest, HybridResultBracketedByBaselines) {
  // For any switching behaviour: all-exact ⊆ hybrid ⊆ all-approx
  // (as pair multisets; we check counts of exact pairs and totals).
  const auto [seed, threshold] = GetParam();
  Rng rng(seed ^ 0x777);
  const Relation left = ClusteredRelation(&rng, 50);
  const Relation right = ClusteredRelation(&rng, 50);
  JoinSpec spec;
  spec.sim_threshold = threshold;

  const size_t exact_pairs = BruteForceExactJoin(left, right, spec).size();
  const size_t approx_pairs =
      BruteForceSimilarityJoin(left, right, spec).size();

  HybridJoinCore core(spec);
  Rng sched(seed ^ 0x999);
  size_t li = 0, ri = 0, total = 0;
  std::set<std::pair<storage::TupleId, storage::TupleId>> seen_pairs;
  while (li < left.size() || ri < right.size()) {
    exec::Side side;
    if (li >= left.size()) {
      side = exec::Side::kRight;
    } else if (ri >= right.size()) {
      side = exec::Side::kLeft;
    } else {
      side = sched.Bernoulli(0.5) ? exec::Side::kLeft : exec::Side::kRight;
    }
    if (sched.Bernoulli(0.08)) {
      core.SetProbeMode(side, sched.Bernoulli(0.5)
                                  ? ProbeMode::kExact
                                  : ProbeMode::kApproximate);
    }
    const Tuple& t = side == exec::Side::kLeft ? left.row(li++)
                                               : right.row(ri++);
    for (const JoinMatch& m : core.ProcessTuple(side, t)) {
      total++;
      // No pair may ever be emitted twice.
      EXPECT_TRUE(seen_pairs.emplace(m.left_id(), m.right_id()).second)
          << "duplicate pair emitted";
    }
  }
  EXPECT_GE(total, exact_pairs);
  EXPECT_LE(total, approx_pairs);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThresholds, JoinOracleTest,
    ::testing::Combine(::testing::Values(1u, 7u, 42u, 1234u),
                       ::testing::Values(0.5, 0.7, 0.85, 0.95)));

}  // namespace
}  // namespace join
}  // namespace aqp
