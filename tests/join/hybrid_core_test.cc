#include "join/hybrid_core.h"

#include <gtest/gtest.h>

namespace aqp {
namespace join {
namespace {

using exec::Side;
using storage::Tuple;
using storage::Value;

JoinSpec Spec(double threshold = 0.8) {
  JoinSpec spec;
  spec.sim_threshold = threshold;
  return spec;
}

Tuple T(const std::string& s) { return Tuple{Value(s)}; }

TEST(HybridCoreTest, StartsExactBothSides) {
  HybridJoinCore core(Spec());
  EXPECT_EQ(core.probe_mode(Side::kLeft), ProbeMode::kExact);
  EXPECT_EQ(core.probe_mode(Side::kRight), ProbeMode::kExact);
}

TEST(HybridCoreTest, ExactModeMatchesEqualKeys) {
  HybridJoinCore core(Spec());
  EXPECT_TRUE(core.ProcessTuple(Side::kLeft, T("A")).empty());
  const auto matches = core.ProcessTuple(Side::kRight, T("A"));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].probe_side, Side::kRight);
  EXPECT_EQ(matches[0].kind, MatchKind::kExact);
  EXPECT_EQ(core.pairs_emitted(), 1u);
}

TEST(HybridCoreTest, ExactModeMissesVariants) {
  HybridJoinCore core(Spec());
  core.ProcessTuple(Side::kLeft, T("SANTA CRISTINA VALGARDENA"));
  const auto matches =
      core.ProcessTuple(Side::kRight, T("SANTA CRISTINx VALGARDENA"));
  EXPECT_TRUE(matches.empty());
}

TEST(HybridCoreTest, ApproximateModeCatchesVariants) {
  HybridJoinCore core(Spec(0.8));
  core.SetProbeMode(Side::kLeft, ProbeMode::kApproximate);
  core.SetProbeMode(Side::kRight, ProbeMode::kApproximate);
  core.ProcessTuple(Side::kLeft, T("SANTA CRISTINA VALGARDENA"));
  const auto matches =
      core.ProcessTuple(Side::kRight, T("SANTA CRISTINx VALGARDENA"));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].kind, MatchKind::kApproximate);
}

TEST(HybridCoreTest, SwitchCatchUpCountsPendingTuplesOnly) {
  HybridJoinCore core(Spec());
  // 3 left tuples while right probes exactly: left qgram index lags.
  core.ProcessTuple(Side::kLeft, T("AAA BBB CCC"));
  core.ProcessTuple(Side::kLeft, T("DDD EEE FFF"));
  core.ProcessTuple(Side::kLeft, T("GGG HHH III"));
  // Switching the right side to approximate must index all 3 left
  // tuples into the q-gram index.
  EXPECT_EQ(core.SetProbeMode(Side::kRight, ProbeMode::kApproximate), 3u);
  EXPECT_EQ(core.catchup_tuples(), 3u);
  // Switching again is free.
  EXPECT_EQ(core.SetProbeMode(Side::kRight, ProbeMode::kApproximate), 0u);
  // Back to exact: the left exact index was live the whole time... it
  // was live only while right was exact; after the switch it lags by 0
  // because no left tuples arrived since.
  EXPECT_EQ(core.SetProbeMode(Side::kRight, ProbeMode::kExact), 0u);
}

TEST(HybridCoreTest, SwitchCostProportionalToDelta) {
  HybridJoinCore core(Spec());
  core.ProcessTuple(Side::kLeft, T("ONE"));
  EXPECT_EQ(core.SetProbeMode(Side::kRight, ProbeMode::kApproximate), 1u);
  core.ProcessTuple(Side::kLeft, T("TWO"));
  core.ProcessTuple(Side::kLeft, T("THREE"));
  // Exact index on the left lagged while right was approximate: only
  // the 2 new tuples need inserting.
  EXPECT_EQ(core.SetProbeMode(Side::kRight, ProbeMode::kExact), 2u);
}

TEST(HybridCoreTest, HybridStateUsesDifferentIndexesPerSide) {
  // lap/rex: left reads probe approximately, right reads exactly.
  HybridJoinCore core(Spec(0.8));
  core.SetProbeMode(Side::kLeft, ProbeMode::kApproximate);
  // Store a right tuple; maintains right qgram index (left probes it).
  core.ProcessTuple(Side::kRight, T("SANTA CRISTINA VALGARDENA"));
  // A left variant probing approximately finds it.
  auto matches =
      core.ProcessTuple(Side::kLeft, T("SANTA CRISTINx VALGARDENA"));
  ASSERT_EQ(matches.size(), 1u);
  // A right variant probing exactly misses the stored left variant.
  matches = core.ProcessTuple(Side::kRight, T("SANTA CRISTINy VALGARDENA"));
  EXPECT_TRUE(matches.empty());
}

TEST(HybridCoreTest, ExactFlagsSetOnBothSides) {
  HybridJoinCore core(Spec());
  core.ProcessTuple(Side::kLeft, T("K"));
  core.ProcessTuple(Side::kRight, T("K"));
  EXPECT_TRUE(core.store(Side::kLeft).MatchedExactly(0));
  EXPECT_TRUE(core.store(Side::kRight).MatchedExactly(0));
}

TEST(HybridCoreTest, ApproxMatchDoesNotSetExactFlags) {
  HybridJoinCore core(Spec(0.8));
  core.SetProbeMode(Side::kLeft, ProbeMode::kApproximate);
  core.SetProbeMode(Side::kRight, ProbeMode::kApproximate);
  core.ProcessTuple(Side::kLeft, T("SANTA CRISTINA VALGARDENA"));
  core.ProcessTuple(Side::kRight, T("SANTA CRISTINx VALGARDENA"));
  EXPECT_FALSE(core.store(Side::kLeft).MatchedExactly(0));
  EXPECT_FALSE(core.store(Side::kRight).MatchedExactly(0));
  EXPECT_TRUE(core.store(Side::kLeft).MatchedAny(0));
  EXPECT_TRUE(core.store(Side::kRight).MatchedAny(0));
}

TEST(HybridCoreTest, DistinctMatchedCountsOncePerTuple) {
  HybridJoinCore core(Spec());
  core.ProcessTuple(Side::kLeft, T("K"));
  core.ProcessTuple(Side::kRight, T("K"));
  core.ProcessTuple(Side::kRight, T("K"));  // second pair, same left tuple
  EXPECT_EQ(core.distinct_matched(Side::kLeft), 1u);
  EXPECT_EQ(core.distinct_matched(Side::kRight), 2u);
  EXPECT_EQ(core.pairs_emitted(), 2u);
}

TEST(HybridCoreTest, NoMatchesAcrossUnswitchedLag) {
  // Tuples inserted while an index lags must be found after catch-up.
  HybridJoinCore core(Spec(0.8));
  core.ProcessTuple(Side::kLeft, T("SANTA CRISTINA VALGARDENA"));
  // Right side probes exactly: variant missed.
  EXPECT_TRUE(
      core.ProcessTuple(Side::kRight, T("SANTA CRISTINx VALGARDENA"))
          .empty());
  // Switch right reads to approximate; the left q-gram index catches
  // up, so a *new* right variant now matches the old left tuple.
  core.SetProbeMode(Side::kRight, ProbeMode::kApproximate);
  const auto matches =
      core.ProcessTuple(Side::kRight, T("SANTA CRISTINz VALGARDENA"));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].stored_id, 0u);
}

TEST(HybridCoreTest, MemoryUsageIncludesAllStructures) {
  HybridJoinCore core(Spec());
  const size_t before = core.ApproximateMemoryUsage();
  for (int i = 0; i < 32; ++i) {
    core.ProcessTuple(Side::kLeft, T("LOCATION " + std::to_string(i)));
    core.ProcessTuple(Side::kRight, T("LOCATION " + std::to_string(i)));
  }
  EXPECT_GT(core.ApproximateMemoryUsage(), before);
}

}  // namespace
}  // namespace join
}  // namespace aqp
