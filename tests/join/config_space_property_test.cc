// Oracle equality across the whole similarity configuration space:
// every (q, measure, padding, threshold) combination must make SSHJoin
// agree exactly with the brute-force similarity join. This pins the
// soundness of MinOverlapForThreshold and the probe's count filter for
// every coefficient, not just the paper's Jaccard/q=3 default.

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "exec/scan.h"
#include "join/brute_force.h"
#include "join/sshjoin.h"

namespace aqp {
namespace join {
namespace {

using storage::Relation;
using storage::Schema;
using storage::Tuple;
using storage::Value;
using storage::ValueType;

struct Config {
  int q;
  text::SimilarityMeasure measure;
  bool pad;
  double threshold;
};

class ConfigSpaceTest
    : public ::testing::TestWithParam<
          std::tuple<int, text::SimilarityMeasure, bool, double>> {};

Relation NoisyPool(Rng* rng, size_t rows) {
  std::vector<std::string> bases;
  for (int i = 0; i < 4; ++i) {
    bases.push_back(rng->RandomString(14, "ABCDEFG") + " " +
                    rng->RandomString(9, "HIJKLMN"));
  }
  Relation r(Schema({{"s", ValueType::kString}}));
  for (size_t i = 0; i < rows; ++i) {
    std::string value = bases[rng->Index(bases.size())];
    const int edits = static_cast<int>(rng->Index(3));
    for (int e = 0; e < edits; ++e) {
      value[rng->Index(value.size())] =
          static_cast<char>('a' + rng->Index(26));
    }
    EXPECT_TRUE(r.Append(Tuple{Value(std::move(value))}).ok());
  }
  return r;
}

TEST_P(ConfigSpaceTest, SSHJoinMatchesOracle) {
  const auto [q, measure, pad, threshold] = GetParam();
  Rng rng(static_cast<uint64_t>(q) * 1000 +
          static_cast<uint64_t>(measure) * 100 + (pad ? 10 : 0) +
          static_cast<uint64_t>(threshold * 10));
  const Relation left = NoisyPool(&rng, 30);
  const Relation right = NoisyPool(&rng, 30);

  JoinSpec spec;
  spec.qgram.q = q;
  spec.qgram.pad = pad;
  spec.measure = measure;
  spec.sim_threshold = threshold;

  exec::RelationScan ls(&left);
  exec::RelationScan rs(&right);
  SymmetricJoinOptions options;
  options.spec = spec;
  SSHJoin join(&ls, &rs, options);
  auto result = exec::CollectAll(&join);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::multiset<std::pair<std::string, std::string>> got;
  for (const Tuple& row : result->rows()) {
    got.emplace(row.at(0).AsString(), row.at(1).AsString());
  }
  std::multiset<std::pair<std::string, std::string>> expected;
  for (const BrutePair& p : BruteForceSimilarityJoin(left, right, spec)) {
    expected.emplace(left.row(p.left_row).at(0).AsString(),
                     right.row(p.right_row).at(0).AsString());
  }
  EXPECT_EQ(got, expected) << "q=" << q << " measure="
                           << text::SimilarityMeasureName(measure)
                           << " pad=" << pad << " t=" << threshold;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ConfigSpaceTest,
    ::testing::Combine(
        ::testing::Values(2, 3, 4, 5),
        ::testing::Values(text::SimilarityMeasure::kJaccard,
                          text::SimilarityMeasure::kDice,
                          text::SimilarityMeasure::kCosine,
                          text::SimilarityMeasure::kOverlap),
        ::testing::Bool(), ::testing::Values(0.6, 0.9)));

}  // namespace
}  // namespace join
}  // namespace aqp
