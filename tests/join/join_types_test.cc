#include "join/join_types.h"

#include <gtest/gtest.h>

namespace aqp {
namespace join {
namespace {

using storage::Schema;
using storage::ValueType;

Schema LeftSchema() {
  return Schema({{"id", ValueType::kInt64}, {"loc", ValueType::kString}});
}
Schema RightSchema() {
  return Schema({{"loc", ValueType::kString}, {"lat", ValueType::kDouble}});
}

TEST(JoinSpecTest, DefaultIsValid) {
  JoinSpec spec;
  EXPECT_TRUE(spec.Validate().ok());
}

TEST(JoinSpecTest, RejectsBadThreshold) {
  JoinSpec spec;
  spec.sim_threshold = 1.5;
  EXPECT_TRUE(spec.Validate().IsInvalidArgument());
  spec.sim_threshold = -0.1;
  EXPECT_TRUE(spec.Validate().IsInvalidArgument());
  spec.sim_threshold = 0.0;  // cross join not expressible
  EXPECT_TRUE(spec.Validate().IsInvalidArgument());
  spec.sim_threshold = 1.0;  // boundary: identical gram sets only
  EXPECT_TRUE(spec.Validate().ok());
}

TEST(JoinSpecTest, RejectsBadQ) {
  JoinSpec spec;
  spec.qgram.q = 0;
  EXPECT_TRUE(spec.Validate().IsInvalidArgument());
}

TEST(JoinSpecTest, SchemaValidationAccepts) {
  JoinSpec spec;
  spec.left_column = 1;
  spec.right_column = 0;
  EXPECT_TRUE(spec.ValidateAgainstSchemas(LeftSchema(), RightSchema()).ok());
}

TEST(JoinSpecTest, SchemaValidationRejectsOutOfRange) {
  JoinSpec spec;
  spec.left_column = 5;
  spec.right_column = 0;
  EXPECT_TRUE(spec.ValidateAgainstSchemas(LeftSchema(), RightSchema())
                  .IsInvalidArgument());
}

TEST(JoinSpecTest, SchemaValidationRejectsNonString) {
  JoinSpec spec;
  spec.left_column = 0;  // int64
  spec.right_column = 0;
  EXPECT_TRUE(spec.ValidateAgainstSchemas(LeftSchema(), RightSchema())
                  .IsInvalidArgument());
}

TEST(JoinSpecTest, ColumnBySide) {
  JoinSpec spec;
  spec.left_column = 1;
  spec.right_column = 0;
  EXPECT_EQ(spec.column(Side::kLeft), 1u);
  EXPECT_EQ(spec.column(Side::kRight), 0u);
}

TEST(JoinMatchTest, SideProjection) {
  JoinMatch m;
  m.probe_side = Side::kRight;
  m.probe_id = 7;
  m.stored_id = 3;
  EXPECT_EQ(m.left_id(), 3u);
  EXPECT_EQ(m.right_id(), 7u);
  m.probe_side = Side::kLeft;
  EXPECT_EQ(m.left_id(), 7u);
  EXPECT_EQ(m.right_id(), 3u);
}

TEST(JoinOutputSchemaTest, ConcatenatesAndRenames) {
  const Schema out = JoinOutputSchema(LeftSchema(), RightSchema(), false);
  ASSERT_EQ(out.num_fields(), 4u);
  EXPECT_EQ(out.field(1).name, "loc");
  EXPECT_EQ(out.field(2).name, "loc_r");
}

TEST(JoinOutputSchemaTest, SimilarityColumnAppended) {
  const Schema out = JoinOutputSchema(LeftSchema(), RightSchema(), true);
  ASSERT_EQ(out.num_fields(), 5u);
  EXPECT_EQ(out.field(4).name, "sim");
  EXPECT_EQ(out.field(4).type, ValueType::kDouble);
}

TEST(MatchKindTest, Names) {
  EXPECT_STREQ(MatchKindName(MatchKind::kExact), "exact");
  EXPECT_STREQ(MatchKindName(MatchKind::kApproximate), "approximate");
}

}  // namespace
}  // namespace join
}  // namespace aqp
