#include "join/shjoin.h"

#include <gtest/gtest.h>

#include "exec/scan.h"
#include "join/brute_force.h"

namespace aqp {
namespace join {
namespace {

using storage::Relation;
using storage::Schema;
using storage::Tuple;
using storage::Value;
using storage::ValueType;

Relation Strings(const std::vector<std::string>& values) {
  Relation r(Schema({{"s", ValueType::kString}}));
  for (const auto& v : values) {
    EXPECT_TRUE(r.Append(Tuple{Value(v)}).ok());
  }
  return r;
}

TEST(SHJoinTest, MatchesBruteForceExactJoin) {
  const Relation left = Strings({"A", "B", "C", "A", "D"});
  const Relation right = Strings({"B", "A", "E", "A"});
  exec::RelationScan ls(&left);
  exec::RelationScan rs(&right);
  SymmetricJoinOptions options;
  SHJoin join(&ls, &rs, options);
  auto result = exec::CollectAll(&join);
  ASSERT_TRUE(result.ok());
  const auto expected = BruteForceExactJoin(left, right, options.spec);
  EXPECT_EQ(result->size(), expected.size());
  EXPECT_EQ(join.core().exact_pairs(), expected.size());
  EXPECT_EQ(join.core().approximate_pairs(), 0u);
}

TEST(SHJoinTest, OutputConcatenatesLeftThenRight) {
  Relation left(Schema({{"id", ValueType::kInt64},
                        {"loc", ValueType::kString}}));
  ASSERT_TRUE(left.Append(Tuple{Value(1), Value("X")}).ok());
  Relation right(Schema({{"loc", ValueType::kString},
                         {"lat", ValueType::kDouble}}));
  ASSERT_TRUE(right.Append(Tuple{Value("X"), Value(45.5)}).ok());
  exec::RelationScan ls(&left);
  exec::RelationScan rs(&right);
  SymmetricJoinOptions options;
  options.spec.left_column = 1;
  options.spec.right_column = 0;
  SHJoin join(&ls, &rs, options);
  auto result = exec::CollectAll(&join);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  const Tuple& row = result->row(0);
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row.at(0).AsInt64(), 1);
  EXPECT_EQ(row.at(1).AsString(), "X");
  EXPECT_EQ(row.at(2).AsString(), "X");
  EXPECT_DOUBLE_EQ(row.at(3).AsDouble(), 45.5);
}

TEST(SHJoinTest, EmitSimilarityAppendsColumn) {
  const Relation left = Strings({"A"});
  const Relation right = Strings({"A"});
  exec::RelationScan ls(&left);
  exec::RelationScan rs(&right);
  SymmetricJoinOptions options;
  options.emit_similarity = true;
  SHJoin join(&ls, &rs, options);
  auto result = exec::CollectAll(&join);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_DOUBLE_EQ(result->row(0).at(2).AsDouble(), 1.0);
  EXPECT_EQ(result->schema().field(2).name, "sim");
}

TEST(SHJoinTest, EmptyInputsProduceEmptyResult) {
  const Relation left = Strings({});
  const Relation right = Strings({"A"});
  exec::RelationScan ls(&left);
  exec::RelationScan rs(&right);
  SHJoin join(&ls, &rs, SymmetricJoinOptions{});
  auto count = exec::CountAll(&join);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST(SHJoinTest, VariantsDoNotMatchExactly) {
  const Relation left = Strings({"SANTA CRISTINA"});
  const Relation right = Strings({"SANTA CRISTINx"});
  exec::RelationScan ls(&left);
  exec::RelationScan rs(&right);
  SHJoin join(&ls, &rs, SymmetricJoinOptions{});
  auto count = exec::CountAll(&join);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST(SHJoinTest, DuplicateKeysProduceCrossProduct) {
  const Relation left = Strings({"K", "K"});
  const Relation right = Strings({"K", "K", "K"});
  exec::RelationScan ls(&left);
  exec::RelationScan rs(&right);
  SHJoin join(&ls, &rs, SymmetricJoinOptions{});
  auto count = exec::CountAll(&join);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 6u);
}

TEST(SHJoinTest, RejectsInvalidSpecAtOpen) {
  const Relation left = Strings({"A"});
  const Relation right = Strings({"A"});
  exec::RelationScan ls(&left);
  exec::RelationScan rs(&right);
  SymmetricJoinOptions options;
  options.spec.left_column = 9;
  SHJoin join(&ls, &rs, options);
  EXPECT_TRUE(join.Open().IsInvalidArgument());
}

TEST(SHJoinTest, QuiescentExactlyWhenNoPendingOutput) {
  const Relation left = Strings({"K", "K"});
  const Relation right = Strings({"K", "K"});
  exec::RelationScan ls(&left);
  exec::RelationScan rs(&right);
  SHJoin join(&ls, &rs, SymmetricJoinOptions{});
  ASSERT_TRUE(join.Open().ok());
  EXPECT_TRUE(join.quiescent());
  // Reading the second K from the right yields 1 match... pull tuples
  // and observe quiescence toggling: after a Next() that returned a
  // tuple, the operator may or may not be quiescent, but after EOS it
  // must be.
  while (true) {
    auto next = join.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
  }
  EXPECT_TRUE(join.quiescent());
  ASSERT_TRUE(join.Close().ok());
}

TEST(SHJoinTest, StepsEqualTuplesRead) {
  const Relation left = Strings({"A", "B", "C"});
  const Relation right = Strings({"D", "E"});
  exec::RelationScan ls(&left);
  exec::RelationScan rs(&right);
  SHJoin join(&ls, &rs, SymmetricJoinOptions{});
  ASSERT_TRUE(exec::CountAll(&join).ok());
  EXPECT_EQ(join.steps(), 5u);
  EXPECT_TRUE(join.input_exhausted(exec::Side::kLeft));
  EXPECT_TRUE(join.input_exhausted(exec::Side::kRight));
}

}  // namespace
}  // namespace join
}  // namespace aqp
