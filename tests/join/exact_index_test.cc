#include "join/exact_index.h"

#include <gtest/gtest.h>

#include "storage/tuple_store.h"

namespace aqp {
namespace join {
namespace {

using storage::Tuple;
using storage::TupleStore;
using storage::Value;

TEST(ExactIndexTest, CatchUpIndexesEverything) {
  TupleStore store(0);
  store.Add(Tuple{Value("A")});
  store.Add(Tuple{Value("B")});
  store.Add(Tuple{Value("A")});
  ExactIndex index;
  EXPECT_EQ(index.CatchUpWith(store), 3u);
  EXPECT_EQ(index.watermark(), 3u);
  EXPECT_EQ(index.Lookup("A"), (std::vector<storage::TupleId>{0, 2}));
  EXPECT_EQ(index.ChainHead("A"), 2u);
  EXPECT_EQ(index.ChainPrev(2), 0u);
  EXPECT_EQ(index.ChainPrev(0), ExactIndex::kNone);
}

TEST(ExactIndexTest, ProbeMissReturnsEmpty) {
  TupleStore store(0);
  store.Add(Tuple{Value("A")});
  ExactIndex index;
  index.CatchUpWith(store);
  EXPECT_EQ(index.ChainHead("ZZZ"), ExactIndex::kNone);
  EXPECT_TRUE(index.Lookup("ZZZ").empty());
}

TEST(ExactIndexTest, IncrementalCatchUp) {
  TupleStore store(0);
  ExactIndex index;
  store.Add(Tuple{Value("A")});
  EXPECT_EQ(index.CatchUpWith(store), 1u);
  EXPECT_EQ(index.CatchUpWith(store), 0u);  // nothing new
  store.Add(Tuple{Value("B")});
  store.Add(Tuple{Value("C")});
  EXPECT_EQ(index.CatchUpWith(store), 2u);
  EXPECT_EQ(index.watermark(), 3u);
  EXPECT_NE(index.ChainHead("C"), ExactIndex::kNone);
}

TEST(ExactIndexTest, LaggingIndexSeesNothingNew) {
  TupleStore store(0);
  ExactIndex index;
  store.Add(Tuple{Value("A")});
  index.CatchUpWith(store);
  store.Add(Tuple{Value("B")});
  // Not caught up: B invisible.
  EXPECT_EQ(index.ChainHead("B"), ExactIndex::kNone);
  EXPECT_EQ(index.watermark(), 1u);
}

TEST(ExactIndexTest, DistinctKeysAndBucketLength) {
  TupleStore store(0);
  ExactIndex index;
  for (int i = 0; i < 6; ++i) {
    store.Add(Tuple{Value(i % 2 == 0 ? "EVEN" : "ODD")});
  }
  index.CatchUpWith(store);
  EXPECT_EQ(index.distinct_keys(), 2u);
  EXPECT_DOUBLE_EQ(index.AverageBucketLength(), 3.0);
}

TEST(ExactIndexTest, MemoryUsageGrows) {
  TupleStore store(0);
  ExactIndex index;
  EXPECT_EQ(index.ApproximateMemoryUsage(), 0u);
  for (int i = 0; i < 50; ++i) {
    store.Add(Tuple{Value("key-" + std::to_string(i))});
  }
  index.CatchUpWith(store);
  EXPECT_GT(index.ApproximateMemoryUsage(), 50u * sizeof(storage::TupleId));
}

}  // namespace
}  // namespace join
}  // namespace aqp
