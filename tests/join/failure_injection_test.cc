// Failure injection: child operators that error or misbehave must not
// corrupt join state, leak opens, or mask the original error.

#include <gtest/gtest.h>

#include "adaptive/adaptive_join.h"
#include "common/failpoint.h"
#include "exec/parallel/parallel_join.h"
#include "exec/scan.h"
#include "join/shjoin.h"
#include "join/sshjoin.h"

namespace aqp {
namespace join {
namespace {

using storage::Relation;
using storage::Schema;
using storage::Tuple;
using storage::Value;
using storage::ValueType;

Schema OneCol() { return Schema({{"s", ValueType::kString}}); }

Relation Strings(const std::vector<std::string>& values) {
  Relation r(OneCol());
  for (const auto& v : values) {
    EXPECT_TRUE(r.Append(Tuple{Value(v)}).ok());
  }
  return r;
}

/// Operator that yields `good` tuples, then fails with an IO error.
class FlakyOperator : public exec::Operator {
 public:
  FlakyOperator(Schema schema, int good)
      : schema_(std::move(schema)), good_(good) {}
  Status Open() override {
    ++opens_;
    return Status::OK();
  }
  Result<std::optional<Tuple>> Next() override {
    if (produced_ >= good_) return Status::IOError("stream dropped");
    ++produced_;
    return std::optional<Tuple>(
        Tuple{Value("VALUE " + std::to_string(produced_))});
  }
  Status Close() override {
    ++closes_;
    return Status::OK();
  }
  const Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "FlakyOperator"; }
  int opens() const { return opens_; }
  int closes() const { return closes_; }

 private:
  Schema schema_;
  int good_;
  int produced_ = 0;
  int opens_ = 0;
  int closes_ = 0;
};

/// Operator whose Open() fails.
class UnopenableOperator : public exec::Operator {
 public:
  explicit UnopenableOperator(Schema schema) : schema_(std::move(schema)) {}
  Status Open() override { return Status::IOError("cannot connect"); }
  Result<std::optional<Tuple>> Next() override {
    return Status::Internal("Next after failed Open");
  }
  Status Close() override { return Status::OK(); }
  const Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "UnopenableOperator"; }

 private:
  Schema schema_;
};

TEST(FailureInjectionTest, ChildErrorSurfacesThroughJoin) {
  const Relation right = Strings({"A", "B", "C", "D"});
  FlakyOperator left(OneCol(), 2);
  exec::RelationScan right_scan(&right);
  SHJoin join(&left, &right_scan, SymmetricJoinOptions{});
  ASSERT_TRUE(join.Open().ok());
  Status seen = Status::OK();
  while (true) {
    auto next = join.Next();
    if (!next.ok()) {
      seen = next.status();
      break;
    }
    if (!next->has_value()) break;
  }
  EXPECT_TRUE(seen.IsIOError()) << seen;
}

TEST(FailureInjectionTest, FailedChildOpenPropagates) {
  const Relation right = Strings({"A"});
  UnopenableOperator left(OneCol());
  exec::RelationScan right_scan(&right);
  SHJoin join(&left, &right_scan, SymmetricJoinOptions{});
  EXPECT_TRUE(join.Open().IsIOError());
}

TEST(FailureInjectionTest, FailedRightOpenClosesAlreadyOpenedLeft) {
  // Regression: when right_->Open() fails, the join's Open() returns
  // with open_ == false — its Close() refuses to run, so if the left
  // child is not closed on the error path it stays open forever.
  FlakyOperator left(OneCol(), 4);
  UnopenableOperator right(OneCol());
  SHJoin join(&left, &right, SymmetricJoinOptions{});
  EXPECT_TRUE(join.Open().IsIOError());
  EXPECT_EQ(left.opens(), 1);
  EXPECT_EQ(left.closes(), 1);
  EXPECT_TRUE(join.Close().IsFailedPrecondition());

  // The join is still usable against an openable right child.
  const Relation data = Strings({"A"});
  exec::RelationScan good_right(&data);
  SHJoin retry(&left, &good_right, SymmetricJoinOptions{});
  ASSERT_TRUE(retry.Open().ok());
  EXPECT_EQ(left.opens(), 2);
  ASSERT_TRUE(retry.Close().ok());
  EXPECT_EQ(left.closes(), 2);
}

TEST(FailureInjectionTest, AdaptiveJoinFailedRightOpenClosesLeft) {
  FlakyOperator left(OneCol(), 4);
  UnopenableOperator right(OneCol());
  adaptive::AdaptiveJoinOptions options;
  adaptive::AdaptiveJoin join(&left, &right, options);
  EXPECT_TRUE(join.Open().IsIOError());
  EXPECT_EQ(left.opens(), 1);
  EXPECT_EQ(left.closes(), 1);
}

TEST(FailureInjectionTest, JoinLifecycleErrors) {
  const Relation data = Strings({"A"});
  exec::RelationScan l(&data);
  exec::RelationScan r(&data);
  SHJoin join(&l, &r, SymmetricJoinOptions{});
  EXPECT_TRUE(join.Next().status().IsFailedPrecondition());
  EXPECT_TRUE(join.Close().IsFailedPrecondition());
  ASSERT_TRUE(join.Open().ok());
  EXPECT_TRUE(join.Open().IsFailedPrecondition());
  ASSERT_TRUE(join.Close().ok());
}

TEST(FailureInjectionTest, BothInputsEmpty) {
  const Relation empty = Strings({});
  exec::RelationScan l(&empty);
  exec::RelationScan r(&empty);
  SSHJoin join(&l, &r, SymmetricJoinOptions{});
  auto count = exec::CountAll(&join);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
  EXPECT_EQ(join.steps(), 0u);
}

TEST(FailureInjectionTest, AdaptiveJoinWithEmptyParent) {
  const Relation child = Strings({"A", "B"});
  const Relation parent = Strings({});
  exec::RelationScan l(&child);
  exec::RelationScan r(&parent);
  adaptive::AdaptiveJoinOptions options;
  options.adaptive.parent_table_size = 0;
  adaptive::AdaptiveJoin join(&l, &r, options);
  auto count = exec::CountAll(&join);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST(FailureInjectionTest, ErrorDuringDrainAfterOneSideDone) {
  // Left exhausts cleanly; right fails during the drain phase.
  const Relation left_data = Strings({"A"});
  exec::RelationScan left(&left_data);
  FlakyOperator right(OneCol(), 3);
  SHJoin join(&left, &right, SymmetricJoinOptions{});
  ASSERT_TRUE(join.Open().ok());
  Status seen = Status::OK();
  while (true) {
    auto next = join.Next();
    if (!next.ok()) {
      seen = next.status();
      break;
    }
    if (!next->has_value()) break;
  }
  EXPECT_TRUE(seen.IsIOError());
}

TEST(FailureInjectionTest, MismatchedSchemaRejectedBeforeChildrenOpen) {
  Relation numbers(Schema({{"n", ValueType::kInt64}}));
  ASSERT_TRUE(numbers.Append(Tuple{Value(1)}).ok());
  const Relation strings = Strings({"A"});
  FlakyOperator never_opened(Schema({{"n", ValueType::kInt64}}), 1);
  exec::RelationScan number_scan(&numbers);
  exec::RelationScan string_scan(&strings);
  SHJoin join(&number_scan, &string_scan, SymmetricJoinOptions{});
  EXPECT_TRUE(join.Open().IsInvalidArgument());  // int column as key
}

TEST(FailureInjectionTest, ScanFailpointSurfacesWithBreadcrumbAndClears) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  fail::DisarmAll();
  const Relation left_data = Strings({"A", "B", "C"});
  const Relation right_data = Strings({"A", "B"});
  exec::RelationScan left(&left_data);
  exec::RelationScan right(&right_data);
  SHJoin join(&left, &right, SymmetricJoinOptions{});
  fail::ScopedFailpoint guard(
      fail::site::kScanNext,
      fail::Policy::Once(Status::IOError("injected fault")));
  ASSERT_TRUE(join.Open().ok());
  Status seen = Status::OK();
  while (true) {
    auto next = join.Next();
    if (!next.ok()) {
      seen = next.status();
      break;
    }
    if (!next->has_value()) break;
  }
  ASSERT_TRUE(seen.IsIOError()) << seen;
  EXPECT_NE(seen.message().find("site=scan.next"), std::string::npos)
      << seen;
  // The error exit left the join closable and the plan rerunnable.
  ASSERT_TRUE(join.Close().ok());
  fail::DisarmAll();
  exec::RelationScan left2(&left_data);
  exec::RelationScan right2(&right_data);
  SHJoin retry(&left2, &right2, SymmetricJoinOptions{});
  auto count = exec::CountAll(&retry);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 2u);  // A and B match themselves
}

TEST(FailureInjectionTest, ParallelOpenFailpointClosesEveryOpenedChild) {
  // OpenGuard audit, failpoint-driven: the parallel coordinator's Open
  // opens both children and then validates; a failure injected at that
  // point must close both before returning (the composite's own open_
  // flag stays false, so nothing else ever would).
  if (!fail::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  fail::DisarmAll();
  FlakyOperator left(OneCol(), 16);
  FlakyOperator right(OneCol(), 16);
  exec::parallel::ParallelJoinOptions options;
  options.num_shards = 2;
  exec::parallel::ParallelAdaptiveJoin join(&left, &right, options);
  {
    fail::ScopedFailpoint guard(
        fail::site::kParallelOpen,
        fail::Policy::Once(Status::IOError("injected fault")));
    Status s = join.Open();
    ASSERT_TRUE(s.IsIOError()) << s;
    EXPECT_NE(s.message().find("site=parallel.open"), std::string::npos)
        << s;
  }
  EXPECT_EQ(left.opens(), 1);
  EXPECT_EQ(left.closes(), 1);
  EXPECT_EQ(right.opens(), 1);
  EXPECT_EQ(right.closes(), 1);
  EXPECT_TRUE(join.Close().IsFailedPrecondition());
}

}  // namespace
}  // namespace join
}  // namespace aqp
