// Quickstart: join two small tables whose keys almost-but-not-quite
// match, letting the adaptive operator decide when approximate
// matching is worth paying for.
//
//   $ ./quickstart

#include <iostream>

#include "adaptive/adaptive_join.h"
#include "exec/operator.h"
#include "exec/scan.h"

using namespace aqp;  // NOLINT — example brevity

int main() {
  // A reference table of products...
  storage::Relation products(storage::Schema(
      {{"name", storage::ValueType::kString},
       {"price", storage::ValueType::kDouble}}));
  for (const auto& [name, price] :
       std::vector<std::pair<std::string, double>>{
           {"ESPRESSO MACHINE DELUXE EDITION", 249.0},
           {"STAINLESS STEEL MOKA POT CLASSIC", 39.0},
           {"BURR COFFEE GRINDER PROFESSIONAL", 129.0},
           {"GOOSENECK POUR OVER KETTLE MATTE", 59.0}}) {
    if (auto s = products.Append(storage::Tuple{storage::Value(name),
                                                storage::Value(price)});
        !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }

  // ...and a scraped order feed with the occasional typo.
  storage::Relation orders(storage::Schema(
      {{"order_id", storage::ValueType::kInt64},
       {"product", storage::ValueType::kString}}));
  for (const auto& [id, name] :
       std::vector<std::pair<int64_t, std::string>>{
           {1, "ESPRESSO MACHINE DELUXE EDITION"},
           {2, "STAINLESS STEEL MOKA POT CLASSIC"},
           {3, "BURR COFFEE GRINDER PROFESSIONAl"},  // typo
           {4, "GOOSENECK POUR OVER KETTLE MATTE"},
           {5, "ESPRESSO MACHINE DELUXe EDITION"}}) {  // typo
    if (auto s = orders.Append(
            storage::Tuple{storage::Value(id), storage::Value(name)});
        !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }

  exec::RelationScan order_scan(&orders);
  exec::RelationScan product_scan(&products);

  adaptive::AdaptiveJoinOptions options;
  options.join.spec.left_column = 1;   // orders.product
  options.join.spec.right_column = 0;  // products.name
  options.join.spec.sim_threshold = 0.8;
  options.join.emit_similarity = true;
  options.adaptive.parent_side = exec::Side::kRight;
  options.adaptive.parent_table_size = products.size();
  options.adaptive.delta_adapt = 2;  // tiny data: assess often
  options.adaptive.window = 4;

  adaptive::AdaptiveJoin join(&order_scan, &product_scan, options);
  auto result = exec::CollectAll(&join);
  if (!result.ok()) {
    std::cerr << "join failed: " << result.status() << "\n";
    return 1;
  }

  std::cout << "Join result (" << result->size() << " of " << orders.size()
            << " orders matched):\n"
            << result->ToString(10) << "\n";
  std::cout << "Final state: "
            << adaptive::ProcessorStateName(join.state()) << ", "
            << join.trace().transition_count() << " operator switch(es)\n\n";
  std::cout << "Adaptation timeline:\n" << join.trace().ToString() << "\n";
  return 0;
}
