// Interactive exploration of the MAR threshold space (§4.2): sweeps one
// parameter and prints the resulting gain/cost/efficiency so the
// time-completeness trade-off can be tuned for a target workload.
//
//   $ ./tuning_explorer --param=theta_curpert --values=0,1,2,4,8,16
//   $ ./tuning_explorer --param=delta_adapt --values=25,50,100,200,400

#include <cstdlib>
#include <iostream>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "metrics/experiment.h"

using namespace aqp;  // NOLINT — example brevity

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("param", "theta_curpert",
                  "parameter to sweep: theta_out|theta_curpert|"
                  "theta_pastpert|delta_adapt|window|theta_sim");
  flags.AddString("values", "0,1,2,4,8,16", "comma-separated values");
  flags.AddInt64("atlas", 2000, "atlas size");
  flags.AddInt64("accidents", 4000, "accidents size");
  flags.AddString("pattern", "few_high", "perturbation pattern");
  flags.AddInt64("seed", 42, "generator seed");
  if (auto s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n" << flags.Help();
    return 1;
  }

  metrics::ExperimentOptions base;
  base.testcase.atlas.size = static_cast<size_t>(flags.GetInt64("atlas"));
  base.testcase.accidents.size =
      static_cast<size_t>(flags.GetInt64("accidents"));
  base.testcase.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  for (datagen::PerturbationPattern p : datagen::kAllPatterns) {
    if (flags.GetString("pattern") == datagen::PerturbationPatternName(p)) {
      base.testcase.pattern = p;
    }
  }

  const std::string param = flags.GetString("param");
  TablePrinter table(
      {param, "g_rel", "c_rel", "e", "switches", "completeness"});
  for (const std::string& text : Split(flags.GetString("values"), ',')) {
    const double value = std::strtod(text.c_str(), nullptr);
    metrics::ExperimentOptions options = base;
    if (param == "theta_out") {
      options.adaptive.theta_out = value;
    } else if (param == "theta_curpert") {
      options.adaptive.theta_curpert = static_cast<uint32_t>(value);
    } else if (param == "theta_pastpert") {
      options.adaptive.theta_pastpert = static_cast<uint32_t>(value);
    } else if (param == "delta_adapt") {
      options.adaptive.delta_adapt = static_cast<uint64_t>(value);
    } else if (param == "window") {
      options.adaptive.window = static_cast<size_t>(value);
    } else if (param == "theta_sim") {
      options.sim_threshold = value;
    } else {
      std::cerr << "unknown parameter '" << param << "'\n";
      return 1;
    }
    auto result = metrics::RunExperiment(options);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    table.AddRow({text, FormatDouble(result->weighted.RelativeGain(), 3),
                  FormatDouble(result->weighted.RelativeCost(), 3),
                  FormatDouble(result->weighted.Efficiency(), 2),
                  std::to_string(result->adaptive.total_transitions),
                  FormatDouble(result->adaptive_completeness, 3)});
  }
  std::cout << "sweep of " << param << " on pattern '"
            << flags.GetString("pattern") << "' ("
            << flags.GetInt64("accidents") << " accidents vs "
            << flags.GetInt64("atlas") << " atlas entries)\n\n";
  table.Print(std::cout);
  return 0;
}
