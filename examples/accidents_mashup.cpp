// The paper's motivating mashup (§1): a nationwide car-accidents feed,
// collated from many insurers, is joined on-the-fly against a reference
// street atlas to place accidents on a map. Street names in the feed
// don't always match the atlas exactly, and the user prefers a fast,
// slightly incomplete map over a slow, complete one.
//
//   $ ./accidents_mashup --accidents=20000 --pattern=few_high --rate=0.1

#include <algorithm>
#include <iostream>
#include <map>

#include "adaptive/adaptive_join.h"
#include "exec/sink.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "datagen/generator.h"
#include "exec/scan.h"

using namespace aqp;  // NOLINT — example brevity

namespace {

datagen::PerturbationPattern ParsePattern(const std::string& name) {
  for (datagen::PerturbationPattern p : datagen::kAllPatterns) {
    if (name == datagen::PerturbationPatternName(p)) return p;
  }
  std::cerr << "unknown pattern '" << name << "', using uniform\n";
  return datagen::PerturbationPattern::kUniform;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt64("atlas", 8082, "reference atlas size (paper: 8082)");
  flags.AddInt64("accidents", 20000, "accident feed size");
  flags.AddString("pattern", "few_high",
                  "perturbation pattern: uniform|low_intensity|few_high|"
                  "many_high");
  flags.AddDouble("rate", 0.10, "variant rate in the feed");
  flags.AddDouble("theta-sim", 0.85, "similarity threshold");
  flags.AddInt64("seed", 42, "generator seed");
  flags.AddBool("show-trace", false, "print the adaptation timeline");
  if (auto s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n" << flags.Help();
    return 1;
  }

  // Build the scenario.
  datagen::TestCaseOptions tc_options;
  tc_options.pattern = ParsePattern(flags.GetString("pattern"));
  tc_options.variant_rate = flags.GetDouble("rate");
  tc_options.atlas.size = static_cast<size_t>(flags.GetInt64("atlas"));
  tc_options.accidents.size =
      static_cast<size_t>(flags.GetInt64("accidents"));
  tc_options.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  auto tc = datagen::GenerateTestCase(tc_options);
  if (!tc.ok()) {
    std::cerr << tc.status() << "\n";
    return 1;
  }
  std::cout << "Scenario: " << tc->child.size() << " accidents vs "
            << tc->parent.size() << " atlas entries, "
            << tc->ChildVariantCount() << " perturbed locations ("
            << tc_options.Label() << ")\n\n";

  // Run the adaptive join and both baselines, timing each.
  struct Outcome {
    std::string name;
    size_t matched = 0;
    double seconds = 0.0;
    double weighted_cost = 0.0;
  };
  std::vector<Outcome> outcomes;
  adaptive::AdaptationTrace trace;
  std::map<std::string, size_t> hotspots;

  for (const auto& [name, policy, pinned] :
       std::vector<std::tuple<std::string, adaptive::AdaptivePolicy,
                              adaptive::ProcessorState>>{
           {"all-exact (SHJoin)", adaptive::AdaptivePolicy::kPinned,
            adaptive::ProcessorState::kLexRex},
           {"adaptive (paper)", adaptive::AdaptivePolicy::kAdaptive,
            adaptive::ProcessorState::kLexRex},
           {"all-approx (SSHJoin)", adaptive::AdaptivePolicy::kPinned,
            adaptive::ProcessorState::kLapRap}}) {
    exec::RelationScan accidents(&tc->child);
    exec::RelationScan atlas(&tc->parent);
    adaptive::AdaptiveJoinOptions jo;
    jo.join.spec.left_column = datagen::kAccidentsLocationColumn;
    jo.join.spec.right_column = datagen::kAtlasLocationColumn;
    jo.join.spec.sim_threshold = flags.GetDouble("theta-sim");
    jo.adaptive.parent_side = exec::Side::kRight;
    jo.adaptive.parent_table_size = tc->parent.size();
    jo.adaptive.policy = policy;
    jo.adaptive.initial_state = pinned;
    adaptive::AdaptiveJoin join(&accidents, &atlas, jo);

    Timer timer;
    const bool is_adaptive = policy == adaptive::AdaptivePolicy::kAdaptive;
    auto drained = exec::Drain(&join, [&](const storage::Tuple& row) {
      if (is_adaptive) {
        // The "map overlay": bucket accidents per matched atlas entry.
        ++hotspots[row.at(4).AsString()];
      }
      return true;
    });
    if (!drained.ok()) {
      std::cerr << drained.status() << "\n";
      return 1;
    }
    Outcome outcome;
    outcome.name = name;
    outcome.matched = join.core().distinct_matched(exec::Side::kLeft);
    outcome.seconds = timer.ElapsedSeconds();
    outcome.weighted_cost =
        join.cost().TotalCostWith(adaptive::StateWeights::Paper());
    outcomes.push_back(outcome);
    if (is_adaptive) trace = join.trace();
  }

  TablePrinter table({"strategy", "accidents placed", "completeness",
                      "wall time", "weighted cost"});
  for (const Outcome& o : outcomes) {
    table.AddRow({o.name, FormatCount(o.matched),
                  FormatDouble(100.0 * static_cast<double>(o.matched) /
                                   static_cast<double>(tc->child.size()),
                               1) + "%",
                  FormatDouble(o.seconds, 3) + "s",
                  FormatCount(static_cast<uint64_t>(o.weighted_cost))});
  }
  table.Print(std::cout);

  std::cout << "\nTop accident hot spots (adaptive run):\n";
  std::vector<std::pair<size_t, std::string>> ranked;
  for (const auto& [loc, n] : hotspots) ranked.emplace_back(n, loc);
  std::sort(ranked.rbegin(), ranked.rend());
  TablePrinter hot({"location", "accidents"});
  for (size_t i = 0; i < ranked.size() && i < 5; ++i) {
    hot.AddRow({ranked[i].second, std::to_string(ranked[i].first)});
  }
  hot.Print(std::cout);

  std::cout << "\nOperator switches: " << trace.transition_count() << "\n";
  if (flags.GetBool("show-trace")) {
    std::cout << trace.ToString(40);
  }
  return 0;
}
