// Multi-query linkage serving: N concurrent linkage queries share one
// worker pool through the LinkageService, each with its own time
// budget. Admission caps how many run at once; deadline governors turn
// the paper's time-completeness trade-off into a per-query knob — the
// tight-budget queries come back early with partial results and honest
// completeness numbers, while the patient ones run to the end.
//
//   $ ./serve_many --queries=6 --concurrent=2 --atlas=2000 --accidents=4000

#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "common/flags.h"
#include "common/table_printer.h"
#include "datagen/generator.h"
#include "exec/scan.h"
#include "service/linkage_service.h"

using namespace aqp;  // NOLINT — example brevity

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt64("queries", 6, "linkage queries to submit");
  flags.AddInt64("concurrent", 2, "admission: max concurrently running");
  flags.AddInt64("max-shards", 4, "admission: total shard budget");
  flags.AddInt64("shards", 2, "shards requested per query");
  flags.AddInt64("atlas", 2000, "atlas (parent) size");
  flags.AddInt64("accidents", 4000, "accidents (child) size");
  flags.AddInt64("seed", 20090326, "generator seed");
  if (auto s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n" << flags.Help();
    return 1;
  }
  const auto num_queries = static_cast<size_t>(flags.GetInt64("queries"));

  datagen::TestCaseOptions tco;
  tco.pattern = datagen::PerturbationPattern::kFewHighIntensityRegions;
  tco.variant_rate = 0.10;
  tco.atlas.size = static_cast<size_t>(flags.GetInt64("atlas"));
  tco.accidents.size = static_cast<size_t>(flags.GetInt64("accidents"));
  tco.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  auto tc = datagen::GenerateTestCase(tco);
  if (!tc.ok()) {
    std::cerr << tc.status() << "\n";
    return 1;
  }

  service::ServiceOptions so;
  so.admission.max_concurrent_queries =
      static_cast<size_t>(flags.GetInt64("concurrent"));
  so.admission.max_total_shards =
      static_cast<size_t>(flags.GetInt64("max-shards"));
  service::LinkageService linkage(so);

  // The same join, under a spread of time budgets: every second query
  // gets a hard step budget that shrinks as the queue grows — the
  // impatient tenants of the service — and one mid-pack query gets a
  // soft budget that degrades it to exact-only matching instead.
  const uint64_t total_steps = tc->child.size() + tc->parent.size();
  std::vector<std::unique_ptr<exec::RelationScan>> scans;
  std::vector<service::QueryId> ids;
  for (size_t i = 0; i < num_queries; ++i) {
    scans.push_back(std::make_unique<exec::RelationScan>(&tc->child));
    scans.push_back(std::make_unique<exec::RelationScan>(&tc->parent));
    service::QueryOptions qo;
    qo.join.base.join.spec.left_column = datagen::kAccidentsLocationColumn;
    qo.join.base.join.spec.right_column = datagen::kAtlasLocationColumn;
    qo.join.base.join.spec.sim_threshold = 0.85;
    qo.join.base.adaptive.parent_side = exec::Side::kRight;
    qo.join.base.adaptive.parent_table_size = tc->parent.size();
    qo.join.num_shards = static_cast<size_t>(flags.GetInt64("shards"));
    if (i % 2 == 1) {
      qo.deadline.hard_deadline_steps = total_steps / (i + 1);
    } else if (i == 2) {
      qo.deadline.soft_deadline_steps = total_steps / 4;
    }
    auto id = linkage.Submit(scans[scans.size() - 2].get(),
                             scans[scans.size() - 1].get(), qo);
    if (!id.ok()) {
      std::cerr << id.status() << "\n";
      return 1;
    }
    ids.push_back(*id);
  }

  TablePrinter table(
      {"query", "state", "budget", "steps", "pairs", "completeness",
       "final state", "peak KiB", "ms"});
  for (size_t i = 0; i < ids.size(); ++i) {
    auto stats = linkage.Wait(ids[i]);
    if (!stats.ok()) {
      std::cerr << stats.status() << "\n";
      return 1;
    }
    std::string budget = "none";
    if (i % 2 == 1) {
      budget = "hard " + std::to_string(total_steps / (i + 1));
    } else if (i == 2) {
      budget = "soft " + std::to_string(total_steps / 4);
    }
    std::ostringstream completeness;
    completeness << std::fixed << std::setprecision(1)
                 << 100.0 * stats->completeness.ratio << "%"
                 << (stats->finalized_early ? " (partial)" : "");
    std::ostringstream ms;
    ms << std::fixed << std::setprecision(1)
       << static_cast<double>(stats->elapsed.count()) / 1e6;
    table.AddRow({std::to_string(ids[i]),
                  service::QueryStateName(stats->state), budget,
                  std::to_string(stats->steps),
                  std::to_string(stats->pairs_emitted), completeness.str(),
                  adaptive::ProcessorStateName(stats->final_state),
                  std::to_string(stats->peak_memory_bytes / 1024),
                  ms.str()});
  }
  std::cout << "serving " << num_queries << " queries, "
            << so.admission.max_concurrent_queries << " concurrent, "
            << "shard budget " << so.admission.max_total_shards << ", peak "
            << linkage.peak_running_queries() << " running / "
            << linkage.peak_shards_in_use() << " shards\n\n";
  table.Print(std::cout);
  return 0;
}
