// Streaming record linkage (§1's customer-merger scenario): two live
// customer feeds are linked while they stream, with no chance to
// pre-process either table. The adaptive operator reacts mid-stream
// when one feed enters a dirty region (e.g. a batch imported from a
// legacy system), and reverts to cheap exact matching once it passes.
//
//   $ ./streaming_linkage --customers=4000 --dirty-start=0.4 --dirty-end=0.6

#include <iostream>

#include "adaptive/adaptive_join.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "datagen/names.h"
#include "datagen/variant.h"
#include "exec/stream.h"

using namespace aqp;  // NOLINT — example brevity

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt64("customers", 4000, "customers per feed");
  flags.AddDouble("dirty-start", 0.4,
                  "start of the dirty region in feed B (fraction)");
  flags.AddDouble("dirty-end", 0.6,
                  "end of the dirty region in feed B (fraction)");
  flags.AddDouble("dirty-rate", 0.5,
                  "variant probability inside the dirty region");
  flags.AddInt64("seed", 7, "generator seed");
  if (auto s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n" << flags.Help();
    return 1;
  }
  const auto n = static_cast<size_t>(flags.GetInt64("customers"));
  const auto dirty_begin =
      static_cast<size_t>(flags.GetDouble("dirty-start") * n);
  const auto dirty_end = static_cast<size_t>(flags.GetDouble("dirty-end") * n);

  // Shared customer universe: both organisations know the same people.
  Rng rng(static_cast<uint64_t>(flags.GetInt64("seed")));
  datagen::LocationNameGenerator names(36);
  std::vector<std::string> universe;
  universe.reserve(n);
  for (size_t i = 0; i < n; ++i) universe.push_back(names.Generate(&rng));

  const storage::Schema feed_schema(
      {{"customer", storage::ValueType::kString},
       {"seq", storage::ValueType::kInt64}});

  // Feed A streams the universe in its own order; feed B streams an
  // independent permutation (two organisations never export in the
  // same order) and corrupts names inside its dirty region — a badly
  // migrated batch somewhere in the middle of the export.
  size_t a_pos = 0;
  exec::GeneratorSource feed_a(
      feed_schema, [&]() -> std::optional<storage::Tuple> {
        if (a_pos >= universe.size()) return std::nullopt;
        const size_t i = a_pos++;
        return storage::Tuple{storage::Value(universe[i]),
                              storage::Value(static_cast<int64_t>(i))};
      });
  std::vector<size_t> b_order(n);
  for (size_t i = 0; i < n; ++i) b_order[i] = i;
  rng.Shuffle(&b_order);
  size_t b_pos = 0;
  Rng corrupt_rng = rng.Fork();
  datagen::VariantOptions variant_options;
  const double dirty_rate = flags.GetDouble("dirty-rate");
  exec::GeneratorSource feed_b(
      feed_schema, [&]() -> std::optional<storage::Tuple> {
        if (b_pos >= universe.size()) return std::nullopt;
        const size_t i = b_pos++;
        const size_t customer = b_order[i];
        std::string name = universe[customer];
        if (i >= dirty_begin && i < dirty_end &&
            corrupt_rng.Bernoulli(dirty_rate)) {
          name = datagen::MakeVariant(name, variant_options, &corrupt_rng);
        }
        return storage::Tuple{storage::Value(std::move(name)),
                              storage::Value(static_cast<int64_t>(customer))};
      });

  adaptive::AdaptiveJoinOptions options;
  options.join.spec.left_column = 0;
  options.join.spec.right_column = 0;
  options.join.spec.sim_threshold = 0.85;
  // Feed A is clean and complete: treat it as the parent.
  options.adaptive.parent_side = exec::Side::kLeft;
  options.adaptive.parent_table_size = n;
  options.adaptive.delta_adapt = 50;
  options.adaptive.window = 50;

  adaptive::AdaptiveJoin join(&feed_a, &feed_b, options);
  if (auto s = join.Open(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // Pull the stream, reporting progress every 10%.
  size_t linked = 0;
  const size_t report_every = std::max<size_t>(1, 2 * n / 10);
  uint64_t next_report = report_every;
  std::cout << "streaming " << n << " + " << n << " customer records; "
            << "dirty region of feed B: [" << dirty_begin << ", "
            << dirty_end << ")\n\n";
  while (true) {
    auto next = join.Next();
    if (!next.ok()) {
      std::cerr << next.status() << "\n";
      return 1;
    }
    if (!next->has_value()) break;
    ++linked;
    if (join.steps() >= next_report) {
      next_report += report_every;
      std::cout << "  step " << join.steps() << ": linked "
                << FormatCount(linked) << " pairs, state "
                << adaptive::ProcessorStateName(join.state()) << "\n";
    }
  }
  if (auto s = join.Close(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  std::cout << "\nlinked " << FormatCount(linked) << " of "
            << FormatCount(n) << " customers ("
            << FormatDouble(100.0 * static_cast<double>(linked) /
                                static_cast<double>(n),
                            1)
            << "%)\n";
  std::cout << "operator switches: " << join.trace().transition_count()
            << "\n\nadaptation timeline (last 20 assessments):\n"
            << join.trace().ToString(20);
  return 0;
}
