// Reproduces Fig. 8: the Fig. 7 step counts priced with the per-state
// unit costs w_i and transition costs v_i (§4.3), showing where the
// adaptive run actually spends its cost budget.
//
// Paper findings to verify: the ~30% of steps spent in EE contribute a
// negligible share of cost; transition costs never contribute
// significantly; total adaptive cost c_abs stays below the
// all-approximate cost C for every test case.
//
//   $ ./bench_fig8_cost_breakdown [--atlas=8082] [--accidents=10000]

#include <iostream>

#include "bench_support.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "metrics/report.h"

int main(int argc, char** argv) {
  using namespace aqp;  // NOLINT
  const auto config = bench::PaperBenchConfig::FromArgs(argc, argv);
  std::cout << "Fig. 8 reproduction — weighted cost breakdown, paper "
               "weights "
            << adaptive::StateWeights::Paper().ToString() << "\n\n";
  auto results = bench::RunPaperMatrix(config);
  if (!results.ok()) {
    std::cerr << results.status() << "\n";
    return 1;
  }
  std::cout << "\n";
  metrics::PrintFig8CostBreakdown(*results, adaptive::StateWeights::Paper(),
                                  std::cout);

  // The paper's "never worse than all-approximate" check.
  bool always_cheaper = true;
  double worst_fraction = 0.0;
  for (const auto& r : *results) {
    const double fraction = r.weighted.c_abs / r.weighted.C;
    worst_fraction = std::max(worst_fraction, fraction);
    if (r.weighted.c_abs >= r.weighted.C) always_cheaper = false;
  }
  std::cout << "\nc_abs < C for all cases: "
            << (always_cheaper ? "yes" : "NO — VIOLATION") << "; worst "
            << "c_abs/C = " << FormatDouble(worst_fraction, 3)
            << " (paper: adaptive cost never exceeds all-approximate)\n";

  // Same breakdown from measured wall time rather than model weights.
  std::cout << "\nmeasured wall-time view (seconds):\n";
  TablePrinter wall({"test case", "exact", "adaptive", "approx",
                     "adaptive/approx"});
  for (const auto& r : *results) {
    wall.AddRow({r.label, FormatDouble(r.all_exact.wall_seconds, 3),
                 FormatDouble(r.adaptive.wall_seconds, 3),
                 FormatDouble(r.all_approx.wall_seconds, 3),
                 FormatDouble(r.adaptive.wall_seconds /
                                  std::max(1e-9, r.all_approx.wall_seconds),
                              3)});
  }
  wall.Print(std::cout);
  return 0;
}
