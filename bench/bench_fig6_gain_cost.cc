// Reproduces Fig. 6: relative gain g_rel, relative cost c_rel, and the
// efficiency index e = g_rel/c_rel for all eight test cases
// (4 perturbation patterns × {variants in child only, in both tables}).
//
// The paper's qualitative findings to verify against the output:
//   - g_rel and c_rel each fall in a narrow band across test cases;
//   - e > 1 everywhere;
//   - efficiency is highest when variants are only in the child.
//
//   $ ./bench_fig6_gain_cost [--atlas=8082] [--accidents=10000]

#include <iostream>

#include "bench_support.h"
#include "common/string_util.h"
#include "metrics/report.h"

int main(int argc, char** argv) {
  using namespace aqp;  // NOLINT
  const auto config = bench::PaperBenchConfig::FromArgs(argc, argv);
  std::cout << "Fig. 6 reproduction — " << config.accidents_size
            << " accidents vs " << config.atlas_size << " atlas rows, "
            << FormatDouble(100 * config.variant_rate, 0)
            << "% variants, theta_sim=" << config.sim_threshold << "\n\n";
  auto results = bench::RunPaperMatrix(config);
  if (!results.ok()) {
    std::cerr << results.status() << "\n";
    return 1;
  }
  std::cout << "\n";
  metrics::PrintFig6GainCost(*results, std::cout);

  // Summary of the paper's three headline claims.
  double min_e = 1e18, max_e = 0;
  double best_child_e = 0, best_both_e = 0;
  for (const auto& r : *results) {
    const double e = r.weighted.Efficiency();
    min_e = std::min(min_e, e);
    max_e = std::max(max_e, e);
    if (r.testcase.perturb_parent) {
      best_both_e = std::max(best_both_e, e);
    } else {
      best_child_e = std::max(best_child_e, e);
    }
  }
  std::cout << "\nefficiency range across the eight cases: ["
            << FormatDouble(min_e, 2) << ", " << FormatDouble(max_e, 2)
            << "]  (paper: e > 1 throughout, highest for child-only "
               "cases; child-only best here: "
            << FormatDouble(best_child_e, 2)
            << ", both best: " << FormatDouble(best_both_e, 2) << ")\n";

  std::cout << "\nmachine-readable rows:\n";
  metrics::WriteResultsCsv(*results, std::cout);
  return 0;
}
