// Memory governance overhead and the memory-completeness trade-off:
// wall time and average completeness for a fixed batch of linkage
// queries through a LinkageService, sweeping the per-query hard budget
// (as a percentage of one query's measured solo peak; 0 = ungoverned)
// against admission concurrency. The paper's time-completeness knob
// has a memory twin: a budget below the natural peak buys bounded
// footprint with a strict-prefix partial result, and the sweep shows
// what each budget ratio costs in completeness and buys in wall time.
//
// Interpreting checked-in numbers: budgets below the first-control-
// point floor (upfront store reservations) all finalize at the same
// earliest boundary, so completeness plateaus rather than falling
// linearly; on a single-core host the concurrency axis measures
// coordination overhead only.
//
//   $ ./bench_memory_pressure --benchmark_out=BENCH_memory_pressure.json \
//         --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include <memory>
#include <thread>
#include <vector>

#include "bench_support.h"
#include "common/memory_budget.h"
#include "datagen/generator.h"
#include "exec/parallel/parallel_join.h"
#include "exec/scan.h"
#include "exec/stream.h"
#include "service/linkage_service.h"

namespace {

using namespace aqp;  // NOLINT

constexpr size_t kQueriesPerBatch = 6;

const datagen::TestCase& SharedCase() {
  static const datagen::TestCase* tc = [] {
    datagen::TestCaseOptions options;
    options.atlas.size = 500;
    options.accidents.size = 1000;
    options.variant_rate = 0.10;
    options.seed = 13;
    auto generated = datagen::GenerateTestCase(options);
    if (!generated.ok()) std::abort();
    return new datagen::TestCase(std::move(*generated));
  }();
  return *tc;
}

exec::parallel::ParallelJoinOptions QueryOptionsFor(
    const datagen::TestCase& tc, size_t flavor) {
  exec::parallel::ParallelJoinOptions options;
  options.base.join.spec.left_column = datagen::kAccidentsLocationColumn;
  options.base.join.spec.right_column = datagen::kAtlasLocationColumn;
  options.base.join.spec.sim_threshold = 0.85;
  options.base.join.left_size_hint = tc.child.size();
  options.base.join.right_size_hint = tc.parent.size();
  options.base.adaptive.parent_side = exec::Side::kRight;
  options.base.adaptive.parent_table_size = tc.parent.size();
  options.num_shards = 2;
  // Alternate adaptive and pinned-exact tenants.
  if (flavor % 2 == 1) {
    options.base.adaptive.policy = adaptive::AdaptivePolicy::kPinned;
    options.base.adaptive.initial_state = adaptive::ProcessorState::kLexRex;
  }
  return options;
}

/// One adaptive query's natural peak footprint, measured once from a
/// solo governed run — the budget sweep's 100% mark.
uint64_t SoloPeakBytes() {
  static const uint64_t peak = [] {
    const datagen::TestCase& tc = SharedCase();
    mem::BudgetNode root("calibrate");
    uint64_t measured = 0;
    {
      mem::BudgetNode query("query", &root);
      exec::RelationScan child(&tc.child);
      exec::RelationScan parent(&tc.parent);
      exec::parallel::ParallelJoinOptions options = QueryOptionsFor(tc, 0);
      options.memory_budget = &query;
      exec::parallel::ParallelAdaptiveJoin join(&child, &parent, options);
      auto count = exec::CountAll(&join);
      if (!count.ok()) std::abort();
      measured = std::max(root.peak(), join.memory_bytes());
    }
    return measured;
  }();
  return peak;
}

/// The sweep: per-query hard budget at `budget_pct` percent of the
/// solo peak (0 = ungoverned), `concurrent` queries admitted at once.
void BM_MemoryPressure(benchmark::State& state) {
  const datagen::TestCase& tc = SharedCase();
  const auto budget_pct = static_cast<uint64_t>(state.range(0));
  const auto concurrent = static_cast<size_t>(state.range(1));
  const uint64_t hard_bytes = budget_pct * SoloPeakBytes() / 100;
  double completeness = 0.0;
  uint64_t partials = 0, peak_sum = 0;
  size_t batches = 0;
  for (auto _ : state) {
    service::ServiceOptions so;
    so.worker_threads = 2;
    so.admission.max_concurrent_queries = concurrent;
    so.admission.max_total_shards = 2 * concurrent;
    service::LinkageService service(so);
    std::vector<std::unique_ptr<exec::RelationScan>> scans;
    std::vector<service::QueryId> ids;
    for (size_t i = 0; i < kQueriesPerBatch; ++i) {
      scans.push_back(std::make_unique<exec::RelationScan>(&tc.child));
      scans.push_back(std::make_unique<exec::RelationScan>(&tc.parent));
      service::QueryOptions qo;
      qo.join = QueryOptionsFor(tc, i);
      qo.memory.hard_bytes = hard_bytes;
      auto id = service.Submit(scans[scans.size() - 2].get(),
                               scans[scans.size() - 1].get(), qo);
      if (!id.ok()) {
        state.SkipWithError("submit failed");
        return;
      }
      ids.push_back(*id);
    }
    for (service::QueryId id : ids) {
      auto stats = service.Wait(id);
      if (!stats.ok() || stats->state != service::QueryState::kDone) {
        state.SkipWithError("query failed");
        return;
      }
      completeness += stats->completeness.ratio;
      if (stats->finalized_early) ++partials;
      peak_sum += stats->peak_memory_bytes;
    }
    ++batches;
  }
  const double queries =
      static_cast<double>(batches * kQueriesPerBatch);
  state.counters["budget_pct"] = static_cast<double>(budget_pct);
  state.counters["concurrent"] = static_cast<double>(concurrent);
  state.counters["hard_bytes"] = static_cast<double>(hard_bytes);
  state.counters["completeness"] =
      queries > 0 ? completeness / queries : 0.0;
  state.counters["partials_per_batch"] =
      batches > 0 ? static_cast<double>(partials) /
                        static_cast<double>(batches)
                  : 0.0;
  state.counters["avg_peak_bytes"] =
      queries > 0 ? static_cast<double>(peak_sum) / queries : 0.0;
}
BENCHMARK(BM_MemoryPressure)
    ->ArgsProduct({{0, 100, 75, 50}, {1, 3}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::AddCustomContext("aqp_build_type", aqp::bench::BuildTypeName());
  const unsigned cpus = std::thread::hardware_concurrency();
  benchmark::AddCustomContext("aqp_host_cpus", std::to_string(cpus));
  benchmark::AddCustomContext("aqp_solo_peak_bytes",
                              std::to_string(SoloPeakBytes()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
