// Reproduces Fig. 7: the share of execution steps the adaptive run
// spends in each processor state (EE = lex/rex, AE = lap/rex,
// EA = lex/rap, AA = lap/rap) plus the number of state transitions,
// for each of the eight test cases.
//
// Paper finding to verify: a substantial share (~30%) of steps stays in
// the cheap EE state even while achieving the Fig. 6 gains, and the
// transition count stays small.
//
//   $ ./bench_fig7_time_breakdown [--atlas=8082] [--accidents=10000]

#include <iostream>

#include "bench_support.h"
#include "common/string_util.h"
#include "metrics/report.h"

int main(int argc, char** argv) {
  using namespace aqp;  // NOLINT
  const auto config = bench::PaperBenchConfig::FromArgs(argc, argv);
  std::cout << "Fig. 7 reproduction — step breakdown per state\n\n";
  auto results = bench::RunPaperMatrix(config);
  if (!results.ok()) {
    std::cerr << results.status() << "\n";
    return 1;
  }
  std::cout << "\n";
  metrics::PrintFig7TimeBreakdown(*results, std::cout);

  double total_ee_share = 0.0;
  for (const auto& r : *results) {
    total_ee_share += r.adaptive.StepShare(adaptive::ProcessorState::kLexRex);
  }
  std::cout << "\nmean EE (lex/rex) step share: "
            << FormatDouble(100.0 * total_ee_share /
                                static_cast<double>(results->size()),
                            1)
            << "%  (paper reports roughly 30%)\n";
  return 0;
}
