// Micro-benchmarks and ablations beyond the paper's tables: end-to-end
// operator throughput, the §2.3 space model, and the interleave-policy
// ablation called out in DESIGN.md §8.
//
//   $ ./bench_join_micro

#include <benchmark/benchmark.h>

#include "adaptive/adaptive_join.h"
#include "bench_support.h"
#include "datagen/generator.h"
#include "exec/scan.h"
#include "join/shjoin.h"
#include "join/sshjoin.h"

namespace {

using namespace aqp;  // NOLINT

const datagen::TestCase& SharedCase(size_t scale) {
  static std::map<size_t, datagen::TestCase> cases;
  auto it = cases.find(scale);
  if (it == cases.end()) {
    datagen::TestCaseOptions options;
    options.atlas.size = scale;
    options.accidents.size = scale * 2;
    options.variant_rate = 0.10;
    options.seed = 9;
    auto tc = datagen::GenerateTestCase(options);
    if (!tc.ok()) std::abort();
    it = cases.emplace(scale, std::move(*tc)).first;
  }
  return it->second;
}

join::SymmetricJoinOptions JoinOptions() {
  join::SymmetricJoinOptions options;
  options.spec.left_column = datagen::kAccidentsLocationColumn;
  options.spec.right_column = datagen::kAtlasLocationColumn;
  options.spec.sim_threshold = 0.85;
  return options;
}

/// Exact symmetric hash join throughput (tuples/second).
void BM_SHJoin_EndToEnd(benchmark::State& state) {
  const auto& tc = SharedCase(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    join::SHJoin join(&child, &parent, JoinOptions());
    auto count = exec::CountAll(&join);
    if (!count.ok()) {
      state.SkipWithError("join failed");
      return;
    }
    benchmark::DoNotOptimize(*count);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(tc.child.size() + tc.parent.size()));
}
BENCHMARK(BM_SHJoin_EndToEnd)->Arg(1000)->Arg(2000)->Arg(4000);

/// Approximate symmetric set hash join throughput.
void BM_SSHJoin_EndToEnd(benchmark::State& state) {
  const auto& tc = SharedCase(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    join::SSHJoin join(&child, &parent, JoinOptions());
    auto count = exec::CountAll(&join);
    if (!count.ok()) {
      state.SkipWithError("join failed");
      return;
    }
    benchmark::DoNotOptimize(*count);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(tc.child.size() + tc.parent.size()));
}
BENCHMARK(BM_SSHJoin_EndToEnd)->Arg(1000)->Arg(4000);

/// The adaptive operator on the same workload.
void BM_AdaptiveJoin_EndToEnd(benchmark::State& state) {
  const auto& tc = SharedCase(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    adaptive::AdaptiveJoinOptions options;
    options.join = JoinOptions();
    options.adaptive.parent_side = exec::Side::kRight;
    options.adaptive.parent_table_size = tc.parent.size();
    adaptive::AdaptiveJoin join(&child, &parent, options);
    auto count = exec::CountAll(&join);
    if (!count.ok()) {
      state.SkipWithError("join failed");
      return;
    }
    benchmark::DoNotOptimize(*count);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(tc.child.size() + tc.parent.size()));
}
BENCHMARK(BM_AdaptiveJoin_EndToEnd)->Arg(1000)->Arg(4000);

/// The legacy iterator protocol on the same workload: one virtual
/// Next() with Result<optional<Tuple>> packaging per output row, and
/// per-tuple child pulls (batch_size = 1). This is what every drain
/// paid before the vectorized NextBatch path existed.
void BM_SHJoin_LegacyNextProtocol(benchmark::State& state) {
  const auto& tc = SharedCase(2000);
  for (auto _ : state) {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    join::SymmetricJoinOptions options = JoinOptions();
    options.batch_size = 1;
    join::SHJoin join(&child, &parent, options);
    if (!join.Open().ok()) {
      state.SkipWithError("open failed");
      return;
    }
    size_t count = 0;
    while (true) {
      auto next = join.Next();
      if (!next.ok()) {
        state.SkipWithError("join failed");
        return;
      }
      if (!next->has_value()) break;
      ++count;
    }
    (void)join.Close();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(tc.child.size() + tc.parent.size()));
}
BENCHMARK(BM_SHJoin_LegacyNextProtocol);

/// Columnar protocol drain: the native NextColumnBatch path — child
/// scans fill typed column vectors, the store ingests (key view, hash,
/// payload slice) rows, and output cells stream out of the stores'
/// columns. This is the layout the aqp_batch_layout context describes.
void BM_SHJoin_ColumnarDrain(benchmark::State& state) {
  const auto& tc = SharedCase(2000);
  for (auto _ : state) {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    join::SHJoin join(&child, &parent, JoinOptions());
    if (!join.Open().ok()) {
      state.SkipWithError("open failed");
      return;
    }
    size_t count = 0;
    storage::ColumnBatch batch(&join.output_schema(),
                               storage::ColumnBatch::kDefaultCapacity);
    while (true) {
      if (!join.NextColumnBatch(&batch).ok()) {
        state.SkipWithError("join failed");
        return;
      }
      if (batch.empty()) break;
      count += batch.size();
    }
    (void)join.Close();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(tc.child.size() + tc.parent.size()));
}
BENCHMARK(BM_SHJoin_ColumnarDrain);

/// The row-of-Tuples compatibility adapter on the same workload: the
/// engine runs columnar inside, but every output row is materialized
/// as a Tuple (vector of variant cells, heap string per string cell)
/// at the batch boundary — the per-row cost the columnar protocol
/// exists to avoid. Compare against BM_SHJoin_ColumnarDrain.
void BM_SHJoin_RowAdapterDrain(benchmark::State& state) {
  const auto& tc = SharedCase(2000);
  for (auto _ : state) {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    join::SHJoin join(&child, &parent, JoinOptions());
    if (!join.Open().ok()) {
      state.SkipWithError("open failed");
      return;
    }
    size_t count = 0;
    storage::TupleBatch batch(&join.output_schema(),
                              storage::TupleBatch::kDefaultCapacity);
    while (true) {
      if (!join.NextBatch(&batch).ok()) {
        state.SkipWithError("join failed");
        return;
      }
      if (batch.empty()) break;
      count += batch.size();
    }
    (void)join.Close();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(tc.child.size() + tc.parent.size()));
}
BENCHMARK(BM_SHJoin_RowAdapterDrain);

/// Batch-size sweep over the vectorized execution path: the same exact
/// SHJoin workload with both the operator's internal step batching and
/// the drain batching set to the swept size. batch_size = 1 degenerates
/// to tuple-at-a-time execution (results and traces are identical for
/// every size — see tests/integration/batch_parity_test.cc — so this
/// measures pure engine overhead).
void BM_SHJoin_BatchSweep(benchmark::State& state) {
  const auto& tc = SharedCase(2000);
  const auto batch = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    join::SymmetricJoinOptions options = JoinOptions();
    options.batch_size = batch;
    join::SHJoin join(&child, &parent, options);
    exec::ExecOptions drain;
    drain.batch_size = batch;
    auto count = exec::CountAll(&join, drain);
    if (!count.ok()) {
      state.SkipWithError("join failed");
      return;
    }
    benchmark::DoNotOptimize(*count);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(tc.child.size() + tc.parent.size()));
}
BENCHMARK(BM_SHJoin_BatchSweep)
    ->Arg(1)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096);

/// The same sweep on the full adaptive operator (MAR loop at batch-
/// aligned quiescent points).
void BM_AdaptiveJoin_BatchSweep(benchmark::State& state) {
  const auto& tc = SharedCase(2000);
  const auto batch = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    adaptive::AdaptiveJoinOptions options;
    options.join = JoinOptions();
    options.join.batch_size = batch;
    options.adaptive.parent_side = exec::Side::kRight;
    options.adaptive.parent_table_size = tc.parent.size();
    adaptive::AdaptiveJoin join(&child, &parent, options);
    exec::ExecOptions drain;
    drain.batch_size = batch;
    auto count = exec::CountAll(&join, drain);
    if (!count.ok()) {
      state.SkipWithError("join failed");
      return;
    }
    benchmark::DoNotOptimize(*count);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(tc.child.size() + tc.parent.size()));
}
BENCHMARK(BM_AdaptiveJoin_BatchSweep)
    ->Arg(1)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096);

/// Interleave-policy ablation on the adaptive operator.
void BM_AdaptiveJoin_InterleavePolicy(benchmark::State& state) {
  const auto& tc = SharedCase(2000);
  const auto policy = static_cast<exec::InterleavePolicy>(state.range(0));
  for (auto _ : state) {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    adaptive::AdaptiveJoinOptions options;
    options.join = JoinOptions();
    options.join.interleave = policy;
    options.join.left_size_hint = tc.child.size();
    options.join.right_size_hint = tc.parent.size();
    options.adaptive.parent_side = exec::Side::kRight;
    options.adaptive.parent_table_size = tc.parent.size();
    adaptive::AdaptiveJoin join(&child, &parent, options);
    auto count = exec::CountAll(&join);
    if (!count.ok()) {
      state.SkipWithError("join failed");
      return;
    }
    benchmark::DoNotOptimize(*count);
  }
  state.SetLabel(exec::InterleavePolicyName(policy));
}
BENCHMARK(BM_AdaptiveJoin_InterleavePolicy)
    ->Arg(static_cast<int>(exec::InterleavePolicy::kAlternate))
    ->Arg(static_cast<int>(exec::InterleavePolicy::kProportional));

/// §2.3 space model: report index memory as per-iteration counters.
void BM_IndexSpaceModel(benchmark::State& state) {
  const auto& tc = SharedCase(4000);
  for (auto _ : state) {
    join::HybridJoinCore core(JoinOptions().spec);
    core.SetProbeMode(exec::Side::kLeft, join::ProbeMode::kApproximate);
    core.SetProbeMode(exec::Side::kRight, join::ProbeMode::kApproximate);
    for (size_t i = 0; i < tc.parent.size(); ++i) {
      core.ProcessTuple(exec::Side::kRight, tc.parent.row(i));
    }
    // Exact structures too, for the comparison.
    core.SetProbeMode(exec::Side::kLeft, join::ProbeMode::kExact);
    state.counters["exact_index_bytes_per_tuple"] = benchmark::Counter(
        static_cast<double>(core.exact_index(exec::Side::kRight)
                                .ApproximateMemoryUsage()) /
        static_cast<double>(tc.parent.size()));
    state.counters["qgram_index_bytes_per_tuple"] = benchmark::Counter(
        static_cast<double>(core.qgram_index(exec::Side::kRight)
                                .ApproximateMemoryUsage()) /
        static_cast<double>(tc.parent.size()));
  }
}
BENCHMARK(BM_IndexSpaceModel)->Iterations(1);

}  // namespace

// BENCHMARK_MAIN(), plus context recording the build type of the
// *measured* library (the stock "library_build_type" key describes
// the Google Benchmark shared library, not this code).
int main(int argc, char** argv) {
  benchmark::AddCustomContext("aqp_build_type", aqp::bench::BuildTypeName());
  // Tuple-transport layout of the measured pipeline: "columnar" since
  // the ColumnBatch protocol replaced row-of-variant batches end to
  // end (PR 4); earlier recordings were "row".
  benchmark::AddCustomContext("aqp_batch_layout", "columnar");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
