#include "bench_support.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/timer.h"

namespace aqp {
namespace bench {

const char* BuildTypeName() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

unsigned HostCpuCount() { return std::thread::hardware_concurrency(); }

namespace {

/// Every bench binary links bench_support; a debug-grade build prints
/// this banner before anything else runs, so numbers recorded from an
/// unoptimized library can never masquerade as real measurements.
struct DebugBuildWarning {
  DebugBuildWarning() {
#ifndef NDEBUG
    std::fprintf(stderr,
                 "\n"
                 "********************************************************\n"
                 "** WARNING: NDEBUG is not defined — this benchmark    **\n"
                 "** binary was built WITHOUT release optimizations.    **\n"
                 "** Numbers from this run are NOT valid measurements.  **\n"
                 "** Reconfigure with -DCMAKE_BUILD_TYPE=Release.       **\n"
                 "********************************************************\n"
                 "\n");
#endif
  }
};
const DebugBuildWarning kDebugBuildWarning;
bool ParseSizeArg(const char* arg, const char* name, size_t* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = static_cast<size_t>(std::strtoull(arg + prefix.size(), nullptr, 10));
  return true;
}
bool ParseDoubleArg(const char* arg, const char* name, double* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = std::strtod(arg + prefix.size(), nullptr);
  return true;
}
}  // namespace

PaperBenchConfig PaperBenchConfig::FromArgs(int argc, char** argv) {
  PaperBenchConfig config;
  for (int i = 1; i < argc; ++i) {
    size_t size_value = 0;
    double double_value = 0.0;
    if (ParseSizeArg(argv[i], "atlas", &size_value)) {
      config.atlas_size = size_value;
    } else if (ParseSizeArg(argv[i], "accidents", &size_value)) {
      config.accidents_size = size_value;
    } else if (ParseSizeArg(argv[i], "seed", &size_value)) {
      config.seed = size_value;
    } else if (ParseDoubleArg(argv[i], "rate", &double_value)) {
      config.variant_rate = double_value;
    } else if (ParseDoubleArg(argv[i], "theta-sim", &double_value)) {
      config.sim_threshold = double_value;
    }
  }
  return config;
}

metrics::ExperimentOptions PaperBenchConfig::MakeExperiment(
    datagen::PerturbationPattern pattern, bool perturb_parent) const {
  metrics::ExperimentOptions options;
  options.testcase.pattern = pattern;
  options.testcase.perturb_parent = perturb_parent;
  options.testcase.variant_rate = variant_rate;
  options.testcase.atlas.size = atlas_size;
  options.testcase.accidents.size = accidents_size;
  options.testcase.seed = seed;
  options.sim_threshold = sim_threshold;
  options.adaptive.delta_adapt = delta_adapt;
  options.adaptive.window = window;
  options.adaptive.theta_out = theta_out;
  options.adaptive.theta_curpert = theta_curpert;
  options.adaptive.theta_pastpert = theta_pastpert;
  return options;
}

Result<std::vector<metrics::ExperimentResult>> RunPaperMatrix(
    const PaperBenchConfig& config) {
  std::vector<metrics::ExperimentResult> results;
  for (datagen::PerturbationPattern pattern : datagen::kAllPatterns) {
    for (bool both : {false, true}) {
      Timer timer;
      auto result =
          RunExperiment(config.MakeExperiment(pattern, both));
      if (!result.ok()) return result.status();
      std::fprintf(stderr, "  [%s] done in %.1fs\n",
                   result->label.c_str(), timer.ElapsedSeconds());
      results.push_back(std::move(*result));
    }
  }
  return results;
}

}  // namespace bench
}  // namespace aqp
