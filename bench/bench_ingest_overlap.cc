// Ingest-overlap benchmark: what does pipelining the source parse +
// routing of epoch e+1 under epoch e's phase execution actually buy?
// Every benchmark runs the same workload twice — pipeline_ingest off
// (serial: route, then execute, strictly alternating) and on (the
// ingest task group stages the next epoch while the phases run) — so
// the pair isolates the overlap win. Two feeds are swept:
//
//   * generator-backed: RelationScan over in-memory rows, where the
//     refill is cheap and the measured effect is mostly routing
//     overlap and swap-point bookkeeping;
//   * CSV-backed: CsvSource parsing real CSV text per refill — the
//     record-linkage-shaped feed where ingest is expensive and
//     overlap has something substantial to hide.
//
// A PrefetchSource pair measures the single-threaded counterpart
// (refill overlap without any shard parallelism).
//
// Interpreting checked-in numbers: read "aqp_host_cpus" first. On a
// 1-CPU host the ingest task and the phase tasks time-slice one core,
// so the pipelined points measure staging overhead with no real
// overlap (IngestStats::stall_ns approaches overlap_route_ns there);
// the speedup target applies on multicore hardware. Per-pair ingest
// counters are exported alongside the timings (stall_ms, overlap_ms,
// staged epochs per run).
//
//   $ ./bench_ingest_overlap --benchmark_out=BENCH_ingest_overlap.json \
//         --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "bench_support.h"
#include "datagen/generator.h"
#include "exec/csv_io.h"
#include "exec/parallel/parallel_join.h"
#include "exec/prefetch.h"
#include "exec/scan.h"
#include "storage/relation_io.h"

namespace {

using namespace aqp;  // NOLINT

const datagen::TestCase& SharedCase(size_t scale) {
  static std::map<size_t, datagen::TestCase> cases;
  auto it = cases.find(scale);
  if (it == cases.end()) {
    datagen::TestCaseOptions options;
    options.atlas.size = scale;
    options.accidents.size = scale * 2;
    options.variant_rate = 0.10;
    options.seed = 9;
    auto tc = datagen::GenerateTestCase(options);
    if (!tc.ok()) std::abort();
    it = cases.emplace(scale, std::move(*tc)).first;
  }
  return it->second;
}

/// CSV text of both relations of a case, serialized once and reparsed
/// by CsvSource every iteration (the parse is the ingest cost the
/// pipelined path overlaps with execution).
const std::pair<std::string, std::string>& SharedCsv(size_t scale) {
  static std::map<size_t, std::pair<std::string, std::string>> texts;
  auto it = texts.find(scale);
  if (it == texts.end()) {
    const datagen::TestCase& tc = SharedCase(scale);
    std::ostringstream child, parent;
    storage::WriteRelationCsv(tc.child, &child);
    storage::WriteRelationCsv(tc.parent, &parent);
    it = texts
             .emplace(scale,
                      std::make_pair(child.str(), parent.str()))
             .first;
  }
  return it->second;
}

exec::parallel::ParallelJoinOptions JoinOptions(const datagen::TestCase& tc,
                                                size_t shards,
                                                bool pipelined) {
  exec::parallel::ParallelJoinOptions options;
  options.base.join.spec.left_column = datagen::kAccidentsLocationColumn;
  options.base.join.spec.right_column = datagen::kAtlasLocationColumn;
  options.base.join.spec.sim_threshold = 0.85;
  options.base.join.left_size_hint = tc.child.size();
  options.base.join.right_size_hint = tc.parent.size();
  options.base.adaptive.parent_side = exec::Side::kRight;
  options.base.adaptive.parent_table_size = tc.parent.size();
  options.num_shards = shards;
  options.pipeline_ingest = pipelined;
  return options;
}

void ExportIngestCounters(benchmark::State& state,
                          const exec::parallel::IngestStats& ingest) {
  state.counters["staged_epochs"] = benchmark::Counter(
      static_cast<double>(ingest.epochs_staged),
      benchmark::Counter::kAvgIterations);
  state.counters["stall_ms"] =
      benchmark::Counter(static_cast<double>(ingest.stall_ns) / 1e6,
                         benchmark::Counter::kAvgIterations);
  state.counters["overlap_ms"] =
      benchmark::Counter(static_cast<double>(ingest.overlap_route_ns) / 1e6,
                         benchmark::Counter::kAvgIterations);
  state.counters["serial_route_ms"] =
      benchmark::Counter(static_cast<double>(ingest.serial_route_ns) / 1e6,
                         benchmark::Counter::kAvgIterations);
}

/// Generator-backed adaptive run: cheap refills, the overlap is mostly
/// the routing loop itself.
void BM_IngestOverlap_Generator(benchmark::State& state) {
  const auto& tc = SharedCase(static_cast<size_t>(state.range(0)));
  const auto shards = static_cast<size_t>(state.range(1));
  const bool pipelined = state.range(2) != 0;
  exec::parallel::IngestStats ingest;
  for (auto _ : state) {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    exec::parallel::ParallelAdaptiveJoin join(
        &child, &parent, JoinOptions(tc, shards, pipelined));
    auto count = exec::CountAll(&join);
    if (!count.ok()) {
      state.SkipWithError("join failed");
      return;
    }
    benchmark::DoNotOptimize(*count);
    ingest.epochs_staged += join.ingest_stats().epochs_staged;
    ingest.stall_ns += join.ingest_stats().stall_ns;
    ingest.overlap_route_ns += join.ingest_stats().overlap_route_ns;
    ingest.serial_route_ns += join.ingest_stats().serial_route_ns;
  }
  ExportIngestCounters(state, ingest);
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(tc.child.size() + tc.parent.size()));
}
BENCHMARK(BM_IngestOverlap_Generator)
    ->ArgsProduct({{2000, 4000}, {1, 2, 4}, {0, 1}})
    ->ArgNames({"scale", "shards", "pipelined"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// CSV-backed adaptive run: every refill parses CSV records, so the
/// staged epoch carries real parse cost off the critical path.
void BM_IngestOverlap_Csv(benchmark::State& state) {
  const auto scale = static_cast<size_t>(state.range(0));
  const auto shards = static_cast<size_t>(state.range(1));
  const bool pipelined = state.range(2) != 0;
  const datagen::TestCase& tc = SharedCase(scale);
  const auto& csv = SharedCsv(scale);
  exec::parallel::IngestStats ingest;
  for (auto _ : state) {
    exec::CsvSource child(tc.child.schema(), csv.first);
    exec::CsvSource parent(tc.parent.schema(), csv.second);
    exec::parallel::ParallelAdaptiveJoin join(
        &child, &parent, JoinOptions(tc, shards, pipelined));
    auto count = exec::CountAll(&join);
    if (!count.ok()) {
      state.SkipWithError("join failed");
      return;
    }
    benchmark::DoNotOptimize(*count);
    ingest.epochs_staged += join.ingest_stats().epochs_staged;
    ingest.stall_ns += join.ingest_stats().stall_ns;
    ingest.overlap_route_ns += join.ingest_stats().overlap_route_ns;
    ingest.serial_route_ns += join.ingest_stats().serial_route_ns;
  }
  ExportIngestCounters(state, ingest);
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(tc.child.size() + tc.parent.size()));
}
BENCHMARK(BM_IngestOverlap_Csv)
    ->ArgsProduct({{2000, 4000}, {1, 2, 4}, {0, 1}})
    ->ArgNames({"scale", "shards", "pipelined"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Single-threaded counterpart: drain a CSV parse through
/// PrefetchSource (producer thread overlaps the parse with the drain)
/// vs straight through. No join — this isolates the source wrapper.
void BM_CsvDrain_Prefetch(benchmark::State& state) {
  const auto scale = static_cast<size_t>(state.range(0));
  const bool prefetch = state.range(1) != 0;
  const datagen::TestCase& tc = SharedCase(scale);
  const auto& csv = SharedCsv(scale);
  for (auto _ : state) {
    exec::CsvSource source(tc.child.schema(), csv.first);
    exec::Operator* drained = &source;
    exec::PrefetchSource wrapper(&source);
    if (prefetch) drained = &wrapper;
    if (!drained->Open().ok()) {
      state.SkipWithError("open failed");
      return;
    }
    storage::ColumnBatch batch(&drained->output_schema());
    size_t rows = 0;
    while (true) {
      if (!drained->NextColumnBatch(&batch).ok()) {
        state.SkipWithError("drain failed");
        return;
      }
      if (batch.empty()) break;
      rows += batch.size();
    }
    if (!drained->Close().ok()) {
      state.SkipWithError("close failed");
      return;
    }
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tc.child.size()));
}
BENCHMARK(BM_CsvDrain_Prefetch)
    ->ArgsProduct({{2000, 4000}, {0, 1}})
    ->ArgNames({"scale", "prefetch"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN(), plus context recording the build type of the
// *measured* library (the stock "library_build_type" key describes
// the Google Benchmark shared library, not this code).
int main(int argc, char** argv) {
  benchmark::AddCustomContext("aqp_build_type", aqp::bench::BuildTypeName());
  const unsigned cpus = std::thread::hardware_concurrency();
  benchmark::AddCustomContext("aqp_host_cpus", std::to_string(cpus));
  if (cpus <= 1) {
    benchmark::AddCustomContext(
        "aqp_host_note",
        "single-core host: the ingest task time-slices with the phase "
        "tasks, so pipelined points measure staging overhead without real "
        "overlap (stall_ms ~ overlap_ms); the speedup target applies on "
        "multicore machines");
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
