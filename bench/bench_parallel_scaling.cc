// Shard-count scaling of the partition-parallel symmetric join on the
// SHJoin/SSHJoin micro-bench workloads (same generated test cases and
// sizes as bench_join_micro). Each benchmark runs the parallel engine
// pinned to one state — lex/rex is the parallel SHJoin, lap/rap the
// parallel SSHJoin — or in full adaptive mode, sweeping shard counts
// {1, 2, 4, 8}. The 1-shard configuration is the scaling baseline: it
// pays the exchange like every other configuration, so the sweep
// isolates the parallel speedup (tests prove results and traces are
// identical at every point).
//
// Interpreting checked-in numbers: read the JSON's "num_cpus" /
// "aqp_host_cpus" context first. On a single-core host (e.g. a 1-CPU
// CI container) the worker threads time-slice one core, so the sweep
// measures pure coordination overhead — multi-shard points can only
// be slower, and the speedup target applies on multicore hardware.
//
//   $ ./bench_parallel_scaling --benchmark_out=BENCH_parallel_scaling.json \
//         --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include <map>
#include <thread>

#include "bench_support.h"
#include "datagen/generator.h"
#include "exec/parallel/parallel_join.h"
#include "exec/scan.h"

namespace {

using namespace aqp;  // NOLINT

const datagen::TestCase& SharedCase(size_t scale) {
  static std::map<size_t, datagen::TestCase> cases;
  auto it = cases.find(scale);
  if (it == cases.end()) {
    datagen::TestCaseOptions options;
    options.atlas.size = scale;
    options.accidents.size = scale * 2;
    options.variant_rate = 0.10;
    options.seed = 9;
    auto tc = datagen::GenerateTestCase(options);
    if (!tc.ok()) std::abort();
    it = cases.emplace(scale, std::move(*tc)).first;
  }
  return it->second;
}

exec::parallel::ParallelJoinOptions BaseOptions(const datagen::TestCase& tc,
                                                size_t shards) {
  exec::parallel::ParallelJoinOptions options;
  options.base.join.spec.left_column = datagen::kAccidentsLocationColumn;
  options.base.join.spec.right_column = datagen::kAtlasLocationColumn;
  options.base.join.spec.sim_threshold = 0.85;
  options.base.join.left_size_hint = tc.child.size();
  options.base.join.right_size_hint = tc.parent.size();
  options.base.adaptive.parent_side = exec::Side::kRight;
  options.base.adaptive.parent_table_size = tc.parent.size();
  options.num_shards = shards;
  return options;
}

void RunPinned(benchmark::State& state, adaptive::ProcessorState pinned) {
  const auto& tc = SharedCase(static_cast<size_t>(state.range(0)));
  const auto shards = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    exec::parallel::ParallelJoinOptions options = BaseOptions(tc, shards);
    options.base.adaptive.policy = adaptive::AdaptivePolicy::kPinned;
    options.base.adaptive.initial_state = pinned;
    exec::parallel::ParallelAdaptiveJoin join(&child, &parent, options);
    auto count = exec::CountAll(&join);
    if (!count.ok()) {
      state.SkipWithError("join failed");
      return;
    }
    benchmark::DoNotOptimize(*count);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(tc.child.size() + tc.parent.size()));
}

/// Parallel SHJoin (pinned lex/rex): all-exact matching.
void BM_ParallelSHJoin_ShardSweep(benchmark::State& state) {
  RunPinned(state, adaptive::ProcessorState::kLexRex);
}
BENCHMARK(BM_ParallelSHJoin_ShardSweep)
    ->ArgsProduct({{2000, 4000}, {1, 2, 4, 8}})
    ->ArgNames({"scale", "shards"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Parallel SSHJoin (pinned lap/rap): all-approximate matching — the
/// compute-heavy workload partition parallelism exists for.
void BM_ParallelSSHJoin_ShardSweep(benchmark::State& state) {
  RunPinned(state, adaptive::ProcessorState::kLapRap);
}
BENCHMARK(BM_ParallelSSHJoin_ShardSweep)
    ->ArgsProduct({{2000, 4000}, {1, 2, 4, 8}})
    ->ArgNames({"scale", "shards"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Full adaptive MAR run (δ_adapt = W = 100): epochs barrier every 100
/// steps, so this measures coordination overhead under the paper's
/// tightest control cadence.
void BM_ParallelAdaptive_ShardSweep(benchmark::State& state) {
  const auto& tc = SharedCase(static_cast<size_t>(state.range(0)));
  const auto shards = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    exec::RelationScan child(&tc.child);
    exec::RelationScan parent(&tc.parent);
    exec::parallel::ParallelJoinOptions options = BaseOptions(tc, shards);
    exec::parallel::ParallelAdaptiveJoin join(&child, &parent, options);
    auto count = exec::CountAll(&join);
    if (!count.ok()) {
      state.SkipWithError("join failed");
      return;
    }
    benchmark::DoNotOptimize(*count);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(tc.child.size() + tc.parent.size()));
}
BENCHMARK(BM_ParallelAdaptive_ShardSweep)
    ->ArgsProduct({{2000, 4000}, {1, 2, 4, 8}})
    ->ArgNames({"scale", "shards"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN(), plus context recording the build type of the
// *measured* library (the stock "library_build_type" key describes
// the Google Benchmark shared library, not this code).
int main(int argc, char** argv) {
  benchmark::AddCustomContext("aqp_build_type", aqp::bench::BuildTypeName());
  const unsigned cpus = std::thread::hardware_concurrency();
  benchmark::AddCustomContext("aqp_host_cpus", std::to_string(cpus));
  if (cpus <= 1) {
    benchmark::AddCustomContext(
        "aqp_host_note",
        "single-core host: shard sweep measures coordination overhead only; "
        "parallel speedup requires a multicore machine");
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
