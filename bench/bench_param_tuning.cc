// Reproduces the §4.2 parameter tuning: an empirical exploration of the
// MAR threshold space on the few-high-intensity pattern (the case where
// adaptation pays off most visibly), reporting gain/cost/efficiency per
// setting. The paper's conclusions to compare against:
//
//   - best settings vary little across test cases;
//   - theta_sim = 0.85 brings the all-approximate result size close to
//     the expected size (completeness ~1);
//   - delta_adapt = 100 and W = 100 are adequate;
//   - the algorithm is insensitive to theta_out (0.05 is fine);
//   - theta_curpert and theta_pastpert visibly move the gain/cost ratio
//     (best: theta_curpert = 2, theta_pastpert in [2, 5]).
//
//   $ ./bench_param_tuning [--atlas=2021] [--accidents=4000]

#include <iostream>

#include "bench_support.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "metrics/experiment.h"

namespace {

using namespace aqp;  // NOLINT

struct SweepPoint {
  std::string value;
  metrics::ExperimentOptions options;
};

void RunSweep(const std::string& name, const std::vector<SweepPoint>& points,
              std::ostream& os) {
  TablePrinter table({name, "g_rel", "c_rel", "e", "switches",
                      "completeness", "EE share"});
  for (const SweepPoint& point : points) {
    auto result = metrics::RunExperiment(point.options);
    if (!result.ok()) {
      os << "sweep " << name << " failed: " << result.status() << "\n";
      return;
    }
    table.AddRow(
        {point.value, FormatDouble(result->weighted.RelativeGain(), 3),
         FormatDouble(result->weighted.RelativeCost(), 3),
         FormatDouble(result->weighted.Efficiency(), 2),
         std::to_string(result->adaptive.total_transitions),
         FormatDouble(result->adaptive_completeness, 3),
         FormatDouble(
             100.0 * result->adaptive.StepShare(
                         adaptive::ProcessorState::kLexRex),
             1) +
             "%"});
    std::cerr << "  [" << name << "=" << point.value << "] done\n";
  }
  os << "\nsweep: " << name << "\n";
  table.Print(os);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aqp;  // NOLINT
  bench::PaperBenchConfig config = bench::PaperBenchConfig::FromArgs(argc,
                                                                     argv);
  // Tuning runs use a quarter-scale workload so the whole sweep matrix
  // stays fast; pass --atlas/--accidents to change.
  if (config.atlas_size == 8082) config.atlas_size = 2021;
  if (config.accidents_size == 10000) config.accidents_size = 4000;

  auto base = [&](datagen::PerturbationPattern pattern =
                      datagen::PerturbationPattern::kFewHighIntensityRegions) {
    return config.MakeExperiment(pattern, /*perturb_parent=*/false);
  };

  std::cout << "§4.2 parameter tuning — pattern few_high, "
            << config.accidents_size << " accidents vs "
            << config.atlas_size << " atlas rows\n";

  {
    std::vector<SweepPoint> points;
    for (double v : {0.70, 0.80, 0.85, 0.90, 0.95}) {
      SweepPoint p{FormatDouble(v, 2), base()};
      p.options.sim_threshold = v;
      points.push_back(std::move(p));
    }
    RunSweep("theta_sim", points, std::cout);
  }
  {
    std::vector<SweepPoint> points;
    for (uint64_t v : {25u, 50u, 100u, 200u, 400u}) {
      SweepPoint p{std::to_string(v), base()};
      p.options.adaptive.delta_adapt = v;
      points.push_back(std::move(p));
    }
    RunSweep("delta_adapt", points, std::cout);
  }
  {
    std::vector<SweepPoint> points;
    for (size_t v : {25u, 50u, 100u, 200u, 400u}) {
      SweepPoint p{std::to_string(v), base()};
      p.options.adaptive.window = v;
      points.push_back(std::move(p));
    }
    RunSweep("window_W", points, std::cout);
  }
  {
    std::vector<SweepPoint> points;
    for (double v : {0.01, 0.05, 0.10, 0.20}) {
      SweepPoint p{FormatDouble(v, 2), base()};
      p.options.adaptive.theta_out = v;
      points.push_back(std::move(p));
    }
    RunSweep("theta_out", points, std::cout);
  }
  {
    std::vector<SweepPoint> points;
    for (uint32_t v : {0u, 1u, 2u, 4u, 8u, 16u}) {
      SweepPoint p{std::to_string(v), base()};
      p.options.adaptive.theta_curpert = v;
      points.push_back(std::move(p));
    }
    RunSweep("theta_curpert", points, std::cout);
  }
  {
    std::vector<SweepPoint> points;
    for (uint32_t v : {1u, 2u, 5u, 10u, 1000u}) {
      SweepPoint p{std::to_string(v), base()};
      p.options.adaptive.theta_pastpert = v;
      points.push_back(std::move(p));
    }
    RunSweep("theta_pastpert", points, std::cout);
  }
  // Count- vs ratio-interpretation of theta_curpert (DESIGN.md §4).
  {
    std::vector<SweepPoint> points;
    SweepPoint count{"count<=2", base()};
    count.options.adaptive.theta_curpert = 2;
    points.push_back(std::move(count));
    SweepPoint ratio{"ratio<=0.02", base()};
    ratio.options.adaptive.curpert_is_ratio = true;
    ratio.options.adaptive.theta_curpert_ratio = 0.02;
    points.push_back(std::move(ratio));
    RunSweep("curpert_interpretation", points, std::cout);
  }
  // Futility-revert extension on/off: on recoverable-variant workloads
  // it should be a near no-op (approximate matching *does* help here;
  // the extension only pays off on unrecoverable shortfalls — see
  // tests/adaptive/futility_revert_test.cc).
  {
    std::vector<SweepPoint> points;
    SweepPoint off{"off (paper)", base()};
    points.push_back(std::move(off));
    SweepPoint on{"on", base()};
    on.options.adaptive.enable_futility_revert = true;
    points.push_back(std::move(on));
    RunSweep("futility_revert", points, std::cout);
  }
  return 0;
}
