#ifndef AQP_BENCH_BENCH_SUPPORT_H_
#define AQP_BENCH_BENCH_SUPPORT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "metrics/experiment.h"

namespace aqp {
namespace bench {

/// "release" when the bench translation units were compiled with
/// NDEBUG (assertions off, optimization expected), else "debug".
/// Recorded into benchmark output so checked-in numbers are auditable.
const char* BuildTypeName();

/// Logical CPUs of the host (0 when the runtime cannot tell) — every
/// bench main records this as "aqp_host_cpus" context so checked-in
/// numbers carry the machine size they were measured on.
unsigned HostCpuCount();

/// \brief Scale and MAR configuration shared by the figure benches.
///
/// Defaults replicate the paper's setup: an 8082-row atlas, a 10,000
/// row accidents feed, 10% variants, θ_sim = 0.85, δ_adapt = W = 100,
/// θ_out = 0.05, θ_curpert = 2, θ_pastpert = 5.
struct PaperBenchConfig {
  size_t atlas_size = 8082;
  size_t accidents_size = 10000;
  double variant_rate = 0.10;
  double sim_threshold = 0.85;
  uint64_t delta_adapt = 100;
  size_t window = 100;
  double theta_out = 0.05;
  uint32_t theta_curpert = 2;
  uint32_t theta_pastpert = 5;
  uint64_t seed = 20090324;  // EDBT 2009, day one

  /// Parses --atlas=, --accidents=, --rate=, --seed= overrides.
  static PaperBenchConfig FromArgs(int argc, char** argv);

  /// Experiment options for one of the eight §4.1 test cases.
  metrics::ExperimentOptions MakeExperiment(
      datagen::PerturbationPattern pattern, bool perturb_parent) const;
};

/// Runs the paper's full 8-case matrix (4 patterns × {child, both}),
/// printing one progress line per case to stderr.
Result<std::vector<metrics::ExperimentResult>> RunPaperMatrix(
    const PaperBenchConfig& config);

}  // namespace bench
}  // namespace aqp

#endif  // AQP_BENCH_BENCH_SUPPORT_H_
