// Reproduces the §4.3 weight calibration: measures the elapsed time of
// one step in each processor state and of each transition kind on this
// machine, normalizes by the lex/rex step cost, and prints the w/v
// vectors next to the paper's published ones
// (w = [1, 22.14, 51.8, 70.2], v = [122.48, 37.96, 84.99, 173.42]).
//
// Absolute agreement is not expected — different hardware, allocator,
// and string lengths — but the ordering (AA >> EA > AE >> EE) and the
// orders of magnitude should reproduce.
//
//   $ ./bench_weight_calibration [--atlas=8082] [--accidents=10000]

#include <iostream>

#include "adaptive/adaptive_join.h"
#include "bench_support.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "datagen/generator.h"
#include "exec/scan.h"
#include "metrics/experiment.h"

int main(int argc, char** argv) {
  using namespace aqp;  // NOLINT
  const auto config = bench::PaperBenchConfig::FromArgs(argc, argv);
  auto options = config.MakeExperiment(
      datagen::PerturbationPattern::kUniform, /*perturb_parent=*/true);
  auto tc = datagen::GenerateTestCase(options.testcase);
  if (!tc.ok()) {
    std::cerr << tc.status() << "\n";
    return 1;
  }

  // Per-state unit step costs: one pinned run per state over the same
  // data (the paper averages per-step elapsed times per state).
  double mean_step_ns[adaptive::kNumProcessorStates] = {0, 0, 0, 0};
  for (adaptive::ProcessorState state : adaptive::kAllProcessorStates) {
    auto run = metrics::RunPolicy(*tc, options,
                                  adaptive::AdaptivePolicy::kPinned, state,
                                  nullptr);
    if (!run.ok()) {
      std::cerr << run.status() << "\n";
      return 1;
    }
    const size_t i = adaptive::StateIndex(state);
    mean_step_ns[i] = static_cast<double>(run->state_time_ns[i]) /
                      static_cast<double>(run->steps_per_state[i]);
    std::cerr << "  [" << adaptive::ProcessorStateCode(state)
              << "] pinned run done\n";
  }

  // Transition costs: a scripted run that cycles EE -> AE -> EA -> AA
  // -> EE ... so every transition kind occurs with realistic catch-up
  // lag, timed by the operator itself.
  adaptive::AdaptiveJoinOptions jo = metrics::MakeJoinOptions(*tc, options);
  jo.adaptive.policy = adaptive::AdaptivePolicy::kScripted;
  const adaptive::ProcessorState cycle[] = {
      adaptive::ProcessorState::kLapRex, adaptive::ProcessorState::kLexRap,
      adaptive::ProcessorState::kLapRap, adaptive::ProcessorState::kLexRex};
  const uint64_t total_steps = tc->child.size() + tc->parent.size();
  const uint64_t stride = std::max<uint64_t>(200, total_steps / 40);
  uint64_t transition_counts[adaptive::kNumProcessorStates] = {0, 0, 0, 0};
  for (uint64_t at = stride, i = 0; at + stride / 2 < total_steps;
       at += stride, ++i) {
    const adaptive::ProcessorState target = cycle[i % 4];
    jo.adaptive.script.push_back({at, target});
    ++transition_counts[adaptive::StateIndex(target)];
  }
  exec::RelationScan child(&tc->child);
  exec::RelationScan parent(&tc->parent);
  adaptive::AdaptiveJoin scripted(&child, &parent, jo);
  if (auto count = exec::CountAll(&scripted); !count.ok()) {
    std::cerr << count.status() << "\n";
    return 1;
  }
  std::cerr << "  [transitions] scripted run done\n\n";

  const double ee_step =
      mean_step_ns[adaptive::StateIndex(adaptive::ProcessorState::kLexRex)];
  const adaptive::StateWeights paper = adaptive::StateWeights::Paper();

  TablePrinter table({"state", "mean step", "w (measured)", "w (paper)",
                      "mean transition", "v (measured)", "v (paper)"});
  adaptive::StateWeights measured;
  for (adaptive::ProcessorState state : adaptive::kAllProcessorStates) {
    const size_t i = adaptive::StateIndex(state);
    measured.step[i] = mean_step_ns[i] / ee_step;
    const double mean_transition_ns =
        transition_counts[i] > 0
            ? static_cast<double>(scripted.transition_time_ns(state)) /
                  static_cast<double>(transition_counts[i])
            : 0.0;
    measured.transition[i] = mean_transition_ns / ee_step;
    table.AddRow({adaptive::ProcessorStateName(state),
                  FormatDouble(mean_step_ns[i] / 1000.0, 2) + "us",
                  FormatDouble(measured.step[i], 2),
                  FormatDouble(paper.step[i], 2),
                  FormatDouble(mean_transition_ns / 1000.0, 1) + "us",
                  FormatDouble(measured.transition[i], 1),
                  FormatDouble(paper.transition[i], 1)});
  }
  std::cout << "Weight calibration (§4.3) on "
            << config.accidents_size << " accidents vs "
            << config.atlas_size << " atlas rows\n\n";
  table.Print(std::cout);
  std::cout << "\nmeasured weight vectors: " << measured.ToString()
            << "\npaper weight vectors:    " << paper.ToString() << "\n";
  return 0;
}
