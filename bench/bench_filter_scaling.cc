// Million-row scaling sweep of the approximate-match filter stack:
// SSHJoin over the constant-memory ScaledCorpus at 10^4 / 10^5 / 10^6
// total rows, with the filters layered cumulatively —
//
//   config 0: no filters            (the paper's bare counted walk)
//   config 1: + length filter
//   config 2: + prefix indexing     (corpus-sampled gram order)
//   config 3: + positional filter
//
// Every configuration produces byte-identical output (the parity suite
// proves it); the sweep records what each layer does to candidate
// generation — the "candidates" / "verified" / "matches" counters are
// the quantities the filters exist to shrink. At 10^6 rows only the
// prefix-bearing configs run: the unfiltered walk is quadratic-grade
// work at that scale (hours per repetition) and its cost is already
// legible from the 10^4 → 10^5 growth.
//
// Interpreting checked-in numbers: single-threaded operator, so
// "aqp_host_cpus" only documents the recording machine; the config
// label rides on each benchmark as "label" plus the run's filter
// counters.
//
//   $ ./bench_filter_scaling --benchmark_out=BENCH_filter_scaling.json \
//         --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "bench_support.h"
#include "datagen/scale.h"
#include "exec/operator.h"
#include "exec/stream.h"
#include "join/sshjoin.h"
#include "text/gram_order.h"

namespace {

using namespace aqp;  // NOLINT

constexpr double kTheta = 0.85;

datagen::ScaledCorpusOptions CorpusOptions(size_t total_rows) {
  datagen::ScaledCorpusOptions options;
  options.parent_rows = total_rows / 2;
  options.child_rows = total_rows - options.parent_rows;
  return options;
}

/// Corpus-sampled gram frequency order, one per scale, built once. A
/// bounded sample suffices — the order only steers which grams form
/// prefixes (cost, never results), and 20k strings pin the common
/// word-pool grams that matter.
std::shared_ptr<const text::GramOrder> SharedOrder(size_t total_rows) {
  static std::map<size_t, std::shared_ptr<const text::GramOrder>> orders;
  auto it = orders.find(total_rows);
  if (it == orders.end()) {
    const datagen::ScaledCorpus corpus(CorpusOptions(total_rows));
    auto order = std::make_shared<text::GramOrder>();
    const text::QGramOptions q3;
    const size_t parent_sample =
        std::min<size_t>(corpus.options().parent_rows, 20000);
    const size_t child_sample =
        std::min<size_t>(corpus.options().child_rows, 20000);
    for (size_t i = 0; i < parent_sample; ++i) {
      order->AddSample(corpus.ParentLocation(i), q3);
    }
    for (size_t i = 0; i < child_sample; ++i) {
      order->AddSample(corpus.ChildLocation(i), q3);
    }
    it = orders.emplace(total_rows, std::move(order)).first;
  }
  return it->second;
}

/// Cumulative filter stack: 0 = none, 1 = +length, 2 = +prefix,
/// 3 = +positional. Every filtered config carries the sampled gram
/// order: the filtered kernel scans probe grams in the fixed order, so
/// without frequency information the insert phase would consume
/// common-gram posting lists and inflate T(t) — the order is what
/// keeps "rarest first" working once live posting frequencies are off
/// the table.
join::ApproxFilterOptions ConfigFor(int config, size_t total_rows) {
  join::ApproxFilterOptions filter;
  filter.length = config >= 1;
  filter.prefix = config >= 2;
  filter.positional = config >= 3;
  if (filter.any()) filter.gram_order = SharedOrder(total_rows);
  return filter;
}

void RunFilterScaling(benchmark::State& state, size_t total_rows,
                      int config) {
  const datagen::ScaledCorpus corpus(CorpusOptions(total_rows));
  const join::ApproxFilterOptions filter = ConfigFor(config, total_rows);
  state.SetLabel(filter.Label());

  join::ApproxProbeStats stats;
  uint64_t match_count = 0;
  for (auto _ : state) {
    exec::GeneratorSource child(
        corpus.child_schema(),
        [&corpus, i = size_t{0},
         n = corpus.options().child_rows]() mutable
            -> std::optional<storage::Tuple> {
          if (i >= n) return std::nullopt;
          return corpus.ChildTuple(i++);
        });
    exec::GeneratorSource parent(
        corpus.parent_schema(),
        [&corpus, i = size_t{0},
         n = corpus.options().parent_rows]() mutable
            -> std::optional<storage::Tuple> {
          if (i >= n) return std::nullopt;
          return corpus.ParentTuple(i++);
        });
    join::SymmetricJoinOptions options;
    options.spec.left_column = 0;
    options.spec.right_column = 0;
    options.spec.sim_threshold = kTheta;
    options.spec.filter = filter;
    options.left_size_hint = corpus.options().child_rows;
    options.right_size_hint = corpus.options().parent_rows;
    join::SSHJoin join(&child, &parent, options);
    auto count = exec::CountAll(&join);
    if (!count.ok()) {
      state.SkipWithError(count.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*count);
    stats = join.core().approx_probe_stats();
    match_count = *count;
  }
  // Deterministic corpus → identical counters every repetition; the
  // "matches" counter must agree across configs at one scale (the
  // filters' exactness, visible right in the JSON).
  state.counters["candidates"] = static_cast<double>(stats.candidates);
  state.counters["verified"] = static_cast<double>(stats.verified);
  state.counters["matches"] = static_cast<double>(match_count);
  state.counters["postings_scanned"] =
      static_cast<double>(stats.postings_scanned);
  state.counters["length_skipped"] = static_cast<double>(stats.length_skipped);
  state.counters["position_rejected"] =
      static_cast<double>(stats.position_rejected);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(total_rows));
}

/// 10^4 and 10^5 rows, all four cumulative configs, mean of 5
/// single-run repetitions.
void BM_SSHJoin_FilterScaling(benchmark::State& state) {
  RunFilterScaling(state, static_cast<size_t>(state.range(0)),
                   static_cast<int>(state.range(1)));
}
BENCHMARK(BM_SSHJoin_FilterScaling)
    ->ArgsProduct({{10000, 100000}, {0, 1, 2, 3}})
    ->ArgNames({"rows", "config"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Repetitions(5)
    ->Iterations(1);

/// 10^6 rows, full stack only (see the file comment: the unfiltered
/// and partially filtered walks are hours-per-repetition at this
/// scale — config 2 still verifies every surviving candidate by gram-
/// set intersection, and only the positional filter collapses that);
/// one repetition — the point is that the filtered walk completes at
/// all, in memory, in minutes.
void BM_SSHJoin_FilterScaling1M(benchmark::State& state) {
  RunFilterScaling(state, 1000000, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_SSHJoin_FilterScaling1M)
    ->ArgsProduct({{3}})
    ->ArgNames({"config"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Repetitions(1)
    ->Iterations(1);

/// CI smoke series: tiny corpus, every config, normal iteration
/// counts — exists so the Release bench-smoke job exercises the
/// filtered operator end to end without paying for the sweep.
void BM_SSHJoin_FilterSmoke(benchmark::State& state) {
  RunFilterScaling(state, 2000, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_SSHJoin_FilterSmoke)
    ->ArgsProduct({{0, 1, 2, 3}})
    ->ArgNames({"config"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

// BENCHMARK_MAIN(), plus context recording the build type of the
// *measured* library and the sweep's shape (the stock
// "library_build_type" key describes the Google Benchmark shared
// library, not this code).
int main(int argc, char** argv) {
  benchmark::AddCustomContext("aqp_build_type", aqp::bench::BuildTypeName());
  benchmark::AddCustomContext(
      "aqp_host_cpus", std::to_string(aqp::bench::HostCpuCount()));
  benchmark::AddCustomContext(
      "aqp_filter_config",
      "config 0=none 1=length 2=length+prefix 3=length+prefix+positional "
      "(cumulative; filtered configs use a corpus-sampled gram order)");
  benchmark::AddCustomContext(
      "aqp_filter_rows",
      "rows = parent+child, split evenly; 10000/100000 run all configs "
      "(5 repetitions), 1000000 runs the full stack only (1 repetition; "
      "lesser configs are hours-per-run at that scale)");
  benchmark::AddCustomContext("aqp_theta_sim", "0.85");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
