// Multi-query serving throughput: wall time to push a fixed batch of
// linkage queries through a LinkageService, sweeping how many the
// admission controller lets run concurrently, against the no-service
// baseline of running the same queries back-to-back solo.
//
// Interpreting checked-in numbers: on a single-core host the
// concurrent configurations can only measure coordination overhead
// (runner threads and the shared pool time-slice one core); the
// concurrency win needs multicore hardware. Read the JSON's
// "aqp_host_cpus" context first.
//
//   $ ./bench_service_throughput --benchmark_out=BENCH_service.json \
//         --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include <memory>
#include <thread>
#include <vector>

#include "bench_support.h"
#include "datagen/generator.h"
#include "exec/parallel/parallel_join.h"
#include "exec/scan.h"
#include "service/linkage_service.h"

namespace {

using namespace aqp;  // NOLINT

constexpr size_t kQueriesPerBatch = 6;

const datagen::TestCase& SharedCase() {
  static const datagen::TestCase* tc = [] {
    datagen::TestCaseOptions options;
    options.atlas.size = 1000;
    options.accidents.size = 2000;
    options.variant_rate = 0.10;
    options.seed = 9;
    auto generated = datagen::GenerateTestCase(options);
    if (!generated.ok()) std::abort();
    return new datagen::TestCase(std::move(*generated));
  }();
  return *tc;
}

exec::parallel::ParallelJoinOptions QueryOptionsFor(
    const datagen::TestCase& tc, size_t flavor) {
  exec::parallel::ParallelJoinOptions options;
  options.base.join.spec.left_column = datagen::kAccidentsLocationColumn;
  options.base.join.spec.right_column = datagen::kAtlasLocationColumn;
  options.base.join.spec.sim_threshold = 0.85;
  options.base.join.left_size_hint = tc.child.size();
  options.base.join.right_size_hint = tc.parent.size();
  options.base.adaptive.parent_side = exec::Side::kRight;
  options.base.adaptive.parent_table_size = tc.parent.size();
  options.num_shards = 2;
  // Alternate adaptive and pinned-exact tenants.
  if (flavor % 2 == 1) {
    options.base.adaptive.policy = adaptive::AdaptivePolicy::kPinned;
    options.base.adaptive.initial_state = adaptive::ProcessorState::kLexRex;
  }
  return options;
}

/// Baseline: the same queries, run to completion one after another
/// with each join owning its private pool (the pre-service engine).
void BM_Service_SoloSequential(benchmark::State& state) {
  const datagen::TestCase& tc = SharedCase();
  for (auto _ : state) {
    size_t total = 0;
    for (size_t i = 0; i < kQueriesPerBatch; ++i) {
      exec::RelationScan child(&tc.child);
      exec::RelationScan parent(&tc.parent);
      exec::parallel::ParallelAdaptiveJoin join(&child, &parent,
                                                QueryOptionsFor(tc, i));
      auto count = exec::CountAll(&join);
      if (!count.ok()) {
        state.SkipWithError("join failed");
        return;
      }
      total += *count;
    }
    benchmark::DoNotOptimize(total);
  }
  state.counters["queries"] = kQueriesPerBatch;
}
BENCHMARK(BM_Service_SoloSequential)->Unit(benchmark::kMillisecond);

/// The service: one shared pool, admission at `concurrent` running
/// queries, all queries submitted up front.
void BM_Service_SharedPool(benchmark::State& state) {
  const datagen::TestCase& tc = SharedCase();
  const auto concurrent = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    service::ServiceOptions so;
    so.worker_threads = 2;
    so.admission.max_concurrent_queries = concurrent;
    so.admission.max_total_shards = 2 * concurrent;
    service::LinkageService service(so);
    std::vector<std::unique_ptr<exec::RelationScan>> scans;
    std::vector<service::QueryId> ids;
    for (size_t i = 0; i < kQueriesPerBatch; ++i) {
      scans.push_back(std::make_unique<exec::RelationScan>(&tc.child));
      scans.push_back(std::make_unique<exec::RelationScan>(&tc.parent));
      service::QueryOptions qo;
      qo.join = QueryOptionsFor(tc, i);
      auto id = service.Submit(scans[scans.size() - 2].get(),
                               scans[scans.size() - 1].get(), qo);
      if (!id.ok()) {
        state.SkipWithError("submit failed");
        return;
      }
      ids.push_back(*id);
    }
    size_t total = 0;
    for (service::QueryId id : ids) {
      auto stats = service.Wait(id);
      if (!stats.ok() || stats->state != service::QueryState::kDone) {
        state.SkipWithError("query failed");
        return;
      }
      total += stats->pairs_emitted;
    }
    benchmark::DoNotOptimize(total);
  }
  state.counters["queries"] = kQueriesPerBatch;
  state.counters["concurrent"] = static_cast<double>(concurrent);
}
BENCHMARK(BM_Service_SharedPool)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

/// Deadline knee: the same batch with a hard step budget per query —
/// the time-completeness trade-off as a serving-side throughput lever.
void BM_Service_HardDeadline(benchmark::State& state) {
  const datagen::TestCase& tc = SharedCase();
  const auto budget_steps = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    service::ServiceOptions so;
    so.worker_threads = 2;
    so.admission.max_concurrent_queries = 2;
    so.admission.max_total_shards = 4;
    service::LinkageService service(so);
    std::vector<std::unique_ptr<exec::RelationScan>> scans;
    std::vector<service::QueryId> ids;
    for (size_t i = 0; i < kQueriesPerBatch; ++i) {
      scans.push_back(std::make_unique<exec::RelationScan>(&tc.child));
      scans.push_back(std::make_unique<exec::RelationScan>(&tc.parent));
      service::QueryOptions qo;
      qo.join = QueryOptionsFor(tc, 0);  // all adaptive
      qo.deadline.hard_deadline_steps = budget_steps;
      auto id = service.Submit(scans[scans.size() - 2].get(),
                               scans[scans.size() - 1].get(), qo);
      if (!id.ok()) {
        state.SkipWithError("submit failed");
        return;
      }
      ids.push_back(*id);
    }
    double completeness = 0;
    for (service::QueryId id : ids) {
      auto stats = service.Wait(id);
      if (!stats.ok() || stats->state != service::QueryState::kDone) {
        state.SkipWithError("query failed");
        return;
      }
      completeness += stats->completeness.ratio;
    }
    state.counters["completeness"] =
        completeness / static_cast<double>(kQueriesPerBatch);
  }
  state.counters["budget_steps"] = static_cast<double>(budget_steps);
}
BENCHMARK(BM_Service_HardDeadline)
    ->Arg(500)
    ->Arg(1500)
    ->Arg(3000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::AddCustomContext("aqp_build_type", aqp::bench::BuildTypeName());
  const unsigned cpus = std::thread::hardware_concurrency();
  benchmark::AddCustomContext("aqp_host_cpus", std::to_string(cpus));
  if (cpus <= 1) {
    benchmark::AddCustomContext(
        "aqp_host_note",
        "single-core host: concurrent serving measures coordination "
        "overhead only; the concurrency win requires a multicore machine");
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
