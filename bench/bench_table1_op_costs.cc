// Reproduces Table 1: the per-operation cost model of SHJoin vs
// SSHJoin, as google-benchmark micro-measurements over the join
// attribute length |jA|:
//
//   1. obtain q-grams            — SSHJoin only, O(|jA|)
//   2. update hash table         — SHJoin O(1) vs SSHJoin O(|jA|+q-1)
//   3. compute T(t) and counters — SSHJoin, O((|jA|+q-1) * B_ap)
//   4. find matches              — SHJoin O(B_ex) vs SSHJoin O(|T(t)|)
//
// The paper concludes the per-step cost ratio is quadratic in the gram
// count (|jA|+q-1); the *_FullStep benchmarks expose that ratio
// directly.
//
//   $ ./bench_table1_op_costs

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "datagen/names.h"
#include "join/exact_index.h"
#include "join/probe.h"
#include "join/qgram_index.h"
#include "storage/tuple_store.h"
#include "text/qgram.h"

namespace {

using namespace aqp;  // NOLINT

constexpr size_t kPoolSize = 8082;  // the paper's atlas cardinality

/// Pool of location strings padded/truncated to a target length so the
/// benchmarks sweep |jA| directly.
std::vector<std::string> MakePool(size_t length, uint64_t seed) {
  Rng rng(seed);
  datagen::LocationNameGenerator names(length);
  std::vector<std::string> pool;
  pool.reserve(kPoolSize);
  for (size_t i = 0; i < kPoolSize; ++i) {
    std::string s = names.Generate(&rng);
    if (s.size() > length) s.resize(length);
    pool.push_back(std::move(s));
  }
  return pool;
}

struct IndexedPool {
  storage::TupleStore store{0};
  join::ExactIndex exact;
  join::QGramIndex qgrams{text::QGramOptions{}};

  explicit IndexedPool(const std::vector<std::string>& pool) {
    for (const std::string& s : pool) {
      store.Add(storage::Tuple{storage::Value(s)});
    }
    exact.CatchUpWith(store);
    qgrams.CatchUpWith(store);
  }
};

join::JoinSpec Spec() {
  join::JoinSpec spec;
  spec.sim_threshold = 0.85;
  return spec;
}

/// Operation 1: obtain the q-grams of the join attribute.
void BM_Op1_ObtainQGrams(benchmark::State& state) {
  const auto pool = MakePool(static_cast<size_t>(state.range(0)), 1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        text::GramSet::Of(pool[i++ % pool.size()], text::QGramOptions{}));
  }
  state.SetLabel("|jA|=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Op1_ObtainQGrams)->Arg(10)->Arg(20)->Arg(30)->Arg(40);

/// Operation 2, SHJoin: one hash-table insert per tuple.
void BM_Op2_UpdateHashTable_SHJoin(benchmark::State& state) {
  const auto pool = MakePool(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    state.PauseTiming();
    storage::TupleStore store(0);
    join::ExactIndex index;
    state.ResumeTiming();
    for (const std::string& s : pool) {
      store.Add(storage::Tuple{storage::Value(s)});
      index.CatchUpWith(store);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kPoolSize));
}
BENCHMARK(BM_Op2_UpdateHashTable_SHJoin)->Arg(10)->Arg(40);

/// Operation 2, SSHJoin: |jA|+q-1 posting inserts per tuple.
void BM_Op2_UpdateHashTable_SSHJoin(benchmark::State& state) {
  const auto pool = MakePool(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    state.PauseTiming();
    storage::TupleStore store(0);
    join::QGramIndex index{text::QGramOptions{}};
    state.ResumeTiming();
    for (const std::string& s : pool) {
      store.Add(storage::Tuple{storage::Value(s)});
      index.CatchUpWith(store);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kPoolSize));
}
BENCHMARK(BM_Op2_UpdateHashTable_SSHJoin)->Arg(10)->Arg(40);

/// Operations 3+4, SHJoin: probe the hash table and emit matches.
void BM_Op4_FindMatches_SHJoin(benchmark::State& state) {
  const auto pool = MakePool(static_cast<size_t>(state.range(0)), 3);
  IndexedPool indexed(pool);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(join::ProbeExact(
        indexed.exact, pool[i++ % pool.size()], exec::Side::kLeft, 0));
  }
  state.SetLabel("|jA|=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Op4_FindMatches_SHJoin)->Arg(10)->Arg(20)->Arg(30)->Arg(40);

/// Operations 1+3+4, SSHJoin: gram extraction, T(t) construction with
/// counters, verification. This is the full approximate NEXT() kernel.
void BM_Op34_FullProbe_SSHJoin(benchmark::State& state) {
  const auto pool = MakePool(static_cast<size_t>(state.range(0)), 3);
  IndexedPool indexed(pool);
  const join::JoinSpec spec = Spec();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(join::ProbeApproximate(
        indexed.qgrams, indexed.store, pool[i++ % pool.size()], spec,
        exec::Side::kLeft, 0, join::ApproxProbeOptions{}, nullptr));
  }
  state.SetLabel("|jA|=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Op34_FullProbe_SSHJoin)->Arg(10)->Arg(20)->Arg(30)->Arg(40);

/// Ablation: the §2.2 insert-phase optimization off (every gram may
/// insert candidates into T(t)).
void BM_Op34_FullProbe_SSHJoin_NoInsertPhaseOpt(benchmark::State& state) {
  const auto pool = MakePool(static_cast<size_t>(state.range(0)), 3);
  IndexedPool indexed(pool);
  const join::JoinSpec spec = Spec();
  join::ApproxProbeOptions options;
  options.insert_phase_optimization = false;
  options.rare_grams_first = false;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(join::ProbeApproximate(
        indexed.qgrams, indexed.store, pool[i++ % pool.size()], spec,
        exec::Side::kLeft, 0, options, nullptr));
  }
  state.SetLabel("|jA|=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Op34_FullProbe_SSHJoin_NoInsertPhaseOpt)
    ->Arg(10)
    ->Arg(20)
    ->Arg(30)
    ->Arg(40);

}  // namespace

BENCHMARK_MAIN();
