// Reproduces Fig. 5: the four perturbation patterns the generator can
// produce — (a) uniform, (b) low-intensity interleaved regions,
// (c) few high-intensity regions, (d) many high-intensity regions —
// rendered as density strips over the input, with the realized variant
// counts confirming that every pattern carries the same 10% total rate.
//
//   $ ./bench_fig5_patterns [--accidents=10000] [--rate=0.1]

#include <iostream>

#include "bench_support.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "datagen/pattern.h"

int main(int argc, char** argv) {
  using namespace aqp;  // NOLINT
  const auto config = bench::PaperBenchConfig::FromArgs(argc, argv);
  const size_t n = config.accidents_size;
  std::cout << "Fig. 5 reproduction — perturbation patterns over an input "
            << "of " << n << " tuples, total rate "
            << FormatDouble(100 * config.variant_rate, 0) << "%\n\n";

  TablePrinter table({"pattern", "regions", "coverage", "intensity",
                      "realized variants", "density over input"});
  Rng rng(config.seed);
  for (datagen::PerturbationPattern pattern : datagen::kAllPatterns) {
    auto spec = datagen::MakePattern(pattern, n, config.variant_rate);
    if (!spec.ok()) {
      std::cerr << spec.status() << "\n";
      return 1;
    }
    const auto positions =
        datagen::SampleVariantPositions(*spec, config.variant_rate, &rng);
    size_t covered = 0;
    for (const datagen::Region& r : spec->regions) covered += r.length();
    table.AddRow(
        {datagen::PerturbationPatternName(pattern),
         std::to_string(spec->regions.size()),
         FormatDouble(100.0 * static_cast<double>(covered) /
                          static_cast<double>(n),
                      0) +
             "%",
         FormatDouble(spec->regions.front().intensity, 2),
         std::to_string(positions.size()), spec->DensityStrip(48)});
  }
  table.Print(std::cout);

  std::cout << "\nlegend: '.' clean, ':' <15% variants, '+' <40%, '#' "
               ">=40% — compare with the paper's Fig. 5 shading\n";
  return 0;
}
