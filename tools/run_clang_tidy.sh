#!/usr/bin/env bash
# Runs clang-tidy over the library sources (src/**/*.cc) using the
# compile database of an existing build tree. Shared by local use and
# the clang-tidy CI job so both produce identical diagnostics; the
# checked-in .clang-tidy sets WarningsAsErrors to '*', so any finding
# makes this script exit non-zero.
#
# Usage: tools/run_clang_tidy.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "error: ${BUILD_DIR}/compile_commands.json not found." >&2
  echo "Configure first: cmake -B ${BUILD_DIR} -S .  (the project exports" >&2
  echo "compile commands by default)." >&2
  exit 2
fi

# Prefer the unversioned wrappers; fall back to versioned installs.
RUNNER=""
for cand in run-clang-tidy run-clang-tidy-19 run-clang-tidy-18 run-clang-tidy-17; do
  if command -v "${cand}" >/dev/null 2>&1; then
    RUNNER="${cand}"
    break
  fi
done
if [[ -z "${RUNNER}" ]]; then
  echo "error: run-clang-tidy not found (install clang-tidy)." >&2
  exit 2
fi

# run-clang-tidy treats positional arguments as regexes over the paths
# in the compile database: restrict to the library sources (tests and
# benches lean on GoogleTest/Benchmark macros that do not survive the
# strict check set).
exec "${RUNNER}" -p "${BUILD_DIR}" -quiet '/src/.*\.cc$'
