#include "text/normalize.h"

#include <cctype>

#include "common/string_util.h"

namespace aqp {
namespace text {

namespace {
bool IsStrippablePunct(char c) {
  switch (c) {
    case '.':
    case ',':
    case ';':
    case ':':
    case '\'':
    case '"':
    case '-':
    case '_':
    case '/':
    case '(':
    case ')':
    case '&':
      return true;
    default:
      return false;
  }
}
}  // namespace

std::string Normalize(std::string_view s, const NormalizeOptions& options) {
  std::string work(s);
  if (options.strip_punctuation) {
    std::string stripped;
    stripped.reserve(work.size());
    for (char c : work) {
      // Replace punctuation with a space so word boundaries survive
      // ("SANTA-CRISTINA" -> "SANTA CRISTINA").
      stripped.push_back(IsStrippablePunct(c) ? ' ' : c);
    }
    work = std::move(stripped);
  }
  if (options.upper_case) {
    work = ToUpperAscii(work);
  }
  if (options.collapse_whitespace) {
    work = CollapseWhitespace(work);
  }
  return work;
}

}  // namespace text
}  // namespace aqp
