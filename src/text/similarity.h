#ifndef AQP_TEXT_SIMILARITY_H_
#define AQP_TEXT_SIMILARITY_H_

#include <cstddef>
#include <string_view>

#include "text/qgram.h"

namespace aqp {
namespace text {

/// \name Set-based similarity coefficients over q-gram sets.
///
/// All return values lie in [0, 1]. The convention for degenerate
/// inputs: two empty sets have similarity 1 (identical strings too
/// short to produce grams), one empty set against a non-empty one has
/// similarity 0.
/// @{

/// Jaccard coefficient |a ∩ b| / |a ∪ b| — the paper's sim function.
double Jaccard(const GramSet& a, const GramSet& b);

/// Jaccard computed from precomputed sizes and overlap; used by the
/// SSHJoin verifier, which already knows the overlap count.
double JaccardFromOverlap(size_t size_a, size_t size_b, size_t overlap);

/// Dice coefficient 2|a ∩ b| / (|a| + |b|).
double Dice(const GramSet& a, const GramSet& b);

/// Cosine coefficient |a ∩ b| / sqrt(|a| · |b|).
double Cosine(const GramSet& a, const GramSet& b);

/// Overlap coefficient |a ∩ b| / min(|a|, |b|).
double OverlapCoefficient(const GramSet& a, const GramSet& b);
/// @}

/// \brief Which set-based coefficient a similarity predicate uses.
enum class SimilarityMeasure { kJaccard, kDice, kCosine, kOverlap };

/// Evaluates the chosen coefficient.
double SetSimilarity(SimilarityMeasure measure, const GramSet& a,
                     const GramSet& b);

/// Evaluates the chosen coefficient from set sizes and overlap only —
/// all four coefficients are functions of (|a|, |b|, |a ∩ b|). This is
/// what the SSHJoin verifier uses: the counter built during probing
/// *is* the overlap, so no gram sets need to be re-intersected.
double SetSimilarityFromOverlap(SimilarityMeasure measure, size_t size_a,
                                size_t size_b, size_t overlap);

/// Canonical name ("jaccard", ...).
const char* SimilarityMeasureName(SimilarityMeasure measure);

/// \brief Minimum q-gram overlap a candidate must share with a probe
/// whose gram set has `probe_size` elements for the coefficient to
/// possibly reach `threshold`.
///
/// For Jaccard: |∩| >= ceil(threshold * probe_size), since
/// |∪| >= probe_size. This is the sound count bound `k` from §2.2 used
/// by the SSHJoin insert-phase optimization. Always returns >= 1.
size_t MinOverlapForThreshold(SimilarityMeasure measure, size_t probe_size,
                              double threshold);

/// \name Edit-based similarity (used by the data generator & tests).
/// @{

/// Levenshtein distance (unit costs), O(|a|·|b|) time, O(min) space.
size_t Levenshtein(std::string_view a, std::string_view b);

/// Levenshtein with early exit: returns min(distance, bound + 1) using
/// a banded computation that is O(bound · max(|a|,|b|)).
size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                          size_t bound);

/// Normalized edit similarity 1 - d(a,b)/max(|a|,|b|); 1 for two empty
/// strings.
double EditSimilarity(std::string_view a, std::string_view b);
/// @}

}  // namespace text
}  // namespace aqp

#endif  // AQP_TEXT_SIMILARITY_H_
