#include "text/similarity.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <vector>

namespace aqp {
namespace text {

double JaccardFromOverlap(size_t size_a, size_t size_b, size_t overlap) {
  assert(overlap <= size_a && overlap <= size_b);
  const size_t union_size = size_a + size_b - overlap;
  if (union_size == 0) return 1.0;  // both empty
  return static_cast<double>(overlap) / static_cast<double>(union_size);
}

double Jaccard(const GramSet& a, const GramSet& b) {
  return JaccardFromOverlap(a.size(), b.size(), a.OverlapWith(b));
}

double Dice(const GramSet& a, const GramSet& b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t overlap = a.OverlapWith(b);
  return 2.0 * static_cast<double>(overlap) /
         static_cast<double>(a.size() + b.size());
}

double Cosine(const GramSet& a, const GramSet& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t overlap = a.OverlapWith(b);
  return static_cast<double>(overlap) /
         std::sqrt(static_cast<double>(a.size()) *
                   static_cast<double>(b.size()));
}

double OverlapCoefficient(const GramSet& a, const GramSet& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t overlap = a.OverlapWith(b);
  return static_cast<double>(overlap) /
         static_cast<double>(std::min(a.size(), b.size()));
}

double SetSimilarity(SimilarityMeasure measure, const GramSet& a,
                     const GramSet& b) {
  switch (measure) {
    case SimilarityMeasure::kJaccard:
      return Jaccard(a, b);
    case SimilarityMeasure::kDice:
      return Dice(a, b);
    case SimilarityMeasure::kCosine:
      return Cosine(a, b);
    case SimilarityMeasure::kOverlap:
      return OverlapCoefficient(a, b);
  }
  return 0.0;
}

double SetSimilarityFromOverlap(SimilarityMeasure measure, size_t size_a,
                                size_t size_b, size_t overlap) {
  assert(overlap <= size_a && overlap <= size_b);
  if (size_a == 0 && size_b == 0) return 1.0;
  if (size_a == 0 || size_b == 0) return 0.0;
  const double o = static_cast<double>(overlap);
  switch (measure) {
    case SimilarityMeasure::kJaccard:
      return o / static_cast<double>(size_a + size_b - overlap);
    case SimilarityMeasure::kDice:
      return 2.0 * o / static_cast<double>(size_a + size_b);
    case SimilarityMeasure::kCosine:
      return o / std::sqrt(static_cast<double>(size_a) *
                           static_cast<double>(size_b));
    case SimilarityMeasure::kOverlap:
      return o / static_cast<double>(std::min(size_a, size_b));
  }
  return 0.0;
}

const char* SimilarityMeasureName(SimilarityMeasure measure) {
  switch (measure) {
    case SimilarityMeasure::kJaccard:
      return "jaccard";
    case SimilarityMeasure::kDice:
      return "dice";
    case SimilarityMeasure::kCosine:
      return "cosine";
    case SimilarityMeasure::kOverlap:
      return "overlap";
  }
  return "?";
}

size_t MinOverlapForThreshold(SimilarityMeasure measure, size_t probe_size,
                              double threshold) {
  if (probe_size == 0) return 1;
  threshold = std::clamp(threshold, 0.0, 1.0);
  const double g = static_cast<double>(probe_size);
  double bound = 1.0;
  switch (measure) {
    case SimilarityMeasure::kJaccard:
      // J = o / (|a| + |b| - o) <= o / g  (since |union| >= g), so
      // J >= t implies o >= t * g.
      bound = threshold * g;
      break;
    case SimilarityMeasure::kDice:
      // D = 2o / (|a| + |b|) <= 2o / (g + o) <= 2o / g ... the tightest
      // sound bound from the probe side alone: |a|+|b| >= g + o >= g + 1,
      // but o <= min(...) — use D <= 2o/(g + o); D >= t implies
      // o >= t*g / (2 - t).
      bound = threshold * g / (2.0 - threshold);
      break;
    case SimilarityMeasure::kCosine:
      // C = o / sqrt(|a||b|) <= o / sqrt(g * o) = sqrt(o / g), so
      // C >= t implies o >= t^2 * g.
      bound = threshold * threshold * g;
      break;
    case SimilarityMeasure::kOverlap:
      // O = o / min(|a|,|b|); min can be as small as o itself, so the
      // only sound probe-side bound is o >= 1.
      bound = 1.0;
      break;
  }
  const double k = std::ceil(bound - 1e-9);
  return std::max<size_t>(1, static_cast<size_t>(k));
}

size_t Levenshtein(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);  // a is the shorter
  std::vector<size_t> prev(a.size() + 1);
  std::vector<size_t> curr(a.size() + 1);
  std::iota(prev.begin(), prev.end(), size_t{0});
  for (size_t j = 1; j <= b.size(); ++j) {
    curr[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      const size_t sub_cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      curr[i] = std::min({prev[i] + 1,              // deletion
                          curr[i - 1] + 1,          // insertion
                          prev[i - 1] + sub_cost});  // substitution
    }
    std::swap(prev, curr);
  }
  return prev[a.size()];
}

size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                          size_t bound) {
  if (a.size() > b.size()) std::swap(a, b);
  if (b.size() - a.size() > bound) return bound + 1;
  const size_t kInf = b.size() + a.size() + 1;
  std::vector<size_t> prev(a.size() + 1, kInf);
  std::vector<size_t> curr(a.size() + 1, kInf);
  std::iota(prev.begin(), prev.end(), size_t{0});
  for (size_t j = 1; j <= b.size(); ++j) {
    // Band of cells that can still be <= bound.
    const size_t lo = (j > bound) ? j - bound : 0;
    const size_t hi = std::min(a.size(), j + bound);
    std::fill(curr.begin(), curr.end(), kInf);
    if (lo == 0) curr[0] = j;
    size_t row_min = kInf;
    for (size_t i = std::max<size_t>(1, lo); i <= hi; ++i) {
      const size_t sub_cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      size_t best = prev[i - 1] + sub_cost;
      if (prev[i] + 1 < best) best = prev[i] + 1;
      if (curr[i - 1] + 1 < best) best = curr[i - 1] + 1;
      curr[i] = best;
      row_min = std::min(row_min, best);
    }
    if (lo == 0) row_min = std::min(row_min, curr[0]);
    if (row_min > bound) return bound + 1;  // distance cannot recover
    std::swap(prev, curr);
  }
  return std::min(prev[a.size()], bound + 1);
}

double EditSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 -
         static_cast<double>(Levenshtein(a, b)) / static_cast<double>(longest);
}

}  // namespace text
}  // namespace aqp
