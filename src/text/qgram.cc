#include "text/qgram.h"

#include <algorithm>
#include <cassert>

namespace aqp {
namespace text {

Status QGramOptions::Validate() const {
  if (q < 1 || q > 8) {
    return Status::InvalidArgument("q must be in [1, 8], got " +
                                   std::to_string(q));
  }
  if (pad && pad_left == pad_right) {
    return Status::InvalidArgument(
        "pad_left and pad_right must differ so left and right padding "
        "produce distinct grams");
  }
  return Status::OK();
}

namespace {

/// Packs bytes [begin, begin+q) into a big-endian 64-bit key.
inline GramKey PackWindow(const char* begin, int q) {
  GramKey key = 0;
  for (int i = 0; i < q; ++i) {
    key = (key << 8) | static_cast<unsigned char>(begin[i]);
  }
  return key;
}

}  // namespace

std::vector<GramKey> ExtractGramSequence(std::string_view s,
                                         const QGramOptions& options) {
  const int q = options.q;
  assert(q >= 1 && q <= 8);
  std::vector<GramKey> out;
  if (!options.pad) {
    if (s.size() < static_cast<size_t>(q)) return out;
    out.reserve(s.size() - q + 1);
    for (size_t i = 0; i + q <= s.size(); ++i) {
      out.push_back(PackWindow(s.data() + i, q));
    }
    return out;
  }
  // Padded: materialize the padded buffer once. Total windows:
  // |s| + 2(q-1) - q + 1 = |s| + q - 1.
  std::string padded;
  padded.reserve(s.size() + 2 * (q - 1));
  padded.append(static_cast<size_t>(q - 1), options.pad_left);
  padded.append(s);
  padded.append(static_cast<size_t>(q - 1), options.pad_right);
  if (padded.size() < static_cast<size_t>(q)) return out;  // q=1, empty s
  out.reserve(padded.size() - q + 1);
  for (size_t i = 0; i + q <= padded.size(); ++i) {
    out.push_back(PackWindow(padded.data() + i, q));
  }
  return out;
}

size_t GramSequenceLength(size_t string_length, const QGramOptions& options) {
  const size_t q = static_cast<size_t>(options.q);
  if (options.pad) {
    const size_t padded = string_length + 2 * (q - 1);
    return padded >= q ? padded - q + 1 : 0;
  }
  return string_length >= q ? string_length - q + 1 : 0;
}

GramSet GramSet::Of(std::string_view s, const QGramOptions& options) {
  GramSet set;
  set.grams_ = ExtractGramSequence(s, options);
  std::sort(set.grams_.begin(), set.grams_.end());
  set.grams_.erase(std::unique(set.grams_.begin(), set.grams_.end()),
                   set.grams_.end());
  return set;
}

bool GramSet::Contains(GramKey key) const {
  return std::binary_search(grams_.begin(), grams_.end(), key);
}

size_t GramSet::OverlapWith(const GramSet& other) const {
  size_t i = 0, j = 0, overlap = 0;
  while (i < grams_.size() && j < other.grams_.size()) {
    if (grams_[i] == other.grams_[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (grams_[i] < other.grams_[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

std::string GramKeyToString(GramKey key, int q) {
  std::string out(static_cast<size_t>(q), '\0');
  for (int i = q - 1; i >= 0; --i) {
    out[static_cast<size_t>(i)] = static_cast<char>(key & 0xff);
    key >>= 8;
  }
  return out;
}

}  // namespace text
}  // namespace aqp
