#include "text/qgram.h"

#include <algorithm>
#include <cassert>

namespace aqp {
namespace text {

Status QGramOptions::Validate() const {
  if (q < 1 || q > 8) {
    return Status::InvalidArgument("q must be in [1, 8], got " +
                                   std::to_string(q));
  }
  if (pad && pad_left == pad_right) {
    return Status::InvalidArgument(
        "pad_left and pad_right must differ so left and right padding "
        "produce distinct grams");
  }
  return Status::OK();
}

void ExtractGramSequenceInto(std::string_view s, const QGramOptions& options,
                             std::vector<GramKey>* out) {
  const int q = options.q;
  assert(q >= 1 && q <= 8);
  out->clear();
  const size_t total = GramSequenceLength(s.size(), options);
  if (total == 0) return;
  out->reserve(total);
  // Slide a rolling q-byte window over pads + s + pads without
  // materializing the padded buffer; identical keys to PackWindow over
  // the padded string (big-endian byte packing).
  const uint64_t mask =
      q == 8 ? ~uint64_t{0} : ((uint64_t{1} << (8 * q)) - 1);
  uint64_t key = 0;
  size_t consumed = 0;
  const auto feed = [&](unsigned char c) {
    key = ((key << 8) | c) & mask;
    if (++consumed >= static_cast<size_t>(q)) out->push_back(key);
  };
  if (options.pad) {
    for (int i = 0; i < q - 1; ++i) feed(options.pad_left);
  }
  for (char c : s) feed(static_cast<unsigned char>(c));
  if (options.pad) {
    for (int i = 0; i < q - 1; ++i) feed(options.pad_right);
  }
  assert(out->size() == total);
}

std::vector<GramKey> ExtractGramSequence(std::string_view s,
                                         const QGramOptions& options) {
  std::vector<GramKey> out;
  ExtractGramSequenceInto(s, options, &out);
  return out;
}

size_t GramSequenceLength(size_t string_length, const QGramOptions& options) {
  const size_t q = static_cast<size_t>(options.q);
  if (options.pad) {
    const size_t padded = string_length + 2 * (q - 1);
    return padded >= q ? padded - q + 1 : 0;
  }
  return string_length >= q ? string_length - q + 1 : 0;
}

GramSet GramSet::Of(std::string_view s, const QGramOptions& options) {
  GramSet set;
  set.grams_ = ExtractGramSequence(s, options);
  std::sort(set.grams_.begin(), set.grams_.end());
  set.grams_.erase(std::unique(set.grams_.begin(), set.grams_.end()),
                   set.grams_.end());
  return set;
}

GramSet GramSet::OfUsingScratch(std::string_view s,
                                const QGramOptions& options,
                                std::vector<GramKey>* scratch) {
  ExtractGramSequenceInto(s, options, scratch);
  std::sort(scratch->begin(), scratch->end());
  const auto last = std::unique(scratch->begin(), scratch->end());
  GramSet set;
  set.grams_.assign(scratch->begin(), last);
  return set;
}

bool GramSet::Contains(GramKey key) const {
  return std::binary_search(grams_.begin(), grams_.end(), key);
}

size_t GramSet::OverlapWith(const GramSet& other) const {
  size_t i = 0, j = 0, overlap = 0;
  while (i < grams_.size() && j < other.grams_.size()) {
    if (grams_[i] == other.grams_[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (grams_[i] < other.grams_[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

std::string GramKeyToString(GramKey key, int q) {
  std::string out(static_cast<size_t>(q), '\0');
  for (int i = q - 1; i >= 0; --i) {
    out[static_cast<size_t>(i)] = static_cast<char>(key & 0xff);
    key >>= 8;
  }
  return out;
}

}  // namespace text
}  // namespace aqp
