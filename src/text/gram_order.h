#ifndef AQP_TEXT_GRAM_ORDER_H_
#define AQP_TEXT_GRAM_ORDER_H_

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "text/qgram.h"

namespace aqp {
namespace text {

/// \brief A *fixed* global total order over gram keys, shared by the
/// prefix-filtered q-gram index and its probes.
///
/// Prefix filtering is sound only if both sides of a join pick their
/// g-k+1 prefix grams under one common total order (the standard
/// prefix-overlap argument breaks if the order shifts between the time
/// a tuple is posted and the time it is probed). A streaming index can
/// therefore not order by its own evolving posting frequencies — the
/// order must be frozen before the first tuple is indexed.
///
/// An order is (frequency, key) ascending: grams not seen while
/// sampling have frequency 0, so a default-constructed order degrades
/// to plain gram-key order — always sound, no setup required. Sampling
/// representative input (AddSample) makes the prefix grams the *rare*
/// grams, which is what keeps posting lists short; the order stays
/// exact either way, only probe cost changes.
class GramOrder {
 public:
  /// Pure gram-key order (every frequency 0).
  GramOrder() = default;

  /// Accumulates the distinct grams of `s` into the frequency table
  /// (distinct per string, mirroring posting-list lengths). Must only
  /// be called while building the order, before any index or probe
  /// uses it.
  void AddSample(std::string_view s, const QGramOptions& options);

  /// Adds `count` observations of one gram (tests, precomputed tables).
  void AddFrequency(GramKey key, uint64_t count) { freq_[key] += count; }

  /// Sampled frequency of a gram (0 if never seen).
  uint64_t FrequencyOf(GramKey key) const {
    auto it = freq_.find(key);
    return it == freq_.end() ? 0 : it->second;
  }

  /// The sort key realizing the order: ascending (frequency, key) =
  /// rarest first, ties broken by the exact gram identity.
  std::pair<uint64_t, GramKey> SortKeyFor(GramKey key) const {
    return {FrequencyOf(key), key};
  }

  /// True iff `a` precedes `b` in this order.
  bool Less(GramKey a, GramKey b) const {
    return SortKeyFor(a) < SortKeyFor(b);
  }

  /// Distinct grams with a nonzero sampled frequency.
  size_t distinct() const { return freq_.size(); }

 private:
  std::unordered_map<GramKey, uint64_t> freq_;
  std::vector<GramKey> scratch_;
};

}  // namespace text
}  // namespace aqp

#endif  // AQP_TEXT_GRAM_ORDER_H_
