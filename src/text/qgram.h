#ifndef AQP_TEXT_QGRAM_H_
#define AQP_TEXT_QGRAM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace aqp {
namespace text {

/// A q-gram packed into a 64-bit key (q <= 8 bytes, big-endian), so
/// q-gram identity is exact — no hash collisions in the inverted index.
using GramKey = uint64_t;

/// \brief Options controlling q-gram extraction.
///
/// With padding enabled (the default, as in Gravano et al. and as
/// implied by the paper's gram count |jA| + q - 1), the string is
/// extended with q-1 copies of `pad_left` on the left and q-1 copies of
/// `pad_right` on the right before sliding the window.
struct QGramOptions {
  /// Window width; the paper uses q = 3. Must be in [1, 8].
  int q = 3;
  /// Whether to pad the string ends.
  bool pad = true;
  /// Padding bytes; control characters avoid collisions with data.
  char pad_left = '\x01';
  char pad_right = '\x02';

  /// Validates the option combination.
  Status Validate() const;

  /// Two option sets extract identical grams iff they compare equal
  /// (gram-cache compatibility checks).
  friend bool operator==(const QGramOptions& a, const QGramOptions& b) {
    return a.q == b.q && a.pad == b.pad && a.pad_left == b.pad_left &&
           a.pad_right == b.pad_right;
  }
  friend bool operator!=(const QGramOptions& a, const QGramOptions& b) {
    return !(a == b);
  }
};

/// \brief A deduplicated, sorted set of q-grams of one string.
///
/// The paper (§2.2) defines q(s) as the *set* of substrings, and the
/// Jaccard coefficient is computed on sets; GramSet is that
/// representation, with O(|a|+|b|) merge-based intersection.
class GramSet {
 public:
  GramSet() = default;

  /// Builds the gram set of `s` under `options`.
  static GramSet Of(std::string_view s, const QGramOptions& options);

  /// Builds the gram set of `s` using `*scratch` for the intermediate
  /// gram sequence, so repeated extraction (store gram-cache fills,
  /// probe loops) reuses one buffer instead of allocating per call. The
  /// returned set's vector is sized exactly to the deduplicated grams.
  static GramSet OfUsingScratch(std::string_view s,
                                const QGramOptions& options,
                                std::vector<GramKey>* scratch);

  /// Number of distinct q-grams.
  size_t size() const { return grams_.size(); }
  bool empty() const { return grams_.empty(); }

  /// Sorted distinct gram keys.
  const std::vector<GramKey>& grams() const { return grams_; }

  /// True iff `key` is a member (binary search).
  bool Contains(GramKey key) const;

  /// Size of the intersection with another gram set.
  size_t OverlapWith(const GramSet& other) const;

  friend bool operator==(const GramSet& a, const GramSet& b) {
    return a.grams_ == b.grams_;
  }

 private:
  std::vector<GramKey> grams_;
};

/// Extracts the full q-gram *sequence* of `s` (duplicates preserved, in
/// positional order). With padding the sequence has exactly
/// max(0, |s| + q - 1) elements; without padding, max(0, |s| - q + 1).
std::vector<GramKey> ExtractGramSequence(std::string_view s,
                                         const QGramOptions& options);

/// Append-free variant: clears `*out` and fills it with the gram
/// sequence, reusing its capacity. Pads are fed through the rolling
/// window arithmetically, so no padded string copy is materialized —
/// this is the allocation-free kernel of every gram extraction.
void ExtractGramSequenceInto(std::string_view s, const QGramOptions& options,
                             std::vector<GramKey>* out);

/// Number of grams ExtractGramSequence would produce, without
/// extracting them.
size_t GramSequenceLength(size_t string_length, const QGramOptions& options);

/// Unpacks a gram key back into its q bytes (for debugging/tests).
std::string GramKeyToString(GramKey key, int q);

}  // namespace text
}  // namespace aqp

#endif  // AQP_TEXT_QGRAM_H_
