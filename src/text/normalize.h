#ifndef AQP_TEXT_NORMALIZE_H_
#define AQP_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>

namespace aqp {
namespace text {

/// \brief Options for canonicalizing join-attribute strings before
/// matching (record-linkage "data preparation lite": the paper assumes
/// values are already comparable; these switches make the assumption
/// explicit and testable).
struct NormalizeOptions {
  /// Uppercase ASCII letters.
  bool upper_case = true;
  /// Collapse whitespace runs to single spaces and trim ends.
  bool collapse_whitespace = true;
  /// Drop ASCII punctuation (.,;:'"-_/()&).
  bool strip_punctuation = false;

  /// Preset matching the paper's data ("TAA BZ SANTA CRISTINA ..."):
  /// uppercase + whitespace collapsing, punctuation kept.
  static NormalizeOptions Paper() { return NormalizeOptions{}; }
};

/// Applies the normalization pipeline to `s`.
std::string Normalize(std::string_view s, const NormalizeOptions& options);

}  // namespace text
}  // namespace aqp

#endif  // AQP_TEXT_NORMALIZE_H_
