#include "text/gram_order.h"

namespace aqp {
namespace text {

void GramOrder::AddSample(std::string_view s, const QGramOptions& options) {
  const GramSet set = GramSet::OfUsingScratch(s, options, &scratch_);
  for (GramKey key : set.grams()) ++freq_[key];
}

}  // namespace text
}  // namespace aqp
