#ifndef AQP_JOIN_BRUTE_FORCE_H_
#define AQP_JOIN_BRUTE_FORCE_H_

#include <utility>
#include <vector>

#include "join/join_types.h"
#include "storage/relation.h"

namespace aqp {
namespace join {

/// \brief A matching (left row index, right row index, similarity)
/// triple from a brute-force join.
struct BrutePair {
  size_t left_row;
  size_t right_row;
  double similarity;

  friend bool operator==(const BrutePair& a, const BrutePair& b) {
    return a.left_row == b.left_row && a.right_row == b.right_row;
  }
  friend bool operator<(const BrutePair& a, const BrutePair& b) {
    return a.left_row != b.left_row ? a.left_row < b.left_row
                                    : a.right_row < b.right_row;
  }
};

/// \brief O(n·m) reference joins used as ground truth by the property
/// tests and as the "what a non-pipelined engine would do" comparator
/// in benches. Deliberately simple — correctness oracle, not a
/// competitor.
/// @{

/// All pairs with bytewise-equal join attributes.
std::vector<BrutePair> BruteForceExactJoin(const storage::Relation& left,
                                           const storage::Relation& right,
                                           const JoinSpec& spec);

/// All pairs whose set similarity reaches spec.sim_threshold, computed
/// by direct gram-set intersection (no index, no count filter).
std::vector<BrutePair> BruteForceSimilarityJoin(const storage::Relation& left,
                                                const storage::Relation& right,
                                                const JoinSpec& spec);
/// @}

}  // namespace join
}  // namespace aqp

#endif  // AQP_JOIN_BRUTE_FORCE_H_
