#include "join/filter.h"

#include <algorithm>

namespace aqp {
namespace join {

Status ApproxFilterOptions::Validate() const {
  // Every combination of the three switches is sound on its own; the
  // gram order is optional (null = gram-key order). Nothing to reject
  // yet — the hook exists so future knobs fail loudly in JoinSpec
  // validation rather than deep inside a probe.
  return Status::OK();
}

std::string ApproxFilterOptions::Label() const {
  if (!any()) return "none";
  std::string label;
  const auto append = [&label](const char* part) {
    if (!label.empty()) label += '+';
    label += part;
  };
  if (length) append("length");
  if (prefix) append("prefix");
  if (positional) append("positional");
  return label;
}

bool LengthCompatible(text::SimilarityMeasure measure, size_t probe_size,
                      size_t stored_size, double threshold) {
  const size_t best_overlap = std::min(probe_size, stored_size);
  return text::SetSimilarityFromOverlap(measure, probe_size, stored_size,
                                        best_overlap) >= threshold;
}

GramCountBand LengthBandFor(text::SimilarityMeasure measure,
                            size_t probe_size, double threshold) {
  GramCountBand band;
  if (probe_size == 0) {
    // A gram-less probe matches only gram-less tuples (handled outside
    // the posting walk); postings never contain size-0 tuples, so the
    // band over posting entries is empty.
    band.lo = 1;
    band.hi = 0;
    return band;
  }
  // Smallest feasible size in [1, probe_size]: best-case similarity is
  // nondecreasing in the stored size on this range.
  size_t lo = 1;
  size_t hi = probe_size;
  if (!LengthCompatible(measure, probe_size, probe_size, threshold)) {
    // Even an identical-size tuple cannot reach the threshold; the
    // band is empty (Contains() is false for every size).
    band.lo = 1;
    band.hi = 0;
    return band;
  }
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (LengthCompatible(measure, probe_size, mid, threshold)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  band.lo = lo;
  // Largest feasible size >= probe_size: best-case similarity is
  // nonincreasing there — except for the overlap coefficient, which
  // stays 1 for every superset and has no upper bound.
  if (measure == text::SimilarityMeasure::kOverlap) {
    band.hi = std::numeric_limits<size_t>::max();
    return band;
  }
  size_t beyond = probe_size;  // last size known compatible
  size_t step = 1;
  while (LengthCompatible(measure, probe_size, beyond + step, threshold)) {
    beyond += step;
    step *= 2;
  }
  lo = beyond;
  hi = beyond + step;  // first size known incompatible is within (lo, hi]
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (LengthCompatible(measure, probe_size, mid, threshold)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  band.hi = lo;
  return band;
}

size_t PrefixLengthFor(text::SimilarityMeasure measure, size_t set_size,
                       double threshold) {
  if (set_size == 0) return 0;
  const size_t k = text::MinOverlapForThreshold(measure, set_size, threshold);
  // k is in [1, set_size] for any threshold <= 1, so the result is in
  // [1, set_size]; clamp anyway so a pathological threshold cannot
  // underflow.
  return k > set_size ? 1 : set_size - k + 1;
}

std::optional<size_t> MinPairOverlap(text::SimilarityMeasure measure,
                                     size_t probe_size, size_t stored_size,
                                     double threshold) {
  const size_t max_overlap = std::min(probe_size, stored_size);
  if (text::SetSimilarityFromOverlap(measure, probe_size, stored_size,
                                     max_overlap) < threshold) {
    return std::nullopt;
  }
  // Similarity is nondecreasing in the overlap for all four
  // coefficients; find the smallest passing value.
  size_t lo = max_overlap == 0 ? 0 : 1;
  size_t hi = max_overlap;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (text::SetSimilarityFromOverlap(measure, probe_size, stored_size,
                                       mid) >= threshold) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

bool PositionalCompatible(size_t probe_size, size_t probe_pos,
                          size_t stored_size, size_t stored_pos,
                          size_t required_overlap) {
  const size_t probe_remaining = probe_size - probe_pos - 1;
  const size_t stored_remaining = stored_size - stored_pos - 1;
  return 1 + std::min(probe_remaining, stored_remaining) >= required_overlap;
}

}  // namespace join
}  // namespace aqp
