#include "join/exact_index.h"

#include <algorithm>
#include <cassert>

namespace aqp {
namespace join {
namespace {

/// Smallest table for which probing stays short; must be a power of 2.
constexpr size_t kMinSlots = 16;
/// Grow when keys exceed 7/8 of... conservatively, 3/4 of the slots.
constexpr size_t kLoadNum = 3;
constexpr size_t kLoadDen = 4;

}  // namespace

size_t ExactIndex::FindSlot(uint64_t hash, std::string_view key) const {
  const size_t mask = slots_.size() - 1;
  size_t i = static_cast<size_t>(hash) & mask;
  while (true) {
    const Slot& slot = slots_[i];
    if (slot.head == kNone) return i;
    if (slot.hash == hash && store_->JoinKey(slot.head) == key) return i;
    i = (i + 1) & mask;
  }
}

void ExactIndex::Rehash(size_t min_slots) {
  size_t n = kMinSlots;
  while (n < min_slots) n <<= 1;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(n, Slot{});
  const size_t mask = n - 1;
  for (const Slot& slot : old) {
    if (slot.head == kNone) continue;
    size_t i = static_cast<size_t>(slot.hash) & mask;
    while (slots_[i].head != kNone) i = (i + 1) & mask;
    slots_[i] = slot;
  }
}

size_t ExactIndex::CatchUpWith(const storage::TupleStore& store) {
  assert((store_ == nullptr || store_ == &store) &&
         "ExactIndex is bound to one TupleStore");
  store_ = &store;
  const size_t target = store.size();
  size_t inserted = 0;
  prev_.resize(target, kNone);
  // Upper bound on the slots the new keys can need, applied up front so
  // bulk catch-up (switch points insert long runs) rehashes once.
  if (slots_.size() * kLoadNum < (keys_ + (target - watermark_)) * kLoadDen) {
    Rehash(((keys_ + (target - watermark_)) * kLoadDen) / kLoadNum + 1);
  }
  for (size_t i = watermark_; i < target; ++i) {
    const auto id = static_cast<storage::TupleId>(i);
    // Both the key view and its hash were computed once at Add() time;
    // catch-up is pure table maintenance.
    const std::string_view key = store.JoinKey(id);
    const uint64_t hash = store.KeyHash(id);
    const size_t slot_index = FindSlot(hash, key);
    Slot& slot = slots_[slot_index];
    if (slot.head == kNone) {
      slot.hash = hash;
      slot.head = id;
      ++keys_;
    } else {
      prev_[i] = slot.head;
      slot.head = id;
    }
    ++inserted;
  }
  watermark_ = target;
  return inserted;
}

storage::TupleId ExactIndex::ChainHead(std::string_view key,
                                       uint64_t hash) const {
  if (keys_ == 0) return kNone;
  return slots_[FindSlot(hash, key)].head;
}

std::vector<storage::TupleId> ExactIndex::Lookup(std::string_view key) const {
  std::vector<storage::TupleId> out;
  for (storage::TupleId id = ChainHead(key); id != kNone;
       id = ChainPrev(id)) {
    out.push_back(id);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

double ExactIndex::AverageBucketLength() const {
  if (keys_ == 0) return 0.0;
  return static_cast<double>(watermark_) / static_cast<double>(keys_);
}

size_t ExactIndex::ApproximateMemoryUsage() const {
  return slots_.capacity() * sizeof(Slot) +
         prev_.capacity() * sizeof(storage::TupleId);
}

}  // namespace join
}  // namespace aqp
