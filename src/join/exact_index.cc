#include "join/exact_index.h"

namespace aqp {
namespace join {

size_t ExactIndex::CatchUpWith(const storage::TupleStore& store) {
  const size_t target = store.size();
  size_t inserted = 0;
  for (size_t i = watermark_; i < target; ++i) {
    const auto id = static_cast<storage::TupleId>(i);
    buckets_[store.JoinKey(id)].push_back(id);
    ++inserted;
  }
  watermark_ = target;
  return inserted;
}

const std::vector<storage::TupleId>* ExactIndex::Probe(
    const std::string& key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? nullptr : &it->second;
}

double ExactIndex::AverageBucketLength() const {
  if (buckets_.empty()) return 0.0;
  return static_cast<double>(watermark_) /
         static_cast<double>(buckets_.size());
}

size_t ExactIndex::ApproximateMemoryUsage() const {
  size_t bytes = 0;
  for (const auto& [key, postings] : buckets_) {
    bytes += key.capacity() + sizeof(key);
    bytes += postings.capacity() * sizeof(storage::TupleId) +
             sizeof(postings);
  }
  return bytes;
}

}  // namespace join
}  // namespace aqp
