#include "join/qgram_index.h"

namespace aqp {
namespace join {

size_t QGramIndex::CatchUpWith(const storage::TupleStore& store) {
  const size_t target = store.size();
  size_t inserted = 0;
  gram_sets_.reserve(target);
  for (size_t i = watermark_; i < target; ++i) {
    const auto id = static_cast<storage::TupleId>(i);
    text::GramSet set = text::GramSet::Of(store.JoinKey(id), options_);
    if (set.empty()) {
      empty_gram_tuples_.push_back(id);
    } else {
      for (text::GramKey key : set.grams()) {
        postings_[key].push_back(id);
        ++total_postings_;
      }
    }
    gram_sets_.push_back(std::move(set));
    ++inserted;
  }
  watermark_ = target;
  return inserted;
}

const std::vector<storage::TupleId>* QGramIndex::Postings(
    text::GramKey key) const {
  auto it = postings_.find(key);
  return it == postings_.end() ? nullptr : &it->second;
}

size_t QGramIndex::Frequency(text::GramKey key) const {
  auto it = postings_.find(key);
  return it == postings_.end() ? 0 : it->second.size();
}

double QGramIndex::AveragePostingLength() const {
  if (postings_.empty()) return 0.0;
  return static_cast<double>(total_postings_) /
         static_cast<double>(postings_.size());
}

size_t QGramIndex::ApproximateMemoryUsage() const {
  size_t bytes = 0;
  for (const auto& [key, postings] : postings_) {
    bytes += sizeof(key);
    bytes += postings.capacity() * sizeof(storage::TupleId) +
             sizeof(postings);
  }
  for (const text::GramSet& set : gram_sets_) {
    bytes += set.grams().capacity() * sizeof(text::GramKey) + sizeof(set);
  }
  bytes += empty_gram_tuples_.capacity() * sizeof(storage::TupleId);
  return bytes;
}

}  // namespace join
}  // namespace aqp
