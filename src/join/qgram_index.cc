#include "join/qgram_index.h"

#include <algorithm>
#include <cassert>

namespace aqp {
namespace join {

namespace {

/// First reservation of a posting vector. Posting lists grow one tuple
/// at a time during catch-up; reserving a few slots up front removes
/// the 1→2→4 reallocation churn every new gram would otherwise pay.
constexpr size_t kInitialPostingCapacity = 4;

/// Reserve() cap: distinct grams saturate around the alphabet^q corpus
/// vocabulary, far below million-row tuple counts — reserving one
/// bucket per expected tuple beyond this would only waste bucket
/// array memory.
constexpr size_t kMaxReservedBuckets = size_t{1} << 20;

}  // namespace

size_t QGramIndex::CatchUpWith(const storage::TupleStore& store) {
  assert((store_ == nullptr || store_ == &store) &&
         "QGramIndex is bound to one TupleStore");
  if (store_ == nullptr) {
    store_ = &store;
    store_backed_ =
        store.gram_cache_enabled() && store.gram_options() == options_;
  }
  const size_t target = store.size();
  size_t inserted = 0;
  if (!store_backed_) local_gram_sets_.reserve(target);
  const bool payload = payload_mode();
  const text::GramOrder* order = filter_.gram_order.get();
  for (size_t i = watermark_; i < target; ++i) {
    const auto id = static_cast<storage::TupleId>(i);
    if (!store_backed_) {
      local_gram_sets_.push_back(
          text::GramSet::Of(store.JoinKey(id), options_));
    }
    const text::GramSet& set = GramSetOf(id);
    if (set.empty()) {
      empty_gram_tuples_.push_back(id);
    } else if (!payload) {
      for (text::GramKey key : set.grams()) {
        std::vector<storage::TupleId>& postings = postings_[key];
        if (postings.capacity() == 0) {
          postings.reserve(kInitialPostingCapacity);
        }
        postings.push_back(id);
        ++total_postings_;
      }
    } else {
      // Payload layout: order the tuple's grams under the global gram
      // order, then post the first g-k+1 of them (all g without prefix
      // filtering), each carrying the tuple's gram count and the
      // gram's position in the ordered list.
      const size_t g = set.size();
      order_scratch_.clear();
      order_scratch_.reserve(g);
      for (text::GramKey key : set.grams()) {
        order_scratch_.emplace_back(order ? order->FrequencyOf(key) : 0,
                                    key);
      }
      // grams() is already key-sorted, so with no sampled order this
      // sort is a no-op pass; with one it ranks rarest first.
      std::sort(order_scratch_.begin(), order_scratch_.end());
      const size_t posted =
          filter_.prefix ? PrefixLengthFor(measure_, g, sim_threshold_) : g;
      for (size_t j = 0; j < posted; ++j) {
        std::vector<GramPosting>& postings =
            payload_postings_[order_scratch_[j].second];
        if (postings.capacity() == 0) {
          postings.reserve(kInitialPostingCapacity);
        }
        postings.push_back(GramPosting{id, static_cast<uint32_t>(g),
                                       static_cast<uint32_t>(j)});
        ++total_postings_;
      }
    }
    ++inserted;
  }
  watermark_ = target;
  return inserted;
}

const std::vector<storage::TupleId>* QGramIndex::Postings(
    text::GramKey key) const {
  assert(!payload_mode() && "plain postings unavailable in payload mode");
  auto it = postings_.find(key);
  return it == postings_.end() ? nullptr : &it->second;
}

const std::vector<GramPosting>* QGramIndex::PayloadPostings(
    text::GramKey key) const {
  assert(payload_mode() && "payload postings require an enabled filter");
  auto it = payload_postings_.find(key);
  return it == payload_postings_.end() ? nullptr : &it->second;
}

size_t QGramIndex::Frequency(text::GramKey key) const {
  if (payload_mode()) {
    auto it = payload_postings_.find(key);
    return it == payload_postings_.end() ? 0 : it->second.size();
  }
  auto it = postings_.find(key);
  return it == postings_.end() ? 0 : it->second.size();
}

double QGramIndex::AveragePostingLength() const {
  const size_t distinct = distinct_grams();
  if (distinct == 0) return 0.0;
  return static_cast<double>(total_postings_) /
         static_cast<double>(distinct);
}

void QGramIndex::Reserve(size_t expected_tuples) {
  const size_t buckets = std::min(expected_tuples, kMaxReservedBuckets);
  if (buckets == 0) return;
  if (payload_mode()) {
    payload_postings_.reserve(buckets);
  } else {
    postings_.reserve(buckets);
  }
}

size_t QGramIndex::ApproximateMemoryUsage() const {
  size_t bytes = 0;
  for (const auto& [key, postings] : postings_) {
    bytes += sizeof(key);
    bytes += postings.capacity() * sizeof(storage::TupleId) +
             sizeof(postings);
  }
  for (const auto& [key, postings] : payload_postings_) {
    bytes += sizeof(key);
    bytes += postings.capacity() * sizeof(GramPosting) + sizeof(postings);
  }
  // Bucket arrays: reserved capacity is real memory even before any
  // posting lands in it.
  bytes += postings_.bucket_count() * sizeof(void*);
  bytes += payload_postings_.bucket_count() * sizeof(void*);
  for (const text::GramSet& set : local_gram_sets_) {
    bytes += set.grams().capacity() * sizeof(text::GramKey) + sizeof(set);
  }
  bytes += empty_gram_tuples_.capacity() * sizeof(storage::TupleId);
  return bytes;
}

}  // namespace join
}  // namespace aqp
