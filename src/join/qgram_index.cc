#include "join/qgram_index.h"

#include <cassert>

namespace aqp {
namespace join {

namespace {

/// First reservation of a posting vector. Posting lists grow one tuple
/// at a time during catch-up; reserving a few slots up front removes
/// the 1→2→4 reallocation churn every new gram would otherwise pay.
constexpr size_t kInitialPostingCapacity = 4;

}  // namespace

size_t QGramIndex::CatchUpWith(const storage::TupleStore& store) {
  assert((store_ == nullptr || store_ == &store) &&
         "QGramIndex is bound to one TupleStore");
  if (store_ == nullptr) {
    store_ = &store;
    store_backed_ =
        store.gram_cache_enabled() && store.gram_options() == options_;
  }
  const size_t target = store.size();
  size_t inserted = 0;
  if (!store_backed_) local_gram_sets_.reserve(target);
  for (size_t i = watermark_; i < target; ++i) {
    const auto id = static_cast<storage::TupleId>(i);
    if (!store_backed_) {
      local_gram_sets_.push_back(
          text::GramSet::Of(store.JoinKey(id), options_));
    }
    const text::GramSet& set = GramSetOf(id);
    if (set.empty()) {
      empty_gram_tuples_.push_back(id);
    } else {
      for (text::GramKey key : set.grams()) {
        std::vector<storage::TupleId>& postings = postings_[key];
        if (postings.capacity() == 0) {
          postings.reserve(kInitialPostingCapacity);
        }
        postings.push_back(id);
        ++total_postings_;
      }
    }
    ++inserted;
  }
  watermark_ = target;
  return inserted;
}

const std::vector<storage::TupleId>* QGramIndex::Postings(
    text::GramKey key) const {
  auto it = postings_.find(key);
  return it == postings_.end() ? nullptr : &it->second;
}

size_t QGramIndex::Frequency(text::GramKey key) const {
  auto it = postings_.find(key);
  return it == postings_.end() ? 0 : it->second.size();
}

double QGramIndex::AveragePostingLength() const {
  if (postings_.empty()) return 0.0;
  return static_cast<double>(total_postings_) /
         static_cast<double>(postings_.size());
}

size_t QGramIndex::ApproximateMemoryUsage() const {
  size_t bytes = 0;
  for (const auto& [key, postings] : postings_) {
    bytes += sizeof(key);
    bytes += postings.capacity() * sizeof(storage::TupleId) +
             sizeof(postings);
  }
  for (const text::GramSet& set : local_gram_sets_) {
    bytes += set.grams().capacity() * sizeof(text::GramKey) + sizeof(set);
  }
  bytes += empty_gram_tuples_.capacity() * sizeof(storage::TupleId);
  return bytes;
}

}  // namespace join
}  // namespace aqp
