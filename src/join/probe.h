#ifndef AQP_JOIN_PROBE_H_
#define AQP_JOIN_PROBE_H_

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "join/exact_index.h"
#include "join/join_types.h"
#include "join/qgram_index.h"
#include "storage/tuple_store.h"
#include "text/qgram.h"

namespace aqp {
namespace join {

/// \brief Knobs for the approximate probe (ablation switches; the
/// defaults are the paper's algorithm).
struct ApproxProbeOptions {
  /// §2.2's optimization: only the first g-k+1 grams may *insert*
  /// candidates into T(t); the remaining k-1 grams only increment
  /// counters of existing candidates. Sound because a tuple sharing
  /// none of the first g-k+1 grams can share at most k-1 < k grams.
  bool insert_phase_optimization = true;
  /// Process probe grams in ascending posting-frequency order
  /// ("reverse frequency order"), so the insert phase consumes the
  /// rarest — shortest — posting lists and T(t) stays small.
  bool rare_grams_first = true;
};

/// \brief Reusable per-probe working memory.
///
/// One approximate probe needs a frequency-ordered gram list and the
/// T(t) candidate counter table; both are cleared (capacity kept) and
/// reused when the caller passes the same scratch to every probe, so
/// steady-state probing allocates nothing. Owned by one single-threaded
/// prober (e.g. a HybridJoinCore).
///
/// The counter map would otherwise stay at its high-water bucket count
/// forever — one pathologically wide probe early in a million-row
/// sweep pins peak memory for the rest of the run. NoteProbeCompleted
/// (called by the probe kernels after each probe) tracks the recent
/// peak candidate count and rebuilds the map once its bucket table
/// exceeds kShrinkFactor × that steady state.
struct ApproxProbeScratch {
  /// (gram order rank, gram) pairs of the probe, sorted ascending. The
  /// rank is the live posting frequency in the unfiltered kernel
  /// ("reverse frequency order") and the fixed global-order frequency
  /// in the filtered kernel.
  std::vector<std::pair<size_t, text::GramKey>> ordered;
  /// T(t): candidate tuple -> number of shared grams seen so far.
  std::unordered_map<storage::TupleId, uint32_t> counters;

  /// Shrink policy knobs: every kShrinkCheckInterval probes, rebuild
  /// the counter map when its bucket count exceeds kShrinkFactor × the
  /// interval's peak candidate count (but never below
  /// kMinCounterBuckets).
  static constexpr size_t kShrinkCheckInterval = 64;
  static constexpr size_t kShrinkFactor = 8;
  static constexpr size_t kMinCounterBuckets = 64;

  /// Called by the probe kernels once the probe's counters are dead;
  /// applies the shrink policy.
  void NoteProbeCompleted();

  /// Probes since the last shrink check.
  size_t probes_since_shrink_check = 0;
  /// Largest candidate count observed since the last shrink check.
  size_t peak_candidates = 0;
};

/// \brief Work counters for one approximate probe, feeding the Table 1
/// cost model.
struct ApproxProbeStats {
  uint64_t grams = 0;                ///< |q(t)| of the probe
  uint64_t postings_scanned = 0;     ///< Σ posting-list lengths touched
  uint64_t candidates = 0;           ///< |T(t)| (positionally rejected
                                     ///< entries excluded)
  uint64_t verified = 0;             ///< candidates submitted to
                                     ///< verification
  uint64_t matches = 0;              ///< pairs passing the threshold
  uint64_t length_skipped = 0;       ///< posting entries pruned by the
                                     ///< length filter
  uint64_t position_rejected = 0;    ///< candidates pruned by the
                                     ///< positional filter

  void MergeFrom(const ApproxProbeStats& other);
};

/// \brief Probes the exact index with a join-attribute value whose
/// 64-bit hash is already known (the probing tuple's store cached it
/// at Add time — the hot path never re-hashes).
///
/// Appends one JoinMatch (kind kExact, similarity 1.0) per stored tuple
/// whose attribute equals `key` to `*out`; returns the number appended.
/// The append-style interface lets the batched executor reuse one match
/// buffer across a whole batch instead of allocating per probe.
size_t ProbeExactInto(const ExactIndex& index, std::string_view key,
                      uint64_t key_hash, Side probe_side,
                      storage::TupleId probe_id, std::vector<JoinMatch>* out);

/// Hashing overload for callers without a cached key hash.
inline size_t ProbeExactInto(const ExactIndex& index, std::string_view key,
                             Side probe_side, storage::TupleId probe_id,
                             std::vector<JoinMatch>* out) {
  return ProbeExactInto(index, key, Fnv1a64(key), probe_side, probe_id, out);
}

/// Convenience wrapper returning a fresh vector (tests, one-off code).
std::vector<JoinMatch> ProbeExact(const ExactIndex& index,
                                  std::string_view key, Side probe_side,
                                  storage::TupleId probe_id);

/// \brief Probes the q-gram index with a probe tuple's join-attribute
/// value — the SSHJoin NEXT() kernel (§2.2).
///
/// Implements candidate generation via counted gram lookups with the
/// insert-phase optimization, then verifies every candidate with the
/// exact coefficient computed from (probe size, candidate size,
/// overlap). The result is exactly the set of stored tuples with
/// sim(probe, stored) >= spec.sim_threshold; matches whose strings are
/// bytewise equal are flagged kExact (similarity 1.0), the rest
/// kApproximate.
///
/// When `spec.filter` enables any filter, the probe runs the filtered
/// kernel instead: probe grams are scanned ascending in the filter's
/// fixed global gram order, out-of-band candidates are length-skipped
/// before touching T(t), positionally hopeless candidates are rejected
/// at discovery, and with prefix indexing only the probe's g-k+1
/// prefix grams are scanned (candidates then verified by exact gram-
/// set intersection). The index must have been built with the same
/// filter configuration (checked by assert). The match set, match
/// order, similarity values, and kinds are byte-identical to the
/// unfiltered kernel — filters change cost, never results. The legacy
/// ablation knobs in `options` apply to the unfiltered kernel only.
///
/// `probe_grams` is the probe key's gram set — for stored probing
/// tuples it comes straight from the store's gram cache, so neither
/// side of the verification re-runs gram extraction. `store` supplies
/// candidate strings for the equality check; `scratch` (may be null)
/// makes the probe allocation-free in steady state; `stats` may be
/// null. Matches are appended to `*out` (sorted by stored id within
/// the appended region); returns the number appended.
size_t ProbeApproximateInto(const QGramIndex& index,
                            const storage::TupleStore& store,
                            std::string_view probe_key,
                            const text::GramSet& probe_grams,
                            const JoinSpec& spec, Side probe_side,
                            storage::TupleId probe_id,
                            const ApproxProbeOptions& options,
                            ApproxProbeScratch* scratch,
                            ApproxProbeStats* stats,
                            std::vector<JoinMatch>* out);

/// Extracting overload for callers without cached probe grams.
size_t ProbeApproximateInto(const QGramIndex& index,
                            const storage::TupleStore& store,
                            std::string_view probe_key, const JoinSpec& spec,
                            Side probe_side, storage::TupleId probe_id,
                            const ApproxProbeOptions& options,
                            ApproxProbeStats* stats,
                            std::vector<JoinMatch>* out);

/// Convenience wrapper returning a fresh vector (tests, one-off code).
std::vector<JoinMatch> ProbeApproximate(const QGramIndex& index,
                                        const storage::TupleStore& store,
                                        std::string_view probe_key,
                                        const JoinSpec& spec, Side probe_side,
                                        storage::TupleId probe_id,
                                        const ApproxProbeOptions& options,
                                        ApproxProbeStats* stats);

}  // namespace join
}  // namespace aqp

#endif  // AQP_JOIN_PROBE_H_
