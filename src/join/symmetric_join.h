#ifndef AQP_JOIN_SYMMETRIC_JOIN_H_
#define AQP_JOIN_SYMMETRIC_JOIN_H_

#include <cstdint>
#include <deque>
#include <string>

#include "exec/interleave.h"
#include "exec/operator.h"
#include "join/hybrid_core.h"
#include "join/join_types.h"

namespace aqp {
namespace join {

/// \brief Configuration shared by all symmetric join operators.
struct SymmetricJoinOptions {
  /// What to join and how to compare (θ_sim, q, measure).
  JoinSpec spec;
  /// Input alternation policy (the paper scans "each of the tables in
  /// turn").
  exec::InterleavePolicy interleave = exec::InterleavePolicy::kAlternate;
  /// Expected input cardinalities for the proportional policy
  /// (0 = unknown).
  uint64_t left_size_hint = 0;
  uint64_t right_size_hint = 0;
  /// Append a "sim" double column to every output tuple.
  bool emit_similarity = false;
  /// Approximate-probe knobs (ablation switches).
  ApproxProbeOptions approx;
};

/// \brief Pipelined symmetric join driver: pulls from two child
/// operators, feeds a HybridJoinCore, and enumerates result tuples.
///
/// This is the iterator of Fig. 2: Next() either returns an outstanding
/// match of the current probe tuple (non-quiescent states) or advances
/// the join by whole steps until output appears (each step ends in a
/// quiescent state, §2.1). Subclasses hook into the step loop:
///
/// - OnStepCompleted() fires right after each step with its matches and
///   elapsed time (monitor feed);
/// - OnQuiescentPoint() fires between steps while no output is pending
///   — the only moments where probe modes may be switched safely
///   (assess/respond).
///
/// SHJoin pins both modes to exact, SSHJoin to approximate; the
/// adaptive operator drives them through the MAR controller.
class SymmetricJoin : public exec::Operator {
 public:
  /// Children are borrowed, not owned, and must outlive the join.
  SymmetricJoin(exec::Operator* left, exec::Operator* right,
                SymmetricJoinOptions options, ProbeMode initial_left_mode,
                ProbeMode initial_right_mode, std::string name);

  Status Open() override;
  Result<std::optional<storage::Tuple>> Next() override;
  Status Close() override;
  const storage::Schema& output_schema() const override {
    return output_schema_;
  }
  /// Quiescent iff no matches of the last probe tuple remain pending.
  bool quiescent() const override { return pending_.empty(); }
  std::string name() const override { return name_; }

  /// \name Introspection.
  /// @{
  const HybridJoinCore& core() const { return core_; }
  /// Steps executed so far (= input tuples fully processed).
  uint64_t steps() const { return steps_; }
  /// True once `side`'s input has reported end-of-stream.
  bool input_exhausted(exec::Side side) const {
    return side == exec::Side::kLeft ? left_done_ : right_done_;
  }
  const SymmetricJoinOptions& options() const { return options_; }
  /// @}

 protected:
  /// Called between steps whenever the operator is quiescent; the only
  /// safe point for SetProbeMode(). Default: no adaptation.
  virtual Status OnQuiescentPoint() { return Status::OK(); }

  /// Called after each step with the side read, the step's matches,
  /// and the elapsed wall time of the core work.
  virtual void OnStepCompleted(exec::Side side,
                               const std::vector<JoinMatch>& matches,
                               int64_t elapsed_ns) {
    (void)side;
    (void)matches;
    (void)elapsed_ns;
  }

  /// Mutable core access for subclasses (responder switches).
  HybridJoinCore* mutable_core() { return &core_; }

 private:
  storage::Tuple BuildOutput(const JoinMatch& match) const;

  exec::Operator* left_;
  exec::Operator* right_;
  SymmetricJoinOptions options_;
  std::string name_;
  HybridJoinCore core_;
  exec::InterleaveScheduler scheduler_;
  storage::Schema output_schema_;
  std::deque<storage::Tuple> pending_;
  uint64_t steps_ = 0;
  bool left_done_ = false;
  bool right_done_ = false;
  bool open_ = false;
};

}  // namespace join
}  // namespace aqp

#endif  // AQP_JOIN_SYMMETRIC_JOIN_H_
