#ifndef AQP_JOIN_SYMMETRIC_JOIN_H_
#define AQP_JOIN_SYMMETRIC_JOIN_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <vector>

#include "exec/interleave.h"
#include "exec/operator.h"
#include "join/hybrid_core.h"
#include "join/join_types.h"
#include "join/match_batch.h"

namespace aqp {
namespace join {

/// \brief Configuration shared by all symmetric join operators.
struct SymmetricJoinOptions {
  /// What to join and how to compare (θ_sim, q, measure).
  JoinSpec spec;
  /// Input alternation policy (the paper scans "each of the tables in
  /// turn").
  exec::InterleavePolicy interleave = exec::InterleavePolicy::kAlternate;
  /// Expected input cardinalities for the proportional policy
  /// (0 = unknown).
  uint64_t left_size_hint = 0;
  uint64_t right_size_hint = 0;
  /// Append a "sim" double column to every output tuple.
  bool emit_similarity = false;
  /// Approximate-probe knobs (ablation switches).
  ApproxProbeOptions approx;
  /// Rows per input batch pulled from the children, and the step-batch
  /// granularity of the vectorized execution path. 1 degenerates to
  /// tuple-at-a-time execution; results and adaptation traces are
  /// identical for every value (see NextBatch()).
  size_t batch_size = storage::TupleBatch::kDefaultCapacity;
};

/// \brief Observables of one step batch: the steps executed between two
/// consecutive quiescent control points of the batched execution path.
struct StepBatchStats {
  /// Per-step observables, in execution order.
  std::vector<StepObservables> steps;
  /// Accumulated wall time of the batch's core step work — store,
  /// index, probe, match-ref emission, and intra-engine buffer moves,
  /// excluding child input pulls and output materialization — in
  /// nanoseconds. This is the quantity the §4.3 weight calibration
  /// divides by step counts, so child scan time must not pollute it.
  /// Measured once per step batch (child refills subtracted), not per
  /// step, keeping the clock off the hot path.
  int64_t elapsed_ns = 0;

  void Clear() {
    steps.clear();
    elapsed_ns = 0;
  }
};

/// \brief Pipelined symmetric join driver: pulls from two child
/// operators, feeds a HybridJoinCore, and enumerates result matches.
///
/// This is the iterator of Fig. 2, vectorized and late-materializing.
/// Execution advances in *steps* (one input tuple fully joined per
/// step, §2.1); the engine runs steps in batches of up to
/// `options.batch_size`, pulling child input through TupleBatch refills
/// and emitting MatchRef batches. A step's output is a set of
/// references into the two tuple stores — no concatenated payload row
/// is built on the hot path. Rows exist only where a consumer needs
/// them:
///
/// - NextMatchBatch() is the native protocol: it refills a MatchBatch
///   with output refs; MaterializeInto()/MaterializeRow() concatenate
///   stored tuples on demand (this is what the collecting sinks call);
/// - NextBatch()/Next() are row-protocol compatibility adapters that
///   materialize at delivery time, producing byte-identical rows in
///   identical order to the pre-late-materialization engine;
/// - counting drains go through exec::UnmaterializedCounter and never
///   build a row at all.
///
/// Between step batches the operator is quiescent by construction —
/// every consumed tuple's matches are fully enumerated as refs — so
/// these boundaries are the only points where subclasses adapt:
///
/// - OnQuiescentPoint() fires before each step batch (and once more at
///   end-of-stream) — the only moments where probe modes may be
///   switched safely (assess/respond);
/// - StepsUntilControlPoint() lets a subclass clamp the next batch so a
///   boundary lands exactly where its control loop must fire (δ_adapt
///   is expressed in steps; the engine rounds batch edges to it, which
///   makes traces independent of batch_size);
/// - OnBatchCompleted() fires after each step batch with the per-step
///   observables aggregated over the batch (monitor feed).
///
/// All drive modes (match batches, row batches, tuple-at-a-time) may be
/// mixed on one operator instance.
///
/// SHJoin pins both modes to exact, SSHJoin to approximate; the
/// adaptive operator drives them through the MAR controller.
class SymmetricJoin : public exec::Operator, public exec::UnmaterializedCounter {
 public:
  /// Children are borrowed, not owned, and must outlive the join.
  SymmetricJoin(exec::Operator* left, exec::Operator* right,
                SymmetricJoinOptions options, ProbeMode initial_left_mode,
                ProbeMode initial_right_mode, std::string name);

  Status Open() override;
  Result<std::optional<storage::Tuple>> Next() override;
  Status NextColumnBatch(storage::ColumnBatch* out) override;
  Status NextBatch(storage::TupleBatch* out) override;
  Status Close() override;
  const storage::Schema& output_schema() const override {
    return output_schema_;
  }
  /// Quiescent iff no produced-but-undelivered match refs remain
  /// buffered; every consumed input tuple is fully joined at all times.
  bool quiescent() const override { return pending_.empty(); }
  std::string name() const override { return name_; }

  /// \name Late-materialized output protocol.
  /// @{
  /// Refills `out` (cleared first; capacity is the caller's) with up to
  /// out->capacity() output match refs. An empty batch after an OK
  /// return signals end-of-stream. Ref order equals the row order of
  /// NextBatch()/Next().
  Status NextMatchBatch(MatchBatch* out);

  /// Concatenates the stored tuples of `ref` (left fields, right
  /// fields, optional similarity column) — row construction exists
  /// only here and in the row-batch adapter below.
  storage::Tuple MaterializeRow(const MatchRef& ref) const;

  /// Materializes every ref of `matches` into `out`, in order. The
  /// caller ensures `out` has room (soft capacity, as TupleBatch).
  void MaterializeInto(const MatchBatch& matches,
                       storage::TupleBatch* out) const;

  /// Columnar materialization: writes every ref's output cells —
  /// left store columns, right store columns, optional similarity —
  /// straight into `out`'s column vectors, arena to arena. No row
  /// payload is constructed (this is what the columnar sinks drive).
  void MaterializeInto(const MatchBatch& matches,
                       storage::ColumnBatch* out) const;

  /// exec::UnmaterializedCounter: produce and count up to `max_rows`
  /// output refs without building rows.
  Result<size_t> AdvanceUnmaterialized(size_t max_rows) override;
  /// @}

  /// \name Introspection.
  /// @{
  const HybridJoinCore& core() const { return core_; }
  /// Steps executed so far (= input tuples fully processed).
  uint64_t steps() const { return steps_; }
  /// True once `side`'s input has reported end-of-stream.
  bool input_exhausted(exec::Side side) const {
    return side == exec::Side::kLeft ? left_done_ : right_done_;
  }
  const SymmetricJoinOptions& options() const { return options_; }
  /// @}

 protected:
  /// Marker for "no control point scheduled" (StepsUntilControlPoint).
  static constexpr uint64_t kNoControlPoint =
      std::numeric_limits<uint64_t>::max();

  /// Called at batch-aligned quiescent points (before each step batch
  /// and at end-of-stream); the only safe place for SetProbeMode().
  /// Default: no adaptation.
  virtual Status OnQuiescentPoint() { return Status::OK(); }

  /// Steps the engine may execute before the next quiescent control
  /// point is required. The engine never runs a step batch past this
  /// bound, so a subclass returning "steps to my next δ_adapt boundary"
  /// gets its control loop activated at exactly the same step counts as
  /// under tuple-at-a-time execution. Default: unbounded.
  virtual uint64_t StepsUntilControlPoint() const { return kNoControlPoint; }

  /// Called after each step batch with its aggregated observables.
  virtual void OnBatchCompleted(const StepBatchStats& batch) { (void)batch; }

  /// Mutable core access for subclasses (responder switches).
  HybridJoinCore* mutable_core() { return &core_; }

 private:
  /// Writes one ref's output cells into `out` (shared body of the
  /// columnar materialization paths).
  void MaterializeRefInto(const MatchRef& ref,
                          storage::ColumnBatch* out) const;

  /// Per-batch-type ref emission (the only difference between the two
  /// delivery protocols).
  void EmitRef(const MatchRef& ref, storage::ColumnBatch* out) const {
    MaterializeRefInto(ref, out);
  }
  void EmitRef(const MatchRef& ref, storage::TupleBatch* out) const {
    out->Append(MaterializeRow(ref));
  }

  /// Shared drive loop of NextColumnBatch/NextBatch: deliver spilled
  /// pending refs, then run step batches until the caller's batch is
  /// full or input is exhausted. On error the partial batch is
  /// discarded and pending_ is left untouched (drained refs are only
  /// erased once the call succeeds), so no produced ref is ever lost.
  template <typename Batch>
  Status FillBatch(Batch* out);

  /// Refills `side`'s input buffer with the child's next columnar
  /// batch and precomputes the join-key hash lane over it.
  Status RefillInput(exec::Side side);

  /// Pulls the next scheduler-ordered input row: *side says which
  /// input, *row indexes into input_batch_[*side]. Returns false when
  /// both inputs are exhausted.
  Result<bool> PullNextInput(exec::Side* side, size_t* row);

  /// Executes one step: consume one input tuple, probe, and append the
  /// step's match refs (to `out` while it has room, spilling the rest
  /// to pending_). Records the step's observables into batch_stats_.
  /// Returns false (without stepping) at end-of-stream.
  Result<bool> StepOnce(MatchBatch* out);

  /// Runs one step batch of at most `max_steps` steps, firing
  /// OnBatchCompleted if any step executed. Sets *exhausted when input
  /// ran out.
  Status RunStepBatch(MatchBatch* out, uint64_t max_steps, bool* exhausted);

  exec::Operator* left_;
  exec::Operator* right_;
  SymmetricJoinOptions options_;
  std::string name_;
  HybridJoinCore core_;
  exec::InterleaveScheduler scheduler_;
  storage::Schema output_schema_;
  /// Produced-but-undelivered match refs: filled by Next()'s one-step
  /// batches and by step outputs overflowing a batch target.
  std::deque<MatchRef> pending_;
  /// Read-ahead columnar buffers over the children, one per side.
  /// Rows are consumed in place (the step copies the payload slice
  /// into the store), so nothing is ever moved out of them.
  storage::ColumnBatch input_batch_[2];
  size_t input_pos_[2] = {0, 0};
  /// Left input arity (output column offset of the right fields).
  size_t left_width_ = 0;
  /// Scratch reused across steps (cleared per step, capacity kept).
  std::vector<JoinMatch> match_scratch_;
  /// Ref batch reused by the row/count adapters (NextBatch,
  /// AdvanceUnmaterialized).
  MatchBatch adapter_batch_;
  StepBatchStats batch_stats_;
  /// Child NextBatch time inside the current step batch (subtracted
  /// from its elapsed_ns; see RunStepBatch/RefillInput).
  int64_t refill_excluded_ns_ = 0;
  uint64_t steps_ = 0;
  bool left_done_ = false;
  bool right_done_ = false;
  bool open_ = false;
};

}  // namespace join
}  // namespace aqp

#endif  // AQP_JOIN_SYMMETRIC_JOIN_H_
