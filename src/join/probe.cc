#include "join/probe.h"

#include <algorithm>

#include "text/similarity.h"

namespace aqp {
namespace join {

void ApproxProbeStats::MergeFrom(const ApproxProbeStats& other) {
  grams += other.grams;
  postings_scanned += other.postings_scanned;
  candidates += other.candidates;
  verified += other.verified;
  matches += other.matches;
}

size_t ProbeExactInto(const ExactIndex& index, std::string_view key,
                      uint64_t key_hash, Side probe_side,
                      storage::TupleId probe_id, std::vector<JoinMatch>* out) {
  const size_t out_begin = out->size();
  // The chain yields newest-first; reverse the appended region so
  // matches come out oldest-first (insertion order), as the bucket
  // enumeration always has.
  for (storage::TupleId stored = index.ChainHead(key, key_hash);
       stored != ExactIndex::kNone; stored = index.ChainPrev(stored)) {
    out->push_back(
        JoinMatch{probe_side, probe_id, stored, 1.0, MatchKind::kExact});
  }
  std::reverse(out->begin() + static_cast<ptrdiff_t>(out_begin), out->end());
  return out->size() - out_begin;
}

std::vector<JoinMatch> ProbeExact(const ExactIndex& index,
                                  std::string_view key, Side probe_side,
                                  storage::TupleId probe_id) {
  std::vector<JoinMatch> out;
  ProbeExactInto(index, key, probe_side, probe_id, &out);
  return out;
}

size_t ProbeApproximateInto(const QGramIndex& index,
                            const storage::TupleStore& store,
                            std::string_view probe_key,
                            const text::GramSet& probe_grams,
                            const JoinSpec& spec, Side probe_side,
                            storage::TupleId probe_id,
                            const ApproxProbeOptions& options,
                            ApproxProbeScratch* scratch,
                            ApproxProbeStats* stats,
                            std::vector<JoinMatch>* out) {
  const size_t out_begin = out->size();
  if (stats != nullptr) stats->grams += probe_grams.size();

  if (probe_grams.empty()) {
    // Degenerate probe (possible only without padding): it can only
    // match stored tuples that are also gram-less, by string equality.
    for (storage::TupleId stored : index.empty_gram_tuples()) {
      if (store.JoinKey(stored) == probe_key) {
        out->push_back(JoinMatch{probe_side, probe_id, stored, 1.0,
                                 MatchKind::kExact});
        if (stats != nullptr) ++stats->matches;
      }
    }
    return out->size() - out_begin;
  }

  const size_t g = probe_grams.size();
  const size_t k =
      text::MinOverlapForThreshold(spec.measure, g, spec.sim_threshold);

  // The probe's working memory: caller-provided scratch when available
  // (cleared, capacity kept — steady-state probes allocate nothing),
  // else probe-local.
  ApproxProbeScratch local;
  ApproxProbeScratch& work = scratch != nullptr ? *scratch : local;

  // Order the probe's grams; "reverse frequency order" = rarest first.
  auto& ordered = work.ordered;
  ordered.clear();
  ordered.reserve(g);
  for (text::GramKey key : probe_grams.grams()) {
    ordered.emplace_back(index.Frequency(key), key);
  }
  if (options.rare_grams_first) {
    std::sort(ordered.begin(), ordered.end());
  }

  // T(t): candidate tuple -> number of shared grams seen so far. For
  // every candidate in T the final count equals the exact overlap,
  // because each shared gram either inserted it or incremented it.
  auto& counters = work.counters;
  counters.clear();
  if (counters.bucket_count() == 0) counters.reserve(64);
  const size_t insert_phase_end =
      options.insert_phase_optimization && k <= g ? g - k + 1 : g;
  for (size_t i = 0; i < ordered.size(); ++i) {
    const std::vector<storage::TupleId>* postings =
        index.Postings(ordered[i].second);
    if (postings == nullptr) continue;
    if (stats != nullptr) stats->postings_scanned += postings->size();
    const bool may_insert = i < insert_phase_end;
    for (storage::TupleId candidate : *postings) {
      if (may_insert) {
        ++counters[candidate];
      } else {
        auto it = counters.find(candidate);
        if (it != counters.end()) ++it->second;
      }
    }
  }
  if (stats != nullptr) stats->candidates += counters.size();

  // Verification: the counter is the overlap; all four coefficients
  // are functions of (g, candidate gram-set size, overlap). The
  // candidate's gram-set size comes from the stored side's cache —
  // no strings are touched unless equality must be decided.
  for (const auto& [candidate, overlap] : counters) {
    if (overlap < k) continue;
    if (stats != nullptr) ++stats->verified;
    const size_t candidate_size = index.GramSetSize(candidate);
    const double sim = text::SetSimilarityFromOverlap(
        spec.measure, g, candidate_size, overlap);
    if (sim < spec.sim_threshold) continue;
    // Identical gram sets do not imply identical strings; the exact
    // flag (§3.3) requires bytewise equality.
    const bool equal =
        sim >= 1.0 && store.JoinKey(candidate) == probe_key;
    out->push_back(JoinMatch{probe_side, probe_id, candidate,
                             equal ? 1.0 : sim,
                             equal ? MatchKind::kExact
                                   : MatchKind::kApproximate});
    if (stats != nullptr) ++stats->matches;
  }
  // Deterministic output order (unordered_map iteration is not); only
  // the region this probe appended is reordered.
  std::sort(out->begin() + static_cast<ptrdiff_t>(out_begin), out->end(),
            [](const JoinMatch& a, const JoinMatch& b) {
              return a.stored_id < b.stored_id;
            });
  return out->size() - out_begin;
}

size_t ProbeApproximateInto(const QGramIndex& index,
                            const storage::TupleStore& store,
                            std::string_view probe_key, const JoinSpec& spec,
                            Side probe_side, storage::TupleId probe_id,
                            const ApproxProbeOptions& options,
                            ApproxProbeStats* stats,
                            std::vector<JoinMatch>* out) {
  const text::GramSet probe_grams = text::GramSet::Of(probe_key, spec.qgram);
  return ProbeApproximateInto(index, store, probe_key, probe_grams, spec,
                              probe_side, probe_id, options,
                              /*scratch=*/nullptr, stats, out);
}

std::vector<JoinMatch> ProbeApproximate(const QGramIndex& index,
                                        const storage::TupleStore& store,
                                        std::string_view probe_key,
                                        const JoinSpec& spec, Side probe_side,
                                        storage::TupleId probe_id,
                                        const ApproxProbeOptions& options,
                                        ApproxProbeStats* stats) {
  std::vector<JoinMatch> out;
  ProbeApproximateInto(index, store, probe_key, spec, probe_side, probe_id,
                       options, stats, &out);
  return out;
}

}  // namespace join
}  // namespace aqp
