#include "join/probe.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "join/filter.h"
#include "text/similarity.h"

namespace aqp {
namespace join {

namespace {

/// Sticky T(t) marker for a candidate the positional filter rejected:
/// the rejection proved the pair's total overlap can never reach the
/// required minimum, so the candidate must not be re-inserted (or
/// verified) by later grams. Real counters never get near this value —
/// they are bounded by the probe's gram count.
constexpr uint32_t kRejectedSentinel = std::numeric_limits<uint32_t>::max();

/// Appends one verified match, deciding exact vs approximate by
/// bytewise key equality — shared by both kernels so the emitted
/// records are constructed identically.
void EmitMatch(const storage::TupleStore& store, std::string_view probe_key,
               Side probe_side, storage::TupleId probe_id,
               storage::TupleId candidate, double sim,
               ApproxProbeStats* stats, std::vector<JoinMatch>* out) {
  // Identical gram sets do not imply identical strings; the exact
  // flag (§3.3) requires bytewise equality.
  const bool equal = sim >= 1.0 && store.JoinKey(candidate) == probe_key;
  out->push_back(JoinMatch{probe_side, probe_id, candidate,
                           equal ? 1.0 : sim,
                           equal ? MatchKind::kExact
                                 : MatchKind::kApproximate});
  if (stats != nullptr) ++stats->matches;
}

/// The filtered probe kernel: length / prefix / positional filtering
/// over payload postings, scanning probe grams ascending in the fixed
/// global gram order. Exact — see join/filter.h for the per-filter
/// soundness arguments.
void FilteredProbe(const QGramIndex& index, const storage::TupleStore& store,
                   std::string_view probe_key,
                   const text::GramSet& probe_grams, const JoinSpec& spec,
                   Side probe_side, storage::TupleId probe_id,
                   ApproxProbeScratch& work, ApproxProbeStats* stats,
                   std::vector<JoinMatch>* out) {
  const ApproxFilterOptions& filter = spec.filter;
  const size_t g = probe_grams.size();
  const size_t k =
      text::MinOverlapForThreshold(spec.measure, g, spec.sim_threshold);

  // Probe grams ascending in the global order (rarest first when the
  // order was sampled; plain key order otherwise). Both sides of the
  // prefix argument use this one order — the index posted under it.
  auto& ordered = work.ordered;
  ordered.clear();
  ordered.reserve(g);
  const text::GramOrder* order = filter.gram_order.get();
  for (text::GramKey key : probe_grams.grams()) {
    ordered.emplace_back(order != nullptr ? order->FrequencyOf(key) : 0,
                         key);
  }
  std::sort(ordered.begin(), ordered.end());

  GramCountBand band;
  if (filter.length) {
    band = LengthBandFor(spec.measure, g, spec.sim_threshold);
  } else {
    band.lo = 0;
    band.hi = std::numeric_limits<size_t>::max();
  }

  auto& counters = work.counters;
  counters.clear();
  if (counters.bucket_count() == 0) counters.reserve(64);

  // Only the first g-k+1 grams may insert (§2.2's rule — identical to
  // the probe-side prefix length); with prefix indexing the remaining
  // grams are not even scanned, since the counter is no longer the
  // verifier's overlap.
  const size_t insert_end =
      PrefixLengthFor(spec.measure, g, spec.sim_threshold);
  const size_t scan_end = filter.prefix ? insert_end : g;
  size_t rejected = 0;
  for (size_t i = 0; i < scan_end; ++i) {
    const std::vector<GramPosting>* postings =
        index.PayloadPostings(ordered[i].second);
    if (postings == nullptr) continue;
    if (stats != nullptr) stats->postings_scanned += postings->size();
    const bool may_insert = i < insert_end;
    for (const GramPosting& posting : *postings) {
      auto it = counters.find(posting.id);
      if (it != counters.end()) {
        if (it->second != kRejectedSentinel) ++it->second;
        continue;
      }
      if (!may_insert) continue;
      if (filter.length && !band.Contains(posting.gram_count)) {
        if (stats != nullptr) ++stats->length_skipped;
        continue;
      }
      if (filter.positional) {
        // First discovery of this candidate = the pair's smallest
        // shared gram in the global order (earlier shared grams would
        // have been scanned and posted — see filter.h), so the
        // remaining-suffix bound on the total overlap is valid here
        // and *stays* valid: rejection is permanent.
        const std::optional<size_t> required = MinPairOverlap(
            spec.measure, g, posting.gram_count, spec.sim_threshold);
        if (!required.has_value() ||
            !PositionalCompatible(g, i, posting.gram_count, posting.position,
                                  *required)) {
          counters.emplace(posting.id, kRejectedSentinel);
          ++rejected;
          if (stats != nullptr) ++stats->position_rejected;
          continue;
        }
      }
      counters.emplace(posting.id, 1u);
    }
  }
  if (stats != nullptr) stats->candidates += counters.size() - rejected;

  if (filter.prefix) {
    // Prefix postings undercount shared grams, so the counter cannot
    // drive verification; intersect the gram sets instead. The overlap
    // is the same integer the unfiltered counter would have reached,
    // fed through the same coefficient — bytewise identical output.
    for (const auto& [candidate, counter] : counters) {
      if (counter == kRejectedSentinel) continue;
      if (stats != nullptr) ++stats->verified;
      const text::GramSet& candidate_grams = index.GramSetOf(candidate);
      const size_t overlap = probe_grams.OverlapWith(candidate_grams);
      const double sim = text::SetSimilarityFromOverlap(
          spec.measure, g, candidate_grams.size(), overlap);
      if (sim < spec.sim_threshold) continue;
      EmitMatch(store, probe_key, probe_side, probe_id, candidate, sim,
                stats, out);
    }
  } else {
    // Every gram was scanned, so surviving counters hold the exact
    // overlap — verify exactly as the unfiltered kernel does.
    for (const auto& [candidate, overlap] : counters) {
      if (overlap == kRejectedSentinel) continue;
      if (overlap < k) continue;
      if (stats != nullptr) ++stats->verified;
      const double sim = text::SetSimilarityFromOverlap(
          spec.measure, g, index.GramSetSize(candidate), overlap);
      if (sim < spec.sim_threshold) continue;
      EmitMatch(store, probe_key, probe_side, probe_id, candidate, sim,
                stats, out);
    }
  }
}

}  // namespace

void ApproxProbeScratch::NoteProbeCompleted() {
  peak_candidates = std::max(peak_candidates, counters.size());
  if (++probes_since_shrink_check < kShrinkCheckInterval) return;
  const size_t steady = std::max(kMinCounterBuckets, peak_candidates);
  if (counters.bucket_count() > kShrinkFactor * steady) {
    // Rebuild at steady-state size; swapping releases the oversized
    // bucket table immediately.
    std::unordered_map<storage::TupleId, uint32_t> fresh;
    fresh.reserve(steady);
    counters.swap(fresh);
  }
  probes_since_shrink_check = 0;
  peak_candidates = 0;
}

void ApproxProbeStats::MergeFrom(const ApproxProbeStats& other) {
  grams += other.grams;
  postings_scanned += other.postings_scanned;
  candidates += other.candidates;
  verified += other.verified;
  matches += other.matches;
  length_skipped += other.length_skipped;
  position_rejected += other.position_rejected;
}

size_t ProbeExactInto(const ExactIndex& index, std::string_view key,
                      uint64_t key_hash, Side probe_side,
                      storage::TupleId probe_id, std::vector<JoinMatch>* out) {
  const size_t out_begin = out->size();
  // The chain yields newest-first; reverse the appended region so
  // matches come out oldest-first (insertion order), as the bucket
  // enumeration always has.
  for (storage::TupleId stored = index.ChainHead(key, key_hash);
       stored != ExactIndex::kNone; stored = index.ChainPrev(stored)) {
    out->push_back(
        JoinMatch{probe_side, probe_id, stored, 1.0, MatchKind::kExact});
  }
  std::reverse(out->begin() + static_cast<ptrdiff_t>(out_begin), out->end());
  return out->size() - out_begin;
}

std::vector<JoinMatch> ProbeExact(const ExactIndex& index,
                                  std::string_view key, Side probe_side,
                                  storage::TupleId probe_id) {
  std::vector<JoinMatch> out;
  ProbeExactInto(index, key, probe_side, probe_id, &out);
  return out;
}

size_t ProbeApproximateInto(const QGramIndex& index,
                            const storage::TupleStore& store,
                            std::string_view probe_key,
                            const text::GramSet& probe_grams,
                            const JoinSpec& spec, Side probe_side,
                            storage::TupleId probe_id,
                            const ApproxProbeOptions& options,
                            ApproxProbeScratch* scratch,
                            ApproxProbeStats* stats,
                            std::vector<JoinMatch>* out) {
  assert(index.payload_mode() == spec.filter.any() &&
         "index posting layout must match the spec's filter config");
  const size_t out_begin = out->size();
  if (stats != nullptr) stats->grams += probe_grams.size();

  if (probe_grams.empty()) {
    // Degenerate probe (possible only without padding): it can only
    // match stored tuples that are also gram-less, by string equality.
    for (storage::TupleId stored : index.empty_gram_tuples()) {
      if (store.JoinKey(stored) == probe_key) {
        out->push_back(JoinMatch{probe_side, probe_id, stored, 1.0,
                                 MatchKind::kExact});
        if (stats != nullptr) ++stats->matches;
      }
    }
    return out->size() - out_begin;
  }

  // The probe's working memory: caller-provided scratch when available
  // (cleared, capacity kept — steady-state probes allocate nothing),
  // else probe-local.
  ApproxProbeScratch local;
  ApproxProbeScratch& work = scratch != nullptr ? *scratch : local;

  if (spec.filter.any()) {
    FilteredProbe(index, store, probe_key, probe_grams, spec, probe_side,
                  probe_id, work, stats, out);
  } else {
    const size_t g = probe_grams.size();
    const size_t k =
        text::MinOverlapForThreshold(spec.measure, g, spec.sim_threshold);

    // Order the probe's grams; "reverse frequency order" = rarest
    // first.
    auto& ordered = work.ordered;
    ordered.clear();
    ordered.reserve(g);
    for (text::GramKey key : probe_grams.grams()) {
      ordered.emplace_back(index.Frequency(key), key);
    }
    if (options.rare_grams_first) {
      std::sort(ordered.begin(), ordered.end());
    }

    // T(t): candidate tuple -> number of shared grams seen so far. For
    // every candidate in T the final count equals the exact overlap,
    // because each shared gram either inserted it or incremented it.
    auto& counters = work.counters;
    counters.clear();
    if (counters.bucket_count() == 0) counters.reserve(64);
    const size_t insert_phase_end =
        options.insert_phase_optimization && k <= g ? g - k + 1 : g;
    for (size_t i = 0; i < ordered.size(); ++i) {
      const std::vector<storage::TupleId>* postings =
          index.Postings(ordered[i].second);
      if (postings == nullptr) continue;
      if (stats != nullptr) stats->postings_scanned += postings->size();
      const bool may_insert = i < insert_phase_end;
      for (storage::TupleId candidate : *postings) {
        if (may_insert) {
          ++counters[candidate];
        } else {
          auto it = counters.find(candidate);
          if (it != counters.end()) ++it->second;
        }
      }
    }
    if (stats != nullptr) stats->candidates += counters.size();

    // Verification: the counter is the overlap; all four coefficients
    // are functions of (g, candidate gram-set size, overlap). The
    // candidate's gram-set size comes from the stored side's cache —
    // no strings are touched unless equality must be decided.
    for (const auto& [candidate, overlap] : counters) {
      if (overlap < k) continue;
      if (stats != nullptr) ++stats->verified;
      const size_t candidate_size = index.GramSetSize(candidate);
      const double sim = text::SetSimilarityFromOverlap(
          spec.measure, g, candidate_size, overlap);
      if (sim < spec.sim_threshold) continue;
      EmitMatch(store, probe_key, probe_side, probe_id, candidate, sim,
                stats, out);
    }
  }
  // Deterministic output order (unordered_map iteration is not); only
  // the region this probe appended is reordered.
  std::sort(out->begin() + static_cast<ptrdiff_t>(out_begin), out->end(),
            [](const JoinMatch& a, const JoinMatch& b) {
              return a.stored_id < b.stored_id;
            });
  work.NoteProbeCompleted();
  return out->size() - out_begin;
}

size_t ProbeApproximateInto(const QGramIndex& index,
                            const storage::TupleStore& store,
                            std::string_view probe_key, const JoinSpec& spec,
                            Side probe_side, storage::TupleId probe_id,
                            const ApproxProbeOptions& options,
                            ApproxProbeStats* stats,
                            std::vector<JoinMatch>* out) {
  const text::GramSet probe_grams = text::GramSet::Of(probe_key, spec.qgram);
  return ProbeApproximateInto(index, store, probe_key, probe_grams, spec,
                              probe_side, probe_id, options,
                              /*scratch=*/nullptr, stats, out);
}

std::vector<JoinMatch> ProbeApproximate(const QGramIndex& index,
                                        const storage::TupleStore& store,
                                        std::string_view probe_key,
                                        const JoinSpec& spec, Side probe_side,
                                        storage::TupleId probe_id,
                                        const ApproxProbeOptions& options,
                                        ApproxProbeStats* stats) {
  std::vector<JoinMatch> out;
  ProbeApproximateInto(index, store, probe_key, spec, probe_side, probe_id,
                       options, stats, &out);
  return out;
}

}  // namespace join
}  // namespace aqp
