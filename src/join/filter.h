#ifndef AQP_JOIN_FILTER_H_
#define AQP_JOIN_FILTER_H_

#include <cstddef>
#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "text/gram_order.h"
#include "text/similarity.h"

namespace aqp {
namespace join {

/// \brief The SSJoin-lineage filter stack in front of SSHJoin's
/// counted-candidate walk.
///
/// Every filter is *exact*: a pruned pair provably cannot reach the
/// similarity threshold, so the match set (and hence the adaptation
/// trace) is byte-identical to the unfiltered join. The filters only
/// change how much work candidate generation does:
///
///  - `length`: a stored tuple whose gram count is outside the
///    feasible band for the probe's gram count is skipped before it is
///    ever inserted into T(t);
///  - `prefix`: the index posts each stored tuple only under its
///    g-k+1 prefix grams in a fixed global gram order, shrinking
///    posting lists and index memory (candidates are then verified by
///    an exact gram-set intersection, since counters no longer see
///    every shared gram);
///  - `positional`: prefix postings carry the gram's position in the
///    stored tuple's ordered gram list; a candidate whose position gap
///    already caps the achievable overlap below the pair's required
///    overlap is rejected at discovery time.
struct ApproxFilterOptions {
  bool length = false;
  bool prefix = false;
  bool positional = false;

  /// The fixed global gram order shared by index and probes (prefix/
  /// positional filtering). Null = plain gram-key order, which is
  /// always sound; sampling real input into a text::GramOrder makes
  /// the prefixes rare and the posting lists short.
  std::shared_ptr<const text::GramOrder> gram_order;

  /// True iff any filter is enabled (selects the filtered probe kernel
  /// and the payload posting layout).
  bool any() const { return length || prefix || positional; }

  /// Validates the combination.
  Status Validate() const;

  /// "none", "length", "length+prefix+positional", ... (bench labels).
  std::string Label() const;
};

/// \brief Inclusive stored-side gram-count band [lo, hi] that can
/// possibly reach the threshold against a probe with `probe_size`
/// grams. `hi` is SIZE_MAX when unbounded (the overlap coefficient).
struct GramCountBand {
  size_t lo = 0;
  size_t hi = 0;

  bool Contains(size_t size) const { return size >= lo && size <= hi; }
};

/// \brief True iff a stored tuple with `stored_size` grams can reach
/// `threshold` against a probe with `probe_size` grams in the best
/// case (overlap = min of the sizes).
///
/// Deliberately evaluated through the same SetSimilarityFromOverlap
/// the verifier uses, so the filter is exactly as permissive as
/// verification — no hand-derived closed form can drift from the
/// verifier's floating-point rounding.
bool LengthCompatible(text::SimilarityMeasure measure, size_t probe_size,
                      size_t stored_size, double threshold);

/// The length filter band for one probe, by binary search over
/// LengthCompatible (best-case similarity is unimodal in the stored
/// size: nondecreasing up to probe_size, nonincreasing after).
GramCountBand LengthBandFor(text::SimilarityMeasure measure,
                            size_t probe_size, double threshold);

/// \brief Number of prefix grams g - k + 1 of a gram set with
/// `set_size` grams, where k = MinOverlapForThreshold(measure,
/// set_size, threshold).
///
/// Any pair reaching the threshold overlaps in at least max of the two
/// sides' k values, so the two prefixes must intersect (the standard
/// prefix-overlap argument) — scanning or posting only prefix grams
/// loses no match. Returns 0 for an empty set.
size_t PrefixLengthFor(text::SimilarityMeasure measure, size_t set_size,
                       double threshold);

/// \brief Smallest overlap o with sim(probe_size, stored_size, o) >=
/// threshold, or nullopt when even full overlap falls short. Binary
/// search over SetSimilarityFromOverlap (monotone in o), again so the
/// bound can never disagree with the verifier.
std::optional<size_t> MinPairOverlap(text::SimilarityMeasure measure,
                                     size_t probe_size, size_t stored_size,
                                     double threshold);

/// \brief True iff a candidate discovered at probe-gram position
/// `probe_pos` and stored-gram position `stored_pos` (0-based, both in
/// the common global order) can still reach `required_overlap`.
///
/// At the *first* discovery of a candidate no earlier shared gram
/// exists (the probe scans ascending in the order), so every other
/// shared gram lies strictly after both positions:
/// overlap <= 1 + min(probe_size - probe_pos - 1,
///                    stored_size - stored_pos - 1).
bool PositionalCompatible(size_t probe_size, size_t probe_pos,
                          size_t stored_size, size_t stored_pos,
                          size_t required_overlap);

}  // namespace join
}  // namespace aqp

#endif  // AQP_JOIN_FILTER_H_
