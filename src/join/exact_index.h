#ifndef AQP_JOIN_EXACT_INDEX_H_
#define AQP_JOIN_EXACT_INDEX_H_

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "storage/tuple_store.h"

namespace aqp {
namespace join {

/// \brief SHJoin's per-operand hash table: join-attribute value →
/// tuples carrying it (Fig. 3, left).
///
/// Two structural choices keep the hot insert/probe path allocation-
/// free and cache-friendly:
///
/// - Buckets are intrusive chains, not per-key vectors: the table
///   stores only the most recent tuple id per key, and `prev_[id]`
///   links each indexed tuple to the previous one with the same key.
///   Equi-join buckets are tiny, so per-key vectors spent an allocation
///   on nearly every insert.
/// - The table itself is flat open addressing over (cached hash, head
///   id) slots, with key bytes *referenced from the TupleStore* rather
///   than copied: the store keeps every tuple anyway (§2.3), so the
///   chain head's join attribute IS the key. No node allocations, no
///   duplicate key strings, and rehashing never re-reads a string.
///
/// The index lags its TupleStore deliberately: the adaptive processor
/// only keeps the *live* structure current (§2.3, "the other lags
/// behind"), so insertion is expressed as catch-up to the store's
/// current size. The store bound by the first CatchUpWith() call must
/// be the one all later calls pass (checked by assert). `watermark()`
/// is the number of store tuples indexed so far.
class ExactIndex {
 public:
  /// Chain terminator / empty-slot marker.
  static constexpr storage::TupleId kNone =
      std::numeric_limits<storage::TupleId>::max();

  /// Indexes store tuples [watermark, store.size()); returns how many
  /// tuples were inserted (the switch-cost driver). Keys and their
  /// hashes are read from the store's interned-key records — catch-up
  /// never re-hashes or re-reads a std::string.
  size_t CatchUpWith(const storage::TupleStore& store);

  /// Most recently indexed tuple whose join attribute equals `key`, or
  /// kNone. Walk the full bucket with ChainPrev():
  ///
  /// \code
  ///   for (TupleId id = index.ChainHead(key); id != ExactIndex::kNone;
  ///        id = index.ChainPrev(id)) { ... }  // descending id order
  /// \endcode
  storage::TupleId ChainHead(std::string_view key) const {
    return ChainHead(key, Fnv1a64(key));
  }

  /// Hash-carrying overload for probes whose key hash is already
  /// cached (the probing tuple's own store computed it at Add time).
  storage::TupleId ChainHead(std::string_view key, uint64_t hash) const;

  /// Previously indexed tuple with the same key as `id` (which must be
  /// indexed, i.e. id < watermark()), or kNone.
  storage::TupleId ChainPrev(storage::TupleId id) const { return prev_[id]; }

  /// All indexed tuples whose join attribute equals `key`, oldest
  /// first. Allocates; tests and diagnostics only — the hot probe path
  /// walks the chain in place.
  std::vector<storage::TupleId> Lookup(std::string_view key) const;

  /// Number of store tuples indexed so far.
  size_t watermark() const { return watermark_; }

  /// Number of distinct join-attribute values.
  size_t distinct_keys() const { return keys_; }

  /// Average bucket length B_ex (Table 1's cost parameter).
  double AverageBucketLength() const;

  /// Rough heap footprint in bytes (§2.3: n · p plus the slot array;
  /// key bytes live in the TupleStore and are not double-counted).
  size_t ApproximateMemoryUsage() const;

 private:
  struct Slot {
    uint64_t hash = 0;
    storage::TupleId head = kNone;
  };

  /// Grows the slot array to at least `min_slots` (power of two) and
  /// re-places every occupied slot using its cached hash.
  void Rehash(size_t min_slots);

  /// Slot index holding `key` (by hash then store-backed byte compare),
  /// or the empty slot where it would be inserted.
  size_t FindSlot(uint64_t hash, std::string_view key) const;

  std::vector<Slot> slots_;
  std::vector<storage::TupleId> prev_;
  const storage::TupleStore* store_ = nullptr;
  size_t keys_ = 0;
  size_t watermark_ = 0;
};

}  // namespace join
}  // namespace aqp

#endif  // AQP_JOIN_EXACT_INDEX_H_
