#ifndef AQP_JOIN_EXACT_INDEX_H_
#define AQP_JOIN_EXACT_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "storage/tuple_store.h"

namespace aqp {
namespace join {

/// \brief SHJoin's per-operand hash table: join-attribute value →
/// tuples carrying it (Fig. 3, left).
///
/// The index lags its TupleStore deliberately: the adaptive processor
/// only keeps the *live* structure current (§2.3, "the other lags
/// behind"), so insertion is expressed as catch-up to the store's
/// current size. `watermark()` is the number of store tuples indexed so
/// far.
class ExactIndex {
 public:
  /// Indexes store tuples [watermark, store.size()); returns how many
  /// tuples were inserted (the switch-cost driver).
  size_t CatchUpWith(const storage::TupleStore& store);

  /// Tuples whose join attribute equals `key`, or nullptr if none.
  const std::vector<storage::TupleId>* Probe(const std::string& key) const;

  /// Number of store tuples indexed so far.
  size_t watermark() const { return watermark_; }

  /// Number of distinct join-attribute values.
  size_t distinct_keys() const { return buckets_.size(); }

  /// Average bucket length B_ex (Table 1's cost parameter).
  double AverageBucketLength() const;

  /// Rough heap footprint in bytes (§2.3: n · p plus key storage).
  size_t ApproximateMemoryUsage() const;

 private:
  std::unordered_map<std::string, std::vector<storage::TupleId>> buckets_;
  size_t watermark_ = 0;
};

}  // namespace join
}  // namespace aqp

#endif  // AQP_JOIN_EXACT_INDEX_H_
