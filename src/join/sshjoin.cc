#include "join/sshjoin.h"

// SSHJoin is fully defined in the header; this translation unit anchors
// the type for the library target.
