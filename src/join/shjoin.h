#ifndef AQP_JOIN_SHJOIN_H_
#define AQP_JOIN_SHJOIN_H_

#include "join/symmetric_join.h"

namespace aqp {
namespace join {

/// \brief SHJoin — the exact pipelined symmetric hash join (Wilschut &
/// Apers), §2.1.
///
/// Both inputs are matched by join-attribute equality through the two
/// hash tables built in parallel while reading; results stream out
/// without waiting for input exhaustion. This is the all-exact baseline
/// of the paper's evaluation (result size `r`, cost `c`).
class SHJoin : public SymmetricJoin {
 public:
  SHJoin(exec::Operator* left, exec::Operator* right,
         SymmetricJoinOptions options)
      : SymmetricJoin(left, right, std::move(options), ProbeMode::kExact,
                      ProbeMode::kExact, "SHJoin") {}
};

}  // namespace join
}  // namespace aqp

#endif  // AQP_JOIN_SHJOIN_H_
