#ifndef AQP_JOIN_MATCH_BATCH_H_
#define AQP_JOIN_MATCH_BATCH_H_

#include <cstddef>
#include <vector>

#include "join/join_types.h"
#include "storage/tuple_batch.h"

namespace aqp {
namespace join {

/// A join output reference: which side probed, and the ids of the
/// pair's tuples in their stores (JoinMatch carries exactly that plus
/// the similarity/kind payload the sink may want to materialize).
using MatchRef = JoinMatch;

/// \brief A capacity-bounded batch of match references — the unit of
/// exchange of the late-materialized join output protocol.
///
/// The symmetric join's hot path emits MatchRefs instead of
/// concatenated Tuples; payload rows are only constructed when a
/// consumer actually needs them (SymmetricJoin::MaterializeInto at the
/// sink, or the row-protocol compatibility adapters). Counting drains
/// never materialize at all.
///
/// Like TupleBatch, capacity is a soft contract: Append past capacity
/// degrades to growth instead of corruption.
class MatchBatch {
 public:
  explicit MatchBatch(size_t capacity = storage::TupleBatch::kDefaultCapacity) {
    Reset(capacity);
  }

  /// Clears the refs and (re)reserves capacity. A capacity of 0 keeps
  /// the previous one.
  void Reset(size_t capacity = 0) {
    refs_.clear();
    if (capacity > 0) capacity_ = capacity;
    refs_.reserve(capacity_);
  }

  size_t capacity() const { return capacity_; }
  size_t size() const { return refs_.size(); }
  bool empty() const { return refs_.empty(); }
  bool full() const { return refs_.size() >= capacity_; }

  void Append(const MatchRef& ref) { refs_.push_back(ref); }

  const MatchRef& operator[](size_t i) const { return refs_[i]; }

  /// Drops all refs, keeping capacity.
  void Clear() { refs_.clear(); }

  const std::vector<MatchRef>& refs() const { return refs_; }

  std::vector<MatchRef>::const_iterator begin() const {
    return refs_.begin();
  }
  std::vector<MatchRef>::const_iterator end() const { return refs_.end(); }

 private:
  std::vector<MatchRef> refs_;
  size_t capacity_ = storage::TupleBatch::kDefaultCapacity;
};

}  // namespace join
}  // namespace aqp

#endif  // AQP_JOIN_MATCH_BATCH_H_
