#include "join/join_types.h"

#include "common/macros.h"

namespace aqp {
namespace join {

Status JoinSpec::Validate() const {
  AQP_RETURN_IF_ERROR(qgram.Validate());
  AQP_RETURN_IF_ERROR(filter.Validate());
  if (sim_threshold <= 0.0 || sim_threshold > 1.0) {
    // 0 is rejected deliberately: a gram-index join can only surface
    // pairs sharing at least one gram, so "similarity >= 0" (a cross
    // join) is not expressible.
    return Status::InvalidArgument("sim_threshold must be in (0, 1], got " +
                                   std::to_string(sim_threshold));
  }
  return Status::OK();
}

Status JoinSpec::ValidateAgainstSchemas(const storage::Schema& left,
                                        const storage::Schema& right) const {
  AQP_RETURN_IF_ERROR(Validate());
  auto check = [](const storage::Schema& schema, size_t column,
                  const char* side_name) -> Status {
    if (column >= schema.num_fields()) {
      return Status::InvalidArgument(
          std::string(side_name) + " join column " + std::to_string(column) +
          " out of range for schema " + schema.ToString());
    }
    if (schema.field(column).type != storage::ValueType::kString) {
      return Status::InvalidArgument(
          std::string(side_name) + " join column '" +
          schema.field(column).name + "' must be a string column");
    }
    return Status::OK();
  };
  AQP_RETURN_IF_ERROR(check(left, left_column, "left"));
  AQP_RETURN_IF_ERROR(check(right, right_column, "right"));
  return Status::OK();
}

const char* MatchKindName(MatchKind kind) {
  return kind == MatchKind::kExact ? "exact" : "approximate";
}

storage::Schema JoinOutputSchema(const storage::Schema& left,
                                 const storage::Schema& right,
                                 bool with_similarity) {
  storage::Schema out = left.ConcatWith(right, "_r");
  if (with_similarity) {
    out = out.WithField({"sim", storage::ValueType::kDouble});
  }
  return out;
}

}  // namespace join
}  // namespace aqp
