#include "join/symmetric_join.h"

#include <algorithm>

#include "common/macros.h"
#include "common/timer.h"

namespace aqp {
namespace join {

SymmetricJoin::SymmetricJoin(exec::Operator* left, exec::Operator* right,
                             SymmetricJoinOptions options,
                             ProbeMode initial_left_mode,
                             ProbeMode initial_right_mode, std::string name)
    : left_(left),
      right_(right),
      options_(std::move(options)),
      name_(std::move(name)),
      core_(options_.spec, options_.approx),
      scheduler_(options_.interleave, options_.left_size_hint,
                 options_.right_size_hint),
      output_schema_() {
  if (options_.batch_size == 0) options_.batch_size = 1;
  core_.SetProbeMode(exec::Side::kLeft, initial_left_mode);
  core_.SetProbeMode(exec::Side::kRight, initial_right_mode);
}

Status SymmetricJoin::Open() {
  if (open_) return Status::FailedPrecondition(name_ + " already open");
  AQP_RETURN_IF_ERROR(options_.spec.ValidateAgainstSchemas(
      left_->output_schema(), right_->output_schema()));
  AQP_RETURN_IF_ERROR(left_->Open());
  exec::OpenGuard left_guard(left_);
  AQP_RETURN_IF_ERROR(right_->Open());
  exec::OpenGuard right_guard(right_);
  output_schema_ = JoinOutputSchema(left_->output_schema(),
                                    right_->output_schema(),
                                    options_.emit_similarity);
  left_width_ = left_->output_schema().num_fields();
  left_guard.Dismiss();
  right_guard.Dismiss();
  open_ = true;
  left_done_ = false;
  right_done_ = false;
  core_.ReserveStores(options_.left_size_hint, options_.right_size_hint);
  pending_.clear();
  for (size_t i = 0; i < 2; ++i) {
    input_batch_[i].Reset(nullptr, options_.batch_size);
    input_pos_[i] = 0;
  }
  return Status::OK();
}

storage::Tuple SymmetricJoin::MaterializeRow(const MatchRef& ref) const {
  const storage::TupleStore& l = core_.store(exec::Side::kLeft);
  const storage::TupleStore& r = core_.store(exec::Side::kRight);
  std::vector<storage::Value> values;
  values.reserve(l.num_columns() + r.num_columns() +
                 (options_.emit_similarity ? 1 : 0));
  l.AppendValuesTo(ref.left_id(), &values);
  r.AppendValuesTo(ref.right_id(), &values);
  if (options_.emit_similarity) {
    values.emplace_back(ref.similarity);
  }
  return storage::Tuple(std::move(values));
}

void SymmetricJoin::MaterializeInto(const MatchBatch& matches,
                                    storage::TupleBatch* out) const {
  for (const MatchRef& ref : matches) {
    out->Append(MaterializeRow(ref));
  }
}

void SymmetricJoin::MaterializeRefInto(const MatchRef& ref,
                                       storage::ColumnBatch* out) const {
  core_.store(exec::Side::kLeft).AppendCellsTo(ref.left_id(), out, 0);
  core_.store(exec::Side::kRight)
      .AppendCellsTo(ref.right_id(), out, left_width_);
  if (options_.emit_similarity) {
    out->AppendDouble(output_schema_.num_fields() - 1, ref.similarity);
  }
  out->CommitRow();
}

void SymmetricJoin::MaterializeInto(const MatchBatch& matches,
                                    storage::ColumnBatch* out) const {
  for (const MatchRef& ref : matches) {
    MaterializeRefInto(ref, out);
  }
}

Status SymmetricJoin::RefillInput(exec::Side side) {
  const size_t i = static_cast<size_t>(side);
  exec::Operator* input = side == exec::Side::kLeft ? left_ : right_;
  input_batch_[i].Reset(&input->output_schema(), options_.batch_size);
  input_pos_[i] = 0;
  // Child time is excluded from the step-batch clock (see
  // RunStepBatch): the §4.3 weight calibration prices join work, not
  // the children.
  Timer timer;
  Status status = input->NextColumnBatch(&input_batch_[i]);
  refill_excluded_ns_ += timer.ElapsedNanos();
  if (status.ok() && !input_batch_[i].empty()) {
    // One vectorized hash pass per refill: every step reads its key
    // hash from the lane, and the store caches it without re-hashing.
    // Deliberately *outside* the excluded window — key hashing is join
    // work (the row engine hashed inside the timed step at store Add),
    // so it must stay priced into the step batch's elapsed_ns.
    input_batch_[i].ComputeKeyHashes(options_.spec.column(side));
  }
  return status;
}

Result<bool> SymmetricJoin::PullNextInput(exec::Side* side, size_t* row) {
  while (true) {
    auto next_side = scheduler_.NextSide(left_done_, right_done_);
    if (!next_side.has_value()) return false;
    const size_t i = static_cast<size_t>(*next_side);
    if (input_pos_[i] >= input_batch_[i].size()) {
      AQP_RETURN_IF_ERROR(RefillInput(*next_side));
      if (input_batch_[i].empty()) {
        // The child's empty batch is end-of-stream, discovered at the
        // same read index as under tuple-at-a-time execution (the
        // buffer drains exactly when the old path would have read the
        // tuple after the last).
        if (*next_side == exec::Side::kLeft) {
          left_done_ = true;
        } else {
          right_done_ = true;
        }
        continue;
      }
    }
    *side = *next_side;
    *row = input_pos_[i]++;
    return true;
  }
}

Result<bool> SymmetricJoin::StepOnce(MatchBatch* out) {
  exec::Side side = exec::Side::kLeft;
  size_t row = 0;
  auto pulled = PullNextInput(&side, &row);
  if (!pulled.ok()) return pulled.status();
  if (!*pulled) return false;
  scheduler_.OnRead(side);
  match_scratch_.clear();
  core_.ProcessRowInto(side, input_batch_[static_cast<size_t>(side)], row,
                       &match_scratch_);
  ++steps_;
  StepObservables obs;
  // §3.3 attribution snapshots the matched-exactly flags now; by the
  // end of the batch later steps will have mutated them.
  core_.AttributeApproxMatches(side, match_scratch_, obs.approx_attributed);
  batch_stats_.steps.push_back(obs);
  for (const JoinMatch& m : match_scratch_) {
    if (out != nullptr && !out->full()) {
      out->Append(m);
    } else {
      pending_.push_back(m);
    }
  }
  return true;
}

Status SymmetricJoin::RunStepBatch(MatchBatch* out, uint64_t max_steps,
                                   bool* exhausted) {
  batch_stats_.Clear();
  uint64_t executed = 0;
  // One clock pair per batch, not per step: child refill time (tracked
  // by RefillInput) is subtracted so elapsed_ns remains the batch's
  // core join work.
  refill_excluded_ns_ = 0;
  Timer timer;
  while (executed < max_steps) {
    if (out != nullptr && out->full()) break;
    auto stepped = StepOnce(out);
    if (!stepped.ok()) return stepped.status();
    if (!*stepped) {
      *exhausted = true;
      break;
    }
    ++executed;
  }
  if (executed > 0) {
    batch_stats_.elapsed_ns = timer.ElapsedNanos() - refill_excluded_ns_;
    if (batch_stats_.elapsed_ns < 0) batch_stats_.elapsed_ns = 0;
    OnBatchCompleted(batch_stats_);
  }
  return Status::OK();
}

Status SymmetricJoin::NextMatchBatch(MatchBatch* out) {
  if (!open_) return Status::FailedPrecondition(name_ + " not open");
  out->Clear();
  // Refs spilled by a previous over-producing step go out first.
  while (!pending_.empty() && !out->full()) {
    out->Append(pending_.front());
    pending_.pop_front();
  }
  bool exhausted = false;
  while (!out->full() && !exhausted) {
    // Batch boundary: quiescent by construction.
    AQP_RETURN_IF_ERROR(OnQuiescentPoint());
    // Round the batch edge to the subclass's next control point, so
    // the control loop activates at the same step counts as under
    // tuple-at-a-time execution regardless of batch_size.
    const uint64_t bound = StepsUntilControlPoint();
    const uint64_t max_steps =
        std::min<uint64_t>(bound, options_.batch_size);
    AQP_RETURN_IF_ERROR(
        RunStepBatch(out, std::max<uint64_t>(1, max_steps), &exhausted));
  }
  return Status::OK();
}

Result<size_t> SymmetricJoin::AdvanceUnmaterialized(size_t max_rows) {
  adapter_batch_.Reset(max_rows == 0 ? 1 : max_rows);
  AQP_RETURN_IF_ERROR(NextMatchBatch(&adapter_batch_));
  return adapter_batch_.size();
}

Result<std::optional<storage::Tuple>> SymmetricJoin::Next() {
  if (!open_) return Status::FailedPrecondition(name_ + " not open");
  while (pending_.empty()) {
    // Quiescent: the previous tuple's matches are fully enumerated.
    AQP_RETURN_IF_ERROR(OnQuiescentPoint());
    bool exhausted = false;
    // One-step batches keep the tuple-at-a-time contract (a quiescent
    // point before every step) on the shared batched machinery.
    AQP_RETURN_IF_ERROR(RunStepBatch(nullptr, 1, &exhausted));
    if (exhausted) return std::optional<storage::Tuple>();
  }
  // Materialize at delivery: rows never exist before a consumer asks.
  storage::Tuple out = MaterializeRow(pending_.front());
  pending_.pop_front();
  return std::optional<storage::Tuple>(std::move(out));
}

template <typename Batch>
Status SymmetricJoin::FillBatch(Batch* out) {
  if (!open_) return Status::FailedPrecondition(name_ + " not open");
  out->Reset(&output_schema_);
  // Refs spilled by a previous over-producing step go out first. They
  // are erased only after the whole call succeeds: on error the
  // partial batch is discarded (Operator contract) and the refs stay
  // deliverable, exactly as a failing Next() drive would leave them.
  size_t drained = 0;
  while (drained < pending_.size() && !out->full()) {
    EmitRef(pending_[drained++], out);
  }
  bool exhausted = false;
  while (!out->full() && !exhausted) {
    // Batch boundary: quiescent by construction.
    Status step_status = OnQuiescentPoint();
    if (step_status.ok()) {
      // Round the batch edge to the subclass's next control point, so
      // the control loop activates at the same step counts as under
      // tuple-at-a-time execution regardless of batch_size.
      const uint64_t bound = StepsUntilControlPoint();
      const uint64_t max_steps =
          std::min<uint64_t>(bound, options_.batch_size);
      adapter_batch_.Reset(out->capacity() - out->size());
      step_status = RunStepBatch(&adapter_batch_,
                                 std::max<uint64_t>(1, max_steps),
                                 &exhausted);
    }
    if (!step_status.ok()) {
      out->Clear();
      return step_status;
    }
    MaterializeInto(adapter_batch_, out);
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<ptrdiff_t>(drained));
  return Status::OK();
}

// Native columnar delivery: output columns are written straight from
// the stores — no row payload is ever constructed.
Status SymmetricJoin::NextColumnBatch(storage::ColumnBatch* out) {
  return FillBatch(out);
}

// Row-protocol compatibility adapter: rows are built exactly once, at
// the sink boundary.
Status SymmetricJoin::NextBatch(storage::TupleBatch* out) {
  return FillBatch(out);
}

Status SymmetricJoin::Close() {
  if (!open_) return Status::FailedPrecondition(name_ + " not open");
  open_ = false;
  AQP_RETURN_IF_ERROR(left_->Close());
  AQP_RETURN_IF_ERROR(right_->Close());
  return Status::OK();
}

}  // namespace join
}  // namespace aqp
