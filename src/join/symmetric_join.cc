#include "join/symmetric_join.h"

#include "common/macros.h"
#include "common/timer.h"

namespace aqp {
namespace join {

SymmetricJoin::SymmetricJoin(exec::Operator* left, exec::Operator* right,
                             SymmetricJoinOptions options,
                             ProbeMode initial_left_mode,
                             ProbeMode initial_right_mode, std::string name)
    : left_(left),
      right_(right),
      options_(std::move(options)),
      name_(std::move(name)),
      core_(options_.spec, options_.approx),
      scheduler_(options_.interleave, options_.left_size_hint,
                 options_.right_size_hint),
      output_schema_() {
  core_.SetProbeMode(exec::Side::kLeft, initial_left_mode);
  core_.SetProbeMode(exec::Side::kRight, initial_right_mode);
}

Status SymmetricJoin::Open() {
  if (open_) return Status::FailedPrecondition(name_ + " already open");
  AQP_RETURN_IF_ERROR(options_.spec.ValidateAgainstSchemas(
      left_->output_schema(), right_->output_schema()));
  AQP_RETURN_IF_ERROR(left_->Open());
  AQP_RETURN_IF_ERROR(right_->Open());
  output_schema_ = JoinOutputSchema(left_->output_schema(),
                                    right_->output_schema(),
                                    options_.emit_similarity);
  open_ = true;
  left_done_ = false;
  right_done_ = false;
  return Status::OK();
}

storage::Tuple SymmetricJoin::BuildOutput(const JoinMatch& match) const {
  const storage::Tuple& l = core_.store(exec::Side::kLeft).Get(match.left_id());
  const storage::Tuple& r =
      core_.store(exec::Side::kRight).Get(match.right_id());
  storage::Tuple out = storage::Tuple::Concat(l, r);
  if (options_.emit_similarity) {
    out.Append(storage::Value(match.similarity));
  }
  return out;
}

Result<std::optional<storage::Tuple>> SymmetricJoin::Next() {
  if (!open_) return Status::FailedPrecondition(name_ + " not open");
  while (pending_.empty()) {
    // Quiescent: the previous tuple's matches are fully enumerated.
    AQP_RETURN_IF_ERROR(OnQuiescentPoint());
    auto side = scheduler_.NextSide(left_done_, right_done_);
    if (!side.has_value()) return std::optional<storage::Tuple>();
    exec::Operator* input =
        (*side == exec::Side::kLeft) ? left_ : right_;
    auto next = input->Next();
    if (!next.ok()) return next.status();
    if (!next->has_value()) {
      if (*side == exec::Side::kLeft) {
        left_done_ = true;
      } else {
        right_done_ = true;
      }
      continue;
    }
    scheduler_.OnRead(*side);
    Timer timer;
    std::vector<JoinMatch> matches =
        core_.ProcessTuple(*side, std::move(**next));
    const int64_t elapsed_ns = timer.ElapsedNanos();
    ++steps_;
    for (const JoinMatch& m : matches) {
      pending_.push_back(BuildOutput(m));
    }
    OnStepCompleted(*side, matches, elapsed_ns);
  }
  storage::Tuple out = std::move(pending_.front());
  pending_.pop_front();
  return std::optional<storage::Tuple>(std::move(out));
}

Status SymmetricJoin::Close() {
  if (!open_) return Status::FailedPrecondition(name_ + " not open");
  open_ = false;
  AQP_RETURN_IF_ERROR(left_->Close());
  AQP_RETURN_IF_ERROR(right_->Close());
  return Status::OK();
}

}  // namespace join
}  // namespace aqp
