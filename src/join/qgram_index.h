#ifndef AQP_JOIN_QGRAM_INDEX_H_
#define AQP_JOIN_QGRAM_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "join/filter.h"
#include "storage/tuple_store.h"
#include "text/qgram.h"
#include "text/similarity.h"

namespace aqp {
namespace join {

/// \brief One entry of a payload posting list (filtered layout): the
/// tuple plus the two per-tuple facts the length and positional
/// filters prune on, so the probe never dereferences a store row to
/// decide a skip.
struct GramPosting {
  storage::TupleId id = 0;
  /// Gram-set size g_s of the stored tuple (length filter).
  uint32_t gram_count = 0;
  /// 0-based index of this gram in the tuple's globally ordered gram
  /// list (positional filter).
  uint32_t position = 0;
};

/// \brief SSHJoin's per-operand structure: q-gram → tuples containing
/// it (Fig. 3, right).
///
/// The posting list length of a gram is its *frequency* — the quantity
/// SSHJoin's probe uses to order grams rarest-first (§2.2). Per-tuple
/// gram sets are served by the TupleStore's gram cache when the store
/// has one with matching options (the engine's stores always do), so
/// the index, the candidate verifier, and switch catch-up all share
/// one extraction per tuple. Stores without a compatible cache fall
/// back to a local copy (tests, ad-hoc tooling).
///
/// Two posting layouts exist:
///  - *plain* (no filters): every gram of every tuple is posted as a
///    bare TupleId — the paper's structure, unchanged;
///  - *payload* (any filter on): postings carry GramPosting entries,
///    and with prefix filtering each tuple is posted only under its
///    g-k+1 prefix grams in the filter's fixed global gram order,
///    shrinking both posting lists and index memory. Probe-side
///    counting stays sound via the prefix-overlap argument (see
///    join/filter.h).
///
/// Like ExactIndex, the structure lags its TupleStore and is advanced
/// by CatchUpWith(). The store bound by the first CatchUpWith() call
/// must be the one all later calls pass (checked by assert).
class QGramIndex {
 public:
  /// Plain layout: every gram posted, bare TupleId postings.
  explicit QGramIndex(text::QGramOptions options) : options_(options) {}

  /// Filter-aware layout: when `filter.any()`, postings carry payload
  /// entries; with `filter.prefix` only the g-k+1 prefix grams (under
  /// `filter.gram_order`, measure and threshold fixing k per tuple)
  /// are posted. With no filter enabled this is the plain layout.
  QGramIndex(text::QGramOptions options, ApproxFilterOptions filter,
             text::SimilarityMeasure measure, double sim_threshold)
      : options_(options),
        filter_(std::move(filter)),
        measure_(measure),
        sim_threshold_(sim_threshold) {}

  /// Indexes store tuples [watermark, store.size()); returns how many
  /// tuples were inserted.
  size_t CatchUpWith(const storage::TupleStore& store);

  /// Posting list of a gram (tuples whose join attribute contains it),
  /// or nullptr if the gram is unknown. Plain layout only.
  const std::vector<storage::TupleId>* Postings(text::GramKey key) const;

  /// Payload posting list of a gram, or nullptr if the gram is
  /// unknown. Payload layout only.
  const std::vector<GramPosting>* PayloadPostings(text::GramKey key) const;

  /// True iff the index stores payload postings (some filter enabled).
  bool payload_mode() const { return filter_.any(); }

  /// The filter configuration this index was built for.
  const ApproxFilterOptions& filter() const { return filter_; }

  /// Frequency of a gram: number of posting entries for it. With
  /// prefix filtering this counts *posted* (prefix) occurrences, which
  /// is what probe cost accounting observes.
  size_t Frequency(text::GramKey key) const;

  /// Gram-set size of an indexed tuple (id < watermark()).
  size_t GramSetSize(storage::TupleId id) const {
    return GramSetOf(id).size();
  }

  /// Gram set of an indexed tuple — the store's cached set when the
  /// bound store serves it, otherwise the local fallback copy.
  const text::GramSet& GramSetOf(storage::TupleId id) const {
    return store_backed_ ? store_->Grams(id) : local_gram_sets_[id];
  }

  /// Indexed tuples whose join attribute produced no grams (empty
  /// strings when padding is off); they can only match each other.
  const std::vector<storage::TupleId>& empty_gram_tuples() const {
    return empty_gram_tuples_;
  }

  /// Number of store tuples indexed so far.
  size_t watermark() const { return watermark_; }

  /// Number of distinct grams in the index.
  size_t distinct_grams() const {
    return payload_mode() ? payload_postings_.size() : postings_.size();
  }

  /// Average posting-list length B_ap (Table 1's cost parameter).
  double AveragePostingLength() const;

  /// Extraction options.
  const text::QGramOptions& options() const { return options_; }

  /// Reserves hash-table capacity for the expected tuple count (the
  /// store's size hint), so steady catch-up does not rehash the
  /// posting map. Distinct grams saturate well below the tuple count
  /// on natural text, so the reservation is capped.
  void Reserve(size_t expected_tuples);

  /// Rough heap footprint in bytes (§2.3: n · (|jA|+q-1) · p), covering
  /// whichever posting layout is active — payload entries included.
  /// Gram sets served by the store's cache are accounted there, not
  /// here.
  size_t ApproximateMemoryUsage() const;

 private:
  text::QGramOptions options_;
  ApproxFilterOptions filter_;
  text::SimilarityMeasure measure_ = text::SimilarityMeasure::kJaccard;
  double sim_threshold_ = 0.85;
  /// Plain layout postings (filter_.any() == false).
  std::unordered_map<text::GramKey, std::vector<storage::TupleId>> postings_;
  /// Payload layout postings (filter_.any() == true).
  std::unordered_map<text::GramKey, std::vector<GramPosting>>
      payload_postings_;
  /// Scratch for ordering a tuple's grams during payload catch-up.
  std::vector<std::pair<uint64_t, text::GramKey>> order_scratch_;
  /// Bound store (set by the first CatchUpWith); store_backed_ records
  /// whether its gram cache serves this index's options.
  const storage::TupleStore* store_ = nullptr;
  bool store_backed_ = false;
  /// Fallback gram sets for stores without a compatible cache.
  std::vector<text::GramSet> local_gram_sets_;
  std::vector<storage::TupleId> empty_gram_tuples_;
  size_t watermark_ = 0;
  size_t total_postings_ = 0;
};

}  // namespace join
}  // namespace aqp

#endif  // AQP_JOIN_QGRAM_INDEX_H_
