#ifndef AQP_JOIN_QGRAM_INDEX_H_
#define AQP_JOIN_QGRAM_INDEX_H_

#include <unordered_map>
#include <vector>

#include "storage/tuple_store.h"
#include "text/qgram.h"

namespace aqp {
namespace join {

/// \brief SSHJoin's per-operand structure: q-gram → tuples containing
/// it (Fig. 3, right), plus the gram set of every indexed tuple.
///
/// The posting list length of a gram is its *frequency* — the quantity
/// SSHJoin's probe uses to order grams rarest-first (§2.2). Gram sets
/// are retained so the verifier can compute exact coefficients from
/// (probe size, candidate size, overlap) without touching strings, and
/// so equality of rebuilt-vs-caught-up indexes is testable.
///
/// Like ExactIndex, the structure lags its TupleStore and is advanced
/// by CatchUpWith().
class QGramIndex {
 public:
  /// The index extracts q-grams with these options.
  explicit QGramIndex(text::QGramOptions options)
      : options_(options) {}

  /// Indexes store tuples [watermark, store.size()); returns how many
  /// tuples were inserted.
  size_t CatchUpWith(const storage::TupleStore& store);

  /// Posting list of a gram (tuples whose join attribute contains it),
  /// or nullptr if the gram is unknown.
  const std::vector<storage::TupleId>* Postings(text::GramKey key) const;

  /// Frequency of a gram: number of indexed tuples containing it.
  size_t Frequency(text::GramKey key) const;

  /// Gram-set size of an indexed tuple (id < watermark()).
  size_t GramSetSize(storage::TupleId id) const {
    return gram_sets_[id].size();
  }

  /// Gram set of an indexed tuple.
  const text::GramSet& GramSetOf(storage::TupleId id) const {
    return gram_sets_[id];
  }

  /// Indexed tuples whose join attribute produced no grams (empty
  /// strings when padding is off); they can only match each other.
  const std::vector<storage::TupleId>& empty_gram_tuples() const {
    return empty_gram_tuples_;
  }

  /// Number of store tuples indexed so far.
  size_t watermark() const { return watermark_; }

  /// Number of distinct grams in the index.
  size_t distinct_grams() const { return postings_.size(); }

  /// Average posting-list length B_ap (Table 1's cost parameter).
  double AveragePostingLength() const;

  /// Extraction options.
  const text::QGramOptions& options() const { return options_; }

  /// Rough heap footprint in bytes (§2.3: n · (|jA|+q-1) · p).
  size_t ApproximateMemoryUsage() const;

 private:
  text::QGramOptions options_;
  std::unordered_map<text::GramKey, std::vector<storage::TupleId>> postings_;
  std::vector<text::GramSet> gram_sets_;  // indexed by TupleId
  std::vector<storage::TupleId> empty_gram_tuples_;
  size_t watermark_ = 0;
  size_t total_postings_ = 0;
};

}  // namespace join
}  // namespace aqp

#endif  // AQP_JOIN_QGRAM_INDEX_H_
