#ifndef AQP_JOIN_QGRAM_INDEX_H_
#define AQP_JOIN_QGRAM_INDEX_H_

#include <unordered_map>
#include <vector>

#include "storage/tuple_store.h"
#include "text/qgram.h"

namespace aqp {
namespace join {

/// \brief SSHJoin's per-operand structure: q-gram → tuples containing
/// it (Fig. 3, right).
///
/// The posting list length of a gram is its *frequency* — the quantity
/// SSHJoin's probe uses to order grams rarest-first (§2.2). Per-tuple
/// gram sets are served by the TupleStore's gram cache when the store
/// has one with matching options (the engine's stores always do), so
/// the index, the candidate verifier, and switch catch-up all share
/// one extraction per tuple. Stores without a compatible cache fall
/// back to a local copy (tests, ad-hoc tooling).
///
/// Like ExactIndex, the structure lags its TupleStore and is advanced
/// by CatchUpWith(). The store bound by the first CatchUpWith() call
/// must be the one all later calls pass (checked by assert).
class QGramIndex {
 public:
  /// The index extracts q-grams with these options.
  explicit QGramIndex(text::QGramOptions options)
      : options_(options) {}

  /// Indexes store tuples [watermark, store.size()); returns how many
  /// tuples were inserted.
  size_t CatchUpWith(const storage::TupleStore& store);

  /// Posting list of a gram (tuples whose join attribute contains it),
  /// or nullptr if the gram is unknown.
  const std::vector<storage::TupleId>* Postings(text::GramKey key) const;

  /// Frequency of a gram: number of indexed tuples containing it.
  size_t Frequency(text::GramKey key) const;

  /// Gram-set size of an indexed tuple (id < watermark()).
  size_t GramSetSize(storage::TupleId id) const {
    return GramSetOf(id).size();
  }

  /// Gram set of an indexed tuple — the store's cached set when the
  /// bound store serves it, otherwise the local fallback copy.
  const text::GramSet& GramSetOf(storage::TupleId id) const {
    return store_backed_ ? store_->Grams(id) : local_gram_sets_[id];
  }

  /// Indexed tuples whose join attribute produced no grams (empty
  /// strings when padding is off); they can only match each other.
  const std::vector<storage::TupleId>& empty_gram_tuples() const {
    return empty_gram_tuples_;
  }

  /// Number of store tuples indexed so far.
  size_t watermark() const { return watermark_; }

  /// Number of distinct grams in the index.
  size_t distinct_grams() const { return postings_.size(); }

  /// Average posting-list length B_ap (Table 1's cost parameter).
  double AveragePostingLength() const;

  /// Extraction options.
  const text::QGramOptions& options() const { return options_; }

  /// Rough heap footprint in bytes (§2.3: n · (|jA|+q-1) · p). Gram
  /// sets served by the store's cache are accounted there, not here.
  size_t ApproximateMemoryUsage() const;

 private:
  text::QGramOptions options_;
  std::unordered_map<text::GramKey, std::vector<storage::TupleId>> postings_;
  /// Bound store (set by the first CatchUpWith); store_backed_ records
  /// whether its gram cache serves this index's options.
  const storage::TupleStore* store_ = nullptr;
  bool store_backed_ = false;
  /// Fallback gram sets for stores without a compatible cache.
  std::vector<text::GramSet> local_gram_sets_;
  std::vector<storage::TupleId> empty_gram_tuples_;
  size_t watermark_ = 0;
  size_t total_postings_ = 0;
};

}  // namespace join
}  // namespace aqp

#endif  // AQP_JOIN_QGRAM_INDEX_H_
