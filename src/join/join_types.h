#ifndef AQP_JOIN_JOIN_TYPES_H_
#define AQP_JOIN_JOIN_TYPES_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "exec/operator.h"
#include "join/filter.h"
#include "storage/schema.h"
#include "storage/tuple_store.h"
#include "text/qgram.h"
#include "text/similarity.h"

namespace aqp {
namespace join {

using exec::Side;
using storage::TupleId;

/// \brief Static description of a record-linkage join.
struct JoinSpec {
  /// Join-attribute column in each input (must be a string column).
  size_t left_column = 0;
  size_t right_column = 0;

  /// q-gram extraction parameters (q = 3 in the paper).
  text::QGramOptions qgram;

  /// Set-similarity coefficient; the paper uses the Jaccard
  /// coefficient.
  text::SimilarityMeasure measure = text::SimilarityMeasure::kJaccard;

  /// Similarity threshold θ_sim; a pair is an (approximate) match iff
  /// sim >= sim_threshold. The paper tunes this to 0.85.
  double sim_threshold = 0.85;

  /// Candidate filter stack for approximate probes (length / prefix /
  /// positional). All filters are exact — they change probe cost, not
  /// the match set — and default off, reproducing the paper's plain
  /// counted-candidate walk.
  ApproxFilterOptions filter;

  /// Join column for a given side.
  size_t column(Side side) const {
    return side == Side::kLeft ? left_column : right_column;
  }

  /// Validates the parameter combination.
  Status Validate() const;

  /// Validates that the columns exist in the given schemas and are
  /// string-typed.
  Status ValidateAgainstSchemas(const storage::Schema& left,
                                const storage::Schema& right) const;
};

/// \brief Whether a match was found by exact equality or by the
/// similarity predicate only.
enum class MatchKind { kExact, kApproximate };

/// "exact" / "approximate".
const char* MatchKindName(MatchKind kind);

/// \brief One matching pair produced by a probe.
struct JoinMatch {
  /// The side the probing tuple was read from.
  Side probe_side = Side::kLeft;
  /// Id of the probing tuple in its side's store.
  TupleId probe_id = 0;
  /// Id of the stored tuple it matched (on the opposite side).
  TupleId stored_id = 0;
  /// Similarity of the pair (1.0 for exact matches).
  double similarity = 1.0;
  /// Exact or approximate.
  MatchKind kind = MatchKind::kExact;

  /// Id of the pair's left-side tuple.
  TupleId left_id() const {
    return probe_side == Side::kLeft ? probe_id : stored_id;
  }
  /// Id of the pair's right-side tuple.
  TupleId right_id() const {
    return probe_side == Side::kRight ? probe_id : stored_id;
  }
};

/// Output schema of a join: left fields then right fields (right-side
/// duplicates suffixed "_r"), optionally followed by a "sim" double
/// column carrying the match similarity.
storage::Schema JoinOutputSchema(const storage::Schema& left,
                                 const storage::Schema& right,
                                 bool with_similarity);

}  // namespace join
}  // namespace aqp

#endif  // AQP_JOIN_JOIN_TYPES_H_
