#include "join/hybrid_core.h"

#include "common/hash.h"

namespace aqp {
namespace join {

const char* ProbeModeName(ProbeMode mode) {
  return mode == ProbeMode::kExact ? "exact" : "approximate";
}

HybridJoinCore::HybridJoinCore(const JoinSpec& spec,
                               ApproxProbeOptions approx_options)
    : spec_(spec),
      approx_options_(approx_options),
      // Gram-cache mode: each store owns its tuples' gram sets, shared
      // by the side's q-gram index and every probe/verifier.
      stores_{storage::TupleStore(spec.left_column, spec.qgram),
              storage::TupleStore(spec.right_column, spec.qgram)},
      exact_{},
      // The indexes adopt the spec's filter stack: with filters on they
      // keep payload (prefix/positional) postings, and every probe —
      // including the parallel shards' cross-probes, which route
      // through the same spec — runs the filtered kernel against them.
      qgram_{QGramIndex(spec.qgram, spec.filter, spec.measure,
                        spec.sim_threshold),
             QGramIndex(spec.qgram, spec.filter, spec.measure,
                        spec.sim_threshold)} {}

void HybridJoinCore::MaintainLiveIndex(Side side) {
  const size_t s = Idx(side);
  const size_t o = Idx(OtherSide(side));
  // The index built over `side` is probed by tuples read from the
  // *other* side, so the other side's probe mode selects which of this
  // side's structures must stay current.
  if (mode_[o] == ProbeMode::kExact) {
    exact_[s].CatchUpWith(stores_[s]);
  } else {
    qgram_[s].CatchUpWith(stores_[s]);
  }
}

size_t HybridJoinCore::ProcessRowInto(Side side,
                                      const storage::ColumnBatch& batch,
                                      size_t row,
                                      std::vector<JoinMatch>* out) {
  const size_t s = Idx(side);
  const uint64_t hash =
      batch.has_key_hashes()
          ? batch.key_hash(row)
          : Fnv1a64(batch.StringAt(stores_[s].join_column(), row));
  return ProcessAddedTuple(side, stores_[s].AddRow(batch, row, hash), out);
}

size_t HybridJoinCore::ProcessTupleInto(Side side, storage::Tuple tuple,
                                        std::vector<JoinMatch>* out) {
  const size_t s = Idx(side);
  return ProcessAddedTuple(side, stores_[s].Add(std::move(tuple)), out);
}

size_t HybridJoinCore::ProcessAddedTuple(Side side, storage::TupleId id,
                                         std::vector<JoinMatch>* out) {
  const size_t s = Idx(side);
  const size_t o = Idx(OtherSide(side));
  MaintainLiveIndex(side);

  // Every probe artifact — key view, 64-bit hash, gram set — comes
  // from the probing tuple's store, computed exactly once at Add().
  const std::string_view key = stores_[s].JoinKey(id);
  const size_t out_begin = out->size();
  size_t appended = 0;
  if (mode_[s] == ProbeMode::kExact) {
    appended = ProbeExactInto(exact_[o], key, stores_[s].KeyHash(id), side,
                              id, out);
  } else {
    appended = ProbeApproximateInto(qgram_[o], stores_[o], key,
                                    stores_[s].Grams(id), spec_, side, id,
                                    approx_options_, &probe_scratch_,
                                    &approx_stats_, out);
  }

  for (size_t i = out_begin; i < out->size(); ++i) {
    const JoinMatch& m = (*out)[i];
    if (m.kind == MatchKind::kExact) {
      stores_[s].SetMatchedExactly(id);
      stores_[o].SetMatchedExactly(m.stored_id);
      ++exact_pairs_;
    } else {
      ++approximate_pairs_;
    }
    if (stores_[s].SetMatchedAny(id)) {
      stores_[s].IncrementMatchedAnyCount();
    }
    if (stores_[o].SetMatchedAny(m.stored_id)) {
      stores_[o].IncrementMatchedAnyCount();
    }
  }
  pairs_emitted_ += appended;
  return appended;
}

void HybridJoinCore::AttributeApproxMatches(
    Side read_side, const std::vector<JoinMatch>& matches,
    uint32_t out[2]) const {
  out[0] = 0;
  out[1] = 0;
  const Side stored_side = exec::OtherSide(read_side);
  for (const JoinMatch& m : matches) {
    if (m.kind != MatchKind::kApproximate) continue;
    if (stores_[Idx(stored_side)].MatchedExactly(m.stored_id)) {
      ++out[Idx(read_side)];
    } else if (stores_[Idx(read_side)].MatchedExactly(m.probe_id)) {
      ++out[Idx(stored_side)];
    } else {
      ++out[Idx(read_side)];
      ++out[Idx(stored_side)];
    }
  }
}

size_t HybridJoinCore::SetProbeMode(Side side, ProbeMode mode) {
  const size_t s = Idx(side);
  if (mode_[s] == mode) return 0;
  mode_[s] = mode;
  // Tuples from `side` now probe the opposite side through a different
  // structure; bring it up to date with everything seen so far.
  const size_t o = Idx(OtherSide(side));
  size_t caught_up = 0;
  if (mode == ProbeMode::kExact) {
    caught_up = exact_[o].CatchUpWith(stores_[o]);
  } else {
    caught_up = qgram_[o].CatchUpWith(stores_[o]);
  }
  catchup_tuples_ += caught_up;
  return caught_up;
}

size_t HybridJoinCore::ApproximateMemoryUsage() const {
  size_t bytes = 0;
  for (size_t i = 0; i < 2; ++i) {
    bytes += stores_[i].ApproximateMemoryUsage();
    bytes += exact_[i].ApproximateMemoryUsage();
    bytes += qgram_[i].ApproximateMemoryUsage();
  }
  return bytes;
}

}  // namespace join
}  // namespace aqp
