#include "join/hybrid_core.h"

namespace aqp {
namespace join {

const char* ProbeModeName(ProbeMode mode) {
  return mode == ProbeMode::kExact ? "exact" : "approximate";
}

HybridJoinCore::HybridJoinCore(const JoinSpec& spec,
                               ApproxProbeOptions approx_options)
    : spec_(spec),
      approx_options_(approx_options),
      stores_{storage::TupleStore(spec.left_column),
              storage::TupleStore(spec.right_column)},
      exact_{},
      qgram_{QGramIndex(spec.qgram), QGramIndex(spec.qgram)} {}

void HybridJoinCore::MaintainLiveIndex(Side side) {
  const size_t s = Idx(side);
  const size_t o = Idx(OtherSide(side));
  // The index built over `side` is probed by tuples read from the
  // *other* side, so the other side's probe mode selects which of this
  // side's structures must stay current.
  if (mode_[o] == ProbeMode::kExact) {
    exact_[s].CatchUpWith(stores_[s]);
  } else {
    qgram_[s].CatchUpWith(stores_[s]);
  }
}

std::vector<JoinMatch> HybridJoinCore::ProcessTuple(Side side,
                                                    storage::Tuple tuple) {
  const size_t s = Idx(side);
  const size_t o = Idx(OtherSide(side));
  const storage::TupleId id = stores_[s].Add(std::move(tuple));
  MaintainLiveIndex(side);

  const std::string& key = stores_[s].JoinKey(id);
  std::vector<JoinMatch> matches;
  if (mode_[s] == ProbeMode::kExact) {
    matches = ProbeExact(exact_[o], key, side, id);
  } else {
    matches = ProbeApproximate(qgram_[o], stores_[o], key, spec_, side, id,
                               approx_options_, &approx_stats_);
  }

  for (const JoinMatch& m : matches) {
    if (m.kind == MatchKind::kExact) {
      stores_[s].SetMatchedExactly(id);
      stores_[o].SetMatchedExactly(m.stored_id);
      ++exact_pairs_;
    } else {
      ++approximate_pairs_;
    }
    if (stores_[s].SetMatchedAny(id)) {
      stores_[s].IncrementMatchedAnyCount();
    }
    if (stores_[o].SetMatchedAny(m.stored_id)) {
      stores_[o].IncrementMatchedAnyCount();
    }
  }
  pairs_emitted_ += matches.size();
  return matches;
}

size_t HybridJoinCore::SetProbeMode(Side side, ProbeMode mode) {
  const size_t s = Idx(side);
  if (mode_[s] == mode) return 0;
  mode_[s] = mode;
  // Tuples from `side` now probe the opposite side through a different
  // structure; bring it up to date with everything seen so far.
  const size_t o = Idx(OtherSide(side));
  size_t caught_up = 0;
  if (mode == ProbeMode::kExact) {
    caught_up = exact_[o].CatchUpWith(stores_[o]);
  } else {
    caught_up = qgram_[o].CatchUpWith(stores_[o]);
  }
  catchup_tuples_ += caught_up;
  return caught_up;
}

size_t HybridJoinCore::ApproximateMemoryUsage() const {
  size_t bytes = 0;
  for (size_t i = 0; i < 2; ++i) {
    bytes += stores_[i].ApproximateMemoryUsage();
    bytes += exact_[i].ApproximateMemoryUsage();
    bytes += qgram_[i].ApproximateMemoryUsage();
  }
  return bytes;
}

}  // namespace join
}  // namespace aqp
