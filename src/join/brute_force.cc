#include "join/brute_force.h"

#include "text/similarity.h"

namespace aqp {
namespace join {

std::vector<BrutePair> BruteForceExactJoin(const storage::Relation& left,
                                           const storage::Relation& right,
                                           const JoinSpec& spec) {
  std::vector<BrutePair> out;
  for (size_t i = 0; i < left.size(); ++i) {
    const std::string& lkey = left.row(i).at(spec.left_column).AsString();
    for (size_t j = 0; j < right.size(); ++j) {
      const std::string& rkey = right.row(j).at(spec.right_column).AsString();
      if (lkey == rkey) {
        out.push_back(BrutePair{i, j, 1.0});
      }
    }
  }
  return out;
}

std::vector<BrutePair> BruteForceSimilarityJoin(const storage::Relation& left,
                                                const storage::Relation& right,
                                                const JoinSpec& spec) {
  std::vector<BrutePair> out;
  // Precompute right-side gram sets once.
  std::vector<text::GramSet> right_grams;
  right_grams.reserve(right.size());
  for (size_t j = 0; j < right.size(); ++j) {
    right_grams.push_back(text::GramSet::Of(
        right.row(j).at(spec.right_column).AsString(), spec.qgram));
  }
  for (size_t i = 0; i < left.size(); ++i) {
    const std::string& lkey = left.row(i).at(spec.left_column).AsString();
    const text::GramSet lgrams = text::GramSet::Of(lkey, spec.qgram);
    for (size_t j = 0; j < right.size(); ++j) {
      double sim;
      if (lgrams.empty() && right_grams[j].empty()) {
        // Mirror the engine's degenerate-probe rule: gram-less strings
        // match only by equality.
        sim = (lkey == right.row(j).at(spec.right_column).AsString()) ? 1.0
                                                                      : 0.0;
      } else {
        sim = text::SetSimilarity(spec.measure, lgrams, right_grams[j]);
      }
      if (sim >= spec.sim_threshold) {
        out.push_back(BrutePair{i, j, sim});
      }
    }
  }
  return out;
}

}  // namespace join
}  // namespace aqp
