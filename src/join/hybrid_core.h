#ifndef AQP_JOIN_HYBRID_CORE_H_
#define AQP_JOIN_HYBRID_CORE_H_

#include <cstdint>
#include <vector>

#include "join/exact_index.h"
#include "join/join_types.h"
#include "join/probe.h"
#include "join/qgram_index.h"
#include "storage/tuple_store.h"

namespace aqp {
namespace join {

/// \brief How tuples read from one input are matched against the other.
///
/// The state names of the paper's four-state machine (§3.4) are the
/// per-side probe modes: in `lap/rex`, tuples read from the left probe
/// the right via the q-gram index (approximate) while tuples read from
/// the right probe the left via the exact hash table.
enum class ProbeMode { kExact, kApproximate };

/// "exact" / "approximate".
const char* ProbeModeName(ProbeMode mode);

/// \brief Per-step observables captured at step time by the batched
/// execution path.
///
/// The matched-exactly flags of both stores evolve as later steps
/// process, so the §3.3 variant attribution cannot be recomputed after
/// a whole batch has gone through the core — the engine snapshots it
/// right after each step and hands the monitor complete batches.
struct StepObservables {
  /// Approximate matches attributed to each input (indexed by Side).
  /// The attribution already folded in which side the step read from,
  /// so the record carries only what the monitor consumes.
  uint32_t approx_attributed[2] = {0, 0};
};

/// \brief The switchable symmetric join engine shared by SHJoin,
/// SSHJoin, and the adaptive operator.
///
/// The core owns, per operand: the tuple store (tuples are kept exactly
/// once, §2.3), the exact hash index, and the q-gram index. Only the
/// *live* structures — those the current mode combination probes — are
/// kept current; the others lag behind their store and are caught up at
/// switch points via watermarks, so switch cost is proportional to the
/// tuples seen since the previous switch, exactly as §2.3 prescribes.
///
/// The core is deliberately input-agnostic: callers (pipelined operator
/// wrappers, tests, benches) feed tuples through ProcessTuple() in
/// whatever order their scheduler chooses. One ProcessTuple call is one
/// "step" of the paper: the sequence of elementary operations between
/// two quiescent states.
class HybridJoinCore {
 public:
  /// Constructs the engine. The spec must already be validated.
  explicit HybridJoinCore(const JoinSpec& spec,
                          ApproxProbeOptions approx_options = {});

  /// Ingests row `row` of `batch` as one tuple read from `side` — the
  /// native columnar step: the side's store copies the payload slice
  /// column-to-column and interns the key view with the hash from the
  /// batch's key-hash lane (computed once per refill by the operator's
  /// input path or the routing exchange, and carried along by the
  /// per-shard column scatter; falls back to hashing the key bytes
  /// when the lane is absent). A NULL join-key cell is treated as the
  /// empty string — defined behavior where the row protocol rejects
  /// NULL keys outright (Tuple::AsString on a NULL cell throws).
  /// Maintains the side's live index and
  /// probes the opposite side according to `probe_mode(side)`. Appends
  /// all matches for the tuple (the step's complete output —
  /// afterwards the operator is quiescent again) to `*out` and returns
  /// how many were appended. Matched-exactly flags (§3.3) and
  /// distinct-match counters are updated. The append-style interface
  /// lets the batched executor reuse one scratch buffer for a whole
  /// batch of steps.
  size_t ProcessRowInto(Side side, const storage::ColumnBatch& batch,
                        size_t row, std::vector<JoinMatch>* out);

  /// Row-protocol compatibility step (tests, benches, tuple-at-a-time
  /// callers): same semantics, tuple decomposed by the store.
  size_t ProcessTupleInto(Side side, storage::Tuple tuple,
                          std::vector<JoinMatch>* out);

  /// Convenience wrapper returning a fresh vector per step (tests,
  /// tuple-at-a-time callers).
  std::vector<JoinMatch> ProcessTuple(Side side, storage::Tuple tuple) {
    std::vector<JoinMatch> out;
    ProcessTupleInto(side, std::move(tuple), &out);
    return out;
  }

  /// §3.3 variant attribution for one step's matches, evaluated
  /// against the *current* matched-exactly flags: if the stored tuple
  /// of an approximate pair has matched exactly before, the reading
  /// input is blamed; if the probing tuple has, the stored input is;
  /// with no evidence either way, both are. `out` is indexed by Side.
  void AttributeApproxMatches(Side read_side,
                              const std::vector<JoinMatch>& matches,
                              uint32_t out[2]) const;

  /// Current probe mode of tuples read from `side`.
  ProbeMode probe_mode(Side side) const { return mode_[Idx(side)]; }

  /// Changes how tuples read from `side` probe. Catches up the
  /// opposite side's newly live index; returns the number of tuples
  /// inserted during catch-up (0 when the mode is unchanged).
  size_t SetProbeMode(Side side, ProbeMode mode);

  /// Reserves store and q-gram-index capacity for the expected input
  /// cardinalities (0 = unknown); the operator wrappers pass their
  /// size hints so steady ingest never reallocates the per-tuple
  /// vectors or rehashes the posting maps.
  void ReserveStores(size_t left_hint, size_t right_hint) {
    if (left_hint > 0) {
      stores_[Idx(Side::kLeft)].Reserve(left_hint);
      qgram_[Idx(Side::kLeft)].Reserve(left_hint);
    }
    if (right_hint > 0) {
      stores_[Idx(Side::kRight)].Reserve(right_hint);
      qgram_[Idx(Side::kRight)].Reserve(right_hint);
    }
  }

  /// \name Introspection.
  /// @{
  const storage::TupleStore& store(Side side) const {
    return stores_[Idx(side)];
  }
  const ExactIndex& exact_index(Side side) const {
    return exact_[Idx(side)];
  }
  const QGramIndex& qgram_index(Side side) const {
    return qgram_[Idx(side)];
  }
  const JoinSpec& spec() const { return spec_; }

  /// Distinct tuples of `side` matched at least once.
  uint64_t distinct_matched(Side side) const {
    return stores_[Idx(side)].matched_any_count();
  }

  /// Total pairs emitted so far.
  uint64_t pairs_emitted() const { return pairs_emitted_; }
  /// Pairs by kind.
  uint64_t exact_pairs() const { return exact_pairs_; }
  uint64_t approximate_pairs() const { return approximate_pairs_; }

  /// Cumulative work counters of all approximate probes.
  const ApproxProbeStats& approx_probe_stats() const { return approx_stats_; }

  /// Tuples inserted by all switch catch-ups so far.
  uint64_t catchup_tuples() const { return catchup_tuples_; }

  /// Rough total heap footprint (stores + all four indexes).
  size_t ApproximateMemoryUsage() const;
  /// @}

 private:
  static size_t Idx(Side side) { return static_cast<size_t>(side); }

  /// Keeps `side`'s live index (the one the opposite side probes)
  /// current with the side's store.
  void MaintainLiveIndex(Side side);

  /// Shared step body of the ProcessTupleInto variants: maintain the
  /// live index, probe, update flags/counters, append matches.
  size_t ProcessAddedTuple(Side side, storage::TupleId id,
                           std::vector<JoinMatch>* out);

  JoinSpec spec_;
  ApproxProbeOptions approx_options_;
  storage::TupleStore stores_[2];
  ExactIndex exact_[2];
  QGramIndex qgram_[2];
  ProbeMode mode_[2] = {ProbeMode::kExact, ProbeMode::kExact};
  uint64_t pairs_emitted_ = 0;
  uint64_t exact_pairs_ = 0;
  uint64_t approximate_pairs_ = 0;
  uint64_t catchup_tuples_ = 0;
  ApproxProbeStats approx_stats_;
  /// Reusable working memory for approximate probes (cleared per
  /// probe, capacity kept).
  ApproxProbeScratch probe_scratch_;
};

}  // namespace join
}  // namespace aqp

#endif  // AQP_JOIN_HYBRID_CORE_H_
