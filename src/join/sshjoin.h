#ifndef AQP_JOIN_SSHJOIN_H_
#define AQP_JOIN_SSHJOIN_H_

#include "join/symmetric_join.h"

namespace aqp {
namespace join {

/// \brief SSHJoin — the pipelined symmetric *set* hash join (§2.2), a
/// re-implementation of Chaudhuri et al.'s SSJoin primitive as a
/// symmetric, streaming operator.
///
/// Each operand maintains a q-gram inverted index; a probe computes the
/// probe string's gram set, walks the probe grams rarest-first building
/// the candidate set T(t) with shared-gram counters (only the first
/// g-k+1 grams may insert), and verifies candidates whose counter
/// reaches k against the similarity threshold. This is the
/// all-approximate baseline of the paper's evaluation (result size `R`,
/// cost `C`).
///
/// The SSJoin-lineage filter stack (length / prefix / positional, see
/// join/filter.h) is enabled through `options.spec.filter`; the
/// operand indexes then keep prefix payload postings and every probe
/// runs the filtered kernel. All filters are exact, so the output and
/// any adaptation trace built on it are byte-identical to the
/// unfiltered operator — only candidate-generation cost changes.
class SSHJoin : public SymmetricJoin {
 public:
  SSHJoin(exec::Operator* left, exec::Operator* right,
          SymmetricJoinOptions options)
      : SymmetricJoin(left, right, std::move(options),
                      ProbeMode::kApproximate, ProbeMode::kApproximate,
                      "SSHJoin") {}
};

}  // namespace join
}  // namespace aqp

#endif  // AQP_JOIN_SSHJOIN_H_
