#ifndef AQP_STORAGE_COLUMN_BATCH_H_
#define AQP_STORAGE_COLUMN_BATCH_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace aqp {
namespace storage {

/// \brief A fixed-capacity, schema-stamped *columnar* batch of rows —
/// the native unit of exchange of the vectorized operator protocol
/// (exec::Operator::NextColumnBatch).
///
/// Layout: one typed vector per column (`int64_t`, `double`, or
/// {offset, len} slots into a per-batch string-data arena) plus a
/// per-column null bitmap. String bytes of all string columns share one
/// contiguous arena, so filling a batch performs no per-cell heap
/// allocation — arena growth is amortized, and a recycled batch
/// (Reset with the same schema) reaches an allocation-free steady
/// state. This is what replaced the row-of-variant TupleBatch on the
/// hot path: the PR 1 profile showed per-tuple `std::vector<Value>`
/// and `std::string` construction dominating the exact-join loop.
///
/// An optional *join-key hash lane* carries one precomputed FNV-1a
/// hash per row (ComputeKeyHashes over the join column); consumers
/// (TupleStore::AddRow, the radix exchange) read the hash instead of
/// re-hashing key bytes, and the batch becomes the `(key view, hash,
/// payload slice)` triple the store ingests without ever constructing
/// an intermediate Tuple.
///
/// A batch borrows its schema from the producing operator (the schema
/// must outlive the batch, which holds in the pull model). Capacity is
/// a soft contract exactly as in TupleBatch: appends past capacity
/// degrade to growth, not corruption.
///
/// Views returned by StringAt() alias the arena and are invalidated by
/// any append, Clear(), or Reset() — consume a row before mutating the
/// batch (the pipeline copies rows into stores/sinks immediately).
class ColumnBatch {
 public:
  /// Default number of rows per batch (matches TupleBatch so row and
  /// columnar drives see the same batch boundaries).
  static constexpr size_t kDefaultCapacity = 1024;

  ColumnBatch() = default;
  explicit ColumnBatch(const Schema* schema,
                       size_t capacity = kDefaultCapacity) {
    Reset(schema, capacity);
  }

  ColumnBatch(const ColumnBatch&) = default;
  ColumnBatch& operator=(const ColumnBatch&) = default;
  ColumnBatch(ColumnBatch&&) noexcept = default;
  ColumnBatch& operator=(ColumnBatch&&) noexcept = default;

  /// Clears the rows, stamps the schema, and (re)reserves capacity.
  /// Re-stamping the same schema keeps the column vectors' and arena's
  /// allocations (the refill steady state); a different schema rebuilds
  /// the column layout. A capacity of 0 keeps the previous one.
  void Reset(const Schema* schema, size_t capacity = 0);

  /// Schema of the rows (may be null for a default-constructed batch).
  const Schema* schema() const { return schema_; }

  size_t num_columns() const { return columns_.size(); }
  size_t capacity() const { return capacity_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }
  bool full() const { return num_rows_ >= capacity_; }

  /// Drops all rows (and key hashes), keeping schema, capacity, and
  /// every allocation.
  void Clear();

  /// \name Cell-wise append: append one cell per column in schema
  /// order, then CommitRow(). The typed appenders assert the column's
  /// schema type in debug builds.
  /// @{
  void AppendNull(size_t col) {
    Column& c = columns_[col];
    c.nulls.push_back(1);
    switch (c.type) {
      case ValueType::kInt64:
        c.i64.push_back(0);
        break;
      case ValueType::kDouble:
        c.f64.push_back(0.0);
        break;
      default:
        c.offset.push_back(0);
        c.len.push_back(0);
        break;
    }
  }
  void AppendInt64(size_t col, int64_t v) {
    Column& c = columns_[col];
    assert(c.type == ValueType::kInt64 && "int64 append on non-int64 column");
    c.nulls.push_back(0);
    c.i64.push_back(v);
  }
  void AppendDouble(size_t col, double v) {
    Column& c = columns_[col];
    assert(c.type == ValueType::kDouble &&
           "double append on non-double column");
    c.nulls.push_back(0);
    c.f64.push_back(v);
  }
  void AppendString(size_t col, std::string_view v) {
    Column& c = columns_[col];
    assert((c.type == ValueType::kString || c.type == ValueType::kNull) &&
           "string append on non-string column");
    // 32-bit slots for cache density: a batch is a transient unit of
    // exchange (capacity × row width, epochs at most), so its string
    // arena is bounded well under the 4 GiB the offsets address. The
    // long-lived TupleStore payload arena uses 64-bit offsets instead.
    // The bound is enforced even in Release — wrapped offsets would
    // silently corrupt every later string cell.
    if (arena_.size() + v.size() > UINT32_MAX) DieArenaOverflow();
    c.nulls.push_back(0);
    c.offset.push_back(static_cast<uint32_t>(arena_.size()));
    c.len.push_back(static_cast<uint32_t>(v.size()));
    arena_.insert(arena_.end(), v.begin(), v.end());
  }
  /// Seals the current row. Debug builds assert every column received
  /// exactly one cell.
  void CommitRow() {
#ifndef NDEBUG
    for (const Column& c : columns_) {
      assert(c.nulls.size() == num_rows_ + 1 &&
             "CommitRow with misaligned columns");
    }
#endif
    ++num_rows_;
    committed_arena_ = arena_.size();
  }
  /// Discards the partially appended row in flight (cells appended
  /// since the last CommitRow), truncating every column lane and the
  /// string arena back to the committed watermark. This is what lets a
  /// producer abandon a half-parsed record — e.g. the CSV quarantine
  /// path — without poisoning the batch.
  void AbandonRow();
  /// @}

  /// Appends one row from a Tuple (row-protocol compatibility paths).
  /// Cell types must match the schema; NULL cells are allowed anywhere.
  void AppendTupleRow(const Tuple& tuple);

  /// Bulk-appends `count` tuples starting at `rows`, column-major: one
  /// type dispatch per column instead of per cell (relation scans feed
  /// whole row ranges through this).
  void AppendTupleRows(const Tuple* rows, size_t count);

  /// Appends `src`'s row `row` (identical schema layout required) —
  /// the unit of the parallel exchange's per-shard column scatter.
  /// Carries the row's key hash along when both batches have a lane.
  void AppendRowFrom(const ColumnBatch& src, size_t row);

  /// \name Typed cell access.
  /// @{
  bool IsNull(size_t col, size_t row) const {
    return columns_[col].nulls[row] != 0;
  }
  int64_t Int64At(size_t col, size_t row) const {
    return columns_[col].i64[row];
  }
  double DoubleAt(size_t col, size_t row) const {
    return columns_[col].f64[row];
  }
  std::string_view StringAt(size_t col, size_t row) const {
    const Column& c = columns_[col];
    return std::string_view(arena_.data() + c.offset[row], c.len[row]);
  }
  ValueType column_type(size_t col) const { return columns_[col].type; }
  /// @}

  /// Cell as a Value (adapter paths; allocates for strings).
  Value ValueAt(size_t col, size_t row) const;

  /// Appends row `row`'s cells as Values (row materialization).
  void MaterializeRowInto(size_t row, std::vector<Value>* out) const;

  /// Row as a Tuple (adapter paths).
  Tuple MaterializeRow(size_t row) const;

  /// \name Join-key hash lane.
  /// @{
  /// Fills the lane with the FNV-1a hash of every row's `col` cell
  /// (NULL hashes as the empty string). Vectorized over the column —
  /// one pass, no per-row dispatch.
  void ComputeKeyHashes(size_t col);
  bool has_key_hashes() const { return !key_hashes_.empty() || empty(); }
  uint64_t key_hash(size_t row) const { return key_hashes_[row]; }
  /// @}

  /// Allocated footprint in bytes: every column lane's capacity, the
  /// shared string arena, and the key-hash lane. Capacity-based (like
  /// TupleStore::ApproximateMemoryUsage), so a Clear()ed batch still
  /// reports its retained allocations — that is what a budget must
  /// see, since recycled batches keep their arenas by design.
  uint64_t ApproximateMemoryUsage() const;

  /// Checks per-column row alignment against the committed row count
  /// (debug paths). A null schema fails.
  Status Validate() const;

  /// "ColumnBatch(size/capacity)" plus the first rows (debugging).
  std::string ToString(size_t limit = 5) const;

 private:
  /// Aborts with a diagnostic when a batch's string arena would
  /// outgrow its 32-bit offsets (cold; see AppendString).
  [[noreturn]] static void DieArenaOverflow();

  /// One typed column vector. Only the vector matching `type` is used;
  /// string columns keep {offset, len} slots into the shared arena.
  struct Column {
    ValueType type = ValueType::kString;
    std::vector<uint8_t> nulls;
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<uint32_t> offset;
    std::vector<uint32_t> len;
  };

  const Schema* schema_ = nullptr;
  std::vector<Column> columns_;
  /// Shared string-data arena of all string columns.
  std::vector<char> arena_;
  std::vector<uint64_t> key_hashes_;
  size_t num_rows_ = 0;
  /// Arena size as of the last committed row — the truncation point
  /// for AbandonRow. Every path that advances num_rows_ refreshes it.
  size_t committed_arena_ = 0;
  size_t capacity_ = kDefaultCapacity;
};

}  // namespace storage
}  // namespace aqp

#endif  // AQP_STORAGE_COLUMN_BATCH_H_
