#include "storage/key_arena.h"

#include <cstring>

#include "common/failpoint.h"

namespace aqp {
namespace storage {

uint64_t KeyArena::Intern(std::string_view bytes) {
  // Simulated allocation failure (the arena grows here); throws, to be
  // contained at the nearest task/operator boundary.
  AQP_FAILPOINT_THROW(fail::site::kArenaAlloc);
  payload_bytes_ += bytes.size();
  if (bytes.size() > kChunkBytes) {
    overflow_.emplace_back(bytes);
    return kOverflowBit | static_cast<uint64_t>(overflow_.size() - 1);
  }
  if (chunks_.empty() || used_in_last_ + bytes.size() > kChunkBytes) {
    chunks_.push_back(std::make_unique<char[]>(kChunkBytes));
    used_in_last_ = 0;
  }
  const uint64_t offset =
      (static_cast<uint64_t>(chunks_.size() - 1) << kChunkShift) |
      static_cast<uint64_t>(used_in_last_);
  if (!bytes.empty()) {
    std::memcpy(chunks_.back().get() + used_in_last_, bytes.data(),
                bytes.size());
  }
  used_in_last_ += bytes.size();
  return offset;
}

size_t KeyArena::ApproximateMemoryUsage() const {
  size_t bytes = chunks_.size() * kChunkBytes +
                 chunks_.capacity() * sizeof(chunks_[0]);
  for (const std::string& s : overflow_) bytes += s.capacity();
  bytes += overflow_.capacity() * sizeof(std::string);
  return bytes;
}

}  // namespace storage
}  // namespace aqp
