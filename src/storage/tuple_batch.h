#ifndef AQP_STORAGE_TUPLE_BATCH_H_
#define AQP_STORAGE_TUPLE_BATCH_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace aqp {
namespace storage {

/// \brief A fixed-capacity, schema-stamped batch of rows — the unit of
/// exchange of the vectorized operator protocol (exec::Operator::
/// NextBatch).
///
/// A batch borrows its schema from the producing operator (the schema
/// must outlive the batch, which holds in the pull model: the producer
/// outlives every batch it fills). Capacity is a soft contract: Append
/// asserts in debug builds but the vector grows if violated, so a
/// misbehaving producer degrades to slow instead of corrupt.
///
/// Batches are move-friendly by design: moving one transfers the row
/// vector without copying tuples, and `TakeRows()` hands the rows to a
/// consumer that wants to own them (e.g. CollectAll splicing batches
/// into a Relation).
class TupleBatch {
 public:
  /// Default number of rows per batch; chosen so a batch of typical
  /// linkage tuples stays comfortably inside the L2 cache.
  static constexpr size_t kDefaultCapacity = 1024;

  TupleBatch() = default;
  explicit TupleBatch(const Schema* schema,
                      size_t capacity = kDefaultCapacity) {
    Reset(schema, capacity);
  }

  TupleBatch(const TupleBatch&) = default;
  TupleBatch& operator=(const TupleBatch&) = default;
  TupleBatch(TupleBatch&&) noexcept = default;
  TupleBatch& operator=(TupleBatch&&) noexcept = default;

  /// Clears the rows, stamps the schema, and (re)reserves capacity.
  /// A capacity of 0 keeps the previous one (or kDefaultCapacity).
  void Reset(const Schema* schema, size_t capacity = 0) {
    schema_ = schema;
    rows_.clear();
    if (capacity > 0) capacity_ = capacity;
    rows_.reserve(capacity_);
  }

  /// Schema of the rows (may be null for a default-constructed batch).
  const Schema* schema() const { return schema_; }

  size_t capacity() const { return capacity_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  bool full() const { return rows_.size() >= capacity_; }

  /// Appends a row. The caller is responsible for respecting capacity
  /// (checked by assert; see class comment).
  void Append(Tuple tuple) {
    assert(!full() && "TupleBatch::Append beyond capacity");
    rows_.push_back(std::move(tuple));
  }

  Tuple& operator[](size_t i) { return rows_[i]; }
  const Tuple& operator[](size_t i) const { return rows_[i]; }

  /// Drops all rows, keeping schema and capacity.
  void Clear() { rows_.clear(); }

  const std::vector<Tuple>& rows() const { return rows_; }

  /// Moves the rows out, leaving the batch empty (schema/capacity
  /// survive; the internal vector is reset so a later Append does not
  /// touch moved-from storage).
  std::vector<Tuple> TakeRows() {
    std::vector<Tuple> out = std::move(rows_);
    rows_ = {};
    rows_.reserve(capacity_);
    return out;
  }

  /// Checks every row against the stamped schema (debug paths; the hot
  /// path trusts the producer). A null schema fails.
  Status ValidateRows() const;

  /// "TupleBatch(size/capacity)" plus the first rows (debugging).
  std::string ToString(size_t limit = 5) const;

  std::vector<Tuple>::iterator begin() { return rows_.begin(); }
  std::vector<Tuple>::iterator end() { return rows_.end(); }
  std::vector<Tuple>::const_iterator begin() const { return rows_.begin(); }
  std::vector<Tuple>::const_iterator end() const { return rows_.end(); }

 private:
  const Schema* schema_ = nullptr;
  std::vector<Tuple> rows_;
  size_t capacity_ = kDefaultCapacity;
};

}  // namespace storage
}  // namespace aqp

#endif  // AQP_STORAGE_TUPLE_BATCH_H_
