#ifndef AQP_STORAGE_RELATION_H_
#define AQP_STORAGE_RELATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column_batch.h"
#include "storage/schema.h"
#include "storage/tuple.h"
#include "storage/tuple_batch.h"

namespace aqp {
namespace storage {

/// \brief An in-memory table: a schema plus a row vector.
///
/// Relations are the materialized endpoints of the system — generator
/// output, scan input, and collected join results. The streaming path
/// (exec/stream.h) feeds tuples without materializing a Relation.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  /// The relation's schema.
  const Schema& schema() const { return schema_; }

  /// Number of rows.
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Row access.
  const Tuple& row(size_t i) const { return rows_.at(i); }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Mutable row access (in-place perturbation by the data generator).
  Tuple* mutable_row(size_t i) { return &rows_.at(i); }

  /// Appends a row after validating it against the schema.
  Status Append(Tuple tuple);

  /// Appends without validation (hot generator path; caller guarantees
  /// conformance).
  void AppendUnchecked(Tuple tuple) { rows_.push_back(std::move(tuple)); }

  /// Splices a batch's rows onto the relation without validation,
  /// leaving the batch empty (row-protocol compatibility path).
  void AppendBatchUnchecked(TupleBatch* batch) {
    rows_.reserve(rows_.size() + batch->size());
    for (Tuple& tuple : *batch) {
      rows_.push_back(std::move(tuple));
    }
    batch->Clear();
  }

  /// Materializes a columnar batch's rows onto the relation without
  /// validation (batched CollectAll sink: the only place the columnar
  /// pipeline constructs row payloads).
  void AppendColumnBatchUnchecked(const ColumnBatch& batch) {
    rows_.reserve(rows_.size() + batch.size());
    for (size_t row = 0; row < batch.size(); ++row) {
      rows_.push_back(batch.MaterializeRow(row));
    }
  }

  /// Reserves row capacity.
  void Reserve(size_t n) { rows_.reserve(n); }

  /// Returns the distinct values of a string column, in first-seen
  /// order.
  std::vector<std::string> DistinctStrings(size_t column) const;

  /// Renders the first `limit` rows as an aligned table (debugging).
  std::string ToString(size_t limit = 10) const;

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace storage
}  // namespace aqp

#endif  // AQP_STORAGE_RELATION_H_
