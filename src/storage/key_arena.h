#ifndef AQP_STORAGE_KEY_ARENA_H_
#define AQP_STORAGE_KEY_ARENA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace aqp {
namespace storage {

/// \brief Append-only byte arena for interned join keys.
///
/// Keys are copied once into fixed-size chunks and addressed by a
/// logical 64-bit offset (chunk index in the high bits, byte position
/// in the low bits). Chunks are heap blocks that never move, so the
/// string_views handed out by View() stay valid for the arena's whole
/// lifetime — growth allocates new chunks instead of relocating old
/// bytes. This is the stability guarantee the store-backed indexes
/// rely on (§2.3: key bytes live exactly once, referenced by id).
///
/// A key never spans chunks; interning a key that does not fit in the
/// current chunk's tail starts a new chunk (the tail bytes are wasted,
/// bounded by one max-length key per chunk). Keys longer than a whole
/// chunk go to an overflow list of individually allocated strings.
class KeyArena {
 public:
  KeyArena() = default;

  /// Views into the arena alias its chunks; copying would silently
  /// invalidate none of them but duplicate every byte, so forbid it.
  KeyArena(const KeyArena&) = delete;
  KeyArena& operator=(const KeyArena&) = delete;
  KeyArena(KeyArena&&) noexcept = default;
  KeyArena& operator=(KeyArena&&) noexcept = default;

  /// Copies `bytes` into the arena, returning the logical offset to
  /// pass to View(). The caller keeps the length.
  uint64_t Intern(std::string_view bytes);

  /// The interned bytes at `offset` (must come from Intern, paired
  /// with the length passed to it). Valid for the arena's lifetime.
  std::string_view View(uint64_t offset, uint32_t len) const {
    if (offset & kOverflowBit) {
      return std::string_view(overflow_[offset & ~kOverflowBit].data(), len);
    }
    return std::string_view(
        chunks_[offset >> kChunkShift].get() + (offset & (kChunkBytes - 1)),
        len);
  }

  /// Total payload bytes interned so far (excludes chunk slack).
  size_t payload_bytes() const { return payload_bytes_; }

  /// Heap footprint in bytes: whole chunks plus overflow allocations.
  size_t ApproximateMemoryUsage() const;

 private:
  static constexpr size_t kChunkShift = 16;  // 64 KiB chunks
  static constexpr size_t kChunkBytes = size_t{1} << kChunkShift;
  static constexpr uint64_t kOverflowBit = uint64_t{1} << 63;

  std::vector<std::unique_ptr<char[]>> chunks_;
  size_t used_in_last_ = 0;
  /// Keys longer than a chunk, stored individually. std::string moves
  /// keep the heap buffer, so vector growth does not invalidate views.
  std::vector<std::string> overflow_;
  size_t payload_bytes_ = 0;
};

}  // namespace storage
}  // namespace aqp

#endif  // AQP_STORAGE_KEY_ARENA_H_
