#include "storage/tuple_batch.h"

#include <sstream>

namespace aqp {
namespace storage {

Status TupleBatch::ValidateRows() const {
  if (schema_ == nullptr) {
    return Status::FailedPrecondition("TupleBatch has no schema");
  }
  for (size_t i = 0; i < rows_.size(); ++i) {
    Status s = rows_[i].ValidateAgainst(*schema_);
    if (!s.ok()) {
      return Status::InvalidArgument("row " + std::to_string(i) + ": " +
                                     s.message());
    }
  }
  return Status::OK();
}

std::string TupleBatch::ToString(size_t limit) const {
  std::ostringstream os;
  os << "TupleBatch(" << rows_.size() << "/" << capacity_ << ")";
  const size_t shown = limit == 0 ? rows_.size() : std::min(limit, rows_.size());
  for (size_t i = 0; i < shown; ++i) {
    os << "\n  " << rows_[i].ToString();
  }
  if (shown < rows_.size()) {
    os << "\n  ... " << (rows_.size() - shown) << " more";
  }
  return os.str();
}

}  // namespace storage
}  // namespace aqp
