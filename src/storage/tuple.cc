#include "storage/tuple.h"

#include <sstream>

namespace aqp {
namespace storage {

Status Tuple::ValidateAgainst(const Schema& schema) const {
  if (values_.size() != schema.num_fields()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(values_.size()) +
        " does not match schema arity " +
        std::to_string(schema.num_fields()));
  }
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i].is_null()) continue;
    if (values_[i].type() != schema.field(i).type) {
      return Status::InvalidArgument(
          "column '" + schema.field(i).name + "' expects " +
          ValueTypeName(schema.field(i).type) + " but tuple holds " +
          ValueTypeName(values_[i].type()));
    }
  }
  return Status::OK();
}

Tuple Tuple::Concat(const Tuple& left, const Tuple& right) {
  std::vector<Value> values;
  values.reserve(left.size() + right.size());
  values.insert(values.end(), left.values_.begin(), left.values_.end());
  values.insert(values.end(), right.values_.begin(), right.values_.end());
  return Tuple(std::move(values));
}

std::string Tuple::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) os << ", ";
    os << values_[i].ToString();
  }
  os << ")";
  return os.str();
}

}  // namespace storage
}  // namespace aqp
