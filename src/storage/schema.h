#ifndef AQP_STORAGE_SCHEMA_H_
#define AQP_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/value.h"

namespace aqp {
namespace storage {

/// \brief One named, typed column.
struct Field {
  std::string name;
  ValueType type = ValueType::kString;

  friend bool operator==(const Field& a, const Field& b) {
    return a.name == b.name && a.type == b.type;
  }
  friend bool operator!=(const Field& a, const Field& b) { return !(a == b); }
};

/// \brief An ordered list of fields describing tuple layout.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  /// Number of columns.
  size_t num_fields() const { return fields_.size(); }

  /// Field at position `i` (bounds-checked by assert).
  const Field& field(size_t i) const { return fields_.at(i); }

  /// All fields in order.
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column named `name`, if present.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// Index of the column named `name`, or NotFound.
  Result<size_t> RequireIndexOf(const std::string& name) const;

  /// Schema for the concatenation of this and `other`; duplicate names
  /// from the right side are disambiguated with a suffix.
  Schema ConcatWith(const Schema& other, const std::string& right_suffix) const;

  /// Appends a field and returns the new schema (builder style).
  Schema WithField(Field field) const;

  /// "name:type, name:type, ...".
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_;
  }
  friend bool operator!=(const Schema& a, const Schema& b) {
    return !(a == b);
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace storage
}  // namespace aqp

#endif  // AQP_STORAGE_SCHEMA_H_
