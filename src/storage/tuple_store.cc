#include "storage/tuple_store.h"

#include <algorithm>
#include <numeric>

#include "common/failpoint.h"
#include "common/hash.h"

namespace aqp {
namespace storage {

void TupleStore::EnsureArity(size_t arity) {
  if (columns_.empty() && arity > 0) {
    columns_.resize(arity);
    if (reserve_hint_ > 0) {
      for (PayloadColumn& col : columns_) {
        col.nulls.reserve(reserve_hint_);
      }
    }
  }
  assert(columns_.size() == arity && "tuple arity changed mid-store");
  (void)arity;
}

void TupleStore::AppendNullSlot(PayloadColumn* col) {
  col->nulls.push_back(1);
  switch (col->type) {
    case ValueType::kInt64:
      col->i64.push_back(0);
      break;
    case ValueType::kDouble:
      col->f64.push_back(0.0);
      break;
    case ValueType::kString:
      col->str_offset.push_back(0);
      col->str_len.push_back(0);
      break;
    default:
      break;  // type not latched yet: only the null lane grows
  }
}

void TupleStore::ReserveColumn(PayloadColumn* col, size_t n) {
  col->nulls.reserve(n);
  switch (col->type) {
    case ValueType::kInt64:
      col->i64.reserve(n);
      break;
    case ValueType::kDouble:
      col->f64.reserve(n);
      break;
    case ValueType::kString:
      col->str_offset.reserve(n);
      col->str_len.reserve(n);
      break;
    default:
      break;
  }
}

void TupleStore::LatchColumnType(PayloadColumn* col, ValueType type) const {
  if (col->type == type) return;
  assert(col->type == ValueType::kNull && "cell type changed mid-column");
  col->type = type;
  // Backfill placeholder slots for the leading all-NULL prefix so the
  // value lane stays aligned with the null lane, and apply any pending
  // size hint to the freshly chosen value lane.
  const size_t backlog = col->nulls.size();
  const size_t want = std::max(backlog, reserve_hint_);
  switch (type) {
    case ValueType::kInt64:
      col->i64.reserve(want);
      col->i64.assign(backlog, 0);
      break;
    case ValueType::kDouble:
      col->f64.reserve(want);
      col->f64.assign(backlog, 0.0);
      break;
    case ValueType::kString:
      col->str_offset.reserve(want);
      col->str_offset.assign(backlog, 0);
      col->str_len.reserve(want);
      col->str_len.assign(backlog, 0);
      break;
    default:
      break;
  }
}

void TupleStore::AppendTupleLanes() {
  matched_exactly_.push_back(0);
  matched_any_.push_back(0);
  // Gram lanes are sized lazily by the first Grams() call: a store
  // that only ever probes exactly pays nothing for the cache.
}

TupleId TupleStore::AddRow(const ColumnBatch& batch, size_t row,
                           uint64_t key_hash) {
  // Per-row ingest fault (simulated resource exhaustion); throws, to
  // be contained at the nearest task/operator boundary.
  AQP_FAILPOINT_THROW(fail::site::kStoreAdd);
  const TupleId id = static_cast<TupleId>(keys_.size());
  EnsureArity(batch.num_columns());

  // Intern the join key straight from the batch arena: the copy, the
  // length, and the hash exist exactly once (the hash was computed
  // upstream — batch hash lane or routing exchange).
  const std::string_view key = batch.StringAt(join_column_, row);
  assert(key_hash == Fnv1a64(key) &&
         "precomputed key hash does not match the join attribute");
  KeyRecord record;
  record.len = static_cast<uint32_t>(key.size());
  record.offset = arena_.Intern(key);
  record.hash = key_hash;
  keys_.push_back(record);

  // Payload slice: column-to-column copies, no Tuple/Value in sight.
  // The join column's bytes are already in the key arena; only its
  // null lane grows (materialization reads JoinKey()).
  for (size_t col = 0; col < columns_.size(); ++col) {
    PayloadColumn& dst = columns_[col];
    if (col == join_column_) {
      dst.nulls.push_back(batch.IsNull(col, row) ? 1 : 0);
      continue;
    }
    if (batch.IsNull(col, row)) {
      AppendNullSlot(&dst);
      continue;
    }
    const ValueType type = batch.column_type(col);
    LatchColumnType(&dst, type);
    dst.nulls.push_back(0);
    switch (type) {
      case ValueType::kInt64:
        dst.i64.push_back(batch.Int64At(col, row));
        break;
      case ValueType::kDouble:
        dst.f64.push_back(batch.DoubleAt(col, row));
        break;
      default: {
        const std::string_view bytes = batch.StringAt(col, row);
        dst.str_offset.push_back(payload_arena_.size());
        dst.str_len.push_back(static_cast<uint32_t>(bytes.size()));
        payload_arena_.insert(payload_arena_.end(), bytes.begin(),
                              bytes.end());
        break;
      }
    }
  }

  AppendTupleLanes();
  return id;
}

TupleId TupleStore::Add(Tuple tuple) {
  const uint64_t hash = Fnv1a64(tuple[join_column_].AsString());
  return Add(std::move(tuple), hash);
}

TupleId TupleStore::Add(Tuple tuple, uint64_t key_hash) {
  const TupleId id = static_cast<TupleId>(keys_.size());
  EnsureArity(tuple.size());

  const std::string& key = tuple[join_column_].AsString();
  assert(key_hash == Fnv1a64(key) &&
         "precomputed key hash does not match the join attribute");
  KeyRecord record;
  record.len = static_cast<uint32_t>(key.size());
  record.offset = arena_.Intern(key);
  record.hash = key_hash;
  keys_.push_back(record);

  for (size_t col = 0; col < columns_.size(); ++col) {
    PayloadColumn& dst = columns_[col];
    const Value& v = tuple[col];
    if (col == join_column_) {
      dst.nulls.push_back(v.is_null() ? 1 : 0);
      continue;
    }
    if (v.is_null()) {
      AppendNullSlot(&dst);
      continue;
    }
    LatchColumnType(&dst, v.type());
    dst.nulls.push_back(0);
    switch (v.type()) {
      case ValueType::kInt64:
        dst.i64.push_back(v.AsInt64());
        break;
      case ValueType::kDouble:
        dst.f64.push_back(v.AsDouble());
        break;
      default: {
        const std::string_view bytes = v.AsStringView();
        dst.str_offset.push_back(payload_arena_.size());
        dst.str_len.push_back(static_cast<uint32_t>(bytes.size()));
        payload_arena_.insert(payload_arena_.end(), bytes.begin(),
                              bytes.end());
        break;
      }
    }
  }

  AppendTupleLanes();
  return id;
}

void TupleStore::Reserve(size_t n) {
  reserve_hint_ = std::max(reserve_hint_, n);
  keys_.reserve(n);
  // Value lanes reserve with their latched type; columns whose type is
  // still unknown pick the hint up at latch time (LatchColumnType).
  for (PayloadColumn& col : columns_) {
    ReserveColumn(&col, n);
  }
  matched_exactly_.reserve(n);
  matched_any_.reserve(n);
  // Gram lanes are not reserved here: they stay empty until the first
  // approximate probe asks for a gram set.
}

void TupleStore::AppendCellsTo(TupleId id, ColumnBatch* out,
                               size_t first_out_col) const {
  for (size_t col = 0; col < columns_.size(); ++col) {
    const PayloadColumn& src = columns_[col];
    const size_t out_col = first_out_col + col;
    if (src.nulls[id]) {
      out->AppendNull(out_col);
      continue;
    }
    if (col == join_column_) {
      out->AppendString(out_col, JoinKey(id));
      continue;
    }
    switch (src.type) {
      case ValueType::kInt64:
        out->AppendInt64(out_col, src.i64[id]);
        break;
      case ValueType::kDouble:
        out->AppendDouble(out_col, src.f64[id]);
        break;
      default:
        out->AppendString(
            out_col, std::string_view(payload_arena_.data() +
                                          src.str_offset[id],
                                      src.str_len[id]));
        break;
    }
  }
}

void TupleStore::AppendValuesTo(TupleId id, std::vector<Value>* out) const {
  for (size_t col = 0; col < columns_.size(); ++col) {
    const PayloadColumn& src = columns_[col];
    if (src.nulls[id]) {
      out->emplace_back();
      continue;
    }
    if (col == join_column_) {
      out->emplace_back(std::string(JoinKey(id)));
      continue;
    }
    switch (src.type) {
      case ValueType::kInt64:
        out->emplace_back(src.i64[id]);
        break;
      case ValueType::kDouble:
        out->emplace_back(src.f64[id]);
        break;
      default:
        out->emplace_back(std::string(
            payload_arena_.data() + src.str_offset[id], src.str_len[id]));
        break;
    }
  }
}

Tuple TupleStore::GetTuple(TupleId id) const {
  std::vector<Value> values;
  values.reserve(columns_.size());
  AppendValuesTo(id, &values);
  return Tuple(std::move(values));
}

void TupleStore::EnsureGramLanes() const {
  if (gram_ready_.size() < keys_.size()) {
    gram_sets_.resize(keys_.size());
    gram_ready_.resize(keys_.size(), 0);
  }
}

void TupleStore::MaterializeGrams(TupleId id) const {
  EnsureGramLanes();
  gram_sets_[id] =
      text::GramSet::OfUsingScratch(JoinKey(id), gram_options_,
                                    &gram_scratch_);
  gram_ready_[id] = 1;
}

size_t TupleStore::CountMatchedExactly() const {
  return std::accumulate(matched_exactly_.begin(), matched_exactly_.end(),
                         size_t{0});
}

size_t TupleStore::ApproximateMemoryUsage() const {
  size_t bytes = matched_exactly_.capacity() + matched_any_.capacity();
  bytes += arena_.ApproximateMemoryUsage();
  bytes += keys_.capacity() * sizeof(KeyRecord);
  bytes += payload_arena_.capacity();
  for (const PayloadColumn& col : columns_) {
    bytes += col.nulls.capacity();
    bytes += col.i64.capacity() * sizeof(int64_t);
    bytes += col.f64.capacity() * sizeof(double);
    bytes += col.str_offset.capacity() * sizeof(uint64_t);
    bytes += col.str_len.capacity() * sizeof(uint32_t);
  }
  bytes += gram_sets_.capacity() * sizeof(text::GramSet);
  for (const text::GramSet& set : gram_sets_) {
    bytes += set.grams().capacity() * sizeof(text::GramKey);
  }
  bytes += gram_ready_.capacity();
  bytes += gram_scratch_.capacity() * sizeof(text::GramKey);
  return bytes;
}

}  // namespace storage
}  // namespace aqp
