#include "storage/tuple_store.h"

#include <numeric>

#include "common/hash.h"

namespace aqp {
namespace storage {

TupleId TupleStore::Add(Tuple tuple) {
  const uint64_t hash = Fnv1a64(tuple[join_column_].AsString());
  return Add(std::move(tuple), hash);
}

TupleId TupleStore::Add(Tuple tuple, uint64_t key_hash) {
  const TupleId id = static_cast<TupleId>(tuples_.size());
  // Intern the join key before the tuple is moved into place: the
  // arena copy, the length, and the hash are computed exactly once
  // (here or at the routing exchange), and every later probe/index
  // consumer reads the cached artifacts by id.
  const std::string& key = tuple[join_column_].AsString();
  assert(key_hash == Fnv1a64(key) &&
         "precomputed key hash does not match the join attribute");
  KeyRecord record;
  record.len = static_cast<uint32_t>(key.size());
  record.offset = arena_.Intern(key);
  record.hash = key_hash;
  keys_.push_back(record);
  tuples_.push_back(std::move(tuple));
  matched_exactly_.push_back(0);
  matched_any_.push_back(0);
  if (gram_cache_enabled_) {
    gram_sets_.emplace_back();
    gram_ready_.push_back(0);
  }
  return id;
}

void TupleStore::Reserve(size_t n) {
  tuples_.reserve(n);
  keys_.reserve(n);
  matched_exactly_.reserve(n);
  matched_any_.reserve(n);
  if (gram_cache_enabled_) {
    gram_sets_.reserve(n);
    gram_ready_.reserve(n);
  }
}

void TupleStore::MaterializeGrams(TupleId id) const {
  gram_sets_[id] =
      text::GramSet::OfUsingScratch(JoinKey(id), gram_options_,
                                    &gram_scratch_);
  gram_ready_[id] = 1;
}

size_t TupleStore::CountMatchedExactly() const {
  return std::accumulate(matched_exactly_.begin(), matched_exactly_.end(),
                         size_t{0});
}

size_t TupleStore::ApproximateMemoryUsage() const {
  size_t bytes = matched_exactly_.capacity() + matched_any_.capacity();
  bytes += arena_.ApproximateMemoryUsage();
  bytes += keys_.capacity() * sizeof(KeyRecord);
  bytes += tuples_.capacity() * sizeof(Tuple);
  for (const Tuple& t : tuples_) {
    bytes += t.size() * sizeof(Value);
    for (const Value& v : t.values()) {
      if (v.type() == ValueType::kString) bytes += v.AsString().capacity();
    }
  }
  bytes += gram_sets_.capacity() * sizeof(text::GramSet);
  for (const text::GramSet& set : gram_sets_) {
    bytes += set.grams().capacity() * sizeof(text::GramKey);
  }
  bytes += gram_ready_.capacity();
  bytes += gram_scratch_.capacity() * sizeof(text::GramKey);
  return bytes;
}

}  // namespace storage
}  // namespace aqp
