#include "storage/tuple_store.h"

#include <numeric>

namespace aqp {
namespace storage {

TupleId TupleStore::Add(Tuple tuple) {
  const TupleId id = static_cast<TupleId>(tuples_.size());
  tuples_.push_back(std::move(tuple));
  matched_exactly_.push_back(0);
  matched_any_.push_back(0);
  return id;
}

size_t TupleStore::CountMatchedExactly() const {
  return std::accumulate(matched_exactly_.begin(), matched_exactly_.end(),
                         size_t{0});
}

size_t TupleStore::ApproximateMemoryUsage() const {
  size_t bytes = matched_exactly_.capacity() + matched_any_.capacity();
  bytes += tuples_.capacity() * sizeof(Tuple);
  for (const Tuple& t : tuples_) {
    bytes += t.size() * sizeof(Value);
    for (const Value& v : t.values()) {
      if (v.type() == ValueType::kString) bytes += v.AsString().capacity();
    }
  }
  return bytes;
}

}  // namespace storage
}  // namespace aqp
