#include "storage/value.h"

#include <sstream>

namespace aqp {
namespace storage {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt64;
    case 2:
      return ValueType::kDouble;
    case 3:
      return ValueType::kString;
  }
  return ValueType::kNull;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

bool operator<(const Value& a, const Value& b) {
  if (a.data_.index() != b.data_.index()) {
    return a.data_.index() < b.data_.index();
  }
  return a.data_ < b.data_;
}

}  // namespace storage
}  // namespace aqp
