#include "storage/value.h"

#include "common/string_util.h"

namespace aqp {
namespace storage {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble:
      // Shortest round-trip form, shared with CsvWriter::Field(double)
      // — the two renderings previously disagreed (ostream default
      // precision 6 here vs std::to_chars there).
      return FormatDoubleShortest(AsDouble());
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

bool operator<(const Value& a, const Value& b) {
  if (a.data_.index() != b.data_.index()) {
    return a.data_.index() < b.data_.index();
  }
  return a.data_ < b.data_;
}

}  // namespace storage
}  // namespace aqp
