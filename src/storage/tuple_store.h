#ifndef AQP_STORAGE_TUPLE_STORE_H_
#define AQP_STORAGE_TUPLE_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/tuple.h"

namespace aqp {
namespace storage {

/// Dense id of a tuple within one side's TupleStore.
using TupleId = uint32_t;

/// \brief Append-only store of the tuples one join input has produced
/// so far.
///
/// The paper (§2.3) stores each scanned tuple exactly once per operand;
/// both the exact hash table and the q-gram index reference tuples by
/// id. The store also carries the per-tuple "has been matched exactly
/// at least once" flag that §3.3 uses to attribute variants to one
/// input.
class TupleStore {
 public:
  /// Constructs a store whose join attribute is at `join_column`.
  explicit TupleStore(size_t join_column) : join_column_(join_column) {}

  /// Appends a tuple, returning its dense id.
  TupleId Add(Tuple tuple);

  /// Number of stored tuples.
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Tuple access by id.
  const Tuple& Get(TupleId id) const { return tuples_[id]; }

  /// Join-attribute value of a stored tuple.
  const std::string& JoinKey(TupleId id) const {
    return tuples_[id].at(join_column_).AsString();
  }

  /// Column holding the join attribute.
  size_t join_column() const { return join_column_; }

  /// \name Matched-exactly flags (§3.3).
  /// @{
  bool MatchedExactly(TupleId id) const { return matched_exactly_[id] != 0; }
  void SetMatchedExactly(TupleId id) { matched_exactly_[id] = 1; }
  /// Number of tuples with the flag set.
  size_t CountMatchedExactly() const;
  /// @}

  /// \name Matched-at-least-once flags (any kind). The monitor's
  /// completeness statistic counts distinct matched child tuples.
  /// @{
  bool MatchedAny(TupleId id) const { return matched_any_[id] != 0; }
  /// Sets the flag; returns true iff it was previously clear.
  bool SetMatchedAny(TupleId id) {
    const bool first = matched_any_[id] == 0;
    matched_any_[id] = 1;
    return first;
  }
  /// Number of tuples matched at least once.
  size_t matched_any_count() const { return matched_any_count_; }
  void IncrementMatchedAnyCount() { ++matched_any_count_; }
  /// @}

  /// Rough heap footprint in bytes (tuples + flags), for the §2.3
  /// space analysis.
  size_t ApproximateMemoryUsage() const;

 private:
  size_t join_column_;
  std::vector<Tuple> tuples_;
  std::vector<uint8_t> matched_exactly_;
  std::vector<uint8_t> matched_any_;
  size_t matched_any_count_ = 0;
};

}  // namespace storage
}  // namespace aqp

#endif  // AQP_STORAGE_TUPLE_STORE_H_
