#ifndef AQP_STORAGE_TUPLE_STORE_H_
#define AQP_STORAGE_TUPLE_STORE_H_

#include <cassert>
#include <cstdint>
#include <string_view>
#include <vector>

#include "storage/column_batch.h"
#include "storage/key_arena.h"
#include "storage/tuple.h"
#include "text/qgram.h"

namespace aqp {
namespace storage {

/// Dense id of a tuple within one side's TupleStore.
using TupleId = uint32_t;

/// \brief Append-only *columnar* store of the tuples one join input has
/// produced so far — and the single source of truth for every derived
/// join-key artifact.
///
/// The paper (§2.3) stores each scanned tuple exactly once per operand;
/// both the exact hash table and the q-gram index reference tuples by
/// id. The store owns, per tuple:
///
/// - the payload, held as typed per-column vectors (int64, double, or
///   {offset, len} slots into a payload byte arena) with per-column
///   null lanes. The join column's bytes are *not* duplicated into the
///   payload arena — they live once in the key arena (below) and
///   materialization reads them back through JoinKey(). Ingesting from
///   a ColumnBatch row (AddRow) copies plain bytes between arenas and
///   typed vectors: no Tuple, no Value, no per-cell heap allocation
///   ever exists on this path;
/// - the *interned join key*: its bytes are copied once into a stable
///   byte arena at add time together with a {offset, len, hash}
///   record, so JoinKey() returns a string_view (no std::string
///   re-reads), KeyHash() returns the 64-bit hash computed exactly
///   once (here or upstream in the batch's key-hash lane / the routing
///   exchange), and key equality downstream is (hash, arena
///   byte-compare);
/// - optionally the tuple's q-gram set (gram-cache mode), computed at
///   most once and shared by the q-gram index and the SSHJoin
///   candidate verifier;
/// - the per-tuple "has been matched exactly at least once" flag that
///   §3.3 uses to attribute variants to one input, plus the
///   matched-at-least-once flag behind the completeness statistic.
///
/// JoinKey() views and cached hashes are stable across store growth
/// (the key arena never relocates bytes); Grams() references are
/// stable until the next add. Payload accessors (AppendCellsTo /
/// AppendValuesTo / GetTuple) copy bytes out, so they are unaffected
/// by growth.
class TupleStore {
 public:
  /// Constructs a store whose join attribute is at `join_column`.
  explicit TupleStore(size_t join_column) : join_column_(join_column) {}

  /// Same, with the gram cache enabled: Grams() serves each stored
  /// tuple's q-gram set under `gram_options`, extracted at most once.
  TupleStore(size_t join_column, const text::QGramOptions& gram_options)
      : join_column_(join_column),
        gram_options_(gram_options),
        gram_cache_enabled_(true) {}

  /// Ingests row `row` of `batch` — the native columnar path: the key
  /// view comes straight out of the batch's arena, `key_hash` from its
  /// hash lane (must equal Fnv1a64 of the key bytes), and the payload
  /// slice is copied column-to-column.
  TupleId AddRow(const ColumnBatch& batch, size_t row, uint64_t key_hash);

  /// Appends a tuple (row-protocol compatibility adapter: decomposes
  /// the tuple into the columnar payload). Interns the join key and
  /// caches its hash.
  TupleId Add(Tuple tuple);

  /// Same, with the key hash already computed by the caller. `key_hash`
  /// must equal Fnv1a64 of the tuple's join attribute.
  TupleId Add(Tuple tuple, uint64_t key_hash);

  /// Reserves room for `n` tuples across all per-tuple vectors
  /// (bulk-load paths with known cardinality hints).
  void Reserve(size_t n);

  /// Number of stored tuples.
  size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }

  /// Payload columns per tuple (0 until the first add).
  size_t num_columns() const { return columns_.size(); }

  /// \name Payload access (materialization sinks).
  /// @{
  /// Appends tuple `id`'s cells to `out` starting at output column
  /// `first_out_col`, without committing the row — the join sinks
  /// splice left cells, right cells, and the similarity column into
  /// one output row. String bytes are copied arena-to-arena.
  void AppendCellsTo(TupleId id, ColumnBatch* out,
                     size_t first_out_col) const;

  /// Appends tuple `id`'s cells as Values (row materialization).
  void AppendValuesTo(TupleId id, std::vector<Value>* out) const;

  /// Materializes tuple `id` as a row (compatibility/debug paths; the
  /// columnar sinks use AppendCellsTo instead).
  Tuple GetTuple(TupleId id) const;
  /// @}

  /// Join-attribute value of a stored tuple, viewed from the intern
  /// arena. Valid for the store's whole lifetime.
  std::string_view JoinKey(TupleId id) const {
    const KeyRecord& key = keys_[id];
    return arena_.View(key.offset, key.len);
  }

  /// 64-bit FNV-1a hash of JoinKey(id), computed once at add time.
  uint64_t KeyHash(TupleId id) const { return keys_[id].hash; }

  /// Byte length of JoinKey(id).
  uint32_t KeyLength(TupleId id) const { return keys_[id].len; }

  /// Column holding the join attribute.
  size_t join_column() const { return join_column_; }

  /// \name Gram cache (SSHJoin probe artifacts).
  /// @{
  bool gram_cache_enabled() const { return gram_cache_enabled_; }
  /// Extraction options of the cache (gram-cache mode only).
  const text::QGramOptions& gram_options() const { return gram_options_; }
  /// Gram set of a stored tuple, extracted on first request and
  /// memoized. Requires gram-cache mode. The reference is valid until
  /// the next add. The cache lanes themselves are sized lazily, so a
  /// store that only ever probes exactly (SHJoin) never grows them.
  const text::GramSet& Grams(TupleId id) const {
    assert(gram_cache_enabled_ && "TupleStore gram cache not enabled");
    if (id >= gram_ready_.size() || !gram_ready_[id]) MaterializeGrams(id);
    return gram_sets_[id];
  }
  /// @}

  /// \name Matched-exactly flags (§3.3).
  /// @{
  bool MatchedExactly(TupleId id) const { return matched_exactly_[id] != 0; }
  void SetMatchedExactly(TupleId id) { matched_exactly_[id] = 1; }
  /// Number of tuples with the flag set.
  size_t CountMatchedExactly() const;
  /// @}

  /// \name Matched-at-least-once flags (any kind). The monitor's
  /// completeness statistic counts distinct matched child tuples.
  /// @{
  bool MatchedAny(TupleId id) const { return matched_any_[id] != 0; }
  /// Sets the flag; returns true iff it was previously clear.
  bool SetMatchedAny(TupleId id) {
    const bool first = matched_any_[id] == 0;
    matched_any_[id] = 1;
    return first;
  }
  /// Number of tuples matched at least once.
  size_t matched_any_count() const { return matched_any_count_; }
  void IncrementMatchedAnyCount() { ++matched_any_count_; }
  /// @}

  /// Rough heap footprint in bytes (payload columns + arenas + key
  /// records + gram cache + flags), for the §2.3 space analysis.
  size_t ApproximateMemoryUsage() const;

 private:
  /// Interned-key record: where the key bytes live in the arena, and
  /// the hash computed once at add time.
  struct KeyRecord {
    uint64_t hash = 0;
    uint64_t offset = 0;
    uint32_t len = 0;
  };

  /// One payload column. The type is latched from the first non-null
  /// cell the column sees (the store is schema-free: every producer
  /// feeds rows of one schema, so cell types are consistent per
  /// column); until then only the null lane grows, and the latch
  /// backfills placeholder slots for the leading nulls. The join
  /// column's lane stays empty — its bytes live in the key arena.
  struct PayloadColumn {
    ValueType type = ValueType::kNull;
    std::vector<uint8_t> nulls;
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<uint64_t> str_offset;
    std::vector<uint32_t> str_len;
  };

  /// Fixes the payload arity on first add; asserts it afterwards.
  void EnsureArity(size_t arity);

  /// Appends one NULL slot to `col` (null lane + placeholder in the
  /// latched value lane) — the one place the placeholder convention
  /// lives.
  static void AppendNullSlot(PayloadColumn* col);

  /// Reserves `col`'s value lane for `n` rows according to its latched
  /// type.
  static void ReserveColumn(PayloadColumn* col, size_t n);

  /// Grows the lazily sized gram lanes to cover every stored tuple.
  void EnsureGramLanes() const;

  /// Latches `col`'s type, backfilling placeholder slots for rows
  /// already stored as NULL.
  void LatchColumnType(PayloadColumn* col, ValueType type) const;

  /// Appends the bookkeeping lanes (flags, gram cache) of one tuple.
  void AppendTupleLanes();

  /// Out-of-line slow path of Grams(): extract, memoize, mark ready.
  void MaterializeGrams(TupleId id) const;

  size_t join_column_;
  KeyArena arena_;
  std::vector<KeyRecord> keys_;
  /// Typed payload columns; the string cells' bytes live here.
  std::vector<PayloadColumn> columns_;
  std::vector<char> payload_arena_;
  std::vector<uint8_t> matched_exactly_;
  std::vector<uint8_t> matched_any_;
  size_t matched_any_count_ = 0;
  size_t reserve_hint_ = 0;

  text::QGramOptions gram_options_{};
  bool gram_cache_enabled_ = false;
  /// Lazily filled per-tuple gram sets (mutable: memoization cache
  /// behind a logically-const accessor; the engine is single-threaded).
  /// The lanes are also lazily *sized* — first Grams() call grows them
  /// to the store's size — so exact-only probing pays nothing for the
  /// cache's existence.
  mutable std::vector<text::GramSet> gram_sets_;
  mutable std::vector<uint8_t> gram_ready_;
  /// Reusable gram-extraction scratch shared by all cache fills.
  mutable std::vector<text::GramKey> gram_scratch_;
};

}  // namespace storage
}  // namespace aqp

#endif  // AQP_STORAGE_TUPLE_STORE_H_
