#ifndef AQP_STORAGE_TUPLE_STORE_H_
#define AQP_STORAGE_TUPLE_STORE_H_

#include <cassert>
#include <cstdint>
#include <string_view>
#include <vector>

#include "storage/key_arena.h"
#include "storage/tuple.h"
#include "text/qgram.h"

namespace aqp {
namespace storage {

/// Dense id of a tuple within one side's TupleStore.
using TupleId = uint32_t;

/// \brief Append-only store of the tuples one join input has produced
/// so far — and the single source of truth for every derived join-key
/// artifact.
///
/// The paper (§2.3) stores each scanned tuple exactly once per operand;
/// both the exact hash table and the q-gram index reference tuples by
/// id. The store therefore owns, per tuple:
///
/// - the payload Tuple itself;
/// - the *interned join key*: its bytes are copied once into a stable
///   byte arena at Add() time together with a {offset, len, hash}
///   record, so JoinKey() returns a string_view (no std::string
///   re-reads), KeyHash() returns the 64-bit hash computed exactly
///   once, and key equality downstream is (hash, arena byte-compare);
/// - optionally the tuple's q-gram set (gram-cache mode), computed at
///   most once and shared by the q-gram index and the SSHJoin
///   candidate verifier, so no probe ever re-runs gram extraction for
///   a stored tuple;
/// - the per-tuple "has been matched exactly at least once" flag that
///   §3.3 uses to attribute variants to one input, plus the
///   matched-at-least-once flag behind the completeness statistic.
///
/// JoinKey() views and cached hashes are stable across store growth
/// (the arena never relocates bytes); Grams() references are stable
/// until the next Add().
class TupleStore {
 public:
  /// Constructs a store whose join attribute is at `join_column`.
  explicit TupleStore(size_t join_column) : join_column_(join_column) {}

  /// Same, with the gram cache enabled: Grams() serves each stored
  /// tuple's q-gram set under `gram_options`, extracted at most once.
  TupleStore(size_t join_column, const text::QGramOptions& gram_options)
      : join_column_(join_column),
        gram_options_(gram_options),
        gram_cache_enabled_(true) {}

  /// Appends a tuple, returning its dense id. Interns the join key and
  /// caches its hash.
  TupleId Add(Tuple tuple);

  /// Same, with the key hash already computed by the caller (the
  /// parallel exchange hashes the key to pick a shard; the shard's
  /// store then caches that hash instead of re-hashing). `key_hash`
  /// must equal Fnv1a64 of the tuple's join attribute.
  TupleId Add(Tuple tuple, uint64_t key_hash);

  /// Reserves room for `n` tuples across all per-tuple vectors
  /// (bulk-load paths with known cardinality hints).
  void Reserve(size_t n);

  /// Number of stored tuples.
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Tuple access by id.
  const Tuple& Get(TupleId id) const { return tuples_[id]; }

  /// Join-attribute value of a stored tuple, viewed from the intern
  /// arena. Valid for the store's whole lifetime.
  std::string_view JoinKey(TupleId id) const {
    const KeyRecord& key = keys_[id];
    return arena_.View(key.offset, key.len);
  }

  /// 64-bit FNV-1a hash of JoinKey(id), computed once at Add().
  uint64_t KeyHash(TupleId id) const { return keys_[id].hash; }

  /// Byte length of JoinKey(id).
  uint32_t KeyLength(TupleId id) const { return keys_[id].len; }

  /// Column holding the join attribute.
  size_t join_column() const { return join_column_; }

  /// \name Gram cache (SSHJoin probe artifacts).
  /// @{
  bool gram_cache_enabled() const { return gram_cache_enabled_; }
  /// Extraction options of the cache (gram-cache mode only).
  const text::QGramOptions& gram_options() const { return gram_options_; }
  /// Gram set of a stored tuple, extracted on first request and
  /// memoized. Requires gram-cache mode. The reference is valid until
  /// the next Add().
  const text::GramSet& Grams(TupleId id) const {
    assert(gram_cache_enabled_ && "TupleStore gram cache not enabled");
    if (!gram_ready_[id]) MaterializeGrams(id);
    return gram_sets_[id];
  }
  /// @}

  /// \name Matched-exactly flags (§3.3).
  /// @{
  bool MatchedExactly(TupleId id) const { return matched_exactly_[id] != 0; }
  void SetMatchedExactly(TupleId id) { matched_exactly_[id] = 1; }
  /// Number of tuples with the flag set.
  size_t CountMatchedExactly() const;
  /// @}

  /// \name Matched-at-least-once flags (any kind). The monitor's
  /// completeness statistic counts distinct matched child tuples.
  /// @{
  bool MatchedAny(TupleId id) const { return matched_any_[id] != 0; }
  /// Sets the flag; returns true iff it was previously clear.
  bool SetMatchedAny(TupleId id) {
    const bool first = matched_any_[id] == 0;
    matched_any_[id] = 1;
    return first;
  }
  /// Number of tuples matched at least once.
  size_t matched_any_count() const { return matched_any_count_; }
  void IncrementMatchedAnyCount() { ++matched_any_count_; }
  /// @}

  /// Rough heap footprint in bytes (tuples + key arena + key records +
  /// gram cache + flags), for the §2.3 space analysis.
  size_t ApproximateMemoryUsage() const;

 private:
  /// Interned-key record: where the key bytes live in the arena, and
  /// the hash computed once at Add() time.
  struct KeyRecord {
    uint64_t hash = 0;
    uint64_t offset = 0;
    uint32_t len = 0;
  };

  /// Out-of-line slow path of Grams(): extract, memoize, mark ready.
  void MaterializeGrams(TupleId id) const;

  size_t join_column_;
  KeyArena arena_;
  std::vector<Tuple> tuples_;
  std::vector<KeyRecord> keys_;
  std::vector<uint8_t> matched_exactly_;
  std::vector<uint8_t> matched_any_;
  size_t matched_any_count_ = 0;

  text::QGramOptions gram_options_{};
  bool gram_cache_enabled_ = false;
  /// Lazily filled per-tuple gram sets (mutable: memoization cache
  /// behind a logically-const accessor; the engine is single-threaded).
  mutable std::vector<text::GramSet> gram_sets_;
  mutable std::vector<uint8_t> gram_ready_;
  /// Reusable gram-extraction scratch shared by all cache fills.
  mutable std::vector<text::GramKey> gram_scratch_;
};

}  // namespace storage
}  // namespace aqp

#endif  // AQP_STORAGE_TUPLE_STORE_H_
