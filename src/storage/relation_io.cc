#include "storage/relation_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "common/macros.h"

namespace aqp {
namespace storage {

void WriteRelationCsv(const Relation& relation, std::ostream* out) {
  CsvWriter csv(out);
  std::vector<std::string> header;
  header.reserve(relation.schema().num_fields());
  for (const Field& f : relation.schema().fields()) header.push_back(f.name);
  csv.WriteRow(header);

  std::vector<std::string> row(relation.schema().num_fields());
  for (const Tuple& tuple : relation.rows()) {
    for (size_t c = 0; c < tuple.size(); ++c) {
      const Value& v = tuple.at(c);
      switch (v.type()) {
        case ValueType::kNull:
          row[c].clear();
          break;
        case ValueType::kInt64:
          row[c] = std::to_string(v.AsInt64());
          break;
        case ValueType::kDouble: {
          std::ostringstream os;
          os.precision(17);  // round-trippable
          os << v.AsDouble();
          row[c] = os.str();
          break;
        }
        case ValueType::kString:
          row[c] = v.AsString();
          break;
      }
    }
    csv.WriteRow(row);
  }
}

namespace {

Result<Value> ParseCell(const std::string& text, const Field& field,
                        size_t line) {
  if (text.empty() && field.type != ValueType::kString) {
    return Value();  // NULL
  }
  switch (field.type) {
    case ValueType::kNull:
      return Value();
    case ValueType::kInt64: {
      char* end = nullptr;
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument(
            "line " + std::to_string(line) + ", column '" + field.name +
            "': not an integer: '" + text + "'");
      }
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument(
            "line " + std::to_string(line) + ", column '" + field.name +
            "': not a number: '" + text + "'");
      }
      return Value(v);
    }
    case ValueType::kString:
      return Value(text);
  }
  return Status::Internal("unreachable value type");
}

}  // namespace

Result<Relation> ReadRelationCsv(const Schema& schema, std::istream* in) {
  std::stringstream buffer;
  buffer << in->rdbuf();
  std::vector<std::vector<std::string>> rows;
  AQP_RETURN_IF_ERROR(ParseCsv(buffer.str(), &rows));
  if (rows.empty()) {
    return Status::InvalidArgument("CSV input is empty (no header row)");
  }
  // Validate the header against the schema.
  const std::vector<std::string>& header = rows.front();
  if (header.size() != schema.num_fields()) {
    return Status::InvalidArgument(
        "CSV header has " + std::to_string(header.size()) +
        " columns but the schema expects " +
        std::to_string(schema.num_fields()));
  }
  for (size_t c = 0; c < header.size(); ++c) {
    if (header[c] != schema.field(c).name) {
      return Status::InvalidArgument(
          "CSV header column " + std::to_string(c) + " is '" + header[c] +
          "' but the schema expects '" + schema.field(c).name + "'");
    }
  }

  Relation relation(schema);
  relation.Reserve(rows.size() - 1);
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& cells = rows[r];
    if (cells.size() != schema.num_fields()) {
      return Status::InvalidArgument(
          "line " + std::to_string(r + 1) + " has " +
          std::to_string(cells.size()) + " cells, expected " +
          std::to_string(schema.num_fields()));
    }
    Tuple tuple;
    for (size_t c = 0; c < cells.size(); ++c) {
      Value value;
      AQP_ASSIGN_OR_RETURN(value, ParseCell(cells[c], schema.field(c), r + 1));
      tuple.Append(std::move(value));
    }
    relation.AppendUnchecked(std::move(tuple));
  }
  return relation;
}

Status WriteRelationCsvFile(const Relation& relation,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  WriteRelationCsv(relation, &out);
  out.flush();
  if (!out) {
    return Status::IOError("write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<Relation> ReadRelationCsvFile(const Schema& schema,
                                     const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  return ReadRelationCsv(schema, &in);
}

}  // namespace storage
}  // namespace aqp
