#ifndef AQP_STORAGE_RELATION_IO_H_
#define AQP_STORAGE_RELATION_IO_H_

#include <istream>
#include <ostream>
#include <string>

#include "common/result.h"
#include "storage/relation.h"

namespace aqp {
namespace storage {

/// \brief CSV import/export for relations — how real feeds enter and
/// leave the engine outside of the synthetic generators.
/// @{

/// Writes `relation` as CSV with a header row of column names.
/// Doubles are written with enough digits to round-trip.
void WriteRelationCsv(const Relation& relation, std::ostream* out);

/// Reads a CSV with a header row into a relation typed by `schema`.
/// The header must match the schema's column names in order. Cells are
/// parsed per column type; empty cells become NULL. Fails with
/// InvalidArgument on header/type mismatches (line number included).
Result<Relation> ReadRelationCsv(const Schema& schema, std::istream* in);

/// Convenience: file-path variants.
Status WriteRelationCsvFile(const Relation& relation,
                            const std::string& path);
Result<Relation> ReadRelationCsvFile(const Schema& schema,
                                     const std::string& path);
/// @}

}  // namespace storage
}  // namespace aqp

#endif  // AQP_STORAGE_RELATION_IO_H_
