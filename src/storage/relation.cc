#include "storage/relation.h"

#include <sstream>
#include <unordered_set>

#include "common/macros.h"
#include "common/table_printer.h"

namespace aqp {
namespace storage {

Status Relation::Append(Tuple tuple) {
  AQP_RETURN_IF_ERROR(tuple.ValidateAgainst(schema_));
  rows_.push_back(std::move(tuple));
  return Status::OK();
}

std::vector<std::string> Relation::DistinctStrings(size_t column) const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  seen.reserve(rows_.size());
  for (const Tuple& t : rows_) {
    const std::string& s = t[column].AsString();
    if (seen.insert(s).second) out.push_back(s);
  }
  return out;
}

std::string Relation::ToString(size_t limit) const {
  std::vector<std::string> headers;
  for (const Field& f : schema_.fields()) headers.push_back(f.name);
  TablePrinter printer(headers);
  for (size_t i = 0; i < rows_.size() && i < limit; ++i) {
    std::vector<std::string> cells;
    for (const Value& v : rows_[i].values()) cells.push_back(v.ToString());
    printer.AddRow(std::move(cells));
  }
  std::ostringstream os;
  printer.Print(os);
  if (rows_.size() > limit) {
    os << "... (" << rows_.size() - limit << " more rows)\n";
  }
  return os.str();
}

}  // namespace storage
}  // namespace aqp
