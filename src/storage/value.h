#ifndef AQP_STORAGE_VALUE_H_
#define AQP_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>

namespace aqp {
namespace storage {

/// \brief Supported column types.
enum class ValueType { kNull = 0, kInt64, kDouble, kString };

/// Canonical name of a value type ("int64", ...).
const char* ValueTypeName(ValueType type);

/// \brief A dynamically typed cell value.
///
/// The engine joins on string attributes (record linkage), but tuples
/// routinely carry numeric payload columns (ids, severities, dates as
/// int64 epoch days), so Value supports the minimal closed set of types
/// the experiments need.
class Value {
 public:
  /// Constructs a NULL value.
  Value() : data_(std::monostate{}) {}
  /// Constructs an int64 value (implicit for terse row literals).
  Value(int64_t v) : data_(v) {}      // NOLINT(google-explicit-constructor)
  Value(int v) : data_(int64_t{v}) {}  // NOLINT(google-explicit-constructor)
  /// Constructs a double value.
  Value(double v) : data_(v) {}  // NOLINT(google-explicit-constructor)
  /// Constructs a string value.
  Value(std::string v)  // NOLINT(google-explicit-constructor)
      : data_(std::move(v)) {}
  Value(const char* v)  // NOLINT(google-explicit-constructor)
      : data_(std::string(v)) {}

  /// Moves are noexcept so vector growth in the hot batch paths moves
  /// values instead of copying them (std::vector falls back to copies
  /// when the move constructor may throw).
  Value(const Value&) = default;
  Value(Value&&) noexcept = default;
  Value& operator=(const Value&) = default;
  Value& operator=(Value&&) noexcept = default;

  /// The runtime type of the value. Inline: the variant's alternative
  /// order mirrors ValueType (checked below), and the batch-fill loops
  /// ask per cell.
  ValueType type() const { return static_cast<ValueType>(data_.index()); }

  bool is_null() const { return data_.index() == 0; }

  /// \name Typed accessors. Calling the wrong accessor is a programming
  /// error (asserts in debug builds, undefined otherwise).
  /// @{
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  std::string_view AsStringView() const {
    return std::get<std::string>(data_);
  }
  /// @}

  /// Human-readable rendering ("NULL", "42", "3.14", "abc").
  std::string ToString() const;

  /// Total ordering: by type id first, then by value. NULL < everything.
  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b);

 private:
  using Data = std::variant<std::monostate, int64_t, double, std::string>;
  Data data_;

  // type() casts the variant index straight to ValueType; keep the
  // alternative order and the enum in lockstep.
  static_assert(std::is_same_v<std::variant_alternative_t<
                                   static_cast<size_t>(ValueType::kNull), Data>,
                               std::monostate>);
  static_assert(
      std::is_same_v<std::variant_alternative_t<
                         static_cast<size_t>(ValueType::kInt64), Data>,
                     int64_t>);
  static_assert(
      std::is_same_v<std::variant_alternative_t<
                         static_cast<size_t>(ValueType::kDouble), Data>,
                     double>);
  static_assert(
      std::is_same_v<std::variant_alternative_t<
                         static_cast<size_t>(ValueType::kString), Data>,
                     std::string>);
};

}  // namespace storage
}  // namespace aqp

#endif  // AQP_STORAGE_VALUE_H_
