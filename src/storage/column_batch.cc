#include "storage/column_batch.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/hash.h"

namespace aqp {
namespace storage {

void ColumnBatch::DieArenaOverflow() {
  std::fprintf(stderr,
               "ColumnBatch: string arena exceeds the 4 GiB addressed by "
               "its 32-bit offsets (batch far beyond intended capacity)\n");
  std::abort();
}

void ColumnBatch::Reset(const Schema* schema, size_t capacity) {
  if (capacity > 0) capacity_ = capacity;
  if (schema == schema_ && schema != nullptr &&
      columns_.size() == schema->num_fields()) {
    // Steady-state refill: same layout, keep every allocation.
    Clear();
    return;
  }
  schema_ = schema;
  columns_.clear();
  arena_.clear();
  key_hashes_.clear();
  num_rows_ = 0;
  committed_arena_ = 0;
  if (schema_ == nullptr) return;
  columns_.resize(schema_->num_fields());
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].type = schema_->field(i).type;
    columns_[i].nulls.reserve(capacity_);
    switch (columns_[i].type) {
      case ValueType::kInt64:
        columns_[i].i64.reserve(capacity_);
        break;
      case ValueType::kDouble:
        columns_[i].f64.reserve(capacity_);
        break;
      default:
        columns_[i].offset.reserve(capacity_);
        columns_[i].len.reserve(capacity_);
        break;
    }
  }
}

void ColumnBatch::Clear() {
  for (Column& c : columns_) {
    c.nulls.clear();
    c.i64.clear();
    c.f64.clear();
    c.offset.clear();
    c.len.clear();
  }
  arena_.clear();
  key_hashes_.clear();
  num_rows_ = 0;
  committed_arena_ = 0;
}

void ColumnBatch::AbandonRow() {
  // A cell append always grows the null lane and the matching value
  // lane together, so any column whose null lane is ahead of the
  // committed row count holds exactly the in-flight row's cell.
  for (Column& c : columns_) {
    if (c.nulls.size() <= num_rows_) continue;
    c.nulls.resize(num_rows_);
    switch (c.type) {
      case ValueType::kInt64:
        c.i64.resize(num_rows_);
        break;
      case ValueType::kDouble:
        c.f64.resize(num_rows_);
        break;
      default:
        c.offset.resize(num_rows_);
        c.len.resize(num_rows_);
        break;
    }
  }
  arena_.resize(committed_arena_);
}

void ColumnBatch::AppendTupleRow(const Tuple& tuple) {
  assert(tuple.size() == columns_.size() &&
         "tuple arity does not match batch schema");
  for (size_t col = 0; col < columns_.size(); ++col) {
    const Value& v = tuple[col];
    if (v.is_null()) {
      AppendNull(col);
      continue;
    }
    switch (columns_[col].type) {
      case ValueType::kInt64:
        AppendInt64(col, v.AsInt64());
        break;
      case ValueType::kDouble:
        AppendDouble(col, v.AsDouble());
        break;
      default:
        AppendString(col, v.AsStringView());
        break;
    }
  }
  CommitRow();
}

void ColumnBatch::AppendTupleRows(const Tuple* rows, size_t count) {
  for (size_t col = 0; col < columns_.size(); ++col) {
    Column& c = columns_[col];
    switch (c.type) {
      case ValueType::kInt64:
        for (size_t i = 0; i < count; ++i) {
          const Value& v = rows[i][col];
          if (v.is_null()) {
            c.nulls.push_back(1);
            c.i64.push_back(0);
          } else {
            c.nulls.push_back(0);
            c.i64.push_back(v.AsInt64());
          }
        }
        break;
      case ValueType::kDouble:
        for (size_t i = 0; i < count; ++i) {
          const Value& v = rows[i][col];
          if (v.is_null()) {
            c.nulls.push_back(1);
            c.f64.push_back(0.0);
          } else {
            c.nulls.push_back(0);
            c.f64.push_back(v.AsDouble());
          }
        }
        break;
      default:
        for (size_t i = 0; i < count; ++i) {
          const Value& v = rows[i][col];
          if (v.is_null()) {
            c.nulls.push_back(1);
            c.offset.push_back(0);
            c.len.push_back(0);
          } else {
            const std::string_view bytes = v.AsStringView();
            if (arena_.size() + bytes.size() > UINT32_MAX) {
              DieArenaOverflow();
            }
            c.nulls.push_back(0);
            c.offset.push_back(static_cast<uint32_t>(arena_.size()));
            c.len.push_back(static_cast<uint32_t>(bytes.size()));
            arena_.insert(arena_.end(), bytes.begin(), bytes.end());
          }
        }
        break;
    }
  }
  num_rows_ += count;
  committed_arena_ = arena_.size();
}

void ColumnBatch::AppendRowFrom(const ColumnBatch& src, size_t row) {
  assert(src.num_columns() == num_columns() &&
         "column scatter between different layouts");
  for (size_t col = 0; col < columns_.size(); ++col) {
    if (src.IsNull(col, row)) {
      AppendNull(col);
      continue;
    }
    switch (columns_[col].type) {
      case ValueType::kInt64:
        AppendInt64(col, src.Int64At(col, row));
        break;
      case ValueType::kDouble:
        AppendDouble(col, src.DoubleAt(col, row));
        break;
      default:
        AppendString(col, src.StringAt(col, row));
        break;
    }
  }
  if (!src.key_hashes_.empty()) {
    key_hashes_.push_back(src.key_hashes_[row]);
  }
  CommitRow();
}

Value ColumnBatch::ValueAt(size_t col, size_t row) const {
  if (IsNull(col, row)) return Value();
  switch (columns_[col].type) {
    case ValueType::kInt64:
      return Value(Int64At(col, row));
    case ValueType::kDouble:
      return Value(DoubleAt(col, row));
    default:
      return Value(std::string(StringAt(col, row)));
  }
}

void ColumnBatch::MaterializeRowInto(size_t row,
                                     std::vector<Value>* out) const {
  for (size_t col = 0; col < columns_.size(); ++col) {
    out->push_back(ValueAt(col, row));
  }
}

Tuple ColumnBatch::MaterializeRow(size_t row) const {
  std::vector<Value> values;
  values.reserve(columns_.size());
  MaterializeRowInto(row, &values);
  return Tuple(std::move(values));
}

void ColumnBatch::ComputeKeyHashes(size_t col) {
  key_hashes_.clear();
  key_hashes_.reserve(num_rows_);
  const Column& c = columns_[col];
  assert(c.type == ValueType::kString && "join-key column must be string");
  for (size_t row = 0; row < num_rows_; ++row) {
    key_hashes_.push_back(Fnv1a64(
        std::string_view(arena_.data() + c.offset[row], c.len[row])));
  }
}

uint64_t ColumnBatch::ApproximateMemoryUsage() const {
  uint64_t bytes = arena_.capacity();
  bytes += key_hashes_.capacity() * sizeof(uint64_t);
  bytes += columns_.capacity() * sizeof(Column);
  for (const Column& c : columns_) {
    bytes += c.nulls.capacity() * sizeof(uint8_t);
    bytes += c.i64.capacity() * sizeof(int64_t);
    bytes += c.f64.capacity() * sizeof(double);
    bytes += c.offset.capacity() * sizeof(uint32_t);
    bytes += c.len.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

Status ColumnBatch::Validate() const {
  if (schema_ == nullptr) {
    return Status::FailedPrecondition("ColumnBatch has no schema");
  }
  if (columns_.size() != schema_->num_fields()) {
    return Status::Internal("column count does not match schema");
  }
  for (size_t col = 0; col < columns_.size(); ++col) {
    const Column& c = columns_[col];
    if (c.nulls.size() != num_rows_) {
      return Status::Internal("column " + std::to_string(col) +
                              " null lane misaligned");
    }
    size_t lane = 0;
    switch (c.type) {
      case ValueType::kInt64:
        lane = c.i64.size();
        break;
      case ValueType::kDouble:
        lane = c.f64.size();
        break;
      default:
        lane = c.offset.size();
        if (c.len.size() != lane) {
          return Status::Internal("column " + std::to_string(col) +
                                  " string lanes misaligned");
        }
        break;
    }
    if (lane != num_rows_) {
      return Status::Internal("column " + std::to_string(col) +
                              " value lane misaligned");
    }
  }
  if (!key_hashes_.empty() && key_hashes_.size() != num_rows_) {
    return Status::Internal("key-hash lane misaligned");
  }
  return Status::OK();
}

std::string ColumnBatch::ToString(size_t limit) const {
  std::ostringstream os;
  os << "ColumnBatch(" << num_rows_ << "/" << capacity_ << ")";
  const size_t shown = limit == 0 ? num_rows_ : std::min(limit, num_rows_);
  for (size_t row = 0; row < shown; ++row) {
    os << "\n  " << MaterializeRow(row).ToString();
  }
  if (shown < num_rows_) {
    os << "\n  ... " << (num_rows_ - shown) << " more";
  }
  return os.str();
}

}  // namespace storage
}  // namespace aqp
