#ifndef AQP_STORAGE_TUPLE_H_
#define AQP_STORAGE_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace aqp {
namespace storage {

/// \brief One row: an ordered vector of values.
///
/// Tuples are schema-less at runtime (the schema travels with the
/// operator/relation); ValidateAgainst checks conformance where it
/// matters (relation inserts, operator boundaries in debug paths).
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  /// Moves are noexcept so batch/relation vector growth relocates rows
  /// by move (see Value for the rationale).
  Tuple(const Tuple&) = default;
  Tuple(Tuple&&) noexcept = default;
  Tuple& operator=(const Tuple&) = default;
  Tuple& operator=(Tuple&&) noexcept = default;

  /// Number of cells.
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Bounds-checked cell access (validation and debug paths; throws
  /// std::out_of_range on a bad index).
  const Value& at(size_t i) const { return values_.at(i); }
  Value& at(size_t i) { return values_.at(i); }

  /// Unchecked cell access for hot paths (join probes, stores, sinks)
  /// where the index is schema-derived and already validated.
  const Value& operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }

  const std::vector<Value>& values() const { return values_; }

  /// Appends a value.
  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Checks arity and per-cell type (NULL matches any type).
  Status ValidateAgainst(const Schema& schema) const;

  /// Concatenation of two tuples (join output construction).
  static Tuple Concat(const Tuple& left, const Tuple& right);

  /// "(v1, v2, ...)".
  std::string ToString() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }

 private:
  std::vector<Value> values_;
};

}  // namespace storage
}  // namespace aqp

#endif  // AQP_STORAGE_TUPLE_H_
