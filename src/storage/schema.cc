#include "storage/schema.h"

#include <sstream>
#include <unordered_set>

namespace aqp {
namespace storage {

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::RequireIndexOf(const std::string& name) const {
  if (auto idx = IndexOf(name)) return *idx;
  return Status::NotFound("no column named '" + name + "' in schema " +
                          ToString());
}

Schema Schema::ConcatWith(const Schema& other,
                          const std::string& right_suffix) const {
  std::unordered_set<std::string> left_names;
  for (const Field& f : fields_) left_names.insert(f.name);
  std::vector<Field> fields = fields_;
  fields.reserve(fields_.size() + other.fields_.size());
  for (const Field& f : other.fields_) {
    Field renamed = f;
    if (left_names.count(renamed.name) > 0) {
      renamed.name += right_suffix;
    }
    fields.push_back(std::move(renamed));
  }
  return Schema(std::move(fields));
}

Schema Schema::WithField(Field field) const {
  std::vector<Field> fields = fields_;
  fields.push_back(std::move(field));
  return Schema(std::move(fields));
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) os << ", ";
    os << fields_[i].name << ":" << ValueTypeName(fields_[i].type);
  }
  os << "]";
  return os.str();
}

}  // namespace storage
}  // namespace aqp
