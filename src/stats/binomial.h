#ifndef AQP_STATS_BINOMIAL_H_
#define AQP_STATS_BINOMIAL_H_

#include <cstdint>

namespace aqp {
namespace stats {

/// \brief Binomial(n, p) distribution helpers.
///
/// The paper's monitor models the observed result size after n steps as
/// O_n ~ bin(n, p(n)) (§3.2) and flags a statistically significant
/// shortfall when the lower-tail probability P(X <= observed) drops
/// below θ_out. Cdf() therefore has to be *exact* and cheap for n up to
/// the input cardinalities; it is evaluated through the regularized
/// incomplete beta function rather than by summation.
class Binomial {
 public:
  /// Constructs the distribution; p is clamped to [0, 1].
  Binomial(uint64_t n, double p);

  uint64_t n() const { return n_; }
  double p() const { return p_; }

  double Mean() const;
  double Variance() const;

  /// log P(X = k); -inf when the outcome is impossible.
  double LogPmf(uint64_t k) const;

  /// P(X = k).
  double Pmf(uint64_t k) const;

  /// P(X <= k). Uses I_{1-p}(n-k, k+1).
  double Cdf(int64_t k) const;

  /// P(X > k) = 1 - Cdf(k).
  double Survival(int64_t k) const;

  /// Smallest k with Cdf(k) >= q, for q in (0, 1]. Binary search over
  /// the CDF; used to derive detection-latency bounds in tests.
  uint64_t Quantile(double q) const;

 private:
  uint64_t n_;
  double p_;
};

/// Lower-tail p-value P(X <= observed) for X ~ bin(n, p) — the σ
/// predicate's test statistic (Eq. 1 in the paper).
double BinomialLowerTailPValue(uint64_t observed, uint64_t n, double p);

}  // namespace stats
}  // namespace aqp

#endif  // AQP_STATS_BINOMIAL_H_
