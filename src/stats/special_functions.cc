#include "stats/special_functions.h"

#include <cassert>
#include <cmath>

namespace aqp {
namespace stats {

double LogBeta(double a, double b) {
  assert(a > 0 && b > 0);
  return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

double LogBinomialCoefficient(unsigned long long n, unsigned long long k) {
  assert(k <= n);
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

namespace {

/// Continued-fraction kernel for the incomplete beta function
/// (Numerical Recipes "betacf", modified Lentz algorithm).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 500;
  constexpr double kEpsilon = 1e-15;
  constexpr double kFloor = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFloor) d = kFloor;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFloor) d = kFloor;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFloor) c = kFloor;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFloor) d = kFloor;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFloor) c = kFloor;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  assert(a > 0 && b > 0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double log_front =
      a * std::log(x) + b * std::log1p(-x) - LogBeta(a, b);
  const double front = std::exp(log_front);
  // Use the expansion that converges fast for the given x.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

}  // namespace stats
}  // namespace aqp
