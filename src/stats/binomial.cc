#include "stats/binomial.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/special_functions.h"

namespace aqp {
namespace stats {

Binomial::Binomial(uint64_t n, double p)
    : n_(n), p_(std::clamp(p, 0.0, 1.0)) {}

double Binomial::Mean() const { return static_cast<double>(n_) * p_; }

double Binomial::Variance() const {
  return static_cast<double>(n_) * p_ * (1.0 - p_);
}

double Binomial::LogPmf(uint64_t k) const {
  if (k > n_) return -std::numeric_limits<double>::infinity();
  if (p_ == 0.0) {
    return k == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  if (p_ == 1.0) {
    return k == n_ ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  const double kd = static_cast<double>(k);
  const double nd = static_cast<double>(n_);
  return LogBinomialCoefficient(n_, k) + kd * std::log(p_) +
         (nd - kd) * std::log1p(-p_);
}

double Binomial::Pmf(uint64_t k) const {
  const double lp = LogPmf(k);
  return std::isinf(lp) ? 0.0 : std::exp(lp);
}

double Binomial::Cdf(int64_t k) const {
  if (k < 0) return 0.0;
  const uint64_t ku = static_cast<uint64_t>(k);
  if (ku >= n_) return 1.0;
  if (p_ == 0.0) return 1.0;  // X == 0 <= k for any k >= 0
  if (p_ == 1.0) return 0.0;  // X == n > k
  // P(X <= k) = I_{1-p}(n-k, k+1).
  const double a = static_cast<double>(n_ - ku);
  const double b = static_cast<double>(ku) + 1.0;
  return RegularizedIncompleteBeta(a, b, 1.0 - p_);
}

double Binomial::Survival(int64_t k) const { return 1.0 - Cdf(k); }

uint64_t Binomial::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  uint64_t lo = 0;
  uint64_t hi = n_;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (Cdf(static_cast<int64_t>(mid)) >= q) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

double BinomialLowerTailPValue(uint64_t observed, uint64_t n, double p) {
  return Binomial(n, p).Cdf(static_cast<int64_t>(observed));
}

}  // namespace stats
}  // namespace aqp
