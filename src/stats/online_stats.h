#ifndef AQP_STATS_ONLINE_STATS_H_
#define AQP_STATS_ONLINE_STATS_H_

#include <cstdint>
#include <limits>

namespace aqp {
namespace stats {

/// \brief Streaming mean/variance/min/max (Welford's algorithm).
///
/// Used by the weight-calibration benchmark to aggregate per-step
/// elapsed times per state (§4.3) without storing samples.
class OnlineStats {
 public:
  /// Incorporates one observation.
  void Add(double x);

  /// Merges another accumulator (parallel aggregation).
  void Merge(const OnlineStats& other);

  uint64_t count() const { return count_; }
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance (0 with fewer than two samples).
  double Variance() const;
  double StdDev() const;
  double Min() const { return count_ == 0 ? 0.0 : min_; }
  double Max() const { return count_ == 0 ? 0.0 : max_; }
  double Sum() const { return mean_ * static_cast<double>(count_); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace stats
}  // namespace aqp

#endif  // AQP_STATS_ONLINE_STATS_H_
