#include "stats/completeness_model.h"

#include <algorithm>

#include "stats/binomial.h"

namespace aqp {
namespace stats {

std::optional<uint64_t> ParentChildBinomialModel::EffectiveParentSize(
    const JoinProgress& progress) const {
  if (parent_table_size_ > 0) return parent_table_size_;
  if (progress.parent_exhausted && progress.parents_scanned > 0) {
    return progress.parents_scanned;
  }
  return std::nullopt;
}

double ParentChildBinomialModel::ExpectedMatches(
    const JoinProgress& progress) const {
  auto size = EffectiveParentSize(progress);
  if (!size.has_value() || *size == 0) return 0.0;
  const double p = std::min(
      1.0, static_cast<double>(progress.parents_scanned) /
               static_cast<double>(*size));
  return p * static_cast<double>(progress.children_scanned);
}

std::optional<double> ParentChildBinomialModel::ShortfallPValue(
    const JoinProgress& progress) const {
  auto size = EffectiveParentSize(progress);
  if (!size.has_value() || *size == 0) return std::nullopt;
  if (progress.children_scanned == 0) return std::nullopt;
  const double p = std::min(
      1.0, static_cast<double>(progress.parents_scanned) /
               static_cast<double>(*size));
  return BinomialLowerTailPValue(progress.children_matched,
                                 progress.children_scanned, p);
}

FixedRateModel::FixedRateModel(double match_rate, uint64_t parent_table_size)
    : match_rate_(std::clamp(match_rate, 0.0, 1.0)),
      parent_table_size_(parent_table_size) {}

double FixedRateModel::ExpectedMatches(const JoinProgress& progress) const {
  double parent_fraction = 1.0;
  if (parent_table_size_ > 0) {
    parent_fraction = std::min(
        1.0, static_cast<double>(progress.parents_scanned) /
                 static_cast<double>(parent_table_size_));
  }
  return match_rate_ * parent_fraction *
         static_cast<double>(progress.children_scanned);
}

std::optional<double> FixedRateModel::ShortfallPValue(
    const JoinProgress& progress) const {
  if (progress.children_scanned == 0) return std::nullopt;
  double parent_fraction = 1.0;
  if (parent_table_size_ > 0) {
    parent_fraction = std::min(
        1.0, static_cast<double>(progress.parents_scanned) /
                 static_cast<double>(parent_table_size_));
  }
  const double p = match_rate_ * parent_fraction;
  return BinomialLowerTailPValue(progress.children_matched,
                                 progress.children_scanned, p);
}

}  // namespace stats
}  // namespace aqp
