#ifndef AQP_STATS_SPECIAL_FUNCTIONS_H_
#define AQP_STATS_SPECIAL_FUNCTIONS_H_

namespace aqp {
namespace stats {

/// Natural log of the Beta function B(a, b). Requires a, b > 0.
double LogBeta(double a, double b);

/// Natural log of the binomial coefficient C(n, k). Requires
/// 0 <= k <= n.
double LogBinomialCoefficient(unsigned long long n, unsigned long long k);

/// \brief Regularized incomplete beta function I_x(a, b).
///
/// Computed with the Lentz continued-fraction expansion (the classic
/// Numerical Recipes `betacf` scheme), accurate to ~1e-12 over the
/// parameter ranges the binomial tests use (a, b up to ~1e7).
/// Requires a, b > 0; x is clamped to [0, 1].
double RegularizedIncompleteBeta(double a, double b, double x);

}  // namespace stats
}  // namespace aqp

#endif  // AQP_STATS_SPECIAL_FUNCTIONS_H_
