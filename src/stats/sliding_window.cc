#include "stats/sliding_window.h"

#include <algorithm>
#include <cassert>

namespace aqp {
namespace stats {

SlidingWindowCounter::SlidingWindowCounter(size_t window)
    : ring_(std::max<size_t>(1, window), 0) {}

void SlidingWindowCounter::Advance(uint32_t events_at_step) {
  head_ = (head_ + 1) % ring_.size();
  sum_ -= ring_[head_];  // retire the slot being overwritten
  ring_[head_] = events_at_step;
  sum_ += events_at_step;
  ++steps_;
}

void SlidingWindowCounter::AddToCurrent(uint32_t events) {
  ring_[head_] += events;
  sum_ += events;
}

void SlidingWindowCounter::Reset() {
  std::fill(ring_.begin(), ring_.end(), 0u);
  head_ = 0;
  sum_ = 0;
  steps_ = 0;
}

}  // namespace stats
}  // namespace aqp
