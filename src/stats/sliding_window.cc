#include "stats/sliding_window.h"

#include <algorithm>
#include <cassert>

namespace aqp {
namespace stats {

SlidingWindowCounter::SlidingWindowCounter(size_t window)
    : ring_(std::max<size_t>(1, window), 0) {}

void SlidingWindowCounter::Advance(uint32_t events_at_step) {
  // Events recorded via AddToCurrent() before the first Advance() have
  // no step of their own yet; they belong to the first real step. Left
  // in the pre-advance slot they would be retired when the ring wraps
  // back to it — one slot earlier than a full window of W steps — so
  // carry them into the slot this Advance() opens.
  uint32_t carried = 0;
  if (steps_ == 0 && ring_[head_] != 0) {
    carried = ring_[head_];
    ring_[head_] = 0;  // sum_ keeps them; they move, not retire
  }
  head_ = (head_ + 1) % ring_.size();
  sum_ -= ring_[head_];  // retire the slot being overwritten
  ring_[head_] = events_at_step + carried;
  sum_ += events_at_step;
  ++steps_;
}

void SlidingWindowCounter::AddToCurrent(uint32_t events) {
  ring_[head_] += events;
  sum_ += events;
}

void SlidingWindowCounter::Reset() {
  std::fill(ring_.begin(), ring_.end(), 0u);
  head_ = 0;
  sum_ = 0;
  steps_ = 0;
}

}  // namespace stats
}  // namespace aqp
