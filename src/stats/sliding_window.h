#ifndef AQP_STATS_SLIDING_WINDOW_H_
#define AQP_STATS_SLIDING_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aqp {
namespace stats {

/// \brief Rolling event counter over the most recent W steps.
///
/// The monitor (§3.5) counts the number of approximate matches observed
/// within the interval [t - W, t] per input (A_{t,W}). One Advance()
/// call per join step pushes that step's event count; Sum() is the
/// windowed total, maintained in O(1) via a ring buffer.
class SlidingWindowCounter {
 public:
  /// Constructs a counter over a window of `window` steps (>= 1).
  explicit SlidingWindowCounter(size_t window);

  /// Pushes the event count of the newest step, retiring the oldest.
  void Advance(uint32_t events_at_step);

  /// Adds events to the *current* newest step (events arriving before
  /// the step boundary is advanced). Events added before the first
  /// Advance() count toward the first step and are retired with it,
  /// exactly W advances later.
  void AddToCurrent(uint32_t events);

  /// Total events within the window.
  uint64_t Sum() const { return sum_; }

  /// Window size W.
  size_t window() const { return ring_.size(); }

  /// Number of Advance() calls so far.
  uint64_t steps() const { return steps_; }

  /// A_{t,W} / W, the relative frequency the µ predicate thresholds.
  double Density() const {
    return static_cast<double>(sum_) / static_cast<double>(ring_.size());
  }

  /// Clears all counts.
  void Reset();

 private:
  std::vector<uint32_t> ring_;
  size_t head_ = 0;  // slot holding the newest step
  uint64_t sum_ = 0;
  uint64_t steps_ = 0;
};

}  // namespace stats
}  // namespace aqp

#endif  // AQP_STATS_SLIDING_WINDOW_H_
