#ifndef AQP_STATS_COMPLETENESS_MODEL_H_
#define AQP_STATS_COMPLETENESS_MODEL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace aqp {
namespace stats {

/// \brief Snapshot of join progress the monitor hands to the model.
struct JoinProgress {
  /// Tuples scanned so far from the parent (reference) input.
  uint64_t parents_scanned = 0;
  /// Tuples scanned so far from the child input.
  uint64_t children_scanned = 0;
  /// Distinct child tuples that have found at least one match.
  uint64_t children_matched = 0;
  /// True once the parent input is exhausted.
  bool parent_exhausted = false;
};

/// \brief Statistical model of the expected join result size.
///
/// The assessor asks the model for the lower-tail p-value of the
/// observed match count; values at or below θ_out constitute the σ
/// predicate (Eq. 1). Models may answer nullopt when they cannot
/// assess yet (e.g. unknown parent cardinality).
class CompletenessModel {
 public:
  virtual ~CompletenessModel() = default;

  /// Expected number of matched children at this progress point.
  virtual double ExpectedMatches(const JoinProgress& progress) const = 0;

  /// P(X <= children_matched) under the model's distribution, or
  /// nullopt if the model cannot assess at this progress point.
  virtual std::optional<double> ShortfallPValue(
      const JoinProgress& progress) const = 0;

  /// Model name for traces.
  virtual std::string name() const = 0;
};

/// \brief The paper's parent-child binomial model (§3.2).
///
/// Assumes every child tuple matches exactly one parent in a parent
/// table of known size |R|; after scanning n_R parents and n_S
/// children, the number of matched children is
/// Binomial(n_S, min(1, n_R/|R|)).
class ParentChildBinomialModel : public CompletenessModel {
 public:
  /// `parent_table_size` is |R|; pass 0 if unknown, in which case the
  /// model only assesses once the parent input is exhausted (using the
  /// observed count as |R|).
  explicit ParentChildBinomialModel(uint64_t parent_table_size)
      : parent_table_size_(parent_table_size) {}

  double ExpectedMatches(const JoinProgress& progress) const override;
  std::optional<double> ShortfallPValue(
      const JoinProgress& progress) const override;
  std::string name() const override { return "parent_child_binomial"; }

  uint64_t parent_table_size() const { return parent_table_size_; }

 private:
  /// Effective |R| at this progress point, or nullopt if unknown.
  std::optional<uint64_t> EffectiveParentSize(
      const JoinProgress& progress) const;

  uint64_t parent_table_size_;
};

/// \brief Model with a fixed expected match *rate* per child tuple.
///
/// A simpler alternative when no parent-child relationship holds but a
/// historical match rate is known (e.g. from a previous integration
/// run); included to keep the assessor decoupled from the paper's
/// specific assumption.
class FixedRateModel : public CompletenessModel {
 public:
  /// `match_rate` in [0, 1]: expected fraction of children matched
  /// once the whole parent input has been scanned.
  FixedRateModel(double match_rate, uint64_t parent_table_size);

  double ExpectedMatches(const JoinProgress& progress) const override;
  std::optional<double> ShortfallPValue(
      const JoinProgress& progress) const override;
  std::string name() const override { return "fixed_rate"; }

 private:
  double match_rate_;
  uint64_t parent_table_size_;
};

}  // namespace stats
}  // namespace aqp

#endif  // AQP_STATS_COMPLETENESS_MODEL_H_
