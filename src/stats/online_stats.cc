#include "stats/online_stats.h"

#include <algorithm>
#include <cmath>

namespace aqp {
namespace stats {

void OnlineStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::StdDev() const { return std::sqrt(Variance()); }

}  // namespace stats
}  // namespace aqp
