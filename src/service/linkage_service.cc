#include "service/linkage_service.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"

namespace aqp {
namespace service {

using exec::parallel::EpochDirective;
using exec::parallel::EpochView;
using exec::parallel::ParallelAdaptiveJoin;
using exec::parallel::ParallelJoinOptions;
using exec::parallel::ParallelMatchRef;

namespace {

size_t ResolveWorkers(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max<size_t>(1, hw);
}

size_t ResolveShards(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max<size_t>(1, std::min<unsigned>(hw == 0 ? 1 : hw, 64));
}

}  // namespace

LinkageService::LinkageService(ServiceOptions options)
    : options_(options),
      pool_(ResolveWorkers(options.worker_threads)),
      admission_(options.admission),
      governor_(options.governor) {
  const size_t runners = options.admission.max_concurrent_queries;
  runners_.reserve(runners);
  for (size_t i = 0; i < runners; ++i) {
    runners_.emplace_back([this] { RunnerLoop(); });
  }
  if (options_.governor.watchdog_enabled()) {
    monitor_ = std::thread([this] { MonitorLoop(); });
  }
}

LinkageService::~LinkageService() {
  {
    sync::MutexLock lock(&mu_);
    shutdown_ = true;
    // Queued queries never run; running ones see the cancel flag at
    // their next epoch control point.
    for (auto& [id, q] : queries_) {
      if (!IsTerminalState(q->state)) {
        q->cancel_requested.store(true, std::memory_order_relaxed);
        if (q->state == QueryState::kQueued) {
          q->state = QueryState::kCancelled;
          q->final_status = Status::Cancelled("service shut down");
          q->stats.state = q->state;
          q->stats.status = q->final_status;
        }
      }
    }
    queue_.clear();
  }
  state_changed_.NotifyAll();
  for (std::thread& runner : runners_) {
    runner.join();
  }
  if (monitor_.joinable()) {
    monitor_.join();
  }
}

Result<QueryId> LinkageService::Submit(exec::Operator* left,
                                       exec::Operator* right,
                                       QueryOptions options) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument(
        "LinkageService::Submit: null child operator");
  }
  // Admission-boundary fault: a rejected submission must leave no
  // trace in the registry or the budget.
  AQP_FAILPOINT(fail::site::kServiceAdmit);
  auto record = std::make_unique<QueryRecord>();
  record->options = std::move(options);
  record->left = left;
  record->right = right;
  // Effective budget and stall tolerance: the query's own values, the
  // service defaults where unset.
  record->memory = governor_.EffectiveBudget(record->options.memory);
  record->stall_timeout = record->options.stall_timeout.count() > 0
                              ? record->options.stall_timeout
                              : options_.governor.stall_timeout;

  sync::MutexLock lock(&mu_);
  if (shutdown_) {
    return Status::FailedPrecondition(
        "LinkageService::Submit: service is shutting down");
  }
  // Global high-water: shed new work while the aggregate footprint of
  // running queries is at or above the line. Shedding (rather than
  // queueing) keeps the overload visible to the caller immediately.
  if (!admission_.MemoryCanAdmit(governor_.used())) {
    admission_.RecordMemoryShed();
    return Status::ResourceExhausted(
               "LinkageService::Submit: global memory high-water reached")
        .WithContext(std::string("site=") + resource_site::kGlobalHighWater);
  }
  // Resolve and clamp the shard budget up front: admission accounting
  // needs the real number, and shard count never changes results.
  record->shards = admission_.ClampShards(
      ResolveShards(record->options.join.num_shards));
  record->options.join.num_shards = record->shards;
  const QueryId id = next_id_++;
  record->id = id;
  record->stats.shards = record->shards;
  queries_.emplace(id, std::move(record));
  queue_.push_back(id);
  state_changed_.NotifyAll();
  return id;
}

Status LinkageService::Cancel(QueryId id) {
  sync::MutexLock lock(&mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("LinkageService::Cancel: unknown query " +
                            std::to_string(id));
  }
  QueryRecord* q = it->second.get();
  if (IsTerminalState(q->state)) return Status::OK();
  q->cancel_requested.store(true, std::memory_order_relaxed);
  if (q->state == QueryState::kQueued) {
    queue_.erase(std::remove(queue_.begin(), queue_.end(), id),
                 queue_.end());
    q->state = QueryState::kCancelled;
    q->final_status = Status::Cancelled("cancelled while queued");
    q->stats.state = q->state;
    q->stats.status = q->final_status;
    state_changed_.NotifyAll();
  }
  // A running query tears down at its next epoch control point, via
  // the governor — between epochs every shard is quiescent, so no
  // phase task of this query is left behind on the pool. The notify
  // also cuts a retry backoff sleep short, so cancellation is prompt
  // even mid-backoff.
  state_changed_.NotifyAll();
  return Status::OK();
}

Result<QueryStats> LinkageService::Wait(QueryId id) {
  sync::MutexLock lock(&mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("LinkageService::Wait: unknown query " +
                            std::to_string(id));
  }
  QueryRecord* q = it->second.get();
  while (!IsTerminalState(q->state)) {
    state_changed_.Wait(mu_);
  }
  return q->stats;
}

Result<storage::Relation> LinkageService::TakeResult(QueryId id) {
  sync::MutexLock lock(&mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("LinkageService::TakeResult: unknown query " +
                            std::to_string(id));
  }
  QueryRecord* q = it->second.get();
  while (!IsTerminalState(q->state)) {
    state_changed_.Wait(mu_);
  }
  if (q->state != QueryState::kDone) {
    return q->final_status.ok()
               ? Status::FailedPrecondition("query did not complete")
               : q->final_status;
  }
  if (q->result_taken || !q->result.has_value()) {
    return Status::FailedPrecondition(
        "LinkageService::TakeResult: result already taken for query " +
        std::to_string(id));
  }
  q->result_taken = true;
  storage::Relation out = std::move(*q->result);
  q->result.reset();
  return out;
}

Result<QueryState> LinkageService::state(QueryId id) const {
  sync::MutexLock lock(&mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("LinkageService::state: unknown query " +
                            std::to_string(id));
  }
  return it->second->state;
}

size_t LinkageService::running_queries() const {
  sync::MutexLock lock(&mu_);
  return admission_.running_queries();
}

size_t LinkageService::queued_queries() const {
  sync::MutexLock lock(&mu_);
  return queue_.size();
}

size_t LinkageService::peak_running_queries() const {
  sync::MutexLock lock(&mu_);
  return admission_.peak_running_queries();
}

size_t LinkageService::peak_shards_in_use() const {
  sync::MutexLock lock(&mu_);
  return admission_.peak_shards_in_use();
}

size_t LinkageService::shards_in_use() const {
  sync::MutexLock lock(&mu_);
  return admission_.shards_in_use();
}

size_t LinkageService::admitted_total() const {
  sync::MutexLock lock(&mu_);
  return admission_.admitted_total();
}

size_t LinkageService::released_total() const {
  sync::MutexLock lock(&mu_);
  return admission_.released_total();
}

size_t LinkageService::memory_shed_total() const {
  sync::MutexLock lock(&mu_);
  return admission_.memory_shed_total();
}

size_t LinkageService::watchdog_finalized_total() const {
  sync::MutexLock lock(&mu_);
  return watchdog_finalized_total_;
}

size_t LinkageService::pressure_finalized_total() const {
  sync::MutexLock lock(&mu_);
  return pressure_finalized_total_;
}

LinkageService::QueryRecord* LinkageService::FrontRunnableLocked() {
  // Strict FIFO: only the front of the queue is considered. Skipping
  // ahead when the front's shard budget does not fit would let narrow
  // queries starve a wide one forever.
  if (queue_.empty()) return nullptr;
  // Global memory pressure also holds the front back (the line clears
  // when a running query finishes and drops its budget subtree, which
  // notifies state_changed_).
  if (!admission_.MemoryCanAdmit(governor_.used())) return nullptr;
  QueryRecord* q = queries_.at(queue_.front()).get();
  return admission_.CanAdmit(q->shards) ? q : nullptr;
}

void LinkageService::RunnerLoop() {
  mu_.Lock();
  while (true) {
    while (!shutdown_ && FrontRunnableLocked() == nullptr) {
      state_changed_.Wait(mu_);
    }
    QueryRecord* q = FrontRunnableLocked();
    if (q == nullptr) {
      if (shutdown_) {
        mu_.Unlock();
        return;
      }
      continue;
    }
    queue_.pop_front();
    admission_.Admit(q->shards);
    q->state = QueryState::kRunning;
    q->started = std::chrono::steady_clock::now();
    // Hang the query under the global budget tree when anything will
    // read it: its own budget, the admission high-water, or pressure
    // reclaim. Ungoverned queries skip the whole accounting path.
    if (q->memory.any() ||
        admission_.options().global_memory_high_water_bytes > 0 ||
        options_.governor.finalize_youngest_on_pressure) {
      q->budget_node = governor_.MakeQueryNode(q->id);
    }
    state_changed_.NotifyAll();
    mu_.Unlock();
    // Finish() releases the admission slot atomically with the
    // terminal state transition, so a Wait()er never observes a done
    // query still holding budget.
    ExecuteQuery(q);
    mu_.Lock();
  }
}

void LinkageService::StampHeartbeat(QueryRecord* q) {
  q->heartbeat_ns.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count(),
      std::memory_order_relaxed);
}

EpochDirective LinkageService::Govern(QueryRecord* q, const EpochView& view) {
  StampHeartbeat(q);
  // Deterministic stall probe (`watchdog.stall`): hold this control
  // point — heartbeat deliberately stale — until the watchdog notices
  // and force-finalizes, or the query is cancelled. Only evaluated for
  // queries with a stall tolerance, so the site is inert in generic
  // chaos bursts that arm every known site. Holding is only safe while
  // a monitor thread exists to notice the stale heartbeat.
  if (q->stall_timeout.count() > 0 && options_.governor.watchdog_enabled() &&
      fail::AnyArmed()) {
    bool stalled = false;
    try {
      stalled = !fail::Check(fail::site::kWatchdogStall).ok();
    } catch (const fail::InjectedFault&) {
      stalled = true;
    }
    while (stalled && !q->force_finalize.load(std::memory_order_relaxed) &&
           !q->cancel_requested.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  if (q->cancel_requested.load(std::memory_order_relaxed)) {
    return EpochDirective::kCancel;
  }
  if (q->force_finalize.load(std::memory_order_relaxed)) {
    return EpochDirective::kFinalize;
  }
  const DeadlineOptions& d = q->options.deadline;
  const auto elapsed = std::chrono::steady_clock::now() - q->started;
  const bool past_hard =
      (d.hard_deadline_steps > 0 && view.steps >= d.hard_deadline_steps) ||
      (d.hard_deadline.count() > 0 && elapsed >= d.hard_deadline);
  if (past_hard) return EpochDirective::kFinalize;
  if (q->memory.any()) {
    // Budget charge: the engine refreshed the accounting tree right
    // before this hook, so view.memory_bytes is this control point's
    // footprint. Growth since the previous charge feeds the predictive
    // hard bound — finalize *before* the next epoch would overshoot.
    const uint64_t used = view.memory_bytes;
    const uint64_t growth =
        used > q->prev_charge_bytes ? used - q->prev_charge_bytes : 0;
    q->prev_charge_bytes = used;
    q->max_growth_bytes = std::max(q->max_growth_bytes, growth);
    // Forecast the next epoch's allocation as 2x the largest jump seen:
    // the stores grow by capacity doubling, and a container that
    // doubled before adds exactly twice that when it doubles again.
    // The first charge deliberately counts the whole upfront footprint
    // as one jump, so a hard budget under 3x the first-control-point
    // floor finalizes right there. That is aggressive for queries that
    // would have stayed flat, but it is what keeps the recorded peak
    // at or under the budget when the next control point is far away
    // (or never comes): a query can blow through its whole remaining
    // headroom in the very first epoch after the baseline, and a
    // delta-only forecast would not see it coming.
    switch (ResourceGovernor::Charge(used, 2 * q->max_growth_bytes,
                                     q->memory)) {
      case ResourceDecision::kFinalizePartial: {
        sync::MutexLock lock(&mu_);
        if (!q->resource.has_value()) {
          ResourceReport report;
          report.peak_bytes =
              q->budget_node != nullptr ? q->budget_node->peak() : used;
          report.budget_bytes = q->memory.hard_bytes;
          report.site = resource_site::kQueryHardBudget;
          report.status =
              Status::ResourceExhausted("per-query hard memory budget reached")
                  .WithContext(std::string("site=") +
                               resource_site::kQueryHardBudget);
          q->resource = std::move(report);
        }
        return EpochDirective::kFinalize;
      }
      case ResourceDecision::kClampExact:
        q->memory_clamped = true;  // runner-thread-owned while running
        q->forced_exact = true;
        return EpochDirective::kForceExactOnly;
      case ResourceDecision::kProceed:
        break;
    }
  }
  const bool past_soft =
      (d.soft_deadline_steps > 0 && view.steps >= d.soft_deadline_steps) ||
      (d.soft_deadline.count() > 0 && elapsed >= d.soft_deadline);
  if (past_soft) {
    q->forced_exact = true;  // runner-thread-owned while running
    return EpochDirective::kForceExactOnly;
  }
  return EpochDirective::kProceed;
}

void LinkageService::MonitorLoop() {
  mu_.Lock();
  while (!shutdown_) {
    state_changed_.WaitFor(mu_, options_.governor.poll_interval);
    if (shutdown_) break;
    const int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    for (auto& [id, q] : queries_) {
      if (q->state != QueryState::kRunning &&
          q->state != QueryState::kDraining) {
        continue;
      }
      if (q->stall_timeout.count() <= 0) continue;
      // Between attempts the runner sleeps in retry backoff with the
      // heartbeat parked at the failed attempt's last control point —
      // idle by design, not stalled.
      if (q->backing_off) continue;
      const int64_t heartbeat = q->heartbeat_ns.load(std::memory_order_relaxed);
      if (heartbeat == 0) continue;  // not yet started pumping
      if (now_ns - heartbeat < q->stall_timeout.count()) continue;
      // Stalled: the runner has not reached a control point or drain
      // iteration within the tolerance. Force-finalize — the engine
      // delivers the strict-prefix partial it has merged so far. A
      // worker stuck *inside* a phase cannot be preempted; the
      // directive lands at the next quiescent boundary.
      if (q->force_finalize.exchange(true, std::memory_order_relaxed)) {
        continue;  // already told; don't double-count
      }
      if (!q->resource.has_value()) {
        ResourceReport report;
        report.peak_bytes =
            q->budget_node != nullptr ? q->budget_node->peak() : 0;
        report.budget_bytes = 0;
        report.site = resource_site::kWatchdogStall;
        report.status =
            Status::Unavailable("watchdog force-finalized a stalled query")
                .WithContext(std::string("site=") +
                             resource_site::kWatchdogStall);
        q->resource = std::move(report);
      }
      ++watchdog_finalized_total_;
    }
    if (options_.governor.finalize_youngest_on_pressure &&
        !admission_.MemoryCanAdmit(governor_.used())) {
      // Reclaim the *youngest* governed query: a greedy late arrival
      // gives back its memory instead of evicting older neighbors.
      // Draining queries are exempt — they already stopped consuming
      // input, so flagging them frees nothing sooner. Backing-off
      // queries likewise: the failed attempt's engine is already torn
      // down, so their footprint is gone.
      QueryRecord* youngest = nullptr;
      for (auto& [id, q] : queries_) {  // ascending id; last match wins
        if (q->state == QueryState::kRunning && !q->backing_off &&
            q->budget_node != nullptr &&
            !q->force_finalize.load(std::memory_order_relaxed)) {
          youngest = q.get();
        }
      }
      if (youngest != nullptr) {
        youngest->force_finalize.store(true, std::memory_order_relaxed);
        if (!youngest->resource.has_value()) {
          ResourceReport report;
          report.peak_bytes = youngest->budget_node->peak();
          report.budget_bytes =
              admission_.options().global_memory_high_water_bytes;
          report.site = resource_site::kGlobalHighWater;
          report.status = Status::ResourceExhausted(
                              "global memory pressure reclaimed the "
                              "youngest running query")
                              .WithContext(std::string("site=") +
                                           resource_site::kGlobalHighWater);
          youngest->resource = std::move(report);
        }
        ++pressure_finalized_total_;
      }
    }
  }
  mu_.Unlock();
}

void LinkageService::SetState(QueryRecord* q, QueryState state) {
  sync::MutexLock lock(&mu_);
  q->state = state;
  state_changed_.NotifyAll();
}

void LinkageService::Finish(QueryRecord* q, QueryState state, Status status) {
  if (!status.ok()) {
    // Breadcrumb: every terminal error leaving the service names its
    // query, stacking under any epoch=/shard=/site= context below it.
    status = status.WithContext("query=" + std::to_string(q->id));
  }
  QueryStats stats;
  stats.state = state;
  stats.status = status;
  stats.shards = q->shards;
  stats.forced_exact = q->forced_exact;
  if (q->join != nullptr) {
    stats.steps = q->join->steps();
    stats.pairs_emitted = q->join->pairs_emitted();
    stats.finalized_early = q->join->finalized_early();
    stats.completeness = q->join->Completeness();
    stats.final_state = q->join->state();
    stats.source_retries = q->join->source_retries();
    stats.ingest = q->join->ingest_stats();
    stats.fault = q->join->fault();
    stats.memory_bytes = q->join->memory_bytes();
    stats.peak_memory_bytes =
        std::max(q->join->peak_memory_bytes(), stats.memory_bytes);
    // The join's shard stores hold every ingested input row; a
    // long-lived service must not retain them past the query's end
    // (the result is already materialized, the stats just harvested).
    q->join.reset();
  }
  stats.elapsed = std::chrono::steady_clock::now() - q->started;
  sync::MutexLock lock(&mu_);
  // The engine's shard/coordinator nodes (children) died with the
  // join; dropping the query node releases this query's footprint
  // from the global aggregate. It must happen under mu_ — the monitor
  // dereferences budget_node for running queries while holding mu_,
  // and the query is still kRunning/kDraining here — and before the
  // notify below, which may clear the high-water for queued work.
  q->budget_node.reset();
  q->heartbeat_ns.store(0, std::memory_order_relaxed);
  stats.memory_clamped = q->memory_clamped;
  stats.attempts = std::max<uint64_t>(1, q->attempts);
  stats.retries = stats.attempts - 1;
  stats.resource = q->resource;
  q->stats = stats;
  q->state = state;
  q->final_status = std::move(status);
  // The freed slot (and shard budget) may unblock the next queued
  // query on another runner; the same notify wakes Wait()ers.
  admission_.Release(q->shards);
  state_changed_.NotifyAll();
}

LinkageService::AttemptOutcome LinkageService::RunAttempt(QueryRecord* q) {
  ParallelJoinOptions join_options = q->options.join;
  join_options.shared_pool = &pool_;
  // Null for ungoverned queries — the engine then skips refreshes and
  // stays byte-identical to a budget-free run. Reading the raw pointer
  // lock-free is safe on the runner thread: budget_node is only
  // written by this thread (admission in RunnerLoop, release in
  // Finish).
  join_options.memory_budget = q->budget_node.get();
  join_options.governor = [this, q](const EpochView& view) {
    return Govern(q, view);
  };
  q->join = std::make_unique<ParallelAdaptiveJoin>(q->left, q->right,
                                                   std::move(join_options));

  AttemptOutcome outcome;
  StampHeartbeat(q);
  Status status = q->join->Open();
  if (!status.ok()) {
    outcome.state = QueryState::kFailed;
    outcome.status = std::move(status);
    return outcome;
  }

  storage::Relation collected(q->join->output_schema());
  std::vector<ParallelMatchRef> refs;
  const size_t drain_batch = std::max<size_t>(1, q->options.drain_batch);
  bool draining_reported = false;
  while (true) {
    // Liveness: the watchdog must not fire on a healthy query that is
    // slowly delivering a huge buffered result.
    StampHeartbeat(q);
    // The governor only runs while epochs are still being pumped; once
    // the input side is done (draining), cancellation must be honored
    // here or a huge buffered result would pin the admission slot.
    if (q->cancel_requested.load(std::memory_order_relaxed)) {
      status = Status::Cancelled("query cancelled while draining");
      break;
    }
    status = q->join->NextMatchRefs(drain_batch, &refs);
    if (!status.ok() || refs.empty()) break;
    for (const ParallelMatchRef& ref : refs) {
      collected.AppendUnchecked(q->join->MaterializeRow(ref));
    }
    if (!draining_reported && q->join->stream_done()) {
      // Input side finished (exhausted or deadline-finalized); what
      // remains is delivering buffered output.
      draining_reported = true;
      SetState(q, QueryState::kDraining);
    }
  }

  if (status.ok()) {
    // Finalization-boundary fault: the result is fully drained but the
    // query fails terminal bookkeeping — the budget must still be
    // released exactly once and the error must stick to this query.
    const auto finalize_site = []() -> Status {
      AQP_FAILPOINT(fail::site::kServiceFinalize);
      return Status::OK();
    };
    status = finalize_site();
  }

  Status close = q->join->Close();
  if (!status.ok()) {
    outcome.state = status.IsCancelled() ? QueryState::kCancelled
                                         : QueryState::kFailed;
    outcome.status = std::move(status);
    return outcome;
  }
  if (!close.ok()) {
    outcome.state = QueryState::kFailed;
    outcome.status = std::move(close);
    return outcome;
  }
  outcome.state = QueryState::kDone;
  outcome.collected.emplace(std::move(collected));
  return outcome;
}

void LinkageService::ExecuteQuery(QueryRecord* q) {
  const size_t max_retries = q->options.retry.max_retries;
  size_t attempt = 0;
  while (true) {
    ++attempt;
    {
      sync::MutexLock lock(&mu_);
      q->attempts = attempt;
    }
    AttemptOutcome outcome = RunAttempt(q);
    // Only recoverably failed attempts retry: transient unavailability
    // or I/O, never cancellation, invariant failures, or precondition
    // bugs — and a degraded-to-partial query is done, not failed.
    const bool retryable =
        outcome.state == QueryState::kFailed &&
        (outcome.status.IsUnavailable() || outcome.status.IsIOError()) &&
        attempt <= max_retries &&
        !q->cancel_requested.load(std::memory_order_relaxed);
    if (!retryable) {
      {
        sync::MutexLock lock(&mu_);
        if (outcome.state == QueryState::kDone) {
          q->result.emplace(std::move(*outcome.collected));
        } else {
          q->result.reset();
        }
      }
      Finish(q, outcome.state, std::move(outcome.status));
      return;
    }
    // Re-execution is idempotent: queries are read-only over borrowed,
    // re-openable children. Drop the failed attempt's engine, keep the
    // admission slot (the query never left `running`), and back off.
    // The deadline clock spans attempts — q->started is NOT reset — so
    // retrying cannot stretch the time budget; forced_exact and any
    // ResourceReport stay sticky for the final stats.
    q->join.reset();
    q->prev_charge_bytes = 0;
    q->max_growth_bytes = 0;
    {
      sync::MutexLock lock(&mu_);
      if (q->state == QueryState::kDraining) {
        q->state = QueryState::kRunning;
        state_changed_.NotifyAll();
      }
      const auto base = q->options.retry.backoff_base;
      if (base.count() > 0) {
        // Exponential backoff, interruptible by Cancel() and shutdown.
        // The exponent is clamped: max_retries is caller-controlled,
        // and an unclamped shift would overflow the chrono arithmetic
        // (and hit UB at 63) long before that many attempts matter.
        const unsigned shift =
            static_cast<unsigned>(std::min<size_t>(attempt - 1, 20));
        const auto delay = base * (int64_t{1} << shift);
        // The heartbeat is idle during the sleep, not stalled; the
        // flag (guarded by mu_, like the watchdog's scan) keeps the
        // monitor from force-finalizing a healthy retrying query whose
        // backoff outlasts its stall tolerance.
        q->backing_off = true;
        const auto deadline = std::chrono::steady_clock::now() + delay;
        while (!shutdown_ &&
               !q->cancel_requested.load(std::memory_order_relaxed)) {
          if (!state_changed_.WaitUntil(mu_, deadline)) break;
        }
        // Restamp before clearing the flag, still under mu_, so the
        // stall clock restarts at backoff exit rather than at the
        // failed attempt's last control point — no window where the
        // monitor sees an un-flagged query with a pre-sleep heartbeat.
        StampHeartbeat(q);
        q->backing_off = false;
      }
    }
    if (q->cancel_requested.load(std::memory_order_relaxed)) {
      Finish(q, QueryState::kCancelled,
             Status::Cancelled("query cancelled during retry backoff"));
      return;
    }
  }
}

}  // namespace service
}  // namespace aqp
