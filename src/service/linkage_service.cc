#include "service/linkage_service.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"

namespace aqp {
namespace service {

using exec::parallel::EpochDirective;
using exec::parallel::EpochView;
using exec::parallel::ParallelAdaptiveJoin;
using exec::parallel::ParallelJoinOptions;
using exec::parallel::ParallelMatchRef;

namespace {

size_t ResolveWorkers(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max<size_t>(1, hw);
}

size_t ResolveShards(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max<size_t>(1, std::min<unsigned>(hw == 0 ? 1 : hw, 64));
}

}  // namespace

LinkageService::LinkageService(ServiceOptions options)
    : options_(options),
      pool_(ResolveWorkers(options.worker_threads)),
      admission_(options.admission) {
  const size_t runners = admission_.options().max_concurrent_queries;
  runners_.reserve(runners);
  for (size_t i = 0; i < runners; ++i) {
    runners_.emplace_back([this] { RunnerLoop(); });
  }
}

LinkageService::~LinkageService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    // Queued queries never run; running ones see the cancel flag at
    // their next epoch control point.
    for (auto& [id, q] : queries_) {
      if (!IsTerminalState(q->state)) {
        q->cancel_requested.store(true, std::memory_order_relaxed);
        if (q->state == QueryState::kQueued) {
          q->state = QueryState::kCancelled;
          q->final_status = Status::Cancelled("service shut down");
          q->stats.state = q->state;
          q->stats.status = q->final_status;
        }
      }
    }
    queue_.clear();
  }
  state_changed_.notify_all();
  for (std::thread& runner : runners_) {
    runner.join();
  }
}

Result<QueryId> LinkageService::Submit(exec::Operator* left,
                                       exec::Operator* right,
                                       QueryOptions options) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument(
        "LinkageService::Submit: null child operator");
  }
  // Admission-boundary fault: a rejected submission must leave no
  // trace in the registry or the budget.
  AQP_FAILPOINT(fail::site::kServiceAdmit);
  auto record = std::make_unique<QueryRecord>();
  record->options = std::move(options);
  record->left = left;
  record->right = right;
  // Resolve and clamp the shard budget up front: admission accounting
  // needs the real number, and shard count never changes results.
  record->shards = admission_.ClampShards(
      ResolveShards(record->options.join.num_shards));
  record->options.join.num_shards = record->shards;

  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    return Status::FailedPrecondition(
        "LinkageService::Submit: service is shutting down");
  }
  const QueryId id = next_id_++;
  record->id = id;
  record->stats.shards = record->shards;
  queries_.emplace(id, std::move(record));
  queue_.push_back(id);
  state_changed_.notify_all();
  return id;
}

Status LinkageService::Cancel(QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("LinkageService::Cancel: unknown query " +
                            std::to_string(id));
  }
  QueryRecord* q = it->second.get();
  if (IsTerminalState(q->state)) return Status::OK();
  q->cancel_requested.store(true, std::memory_order_relaxed);
  if (q->state == QueryState::kQueued) {
    queue_.erase(std::remove(queue_.begin(), queue_.end(), id),
                 queue_.end());
    q->state = QueryState::kCancelled;
    q->final_status = Status::Cancelled("cancelled while queued");
    q->stats.state = q->state;
    q->stats.status = q->final_status;
    state_changed_.notify_all();
  }
  // A running query tears down at its next epoch control point, via
  // the governor — between epochs every shard is quiescent, so no
  // phase task of this query is left behind on the pool.
  return Status::OK();
}

Result<QueryStats> LinkageService::Wait(QueryId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("LinkageService::Wait: unknown query " +
                            std::to_string(id));
  }
  QueryRecord* q = it->second.get();
  state_changed_.wait(lock, [q] { return IsTerminalState(q->state); });
  return q->stats;
}

Result<storage::Relation> LinkageService::TakeResult(QueryId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("LinkageService::TakeResult: unknown query " +
                            std::to_string(id));
  }
  QueryRecord* q = it->second.get();
  state_changed_.wait(lock, [q] { return IsTerminalState(q->state); });
  if (q->state != QueryState::kDone) {
    return q->final_status.ok()
               ? Status::FailedPrecondition("query did not complete")
               : q->final_status;
  }
  if (q->result_taken || !q->result.has_value()) {
    return Status::FailedPrecondition(
        "LinkageService::TakeResult: result already taken for query " +
        std::to_string(id));
  }
  q->result_taken = true;
  storage::Relation out = std::move(*q->result);
  q->result.reset();
  return out;
}

Result<QueryState> LinkageService::state(QueryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("LinkageService::state: unknown query " +
                            std::to_string(id));
  }
  return it->second->state;
}

size_t LinkageService::running_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admission_.running_queries();
}

size_t LinkageService::queued_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t LinkageService::peak_running_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admission_.peak_running_queries();
}

size_t LinkageService::peak_shards_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admission_.peak_shards_in_use();
}

size_t LinkageService::shards_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admission_.shards_in_use();
}

size_t LinkageService::admitted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admission_.admitted_total();
}

size_t LinkageService::released_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admission_.released_total();
}

LinkageService::QueryRecord* LinkageService::FrontRunnableLocked() {
  // Strict FIFO: only the front of the queue is considered. Skipping
  // ahead when the front's shard budget does not fit would let narrow
  // queries starve a wide one forever.
  if (queue_.empty()) return nullptr;
  QueryRecord* q = queries_.at(queue_.front()).get();
  return admission_.CanAdmit(q->shards) ? q : nullptr;
}

void LinkageService::RunnerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    state_changed_.wait(lock, [this] {
      return shutdown_ || FrontRunnableLocked() != nullptr;
    });
    QueryRecord* q = FrontRunnableLocked();
    if (q == nullptr) {
      if (shutdown_) return;
      continue;
    }
    queue_.pop_front();
    admission_.Admit(q->shards);
    q->state = QueryState::kRunning;
    q->started = std::chrono::steady_clock::now();
    state_changed_.notify_all();
    lock.unlock();
    // Finish() releases the admission slot atomically with the
    // terminal state transition, so a Wait()er never observes a done
    // query still holding budget.
    ExecuteQuery(q);
    lock.lock();
  }
}

EpochDirective LinkageService::Govern(QueryRecord* q, const EpochView& view) {
  if (q->cancel_requested.load(std::memory_order_relaxed)) {
    return EpochDirective::kCancel;
  }
  const DeadlineOptions& d = q->options.deadline;
  if (!d.any()) return EpochDirective::kProceed;
  const auto elapsed = std::chrono::steady_clock::now() - q->started;
  const bool past_hard =
      (d.hard_deadline_steps > 0 && view.steps >= d.hard_deadline_steps) ||
      (d.hard_deadline.count() > 0 && elapsed >= d.hard_deadline);
  if (past_hard) return EpochDirective::kFinalize;
  const bool past_soft =
      (d.soft_deadline_steps > 0 && view.steps >= d.soft_deadline_steps) ||
      (d.soft_deadline.count() > 0 && elapsed >= d.soft_deadline);
  if (past_soft) {
    q->forced_exact = true;  // runner-thread-owned while running
    return EpochDirective::kForceExactOnly;
  }
  return EpochDirective::kProceed;
}

void LinkageService::SetState(QueryRecord* q, QueryState state) {
  std::lock_guard<std::mutex> lock(mu_);
  q->state = state;
  state_changed_.notify_all();
}

void LinkageService::Finish(QueryRecord* q, QueryState state, Status status) {
  if (!status.ok()) {
    // Breadcrumb: every terminal error leaving the service names its
    // query, stacking under any epoch=/shard=/site= context below it.
    status = status.WithContext("query=" + std::to_string(q->id));
  }
  QueryStats stats;
  stats.state = state;
  stats.status = status;
  stats.shards = q->shards;
  stats.forced_exact = q->forced_exact;
  if (q->join != nullptr) {
    stats.steps = q->join->steps();
    stats.pairs_emitted = q->join->pairs_emitted();
    stats.finalized_early = q->join->finalized_early();
    stats.completeness = q->join->Completeness();
    stats.final_state = q->join->state();
    stats.source_retries = q->join->source_retries();
    stats.ingest = q->join->ingest_stats();
    stats.fault = q->join->fault();
    // The join's shard stores hold every ingested input row; a
    // long-lived service must not retain them past the query's end
    // (the result is already materialized, the stats just harvested).
    q->join.reset();
  }
  stats.elapsed = std::chrono::steady_clock::now() - q->started;
  std::lock_guard<std::mutex> lock(mu_);
  q->stats = stats;
  q->state = state;
  q->final_status = std::move(status);
  // The freed slot (and shard budget) may unblock the next queued
  // query on another runner; the same notify wakes Wait()ers.
  admission_.Release(q->shards);
  state_changed_.notify_all();
}

void LinkageService::ExecuteQuery(QueryRecord* q) {
  ParallelJoinOptions join_options = q->options.join;
  join_options.shared_pool = &pool_;
  join_options.governor = [this, q](const EpochView& view) {
    return Govern(q, view);
  };
  q->join = std::make_unique<ParallelAdaptiveJoin>(q->left, q->right,
                                                   std::move(join_options));

  Status status = q->join->Open();
  if (!status.ok()) {
    Finish(q, QueryState::kFailed, std::move(status));
    return;
  }

  storage::Relation collected(q->join->output_schema());
  std::vector<ParallelMatchRef> refs;
  const size_t drain_batch = std::max<size_t>(1, q->options.drain_batch);
  bool draining_reported = false;
  while (true) {
    // The governor only runs while epochs are still being pumped; once
    // the input side is done (draining), cancellation must be honored
    // here or a huge buffered result would pin the admission slot.
    if (q->cancel_requested.load(std::memory_order_relaxed)) {
      status = Status::Cancelled("query cancelled while draining");
      break;
    }
    status = q->join->NextMatchRefs(drain_batch, &refs);
    if (!status.ok() || refs.empty()) break;
    for (const ParallelMatchRef& ref : refs) {
      collected.AppendUnchecked(q->join->MaterializeRow(ref));
    }
    if (!draining_reported && q->join->stream_done()) {
      // Input side finished (exhausted or deadline-finalized); what
      // remains is delivering buffered output.
      draining_reported = true;
      SetState(q, QueryState::kDraining);
    }
  }

  if (status.ok()) {
    // Finalization-boundary fault: the result is fully drained but the
    // query fails terminal bookkeeping — the budget must still be
    // released exactly once and the error must stick to this query.
    const auto finalize_site = []() -> Status {
      AQP_FAILPOINT(fail::site::kServiceFinalize);
      return Status::OK();
    };
    status = finalize_site();
  }

  Status close = q->join->Close();
  if (!status.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      q->result.reset();
    }
    Finish(q,
           status.IsCancelled() ? QueryState::kCancelled
                                : QueryState::kFailed,
           std::move(status));
    return;
  }
  if (!close.ok()) {
    Finish(q, QueryState::kFailed, std::move(close));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    q->result.emplace(std::move(collected));
  }
  Finish(q, QueryState::kDone, Status::OK());
}

}  // namespace service
}  // namespace aqp
