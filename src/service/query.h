#ifndef AQP_SERVICE_QUERY_H_
#define AQP_SERVICE_QUERY_H_

#include <chrono>
#include <cstdint>
#include <optional>

#include "adaptive/state.h"
#include "common/status.h"
#include "exec/parallel/parallel_join.h"
#include "service/resource_governor.h"

namespace aqp {
namespace service {

/// \brief Service-wide identifier of one submitted linkage query.
using QueryId = uint64_t;

/// \brief Lifecycle of a query inside the LinkageService.
///
///   queued ──▶ running ──▶ draining ──▶ done
///     │           │            │
///     │           ├──────────────────▶ failed
///     └──────────▶└──────────────────▶ cancelled
///
/// `queued`: admitted into the registry, waiting for a runner slot and
/// shard budget. `running`: its coordinator is pumping epochs on the
/// shared pool. `draining`: no further input will be consumed
/// (exhausted or deadline-finalized), buffered output is still being
/// delivered. Terminal states: `done` (full or deadline-partial result
/// available), `failed` (operator error; see QueryStats::status),
/// `cancelled` (by Cancel() or service shutdown; result discarded).
enum class QueryState {
  kQueued = 0,
  kRunning,
  kDraining,
  kDone,
  kFailed,
  kCancelled,
};

/// "queued" / "running" / "draining" / "done" / "failed" / "cancelled".
const char* QueryStateName(QueryState state);

/// True for done/failed/cancelled.
bool IsTerminalState(QueryState state);

/// \brief Per-query time budget — the paper's time-completeness knob,
/// exposed per query.
///
/// Both step budgets (deterministic: checked against the global step
/// count at every epoch control point) and wall-clock budgets
/// (measured from the moment the query starts running) are supported;
/// whichever trips first wins. Zero disables a bound.
///
/// Past the *soft* deadline the query is forced into the cheapest
/// exact state (lex/rex) and pinned there: it still runs to
/// completion, but stops paying for approximate matching. Past the
/// *hard* deadline the query is finalized early: it stops consuming
/// input at the next epoch boundary and reports the partial result it
/// has, together with its completeness statistics.
struct DeadlineOptions {
  std::chrono::nanoseconds soft_deadline{0};
  std::chrono::nanoseconds hard_deadline{0};
  uint64_t soft_deadline_steps = 0;
  uint64_t hard_deadline_steps = 0;

  bool any() const {
    return soft_deadline.count() > 0 || hard_deadline.count() > 0 ||
           soft_deadline_steps > 0 || hard_deadline_steps > 0;
  }
};

/// \brief Bounded whole-query retry with exponential backoff.
///
/// Queries are read-only over borrowed, re-openable children, so
/// re-executing one from scratch is idempotent — this extends the
/// exchange's per-refill SourceRetryOptions to query granularity, for
/// faults that killed a whole attempt (a child that died mid-run and
/// recovered, an injected transient). Only *recoverably failed*
/// attempts retry: terminal status kUnavailable or kIOError, never
/// cancellation, Internal invariant failures, or precondition bugs. A
/// degraded-to-partial query is `done`, not failed, and never retries.
struct QueryRetryOptions {
  /// Re-executions after the first attempt. 0 disables retrying.
  size_t max_retries = 0;
  /// Attempt k (1-based over retries) sleeps base * 2^(k-1) before
  /// re-running; zero base never sleeps (deterministic tests). The
  /// backoff is interruptible by Cancel() and shutdown.
  std::chrono::milliseconds backoff_base{0};
};

/// \brief Everything a caller configures per query.
struct QueryOptions {
  /// The join itself (spec, MAR thresholds, policy, shard count). The
  /// service overwrites `shared_pool` and `governor`, and clamps
  /// `num_shards` to the admission cap — shard count never changes
  /// results, only parallelism.
  exec::parallel::ParallelJoinOptions join;
  /// Time budget; default none.
  DeadlineOptions deadline;
  /// Memory budget (soft clamp / hard finalize at epoch control
  /// points); default none — fields left at zero inherit the service's
  /// ResourceGovernorOptions::default_query_budget.
  MemoryBudgetOptions memory;
  /// Stuck-query watchdog override: heartbeat stall tolerance for this
  /// query. Zero inherits the service-level stall timeout; honored only
  /// while the service watchdog is enabled.
  std::chrono::nanoseconds stall_timeout{0};
  /// Whole-query retry of recoverably failed attempts; default none.
  QueryRetryOptions retry;
  /// Match refs materialized per drain call of the runner.
  size_t drain_batch = 256;

  /// Fault policy shorthand: `join.on_fault` selects what a recoverable
  /// runtime fault does to this query — kFail (default) makes the query
  /// terminal in `failed`; kFinalizePartial degrades it to the same
  /// early-finalization path as the hard deadline, so it lands in
  /// `done` with a strict-prefix partial result, CompletenessStats, and
  /// a FaultReport in QueryStats::fault. `join.source_retry` likewise
  /// configures transparent retry of transiently unavailable sources.
};

/// \brief Final report of one query, valid once the query is terminal.
struct QueryStats {
  QueryState state = QueryState::kQueued;
  /// Terminal status: OK for done, the triggering error for failed,
  /// Cancelled for cancelled.
  Status status;
  /// Shards the query actually ran with (after admission clamping).
  size_t shards = 0;
  uint64_t steps = 0;
  uint64_t pairs_emitted = 0;
  /// True iff the hard deadline cut the run short (partial result).
  bool finalized_early = false;
  /// True iff the soft deadline forced exact-only matching.
  bool forced_exact = false;
  /// Completeness of the (possibly partial) result under the query's
  /// completeness model.
  exec::parallel::CompletenessStats completeness;
  adaptive::ProcessorState final_state = adaptive::ProcessorState::kLexRex;
  /// Wall time from start of running to terminal, zero if never ran.
  std::chrono::nanoseconds elapsed{0};
  /// Source-refill retries the exchange performed against transiently
  /// unavailable (kUnavailable) inputs before they recovered.
  uint64_t source_retries = 0;
  /// Pipelined-ingest overlap counters: epochs staged ahead vs routed
  /// serially, swap-point stall time, and routing time hidden behind
  /// phase execution vs spent on the critical path. All zero when
  /// `join.pipeline_ingest` is off.
  exec::parallel::IngestStats ingest;
  /// Set when a recoverable fault degraded the query to a partial
  /// result (join.on_fault == kFinalizePartial): which site fired,
  /// in which epoch, on which shard, with the original status.
  std::optional<exec::parallel::FaultReport> fault;
  /// Engine memory footprint at the end of the final attempt
  /// (shard stores/indexes, exchange and staged tiers, prefetch
  /// buffers, coordinator state) and its high-water across the run —
  /// aggregated from the parallel engine, which previously reported no
  /// memory at all through RunStats.
  uint64_t memory_bytes = 0;
  uint64_t peak_memory_bytes = 0;
  /// True iff the soft memory budget clamped the query to exact-only.
  bool memory_clamped = false;
  /// Executions of the query (1 + retries actually performed).
  uint64_t attempts = 1;
  uint64_t retries = 0;
  /// Set when memory governance or the watchdog cut the run short:
  /// which site acted (query.hard_budget / global.high_water /
  /// watchdog.stall), against which bound, at what peak.
  std::optional<ResourceReport> resource;
};

}  // namespace service
}  // namespace aqp

#endif  // AQP_SERVICE_QUERY_H_
