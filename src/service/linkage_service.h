#ifndef AQP_SERVICE_LINKAGE_SERVICE_H_
#define AQP_SERVICE_LINKAGE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "exec/operator.h"
#include "exec/parallel/parallel_join.h"
#include "exec/parallel/thread_pool.h"
#include "service/admission.h"
#include "service/query.h"
#include "service/resource_governor.h"
#include "storage/relation.h"

namespace aqp {
namespace service {

/// \brief Service-wide configuration.
struct ServiceOptions {
  /// Workers of the shared pool (0 = hardware concurrency, >= 1).
  /// Runner threads participate in their own queries' phase groups, so
  /// even a 1-worker pool makes progress for any number of queries.
  size_t worker_threads = 0;
  /// Concurrency and shard budgets, plus the global memory high-water.
  AdmissionOptions admission;
  /// Memory governance and watchdog policy (default budgets, stall
  /// timeout, pressure reclaim).
  ResourceGovernorOptions governor;
};

/// \brief Multi-query linkage serving: N concurrent adaptive linkage
/// queries over ONE shared worker pool, with admission control and
/// per-query deadline budgets.
///
/// Each submitted query is registered (FIFO), admitted when a runner
/// slot and shard budget are free, and then driven by a runner thread:
/// the runner owns the query's ParallelAdaptiveJoin coordinator, pumps
/// its epochs, and materializes its output, while the per-shard phase
/// work of *all* running queries lands on the one shared ThreadPool as
/// task groups — the pool's FIFO-fair group dispatch interleaves them,
/// so a wide query cannot starve a narrow one.
///
/// Deadlines plug into the engine's epoch control points through the
/// governor hook (every shard quiescent): past its soft deadline a
/// query is forced into the cheapest exact state and pinned there;
/// past its hard deadline it is finalized early and reports the
/// partial result it has, with completeness statistics — the paper's
/// time-completeness trade-off, per query. Cancel() tears a query down
/// between epochs through the same hook.
///
/// Memory budgets ride the same control points: the engine refreshes a
/// hierarchical accounting tree (global → per-query → per-shard) right
/// before the governor runs, a soft budget clamps the query toward
/// exact-only (freezing q-gram index growth), a hard budget finalizes
/// it early with a strict-prefix partial, and the global high-water
/// sheds new submissions with kResourceExhausted. A watchdog thread
/// force-finalizes queries whose control-point heartbeat goes stale,
/// and recoverably failed attempts (kUnavailable/kIOError) can be
/// retried whole with exponential backoff — queries are read-only over
/// re-openable children, so re-execution is idempotent.
///
/// Results are byte-identical to a solo ParallelAdaptiveJoin run of
/// the same options (without deadlines): pool sharing changes
/// scheduling, never merge order.
///
/// Thread contract: all public methods are safe to call from any
/// thread. Child operators of a query are borrowed, must outlive the
/// query's terminal state, and are only ever touched by that query's
/// runner thread.
///
/// Lock hierarchy: `mu_` is acquired strictly above the pool's
/// internal mutex (a runner holding `mu_` never submits to or waits on
/// the pool; ExecuteQuery drops `mu_` first) and above the failpoint
/// registry's mutex. The Debug lock-order detector enforces this at
/// runtime; the annotations enforce the per-field discipline at
/// compile time.
class LinkageService {
 public:
  explicit LinkageService(ServiceOptions options);

  /// Cancels queued and running queries (running ones stop at their
  /// next epoch boundary), then joins the runner threads.
  ~LinkageService();

  LinkageService(const LinkageService&) = delete;
  LinkageService& operator=(const LinkageService&) = delete;

  /// Registers a query over `left` ⋈ `right` and returns its id.
  /// Children must be unopened; the service opens and closes them on
  /// the query's runner thread. Fails after shutdown began.
  Result<QueryId> Submit(exec::Operator* left, exec::Operator* right,
                         QueryOptions options) AQP_EXCLUDES(mu_);

  /// Requests cancellation: a queued query is cancelled immediately, a
  /// running one at its next epoch control point. Terminal queries are
  /// left untouched (NotFound for unknown ids, OK otherwise).
  Status Cancel(QueryId id) AQP_EXCLUDES(mu_);

  /// Blocks until `id` is terminal and returns its final stats.
  Result<QueryStats> Wait(QueryId id) AQP_EXCLUDES(mu_);

  /// Moves the query's collected output out of the registry. Valid
  /// exactly once, after the query reached `done` (including
  /// deadline-partial results); blocks until terminal.
  Result<storage::Relation> TakeResult(QueryId id) AQP_EXCLUDES(mu_);

  /// Current state of a query.
  Result<QueryState> state(QueryId id) const AQP_EXCLUDES(mu_);

  /// \name Introspection.
  /// @{
  size_t running_queries() const AQP_EXCLUDES(mu_);
  size_t queued_queries() const AQP_EXCLUDES(mu_);
  /// High-water mark of concurrently running queries (tests verify the
  /// admission cap with this).
  size_t peak_running_queries() const AQP_EXCLUDES(mu_);
  size_t peak_shards_in_use() const AQP_EXCLUDES(mu_);
  /// Shard budget currently held by running queries (0 at quiescence —
  /// the budget-leak check under fault injection).
  size_t shards_in_use() const AQP_EXCLUDES(mu_);
  /// Lifetime admission counters; equal at quiescence on every
  /// terminal path (done, failed, cancelled).
  size_t admitted_total() const AQP_EXCLUDES(mu_);
  size_t released_total() const AQP_EXCLUDES(mu_);
  /// Submissions shed with kResourceExhausted by the global memory
  /// high-water.
  size_t memory_shed_total() const AQP_EXCLUDES(mu_);
  /// Queries force-finalized by the stuck-query watchdog.
  size_t watchdog_finalized_total() const AQP_EXCLUDES(mu_);
  /// Queries force-finalized by global-pressure reclaim.
  size_t pressure_finalized_total() const AQP_EXCLUDES(mu_);
  /// The global budget root's owner (live usage, peak, policy).
  ResourceGovernor* governor() { return &governor_; }
  exec::parallel::ThreadPool* pool() { return &pool_; }
  const ServiceOptions& options() const { return options_; }
  /// @}

 private:
  /// Registry entry of one query. Fields fall into three ownership
  /// classes (the guard cannot be spelled as GUARDED_BY attributes —
  /// the analysis cannot name the owning service's `mu_` from a nested
  /// struct — so the accessing LinkageService methods carry the
  /// REQUIRES annotations instead):
  ///   * immutable after Submit: id, options, left, right, shards,
  ///     memory, stall_timeout;
  ///   * guarded by the service's `mu_`: state, final_status, stats,
  ///     result, result_taken, attempts, backing_off, resource,
  ///     budget_node;
  ///   * runner-thread-owned while running (no other thread reads
  ///     them until the query is terminal): forced_exact,
  ///     memory_clamped, prev_charge_bytes, max_growth_bytes, started,
  ///     join;
  ///   * lock-free atomics: cancel_requested, force_finalize,
  ///     heartbeat_ns.
  struct QueryRecord {
    QueryId id = 0;
    QueryOptions options;
    exec::Operator* left = nullptr;
    exec::Operator* right = nullptr;
    size_t shards = 0;

    QueryState state = QueryState::kQueued;
    Status final_status;
    QueryStats stats;
    std::optional<storage::Relation> result;
    bool result_taken = false;

    /// Set by Cancel()/shutdown, read by the query's governor at every
    /// epoch control point.
    std::atomic<bool> cancel_requested{false};
    /// Set by the watchdog (stall or global pressure), read by the
    /// governor: finalize at the next control point with whatever
    /// prefix has been merged.
    std::atomic<bool> force_finalize{false};
    /// Liveness heartbeat: steady-clock nanos stamped by the runner at
    /// every epoch control point and drain iteration, read by the
    /// watchdog thread. 0 = not running.
    std::atomic<int64_t> heartbeat_ns{0};
    /// Written only by the runner thread while running.
    bool forced_exact = false;
    bool memory_clamped = false;
    uint64_t attempts = 0;
    /// Previous control-point charge and the largest single-epoch
    /// growth seen, for the predictive hard-budget forecast
    /// (runner-owned). The forecast is 2x the max growth: capacity-
    /// doubling containers allocate exactly twice their previous jump
    /// when they next double, so last-epoch growth alone underpredicts.
    /// The first charge counts the whole upfront footprint as one
    /// jump — aggressive near the floor, but it is what keeps the
    /// recorded peak under the budget when no later control point
    /// arrives in time (see Govern).
    uint64_t prev_charge_bytes = 0;
    uint64_t max_growth_bytes = 0;
    /// True while the runner sleeps in retry backoff between attempts
    /// (guarded by mu_): the heartbeat is idle there by design, so the
    /// watchdog skips the query, and pressure reclaim too — the failed
    /// attempt's engine is already torn down, so it holds no memory.
    bool backing_off = false;
    std::chrono::steady_clock::time_point started{};

    /// Effective per-query budget and stall tolerance (query override,
    /// else service default), resolved at Submit.
    MemoryBudgetOptions memory;
    std::chrono::nanoseconds stall_timeout{0};
    /// Why governance intervened, if it did (guarded by mu_; first
    /// writer wins — a watchdog verdict is not overwritten by a later
    /// budget trip and vice versa).
    std::optional<ResourceReport> resource;

    /// The query's node in the global budget tree; the engine hangs
    /// its per-shard and coordinator children under it. Destroyed
    /// after the join (children before parent). Written and read under
    /// mu_ (the monitor dereferences it for running queries); the
    /// runner may read the raw pointer lock-free between its own
    /// writes.
    std::unique_ptr<mem::BudgetNode> budget_node;
    std::unique_ptr<exec::parallel::ParallelAdaptiveJoin> join;
  };

  /// Outcome of one execution attempt of a query.
  struct AttemptOutcome {
    QueryState state = QueryState::kFailed;
    Status status;
    std::optional<storage::Relation> collected;
  };

  /// Runner thread body: claim the oldest admissible queued query, run
  /// it to a terminal state, repeat.
  void RunnerLoop() AQP_EXCLUDES(mu_);
  /// Oldest queued query that fits the admission budget right now
  /// (strict FIFO: if the front does not fit, nothing runs).
  QueryRecord* FrontRunnableLocked() AQP_REQUIRES(mu_);
  /// Executes one admitted query end to end (no service lock held),
  /// including bounded whole-query retry of recoverably failed
  /// attempts.
  void ExecuteQuery(QueryRecord* q) AQP_EXCLUDES(mu_);
  /// One execution attempt: open, drain, close. Queries are read-only
  /// over re-openable children, so attempts are idempotent.
  AttemptOutcome RunAttempt(QueryRecord* q) AQP_EXCLUDES(mu_);
  /// Deadline/budget/cancel/watchdog policy, called by the engine at
  /// epoch control points on the runner thread.
  exec::parallel::EpochDirective Govern(QueryRecord* q,
                                        const exec::parallel::EpochView& view)
      AQP_EXCLUDES(mu_);
  /// Stamps the query's liveness heartbeat (runner thread).
  static void StampHeartbeat(QueryRecord* q);
  /// Watchdog thread body: force-finalize stalled queries; optionally
  /// reclaim the youngest budget-governed query under global pressure.
  void MonitorLoop() AQP_EXCLUDES(mu_);
  /// Transitions `q` to a state and wakes waiters.
  void SetState(QueryRecord* q, QueryState state) AQP_EXCLUDES(mu_);
  /// Marks `q` terminal with stats harvested from its join.
  void Finish(QueryRecord* q, QueryState state, Status status)
      AQP_EXCLUDES(mu_);

  ServiceOptions options_;
  exec::parallel::ThreadPool pool_;

  mutable sync::Mutex mu_{"linkage_service.mu_"};
  sync::CondVar state_changed_;
  /// Pure accounting, NOT internally synchronized (see admission.h):
  /// every touch happens under mu_, which the annotation enforces.
  AdmissionController admission_ AQP_GUARDED_BY(mu_);
  /// Internally thread-safe (atomic budget tree, immutable options);
  /// deliberately NOT guarded — governor() hands it out for lock-free
  /// introspection.
  ResourceGovernor governor_;
  std::map<QueryId, std::unique_ptr<QueryRecord>> queries_
      AQP_GUARDED_BY(mu_);
  std::deque<QueryId> queue_ AQP_GUARDED_BY(mu_);
  QueryId next_id_ AQP_GUARDED_BY(mu_) = 1;
  bool shutdown_ AQP_GUARDED_BY(mu_) = false;
  size_t watchdog_finalized_total_ AQP_GUARDED_BY(mu_) = 0;
  size_t pressure_finalized_total_ AQP_GUARDED_BY(mu_) = 0;

  /// Written only by the constructor; joined by the destructor.
  std::vector<std::thread> runners_;
  /// Watchdog; started only when options_.governor.watchdog_enabled().
  std::thread monitor_;
};

}  // namespace service
}  // namespace aqp

#endif  // AQP_SERVICE_LINKAGE_SERVICE_H_
