#ifndef AQP_SERVICE_RESOURCE_GOVERNOR_H_
#define AQP_SERVICE_RESOURCE_GOVERNOR_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/memory_budget.h"
#include "common/status.h"

namespace aqp {
namespace service {

/// \brief Per-query memory budget — the memory twin of
/// DeadlineOptions, enforced at the same epoch control points.
///
/// Past the *soft* budget the query is clamped into the cheapest exact
/// state (lex/rex) and pinned there: the symmetric stores keep growing
/// with input (correctness needs every row), but the q-gram index —
/// the dominant optional consumer — stops growing, exactly like the
/// soft deadline's response. Past the *hard* budget the query is
/// finalized early through the kFinalizePartial path: strict-prefix
/// partial result, CompletenessStats, and a ResourceReport saying why.
/// Zero disables a bound.
struct MemoryBudgetOptions {
  uint64_t soft_bytes = 0;
  uint64_t hard_bytes = 0;

  bool any() const { return soft_bytes > 0 || hard_bytes > 0; }
};

/// \brief Canonical ResourceReport::site values.
namespace resource_site {
/// Per-query hard budget tripped at an epoch control point.
inline constexpr char kQueryHardBudget[] = "query.hard_budget";
/// Global high-water shed a submission or reclaimed a running query.
inline constexpr char kGlobalHighWater[] = "global.high_water";
/// The stuck-query watchdog force-finalized a stalled query.
inline constexpr char kWatchdogStall[] = "watchdog.stall";
}  // namespace resource_site

/// \brief Why resource governance intervened in a query — attached to
/// QueryStats::resource when a budget or the watchdog cut a run short.
struct ResourceReport {
  /// Peak of the query's budget subtree when the decision was taken.
  uint64_t peak_bytes = 0;
  /// The bound that tripped (hard budget bytes, or the global
  /// high-water for pressure reclaim; 0 for a pure watchdog stall).
  uint64_t budget_bytes = 0;
  /// Which enforcement site acted (see resource_site).
  std::string site;
  /// Human-readable cause, carrying a "site=…" breadcrumb.
  Status status;
};

/// \brief Per-control-point budget decision for one query.
enum class ResourceDecision {
  kProceed = 0,
  /// Over the soft budget: clamp toward exact-only (freezes q-gram
  /// index growth), keep running.
  kClampExact,
  /// Over (or predicted to cross) the hard budget: finalize early with
  /// the strict-prefix partial result.
  kFinalizePartial,
};

/// "proceed" / "clamp_exact" / "finalize_partial".
const char* ResourceDecisionName(ResourceDecision decision);

/// \brief Service-wide resource-governance knobs.
struct ResourceGovernorOptions {
  /// Applied to queries that set no per-query budget of their own.
  MemoryBudgetOptions default_query_budget;
  /// Stuck-query watchdog: a running query whose control-point
  /// heartbeat is older than this is force-finalized with a partial
  /// result and a ResourceReport. 0 disables the watchdog (per-query
  /// QueryOptions::stall_timeout overrides are only honored while the
  /// service-level watchdog thread is running).
  std::chrono::nanoseconds stall_timeout{0};
  /// Watchdog poll cadence.
  std::chrono::milliseconds poll_interval{2};
  /// Under global pressure (root usage at/above the admission
  /// high-water), the watchdog also force-finalizes the *youngest*
  /// running budget-governed query, so one greedy late arrival cannot
  /// evict its older neighbors.
  bool finalize_youngest_on_pressure = false;

  bool watchdog_enabled() const {
    return stall_timeout.count() > 0 || finalize_youngest_on_pressure;
  }
};

/// \brief Owner of the global budget root and the enforcement policy.
///
/// The governor holds the root of the hierarchical accounting tree
/// (global → per-query → per-shard). Per-query nodes are children of
/// the root (MakeQueryNode); the engine hangs its per-shard and
/// coordinator nodes under the query node and refreshes them at epoch
/// control points, so `used()` is the live footprint of every running
/// query and `peak()` its high-water. Enforcement is split by layer:
/// Charge() is the per-query control-point policy (run by the
/// service's governor hook), while the global high-water is enforced
/// by the AdmissionController (shedding) and the watchdog thread
/// (optional youngest-query reclaim).
class ResourceGovernor {
 public:
  explicit ResourceGovernor(ResourceGovernorOptions options)
      : options_(std::move(options)), root_("global") {}

  /// A per-query child of the global root. Destroy it (after the
  /// query's engine, whose nodes are its children) to release the
  /// query's usage from the global aggregate.
  std::unique_ptr<mem::BudgetNode> MakeQueryNode(uint64_t query_id) {
    return std::make_unique<mem::BudgetNode>(
        "query" + std::to_string(query_id), &root_);
  }

  /// The per-query control-point decision. `used` is the query's
  /// refreshed footprint, `growth` the caller's forecast of the next
  /// epoch's allocation (the service passes 2x the largest observed
  /// single-epoch jump, since capacity-doubling containers allocate
  /// twice their previous jump when they next double). The hard bound
  /// is *predictive*: it trips when `used + growth` would cross the
  /// budget, so the recorded peak stays at or under the budget instead
  /// of overshooting by an epoch's worth of allocation. The soft bound
  /// is reactive.
  static ResourceDecision Charge(uint64_t used, uint64_t growth,
                                 const MemoryBudgetOptions& limits);

  /// The query's effective budget: its own, or the service default
  /// where a field is unset.
  MemoryBudgetOptions EffectiveBudget(const MemoryBudgetOptions& query) const;

  mem::BudgetNode* root() { return &root_; }
  /// Live global footprint across every running query.
  uint64_t used() const { return root_.used(); }
  /// Global high-water since service start.
  uint64_t peak() const { return root_.peak(); }
  const ResourceGovernorOptions& options() const { return options_; }

 private:
  ResourceGovernorOptions options_;
  mem::BudgetNode root_;
};

}  // namespace service
}  // namespace aqp

#endif  // AQP_SERVICE_RESOURCE_GOVERNOR_H_
