#include "service/query.h"

namespace aqp {
namespace service {

const char* QueryStateName(QueryState state) {
  switch (state) {
    case QueryState::kQueued:
      return "queued";
    case QueryState::kRunning:
      return "running";
    case QueryState::kDraining:
      return "draining";
    case QueryState::kDone:
      return "done";
    case QueryState::kFailed:
      return "failed";
    case QueryState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

bool IsTerminalState(QueryState state) {
  return state == QueryState::kDone || state == QueryState::kFailed ||
         state == QueryState::kCancelled;
}

}  // namespace service
}  // namespace aqp
