#include "service/admission.h"

#include <algorithm>

namespace aqp {
namespace service {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  if (options_.max_concurrent_queries == 0) {
    options_.max_concurrent_queries = 1;
  }
}

size_t AdmissionController::ClampShards(size_t requested) const {
  if (options_.max_total_shards == 0) return std::max<size_t>(1, requested);
  return std::max<size_t>(1, std::min(requested, options_.max_total_shards));
}

bool AdmissionController::CanAdmit(size_t shards) const {
  if (running_ >= options_.max_concurrent_queries) return false;
  if (options_.max_total_shards != 0 &&
      shards_in_use_ + shards > options_.max_total_shards) {
    return false;
  }
  return true;
}

void AdmissionController::Admit(size_t shards) {
  ++running_;
  ++admitted_total_;
  shards_in_use_ += shards;
  peak_running_ = std::max(peak_running_, running_);
  peak_shards_ = std::max(peak_shards_, shards_in_use_);
}

void AdmissionController::Release(size_t shards) {
  --running_;
  ++released_total_;
  shards_in_use_ -= shards;
}

}  // namespace service
}  // namespace aqp
