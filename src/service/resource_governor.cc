#include "service/resource_governor.h"

namespace aqp {
namespace service {

const char* ResourceDecisionName(ResourceDecision decision) {
  switch (decision) {
    case ResourceDecision::kProceed:
      return "proceed";
    case ResourceDecision::kClampExact:
      return "clamp_exact";
    case ResourceDecision::kFinalizePartial:
      return "finalize_partial";
  }
  return "unknown";
}

ResourceDecision ResourceGovernor::Charge(uint64_t used, uint64_t growth,
                                          const MemoryBudgetOptions& limits) {
  // Hard first: a query past (or about to cross) its hard bound must
  // finalize even if the soft bound would also fire this charge.
  if (limits.hard_bytes > 0 && used + growth > limits.hard_bytes) {
    return ResourceDecision::kFinalizePartial;
  }
  if (limits.soft_bytes > 0 && used >= limits.soft_bytes) {
    return ResourceDecision::kClampExact;
  }
  return ResourceDecision::kProceed;
}

MemoryBudgetOptions ResourceGovernor::EffectiveBudget(
    const MemoryBudgetOptions& query) const {
  MemoryBudgetOptions effective = query;
  if (effective.soft_bytes == 0) {
    effective.soft_bytes = options_.default_query_budget.soft_bytes;
  }
  if (effective.hard_bytes == 0) {
    effective.hard_bytes = options_.default_query_budget.hard_bytes;
  }
  return effective;
}

}  // namespace service
}  // namespace aqp
