#ifndef AQP_SERVICE_ADMISSION_H_
#define AQP_SERVICE_ADMISSION_H_

#include <cstddef>
#include <cstdint>

namespace aqp {
namespace service {

/// \brief Admission knobs of a LinkageService.
struct AdmissionOptions {
  /// Queries allowed to run concurrently; later submissions queue
  /// (FIFO) until a slot frees.
  size_t max_concurrent_queries = 2;
  /// Total shards runnable at once across all running queries, and
  /// the per-query shard cap (a single query asking for more is
  /// clamped — shard count never changes results, only parallelism).
  /// This is what stops one wide all-approximate query from
  /// monopolizing the pool: it can hold at most this many of the
  /// budget's lanes, and the pool's FIFO-fair group dispatch
  /// interleaves whatever it does hold with everyone else. 0 = no
  /// shard budget.
  size_t max_total_shards = 0;
  /// Global memory high-water: while the budget tree's root usage is
  /// at or above this, new submissions are shed with
  /// kResourceExhausted and queued queries are held back from
  /// admission (strict FIFO preserved — the front waits, nothing skips
  /// it). 0 = no global memory gate.
  uint64_t global_memory_high_water_bytes = 0;
};

/// \brief Book-keeper of the service's concurrency budget.
///
/// Pure accounting — NOT internally synchronized. The service's
/// controller is declared `AQP_GUARDED_BY(mu_)` in linkage_service.h,
/// so every access goes through the registry mutex and clang's
/// thread-safety analysis rejects an unlocked call site at compile
/// time. The high-water marks exist so tests and operators can verify
/// the caps were actually enforced.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Per-query shard clamp (>= 1).
  size_t ClampShards(size_t requested) const;

  /// True iff a query needing `shards` may start now.
  bool CanAdmit(size_t shards) const;

  /// True iff the global memory gate admits more work right now
  /// (`global_used` is the budget root's live usage). Always true with
  /// no high-water configured.
  bool MemoryCanAdmit(uint64_t global_used) const {
    return options_.global_memory_high_water_bytes == 0 ||
           global_used < options_.global_memory_high_water_bytes;
  }

  void Admit(size_t shards);
  void Release(size_t shards);

  /// Records a submission shed by the global memory gate.
  void RecordMemoryShed() { ++memory_shed_total_; }
  /// Submissions shed with kResourceExhausted under global pressure.
  size_t memory_shed_total() const { return memory_shed_total_; }

  size_t running_queries() const { return running_; }
  size_t shards_in_use() const { return shards_in_use_; }
  /// High-water marks since construction.
  size_t peak_running_queries() const { return peak_running_; }
  size_t peak_shards_in_use() const { return peak_shards_; }
  /// Lifetime admit/release counters: every admitted query must be
  /// released exactly once on every terminal path (success, failure,
  /// cancellation), so after quiescence admitted_total() ==
  /// released_total() — the budget-leak invariant the chaos and
  /// admission failure-path tests assert.
  size_t admitted_total() const { return admitted_total_; }
  size_t released_total() const { return released_total_; }
  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
  size_t running_ = 0;
  size_t shards_in_use_ = 0;
  size_t peak_running_ = 0;
  size_t peak_shards_ = 0;
  size_t admitted_total_ = 0;
  size_t released_total_ = 0;
  size_t memory_shed_total_ = 0;
};

}  // namespace service
}  // namespace aqp

#endif  // AQP_SERVICE_ADMISSION_H_
