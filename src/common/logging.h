#ifndef AQP_COMMON_LOGGING_H_
#define AQP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace aqp {

/// \brief Log severities, ordered by importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Minimal leveled logger writing to stderr.
///
/// The logger is intentionally tiny: experiments and operators use it
/// for diagnostics only; structured experiment output goes through
/// metrics/report.h instead.
class Logger {
 public:
  /// Returns the process-wide logger.
  static Logger& Global();

  /// Sets the minimum severity that will be emitted.
  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Emits one line at `level` if it passes the filter.
  void Log(LogLevel level, const std::string& message);

  /// True iff a message at `level` would be emitted.
  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

 private:
  LogLevel level_ = LogLevel::kWarning;
};

/// \brief Stream-style single-line log statement helper.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Global().Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace aqp

#define AQP_LOG(level) ::aqp::LogMessage(::aqp::LogLevel::level)

#endif  // AQP_COMMON_LOGGING_H_
