#ifndef AQP_COMMON_SYNC_H_
#define AQP_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/lock_order.h"

/// \file
/// Annotated synchronization primitives: thin wrappers over the std
/// primitives that carry Clang thread-safety-analysis attributes, so
/// the lock discipline every concurrent subsystem documents in
/// comments is checked by the compiler on every clang build
/// (-Wthread-safety -Werror=thread-safety in CI; the macros compile to
/// nothing on GCC). Debug builds additionally thread every
/// Lock/Unlock through the runtime lock-order detector
/// (common/lock_order.h), which catches the dynamic deadlock class the
/// static analysis cannot express.
///
/// Conventions (see README "Static analysis"):
///   * every field protected by a mutex is declared
///     `AQP_GUARDED_BY(mu_)`;
///   * every private method that must be called with the lock held is
///     annotated `AQP_REQUIRES(mu_)` (and named ...Locked);
///   * condition waits are explicit `while (!cond) cv_.Wait(mu_);`
///     loops, never predicate lambdas — the analysis checks lambda
///     bodies as separate functions and cannot see the caller's locks;
///   * `AQP_NO_THREAD_SAFETY_ANALYSIS` is an escape of last resort and
///     must carry a justifying comment (zero uses in service/).

// ---------------------------------------------------------------------------
// Clang thread-safety attribute macros (no-ops on other compilers).
// ---------------------------------------------------------------------------

#if defined(__clang__) && !defined(SWIG)
#define AQP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define AQP_THREAD_ANNOTATION_(x)
#endif

/// Declares a type to be a capability (e.g. a mutex class).
#define AQP_CAPABILITY(x) AQP_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define AQP_SCOPED_CAPABILITY AQP_THREAD_ANNOTATION_(scoped_lockable)

/// The field/variable may only be accessed while holding the given
/// capability.
#define AQP_GUARDED_BY(x) AQP_THREAD_ANNOTATION_(guarded_by(x))

/// The data *pointed to* by the field may only be accessed while
/// holding the given capability.
#define AQP_PT_GUARDED_BY(x) AQP_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The function may only be called while holding the given
/// capabilities.
#define AQP_REQUIRES(...) \
  AQP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define AQP_REQUIRES_SHARED(...) \
  AQP_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the given capabilities (its own
/// `this` when the argument list is empty).
#define AQP_ACQUIRE(...) \
  AQP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define AQP_ACQUIRE_SHARED(...) \
  AQP_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define AQP_RELEASE(...) \
  AQP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define AQP_RELEASE_SHARED(...) \
  AQP_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the given
/// value.
#define AQP_TRY_ACQUIRE(...) \
  AQP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// The function must NOT be called while holding the given
/// capabilities (documents non-reentrancy of self-locking methods).
#define AQP_EXCLUDES(...) AQP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime, for the analysis) that the capability is held.
#define AQP_ASSERT_CAPABILITY(x) AQP_THREAD_ANNOTATION_(assert_capability(x))

/// The function returns a reference to the given capability.
#define AQP_RETURN_CAPABILITY(x) AQP_THREAD_ANNOTATION_(lock_returned(x))

/// Lock-ordering documentation hooks (checked by the runtime detector,
/// advisory for the static analysis).
#define AQP_ACQUIRED_BEFORE(...) \
  AQP_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define AQP_ACQUIRED_AFTER(...) \
  AQP_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Escape hatch: turns the analysis off for one function. Requires a
/// comment justifying why the invariant holds anyway.
#define AQP_NO_THREAD_SAFETY_ANALYSIS \
  AQP_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace aqp {
namespace sync {

class CondVar;

/// \brief Annotated std::mutex: the capability the analysis tracks.
///
/// In Debug builds every acquisition and release also feeds the
/// runtime lock-order detector; name the mutex at construction so
/// inversion reports read as "service.mu -> pool.mutex" instead of
/// opaque ids. Release builds carry no id field and no hook calls.
class AQP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() : Mutex("mutex") {}
  explicit Mutex(const char* name) {
#if AQP_LOCK_ORDER
    id_ = lock_order::Register(name);
#else
    (void)name;
#endif
  }
  ~Mutex() {
#if AQP_LOCK_ORDER
    lock_order::Unregister(id_);
#endif
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() AQP_ACQUIRE() {
#if AQP_LOCK_ORDER
    lock_order::BeforeAcquire(id_);
#endif
    mu_.lock();
#if AQP_LOCK_ORDER
    lock_order::AfterAcquire(id_);
#endif
  }

  void Unlock() AQP_RELEASE() {
#if AQP_LOCK_ORDER
    lock_order::BeforeRelease(id_);
#endif
    mu_.unlock();
  }

  /// Never blocks, so it cannot deadlock: the detector records the
  /// hold but runs no order check (try-lock is the sanctioned way to
  /// take locks against the recorded order).
  bool TryLock() AQP_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if AQP_LOCK_ORDER
    lock_order::AfterAcquire(id_);
#endif
    return true;
  }

 private:
  friend class CondVar;
  std::mutex mu_;
#if AQP_LOCK_ORDER
  uint64_t id_ = 0;
#endif
};

/// \brief RAII scoped acquisition of a Mutex.
class AQP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) AQP_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() AQP_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief Condition variable bound to sync::Mutex.
///
/// Deliberately predicate-free: callers write explicit
/// `while (!cond) cv.Wait(mu);` loops so every guarded read sits in an
/// analysis-visible context (a lambda predicate would be analyzed as a
/// lock-free separate function and flagged). The mutex is released
/// and re-acquired by the underlying std wait without re-running the
/// lock-order hooks: the thread re-acquires a lock it already ordered,
/// which adds no new edges.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) AQP_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Returns false iff the deadline passed (callers re-check their
  /// condition either way).
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      AQP_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  /// Returns false iff the timeout elapsed.
  bool WaitFor(Mutex& mu, std::chrono::nanoseconds timeout) AQP_REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() + timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sync
}  // namespace aqp

#endif  // AQP_COMMON_SYNC_H_
